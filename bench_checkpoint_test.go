package streamha_test

// Checkpoint-path microbenchmarks: the binary snapshot codec, the pause
// window, and the bytes shipped per sweep.
//
//	go test -bench=BenchmarkCheckpoint -benchmem
//
// The encode/decode benchmarks compare the binary snapshot codec against
// the seed's gob encoding (kept as Snapshot.EncodeGob, the frozen
// baseline). The pause benchmarks compare the seed protocol — capture,
// encode and send all inside the pause — against the split pipeline where
// the pause covers only the in-memory capture, full and incremental. The
// bytes benchmarks measure shipped volume per sweep at ~1% state churn:
// gob fulls vs binary fulls vs deltas with every-8th-sweep rebases.
// Bodies live in internal/experiment/checkpointbench.go so streamha-bench
// -fig checkpoint measures exactly the same code.

import (
	"testing"

	"streamha/internal/experiment"
)

func BenchmarkCheckpointEncode(b *testing.B) {
	b.Run("binary", experiment.BenchCheckpointEncodeBinary)
	b.Run("gob-baseline", experiment.BenchCheckpointEncodeGob)
}

func BenchmarkCheckpointDecode(b *testing.B) {
	b.Run("binary", experiment.BenchCheckpointDecodeBinary)
}

func BenchmarkCheckpointPause(b *testing.B) {
	b.Run("seed-gob-baseline", experiment.BenchCheckpointPauseSeedGob)
	b.Run("split-full", experiment.BenchCheckpointPauseSplit)
	b.Run("split-delta", experiment.BenchCheckpointPauseDelta)
}

func BenchmarkCheckpointSweepBytes(b *testing.B) {
	b.Run("full-gob-baseline", experiment.BenchCheckpointBytesFullGob)
	b.Run("full-binary", experiment.BenchCheckpointBytesFullBinary)
	b.Run("delta-rebase8", experiment.BenchCheckpointBytesDelta)
}
