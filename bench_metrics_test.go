package streamha_test

// Observability-plane microbenchmarks: the cost of recording one delay
// sample under contention and of a live percentile query. The sharded
// variants exercise the current metrics.DelayStats; the Seed variants run
// the frozen pre-sharding implementation (mutex + growing sample slice)
// kept in internal/experiment as the baseline, so the speedup stays
// measurable:
//
//	go test -bench=BenchmarkDelayStats -benchmem -cpu 8
//
// The benchmark bodies live in internal/experiment/delaybench.go so that
// streamha-bench -fig delaystats measures exactly the same code.

import (
	"testing"

	"streamha/internal/experiment"
)

func BenchmarkDelayStatsAdd(b *testing.B) {
	experiment.BenchDelayStatsAdd(b)
}

func BenchmarkDelayStatsAddSeed(b *testing.B) {
	experiment.BenchDelayStatsAddSeed(b)
}

func BenchmarkDelayStatsPercentile(b *testing.B) {
	experiment.BenchDelayStatsPercentile(b)
}

func BenchmarkDelayStatsPercentileSeed(b *testing.B) {
	experiment.BenchDelayStatsPercentileSeed(b)
}
