package streamha_test

// Keyed-parallelism benchmarks: the scaling figure end to end plus the
// routing-table hot paths a partitioned send touches per element.
//
//	go test -bench=BenchmarkPartitioned -benchtime=1x

import (
	"testing"

	"streamha/internal/experiment"
	"streamha/internal/queue"
)

// BenchmarkPartitionedScale runs the smoke variant of the "-fig scale"
// experiment: counter-workload throughput at 1 and 4 partition-instances,
// then a live 2->3 rescale audited for exactly-once delivery.
func BenchmarkPartitionedScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunScale(true)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range r.Points {
			switch pt.Parallelism {
			case 1:
				b.ReportMetric(pt.ElemsPerSec, "n1-eps")
			case 4:
				b.ReportMetric(pt.ElemsPerSec, "n4-eps")
				b.ReportMetric(pt.Speedup, "n4-speedup-x")
			}
		}
		b.ReportMetric(r.Rescale.CutoverPause.Seconds()*1e3, "cutover-ms")
		b.ReportMetric(float64(r.Rescale.DeltaBytes), "delta-B")
		b.ReportMetric(float64(r.Rescale.Lost), "lost")
		b.ReportMetric(float64(r.Rescale.Duplicated), "duped")
	}
}

// BenchmarkPartitionedRouting measures the per-element routing read every
// producer of a keyed stage performs: one atomic table load plus one hash.
func BenchmarkPartitionedRouting(b *testing.B) {
	pt := queue.NewPartitioner(0, 4)
	var acc int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc += pt.Instance(uint64(i))
	}
	if acc < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkPartitionedMove measures the copy-on-write table flip a live
// rescaling cutover performs, interleaved with routing reads staying
// lock-free.
func BenchmarkPartitionedMove(b *testing.B) {
	pt := queue.NewPartitioner(0, 2)
	parts := pt.OwnedBy(0)[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pt.Move(parts, i%2); err != nil {
			b.Fatal(err)
		}
	}
}
