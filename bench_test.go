package streamha_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation, one testing.B benchmark per figure. Each benchmark runs the
// corresponding experiment from internal/experiment and reports the
// figure's headline quantities as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper end to end (expect several minutes; the experiments
// run real pipelines). Individual figures:
//
//	go test -bench=BenchmarkFig07 -benchtime=1x
//
// The streamha-bench command prints the same results as full tables.

import (
	"testing"
	"time"

	"streamha/internal/experiment"
	"streamha/internal/failure"
	"streamha/internal/ha"
)

// benchParams returns reduced-but-faithful parameters so the whole harness
// completes in minutes.
func benchParams() experiment.Params {
	p := experiment.DefaultParams()
	p.Run = 2 * time.Second
	return p
}

func BenchmarkFig01ProcessingTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig01(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CleanMean.Seconds()*1e3, "clean-ms")
		b.ReportMetric(r.LoadedMean.Seconds()*1e3, "loaded-ms")
		b.ReportMetric(float64(r.LoadedMean)/float64(r.CleanMean), "slowdown-x")
	}
}

func BenchmarkFig02InterFailureCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.RunFig02And03(failure.DefaultTraceConfig())
		b.ReportMetric(r.FractionUnder60s, "frac-under-60s")
	}
}

func BenchmarkFig03DurationCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.RunFig02And03(failure.DefaultTraceConfig())
		b.ReportMetric(r.FractionDurUnder10s, "frac-under-10s")
		b.ReportMetric(r.FractionDurOver20s, "frac-over-20s")
	}
}

func BenchmarkFig04DelayVsLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig04(benchParams(), nil, []float64{0.3, 0.5, 0.8})
		if err != nil {
			b.Fatal(err)
		}
		// Headline: mean delay per mode at the heaviest failure load.
		perMode := map[ha.Mode]time.Duration{}
		for _, pt := range r.Points {
			if pt.FailureFraction == 0.8 {
				perMode[pt.Mode] = pt.MeanDelay
			}
		}
		b.ReportMetric(perMode[ha.ModeNone].Seconds()*1e3, "none-ms")
		b.ReportMetric(perMode[ha.ModeActive].Seconds()*1e3, "as-ms")
		b.ReportMetric(perMode[ha.ModePassive].Seconds()*1e3, "ps-ms")
		b.ReportMetric(perMode[ha.ModeHybrid].Seconds()*1e3, "hybrid-ms")
	}
}

func BenchmarkFig05Multiplexing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig05(benchParams(), []float64{0.1, 0.3})
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range r.Points {
			if pt.FailureFraction == 0.3 && pt.DedicatedDelay > 0 {
				b.ReportMetric(float64(pt.SharedDelay)/float64(pt.DedicatedDelay), "shared-vs-dedicated-x")
			}
		}
	}
}

func BenchmarkFig06Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig06(benchParams(), nil, []float64{10000})
		if err != nil {
			b.Fatal(err)
		}
		byLabel := map[string]int64{}
		for _, pt := range r.Points {
			byLabel[pt.Label] = pt.Elements
		}
		if base := byLabel["none"]; base > 0 {
			b.ReportMetric(float64(byLabel["as"])/float64(base), "as-vs-none-x")
			b.ReportMetric(float64(byLabel["ps-500ms"])/float64(base), "ps500-vs-none-x")
			b.ReportMetric(float64(byLabel["hybrid-500ms"])/float64(base), "hybrid500-vs-none-x")
		}
	}
}

func BenchmarkFig07RecoveryVsHeartbeat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig07(benchParams(), []time.Duration{20 * time.Millisecond, 60 * time.Millisecond}, 2)
		if err != nil {
			b.Fatal(err)
		}
		var psTotal, hyTotal time.Duration
		n := 0
		for _, row := range r.Rows {
			switch row.Mode {
			case ha.ModePassive:
				psTotal += row.Total()
				n++
			case ha.ModeHybrid:
				hyTotal += row.Total()
			}
		}
		if psTotal > 0 {
			b.ReportMetric(float64(hyTotal)/float64(psTotal), "hybrid-vs-ps-total-x")
		}
		b.ReportMetric(float64(n), "points")
	}
}

func BenchmarkFig08RecoveryVsCheckpoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig08(benchParams(), []time.Duration{20 * time.Millisecond, 100 * time.Millisecond}, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Mode == ha.ModeHybrid && row.Param == 100*time.Millisecond {
				b.ReportMetric(row.Total().Seconds()*1e3, "hybrid-total-ms")
			}
		}
	}
}

func BenchmarkFig09SwitchRollbackTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig09And10(benchParams(), []float64{100, 700}, []time.Duration{time.Second}, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range r.Points {
			if pt.Rate == 700 {
				b.ReportMetric(pt.SwitchoverTime.Seconds()*1e3, "switchover-ms")
				b.ReportMetric(pt.RollbackTime.Seconds()*1e3, "rollback-ms")
			}
		}
	}
}

func BenchmarkFig10SwitchRollbackOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig09And10(benchParams(), []float64{100, 700}, []time.Duration{time.Second}, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range r.Points {
			if pt.Rate == 700 {
				b.ReportMetric(float64(pt.OverheadElements), "overhead-elems")
				b.ReportMetric(float64(pt.ReadStateElements), "read-state-elems")
			}
		}
	}
}

func BenchmarkFig11OverheadVsPEs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig11(benchParams(), []int{1, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		first, last := r.Points[0], r.Points[len(r.Points)-1]
		if first.CheckpointElements > 0 {
			b.ReportMetric(float64(last.CheckpointElements)/float64(first.CheckpointElements), "ckpt-8pe-vs-1pe-x")
		}
	}
}

func BenchmarkFig12DetectionRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig12And13(benchParams(), []float64{0.6, 0.95}, 8)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range r.Points {
			switch pt.Load {
			case 0.6:
				b.ReportMetric(pt.Heartbeat.DetectionRatio(), "hb-detect-60")
				b.ReportMetric(pt.Benchmark.DetectionRatio(), "bm-detect-60")
			case 0.95:
				b.ReportMetric(pt.Heartbeat.DetectionRatio(), "hb-detect-95")
			}
		}
	}
}

func BenchmarkFig13FalseAlarmRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunFig12And13(benchParams(), []float64{0.9}, 8)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range r.Points {
			b.ReportMetric(pt.Heartbeat.FalseAlarmRatio(), "hb-false-alarm")
			b.ReportMetric(pt.Benchmark.FalseAlarmRatio(), "bm-false-alarm")
		}
	}
}

func BenchmarkSweepingVsAlternatives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunSweeping(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		byLabel := map[string]experiment.SweepingRow{}
		for _, row := range r.Rows {
			byLabel[row.Label] = row
		}
		sw, sy := byLabel["sweeping"], byLabel["synchronous"]
		if sw.Elements > 0 {
			b.ReportMetric(float64(sy.Elements)/float64(sw.Elements), "sync-vs-sweeping-elems-x")
		}
		if sw.MeanPause > 0 {
			b.ReportMetric(float64(sy.MeanPause)/float64(sw.MeanPause), "sync-vs-sweeping-pause-x")
		}
	}
}

func BenchmarkAblationHybridOptimizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunAblation(benchParams(), nil, 2)
		if err != nil {
			b.Fatal(err)
		}
		byLabel := map[string]experiment.AblationRow{}
		for _, row := range r.Rows {
			byLabel[row.Label] = row
		}
		full := byLabel["full-hybrid"]
		if noPre := byLabel["no-predeploy"]; noPre.Phases.Deploy > 0 {
			b.ReportMetric(float64(full.Phases.Deploy)/float64(noPre.Phases.Deploy), "predeploy-deploy-x")
		}
		if threeMiss := byLabel["3-miss-trigger"]; threeMiss.Phases.Detection > 0 {
			b.ReportMetric(float64(full.Phases.Detection)/float64(threeMiss.Phases.Detection), "firstmiss-detect-x")
		}
	}
}
