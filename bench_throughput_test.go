package streamha_test

// Data-plane throughput microbenchmarks. Unlike the BenchmarkFig* harness,
// which reproduces the paper's figures end to end, these isolate the hot
// send/publish/trim path so regressions in the data plane show up directly
// in elements/s and allocs/op:
//
//	go test -bench=BenchmarkThroughput -benchmem
//
// The publish benchmarks drive an output queue over a real transport
// (in-memory or TCP loopback) with 1–8 active subscribers; the ack/trim
// benchmark keeps a retained window and measures the cost of cumulative
// trimming. The benchmark bodies live in internal/experiment/throughput.go
// so that streamha-bench -fig throughput measures exactly the same code and
// prints the results as a table.

import (
	"fmt"
	"testing"

	"streamha/internal/experiment"
)

func BenchmarkThroughputPublish(b *testing.B) {
	for _, subs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("mem-subs-%d", subs), func(b *testing.B) {
			experiment.BenchPublishMem(b, subs)
		})
	}
}

func BenchmarkThroughputAckTrim(b *testing.B) {
	experiment.BenchAckTrim(b)
}

func BenchmarkThroughputPublishTCP(b *testing.B) {
	experiment.BenchPublishTCP(b)
}
