package streamha_test

// Wire-path microbenchmarks: the frame codec on the TCP path and the
// in-memory latency scheduler.
//
//	go test -bench=BenchmarkWire -benchmem
//
// The encode/decode benchmarks compare the length-prefixed binary codec
// against the seed's gob framing (kept in tcp.go behind TCPConfig.Codec as
// the frozen baseline); the TCP publish benchmarks run the same comparison
// end to end over a loopback socket, including the writer's batched
// single-flush drain. The scheduler benchmarks pit the timing wheel (the
// live Mem scheduler) against a verbatim copy of the seed's global-mutex
// container/heap scheduler under 8 concurrent senders. Bodies live in
// internal/experiment/wirebench.go so streamha-bench -fig wire measures
// exactly the same code.

import (
	"testing"

	"streamha/internal/experiment"
	"streamha/internal/transport"
)

func BenchmarkWireEncode(b *testing.B) {
	b.Run("binary", experiment.BenchWireEncodeBinary)
	b.Run("gob-baseline", experiment.BenchWireEncodeGob)
}

func BenchmarkWireDecode(b *testing.B) {
	b.Run("binary", experiment.BenchWireDecodeBinary)
}

func BenchmarkWireTCPPublish(b *testing.B) {
	b.Run("binary", func(b *testing.B) { experiment.BenchWireTCPPublish(b, transport.CodecBinary) })
	b.Run("gob-baseline", func(b *testing.B) { experiment.BenchWireTCPPublish(b, transport.CodecGob) })
}

func BenchmarkWireSched(b *testing.B) {
	b.Run("wheel", experiment.BenchWireSchedWheel)
	b.Run("seed-heap", experiment.BenchWireSchedSeed)
}
