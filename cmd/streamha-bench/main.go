// Command streamha-bench regenerates the paper's tables and figures as
// text tables.
//
// Usage:
//
//	streamha-bench -fig all            # every figure (several minutes)
//	streamha-bench -fig 4              # one figure
//	streamha-bench -fig 7 -quick      # reduced sweep for a fast look
//
// Figures: 1, 2 (covers 3), 4, 5, 6, 7, 8, 9 (covers 10), 11, 12 (covers
// 13), plus "sweeping" (Section III), "ablation" (Section IV-B),
// "throughput" (data-plane publish/ack/trim microbenchmarks),
// "delaystats" (observability-plane record/query microbenchmarks),
// "wire" (frame codec and latency-scheduler microbenchmarks) and
// "checkpoint" (snapshot codec, pause-window and shipped-volume
// microbenchmarks; -smoke runs its fast codec subset only) and
// "lifecycle" (control-plane transition logs per standby policy under a
// scripted stall + fail-stop) and "scale" (keyed-parallelism throughput
// at 1/2/4/8 partition instances plus a live 2->3 rescale with
// exactly-once audit; -smoke sweeps {1,4} with short runs) and
// "placement" (static spare placement vs the consensus-backed scheduler
// under a multi-failure trace with a placement-log leader kill; -smoke
// shortens the trace to one round) and "approx" (the bounded-error
// standby: five-mode steady-state grid plus an injected failover with
// divergence-vs-budget accounting).
//
// -json <path> additionally writes every rendered table as machine-
// readable JSON (figure -> metric -> value), for CI artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"streamha/internal/experiment"
	"streamha/internal/failure"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1,2,4,5,6,7,8,9,11,12,sweeping,ablation,throughput,delaystats,wire,checkpoint,lifecycle,scale,placement,approx or all")
	quick := flag.Bool("quick", false, "reduced sweeps and repeats for a fast look")
	smoke := flag.Bool("smoke", false, "health-check subset for CI (affects -fig checkpoint, scale, approx)")
	jsonPath := flag.String("json", "", "also write the results as JSON (figure -> metric -> value) to this path")
	flag.Parse()

	if err := run(*fig, *quick, *smoke, *jsonPath); err != nil {
		fmt.Fprintf(os.Stderr, "streamha-bench: %v\n", err)
		os.Exit(1)
	}
}

// jsonTable is one rendered table in the -json output: the raw table plus
// a metrics map keyed by each row's first cell.
type jsonTable struct {
	Title          string                       `json:"title"`
	Note           string                       `json:"note,omitempty"`
	ElapsedSeconds float64                      `json:"elapsed_seconds"`
	Metrics        map[string]map[string]string `json:"metrics"`
}

// tableMetrics flattens a table into metric -> column -> value. Row labels
// are made unique by suffixing the second column (e.g. a rate) and, as a
// last resort, the row index.
func tableMetrics(t experiment.Table) map[string]map[string]string {
	out := make(map[string]map[string]string, len(t.Rows))
	for i, row := range t.Rows {
		if len(row) == 0 {
			continue
		}
		key := row[0]
		if _, dup := out[key]; dup && len(row) > 1 {
			key = row[0] + "@" + row[1]
		}
		if _, dup := out[key]; dup {
			key = fmt.Sprintf("%s#%d", row[0], i)
		}
		cols := make(map[string]string, len(row))
		for j := 1; j < len(row) && j < len(t.Header); j++ {
			cols[t.Header[j]] = row[j]
		}
		out[key] = cols
	}
	return out
}

func run(fig string, quick, smoke bool, jsonPath string) error {
	params := experiment.DefaultParams()
	repeats := 3
	if quick {
		params.Run = 1500 * time.Millisecond
		repeats = 1
	}

	// want remembers the figure name it matched, so show files the table
	// under it in the JSON output without threading names through every
	// call site.
	cur := ""
	want := func(name string) bool {
		if fig == "all" || fig == name {
			cur = name
			return true
		}
		return false
	}
	ran := false
	collected := make(map[string]jsonTable)
	showNamed := func(name string, t experiment.Table, elapsed time.Duration) {
		ran = true
		fmt.Println(t.Render())
		fmt.Printf("(took %.1fs)\n\n", elapsed.Seconds())
		collected[name] = jsonTable{
			Title:          t.Title,
			Note:           t.Note,
			ElapsedSeconds: elapsed.Seconds(),
			Metrics:        tableMetrics(t),
		}
	}
	show := func(t experiment.Table, elapsed time.Duration) { showNamed(cur, t, elapsed) }

	if want("1") {
		start := time.Now()
		r, err := experiment.RunFig01(params)
		if err != nil {
			return err
		}
		show(r.Table(), time.Since(start))
	}
	if want("2") || want("3") {
		start := time.Now()
		r := experiment.RunFig02And03(failure.DefaultTraceConfig())
		show(r.Table(), time.Since(start))
	}
	if want("4") {
		start := time.Now()
		fractions := experiment.Fig04Fractions
		if quick {
			fractions = []float64{0.3, 0.5, 0.8}
		}
		r, err := experiment.RunFig04(params, nil, fractions)
		if err != nil {
			return err
		}
		show(r.Table(), time.Since(start))
	}
	if want("5") {
		start := time.Now()
		fractions := experiment.Fig05Fractions
		if quick {
			fractions = []float64{0.1, 0.2, 0.3}
		}
		r, err := experiment.RunFig05(params, fractions)
		if err != nil {
			return err
		}
		show(r.Table(), time.Since(start))
	}
	if want("6") {
		start := time.Now()
		rates := experiment.Fig06Rates
		if quick {
			rates = []float64{4000, 10000}
		}
		r, err := experiment.RunFig06(params, nil, rates)
		if err != nil {
			return err
		}
		show(r.Table(), time.Since(start))
	}
	if want("7") {
		start := time.Now()
		intervals := experiment.Fig07Intervals
		if quick {
			intervals = intervals[:3]
		}
		r, err := experiment.RunFig07(params, intervals, repeats)
		if err != nil {
			return err
		}
		show(r.Table(), time.Since(start))
	}
	if want("8") {
		start := time.Now()
		intervals := experiment.Fig08Intervals
		if quick {
			intervals = intervals[:3]
		}
		r, err := experiment.RunFig08(params, intervals, repeats)
		if err != nil {
			return err
		}
		show(r.Table(), time.Since(start))
	}
	if want("9") || want("10") {
		start := time.Now()
		rates := experiment.Fig09Rates
		outages := experiment.Fig09Outages
		if quick {
			rates = []float64{100, 700}
			outages = outages[:1]
		}
		r, err := experiment.RunFig09And10(params, rates, outages, repeats)
		if err != nil {
			return err
		}
		show(r.Fig09Table(), time.Since(start))
		showNamed("10", r.Fig10Table(), 0)
	}
	if want("11") {
		start := time.Now()
		counts := experiment.Fig11PECounts
		if quick {
			counts = []int{1, 4, 8}
		}
		r, err := experiment.RunFig11(params, counts)
		if err != nil {
			return err
		}
		show(r.Table(), time.Since(start))
	}
	if want("12") || want("13") {
		start := time.Now()
		loads := experiment.Fig12Loads
		spikes := 30
		if quick {
			loads = []float64{0.6, 0.8, 0.95}
			spikes = 8
		}
		r, err := experiment.RunFig12And13(params, loads, spikes)
		if err != nil {
			return err
		}
		show(r.Fig12Table(), time.Since(start))
		showNamed("13", r.Fig13Table(), 0)
	}
	if want("sweeping") {
		start := time.Now()
		r, err := experiment.RunSweeping(params)
		if err != nil {
			return err
		}
		show(r.Table(), time.Since(start))
	}
	if want("ablation") {
		start := time.Now()
		r, err := experiment.RunAblation(params, nil, repeats)
		if err != nil {
			return err
		}
		show(r.Table(), time.Since(start))
	}

	if want("throughput") {
		start := time.Now()
		r := experiment.RunThroughput()
		show(r.Table(), time.Since(start))
	}

	if want("delaystats") {
		start := time.Now()
		r := experiment.RunDelayStats()
		show(r.Table(), time.Since(start))
	}

	if want("wire") {
		start := time.Now()
		r := experiment.RunWire()
		show(r.Table(), time.Since(start))
	}

	if want("checkpoint") {
		start := time.Now()
		r := experiment.RunCheckpoint(smoke)
		show(r.Table(), time.Since(start))
	}

	if want("lifecycle") {
		start := time.Now()
		r, err := experiment.RunLifecycle(params)
		if err != nil {
			return err
		}
		show(r.Table(), time.Since(start))
	}

	if want("scale") {
		start := time.Now()
		r, err := experiment.RunScale(smoke || quick)
		if err != nil {
			return err
		}
		show(r.Table(), time.Since(start))
	}

	if want("placement") {
		start := time.Now()
		r, err := experiment.RunPlacement(smoke || quick)
		if err != nil {
			return err
		}
		show(r.Table(), time.Since(start))
	}

	if want("approx") {
		start := time.Now()
		ap := params
		if smoke {
			ap.Run = 1 * time.Second
			ap.Warmup = 300 * time.Millisecond
		}
		r, err := experiment.RunApprox(ap)
		if err != nil {
			return err
		}
		show(r.Table(), time.Since(start))
	}

	if !ran {
		return fmt.Errorf("unknown figure %q (try: %s)", fig,
			strings.Join([]string{"1", "2", "4", "5", "6", "7", "8", "9", "11", "12", "sweeping", "ablation", "throughput", "delaystats", "wire", "checkpoint", "lifecycle", "scale", "placement", "approx", "all"}, ", "))
	}
	if jsonPath != "" {
		blob, err := json.MarshalIndent(collected, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}
