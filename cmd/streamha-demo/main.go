// Command streamha-demo narrates the hybrid method's full lifecycle on a
// live pipeline: normal (passive-like) operation with in-memory standby
// refresh, a transient failure with first-miss switchover, rollback with
// read-state once the primary recovers, and finally a fail-stop crash with
// promotion of the standby and re-protection on a spare machine.
package main

import (
	"fmt"
	"time"

	"streamha"
)

func main() {
	fmt.Println("streamha hybrid method demo")
	fmt.Println("===========================")

	cl := streamha.NewCluster(streamha.ClusterConfig{Latency: 200 * time.Microsecond})
	for _, id := range []string{"src", "sink", "primary", "standby", "spare"} {
		cl.MustAddMachine(id)
	}
	defer cl.Close()

	pipe, err := streamha.NewPipeline(streamha.PipelineConfig{
		Cluster:     cl,
		JobID:       "demo",
		Source:      streamha.SourceDef{Machine: "src", Rate: 1000},
		SinkMachine: "sink",
		Subjobs: []streamha.SubjobDef{{
			ID:        "stage",
			Mode:      streamha.Hybrid,
			Primary:   "primary",
			Secondary: "standby",
			Spare:     "spare",
			PEs: []streamha.PESpec{
				{Name: "count", NewLogic: func() streamha.Logic { return &streamha.CounterLogic{Pad: 100} }, Cost: 300 * time.Microsecond},
				{Name: "window", NewLogic: func() streamha.Logic { return &streamha.WindowSumLogic{Window: 10} }, Cost: 100 * time.Microsecond},
			},
		}},
		Hybrid: streamha.HybridOptions{FailStopAfter: 1200 * time.Millisecond},
	})
	if err != nil {
		panic(err)
	}
	if err := pipe.Start(); err != nil {
		panic(err)
	}
	defer pipe.Stop()
	g := pipe.Group(0)

	reg := streamha.NewRegistry()
	pipe.RegisterMetrics(reg)

	step := func(format string, args ...any) {
		fmt.Printf("\n--- %s\n", fmt.Sprintf(format, args...))
	}
	status := func() {
		fmt.Printf("    primary=%s standby-active=%v delivered=%d mean-delay=%.1fms\n",
			g.HA.PrimaryRuntime().Node(), g.HA.Active(),
			pipe.Sink().Received(), pipe.Sink().Delays().Mean().Seconds()*1e3)
	}

	step("phase 1: normal conditions — passive-standby cost")
	fmt.Println("    the standby on 'standby' is pre-deployed but suspended; sweeping")
	fmt.Println("    checkpoints refresh its state directly in memory.")
	time.Sleep(1200 * time.Millisecond)
	status()
	if n := len(g.HA.Switches()); n > 0 {
		fmt.Printf("    (%d false-alarm switchover(s) from scheduling jitter already rolled\n", n)
		fmt.Println("    back — the first-miss trigger tolerates them by design)")
	}

	step("phase 2: transient failure — co-located load pins 'primary' at 100%% for 500 ms")
	spikeStart := time.Now()
	cl.Machine("primary").CPU().SetBackgroundLoad(1.0)
	time.Sleep(500 * time.Millisecond)
	cl.Machine("primary").CPU().SetBackgroundLoad(0)
	time.Sleep(600 * time.Millisecond)
	for _, sw := range g.HA.Switches() {
		if sw.DetectedAt.Before(spikeStart) {
			continue
		}
		fmt.Printf("    switchover: detected after %.0f ms (first heartbeat miss), standby\n",
			sw.DetectedAt.Sub(spikeStart).Seconds()*1e3)
		fmt.Printf("    resumed and connected %.1f ms later (flag flip + early connections)\n",
			sw.ReadyAt.Sub(sw.DetectedAt).Seconds()*1e3)
		break
	}
	for _, rb := range g.HA.Rollbacks() {
		if rb.StartedAt.Before(spikeStart) {
			continue
		}
		fmt.Printf("    rollback: %.1f ms after the primary answered again; primary read\n",
			rb.DoneAt.Sub(rb.StartedAt).Seconds()*1e3)
		fmt.Printf("    %d element-units of state back from the standby (adopted=%v)\n",
			rb.StateUnits, rb.Adopted)
		break
	}
	status()

	step("phase 3: fail-stop — 'primary' crashes for good")
	cl.Machine("primary").Crash()
	time.Sleep(2200 * time.Millisecond)
	if n := len(g.HA.Promotions()); n > 0 {
		fmt.Printf("    the failure outlasted the fail-stop threshold: the standby was\n")
		fmt.Printf("    promoted to primary and a new standby was deployed on 'spare'.\n")
	}
	status()
	if sec := g.HA.SecondaryRuntime(); sec != nil {
		fmt.Printf("    new standby on %s (suspended=%v)\n", sec.Node(), sec.Suspended())
	}

	time.Sleep(500 * time.Millisecond)
	pipe.Source().Stop()
	time.Sleep(300 * time.Millisecond)

	step("summary")
	dups, gaps := pipe.Sink().In().Drops()
	fmt.Printf("    delivered %d window sums end-to-end\n", pipe.Sink().Received())
	fmt.Printf("    switchovers=%d rollbacks=%d promotions=%d\n",
		len(g.HA.Switches()), len(g.HA.Rollbacks()), len(g.HA.Promotions()))
	fmt.Printf("    duplicates eliminated=%d, sequence gaps=%d (must be 0: no loss)\n", dups, gaps)
	st := cl.Stats()
	fmt.Printf("    network traffic: %d messages, %d element-units (%d data, %d checkpoint)\n",
		st.TotalMessages(), st.TotalElements(), st.DataElements(), st.CheckpointElements())

	step("metrics snapshot (live-pollable at any point of the run)")
	if out, err := reg.JSON(); err == nil {
		fmt.Println(string(out))
	}
}
