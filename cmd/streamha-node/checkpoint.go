package main

import (
	"flag"
	"fmt"
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/subjob"
)

// runCheckpoint implements the `streamha-node checkpoint` subcommands,
// operating directly on an on-disk catalog directory:
//
//	streamha-node checkpoint list    -dir DIR
//	streamha-node checkpoint inspect -dir DIR -subjob KEY [-seq N]
//	streamha-node checkpoint restore -dir DIR [-subjob KEY]
//
// list shows every cataloged subjob with its chain head. inspect prints
// one subjob's entries, or decodes one payload with -seq. restore
// compacts each chain — fold full + deltas into a single full checkpoint
// at the head sequence — so a subsequent `streamha-node -restore` boots
// from one read; it is safe to run while the node is down and is the
// cold-restart recovery step the README walks through.
func runCheckpoint(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: streamha-node checkpoint <list|inspect|restore> -dir DIR [flags]")
	}
	cmd := args[0]
	fs := flag.NewFlagSet("checkpoint "+cmd, flag.ExitOnError)
	dir := fs.String("dir", "", "catalog directory (required)")
	sj := fs.String("subjob", "", "catalog subjob key (as shown by list)")
	seq := fs.Uint64("seq", 0, "inspect one entry's payload at this sequence number")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	bk, err := checkpoint.NewDiskBackend(*dir)
	if err != nil {
		return err
	}
	cat := checkpoint.NewCatalog(bk, checkpoint.Retention{})

	switch cmd {
	case "list":
		return checkpointList(cat)
	case "inspect":
		if *sj == "" {
			return fmt.Errorf("inspect requires -subjob")
		}
		return checkpointInspect(cat, *sj, *seq)
	case "restore":
		return checkpointRestore(cat, *sj)
	default:
		return fmt.Errorf("unknown subcommand %q (want list, inspect or restore)", cmd)
	}
}

func checkpointList(cat *checkpoint.Catalog) error {
	sjs, err := cat.Subjobs()
	if err != nil {
		return err
	}
	if len(sjs) == 0 {
		fmt.Println("catalog is empty")
		return nil
	}
	for _, sj := range sjs {
		entries, err := cat.Entries(sj)
		if err != nil {
			return err
		}
		head, ok, err := cat.Head(sj)
		if err != nil {
			return err
		}
		bytes := 0
		for _, e := range entries {
			bytes += e.Bytes
		}
		headStr := "none"
		if ok {
			headStr = fmt.Sprintf("%d", head)
		}
		fmt.Printf("%s: %d entries, %d bytes, restorable head %s\n", sj, len(entries), bytes, headStr)
	}
	return nil
}

func checkpointInspect(cat *checkpoint.Catalog, sj string, seq uint64) error {
	if seq != 0 {
		payload, err := cat.Backend().Load(sj, seq)
		if err != nil {
			return err
		}
		snap, delta, err := subjob.DecodeCheckpoint(payload)
		if err != nil {
			return err
		}
		if delta != nil {
			fmt.Printf("%s@%d: delta, prev %d, %d units, %d bytes, consumed %v\n",
				sj, seq, delta.PrevSeq, delta.ElementUnits(), len(payload), delta.Consumed)
			return nil
		}
		fmt.Printf("%s@%d: full, %d units, %d bytes, %d PEs, consumed %v\n",
			sj, seq, snap.ElementUnits(), len(payload), len(snap.PEStates), snap.Consumed)
		return nil
	}
	entries, err := cat.Entries(sj)
	if err != nil {
		return err
	}
	head, _, err := cat.Head(sj)
	if err != nil {
		return err
	}
	for _, e := range entries {
		mark := ""
		if e.Seq == head {
			mark = "  <- head"
		}
		link := ""
		if !e.IsFull() {
			link = fmt.Sprintf(" prev %d", e.PrevSeq)
		}
		fmt.Printf("seq %d: %s%s, %d units, %d bytes, stored %s%s\n",
			e.Seq, e.Kind, link, e.Units, e.Bytes,
			time.UnixMilli(e.StoredAt).Format("15:04:05.000"), mark)
	}
	return nil
}

func checkpointRestore(cat *checkpoint.Catalog, sj string) error {
	sjs := []string{sj}
	if sj == "" {
		var err error
		if sjs, err = cat.Subjobs(); err != nil {
			return err
		}
		if len(sjs) == 0 {
			return fmt.Errorf("catalog is empty")
		}
	}
	for _, s := range sjs {
		head, err := cat.Compact(s)
		if err != nil {
			return fmt.Errorf("%s: %w", s, err)
		}
		fmt.Printf("%s: compacted to one full checkpoint at seq %d\n", s, head)
	}
	return nil
}
