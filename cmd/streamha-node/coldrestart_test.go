package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"streamha/internal/clock"
	"streamha/internal/cluster"
	"streamha/internal/machine"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// TestMain doubles as the worker-process entry point for the cold-restart
// test: when the re-exec environment variables are present, the test
// binary plays one streamha-node process instead of running the tests.
func TestMain(m *testing.M) {
	if cfg := os.Getenv("STREAMHA_WORKER_CONFIG"); cfg != "" {
		opts := nodeOptions{
			catalogDir:   os.Getenv("STREAMHA_WORKER_CATALOG"),
			restore:      os.Getenv("STREAMHA_WORKER_RESTORE") == "1",
			checkpointMS: 10,
			rebaseEvery:  4,
		}
		if err := run(cfg, os.Getenv("STREAMHA_WORKER_PROCESS"), opts); err != nil {
			fmt.Fprintf(os.Stderr, "worker: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

type workerProc struct {
	cmd *exec.Cmd
	out *bytes.Buffer
}

// startWorker re-execs the test binary as the "workers" streamha-node
// process — a real OS process with its own TCP listener, so killing it
// models a genuine node crash. The cleanup kills the worker on every
// exit path (including t.Fatal), so a failed run cannot leak a process
// that squats on the listen port of the next.
func startWorker(t *testing.T, cfgPath, catalogDir string, restore bool) *workerProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	restoreFlag := "0"
	if restore {
		restoreFlag = "1"
	}
	cmd.Env = append(os.Environ(),
		"STREAMHA_WORKER_CONFIG="+cfgPath,
		"STREAMHA_WORKER_PROCESS=workers",
		"STREAMHA_WORKER_CATALOG="+catalogDir,
		"STREAMHA_WORKER_RESTORE="+restoreFlag,
	)
	out := &bytes.Buffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	w := &workerProc{cmd: cmd, out: out}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		if t.Failed() {
			t.Logf("worker output (restore=%s):\n%s", restoreFlag, out.String())
		}
	})
	return w
}

// freePorts reserves n distinct TCP ports by binding and releasing them,
// so concurrent or repeated runs never collide on hardcoded ports.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestColdRestartRecovery is the tentpole's acceptance scenario end to
// end: a worker node checkpointing into an on-disk catalog is SIGKILLed
// mid-run, the catalog is compacted with the `checkpoint restore` CLI,
// and a fresh worker process boots with -restore. The source and sink
// run in the test process throughout; at the end every emitted element
// must have been delivered exactly once — zero lost, zero duplicated.
func TestColdRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second subprocess deployment")
	}
	catDir := filepath.Join(t.TempDir(), "catalog")
	ports := freePorts(t, 2)
	ioAddr, workerAddr := ports[0], ports[1]
	dep := deployment{
		Processes: map[string]processDef{
			"io":      {Listen: ioAddr, Machines: []string{"src", "sink"}},
			"workers": {Listen: workerAddr, Machines: []string{"p0"}},
		},
		Job: jobDef{
			ID:            "t",
			Rate:          400,
			SourceMachine: "src",
			SinkMachine:   "sink",
			Subjobs: []subjobDef{
				{ID: "sj0", Mode: "none", Primary: "p0", PEs: 1, CostUS: 10},
			},
		},
		RunSeconds: 60,
	}
	raw, err := json.Marshal(dep)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(t.TempDir(), "job.json")
	if err := os.WriteFile(cfgPath, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	// The source and sink live in the test process, playing the "io" role
	// by hand so the test can audit emission and delivery directly.
	seg, err := transport.NewTCP(transport.TCPConfig{
		Listen: ioAddr,
		Peers:  map[transport.NodeID]string{"p0": workerAddr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	clk := clock.New()
	srcM, err := machine.New("src", clk, seg)
	if err != nil {
		t.Fatal(err)
	}
	sinkM, err := machine.New("sink", clk, seg)
	if err != nil {
		t.Fatal(err)
	}
	sink := cluster.NewSink(cluster.SinkConfig{
		Machine:     sinkM,
		Clock:       clk,
		ID:          "t/sink",
		InStreams:   []string{"t/s1"},
		Owners:      map[string]string{"t/s1": "t/sj0"},
		AckInterval: 10 * time.Millisecond,
		TrackIDs:    true,
	})
	sink.Start()
	defer sink.Stop()
	src := cluster.NewSource(cluster.SourceConfig{
		Machine: srcM,
		Clock:   clk,
		Stream:  "t/s0",
		Rate:    400,
	})
	src.Out().Subscribe("p0", subjob.DataStream("t/sj0", "t/s0"), true)
	src.Start()
	defer src.Stop()

	// Phase 1: a worker checkpoints into the catalog until the stream is
	// demonstrably flowing, then dies without warning.
	w1 := startWorker(t, cfgPath, catDir, false)
	waitUntil(t, 15*time.Second, "first worker to deliver", func() bool {
		return sink.Received() >= 300
	})
	if err := w1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	w1.cmd.Wait()
	killedAt := sink.Received()

	// The catalog on disk must be restorable; compact it through the CLI
	// recovery subcommand, exactly as an operator would.
	if err := runCheckpoint([]string{"restore", "-dir", catDir}); err != nil {
		t.Fatalf("checkpoint restore: %v", err)
	}

	// The source keeps emitting into the dead air for a while: these
	// elements are retained upstream (unacknowledged) and must be
	// recovered by the restarted worker's resync request.
	time.Sleep(300 * time.Millisecond)

	// Phase 2: a fresh process boots from the catalog.
	startWorker(t, cfgPath, catDir, true)
	waitUntil(t, 15*time.Second, "restarted worker to deliver", func() bool {
		return sink.Received() > killedAt+200
	})

	// Stop emission and drain: everything the source ever emitted must
	// reach the sink.
	src.Stop()
	emitted := src.Emitted()
	if emitted == 0 {
		t.Fatal("source emitted nothing")
	}
	waitUntil(t, 20*time.Second, "sink to drain the stream", func() bool {
		return uint64(len(sink.IDCounts())) >= emitted
	})

	counts := sink.IDCounts()
	if uint64(len(counts)) != emitted {
		t.Fatalf("delivered %d distinct elements, source emitted %d", len(counts), emitted)
	}
	lost, dup := 0, 0
	for id := uint64(1); id <= emitted; id++ {
		switch c := counts[id]; {
		case c == 0:
			lost++
		case c > 1:
			dup++
		}
	}
	if lost != 0 || dup != 0 {
		t.Fatalf("exactly-once audit failed: %d lost, %d duplicated of %d emitted", lost, dup, emitted)
	}
	t.Logf("exactly-once audit: %d elements, %d delivered pre-kill, zero lost, zero duplicated",
		emitted, killedAt)
}
