// Command streamha-node runs one process of a multi-process streamha
// deployment over real TCP sockets, demonstrating that the runtime's
// transport abstraction holds beyond the in-process simulator.
//
// A deployment is described by one JSON file shared by all processes; each
// process is started with the name of the process entry it should play:
//
//	streamha-node -config job.json -process feed
//	streamha-node -config job.json -process workers
//	streamha-node -config job.json -process dash
//
// Supported HA modes in multi-process operation are "none" and "active":
// their data planes (duplicate delivery, deduplication, acknowledgment
// trimming) are fully distributed. Passive, hybrid and approx standby
// additionally need the recovery control plane, which this reproduction
// implements in-process (see internal/ha and internal/core); run those
// through the library, the examples or streamha-demo. -mode overrides
// every subjob's configured mode (with -error-budget supplying the approx
// budget), so one config file can be validated against any mode spelling
// even where the mode itself cannot run multi-process.
//
// Example config:
//
//	{
//	  "processes": {
//	    "feed":    {"listen": "127.0.0.1:7101", "machines": ["src"]},
//	    "workers": {"listen": "127.0.0.1:7102", "machines": ["p0", "p1", "s0", "s1"]},
//	    "dash":    {"listen": "127.0.0.1:7103", "machines": ["sink"]}
//	  },
//	  "fault_domains": {"p0": "rack-a", "s0": "rack-b", "p1": "rack-a", "s1": "rack-b"},
//	  "job": {
//	    "id": "job",
//	    "rate": 1000,
//	    "source_machine": "src",
//	    "sink_machine": "sink",
//	    "subjobs": [
//	      {"id": "sj0", "mode": "active", "primary": "p0", "secondary": "s0", "pes": 2, "cost_us": 100},
//	      {"id": "sj1", "mode": "active", "primary": "p1", "secondary": "s1", "pes": 2, "cost_us": 100}
//	    ]
//	  },
//	  "run_seconds": 10
//	}
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/clock"
	"streamha/internal/cluster"
	"streamha/internal/ha"
	"streamha/internal/machine"
	"streamha/internal/metrics"
	"streamha/internal/pe"
	"streamha/internal/sched"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

type deployment struct {
	Processes map[string]processDef `json:"processes"`
	// FaultDomains optionally labels machines with fault domains
	// (machine id -> domain); the -fault-domain flag overrides it.
	FaultDomains map[string]string `json:"fault_domains"`
	Job          jobDef            `json:"job"`
	RunSeconds   int               `json:"run_seconds"`
}

type processDef struct {
	Listen   string   `json:"listen"`
	Machines []string `json:"machines"`
}

type jobDef struct {
	ID            string      `json:"id"`
	Rate          float64     `json:"rate"`
	SourceMachine string      `json:"source_machine"`
	SinkMachine   string      `json:"sink_machine"`
	Subjobs       []subjobDef `json:"subjobs"`
}

type subjobDef struct {
	ID        string `json:"id"`
	Mode      string `json:"mode"`
	Primary   string `json:"primary"`
	Secondary string `json:"secondary"`
	PEs       int    `json:"pes"`
	CostUS    int    `json:"cost_us"`
	StatePad  int    `json:"state_pad"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "checkpoint" {
		if err := runCheckpoint(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "streamha-node checkpoint: %v\n", err)
			os.Exit(1)
		}
		return
	}
	configPath := flag.String("config", "", "deployment JSON file (required)")
	process := flag.String("process", "", "process entry to play (required)")
	snapshot := flag.Int("snapshot", 0, "print a JSON metrics snapshot every N seconds (0: only at exit)")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics as JSON over HTTP at this address (GET /metrics.json)")
	catalogDir := flag.String("catalog-dir", "", "durable checkpoint catalog directory; enables persist-before-ack checkpointing for hosted subjob copies")
	restore := flag.Bool("restore", false, "restore hosted subjob copies from the catalog before starting (requires -catalog-dir)")
	checkpointMS := flag.Int("checkpoint-ms", 50, "checkpoint interval in milliseconds when -catalog-dir is set")
	rebaseEvery := flag.Int("checkpoint-rebase", 4, "with -catalog-dir, take up to N-1 delta checkpoints between full snapshots (1: always full)")
	mode := flag.String("mode", "", "override every subjob's HA mode (one of the ha.Modes names; approx takes its budget from -error-budget)")
	errorBudget := flag.Int("error-budget", 0, "approx-mode error budget: max in-flight elements a failover may lose (required > 0 with -mode approx)")
	metricsTTLMS := flag.Int("metrics-ttl-ms", 0, "cache metrics sources for this many milliseconds between scrapes of /metrics and /metrics.json (0: always re-evaluate)")
	schedOn := flag.Bool("sched", false, "run a placement scheduler over this process's machines: resolves subjobs with empty primary/secondary (single-process deployments), tracks assignments and serves sched metrics")
	faultDomain := flag.String("fault-domain", "", "fault-domain labels: a bare name labels every hosted machine, or per-machine pairs \"w1=rack-a,w2=rack-b\"; overrides the config's fault_domains map")
	flag.Parse()
	if *configPath == "" || *process == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *restore && *catalogDir == "" {
		fmt.Fprintln(os.Stderr, "streamha-node: -restore requires -catalog-dir")
		os.Exit(2)
	}
	opts := nodeOptions{
		snapshotSec:  *snapshot,
		metricsAddr:  *metricsAddr,
		catalogDir:   *catalogDir,
		restore:      *restore,
		checkpointMS: *checkpointMS,
		rebaseEvery:  *rebaseEvery,
		mode:         *mode,
		errorBudget:  *errorBudget,
		metricsTTLMS: *metricsTTLMS,
		sched:        *schedOn,
		faultDomain:  *faultDomain,
	}
	if err := run(*configPath, *process, opts); err != nil {
		fmt.Fprintf(os.Stderr, "streamha-node: %v\n", err)
		os.Exit(1)
	}
}

// nodeOptions carries run's optional knobs (everything beyond the config
// file and the process name).
type nodeOptions struct {
	snapshotSec  int
	metricsAddr  string
	catalogDir   string
	restore      bool
	checkpointMS int
	rebaseEvery  int
	mode         string
	errorBudget  int
	metricsTTLMS int
	sched        bool
	faultDomain  string
}

func run(configPath, process string, opts nodeOptions) error {
	raw, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	var dep deployment
	if err := json.Unmarshal(raw, &dep); err != nil {
		return fmt.Errorf("parse %s: %w", configPath, err)
	}
	self, ok := dep.Processes[process]
	if !ok {
		return fmt.Errorf("process %q not in config", process)
	}
	if opts.mode != "" {
		// -mode overrides every subjob; "approx" composes -error-budget
		// into the canonical "approx:<n>" spelling, so a zero or negative
		// budget fails ParseModeBudget's validation below.
		spec := opts.mode
		if spec == "approx" {
			spec = fmt.Sprintf("approx:%d", opts.errorBudget)
		}
		if _, _, err := ha.ParseModeBudget(spec); err != nil {
			return err
		}
		for i := range dep.Job.Subjobs {
			dep.Job.Subjobs[i].Mode = spec
		}
	}
	for _, sj := range dep.Job.Subjobs {
		mode, err := ha.ParseMode(sj.Mode)
		if err != nil {
			return fmt.Errorf("subjob %s: %w", sj.ID, err)
		}
		if mode != ha.ModeNone && mode != ha.ModeActive {
			return fmt.Errorf("subjob %s: mode %q is not supported multi-process (use none or active; passive/hybrid/approx run in-process)", sj.ID, sj.Mode)
		}
	}

	// Build the peer table: every machine hosted elsewhere maps to its
	// process's listen address.
	peers := map[transport.NodeID]string{}
	for name, p := range dep.Processes {
		if name == process {
			continue
		}
		for _, m := range p.Machines {
			peers[transport.NodeID(m)] = p.Listen
		}
	}

	seg, err := transport.NewTCP(transport.TCPConfig{Listen: self.Listen, Peers: peers})
	if err != nil {
		return err
	}
	defer seg.Close()
	clk := clock.New()

	machines := map[string]*machine.Machine{}
	for _, id := range self.Machines {
		m, err := machine.New(id, clk, seg)
		if err != nil {
			return err
		}
		machines[id] = m
	}

	// Fault-domain labels: the config's map, overridden by -fault-domain
	// (a bare name labels every hosted machine; "w1=rack-a,w2=rack-b"
	// labels specific ones).
	domains := map[string]string{}
	for id, d := range dep.FaultDomains {
		domains[id] = d
	}
	if opts.faultDomain != "" {
		for _, part := range strings.Split(opts.faultDomain, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			if id, d, ok := strings.Cut(part, "="); ok {
				domains[id] = d
			} else {
				for _, id := range self.Machines {
					domains[id] = part
				}
			}
		}
	}

	// Placement scheduler (optional): a replicated placement log over up to
	// three of this process's machines, with every hosted machine admitted
	// as a schedulable member. Subjobs naming no machines are resolved here
	// — only meaningful in a single-process deployment, since other
	// processes wire against the literal names in the shared config.
	var sch *sched.Scheduler
	if opts.sched {
		replicas := make([]*machine.Machine, 0, 3)
		for _, id := range self.Machines {
			if len(replicas) == 3 {
				break
			}
			replicas = append(replicas, machines[id])
		}
		sch, err = sched.New(sched.Config{
			Clock:           clk,
			Replicas:        replicas,
			Tick:            25 * time.Millisecond,
			ElectionTimeout: 150 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		sch.Start()
		defer sch.Stop()
		// Each machine hosts at most one primary and one standby copy. The
		// source and sink hosts stay outside the schedulable pool, like the
		// simulator's testbed.
		const capacity = 2
		members := 0
		for _, id := range self.Machines {
			if id == dep.Job.SourceMachine || id == dep.Job.SinkMachine {
				continue
			}
			if err := sch.MemberUp(id, domains[id], capacity); err != nil {
				return err
			}
			members++
		}
		fmt.Printf("placement scheduler up: %d log replicas, %d schedulable machines\n",
			len(replicas), members)
	}
	resolved := false
	for i := range dep.Job.Subjobs {
		def := &dep.Job.Subjobs[i]
		sjID := dep.Job.ID + "/" + def.ID
		placedPri, placedSec := false, false
		if def.Primary == "" {
			if sch == nil {
				return fmt.Errorf("subjob %s: empty primary requires -sched", def.ID)
			}
			id, err := sch.Place(sched.Request{Subjob: sjID, Role: sched.RolePrimary})
			if err != nil {
				return fmt.Errorf("subjob %s: place primary: %w", def.ID, err)
			}
			def.Primary = id
			resolved, placedPri = true, true
			fmt.Printf("scheduler placed %s primary on %s\n", def.ID, id)
		}
		if def.Mode == "active" && def.Secondary == "" && sch != nil {
			req := sched.Request{
				Subjob:        sjID,
				Role:          sched.RoleStandby,
				AvoidMachines: []string{def.Primary},
			}
			if d := domains[def.Primary]; d != "" {
				req.AvoidDomains = []string{d}
			}
			id, err := sch.Place(req)
			if err != nil {
				return fmt.Errorf("subjob %s: place secondary: %w", def.ID, err)
			}
			def.Secondary = id
			resolved, placedSec = true, true
			fmt.Printf("scheduler placed %s secondary on %s (outside %s)\n", def.ID, id, domains[def.Primary])
		}
		if sch != nil {
			// Record explicitly named copies too, so occupancy and denial
			// accounting cover the whole job; names outside this process's
			// membership are simply not tracked.
			if !placedPri {
				if err := sch.Assign(sjID, sched.RolePrimary, def.Primary); err != nil && !errors.Is(err, sched.ErrUnknownMember) {
					return err
				}
			}
			if def.Secondary != "" && !placedSec {
				if err := sch.Assign(sjID, sched.RoleStandby, def.Secondary); err != nil && !errors.Is(err, sched.ErrUnknownMember) {
					return err
				}
			}
		}
	}
	if resolved && len(dep.Processes) > 1 {
		return fmt.Errorf("scheduler-resolved placement needs a single-process deployment: other processes wire against the names in the shared config")
	}

	streams := make([]string, len(dep.Job.Subjobs)+1)
	for i := range streams {
		streams[i] = fmt.Sprintf("%s/s%d", dep.Job.ID, i)
	}
	specs := make([]subjob.Spec, len(dep.Job.Subjobs))
	for i, def := range dep.Job.Subjobs {
		owner := cluster.SourceOwner
		if i > 0 {
			owner = dep.Job.ID + "/" + dep.Job.Subjobs[i-1].ID
		}
		pes := make([]subjob.PESpec, max(1, def.PEs))
		for j := range pes {
			pad := def.StatePad
			pes[j] = subjob.PESpec{
				Name:     fmt.Sprintf("pe%d", j),
				NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: pad} },
				Cost:     time.Duration(def.CostUS) * time.Microsecond,
			}
		}
		specs[i] = subjob.Spec{
			JobID:     dep.Job.ID,
			ID:        dep.Job.ID + "/" + def.ID,
			InStreams: []string{streams[i]},
			Owners:    map[string]string{streams[i]: owner},
			OutStream: streams[i+1],
			PEs:       pes,
		}
	}

	// consumerTargets lists every copy of subjob i (or the sink) with its
	// data-stream name — wiring each local producer needs it.
	consumerTargets := func(i int) [][2]string {
		if i == len(dep.Job.Subjobs) {
			last := streams[len(streams)-1]
			return [][2]string{{dep.Job.SinkMachine, subjob.DataStream(dep.Job.ID+"/sink", last)}}
		}
		def := dep.Job.Subjobs[i]
		ds := subjob.DataStream(specs[i].ID, streams[i])
		out := [][2]string{{def.Primary, ds}}
		if def.Mode == "active" && def.Secondary != "" {
			out = append(out, [2]string{def.Secondary, ds})
		}
		return out
	}

	var stop []func()

	// Every component this process hosts registers in one metrics registry,
	// polled for the periodic report and the exit snapshot.
	reg := metrics.NewRegistry()
	if opts.metricsTTLMS > 0 {
		reg.SetSourceTTL(time.Duration(opts.metricsTTLMS) * time.Millisecond)
	}
	reg.Register("transport", func() any { return seg.Stats() })
	if sch != nil {
		sch.RegisterMetrics(reg)
	}

	// Live metrics endpoint: the same registry snapshot the periodic report
	// prints, pollable over HTTP while the process runs. Started before any
	// component wiring and shut down by defer, so an error on any later
	// path neither leaks the listener nor leaves the server running after
	// run returns.
	if opts.metricsAddr != "" {
		ln, err := net.Listen("tcp", opts.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		srv := &http.Server{Handler: metricsMux(reg)}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			}
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				srv.Close()
			}
		}()
		fmt.Printf("serving metrics at http://%s/metrics.json (JSON) and /metrics (Prometheus)\n", ln.Addr())
	}

	// Durable checkpoint catalog (optional): hosted copies checkpoint into
	// it through catalog-backed stores, and -restore boots them from it.
	var cat *checkpoint.Catalog
	if opts.catalogDir != "" {
		bk, err := checkpoint.NewDiskBackend(opts.catalogDir)
		if err != nil {
			return fmt.Errorf("catalog: %w", err)
		}
		cat = checkpoint.NewCatalog(bk, checkpoint.Retention{MaxCheckpoints: 64})
		reg.Register("catalog", func() any { return cat.Stats() })
		fmt.Printf("durable checkpoint catalog at %s\n", opts.catalogDir)
	}
	if opts.checkpointMS <= 0 {
		opts.checkpointMS = 50
	}

	// Local subjob copies.
	for i, def := range dep.Job.Subjobs {
		for _, host := range copyHosts(def) {
			m := machines[host]
			if m == nil {
				continue
			}
			rt, err := subjob.New(specs[i], m, false)
			if err != nil {
				return err
			}
			// Each copy keeps its own catalog history: two copies of one
			// subjob (active mode) have independent checkpoint sequences.
			catKey := specs[i].ID + "@" + host
			var restoredSeq uint64
			if cat != nil && opts.restore {
				snap, seq, err := cat.Restore(catKey, 0)
				switch {
				case err != nil:
					fmt.Printf("no catalog restore for %s: %v\n", catKey, err)
				default:
					// The runtime has not started: restoring now seeds the
					// PE states, queues and the input dedup floor before any
					// element can arrive and be processed from empty state.
					if err := rt.Restore(snap); err != nil {
						return fmt.Errorf("restore %s: %w", catKey, err)
					}
					restoredSeq = seq
					fmt.Printf("restored %s from catalog at seq %d (%d units)\n", catKey, seq, snap.ElementUnits())
				}
			}
			reg.Register("subjob/"+def.ID+"/"+host, func() any { return rt.Stats() })
			rt.Start()
			for _, tgt := range consumerTargets(i + 1) {
				rt.Out().Subscribe(transport.NodeID(tgt[0]), tgt[1], true)
			}
			if cat != nil {
				// Durable mode: a catalog-backed store on the copy's own
				// machine plus a sweeping checkpoint manager replace the
				// acker — upstream acknowledgments then flow only after the
				// checkpoint covering them is persisted, so a cold restart
				// never finds upstream trimmed past what it can restore.
				store := checkpoint.NewStoreWith(m, specs[i].ID, checkpoint.StoreOptions{
					Catalog:    cat,
					CatalogKey: catKey,
				})
				cm := checkpoint.NewSweeping(checkpoint.Config{
					Runtime:     rt,
					Clock:       clk,
					Interval:    time.Duration(opts.checkpointMS) * time.Millisecond,
					StoreNode:   m.ID(),
					RebaseEvery: opts.rebaseEvery,
					SeqBase:     restoredSeq,
				})
				cm.Start()
				reg.Register("store/"+def.ID+"/"+host, func() any { return store.Stats() })
				reg.Register("ckptmgr/"+def.ID+"/"+host, func() any { return cm.Stats() })
				stop = append(stop, store.Close, cm.Stop, rt.Stop)
			} else {
				acker := checkpoint.NewAcker(rt, clk, 20*time.Millisecond)
				acker.Start()
				stop = append(stop, acker.Stop, rt.Stop)
			}
			if cat != nil {
				// Durable-boot resync: ask each upstream producer to
				// force-replay everything past this copy's acknowledgment
				// floor. After a restore this recovers data sent to the dead
				// process — beyond the sender's watermark but never
				// delivered; on a fresh boot (floor zero) it recovers the
				// stream head emitted before this process was reachable,
				// which the sender also counts as sent. Either way the input
				// dedup floor absorbs the overlap.
				if restoredSeq > 0 {
					rt.Out().RetransmitAll()
				}
				owner := specs[i].Owners[streams[i]]
				ups := upstreamHosts(dep, i)
				resync := func() {
					for _, up := range ups {
						m.Send(transport.NodeID(up), transport.Message{
							Kind:   transport.KindControl,
							Stream: subjob.ResyncStream(owner, streams[i]),
						})
					}
				}
				resync()
				// The request is a single frame on a lazily-dialed
				// transport: if the upstream process is not up yet it is
				// silently dropped, so keep asking until data flows.
				go func(rt *subjob.Runtime, stream string) {
					for attempt := 0; attempt < 20; attempt++ {
						time.Sleep(250 * time.Millisecond)
						if rt.ConsumedPositions()[stream] > 0 {
							return
						}
						resync()
					}
				}(rt, streams[i])
			}
			fmt.Printf("hosting subjob copy %s on %s\n", specs[i].ID, host)
		}
	}

	// Local sink.
	var sink *cluster.Sink
	if m := machines[dep.Job.SinkMachine]; m != nil {
		last := streams[len(streams)-1]
		sink = cluster.NewSink(cluster.SinkConfig{
			Machine:     m,
			Clock:       clk,
			ID:          dep.Job.ID + "/sink",
			InStreams:   []string{last},
			Owners:      map[string]string{last: specs[len(specs)-1].ID},
			AckInterval: 20 * time.Millisecond,
		})
		sink.RegisterMetrics(reg)
		sink.Start()
		stop = append(stop, sink.Stop)
		fmt.Printf("hosting sink on %s\n", dep.Job.SinkMachine)
	}

	// Local source, started last so consumers elsewhere have a moment to
	// come up (operators start the source process last, as the README
	// instructs).
	var src *cluster.Source
	if m := machines[dep.Job.SourceMachine]; m != nil {
		src = cluster.NewSource(cluster.SourceConfig{
			Machine: m,
			Clock:   clk,
			Stream:  streams[0],
			Rate:    dep.Job.Rate,
		})
		for _, tgt := range consumerTargets(0) {
			src.Out().Subscribe(transport.NodeID(tgt[0]), tgt[1], true)
		}
		reg.Register("source", func() any { return src.Stats() })
		src.Start()
		stop = append(stop, src.Stop)
		fmt.Printf("hosting source on %s at %.0f elements/s\n", dep.Job.SourceMachine, dep.Job.Rate)
	}

	// Run until the deadline or a signal.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	deadline := time.Duration(dep.RunSeconds) * time.Second
	if deadline <= 0 {
		deadline = time.Hour
	}
	report := time.NewTicker(2 * time.Second)
	defer report.Stop()
	var snap <-chan time.Time
	if opts.snapshotSec > 0 {
		t := time.NewTicker(time.Duration(opts.snapshotSec) * time.Second)
		defer t.Stop()
		snap = t.C
	}
	end := time.After(deadline)
loop:
	for {
		select {
		case <-sig:
			break loop
		case <-end:
			break loop
		case <-report.C:
			if sink != nil {
				printSinkReport(sink.Delays(), sink.Received())
			} else if src != nil {
				fmt.Printf("source emitted %d elements\n", src.Emitted())
			}
		case <-snap:
			printMetrics(reg)
		}
	}
	for i := len(stop) - 1; i >= 0; i-- {
		stop[i]()
	}
	if sink != nil {
		fmt.Println("final:")
		printSinkReport(sink.Delays(), sink.Received())
	}
	fmt.Println("metrics snapshot:")
	printMetrics(reg)
	return nil
}

// metricsMux serves a fresh registry snapshot on GET /metrics.json (JSON)
// and GET /metrics (Prometheus text exposition), both from the same
// registry, so a scraper and a dashboard observe the same state.
func metricsMux(reg *metrics.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		out, err := reg.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", metrics.PrometheusContentType)
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

func printMetrics(reg *metrics.Registry) {
	out, err := reg.JSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
		return
	}
	fmt.Println(string(out))
}

func copyHosts(def subjobDef) []string {
	hosts := []string{def.Primary}
	if def.Mode == "active" && def.Secondary != "" {
		hosts = append(hosts, def.Secondary)
	}
	return hosts
}

// upstreamHosts lists the machines producing subjob i's input stream: the
// source machine for the first stage, every copy of the previous stage
// otherwise. A restarted copy sends its resync request to each.
func upstreamHosts(dep deployment, i int) []string {
	if i == 0 {
		return []string{dep.Job.SourceMachine}
	}
	return copyHosts(dep.Job.Subjobs[i-1])
}

func printSinkReport(d *metrics.DelayStats, received uint64) {
	fmt.Printf("sink: %d elements, mean delay %.1f ms, p99 %.1f ms\n",
		received, d.Mean().Seconds()*1e3, d.Percentile(99).Seconds()*1e3)
}
