package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"streamha/internal/metrics"
)

// TestThreeProcessDeployment runs the feed/workers/dash roles of the
// bundled active-standby config concurrently in one test process (each
// role opens its own TCP listener, exactly as three OS processes would)
// and checks they all complete a short run.
func TestThreeProcessDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second TCP deployment")
	}
	dep := deployment{
		Processes: map[string]processDef{
			"feed":    {Listen: "127.0.0.1:7301", Machines: []string{"src"}},
			"workers": {Listen: "127.0.0.1:7302", Machines: []string{"p0", "s0"}},
			"dash":    {Listen: "127.0.0.1:7303", Machines: []string{"sink"}},
		},
		Job: jobDef{
			ID:            "t",
			Rate:          500,
			SourceMachine: "src",
			SinkMachine:   "sink",
			Subjobs: []subjobDef{
				{ID: "sj0", Mode: "active", Primary: "p0", Secondary: "s0", PEs: 1, CostUS: 20},
			},
		},
		RunSeconds: 3,
	}
	raw, err := json.Marshal(dep)
	if err != nil {
		t.Fatal(err)
	}
	cfg := filepath.Join(t.TempDir(), "job.json")
	if err := os.WriteFile(cfg, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for _, role := range []string{"dash", "workers", "feed"} {
		wg.Add(1)
		go func(role string) {
			defer wg.Done()
			if err := run(cfg, role, nodeOptions{}); err != nil {
				errs <- err
			}
		}(role)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("role failed: %v", err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("/nonexistent/config.json", "x", nodeOptions{}); err == nil {
		t.Fatal("missing config accepted")
	}

	cfg := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(cfg, []byte("{not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run(cfg, "x", nodeOptions{}); err == nil {
		t.Fatal("malformed config accepted")
	}

	good, _ := json.Marshal(deployment{
		Processes: map[string]processDef{"a": {Listen: "127.0.0.1:0"}},
		Job:       jobDef{ID: "j", Subjobs: []subjobDef{{ID: "s", Mode: "hybrid", Primary: "p"}}},
	})
	cfg2 := filepath.Join(t.TempDir(), "hybrid.json")
	if err := os.WriteFile(cfg2, good, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run(cfg2, "missing", nodeOptions{}); err == nil {
		t.Fatal("unknown process accepted")
	}
	if err := run(cfg2, "a", nodeOptions{}); err == nil {
		t.Fatal("hybrid mode must be rejected multi-process")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Register("probe", func() any { return map[string]int{"value": 42} })
	srv := httptest.NewServer(metricsMux(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]map[string]int
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v\n%s", err, body)
	}
	if snap["probe"]["value"] != 42 {
		t.Fatalf("probe = %v", snap["probe"])
	}

	post, err := http.Post(srv.URL+"/metrics.json", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", post.StatusCode)
	}
}

func TestPrometheusEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Register("probe", func() any { return map[string]int{"value": 42} })
	srv := httptest.NewServer(metricsMux(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.PrometheusContentType {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := "streamha_probe_value 42\n"
	if !strings.Contains(string(body), want) {
		t.Fatalf("exposition missing %q:\n%s", want, body)
	}

	post, err := http.Post(srv.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", post.StatusCode)
	}
}
