// Command fanout deploys a DAG job through the streamha.NewTopology API:
// one event feed fans out to an alerting branch and an analytics branch
// that merge into a dashboard sink, with the stateful analytics branch
// protected by the hybrid method. Tree topologies are the paper's stated
// future work; the acknowledgment/trimming protocol supports them
// natively (an output queue trims only when every consumer acknowledged).
package main

import (
	"fmt"
	"log"
	"time"

	"streamha"
)

func main() {
	cl := streamha.NewCluster(streamha.ClusterConfig{Latency: 200 * time.Microsecond})
	for _, id := range []string{"feed", "dash", "m-enrich", "m-alerts", "m-stats", "m-stats2", "m-join"} {
		cl.MustAddMachine(id)
	}
	defer cl.Close()

	pes := func(cost time.Duration, pad int) []streamha.PESpec {
		return []streamha.PESpec{{
			Name:     "op",
			NewLogic: func() streamha.Logic { return &streamha.CounterLogic{Pad: pad} },
			Cost:     cost,
		}}
	}

	topo, err := streamha.NewTopology(streamha.TopologyConfig{
		Cluster: cl,
		JobID:   "fanout",
		Sources: []streamha.TopologySource{{Name: "events", Machine: "feed", Rate: 2000}},
		Subjobs: []streamha.TopologySubjob{
			{ID: "enrich", Inputs: []string{"events"}, PEs: pes(50*time.Microsecond, 0), Mode: streamha.None, Primary: "m-enrich"},
			{ID: "alerts", Inputs: []string{"enrich"}, PEs: pes(80*time.Microsecond, 0), Mode: streamha.None, Primary: "m-alerts"},
			{
				ID: "stats", Inputs: []string{"enrich"},
				PEs:  pes(150*time.Microsecond, 100), // stateful: protect it
				Mode: streamha.Hybrid, Primary: "m-stats", Secondary: "m-stats2",
			},
			{ID: "join", Inputs: []string{"alerts", "stats"}, PEs: pes(60*time.Microsecond, 0), Mode: streamha.None, Primary: "m-join"},
		},
		Sinks: []streamha.TopologySink{{Name: "dashboard", Machine: "dash", Inputs: []string{"join"}, TrackIDs: true}},
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	if err := topo.Start(); err != nil {
		log.Fatalf("start: %v", err)
	}
	defer topo.Stop()

	fmt.Println("DAG: events -> enrich -> {alerts, stats(hybrid)} -> join -> dashboard")
	time.Sleep(time.Second)

	fmt.Println("stalling the stats branch primary for 500 ms ...")
	cl.Machine("m-stats").CPU().SetBackgroundLoad(1.0)
	time.Sleep(500 * time.Millisecond)
	cl.Machine("m-stats").CPU().SetBackgroundLoad(0)
	time.Sleep(800 * time.Millisecond)

	topo.Source("events").Stop()
	time.Sleep(400 * time.Millisecond)

	g := topo.Group("stats")
	sink := topo.Sink("dashboard")
	fmt.Printf("switchovers on the stats branch: %d (rollbacks: %d)\n",
		len(g.HA.Switches()), len(g.HA.Rollbacks()))
	fmt.Printf("dashboard received %d elements, mean delay %.1f ms\n",
		sink.Received(), sink.Delays().Mean().Seconds()*1e3)

	// Each source event reaches the dashboard twice: once per branch.
	counts := sink.IDCounts()
	twice, other := 0, 0
	for _, n := range counts {
		if n == 2 {
			twice++
		} else {
			other++
		}
	}
	fmt.Printf("per-branch exactly-once: %d ids delivered twice, %d anomalies (tail in flight)\n", twice, other)
}
