// Command intrusion models the paper's network-intrusion-detection
// scenario and compares all four HA modes on the same workload: a packet
// stream flows through a header-parse stage and a stateful per-flow
// counter that emits suspicion scores; the monitored machine suffers
// recurring transient failures. For each mode the example reports the mean
// and tail delay of delivered scores and the traffic paid for them — the
// cost/performance tradeoff of the paper's Figure 4 and Figure 6 in one
// program.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"streamha"
)

// parseLogic extracts a flow key from the packet payload (stateless).
type parseLogic struct{}

func (parseLogic) Process(e streamha.Element, emit func(streamha.Element)) {
	emit(streamha.Element{
		ID:      streamha.DeriveID(e.ID, 0),
		Origin:  e.Origin,
		Payload: e.Payload % 64, // flow key
	})
}
func (parseLogic) Snapshot() []byte     { return nil }
func (parseLogic) Restore([]byte) error { return nil }
func (parseLogic) StateSize() int       { return 0 }

// flowCounterLogic counts packets per flow and emits a score every time a
// flow crosses a threshold — stateful, so its counters must survive
// failures or attacks would be under-counted.
type flowCounterLogic struct {
	counts [64]int64
}

func (l *flowCounterLogic) Process(e streamha.Element, emit func(streamha.Element)) {
	k := int(e.Payload) % len(l.counts)
	l.counts[k]++
	if l.counts[k]%100 == 0 { // periodic score per flow
		emit(streamha.Element{
			ID:      streamha.DeriveID(e.ID, 0),
			Origin:  e.Origin,
			Payload: int64(k)<<32 | l.counts[k],
		})
	}
}

func (l *flowCounterLogic) Snapshot() []byte {
	buf := make([]byte, 8*len(l.counts))
	for i, v := range l.counts {
		binary.BigEndian.PutUint64(buf[i*8:], uint64(v))
	}
	return buf
}

func (l *flowCounterLogic) Restore(b []byte) error {
	if len(b) < 8*len(l.counts) {
		return fmt.Errorf("flow counter: short snapshot")
	}
	for i := range l.counts {
		l.counts[i] = int64(binary.BigEndian.Uint64(b[i*8:]))
	}
	return nil
}

func (l *flowCounterLogic) StateSize() int { return len(l.counts) / 4 }

func run(mode streamha.Mode) (mean, p99 time.Duration, scores uint64, traffic int64, err error) {
	cl := streamha.NewCluster(streamha.ClusterConfig{Latency: 200 * time.Microsecond})
	for _, id := range []string{"tap", "siem", "sensor", "standby"} {
		cl.MustAddMachine(id)
	}
	defer cl.Close()

	pipe, err := streamha.NewPipeline(streamha.PipelineConfig{
		Cluster:     cl,
		JobID:       "nids",
		Source:      streamha.SourceDef{Machine: "tap", Rate: 3000},
		SinkMachine: "siem",
		Subjobs: []streamha.SubjobDef{
			{
				ID:        "sensor",
				Mode:      mode,
				Primary:   "sensor",
				Secondary: "standby",
				PEs: []streamha.PESpec{
					{Name: "parse", NewLogic: func() streamha.Logic { return parseLogic{} }, Cost: 60 * time.Microsecond},
					{Name: "flows", NewLogic: func() streamha.Logic { return &flowCounterLogic{} }, Cost: 120 * time.Microsecond},
				},
			},
		},
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := pipe.Start(); err != nil {
		return 0, 0, 0, 0, err
	}
	defer pipe.Stop()

	inj := streamha.NewInjector(streamha.InjectorConfig{
		CPU:      cl.Machine("sensor").CPU(),
		Clock:    cl.Clock(),
		Pattern:  streamha.Poisson,
		Gap:      streamha.GapForFraction(600*time.Millisecond, 0.3),
		Duration: 600 * time.Millisecond,
		LoadMin:  0.95,
		LoadMax:  1.0,
		Seed:     7,
	})
	time.Sleep(500 * time.Millisecond)
	before := cl.Stats()
	inj.Start()
	time.Sleep(4 * time.Second)
	inj.Stop()
	delta := cl.Stats().Sub(before)

	d := pipe.Sink().Delays()
	return d.Mean(), d.Percentile(99), pipe.Sink().Received(), delta.TotalElements(), nil
}

func main() {
	fmt.Println("intrusion detection under 30% transient-failure time, per HA mode:")
	fmt.Printf("%-8s  %12s  %12s  %8s  %14s\n", "mode", "mean(ms)", "p99(ms)", "scores", "traffic(elems)")
	for _, mode := range []streamha.Mode{streamha.None, streamha.Active, streamha.Passive, streamha.Hybrid} {
		mean, p99, scores, traffic, err := run(mode)
		if err != nil {
			log.Fatalf("%s: %v", mode, err)
		}
		fmt.Printf("%-8s  %12.1f  %12.1f  %8d  %14d\n",
			mode, mean.Seconds()*1e3, p99.Seconds()*1e3, scores, traffic)
	}
}
