// Command multiplex demonstrates the hybrid method's multiplexing gain
// (paper Figure 5): three subjobs on three primary machines share a single
// standby machine. Because their standbys are suspended — refreshed in
// memory, consuming no CPU — one machine protects all three subjobs, and
// only concurrent failures make them compete.
package main

import (
	"fmt"
	"log"
	"time"

	"streamha"
)

func deploy(shared bool, fraction float64) (time.Duration, int, error) {
	cl := streamha.NewCluster(streamha.ClusterConfig{Latency: 200 * time.Microsecond})
	cl.MustAddMachine("src")
	cl.MustAddMachine("sink")
	secondaries := make([]string, 3)
	for i := 0; i < 3; i++ {
		cl.MustAddMachine(fmt.Sprintf("p%d", i))
		if shared {
			secondaries[i] = "standby"
		} else {
			secondaries[i] = fmt.Sprintf("s%d", i)
		}
	}
	if shared {
		cl.MustAddMachine("standby")
	} else {
		for i := 0; i < 3; i++ {
			cl.MustAddMachine(secondaries[i])
		}
	}
	defer cl.Close()

	pes := func() []streamha.PESpec {
		return []streamha.PESpec{
			{Name: "stage", NewLogic: func() streamha.Logic { return &streamha.CounterLogic{Pad: 50} }, Cost: 250 * time.Microsecond},
		}
	}
	defs := make([]streamha.SubjobDef, 3)
	for i := range defs {
		defs[i] = streamha.SubjobDef{
			PEs:       pes(),
			Mode:      streamha.Hybrid,
			Primary:   fmt.Sprintf("p%d", i),
			Secondary: secondaries[i],
		}
	}
	pipe, err := streamha.NewPipeline(streamha.PipelineConfig{
		Cluster:     cl,
		JobID:       "mux",
		Source:      streamha.SourceDef{Machine: "src", Rate: 1000},
		SinkMachine: "sink",
		Subjobs:     defs,
	})
	if err != nil {
		return 0, 0, err
	}
	if err := pipe.Start(); err != nil {
		return 0, 0, err
	}
	defer pipe.Stop()
	time.Sleep(500 * time.Millisecond)

	// Independent failures on each primary, present `fraction` of the time.
	var injectors []*streamha.Injector
	for i := 0; i < 3; i++ {
		inj := streamha.NewInjector(streamha.InjectorConfig{
			CPU:      cl.Machine(fmt.Sprintf("p%d", i)).CPU(),
			Clock:    cl.Clock(),
			Pattern:  streamha.Poisson,
			Gap:      streamha.GapForFraction(600*time.Millisecond, fraction),
			Duration: 600 * time.Millisecond,
			LoadMin:  0.95,
			LoadMax:  1.0,
			Seed:     int64(100 + i),
		})
		inj.Start()
		injectors = append(injectors, inj)
	}
	time.Sleep(4 * time.Second)
	switches := 0
	for _, g := range pipe.Groups() {
		switches += len(g.HA.Switches())
	}
	for _, inj := range injectors {
		inj.Stop()
	}
	return pipe.Sink().Delays().Mean(), switches, nil
}

func main() {
	fmt.Println("three hybrid subjobs; shared standby machine vs one standby machine each:")
	fmt.Printf("%-14s  %-10s  %12s  %10s\n", "failure-time", "standbys", "mean(ms)", "switchovers")
	for _, fraction := range []float64{0.1, 0.2, 0.3} {
		for _, shared := range []bool{false, true} {
			mean, switches, err := deploy(shared, fraction)
			if err != nil {
				log.Fatal(err)
			}
			label := "dedicated"
			if shared {
				label = "shared"
			}
			fmt.Printf("%-14s  %-10s  %12.1f  %10d\n",
				fmt.Sprintf("%.0f%%", fraction*100), label, mean.Seconds()*1e3, switches)
		}
	}
	fmt.Println("\nshared ≈ dedicated at low failure fractions: the standby machine is")
	fmt.Println("multiplexed across subjobs because suspended copies consume no CPU.")
}
