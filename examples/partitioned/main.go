// Command partitioned demonstrates keyed parallelism: one pipeline stage
// fanned out over four hybrid-protected partition-instances by a stable
// hash of each element's key, then grown to five instances live — full
// snapshot plus chained delta checkpoints ship the donor's state while it
// keeps serving, and the cutover is a sub-millisecond routing-table flip.
// The program ends with an exactly-once audit over every emitted element.
package main

import (
	"fmt"
	"log"
	"time"

	"streamha"
)

func main() {
	// Machines: source, sink, four primaries with standbys, and a spare
	// pair for the instance added later.
	cl := streamha.NewCluster(streamha.ClusterConfig{Latency: 200 * time.Microsecond})
	for _, id := range []string{"src", "sink", "p0", "p1", "p2", "p3", "s0", "s1", "s2", "s3", "p4", "s4"} {
		cl.MustAddMachine(id)
	}
	defer cl.Close()

	// One keyed-parallel stage: Parallelism(4) splits the key space over
	// four instances, each an independent hybrid-protected subjob. The
	// per-element cost makes a single instance top out around 25k
	// elements/s, so the offered 60k/s needs the fan-out.
	pipe, err := streamha.NewPipeline(streamha.PipelineConfig{
		Cluster:     cl,
		JobID:       "partitioned",
		Source:      streamha.SourceDef{Machine: "src", Rate: 60000, Tick: 2 * time.Millisecond},
		SinkMachine: "sink",
		Subjobs: []streamha.SubjobDef{{
			PEs: []streamha.PESpec{
				{Name: "count", NewLogic: func() streamha.Logic { return &streamha.CounterLogic{Pad: 50} }, Cost: 40 * time.Microsecond},
			},
			Mode:        streamha.Hybrid,
			Parallelism: 4,
			Primaries:   []string{"p0", "p1", "p2", "p3"},
			Secondaries: []string{"s0", "s1", "s2", "s3"},
			BatchSize:   32,
		}},
		TrackIDs: true,
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	if err := pipe.Start(); err != nil {
		log.Fatalf("start: %v", err)
	}
	defer pipe.Stop()

	time.Sleep(1 * time.Second)
	split := pipe.StagePartitioner(0)
	st := split.Stats()
	fmt.Printf("steady state: %d elements through %d instances (%v partitions each)\n",
		pipe.Sink().Received(), st.Instances, st.PerInst)

	// Grow to five instances while serving. The donor keeps processing
	// through the snapshot and delta rounds; the only pause is the final
	// delta under a drained backlog.
	fmt.Println("scaling out to 5 instances live ...")
	rep, err := pipe.ScaleOut(0, streamha.RescalePlacement{Primary: "p4", Secondary: "s4"}, streamha.RescaleOptions{})
	if err != nil {
		log.Fatalf("scale out: %v", err)
	}
	fmt.Printf("rescale: %d partitions moved from instance %d, %d B full + %d B delta over %d rounds, cutover pause %.2f ms\n",
		len(rep.Moved), rep.Donor, rep.FullBytes, rep.DeltaBytes, rep.Rounds,
		rep.CutoverPause.Seconds()*1e3)

	time.Sleep(1 * time.Second)
	st = split.Stats()
	fmt.Printf("after rescale: %d elements through %d instances (%v partitions each)\n",
		pipe.Sink().Received(), st.Instances, st.PerInst)

	// Exactly-once audit: stop the source, drain, and check that every
	// emitted element was delivered exactly once through the rescale.
	pipe.Source().Stop()
	time.Sleep(500 * time.Millisecond)
	emitted := pipe.Source().Emitted()
	counts := pipe.Sink().IDCounts()
	var dup, lost uint64
	for id := uint64(1); id <= emitted; id++ {
		switch c := counts[id]; {
		case c == 0:
			lost++
		case c > 1:
			dup += uint64(c - 1)
		}
	}
	fmt.Printf("audit: %d emitted, %d delivered, %d lost, %d duplicated\n",
		emitted, pipe.Sink().Received(), lost, dup)
}
