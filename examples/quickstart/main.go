// Command quickstart is the smallest end-to-end streamha program: a
// two-subjob pipeline protected by the hybrid method, a transient failure
// injected on one primary, and the resulting switchover/rollback cycle and
// delay impact printed.
package main

import (
	"fmt"
	"log"
	"time"

	"streamha"
)

func main() {
	// A cluster of six simulated machines on a 200 µs LAN.
	cl := streamha.NewCluster(streamha.ClusterConfig{Latency: 200 * time.Microsecond})
	for _, id := range []string{"src", "sink", "p0", "p1", "s0", "s1"} {
		cl.MustAddMachine(id)
	}
	defer cl.Close()

	// Each subjob runs two stateful counting PEs costing 300 µs per element.
	pes := func() []streamha.PESpec {
		return []streamha.PESpec{
			{Name: "count-a", NewLogic: func() streamha.Logic { return &streamha.CounterLogic{Pad: 50} }, Cost: 300 * time.Microsecond},
			{Name: "count-b", NewLogic: func() streamha.Logic { return &streamha.CounterLogic{Pad: 50} }, Cost: 300 * time.Microsecond},
		}
	}

	pipe, err := streamha.NewPipeline(streamha.PipelineConfig{
		Cluster:     cl,
		JobID:       "quickstart",
		Source:      streamha.SourceDef{Machine: "src", Rate: 1000},
		SinkMachine: "sink",
		Subjobs: []streamha.SubjobDef{
			{PEs: pes(), Mode: streamha.Hybrid, Primary: "p0", Secondary: "s0"},
			{PEs: pes(), Mode: streamha.Hybrid, Primary: "p1", Secondary: "s1"},
		},
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	if err := pipe.Start(); err != nil {
		log.Fatalf("start: %v", err)
	}
	defer pipe.Stop()

	// Normal conditions.
	time.Sleep(1 * time.Second)
	healthy := pipe.Sink().Delays().Mean()
	fmt.Printf("steady state: %d elements delivered, mean delay %.1f ms\n",
		pipe.Sink().Received(), healthy.Seconds()*1e3)

	// A transient failure: co-located load pins p0 at ~100% CPU for 800 ms.
	fmt.Println("injecting an 800 ms CPU spike on p0 ...")
	spikeStart := time.Now()
	cl.Machine("p0").CPU().SetBackgroundLoad(1.0)
	time.Sleep(800 * time.Millisecond)
	cl.Machine("p0").CPU().SetBackgroundLoad(0)
	time.Sleep(1 * time.Second)

	g := pipe.Group(0)
	for i, sw := range g.HA.Switches() {
		fmt.Printf("switchover %d: detected %.1f ms into the failure, standby active %.1f ms later\n",
			i+1, sw.DetectedAt.Sub(spikeStart).Seconds()*1e3, sw.ReadyAt.Sub(sw.DetectedAt).Seconds()*1e3)
	}
	for i, rb := range g.HA.Rollbacks() {
		fmt.Printf("rollback %d: %.1f ms, %d element-units of state read back (adopted=%v)\n",
			i+1, rb.DoneAt.Sub(rb.StartedAt).Seconds()*1e3, rb.StateUnits, rb.Adopted)
	}
	fmt.Printf("after recovery: %d elements delivered, overall mean delay %.1f ms (p99 %.1f ms)\n",
		pipe.Sink().Received(),
		pipe.Sink().Delays().Mean().Seconds()*1e3,
		pipe.Sink().Delays().Percentile(99).Seconds()*1e3)
}
