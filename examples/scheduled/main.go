// Command scheduled demonstrates consensus-backed, fault-domain-aware
// placement: a pipeline whose subjobs name no machines, resolved by the
// cluster scheduler with primary and standby always in different racks.
// Two injected machine failures — first the standby's host (a crash the
// heartbeat detector cannot see, because it lived there), then the
// primary's — each end in an automatic re-arm onto fresh capacity, where
// static placement would have settled unprotected. The program prints
// every placement and re-arm decision and ends with an exactly-once
// audit.
package main

import (
	"fmt"
	"log"
	"time"

	"streamha"
)

func main() {
	// Three racks of two workers each, plus source, sink and three
	// placement-log replicas. The log replicas are added before the
	// scheduler is bound, keeping them outside the schedulable pool.
	cl := streamha.NewCluster(streamha.ClusterConfig{Latency: 200 * time.Microsecond})
	defer cl.Close()
	cl.MustAddMachine("src")
	cl.MustAddMachine("sink")
	sch, err := streamha.NewScheduler(streamha.SchedulerConfig{
		Clock: cl.Clock(),
		Replicas: []*streamha.Machine{
			cl.MustAddMachine("sched-a"),
			cl.MustAddMachine("sched-b"),
			cl.MustAddMachine("sched-c"),
		},
		Tick:            5 * time.Millisecond,
		ElectionTimeout: 40 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("scheduler: %v", err)
	}
	sch.Start()
	defer sch.Stop()
	cl.BindScheduler(sch, 2) // machines added from here on are schedulable
	for id, rack := range map[string]string{
		"w1": "rack-a", "w2": "rack-a",
		"w3": "rack-b", "w4": "rack-b",
		"w5": "rack-c", "w6": "rack-c",
	} {
		cl.MustAddMachineIn(id, rack)
	}

	// No Primary/Secondary names: the scheduler places both copies, never
	// in the same fault domain. RearmInterval is how often each lifecycle
	// health-checks its standby and repairs protection via the scheduler.
	pipe, err := streamha.NewPipeline(streamha.PipelineConfig{
		Cluster:     cl,
		JobID:       "scheduled",
		Source:      streamha.SourceDef{Machine: "src", Rate: 500},
		SinkMachine: "sink",
		Subjobs: []streamha.SubjobDef{{
			PEs: []streamha.PESpec{
				{Name: "count", NewLogic: func() streamha.Logic { return &streamha.CounterLogic{Pad: 100} }, Cost: 100 * time.Microsecond},
			},
			Mode:      streamha.Hybrid,
			BatchSize: 16,
		}},
		Hybrid: streamha.HybridOptions{
			HeartbeatInterval:  20 * time.Millisecond,
			CheckpointInterval: 10 * time.Millisecond,
			FailStopAfter:      120 * time.Millisecond,
		},
		TrackIDs:      true,
		Scheduler:     sch,
		RearmInterval: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	if err := pipe.Start(); err != nil {
		log.Fatalf("start: %v", err)
	}
	defer pipe.Stop()

	g := pipe.AllGroups()[0]
	where := func() (pri, sby string) {
		pri = string(g.HA.PrimaryRuntime().Machine().ID())
		if m := g.HA.StandbyMachine(); m != nil {
			sby = string(m.ID())
		}
		return
	}
	pri, sby := where()
	fmt.Printf("scheduler placed: primary=%s (%s)  standby=%s (%s)  leader=%s\n",
		pri, cl.Domain(pri), sby, cl.Domain(sby), sch.Leader())

	clk := cl.Clock()
	clk.Sleep(500 * time.Millisecond)

	// Failure 1: kill the standby's host. The detector lived there, so no
	// switchover fires — the periodic health check notices the dead
	// standby and the scheduler supplies a replacement outside the
	// primary's rack.
	fmt.Printf("\ncrashing standby host %s ...\n", sby)
	if err := cl.CrashMachine(sby); err != nil {
		log.Fatalf("crash: %v", err)
	}
	waitProtected(cl, g)
	pri, sby = where()
	fmt.Printf("re-armed: primary=%s (%s)  standby=%s (%s)\n", pri, cl.Domain(pri), sby, cl.Domain(sby))

	// Failure 2: kill the primary's host. One missed heartbeat switches
	// over, the persistent outage promotes the standby, and the scheduler
	// re-protects the promoted primary on yet another machine.
	fmt.Printf("\ncrashing primary host %s ...\n", pri)
	if err := cl.CrashMachine(pri); err != nil {
		log.Fatalf("crash: %v", err)
	}
	waitProtected(cl, g)
	pri, sby = where()
	fmt.Printf("failed over and re-armed: primary=%s (%s)  standby=%s (%s)\n",
		pri, cl.Domain(pri), sby, cl.Domain(sby))

	clk.Sleep(500 * time.Millisecond)

	// Every scheduler-driven protection repair, as the lifecycle saw it.
	fmt.Println("\nre-arm decisions:")
	for _, ev := range g.HA.Rearms() {
		fmt.Printf("  %s  new standby on %s\n", ev.At.Format("15:04:05.000"), ev.Host)
	}
	st := sch.Stats()
	fmt.Printf("scheduler: %d placements, %d denials, %d leader changes\n",
		st.Placements, st.Denials, st.LeaderChanges)

	// Exactly-once audit across both failures.
	pipe.Source().Stop()
	clk.Sleep(500 * time.Millisecond)
	emitted := pipe.Source().Emitted()
	counts := pipe.Sink().IDCounts()
	var dup, lost uint64
	for id := uint64(1); id <= emitted; id++ {
		switch c := counts[id]; {
		case c == 0:
			lost++
		case c > 1:
			dup += uint64(c - 1)
		}
	}
	fmt.Printf("audit: %d emitted, %d delivered, %d lost, %d duplicated\n",
		emitted, pipe.Sink().Received(), lost, dup)
}

// waitProtected polls until the group is Protected with live primary and
// standby machines — i.e. any in-flight failover and re-arm completed.
func waitProtected(cl *streamha.Cluster, g *streamha.Group) {
	clk := cl.Clock()
	for i := 0; i < 300; i++ {
		m := g.HA.StandbyMachine()
		if m != nil && !m.Crashed() && !g.HA.PrimaryRuntime().Machine().Crashed() &&
			g.HA.State().String() == "protected" {
			return
		}
		clk.Sleep(10 * time.Millisecond)
	}
	log.Fatal("subjob did not return to protected")
}
