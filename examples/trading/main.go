// Command trading models the paper's motivating financial-analysis
// scenario: a tick stream flows through a normalizer, a stateful VWAP
// (volume-weighted average price) window aggregator and an alert filter,
// with the stateful stage protected by the hybrid method. Co-located jobs
// on its machine cause recurring transient unavailability; the example
// reports how the pipeline rides through them.
//
// It also demonstrates writing custom PE logic against the public API:
// each operator implements streamha.Logic with checkpointable state.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"streamha"
)

// normalizeLogic scales raw tick payloads into price points (stateless,
// selectivity 1).
type normalizeLogic struct{}

func (normalizeLogic) Process(e streamha.Element, emit func(streamha.Element)) {
	emit(streamha.Element{
		ID:      streamha.DeriveID(e.ID, 0),
		Origin:  e.Origin,
		Payload: 100_00 + e.Payload%1000, // cents
	})
}
func (normalizeLogic) Snapshot() []byte     { return nil }
func (normalizeLogic) Restore([]byte) error { return nil }
func (normalizeLogic) StateSize() int       { return 0 }

// vwapLogic maintains a running volume-weighted average over tumbling
// windows of 20 ticks — the stateful stage whose internal state must
// survive failures.
type vwapLogic struct {
	window int
	filled int
	sum    int64
	lastID uint64
}

func newVWAP() streamha.Logic { return &vwapLogic{window: 20} }

func (l *vwapLogic) Process(e streamha.Element, emit func(streamha.Element)) {
	l.sum += e.Payload
	l.filled++
	l.lastID = e.ID
	if l.filled < l.window {
		return
	}
	avg := l.sum / int64(l.filled)
	l.sum, l.filled = 0, 0
	emit(streamha.Element{ID: streamha.DeriveID(l.lastID, 0), Origin: e.Origin, Payload: avg})
}

func (l *vwapLogic) Snapshot() []byte {
	buf := make([]byte, 24)
	binary.BigEndian.PutUint64(buf[0:8], uint64(l.filled))
	binary.BigEndian.PutUint64(buf[8:16], uint64(l.sum))
	binary.BigEndian.PutUint64(buf[16:24], l.lastID)
	return buf
}

func (l *vwapLogic) Restore(b []byte) error {
	if len(b) < 24 {
		return fmt.Errorf("vwap: short snapshot")
	}
	l.filled = int(binary.BigEndian.Uint64(b[0:8]))
	l.sum = int64(binary.BigEndian.Uint64(b[8:16]))
	l.lastID = binary.BigEndian.Uint64(b[16:24])
	return nil
}

func (l *vwapLogic) StateSize() int { return 1 }

// alertLogic passes only VWAP points outside a band (stateless filter).
type alertLogic struct{}

func (alertLogic) Process(e streamha.Element, emit func(streamha.Element)) {
	if e.Payload < 100_20 || e.Payload > 100_80 {
		emit(streamha.Element{ID: streamha.DeriveID(e.ID, 0), Origin: e.Origin, Payload: e.Payload})
	}
}
func (alertLogic) Snapshot() []byte     { return nil }
func (alertLogic) Restore([]byte) error { return nil }
func (alertLogic) StateSize() int       { return 0 }

func main() {
	cl := streamha.NewCluster(streamha.ClusterConfig{Latency: 200 * time.Microsecond})
	for _, id := range []string{"feed", "dash", "ingest", "analytics", "standby"} {
		cl.MustAddMachine(id)
	}
	defer cl.Close()

	pipe, err := streamha.NewPipeline(streamha.PipelineConfig{
		Cluster:     cl,
		JobID:       "trading",
		Source:      streamha.SourceDef{Machine: "feed", Rate: 2000},
		SinkMachine: "dash",
		Subjobs: []streamha.SubjobDef{
			{
				ID:      "ingest",
				Mode:    streamha.None, // stateless, cheap to re-run
				Primary: "ingest",
				PEs: []streamha.PESpec{
					{Name: "normalize", NewLogic: func() streamha.Logic { return normalizeLogic{} }, Cost: 50 * time.Microsecond},
				},
			},
			{
				ID:        "analytics",
				Mode:      streamha.Hybrid, // stateful: protect it
				Primary:   "analytics",
				Secondary: "standby",
				PEs: []streamha.PESpec{
					{Name: "vwap", NewLogic: newVWAP, Cost: 150 * time.Microsecond},
					{Name: "alert", NewLogic: func() streamha.Logic { return alertLogic{} }, Cost: 50 * time.Microsecond},
				},
			},
		},
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	if err := pipe.Start(); err != nil {
		log.Fatalf("start: %v", err)
	}
	defer pipe.Stop()

	// Other tenants on the analytics machine cause recurring ~600 ms CPU
	// spikes, present about 30% of the time (Poisson arrivals).
	inj := streamha.NewInjector(streamha.InjectorConfig{
		CPU:      cl.Machine("analytics").CPU(),
		Clock:    cl.Clock(),
		Pattern:  streamha.Poisson,
		Gap:      streamha.GapForFraction(600*time.Millisecond, 0.3),
		Duration: 600 * time.Millisecond,
		LoadMin:  0.95,
		LoadMax:  1.0,
		Seed:     42,
	})
	inj.Start()

	fmt.Println("running the trading pipeline for 5s with transient failures on 'analytics' ...")
	time.Sleep(5 * time.Second)
	inj.Stop()
	time.Sleep(500 * time.Millisecond)

	g := pipe.Group(1)
	fmt.Printf("spikes injected:    %d\n", len(inj.Spikes()))
	fmt.Printf("switchovers:        %d\n", len(g.HA.Switches()))
	fmt.Printf("rollbacks:          %d\n", len(g.HA.Rollbacks()))
	fmt.Printf("alerts delivered:   %d\n", pipe.Sink().Received())
	fmt.Printf("mean alert delay:   %.1f ms\n", pipe.Sink().Delays().Mean().Seconds()*1e3)
	fmt.Printf("p99 alert delay:    %.1f ms\n", pipe.Sink().Delays().Percentile(99).Seconds()*1e3)
	dups, gaps := pipe.Sink().In().Drops()
	fmt.Printf("duplicates dropped: %d (gaps: %d — must be 0)\n", dups, gaps)
}
