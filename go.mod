module streamha

go 1.22
