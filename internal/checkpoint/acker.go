package checkpoint

import (
	"sync"
	"time"

	"streamha/internal/clock"
	"streamha/internal/subjob"
)

// Acker periodically acknowledges a subjob copy's consumed positions
// upstream without checkpointing. It is the trim driver for HA modes that
// keep no passive state: NONE, active standby, and a hybrid standby while
// it is activated (the paper's AS phase does not checkpoint).
type Acker struct {
	rt       *subjob.Runtime
	clk      clock.Clock
	interval time.Duration

	mu      sync.Mutex
	started bool
	stop    chan struct{}
	done    chan struct{}
}

// NewAcker creates an acker for rt firing every interval.
func NewAcker(rt *subjob.Runtime, clk clock.Clock, interval time.Duration) *Acker {
	return &Acker{
		rt:       rt,
		clk:      clk,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the ack loop.
func (a *Acker) Start() {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return
	}
	a.started = true
	a.mu.Unlock()
	go a.run()
}

// Stop halts the loop and waits for it.
func (a *Acker) Stop() {
	a.mu.Lock()
	if !a.started {
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	<-a.done
}

func (a *Acker) run() {
	defer close(a.done)
	t := a.clk.NewTicker(a.interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C():
			if a.rt.Suspended() || a.rt.Machine().Crashed() {
				continue
			}
			a.rt.AckUpstream(a.rt.ConsumedPositions())
		}
	}
}
