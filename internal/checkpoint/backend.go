// Durable checkpoint persistence: the Backend interface abstracts where
// catalog entries live, with an in-memory implementation (the hybrid
// method's default — checkpoints refresh standby memory and durability is
// a non-goal) and a local-disk implementation that makes cold-restart
// recovery possible (see catalog.go).
//
// The disk layout is one directory per subjob (the subjob ID is
// path-escaped, since IDs contain '/'):
//
//	<root>/<escaped-subjob>/<seq as %016x>.ckpt   encoded payload (SHS2/SHD2)
//	<root>/<escaped-subjob>/MANIFEST.json         entry index + chain head
//
// Crash safety is temp-file + rename: a payload is written to a .tmp
// name, fsynced, renamed into place, and only then is the manifest
// rewritten (also via temp + rename + fsync). A crash between the two
// leaves an orphaned payload file, which Open adopts back into the
// manifest by peeking its header; a crash mid-write leaves a .tmp file,
// which Open deletes. The manifest is therefore never ahead of the
// payloads it indexes.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"streamha/internal/subjob"
)

// CatalogEntry indexes one persisted checkpoint.
type CatalogEntry struct {
	// Subjob is the copy-agnostic subjob ID the checkpoint belongs to.
	Subjob string `json:"subjob"`
	// Seq is the checkpoint sequence number assigned by the manager.
	Seq uint64 `json:"seq"`
	// Kind is "full" or "delta".
	Kind string `json:"kind"`
	// PrevSeq is the chain predecessor; meaningful only for deltas.
	PrevSeq uint64 `json:"prev_seq,omitempty"`
	// Units is the checkpoint's size in element-equivalents.
	Units int `json:"units"`
	// Bytes is the encoded payload length.
	Bytes int `json:"bytes"`
	// StoredAt is the persist time in Unix milliseconds (0 if unknown).
	StoredAt int64 `json:"stored_at_ms,omitempty"`
}

// IsFull reports whether the entry indexes a full snapshot.
func (e CatalogEntry) IsFull() bool { return e.Kind == KindFull }

// Entry kinds.
const (
	KindFull  = "full"
	KindDelta = "delta"
)

// Backend persists encoded checkpoint payloads keyed by (subjob, seq).
// Implementations must be safe for concurrent use.
type Backend interface {
	// Put persists a payload under its entry, replacing any previous
	// checkpoint with the same (subjob, seq). The backend owns neither
	// slice after the call returns.
	Put(e CatalogEntry, payload []byte) error
	// Load returns the payload stored for (sj, seq).
	Load(sj string, seq uint64) ([]byte, error)
	// List returns the entries stored for sj, sorted by sequence number.
	List(sj string) ([]CatalogEntry, error)
	// Subjobs returns every subjob ID with at least one entry.
	Subjobs() ([]string, error)
	// Remove deletes the checkpoint stored for (sj, seq); removing a
	// missing entry is not an error.
	Remove(sj string, seq uint64) error
}

// MemBackend is the in-memory Backend: catalog semantics (chains,
// retention, restore) without durability. Tests and single-process
// deployments use it.
type MemBackend struct {
	mu      sync.Mutex
	entries map[string]map[uint64]CatalogEntry
	payload map[string]map[uint64][]byte
}

// NewMemBackend creates an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{
		entries: make(map[string]map[uint64]CatalogEntry),
		payload: make(map[string]map[uint64][]byte),
	}
}

// Put implements Backend.
func (m *MemBackend) Put(e CatalogEntry, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.entries[e.Subjob] == nil {
		m.entries[e.Subjob] = make(map[uint64]CatalogEntry)
		m.payload[e.Subjob] = make(map[uint64][]byte)
	}
	m.entries[e.Subjob][e.Seq] = e
	m.payload[e.Subjob][e.Seq] = append([]byte(nil), payload...)
	return nil
}

// Load implements Backend.
func (m *MemBackend) Load(sj string, seq uint64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.payload[sj][seq]
	if !ok {
		return nil, fmt.Errorf("checkpoint: no entry %s/%d", sj, seq)
	}
	return append([]byte(nil), p...), nil
}

// List implements Backend.
func (m *MemBackend) List(sj string) ([]CatalogEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]CatalogEntry, 0, len(m.entries[sj]))
	for _, e := range m.entries[sj] {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Subjobs implements Backend.
func (m *MemBackend) Subjobs() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.entries))
	for sj, es := range m.entries {
		if len(es) > 0 {
			out = append(out, sj)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Remove implements Backend.
func (m *MemBackend) Remove(sj string, seq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.entries[sj], seq)
	delete(m.payload[sj], seq)
	return nil
}

const (
	manifestName = "MANIFEST.json"
	ckptSuffix   = ".ckpt"
	tmpSuffix    = ".tmp"
)

// manifest is the per-subjob on-disk index.
type manifest struct {
	// Entries indexes every payload file, sorted by sequence number.
	Entries []CatalogEntry `json:"entries"`
	// ChainHead is the highest sequence number whose full+delta chain is
	// complete in this directory, recorded for operators inspecting the
	// catalog; the catalog recomputes it from the entries on every GC.
	ChainHead uint64 `json:"chain_head"`
}

// DiskBackend is the local-disk Backend: crash-safe temp-file + rename
// writes of exact-size binary-codec payloads, one directory per subjob
// with a JSON manifest indexing the entries.
type DiskBackend struct {
	root string

	mu sync.Mutex
	// manifests caches each subjob's manifest; loaded (with orphan
	// adoption) on first touch.
	manifests map[string]*manifest
}

// NewDiskBackend opens (creating if necessary) a disk backend rooted at
// dir.
func NewDiskBackend(dir string) (*DiskBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open catalog dir: %w", err)
	}
	return &DiskBackend{root: dir, manifests: make(map[string]*manifest)}, nil
}

// Root returns the backend's root directory.
func (d *DiskBackend) Root() string { return d.root }

func subjobDirName(sj string) string { return url.PathEscape(sj) }

func payloadName(seq uint64) string { return fmt.Sprintf("%016x%s", seq, ckptSuffix) }

func seqOfPayload(name string) (uint64, bool) {
	if !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(name, ckptSuffix), 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func (d *DiskBackend) dirOf(sj string) string { return filepath.Join(d.root, subjobDirName(sj)) }

// writeFileSync writes data to path via a temp file in the same
// directory, fsyncs it, and renames it into place — the write is either
// fully visible under its final name or not at all.
func writeFileSync(path string, data []byte) error {
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a completed rename survives a crash.
// Filesystems that cannot sync directories are tolerated.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	f.Sync()
	return nil
}

// loadManifestLocked returns sj's manifest, reading (and repairing) the
// directory on first touch. The caller holds d.mu.
func (d *DiskBackend) loadManifestLocked(sj string) (*manifest, error) {
	if mf, ok := d.manifests[sj]; ok {
		return mf, nil
	}
	dir := d.dirOf(sj)
	mf := &manifest{}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, mf); err != nil {
			return nil, fmt.Errorf("checkpoint: parse %s manifest: %w", sj, err)
		}
	case os.IsNotExist(err):
		// Fresh subjob (or a crash before the first manifest write).
	default:
		return nil, err
	}

	// Repair: delete interrupted temp writes, drop manifest entries whose
	// payload is gone, and adopt orphaned payload files (renamed into
	// place before the crash cut the manifest update short).
	if names, err := os.ReadDir(dir); err == nil {
		indexed := make(map[uint64]bool, len(mf.Entries))
		for _, e := range mf.Entries {
			indexed[e.Seq] = true
		}
		onDisk := make(map[uint64]bool)
		for _, de := range names {
			name := de.Name()
			if strings.HasSuffix(name, tmpSuffix) {
				os.Remove(filepath.Join(dir, name))
				continue
			}
			seq, ok := seqOfPayload(name)
			if !ok {
				continue
			}
			onDisk[seq] = true
			if indexed[seq] {
				continue
			}
			if e, ok := d.adopt(dir, sj, seq); ok {
				mf.Entries = append(mf.Entries, e)
			}
		}
		kept := mf.Entries[:0]
		for _, e := range mf.Entries {
			if onDisk[e.Seq] {
				kept = append(kept, e)
			}
		}
		mf.Entries = kept
		sort.Slice(mf.Entries, func(i, j int) bool { return mf.Entries[i].Seq < mf.Entries[j].Seq })
	}
	d.manifests[sj] = mf
	return mf, nil
}

// adopt rebuilds the catalog entry for an orphaned payload file by
// peeking its header. Undecodable files are left in place but unindexed.
func (d *DiskBackend) adopt(dir, sj string, seq uint64) (CatalogEntry, bool) {
	raw, err := os.ReadFile(filepath.Join(dir, payloadName(seq)))
	if err != nil {
		return CatalogEntry{}, false
	}
	info, err := subjob.PeekCheckpoint(raw)
	if err != nil {
		return CatalogEntry{}, false
	}
	e := CatalogEntry{Subjob: sj, Seq: seq, Kind: KindFull, Bytes: len(raw)}
	if info.IsDelta {
		e.Kind = KindDelta
		e.PrevSeq = info.PrevSeq
	}
	return e, true
}

// flushManifestLocked rewrites sj's manifest. The caller holds d.mu.
func (d *DiskBackend) flushManifestLocked(sj string, mf *manifest) error {
	raw, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return err
	}
	return writeFileSync(filepath.Join(d.dirOf(sj), manifestName), raw)
}

// Put implements Backend: payload first (temp + fsync + rename), manifest
// second, so the index never references a payload that is not fully on
// disk.
func (d *DiskBackend) Put(e CatalogEntry, payload []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	dir := d.dirOf(e.Subjob)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	mf, err := d.loadManifestLocked(e.Subjob)
	if err != nil {
		return err
	}
	if err := writeFileSync(filepath.Join(dir, payloadName(e.Seq)), payload); err != nil {
		return err
	}
	e.Bytes = len(payload)
	replaced := false
	for i := range mf.Entries {
		if mf.Entries[i].Seq == e.Seq {
			mf.Entries[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		mf.Entries = append(mf.Entries, e)
		sort.Slice(mf.Entries, func(i, j int) bool { return mf.Entries[i].Seq < mf.Entries[j].Seq })
	}
	mf.ChainHead = chainHead(mf.Entries)
	return d.flushManifestLocked(e.Subjob, mf)
}

// Load implements Backend.
func (d *DiskBackend) Load(sj string, seq uint64) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.dirOf(sj), payloadName(seq)))
}

// List implements Backend.
func (d *DiskBackend) List(sj string) ([]CatalogEntry, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	mf, err := d.loadManifestLocked(sj)
	if err != nil {
		return nil, err
	}
	return append([]CatalogEntry(nil), mf.Entries...), nil
}

// Subjobs implements Backend.
func (d *DiskBackend) Subjobs() ([]string, error) {
	names, err := os.ReadDir(d.root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, de := range names {
		if !de.IsDir() {
			continue
		}
		sj, err := url.PathUnescape(de.Name())
		if err != nil {
			continue
		}
		out = append(out, sj)
	}
	sort.Strings(out)
	return out, nil
}

// Remove implements Backend: manifest first, payload second, so a crash
// in between leaves an orphan that the next open re-adopts rather than a
// dangling index entry.
func (d *DiskBackend) Remove(sj string, seq uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	mf, err := d.loadManifestLocked(sj)
	if err != nil {
		return err
	}
	kept := mf.Entries[:0]
	found := false
	for _, e := range mf.Entries {
		if e.Seq == seq {
			found = true
			continue
		}
		kept = append(kept, e)
	}
	if !found {
		return nil
	}
	mf.Entries = kept
	mf.ChainHead = chainHead(mf.Entries)
	if err := d.flushManifestLocked(sj, mf); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(d.dirOf(sj), payloadName(seq))); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
