// The checkpoint catalog: sequence-chained full + delta history per
// subjob on top of a pluggable Backend, with retention by count and age.
// It mirrors the fold logic of Store and core.StandbyStore — a delta is
// meaningful only relative to the entry whose sequence equals its
// PrevSeq — so a catalog restore replays exactly the chain a standby
// would have folded in memory, but from durable storage after a cold
// restart.
package checkpoint

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"streamha/internal/subjob"
)

// Retention bounds how much history a catalog keeps per subjob. The
// chain of the current head is always pinned regardless of either bound:
// collecting a full snapshot that a live delta chain still folds onto
// would make the head unrestorable.
type Retention struct {
	// MaxCheckpoints caps the number of entries per subjob (0: unlimited).
	MaxCheckpoints int
	// MaxAge expires entries older than this (0: unlimited).
	MaxAge time.Duration
}

// Catalog maintains the durable checkpoint history of any number of
// subjobs. It is safe for concurrent use; stores persist into it as they
// acknowledge, and recovery paths read from it.
type Catalog struct {
	b   Backend
	ret Retention
	now func() time.Time

	mu          sync.Mutex
	persisted   map[string]int
	persistErrs map[string]int
	gcRemoved   map[string]int
}

// NewCatalog creates a catalog over b with retention ret.
func NewCatalog(b Backend, ret Retention) *Catalog {
	return &Catalog{
		b:           b,
		ret:         ret,
		now:         time.Now,
		persisted:   make(map[string]int),
		persistErrs: make(map[string]int),
		gcRemoved:   make(map[string]int),
	}
}

// Backend returns the catalog's persistence backend.
func (c *Catalog) Backend() Backend { return c.b }

// SetNow overrides the catalog's time source (age-based retention tests).
func (c *Catalog) SetNow(fn func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = fn
}

// Put persists one encoded checkpoint payload for sj at seq, deriving
// kind and chain linkage from the payload header, then applies retention.
// A failed persist is counted and returned; the caller (a store) must
// then withhold its acknowledgment, since upstream would otherwise trim
// data the catalog cannot recover.
//
// The catalog key sj is normally the payload's own subjob ID and the two
// are cross-checked; sj may also carry an "@instance" suffix
// (e.g. "job/sj0@p0") so several copies of one subjob — each with its
// own checkpoint sequence — keep disjoint histories in one catalog. Only
// the part before the '@' must match the payload.
func (c *Catalog) Put(sj string, seq uint64, units int, payload []byte) error {
	info, err := subjob.PeekCheckpoint(payload)
	base := sj
	if i := strings.IndexByte(sj, '@'); i >= 0 {
		base = sj[:i]
	}
	if err == nil && info.SubjobID != base {
		err = fmt.Errorf("checkpoint: payload for %q cataloged under %q", info.SubjobID, sj)
	}
	if err != nil {
		c.mu.Lock()
		c.persistErrs[sj]++
		c.mu.Unlock()
		return err
	}
	e := CatalogEntry{
		Subjob: sj,
		Seq:    seq,
		Kind:   KindFull,
		Units:  units,
		Bytes:  len(payload),
	}
	if info.IsDelta {
		e.Kind = KindDelta
		e.PrevSeq = info.PrevSeq
	}
	c.mu.Lock()
	e.StoredAt = c.now().UnixMilli()
	c.mu.Unlock()
	if err := c.b.Put(e, payload); err != nil {
		c.mu.Lock()
		c.persistErrs[sj]++
		c.mu.Unlock()
		return err
	}
	c.mu.Lock()
	c.persisted[sj]++
	c.mu.Unlock()
	return c.GC(sj)
}

// Entries returns sj's cataloged checkpoints, sorted by sequence number.
func (c *Catalog) Entries(sj string) ([]CatalogEntry, error) { return c.b.List(sj) }

// Subjobs returns every subjob with cataloged checkpoints.
func (c *Catalog) Subjobs() ([]string, error) { return c.b.Subjobs() }

// chainOf returns the seq-ascending chain ending at the entry with seq
// head: the full snapshot it roots at plus every delta between, walked
// backwards via PrevSeq. ok is false when the chain is incomplete (a
// link is missing or no full snapshot roots it).
func chainOf(bySeq map[uint64]CatalogEntry, head uint64) ([]CatalogEntry, bool) {
	var rev []CatalogEntry
	seq := head
	for {
		e, ok := bySeq[seq]
		if !ok {
			return nil, false
		}
		rev = append(rev, e)
		if e.IsFull() {
			break
		}
		if e.PrevSeq >= seq {
			return nil, false // a delta must chain strictly backwards
		}
		seq = e.PrevSeq
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// chainHead returns the highest sequence number whose chain is complete
// in entries, or 0 when no entry is restorable.
func chainHead(entries []CatalogEntry) uint64 {
	bySeq := make(map[uint64]CatalogEntry, len(entries))
	for _, e := range entries {
		bySeq[e.Seq] = e
	}
	best := uint64(0)
	for _, e := range entries {
		if e.Seq <= best {
			continue
		}
		if _, ok := chainOf(bySeq, e.Seq); ok {
			best = e.Seq
		}
	}
	return best
}

// Head returns the highest restorable sequence number for sj, or ok=false
// when the catalog holds no complete chain for it.
func (c *Catalog) Head(sj string) (uint64, bool, error) {
	entries, err := c.b.List(sj)
	if err != nil {
		return 0, false, err
	}
	head := chainHead(entries)
	return head, head != 0, nil
}

// Restore folds sj's cataloged chain ending at atSeq (0: the current
// head) into a full snapshot, returning it with the sequence number it
// represents. This is the cold-restart counterpart of Store.Latest: the
// same PrevSeq chain, folded by Snapshot.ApplyDelta, but read from
// durable storage.
func (c *Catalog) Restore(sj string, atSeq uint64) (*subjob.Snapshot, uint64, error) {
	entries, err := c.b.List(sj)
	if err != nil {
		return nil, 0, err
	}
	if atSeq == 0 {
		if atSeq = chainHead(entries); atSeq == 0 {
			return nil, 0, fmt.Errorf("checkpoint: no restorable chain for %s", sj)
		}
	}
	bySeq := make(map[uint64]CatalogEntry, len(entries))
	for _, e := range entries {
		bySeq[e.Seq] = e
	}
	chain, ok := chainOf(bySeq, atSeq)
	if !ok {
		return nil, 0, fmt.Errorf("checkpoint: chain for %s@%d is incomplete", sj, atSeq)
	}
	var snap *subjob.Snapshot
	for _, e := range chain {
		payload, err := c.b.Load(sj, e.Seq)
		if err != nil {
			return nil, 0, fmt.Errorf("checkpoint: load %s@%d: %w", sj, e.Seq, err)
		}
		full, delta, err := subjob.DecodeCheckpoint(payload)
		if err != nil {
			return nil, 0, fmt.Errorf("checkpoint: decode %s@%d: %w", sj, e.Seq, err)
		}
		switch {
		case full != nil:
			snap = full
		case snap == nil:
			return nil, 0, fmt.Errorf("checkpoint: chain for %s@%d starts with a delta", sj, atSeq)
		default:
			if err := snap.ApplyDelta(delta); err != nil {
				return nil, 0, fmt.Errorf("checkpoint: fold %s@%d: %w", sj, e.Seq, err)
			}
		}
	}
	return snap, atSeq, nil
}

// Compact folds sj's head chain into a single full snapshot, rewrites it
// at the head sequence number, and removes every other entry. The
// `streamha-node checkpoint restore` subcommand runs it so a restarting
// process restores from one full read.
func (c *Catalog) Compact(sj string) (uint64, error) {
	snap, head, err := c.Restore(sj, 0)
	if err != nil {
		return 0, err
	}
	payload, err := snap.Encode()
	if err != nil {
		return 0, err
	}
	if err := c.Put(sj, head, snap.ElementUnits(), payload); err != nil {
		return 0, err
	}
	entries, err := c.b.List(sj)
	if err != nil {
		return head, err
	}
	for _, e := range entries {
		if e.Seq == head {
			continue
		}
		if err := c.b.Remove(sj, e.Seq); err != nil {
			return head, err
		}
		c.mu.Lock()
		c.gcRemoved[sj]++
		c.mu.Unlock()
	}
	return head, nil
}

// GC applies retention to sj. The head chain is pinned: no entry the
// current head still folds onto is ever collected, whatever the bounds
// say. Entries above the head — deltas that arrived out of order and are
// waiting for a missing link — are pinned too, since a late arrival can
// complete their chain and move the head past them; the age bound alone
// may expire them. Retention counts and expiry apply to everything else,
// oldest first.
func (c *Catalog) GC(sj string) error {
	c.mu.Lock()
	ret := c.ret
	nowMS := c.now().UnixMilli()
	c.mu.Unlock()
	if ret.MaxCheckpoints <= 0 && ret.MaxAge <= 0 {
		return nil
	}
	entries, err := c.b.List(sj)
	if err != nil {
		return err
	}
	bySeq := make(map[uint64]CatalogEntry, len(entries))
	for _, e := range entries {
		bySeq[e.Seq] = e
	}
	head := chainHead(entries)
	pinned := make(map[uint64]bool)
	if head != 0 {
		chain, _ := chainOf(bySeq, head)
		for _, e := range chain {
			pinned[e.Seq] = true
		}
	}
	for _, e := range entries {
		if e.Seq > head {
			pinned[e.Seq] = true
		}
	}

	var victims []CatalogEntry
	if ret.MaxAge > 0 {
		cutoff := nowMS - ret.MaxAge.Milliseconds()
		for _, e := range entries {
			if !pinned[e.Seq] && e.StoredAt > 0 && e.StoredAt < cutoff {
				victims = append(victims, e)
				pinned[e.Seq] = true // claimed: don't double-count below
			}
		}
	}
	if ret.MaxCheckpoints > 0 && len(entries)-len(victims) > ret.MaxCheckpoints {
		excess := len(entries) - len(victims) - ret.MaxCheckpoints
		sorted := append([]CatalogEntry(nil), entries...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
		for _, e := range sorted {
			if excess == 0 {
				break
			}
			if pinned[e.Seq] {
				continue
			}
			victims = append(victims, e)
			excess--
		}
	}
	for _, e := range victims {
		if err := c.b.Remove(sj, e.Seq); err != nil {
			return err
		}
		c.mu.Lock()
		c.gcRemoved[sj]++
		c.mu.Unlock()
	}
	return nil
}

// SubjobCounters is the catalog's per-subjob activity view, merged into
// StoreStats by the stores that persist through it.
type SubjobCounters struct {
	Persisted   int `json:"persisted"`
	PersistErrs int `json:"persist_errors"`
	GCRemoved   int `json:"gc_removed"`
}

// Counters returns the catalog's activity counters for sj.
func (c *Catalog) Counters(sj string) SubjobCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SubjobCounters{
		Persisted:   c.persisted[sj],
		PersistErrs: c.persistErrs[sj],
		GCRemoved:   c.gcRemoved[sj],
	}
}

// CatalogStats is a JSON-marshalable view of the whole catalog, exported
// through the metrics registry.
type CatalogStats struct {
	Subjobs   int `json:"subjobs"`
	Entries   int `json:"entries"`
	Bytes     int `json:"bytes"`
	Persisted int `json:"persisted"`
	Errors    int `json:"persist_errors"`
	GCRemoved int `json:"gc_removed"`
}

// Stats sums entry counts and sizes across every cataloged subjob.
func (c *Catalog) Stats() CatalogStats {
	var st CatalogStats
	if sjs, err := c.b.Subjobs(); err == nil {
		for _, sj := range sjs {
			entries, err := c.b.List(sj)
			if err != nil || len(entries) == 0 {
				continue
			}
			st.Subjobs++
			st.Entries += len(entries)
			for _, e := range entries {
				st.Bytes += e.Bytes
			}
		}
	}
	c.mu.Lock()
	for _, v := range c.persisted {
		st.Persisted += v
	}
	for _, v := range c.persistErrs {
		st.Errors += v
	}
	for _, v := range c.gcRemoved {
		st.GCRemoved += v
	}
	c.mu.Unlock()
	return st
}
