package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"streamha/internal/element"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// ckptSnap builds a one-PE full snapshot whose PE state and consumed
// position identify the checkpoint it stands for.
func ckptSnap(sj string, consumed uint64, state string) *subjob.Snapshot {
	return &subjob.Snapshot{
		SubjobID:   sj,
		Consumed:   map[string]uint64{"in": consumed},
		PEStates:   [][]byte{[]byte(state)},
		Pipes:      [][]element.Element{},
		StateUnits: 1,
	}
}

// ckptDelta builds a delta chaining onto prev that replaces the PE state
// in full (the fallback path, so folds need no patch baseline).
func ckptDelta(sj string, prev, consumed uint64, state string) *subjob.Delta {
	return &subjob.Delta{
		SubjobID:   sj,
		PrevSeq:    prev,
		Consumed:   map[string]uint64{"in": consumed},
		PEDeltas:   [][]byte{nil},
		PEFull:     [][]byte{[]byte(state)},
		Pipes:      [][]element.Element{},
		PipeSet:    []bool{},
		StateUnits: 1,
	}
}

func mustPutSnap(t *testing.T, c *Catalog, sj string, seq uint64, s *subjob.Snapshot) {
	t.Helper()
	payload, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(sj, seq, s.ElementUnits(), payload); err != nil {
		t.Fatalf("put full @%d: %v", seq, err)
	}
}

func mustPutDelta(t *testing.T, c *Catalog, sj string, seq uint64, d *subjob.Delta) {
	t.Helper()
	payload, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(sj, seq, d.ElementUnits(), payload); err != nil {
		t.Fatalf("put delta @%d: %v", seq, err)
	}
}

func seqsOf(t *testing.T, c *Catalog, sj string) []uint64 {
	t.Helper()
	entries, err := c.Entries(sj)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, len(entries))
	for i, e := range entries {
		out[i] = e.Seq
	}
	return out
}

// catalogBackends runs a subtest against both backend implementations.
func catalogBackends(t *testing.T, fn func(t *testing.T, b Backend)) {
	t.Run("mem", func(t *testing.T) { fn(t, NewMemBackend()) })
	t.Run("disk", func(t *testing.T) {
		b, err := NewDiskBackend(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		fn(t, b)
	})
}

func TestCatalogPutRestoreFoldsChain(t *testing.T) {
	catalogBackends(t, func(t *testing.T, b Backend) {
		c := NewCatalog(b, Retention{})
		const sj = "j/sj"
		mustPutSnap(t, c, sj, 1, ckptSnap(sj, 10, "base"))
		mustPutDelta(t, c, sj, 2, ckptDelta(sj, 1, 20, "after-2"))
		mustPutDelta(t, c, sj, 3, ckptDelta(sj, 2, 30, "after-3"))

		head, ok, err := c.Head(sj)
		if err != nil || !ok || head != 3 {
			t.Fatalf("head = %d, %v, %v; want 3", head, ok, err)
		}
		snap, seq, err := c.Restore(sj, 0)
		if err != nil {
			t.Fatal(err)
		}
		if seq != 3 || snap.Consumed["in"] != 30 || string(snap.PEStates[0]) != "after-3" {
			t.Fatalf("restored seq=%d consumed=%v state=%q", seq, snap.Consumed, snap.PEStates[0])
		}
		// Restoring mid-chain replays only the prefix.
		snap, seq, err = c.Restore(sj, 2)
		if err != nil {
			t.Fatal(err)
		}
		if seq != 2 || snap.Consumed["in"] != 20 {
			t.Fatalf("mid-chain restore seq=%d consumed=%v", seq, snap.Consumed)
		}
	})
}

func TestCatalogHeadIgnoresBrokenChains(t *testing.T) {
	c := NewCatalog(NewMemBackend(), Retention{})
	const sj = "j/sj"
	mustPutSnap(t, c, sj, 1, ckptSnap(sj, 10, "base"))
	// Delta at 4 chains onto a missing seq 3: not restorable.
	mustPutDelta(t, c, sj, 4, ckptDelta(sj, 3, 40, "dangling"))
	head, ok, err := c.Head(sj)
	if err != nil || !ok || head != 1 {
		t.Fatalf("head = %d, %v, %v; want 1 (the full)", head, ok, err)
	}
	if _, _, err := c.Restore(sj, 4); err == nil {
		t.Fatal("restore of a broken chain succeeded")
	}
}

// TestCatalogGCPinsHeadChain is the chain-head pinning guarantee: GC must
// never collect a full checkpoint a live delta chain still folds onto,
// however tight the retention bounds are.
func TestCatalogGCPinsHeadChain(t *testing.T) {
	catalogBackends(t, func(t *testing.T, b Backend) {
		c := NewCatalog(b, Retention{MaxCheckpoints: 2})
		const sj = "j/sj"
		mustPutSnap(t, c, sj, 1, ckptSnap(sj, 10, "base"))
		mustPutDelta(t, c, sj, 2, ckptDelta(sj, 1, 20, "d2"))
		mustPutDelta(t, c, sj, 3, ckptDelta(sj, 2, 30, "d3"))

		// Three entries against a bound of two — but all three form the
		// head chain, so every one is pinned.
		if got := seqsOf(t, c, sj); !reflect.DeepEqual(got, []uint64{1, 2, 3}) {
			t.Fatalf("GC collected pinned chain entries: %v", got)
		}
		if _, _, err := c.Restore(sj, 0); err != nil {
			t.Fatalf("head chain not restorable after GC: %v", err)
		}

		// A re-basing full moves the head; the old chain unpins and the
		// count bound finally applies.
		mustPutSnap(t, c, sj, 4, ckptSnap(sj, 40, "rebase"))
		got := seqsOf(t, c, sj)
		if len(got) > 2 {
			t.Fatalf("count bound not applied after rebase: %v", got)
		}
		if got[len(got)-1] != 4 {
			t.Fatalf("rebase full collected: %v", got)
		}
		snap, seq, err := c.Restore(sj, 0)
		if err != nil || seq != 4 || string(snap.PEStates[0]) != "rebase" {
			t.Fatalf("restore after rebase: seq=%d err=%v", seq, err)
		}
	})
}

// TestCatalogGCPinsOutOfOrderDeltas covers the out-of-order arrival case:
// a delta above the head (its link still missing) must survive GC, and
// once the missing link arrives the whole chain — including the full the
// bounds would otherwise have collected — is restorable.
func TestCatalogGCPinsOutOfOrderDeltas(t *testing.T) {
	catalogBackends(t, func(t *testing.T, b Backend) {
		c := NewCatalog(b, Retention{MaxCheckpoints: 1})
		const sj = "j/sj"
		mustPutSnap(t, c, sj, 1, ckptSnap(sj, 10, "base"))
		// Delta 3 arrives before delta 2: head stays 1, 3 dangles above it.
		mustPutDelta(t, c, sj, 3, ckptDelta(sj, 2, 30, "d3"))
		if got := seqsOf(t, c, sj); !reflect.DeepEqual(got, []uint64{1, 3}) {
			t.Fatalf("GC collected the dangling delta or its future base: %v", got)
		}
		// The missing link arrives; the chain completes through it.
		mustPutDelta(t, c, sj, 2, ckptDelta(sj, 1, 20, "d2"))
		head, ok, err := c.Head(sj)
		if err != nil || !ok || head != 3 {
			t.Fatalf("head = %d after late link, want 3 (err=%v)", head, err)
		}
		snap, _, err := c.Restore(sj, 0)
		if err != nil {
			t.Fatalf("late-completed chain not restorable: %v", err)
		}
		if string(snap.PEStates[0]) != "d3" || snap.Consumed["in"] != 30 {
			t.Fatalf("restored state %q consumed %v", snap.PEStates[0], snap.Consumed)
		}
	})
}

func TestCatalogAgeGC(t *testing.T) {
	c := NewCatalog(NewMemBackend(), Retention{MaxAge: time.Minute})
	now := time.Unix(1000, 0)
	c.SetNow(func() time.Time { return now })
	const sj = "j/sj"
	mustPutSnap(t, c, sj, 1, ckptSnap(sj, 10, "old"))
	mustPutDelta(t, c, sj, 2, ckptDelta(sj, 1, 20, "d2"))

	// Both age past the bound, but they are the head chain: pinned.
	now = now.Add(10 * time.Minute)
	if err := c.GC(sj); err != nil {
		t.Fatal(err)
	}
	if got := seqsOf(t, c, sj); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("age GC collected the pinned head chain: %v", got)
	}

	// A fresh re-basing full unpins them; the expired entries go.
	mustPutSnap(t, c, sj, 3, ckptSnap(sj, 30, "fresh"))
	if got := seqsOf(t, c, sj); !reflect.DeepEqual(got, []uint64{3}) {
		t.Fatalf("expired entries survived: %v", got)
	}
	if c.Counters(sj).GCRemoved != 2 {
		t.Fatalf("gc counter = %d, want 2", c.Counters(sj).GCRemoved)
	}
}

func TestCatalogCompact(t *testing.T) {
	catalogBackends(t, func(t *testing.T, b Backend) {
		c := NewCatalog(b, Retention{})
		const sj = "j/sj"
		mustPutSnap(t, c, sj, 1, ckptSnap(sj, 10, "base"))
		mustPutDelta(t, c, sj, 2, ckptDelta(sj, 1, 20, "d2"))
		mustPutDelta(t, c, sj, 3, ckptDelta(sj, 2, 30, "d3"))
		want, _, err := c.Restore(sj, 0)
		if err != nil {
			t.Fatal(err)
		}

		head, err := c.Compact(sj)
		if err != nil || head != 3 {
			t.Fatalf("compact head=%d err=%v", head, err)
		}
		entries, _ := c.Entries(sj)
		if len(entries) != 1 || !entries[0].IsFull() || entries[0].Seq != 3 {
			t.Fatalf("compacted entries: %+v", entries)
		}
		got, seq, err := c.Restore(sj, 0)
		if err != nil || seq != 3 {
			t.Fatalf("restore after compact: seq=%d err=%v", seq, err)
		}
		if got.Consumed["in"] != want.Consumed["in"] || string(got.PEStates[0]) != string(want.PEStates[0]) {
			t.Fatalf("compacted restore diverged: %v vs %v", got.Consumed, want.Consumed)
		}
	})
}

func TestCatalogRejectsForeignPayloadAndAllowsInstanceKeys(t *testing.T) {
	c := NewCatalog(NewMemBackend(), Retention{})
	payload, err := ckptSnap("j/sj", 10, "s").Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("j/other", 1, 1, payload); err == nil {
		t.Fatal("foreign payload accepted")
	}
	if c.Counters("j/other").PersistErrs != 1 {
		t.Fatalf("persist error not counted: %+v", c.Counters("j/other"))
	}
	// An "@instance" suffix keys copies apart while still cross-checking
	// the payload's own subjob ID.
	if err := c.Put("j/sj@p0", 1, 1, payload); err != nil {
		t.Fatalf("instance key rejected: %v", err)
	}
	if err := c.Put("j/other@p0", 1, 1, payload); err == nil {
		t.Fatal("foreign payload accepted under instance key")
	}
	if _, seq, err := c.Restore("j/sj@p0", 0); err != nil || seq != 1 {
		t.Fatalf("instance-keyed restore: seq=%d err=%v", seq, err)
	}
}

// TestDiskBackendSurvivesReopen is the basic durability property: a new
// backend over the same directory sees everything a previous one stored.
func TestDiskBackendSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	b1, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCatalog(b1, Retention{})
	const sj = "j/sj"
	mustPutSnap(t, c1, sj, 1, ckptSnap(sj, 10, "base"))
	mustPutDelta(t, c1, sj, 2, ckptDelta(sj, 1, 20, "d2"))

	b2, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCatalog(b2, Retention{})
	snap, seq, err := c2.Restore(sj, 0)
	if err != nil || seq != 2 {
		t.Fatalf("reopened restore: seq=%d err=%v", seq, err)
	}
	if snap.Consumed["in"] != 20 || string(snap.PEStates[0]) != "d2" {
		t.Fatalf("reopened state %q consumed %v", snap.PEStates[0], snap.Consumed)
	}
}

// TestDiskBackendCrashRecovery simulates the two crash windows of the
// temp-file + rename protocol: a stray .tmp from a crash mid-write is
// deleted, and an orphan payload from a crash between payload rename and
// manifest rewrite is adopted back into the manifest via its header.
func TestDiskBackendCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	b1, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCatalog(b1, Retention{})
	const sj = "j/sj"
	mustPutSnap(t, c1, sj, 1, ckptSnap(sj, 10, "base"))

	// Locate the subjob directory on disk.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("readdir: %v (%d entries)", err, len(entries))
	}
	sjDir := filepath.Join(dir, entries[0].Name())

	// Crash window 1: a half-written temp file.
	if err := os.WriteFile(filepath.Join(sjDir, "garbage.ckpt.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash window 2: a payload renamed into place whose manifest rewrite
	// never happened.
	orphan, err := ckptDelta(sj, 1, 20, "orphan").Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sjDir, "0000000000000002.ckpt"), orphan, 0o644); err != nil {
		t.Fatal(err)
	}

	b2, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCatalog(b2, Retention{})
	list, err := c2.Entries(sj)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[1].Seq != 2 || list[1].Kind != KindDelta || list[1].PrevSeq != 1 {
		t.Fatalf("orphan not adopted: %+v", list)
	}
	snap, seq, err := c2.Restore(sj, 0)
	if err != nil || seq != 2 || string(snap.PEStates[0]) != "orphan" {
		t.Fatalf("restore with adopted orphan: seq=%d err=%v", seq, err)
	}
	files, err := os.ReadDir(sjDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.HasSuffix(f.Name(), ".tmp") {
			t.Fatalf("stray temp file survived recovery: %s", f.Name())
		}
	}
}

// flakyBackend injects Put failures to test persist-before-ack.
type flakyBackend struct {
	Backend
	fail bool
}

func (f *flakyBackend) Put(e CatalogEntry, payload []byte) error {
	if f.fail {
		return errors.New("injected persist failure")
	}
	return f.Backend.Put(e, payload)
}

// TestStorePersistsBeforeAck wires a catalog-backed Store into the full
// manager rig: a checkpoint is acknowledged only once the catalog holds
// it, a persist failure withholds the acknowledgment and reports a chain
// break, and the recovery full re-bases both memory and catalog.
func TestStorePersistsBeforeAck(t *testing.T) {
	r := newRig(t, InMemory)
	fb := &flakyBackend{Backend: NewMemBackend()}
	cat := NewCatalog(fb, Retention{})
	store := NewStoreWith(r.secM, "j/sj2", StoreOptions{Catalog: cat})
	t.Cleanup(store.Close)

	// The rig's default store listens on j/sj; run a second runtime for
	// j/sj2 so streams do not collide.
	spec := r.rt.Spec()
	spec.ID = "j/sj2"
	rt2, err := subjob.New(spec, r.priM, false)
	if err != nil {
		t.Fatal(err)
	}
	rt2.Start()
	t.Cleanup(rt2.Stop)
	cm := NewSweeping(Config{Runtime: rt2, Clock: r.clk, Interval: time.Hour, StoreNode: r.secM.ID()})
	breaks := make(chan struct{}, 8)
	store.SetOnChainBreak(func() {
		select {
		case breaks <- struct{}{}:
		default:
		}
	})
	cm.Start()
	defer cm.Stop()

	feed := func(from, to uint64) {
		t.Helper()
		batch := make([]element.Element, 0, to-from+1)
		for s := from; s <= to; s++ {
			batch = append(batch, element.Element{ID: s, Seq: s, Payload: int64(s)})
		}
		r.upM.Send(r.priM.ID(), transport.Message{
			Kind:     transport.KindData,
			Stream:   subjob.DataStream("j/sj2", "in"),
			Elements: batch,
		})
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if rt2.PEs()[0].Processed() >= to {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("feed: processed %d, want %d", rt2.PEs()[0].Processed(), to)
	}

	feed(1, 5)
	cm.CheckpointNow()
	r.expectAck(t, 5)
	if head, ok, _ := cat.Head("j/sj2"); !ok || head != 1 {
		t.Fatalf("catalog head %d after first checkpoint", head)
	}

	// Persist failures must withhold acknowledgments and flag the chain.
	fb.fail = true
	feed(6, 9)
	cm.CheckpointNow()
	select {
	case seq := <-r.acks:
		t.Fatalf("acked %d though persist failed", seq)
	case <-time.After(100 * time.Millisecond):
	}
	select {
	case <-breaks:
	case <-time.After(2 * time.Second):
		t.Fatal("persist failure did not report a chain break")
	}
	if st := store.Stats(); st.PersistErrors == 0 || st.DurableSeq != 1 {
		t.Fatalf("stats after failure: %+v", st)
	}

	// Recovery: the next full re-bases memory and catalog; the pending
	// acknowledgment is subsumed by the newer one.
	fb.fail = false
	cm.ForceFull()
	feed(10, 12)
	cm.CheckpointNow()
	r.expectAck(t, 12)
	head, ok, _ := cat.Head("j/sj2")
	if !ok || head < 3 {
		t.Fatalf("catalog head %d after recovery", head)
	}
	snap, _, err := cat.Restore("j/sj2", 0)
	if err != nil || snap.Consumed["in"] != 12 {
		t.Fatalf("catalog restore after recovery: consumed %v err %v", snap.Consumed, err)
	}
}

// TestStoreCloseDrainsPendingCheckpoints is the shutdown-race regression
// test: checkpoints already accepted into the store's work queue must be
// stored and acknowledged even when Close races the arrival. Before the
// fix, run()'s stop/work select dropped the queued backlog about half the
// time; twenty rounds make a seed failure overwhelmingly likely.
func TestStoreCloseDrainsPendingCheckpoints(t *testing.T) {
	r := newRig(t, InMemory)
	for round := 0; round < 20; round++ {
		sjID := "j/close" + string(rune('a'+round))
		acks := make(chan uint64, 64)
		r.upM.RegisterStream(subjob.CkptAckStream(sjID), func(_ transport.NodeID, msg transport.Message) {
			acks <- msg.Seq
		})
		s := NewStore(r.secM, sjID, InMemory, 0)

		const n = 8
		for seq := uint64(1); seq <= n; seq++ {
			snap := &subjob.Snapshot{
				SubjobID:   sjID,
				Consumed:   map[string]uint64{"in": seq},
				PEStates:   [][]byte{[]byte("s")},
				Pipes:      [][]element.Element{},
				StateUnits: 1,
			}
			payload, err := snap.Encode()
			if err != nil {
				t.Fatal(err)
			}
			// Inject directly into the accepted backlog, as the transport
			// handler would after accepting delivery.
			s.work <- storeReq{from: r.upM.ID(), msg: transport.Message{
				Kind:   transport.KindControl,
				Stream: subjob.CkptStream(sjID),
				Seq:    seq,
				State:  payload,
			}}
		}
		s.Close()

		got := 0
		deadline := time.After(2 * time.Second)
	recv:
		for got < n {
			select {
			case <-acks:
				got++
			case <-deadline:
				break recv
			}
		}
		if got != n {
			t.Fatalf("round %d: %d/%d queued checkpoints acknowledged after Close", round, got, n)
		}
		if s.Stored() != n {
			t.Fatalf("round %d: stored %d, want %d", round, s.Stored(), n)
		}
		r.upM.UnregisterStream(subjob.CkptAckStream(sjID))
	}
}
