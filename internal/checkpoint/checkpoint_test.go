package checkpoint

import (
	"testing"
	"time"

	"streamha/internal/clock"
	"streamha/internal/element"
	"streamha/internal/machine"
	"streamha/internal/pe"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// rig is a primary runtime plus a secondary-machine store and an upstream
// machine that records acknowledgments.
type rig struct {
	net   *transport.Mem
	clk   clock.Clock
	priM  *machine.Machine
	secM  *machine.Machine
	upM   *machine.Machine
	rt    *subjob.Runtime
	store *Store
	acks  chan uint64
}

func newRig(t *testing.T, backend StoreBackend) *rig {
	t.Helper()
	net := transport.NewMem(transport.MemConfig{})
	t.Cleanup(net.Close)
	clk := clock.New()
	priM, err := machine.New("pri", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	secM, err := machine.New("sec", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	upM, err := machine.New("up1", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	spec := subjob.Spec{
		JobID:     "j",
		ID:        "j/sj",
		InStreams: []string{"in"},
		Owners:    map[string]string{"in": "up"},
		OutStream: "out",
		BatchSize: 8,
		PEs: []subjob.PESpec{
			{Name: "a", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 5} }},
		},
	}
	rt, err := subjob.New(spec, priM, false)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Stop)

	r := &rig{net: net, clk: clk, priM: priM, secM: secM, upM: upM, rt: rt, acks: make(chan uint64, 64)}
	r.store = NewStore(secM, spec.ID, backend, 0)
	t.Cleanup(r.store.Close)
	upM.RegisterStream(subjob.AckStream("up", "in"), func(_ transport.NodeID, msg transport.Message) {
		r.acks <- msg.Seq
	})
	return r
}

func (r *rig) feed(t *testing.T, from, to uint64) {
	t.Helper()
	batch := make([]element.Element, 0, to-from+1)
	for s := from; s <= to; s++ {
		batch = append(batch, element.Element{ID: s, Seq: s, Payload: int64(s)})
	}
	r.upM.Send(r.priM.ID(), transport.Message{
		Kind:     transport.KindData,
		Stream:   subjob.DataStream("j/sj", "in"),
		Elements: batch,
	})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if r.rt.PEs()[0].Processed() >= to {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("feed: processed %d, want %d", r.rt.PEs()[0].Processed(), to)
}

func (r *rig) expectAck(t *testing.T, want uint64) {
	t.Helper()
	select {
	case seq := <-r.acks:
		if seq != want {
			t.Fatalf("ack %d, want %d", seq, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no upstream ack after checkpoint stored")
	}
}

func TestSweepingCheckpointStoresAndAcks(t *testing.T) {
	r := newRig(t, InMemory)
	cm := NewSweeping(Config{Runtime: r.rt, Clock: r.clk, Interval: time.Hour, StoreNode: r.secM.ID()})
	cm.Start()
	defer cm.Stop()

	r.feed(t, 1, 10)
	if paused := cm.CheckpointNow(); paused <= 0 {
		t.Fatal("no pause measured")
	}
	r.expectAck(t, 10)

	snap, ok := r.store.Latest()
	if !ok {
		t.Fatal("store holds nothing")
	}
	if snap.Consumed["in"] != 10 {
		t.Fatalf("stored consumed %v", snap.Consumed)
	}
	if cm.Taken() != 1 || r.store.Stored() != 1 {
		t.Fatalf("taken=%d stored=%d", cm.Taken(), r.store.Stored())
	}
	if cm.MeanPause() <= 0 {
		t.Fatal("no pause stats")
	}
}

func TestSweepingExcludesInputQueue(t *testing.T) {
	r := newRig(t, InMemory)
	cm := NewSweeping(Config{Runtime: r.rt, Clock: r.clk, Interval: time.Hour, StoreNode: r.secM.ID()})
	cm.Start()
	defer cm.Stop()
	r.feed(t, 1, 5)
	cm.CheckpointNow()
	r.expectAck(t, 5)
	snap, _ := r.store.Latest()
	if len(snap.Input) != 0 {
		t.Fatalf("sweeping checkpoint carried %d input elements", len(snap.Input))
	}
}

func TestSweepingTrimTriggersCheckpoint(t *testing.T) {
	r := newRig(t, InMemory)
	cm := NewSweeping(Config{Runtime: r.rt, Clock: r.clk, Interval: time.Hour, StoreNode: r.secM.ID()})
	cm.Start()
	defer cm.Stop()

	// A downstream subscriber acks, trimming the output queue; sweeping
	// must checkpoint immediately without waiting for the timer.
	r.rt.Out().Subscribe("down", "x", true)
	r.feed(t, 1, 6)
	r.rt.Out().Ack("down", 3)

	deadline := time.Now().Add(2 * time.Second)
	for cm.Taken() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if cm.Taken() == 0 {
		t.Fatal("trim did not trigger a checkpoint")
	}
}

func TestSweepingSkipsCrashedMachine(t *testing.T) {
	r := newRig(t, InMemory)
	cm := NewSweeping(Config{Runtime: r.rt, Clock: r.clk, Interval: time.Hour, StoreNode: r.secM.ID()})
	cm.Start()
	defer cm.Stop()
	r.priM.Crash()
	if cm.CheckpointNow() != 0 {
		t.Fatal("checkpointed a crashed machine")
	}
}

func TestSynchronousIncludesInputQueueAndAcksAccepted(t *testing.T) {
	r := newRig(t, InMemory)
	// Pause the PE so pushed data stays in the input queue.
	r.rt.PauseAll()
	batch := make([]element.Element, 5)
	for i := range batch {
		batch[i] = element.Element{ID: uint64(i + 1), Seq: uint64(i + 1)}
	}
	r.upM.Send(r.priM.ID(), transport.Message{
		Kind: transport.KindData, Stream: subjob.DataStream("j/sj", "in"), Elements: batch,
	})
	deadline := time.Now().Add(time.Second)
	for r.rt.In().Len() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	cm := NewSynchronous(Config{Runtime: r.rt, Clock: r.clk, Interval: time.Hour, StoreNode: r.secM.ID()})
	cm.Start()
	defer cm.Stop()
	cm.CheckpointNow()
	// Synchronous acks the accepted position (input is in the checkpoint),
	// even though nothing was processed.
	r.expectAck(t, 5)
	snap, _ := r.store.Latest()
	if len(snap.Input) != 5 {
		t.Fatalf("synchronous checkpoint carried %d input elements, want 5", len(snap.Input))
	}
	r.rt.ResumeAll()
}

func TestIndividualEmitsPerPEMessages(t *testing.T) {
	r := newRig(t, InMemory)
	cm := NewIndividual(Config{Runtime: r.rt, Clock: r.clk, Interval: 20 * time.Millisecond, StoreNode: r.secM.ID()})
	cm.Start()
	defer cm.Stop()
	r.feed(t, 1, 4)
	deadline := time.Now().Add(2 * time.Second)
	for cm.Taken() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if cm.Taken() < 2 {
		t.Fatalf("individual checkpoints %d", cm.Taken())
	}
}

func TestStoreDiskBackendSlowerThanMemory(t *testing.T) {
	r := newRig(t, SimulatedDisk)
	cm := NewSweeping(Config{Runtime: r.rt, Clock: r.clk, Interval: time.Hour, StoreNode: r.secM.ID()})
	cm.Start()
	defer cm.Stop()
	r.feed(t, 1, 3)
	start := time.Now()
	cm.CheckpointNow()
	r.expectAck(t, 3)
	if elapsed := time.Since(start); elapsed < DefaultDiskLatency {
		t.Fatalf("disk store acked in %v, faster than the disk write", elapsed)
	}
	// Reads also pay latency.
	start = time.Now()
	if _, ok := r.store.Latest(); !ok {
		t.Fatal("nothing stored")
	}
	if elapsed := time.Since(start); elapsed < DefaultDiskLatency/2 {
		t.Fatalf("disk read took %v", elapsed)
	}
}

func TestStoreKeepsLatestBySeq(t *testing.T) {
	r := newRig(t, InMemory)
	cm := NewSweeping(Config{Runtime: r.rt, Clock: r.clk, Interval: time.Hour, StoreNode: r.secM.ID()})
	cm.Start()
	defer cm.Stop()
	r.feed(t, 1, 4)
	cm.CheckpointNow()
	r.expectAck(t, 4)
	r.feed(t, 5, 9)
	cm.CheckpointNow()
	r.expectAck(t, 9)
	snap, _ := r.store.Latest()
	if snap.Consumed["in"] != 9 {
		t.Fatalf("latest snapshot consumed %v", snap.Consumed)
	}
}

func TestAckerAcksProcessedPositions(t *testing.T) {
	r := newRig(t, InMemory)
	acker := NewAcker(r.rt, r.clk, 10*time.Millisecond)
	acker.Start()
	defer acker.Stop()
	r.feed(t, 1, 7)
	r.expectAck(t, 7)
}

func TestAckerSkipsSuspendedRuntime(t *testing.T) {
	r := newRig(t, InMemory)
	r.feed(t, 1, 3)
	r.rt.Suspend()
	acker := NewAcker(r.rt, r.clk, 5*time.Millisecond)
	acker.Start()
	defer acker.Stop()
	select {
	case seq := <-r.acks:
		t.Fatalf("suspended runtime acked %d", seq)
	case <-time.After(40 * time.Millisecond):
	}
}

func TestCostsDefaulting(t *testing.T) {
	c := Costs{}.orDefault()
	if c != DefaultCosts {
		t.Fatalf("got %+v", c)
	}
	custom := Costs{Base: time.Millisecond}
	if got := custom.orDefault(); got != custom {
		t.Fatalf("custom overridden: %+v", got)
	}
}
