package checkpoint

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"streamha/internal/clock"
	"streamha/internal/machine"
	"streamha/internal/pe"
	"streamha/internal/queue"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

func TestCostsDisabled(t *testing.T) {
	c := Costs{Disabled: true}.orDefault()
	if !c.Disabled {
		t.Fatal("Disabled lost through orDefault")
	}
	if got := c.work(1000); got != 0 {
		t.Fatalf("disabled cost model charges %v", got)
	}
	// Sanity: the implicit default is a real cost model, not disabled.
	if DefaultCosts.Disabled || DefaultCosts.work(1) == 0 {
		t.Fatal("DefaultCosts must model real work")
	}
}

// waitOutLen waits for the runtime's output queue to reach n elements, so
// a following capture sees a settled, deterministic queue.
func waitOutLen(t *testing.T, rt *subjob.Runtime, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if rt.Out().Len() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("output holds %d elements, want %d", rt.Out().Len(), n)
}

// TestIncrementalRestoreEquivalence is the cross-variant regression for
// the incremental protocol: for each checkpoint variant, a store fed a
// full snapshot plus N deltas must hold the byte-identical image a store
// fed only full snapshots holds after the same workload.
func TestIncrementalRestoreEquivalence(t *testing.T) {
	variants := map[string]func(Config) Manager{
		"sweeping":    func(cfg Config) Manager { return NewSweeping(cfg) },
		"synchronous": func(cfg Config) Manager { return NewSynchronous(cfg) },
		"individual":  func(cfg Config) Manager { return NewIndividual(cfg) },
	}
	const rounds = 6
	run := func(t *testing.T, mk func(Config) Manager, rebase int) ([]byte, StoreStats) {
		r := newRig(t, InMemory)
		cm := mk(Config{
			Runtime:     r.rt,
			Clock:       r.clk,
			Interval:    time.Hour,
			StoreNode:   r.secM.ID(),
			Costs:       Costs{Disabled: true},
			RebaseEvery: rebase,
		})
		cm.Start()
		defer cm.Stop()
		next := uint64(1)
		for i := 0; i < rounds; i++ {
			r.feed(t, next, next+19)
			next += 20
			waitOutLen(t, r.rt, int(next-1))
			cm.CheckpointNow()
			r.expectAck(t, next-1)
		}
		snap, ok := r.store.Latest()
		if !ok {
			t.Fatal("store holds nothing")
		}
		if snap.Consumed["in"] != next-1 {
			t.Fatalf("stored image consumed %v, want %d", snap.Consumed, next-1)
		}
		enc, err := snap.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return enc, r.store.Stats()
	}
	for name, mk := range variants {
		t.Run(name, func(t *testing.T) {
			full, fullStats := run(t, mk, 0)
			inc, incStats := run(t, mk, 4)
			if fullStats.DeltaFolds != 0 {
				t.Fatalf("full-only run folded %d deltas", fullStats.DeltaFolds)
			}
			if incStats.DeltaFolds == 0 {
				t.Fatalf("incremental run folded no deltas: %+v", incStats)
			}
			if incStats.DeltaDrops != 0 {
				t.Fatalf("incremental run dropped %d deltas", incStats.DeltaDrops)
			}
			if !bytes.Equal(full, inc) {
				t.Fatalf("%s: full-only image (%d B) != folded full+delta image (%d B)",
					name, len(full), len(inc))
			}
		})
	}
}

// storeHarness drives a Store directly with hand-built checkpoint
// messages, bypassing the manager.
type storeHarness struct {
	store *Store
	pri   *machine.Machine
	sec   *machine.Machine
	acks  chan uint64
}

func newStoreHarness(t *testing.T) *storeHarness {
	t.Helper()
	net := transport.NewMem(transport.MemConfig{})
	t.Cleanup(net.Close)
	clk := clock.New()
	pri, err := machine.New("pri", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := machine.New("sec", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	h := &storeHarness{pri: pri, sec: sec, acks: make(chan uint64, 64)}
	h.store = NewStore(sec, "j/sj", InMemory, 0)
	t.Cleanup(h.store.Close)
	pri.RegisterStream(subjob.CkptAckStream("j/sj"), func(_ transport.NodeID, msg transport.Message) {
		h.acks <- msg.Seq
	})
	return h
}

func (h *storeHarness) send(t *testing.T, seq uint64, state []byte) {
	t.Helper()
	h.pri.Send(h.sec.ID(), transport.Message{
		Kind:   transport.KindCheckpoint,
		Stream: subjob.CkptStream("j/sj"),
		Seq:    seq,
		State:  state,
	})
}

func (h *storeHarness) expectAck(t *testing.T, want uint64) {
	t.Helper()
	select {
	case seq := <-h.acks:
		if seq != want {
			t.Fatalf("ack %d, want %d", seq, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("no ack for checkpoint %d", want)
	}
}

func (h *storeHarness) expectNoAck(t *testing.T) {
	t.Helper()
	select {
	case seq := <-h.acks:
		t.Fatalf("unexpected ack %d", seq)
	case <-time.After(50 * time.Millisecond):
	}
}

func encFull(t *testing.T, consumed uint64, state []byte) []byte {
	t.Helper()
	snap := &subjob.Snapshot{
		SubjobID: "j/sj",
		Consumed: map[string]uint64{"in": consumed},
		PEStates: [][]byte{append([]byte(nil), state...)},
		Output:   queue.OutputSnapshot{StreamID: "out", NextSeq: 1},
	}
	b, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func encDelta(t *testing.T, prevSeq, consumed uint64, stateLen, off int, patch []byte) []byte {
	t.Helper()
	p := pe.AppendPatchHeader(nil, stateLen, 1)
	p = pe.AppendPatchChunk(p, off, patch)
	d := &subjob.Delta{
		SubjobID: "j/sj",
		PrevSeq:  prevSeq,
		Consumed: map[string]uint64{"in": consumed},
		PEDeltas: [][]byte{p},
		PEFull:   [][]byte{nil},
	}
	b, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStoreFoldsDeltasAndDropsBrokenChains exercises the store's chain
// protocol directly: in-order deltas fold and ack; deltas with a sequence
// gap are dropped WITHOUT acking (an ack would let upstream trim data the
// store cannot actually restore); a later full snapshot re-bases.
func TestStoreFoldsDeltasAndDropsBrokenChains(t *testing.T) {
	h := newStoreHarness(t)
	base := make([]byte, 16)
	for i := range base {
		base[i] = byte(i)
	}

	h.send(t, 1, encFull(t, 10, base))
	h.expectAck(t, 1)

	// Chain is at 1; a delta claiming PrevSeq 2 does not fold.
	h.send(t, 3, encDelta(t, 2, 30, 16, 0, []byte{0xEE}))
	h.expectNoAck(t)
	if st := h.store.Stats(); st.DeltaDrops != 1 || st.DeltaFolds != 0 {
		t.Fatalf("after gap delta: %+v", st)
	}
	if snap, _ := h.store.Latest(); snap.Consumed["in"] != 10 {
		t.Fatalf("gap delta mutated the image: %+v", snap.Consumed)
	}

	// The chaining delta folds, acks, and patches the PE state.
	h.send(t, 2, encDelta(t, 1, 20, 16, 4, []byte{0xAA, 0xBB}))
	h.expectAck(t, 2)
	snap, _ := h.store.Latest()
	if snap.Consumed["in"] != 20 {
		t.Fatalf("folded consumed %v", snap.Consumed)
	}
	want := append([]byte(nil), base...)
	want[4], want[5] = 0xAA, 0xBB
	if !bytes.Equal(snap.PEStates[0], want) {
		t.Fatalf("folded state %v, want %v", snap.PEStates[0], want)
	}

	// Latest() hands out a copy: mutating it must not corrupt the image.
	snap.PEStates[0][0] = 0xFF
	if again, _ := h.store.Latest(); again.PEStates[0][0] == 0xFF {
		t.Fatal("Latest() exposed the store's internal image")
	}

	// Still no fold for a delta chaining onto the dropped seq 3.
	h.send(t, 4, encDelta(t, 3, 40, 16, 0, []byte{0x01}))
	h.expectNoAck(t)

	// A fresh full re-bases past the broken chain.
	h.send(t, 5, encFull(t, 50, want))
	h.expectAck(t, 5)
	st := h.store.Stats()
	if st.Fulls != 2 || st.DeltaFolds != 1 || st.DeltaDrops != 2 {
		t.Fatalf("final stats: %+v", st)
	}
}

// TestStoreOutOfOrderBatch: a coalesced backlog holding [delta, full,
// delta] out of order folds correctly — the store sorts by sequence and
// re-bases on the newest full.
func TestStoreOutOfOrderBatch(t *testing.T) {
	h := newStoreHarness(t)
	base := make([]byte, 8)

	// Stall the store's worker behind a first message so the next three
	// coalesce into one batch. Sending is async; just fire them
	// back-to-back — the single worker drains them together more often
	// than not, and the protocol must be correct either way.
	h.send(t, 1, encFull(t, 1, base))
	h.send(t, 3, encDelta(t, 2, 3, 8, 0, []byte{0x33}))
	h.send(t, 2, encFull(t, 2, base))
	h.send(t, 4, encDelta(t, 3, 4, 8, 1, []byte{0x44}))

	got := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		select {
		case seq := <-h.acks:
			got[seq] = true
		case <-time.After(2 * time.Second):
			t.Fatalf("acked %v, missing the rest", got)
		}
	}
	snap, ok := h.store.Latest()
	if !ok {
		t.Fatal("store holds nothing")
	}
	if snap.Consumed["in"] != 4 {
		t.Fatalf("final consumed %v", snap.Consumed)
	}
	if snap.PEStates[0][0] != 0x33 || snap.PEStates[0][1] != 0x44 {
		t.Fatalf("final state %v", snap.PEStates[0])
	}
}

// TestStoreConcurrentAccess hammers the store from a writer and two
// readers; run with -race.
func TestStoreConcurrentAccess(t *testing.T) {
	h := newStoreHarness(t)
	const n = 100
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		state := make([]byte, 32)
		for i := 0; i < n; i++ {
			seq := uint64(i)*2 + 1
			h.send(t, seq, encFull(t, seq, state))
			h.send(t, seq+1, encDelta(t, seq, seq+1, 32, i%32, []byte{byte(i)}))
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if snap, ok := h.store.Latest(); ok && snap.SubjobID != "j/sj" {
					panic("corrupt snapshot")
				}
				_ = h.store.Stats()
				_ = h.store.Stored()
			}
		}()
	}

	deadline := time.After(5 * time.Second)
	acked := 0
	for acked < 2*n {
		select {
		case <-h.acks:
			acked++
		case <-deadline:
			t.Fatalf("only %d/%d acks", acked, 2*n)
		}
	}
	close(stop)
	wg.Wait()
	st := h.store.Stats()
	if st.DeltaDrops != 0 {
		t.Fatalf("in-order chain dropped %d deltas: %+v", st.DeltaDrops, st)
	}
}
