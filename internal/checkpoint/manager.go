// Package checkpoint implements the checkpoint managers of the paper:
// sweeping checkpointing (Section III, adopted from the authors' earlier
// work), plus the synchronous and individual variants it is compared
// against, and the state stores that hold checkpoints on secondary
// machines.
//
// A checkpoint manager drives one subjob copy's pause → snapshot → resume
// cycle, ships the snapshot to a store, and — once the store confirms —
// sends cumulative acknowledgments upstream, which trim upstream output
// queues. Under sweeping checkpointing a trim in turn triggers an
// immediate checkpoint of the trimmed subjob, so one sweep initiated at
// the most-downstream subjob propagates checkpoints all the way upstream.
package checkpoint

import (
	"sync"
	"time"

	"streamha/internal/clock"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// Costs models the CPU cost of taking and encoding one checkpoint. The
// defaults reproduce the relative magnitudes of the paper's testbed
// (checkpointing is cheap but not free).
type Costs struct {
	// Base is charged per checkpoint regardless of size.
	Base time.Duration
	// PerUnit is charged per element-equivalent in the snapshot.
	PerUnit time.Duration
}

// DefaultCosts are used when a Costs field is zero.
var DefaultCosts = Costs{Base: 200 * time.Microsecond, PerUnit: 2 * time.Microsecond}

func (c Costs) orDefault() Costs {
	if c.Base == 0 && c.PerUnit == 0 {
		return DefaultCosts
	}
	return c
}

// Config configures a checkpoint manager.
type Config struct {
	// Runtime is the subjob copy being checkpointed.
	Runtime *subjob.Runtime
	// Clock is the time source.
	Clock clock.Clock
	// Interval is the checkpoint interval (the paper sweeps it from 100 ms
	// to 900 ms; experiments here run at one-tenth scale).
	Interval time.Duration
	// StoreNode is the machine holding the secondary state (a Store or a
	// hybrid standby runtime).
	StoreNode transport.NodeID
	// Costs models checkpoint CPU cost.
	Costs Costs
}

// Manager is the common interface of the checkpointing variants.
type Manager interface {
	// Start launches the manager.
	Start()
	// Stop halts it and waits for its goroutine.
	Stop()
	// CheckpointNow takes one checkpoint synchronously (outside the timer),
	// returning the time the pause lasted. Used by recovery paths and
	// benchmarks.
	CheckpointNow() time.Duration
}

// Sweeping is the sweeping checkpoint manager: a checkpoint is taken
// immediately after the subjob's output queue is trimmed, with the
// interval timer as a fallback seed. Snapshots exclude the input queue.
type Sweeping struct {
	cfg  Config
	trig chan struct{}
	stop chan struct{}
	done chan struct{}

	mu         sync.Mutex
	seq        uint64
	pending    map[uint64]map[string]uint64 // checkpoint seq -> consumed positions
	taken      int
	pauseTotal time.Duration
	lastUnits  int
	unitsTotal int64
	started    bool
}

var _ Manager = (*Sweeping)(nil)

// NewSweeping creates a sweeping manager for cfg.
func NewSweeping(cfg Config) *Sweeping {
	cfg.Costs = cfg.Costs.orDefault()
	return &Sweeping{
		cfg:     cfg,
		trig:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		pending: make(map[uint64]map[string]uint64),
	}
}

// Start implements Manager. It hooks the runtime's trim events and the
// checkpoint-ack stream, then launches the checkpoint loop.
func (s *Sweeping) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()

	rt := s.cfg.Runtime
	rt.Out().SetOnTrim(func() {
		select {
		case s.trig <- struct{}{}:
		default:
		}
	})
	rt.Machine().RegisterStream(subjob.CkptAckStream(rt.Spec().ID), s.onStoreAck)
	go s.run()
}

// Stop implements Manager.
func (s *Sweeping) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
	s.cfg.Runtime.Out().SetOnTrim(nil)
	s.cfg.Runtime.Machine().UnregisterStream(subjob.CkptAckStream(s.cfg.Runtime.Spec().ID))
}

func (s *Sweeping) run() {
	defer close(s.done)
	// The interval timer is a fallback seed: a trim-triggered checkpoint
	// resets it, so the sweep cascade does not double up with the timer.
	for {
		select {
		case <-s.stop:
			return
		case <-s.trig:
			s.CheckpointNow()
		case <-s.cfg.Clock.After(s.cfg.Interval):
			s.CheckpointNow()
		}
	}
}

// CheckpointNow implements Manager: pause, snapshot (without the input
// queue), resume, charge encode cost and ship to the store. The upstream
// acknowledgment is deferred until the store confirms.
func (s *Sweeping) CheckpointNow() time.Duration {
	rt := s.cfg.Runtime
	if rt.Machine().Crashed() {
		return 0
	}
	start := s.cfg.Clock.Now()
	var snap *subjob.Snapshot
	rt.WithPaused(func() {
		snap = rt.Snapshot()
	})
	paused := s.cfg.Clock.Since(start)

	units := snap.ElementUnits()
	rt.Machine().CPU().Execute(s.cfg.Costs.Base + s.cfg.Costs.PerUnit*time.Duration(units))
	state, err := snap.Encode()
	if err != nil {
		return paused
	}

	s.mu.Lock()
	s.seq++
	seq := s.seq
	s.pending[seq] = snap.Consumed
	s.taken++
	s.pauseTotal += paused
	s.lastUnits = units
	s.unitsTotal += int64(units)
	s.mu.Unlock()

	rt.Machine().Send(s.cfg.StoreNode, transport.Message{
		Kind:         transport.KindCheckpoint,
		Stream:       subjob.CkptStream(rt.Spec().ID),
		Seq:          seq,
		State:        state,
		ElementCount: units,
	})
	return paused
}

// onStoreAck releases the upstream acknowledgment for a stored checkpoint:
// the data it covers is now recoverable, so upstream may trim it.
func (s *Sweeping) onStoreAck(_ transport.NodeID, msg transport.Message) {
	s.mu.Lock()
	positions, ok := s.pending[msg.Seq]
	if ok {
		delete(s.pending, msg.Seq)
		// Older unacked checkpoints are subsumed by this one.
		for seq := range s.pending {
			if seq < msg.Seq {
				delete(s.pending, seq)
			}
		}
	}
	s.mu.Unlock()
	if ok {
		s.cfg.Runtime.AckUpstream(positions)
	}
}

// Taken returns how many checkpoints were initiated, for tests and
// benchmarks.
func (s *Sweeping) Taken() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.taken
}

// MeanPause returns the average pause duration per checkpoint.
func (s *Sweeping) MeanPause() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.taken == 0 {
		return 0
	}
	return s.pauseTotal / time.Duration(s.taken)
}

// ManagerStats is a JSON-marshalable view of a checkpoint manager's
// activity, exported through the metrics registry.
type ManagerStats struct {
	Subjob      string  `json:"subjob"`
	Taken       int     `json:"taken"`
	Pending     int     `json:"pending_acks"`
	MeanPauseMS float64 `json:"mean_pause_ms"`
	LastUnits   int     `json:"last_size_units"`
	TotalUnits  int64   `json:"total_size_units"`
}

// Stats captures checkpoint counts, pending store acks and snapshot sizes
// in element units.
func (s *Sweeping) Stats() ManagerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ManagerStats{
		Subjob:     s.cfg.Runtime.Spec().ID,
		Taken:      s.taken,
		Pending:    len(s.pending),
		LastUnits:  s.lastUnits,
		TotalUnits: s.unitsTotal,
	}
	if s.taken > 0 {
		st.MeanPauseMS = float64(s.pauseTotal) / float64(s.taken) / 1e6
	}
	return st
}
