// Package checkpoint implements the checkpoint managers of the paper:
// sweeping checkpointing (Section III, adopted from the authors' earlier
// work), plus the synchronous and individual variants it is compared
// against, and the state stores that hold checkpoints on secondary
// machines.
//
// A checkpoint manager drives one subjob copy's pause → capture → resume
// cycle and hands the captured state to a background shipper that charges
// the modeled encode cost, serializes with the binary snapshot codec, and
// ships to a store; once the store confirms, cumulative acknowledgments go
// upstream, which trim upstream output queues. Under sweeping
// checkpointing a trim in turn triggers an immediate checkpoint of the
// trimmed subjob, so one sweep initiated at the most-downstream subjob
// propagates checkpoints all the way upstream.
//
// With Config.RebaseEvery ≥ 2 the managers checkpoint incrementally: most
// sweeps capture only the state that changed since the previous checkpoint
// (per-PE byte-range patches plus the output queue's newly published
// suffix) and every RebaseEvery-th checkpoint is a full snapshot that
// re-bases the store's folded image. Deltas chain by sequence number; a
// store that cannot fold a delta drops it without acknowledging, and the
// manager rebases as soon as its pending-ack window grows.
package checkpoint

import (
	"sync"
	"time"

	"streamha/internal/clock"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// Costs models the CPU cost of taking and encoding one checkpoint. The
// defaults reproduce the relative magnitudes of the paper's testbed
// (checkpointing is cheap but not free).
type Costs struct {
	// Base is charged per checkpoint regardless of size.
	Base time.Duration
	// PerUnit is charged per element-equivalent in the snapshot.
	PerUnit time.Duration
	// Disabled makes checkpoints genuinely free. A zero-valued Costs is
	// replaced by DefaultCosts, so benchmarks that want to measure the real
	// encode path without the simulated CPU charge set Disabled instead.
	Disabled bool
}

// DefaultCosts are used when a Costs field is zero.
var DefaultCosts = Costs{Base: 200 * time.Microsecond, PerUnit: 2 * time.Microsecond}

func (c Costs) orDefault() Costs {
	if c.Disabled {
		return Costs{Disabled: true}
	}
	if c.Base == 0 && c.PerUnit == 0 {
		return DefaultCosts
	}
	return c
}

// work returns the modeled CPU cost of a checkpoint of the given size.
func (c Costs) work(units int) time.Duration {
	if c.Disabled {
		return 0
	}
	return c.Base + c.PerUnit*time.Duration(units)
}

// Config configures a checkpoint manager.
type Config struct {
	// Runtime is the subjob copy being checkpointed.
	Runtime *subjob.Runtime
	// Clock is the time source.
	Clock clock.Clock
	// Interval is the checkpoint interval (the paper sweeps it from 100 ms
	// to 900 ms; experiments here run at one-tenth scale).
	Interval time.Duration
	// StoreNode is the machine holding the secondary state (a Store or a
	// hybrid standby runtime).
	StoreNode transport.NodeID
	// Costs models checkpoint CPU cost.
	Costs Costs
	// RebaseEvery enables incremental checkpointing: when ≥ 2, up to
	// RebaseEvery-1 delta checkpoints are taken between full snapshots.
	// 0 or 1 captures a full snapshot every time (the classic protocol).
	RebaseEvery int
	// RebaseAdaptive enables the byte-budget rebase policy: deltas keep
	// shipping until their cumulative size since the last full snapshot
	// exceeds that snapshot's size, then the manager rebases. It turns on
	// incremental checkpointing by itself; RebaseEvery remains a manual
	// cadence cap when both are set.
	RebaseAdaptive bool
	// MaxInFlight bounds captured-but-unshipped checkpoints; the capture
	// path blocks once the bound is reached. Default 2.
	MaxInFlight int
	// SeqBase seeds the checkpoint sequence counter. A cold restart that
	// restored catalog sequence N passes N here so new checkpoints continue
	// the chain at N+1 instead of colliding with cataloged history. The
	// first checkpoint after a restart is automatically full (no delta
	// baseline survives the process), so the chain re-roots cleanly.
	SeqBase uint64
	// Partial switches the manager to bounded-error checkpointing (the
	// approx standby policy): after an initial full snapshot every sweep
	// captures an unchained partial frame — hot state ranges only, no
	// output queue, no pipes — instead of a full or chained delta.
	// ForceFull/Resume still force the next capture full.
	Partial bool
}

// Manager is the common interface of the checkpointing variants.
type Manager interface {
	// Start launches the manager.
	Start()
	// Stop halts it and waits for its goroutines.
	Stop()
	// CheckpointNow takes one checkpoint synchronously (outside the timer),
	// returning the time the pause lasted. Used by recovery paths and
	// benchmarks. The encode and ship happen on the background shipper.
	CheckpointNow() time.Duration
	// ForceFull makes the next checkpoint a full snapshot regardless of
	// the incremental cadence — the rebase a standby-side store requests
	// after reporting a broken delta chain.
	ForceFull()
	// Pause suspends checkpointing. A live rescaling pauses the donor's
	// manager while it drives its own CaptureFull/CaptureDelta chain over
	// the same runtime — an interleaved manager capture would reset the
	// runtime's per-PE delta tracking and silently corrupt both chains.
	Pause()
	// Resume re-enables checkpointing and forces the next checkpoint full,
	// re-basing the manager's own delta chain past whatever the pause
	// interleaved.
	Resume()
	// Stats captures the manager's activity for the metrics registry.
	Stats() ManagerStats
}

// Sweeping is the sweeping checkpoint manager: a checkpoint is taken
// immediately after the subjob's output queue is trimmed, with the
// interval timer as a fallback seed. Snapshots exclude the input queue.
type Sweeping struct {
	cfg  Config
	trig chan struct{}
	stop chan struct{}
	done chan struct{}
	ship *shipper

	// capMu serializes capture → sequence assignment → shipper handoff, so
	// checkpoints enter the shipper in sequence order (the delta chain the
	// store folds depends on it).
	capMu sync.Mutex

	mu          sync.Mutex
	seq         uint64
	pending     map[uint64]map[string]uint64 // checkpoint seq -> consumed positions
	taken       int
	pauseTotal  time.Duration
	lastUnits   int
	unitsTotal  int64
	sinceFull   int
	lastOutNext uint64
	fullNext    bool
	paused      bool
	started     bool
}

var _ Manager = (*Sweeping)(nil)

// NewSweeping creates a sweeping manager for cfg.
func NewSweeping(cfg Config) *Sweeping {
	cfg.Costs = cfg.Costs.orDefault()
	return &Sweeping{
		cfg:     cfg,
		seq:     cfg.SeqBase,
		trig:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		ship:    newShipper(cfg),
		pending: make(map[uint64]map[string]uint64),
	}
}

// Start implements Manager. It hooks the runtime's trim events and the
// checkpoint-ack stream, then launches the checkpoint loop.
func (s *Sweeping) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()

	rt := s.cfg.Runtime
	rt.Out().SetOnTrim(func() {
		select {
		case s.trig <- struct{}{}:
		default:
		}
	})
	rt.Machine().RegisterStream(subjob.CkptAckStream(rt.Spec().ID), s.onStoreAck)
	go s.run()
}

// Stop implements Manager.
func (s *Sweeping) Stop() {
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if !started {
		s.ship.stopWait()
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
	s.ship.stopWait()
	s.cfg.Runtime.Out().SetOnTrim(nil)
	s.cfg.Runtime.Machine().UnregisterStream(subjob.CkptAckStream(s.cfg.Runtime.Spec().ID))
}

func (s *Sweeping) run() {
	defer close(s.done)
	// The interval timer is a fallback seed: a trim-triggered checkpoint
	// resets it, so the sweep cascade does not double up with the timer.
	for {
		select {
		case <-s.stop:
			return
		case <-s.trig:
			s.CheckpointNow()
		case <-s.cfg.Clock.After(s.cfg.Interval):
			s.CheckpointNow()
		}
	}
}

// adaptivePendingLimit bounds the pending-ack window under the purely
// adaptive rebase policy (no manual cadence to derive a bound from).
const adaptivePendingLimit = 8

// wantDeltaLocked decides whether the next checkpoint may be incremental:
// rebasing is on (manual cadence or adaptive byte budget), a full baseline
// exists, the manual cadence has not come due, and the store is keeping up
// (a growing pending window means deltas are being dropped — likely an
// unfoldable chain — so rebase with a full). The adaptive policy's byte
// check lives on the shipper (see shipper.rebaseDue), which the callers
// consult after this.
func wantDeltaLocked(cfg *Config, sinceFull int, lastOutNext uint64, pending int) bool {
	if lastOutNext == 0 {
		return false
	}
	manual := cfg.RebaseEvery >= 2
	if !manual && !cfg.RebaseAdaptive {
		return false
	}
	if manual && sinceFull >= cfg.RebaseEvery-1 {
		return false
	}
	limit := adaptivePendingLimit
	if manual {
		limit = cfg.RebaseEvery * 2
	}
	return pending <= limit
}

// CheckpointNow implements Manager: pause, capture (without the input
// queue), resume, then hand off to the background shipper. The upstream
// acknowledgment is deferred until the store confirms.
func (s *Sweeping) CheckpointNow() time.Duration {
	rt := s.cfg.Runtime
	if rt.Machine().Crashed() {
		return 0
	}
	s.capMu.Lock()
	defer s.capMu.Unlock()

	s.mu.Lock()
	if s.paused {
		s.mu.Unlock()
		return 0
	}
	// The first capture in partial mode is still a full snapshot: it seeds
	// the standby's baseline image that later hot-range frames patch.
	tryPartial := s.cfg.Partial && !s.fullNext && s.lastOutNext != 0
	tryDelta := !s.cfg.Partial && !s.fullNext &&
		wantDeltaLocked(&s.cfg, s.sinceFull, s.lastOutNext, len(s.pending))
	s.fullNext = false
	outSince := s.lastOutNext
	s.mu.Unlock()
	if tryDelta && s.cfg.RebaseAdaptive && s.ship.rebaseDue() {
		tryDelta = false
	}

	start := s.cfg.Clock.Now()
	var snap *subjob.Snapshot
	var delta *subjob.Delta
	var part *subjob.Partial
	rt.WithPaused(func() {
		switch {
		case tryPartial:
			part = rt.CapturePartial()
		case tryDelta:
			delta, _ = rt.CaptureDelta(subjob.DeltaOptions{
				OutputSince:   outSince,
				IncludeOutput: true,
				OnlyPE:        -1,
			})
		}
		if part == nil && delta == nil {
			snap = rt.CaptureFull()
		}
	})
	paused := s.cfg.Clock.Since(start)

	var units int
	var consumed map[string]uint64
	var outNext uint64
	switch {
	case part != nil:
		units = part.ElementUnits()
		consumed = part.Consumed
		outNext = part.OutNext
	case delta != nil:
		units = delta.ElementUnits()
		consumed = delta.Consumed
		outNext = delta.Output.NextSeq
	default:
		units = snap.ElementUnits()
		consumed = snap.Consumed
		outNext = snap.Output.NextSeq
	}

	s.mu.Lock()
	s.seq++
	seq := s.seq
	switch {
	case delta != nil:
		delta.PrevSeq = seq - 1
		s.sinceFull++
	case part != nil:
		// Partials are unchained; they neither extend nor reset the delta
		// chain bookkeeping.
	default:
		s.sinceFull = 0
	}
	s.lastOutNext = outNext
	s.pending[seq] = consumed
	s.taken++
	s.pauseTotal += paused
	s.lastUnits = units
	s.unitsTotal += int64(units)
	s.mu.Unlock()

	s.ship.enqueue(shipJob{seq: seq, snap: snap, delta: delta, part: part, units: units})
	return paused
}

// onStoreAck releases the upstream acknowledgment for a stored checkpoint:
// the data it covers is now recoverable, so upstream may trim it.
func (s *Sweeping) onStoreAck(_ transport.NodeID, msg transport.Message) {
	s.mu.Lock()
	positions, ok := s.pending[msg.Seq]
	if ok {
		delete(s.pending, msg.Seq)
		// Older unacked checkpoints are subsumed by this one.
		for seq := range s.pending {
			if seq < msg.Seq {
				delete(s.pending, seq)
			}
		}
	}
	s.mu.Unlock()
	if ok {
		s.cfg.Runtime.AckUpstream(positions)
	}
}

// ForceFull implements Manager.
func (s *Sweeping) ForceFull() {
	s.mu.Lock()
	s.fullNext = true
	s.mu.Unlock()
}

// Pause implements Manager. Taking capMu waits out any in-flight capture,
// so when Pause returns no manager capture is running or will run.
func (s *Sweeping) Pause() {
	s.capMu.Lock()
	defer s.capMu.Unlock()
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

// Resume implements Manager: checkpointing restarts with a full snapshot.
func (s *Sweeping) Resume() {
	s.mu.Lock()
	s.paused = false
	s.fullNext = true
	s.mu.Unlock()
}

// Taken returns how many checkpoints were initiated, for tests and
// benchmarks.
func (s *Sweeping) Taken() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.taken
}

// MeanPause returns the average pause duration per checkpoint.
func (s *Sweeping) MeanPause() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.taken == 0 {
		return 0
	}
	return s.pauseTotal / time.Duration(s.taken)
}

// ManagerStats is a JSON-marshalable view of a checkpoint manager's
// activity, exported through the metrics registry. Pause, encode and ship
// are reported separately — the pause is what tuple latency pays, while
// encode and ship overlap with processing on the background shipper.
type ManagerStats struct {
	Subjob       string  `json:"subjob"`
	Taken        int     `json:"taken"`
	Pending      int     `json:"pending_acks"`
	Fulls        int     `json:"fulls_shipped"`
	Deltas       int     `json:"deltas_shipped"`
	Partials     int     `json:"partials_shipped"`
	MeanPauseMS  float64 `json:"mean_pause_ms"`
	MeanEncodeMS float64 `json:"mean_encode_ms"`
	MeanShipMS   float64 `json:"mean_ship_ms"`
	LastUnits    int     `json:"last_size_units"`
	TotalUnits   int64   `json:"total_size_units"`
	BytesFull    int64   `json:"bytes_full"`
	BytesDelta   int64   `json:"bytes_delta"`
	BytesPartial int64   `json:"bytes_partial"`
	// DeltaRatio is mean delta bytes over mean full bytes; small is good.
	DeltaRatio float64 `json:"delta_ratio"`
}

// Stats implements Manager: checkpoint counts, pending store acks,
// pause/encode/ship timings and full-vs-delta shipped volume.
func (s *Sweeping) Stats() ManagerStats {
	s.mu.Lock()
	st := ManagerStats{
		Subjob:     s.cfg.Runtime.Spec().ID,
		Taken:      s.taken,
		Pending:    len(s.pending),
		LastUnits:  s.lastUnits,
		TotalUnits: s.unitsTotal,
	}
	if s.taken > 0 {
		st.MeanPauseMS = float64(s.pauseTotal) / float64(s.taken) / 1e6
	}
	s.mu.Unlock()
	s.ship.statsInto(&st)
	return st
}
