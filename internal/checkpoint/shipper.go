package checkpoint

import (
	"sync"
	"time"

	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// defaultMaxInFlight bounds how many captured-but-unshipped checkpoints a
// manager may hold: the capture path blocks (backpressure) once this many
// are queued, so a slow store or encode stage throttles the checkpoint
// cadence instead of accumulating unbounded snapshots.
const defaultMaxInFlight = 2

// shipJob is one captured checkpoint waiting for its out-of-pause encode
// and ship. Exactly one of snap, delta and part is set.
type shipJob struct {
	seq   uint64
	snap  *subjob.Snapshot
	delta *subjob.Delta
	part  *subjob.Partial
	units int
}

// shipper is the background encode+ship stage shared by the checkpoint
// variants: the pause window only captures state, and the shipper charges
// the modeled checkpoint CPU cost, encodes with the binary snapshot codec
// into a recycled buffer, and sends the result to the store — all while
// the PEs are back processing. Jobs are shipped strictly in capture order,
// which the store's delta-chain folding relies on.
type shipper struct {
	cfg  Config
	once sync.Once
	jobs chan shipJob
	stop chan struct{}
	done chan struct{}

	// buf is the recycled encode buffer, touched only by the run goroutine.
	buf []byte

	mu           sync.Mutex
	shipped      int
	fulls        int
	deltas       int
	partials     int
	bytesFull    int64
	bytesDelta   int64
	bytesPartial int64
	encodeTotal  time.Duration
	shipTotal    time.Duration

	// lastFullBytes and deltaSinceFull drive the adaptive rebase policy:
	// once the deltas shipped since the last full snapshot outweigh that
	// snapshot, rebasing is cheaper than letting the chain grow.
	lastFullBytes  int64
	deltaSinceFull int64
}

func newShipper(cfg Config) *shipper {
	depth := cfg.MaxInFlight
	if depth <= 0 {
		depth = defaultMaxInFlight
	}
	return &shipper{
		cfg:  cfg,
		jobs: make(chan shipJob, depth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// enqueue hands a captured checkpoint to the background stage, blocking
// while the in-flight bound is reached. It reports false once the shipper
// is stopped. The goroutine starts lazily so CheckpointNow works on
// managers that were never Start()ed (recovery paths, benchmarks).
func (sh *shipper) enqueue(j shipJob) bool {
	sh.once.Do(func() { go sh.run() })
	select {
	case sh.jobs <- j:
		return true
	case <-sh.stop:
		return false
	}
}

// stopWait stops the background stage and waits for it to exit; queued
// but unshipped checkpoints are dropped (their positions stay pending and
// are subsumed by the next manager's checkpoints). Idempotent.
func (sh *shipper) stopWait() {
	select {
	case <-sh.stop:
		return
	default:
	}
	sh.once.Do(func() { go sh.run() })
	close(sh.stop)
	<-sh.done
}

func (sh *shipper) run() {
	defer close(sh.done)
	for {
		select {
		case <-sh.stop:
			return
		case j := <-sh.jobs:
			sh.process(j)
		}
	}
}

func (sh *shipper) process(j shipJob) {
	rt := sh.cfg.Runtime
	if w := sh.cfg.Costs.work(j.units); w > 0 {
		rt.Machine().CPU().Execute(w)
	}

	clk := sh.cfg.Clock
	t0 := clk.Now()
	switch {
	case j.snap != nil:
		sh.buf = j.snap.AppendTo(sh.buf[:0])
	case j.part != nil:
		sh.buf = j.part.AppendTo(sh.buf[:0])
	default:
		sh.buf = j.delta.AppendTo(sh.buf[:0])
	}
	// The message owns its payload (the Mem transport shares slices by
	// reference), so the recycled buffer's contents are copied out.
	state := make([]byte, len(sh.buf))
	copy(state, sh.buf)
	encodeDur := clk.Since(t0)

	t1 := clk.Now()
	rt.Machine().Send(sh.cfg.StoreNode, transport.Message{
		Kind:         transport.KindCheckpoint,
		Stream:       subjob.CkptStream(rt.Spec().ID),
		Seq:          j.seq,
		State:        state,
		ElementCount: j.units,
	})
	shipDur := clk.Since(t1)

	sh.mu.Lock()
	sh.shipped++
	switch {
	case j.snap != nil:
		sh.fulls++
		sh.bytesFull += int64(len(state))
		sh.lastFullBytes = int64(len(state))
		sh.deltaSinceFull = 0
	case j.part != nil:
		sh.partials++
		sh.bytesPartial += int64(len(state))
	default:
		sh.deltas++
		sh.bytesDelta += int64(len(state))
		sh.deltaSinceFull += int64(len(state))
	}
	sh.encodeTotal += encodeDur
	sh.shipTotal += shipDur
	sh.mu.Unlock()
}

// rebaseDue reports whether the adaptive rebase budget is exhausted: the
// cumulative delta bytes shipped since the last full snapshot have reached
// that snapshot's size. The decision trails the capture path by whatever
// is queued on the shipper (at most MaxInFlight deltas), which only delays
// the rebase by that many checkpoints.
func (sh *shipper) rebaseDue() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.lastFullBytes > 0 && sh.deltaSinceFull >= sh.lastFullBytes
}

// statsInto merges the shipper's encode/ship timings and full-vs-delta
// volume counters into a manager's stats view.
func (sh *shipper) statsInto(st *ManagerStats) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st.Fulls = sh.fulls
	st.Deltas = sh.deltas
	st.Partials = sh.partials
	st.BytesFull = sh.bytesFull
	st.BytesDelta = sh.bytesDelta
	st.BytesPartial = sh.bytesPartial
	if sh.shipped > 0 {
		st.MeanEncodeMS = float64(sh.encodeTotal) / float64(sh.shipped) / 1e6
		st.MeanShipMS = float64(sh.shipTotal) / float64(sh.shipped) / 1e6
	}
	if sh.fulls > 0 && sh.deltas > 0 {
		st.DeltaRatio = (float64(sh.bytesDelta) / float64(sh.deltas)) /
			(float64(sh.bytesFull) / float64(sh.fulls))
	}
}
