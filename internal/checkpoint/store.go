package checkpoint

import (
	"sort"
	"sync"
	"time"

	"streamha/internal/machine"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// StoreBackend selects where a Store keeps checkpoint state.
type StoreBackend int

const (
	// InMemory refreshes the state directly in memory — the hybrid method's
	// choice, avoiding disk I/O on the critical path.
	InMemory StoreBackend = iota
	// SimulatedDisk pads every store operation with a disk-write latency,
	// modeling a conventional persistent store.
	SimulatedDisk
)

// DefaultDiskLatency approximates one synchronous write to spinning disk
// at the experiments' one-tenth timescale.
const DefaultDiskLatency = 800 * time.Microsecond

// Store holds the latest checkpoint of one subjob on a secondary machine
// and confirms each stored checkpoint back to the checkpoint manager.
// Passive standby reads the stored snapshot when deploying a recovery
// copy.
//
// Checkpoints may be full snapshots or deltas chained by sequence number.
// The store folds each delta into its current image, advancing the chain
// one sequence at a time; a delta that does not extend the chain is
// dropped WITHOUT acknowledgment — acknowledging it would let upstream
// trim data the store cannot actually recover — and the manager rebases
// with a full snapshot once its pending window grows. When checkpoints
// arrive faster than they can be decoded, the backlog is coalesced: the
// newest full snapshot re-bases the image, older fulls and subsumed
// deltas are skipped, and every checkpoint the final image covers is
// acknowledged.
type Store struct {
	m           *machine.Machine
	sjID        string
	backend     StoreBackend
	diskLatency time.Duration

	mu           sync.Mutex
	latest       *subjob.Snapshot
	seq          uint64
	stored       int
	fulls        int
	deltaFolds   int
	deltaDrops   int
	lastUnits    int
	onChainBreak func()
	work         chan storeReq
	stop         chan struct{}
	done         chan struct{}
}

type storeReq struct {
	from transport.NodeID
	msg  transport.Message
}

// NewStore creates and starts a store for subjob sjID on machine m.
func NewStore(m *machine.Machine, sjID string, backend StoreBackend, diskLatency time.Duration) *Store {
	if diskLatency <= 0 {
		diskLatency = DefaultDiskLatency
	}
	s := &Store{
		m:           m,
		sjID:        sjID,
		backend:     backend,
		diskLatency: diskLatency,
		work:        make(chan storeReq, 128),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	m.RegisterStream(subjob.CkptStream(sjID), func(from transport.NodeID, msg transport.Message) {
		select {
		case s.work <- storeReq{from: from, msg: msg}:
		case <-s.stop:
		}
	})
	go s.run()
	return s
}

func (s *Store) run() {
	defer close(s.done)
	// batch is the drained backlog, recycled between rounds.
	var batch []storeReq
	for {
		select {
		case <-s.stop:
			return
		case req := <-s.work:
			batch = append(batch[:0], req)
		drain:
			for {
				select {
				case more := <-s.work:
					batch = append(batch, more)
				default:
					break drain
				}
			}
			s.store(batch)
			for i := range batch {
				batch[i] = storeReq{}
			}
		}
	}
}

func (s *Store) store(batch []storeReq) {
	// Fold in sequence order; the shipper sends in capture order but a
	// coalesced backlog is easier to reason about sorted.
	sort.Slice(batch, func(i, j int) bool { return batch[i].msg.Seq < batch[j].msg.Seq })

	s.mu.Lock()
	chain := s.seq
	s.mu.Unlock()

	// The newest full snapshot that advances the chain re-bases the image;
	// older fulls and the deltas it subsumes are never decoded.
	fullIdx := -1
	for i := range batch {
		if batch[i].msg.Seq > chain && !subjob.IsDelta(batch[i].msg.State) {
			fullIdx = i
		}
	}
	var newFull *subjob.Snapshot
	baseSeq := chain
	if fullIdx >= 0 {
		if snap, err := subjob.DecodeSnapshot(batch[fullIdx].msg.State); err == nil {
			newFull = snap
			baseSeq = batch[fullIdx].msg.Seq
		}
	}
	type seqDelta struct {
		seq uint64
		d   *subjob.Delta
	}
	var deltas []seqDelta
	for i := range batch {
		m := &batch[i].msg
		if m.Seq <= baseSeq || !subjob.IsDelta(m.State) {
			continue
		}
		if d, err := subjob.DecodeDelta(m.State); err == nil {
			deltas = append(deltas, seqDelta{seq: m.Seq, d: d})
		}
	}

	if s.backend == SimulatedDisk {
		s.m.CPU().Execute(s.diskLatency)
	}

	s.mu.Lock()
	dropsBefore := s.deltaDrops
	if newFull != nil {
		s.latest = newFull
		chain = baseSeq
		s.fulls++
	}
	for _, sd := range deltas {
		if s.latest == nil || sd.d.PrevSeq != chain {
			s.deltaDrops++
			continue
		}
		if err := s.latest.ApplyDelta(sd.d); err != nil {
			// The image may be partially folded; the chain stays put so the
			// manager's next full snapshot re-bases it.
			s.deltaDrops++
			continue
		}
		chain = sd.seq
		s.deltaFolds++
	}
	dropped := s.deltaDrops > dropsBefore
	onChainBreak := s.onChainBreak
	advanced := chain > s.seq
	s.seq = chain
	if advanced && s.latest != nil {
		s.lastUnits = s.latest.ElementUnits()
	}
	accepted := 0
	for i := range batch {
		if batch[i].msg.Seq <= chain {
			accepted++
		}
	}
	s.stored += accepted
	s.mu.Unlock()

	if dropped && onChainBreak != nil {
		onChainBreak()
	}

	for i := range batch {
		if batch[i].msg.Seq > chain {
			// Unfoldable (or undecodable) checkpoint: no acknowledgment, so
			// upstream keeps the data it would have trimmed.
			continue
		}
		s.m.Send(batch[i].from, transport.Message{
			Kind:    transport.KindControl,
			Stream:  subjob.CkptAckStream(s.sjID),
			Command: "ckpt-stored",
			Seq:     batch[i].msg.Seq,
		})
	}
}

// Latest returns a copy of the most recent stored snapshot, or false if
// none. The copy is the caller's: delta folds mutate the stored image in
// place, so handing out the internal pointer would race with them.
// SimulatedDisk stores pay a read latency.
func (s *Store) Latest() (*subjob.Snapshot, bool) {
	if s.backend == SimulatedDisk {
		s.m.CPU().Execute(s.diskLatency)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.latest == nil {
		return nil, false
	}
	return s.latest.Clone(), true
}

// SetOnChainBreak installs a callback invoked (from the store goroutine)
// whenever a delta is dropped because it did not extend the chain. The HA
// lifecycle uses it to force the manager's next checkpoint full instead of
// waiting for the pending-window heuristic.
func (s *Store) SetOnChainBreak(fn func()) {
	s.mu.Lock()
	s.onChainBreak = fn
	s.mu.Unlock()
}

// Stored returns the number of checkpoints accepted (acknowledged).
func (s *Store) Stored() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stored
}

// StoreStats is a JSON-marshalable view of a checkpoint store, exported
// through the metrics registry.
type StoreStats struct {
	Subjob    string `json:"subjob"`
	Stored    int    `json:"stored"`
	LatestSeq uint64 `json:"latest_seq"`
	LastUnits int    `json:"last_size_units"`
	// Fulls counts full-snapshot re-bases; DeltaFolds counts deltas folded
	// into the image; DeltaDrops counts deltas dropped unacknowledged
	// because they did not extend the chain.
	Fulls      int `json:"fulls_stored"`
	DeltaFolds int `json:"delta_folds"`
	DeltaDrops int `json:"delta_drops"`
}

// Stats captures how many checkpoints the store has taken in and the size
// of the latest one, in element units.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Subjob:     s.sjID,
		Stored:     s.stored,
		LatestSeq:  s.seq,
		LastUnits:  s.lastUnits,
		Fulls:      s.fulls,
		DeltaFolds: s.deltaFolds,
		DeltaDrops: s.deltaDrops,
	}
}

// Close stops the store and unregisters its handler.
func (s *Store) Close() {
	select {
	case <-s.stop:
		return
	default:
	}
	close(s.stop)
	<-s.done
	s.m.UnregisterStream(subjob.CkptStream(s.sjID))
}
