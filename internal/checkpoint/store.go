package checkpoint

import (
	"sync"
	"time"

	"streamha/internal/machine"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// StoreBackend selects where a Store keeps checkpoint state.
type StoreBackend int

const (
	// InMemory refreshes the state directly in memory — the hybrid method's
	// choice, avoiding disk I/O on the critical path.
	InMemory StoreBackend = iota
	// SimulatedDisk pads every store operation with a disk-write latency,
	// modeling a conventional persistent store.
	SimulatedDisk
)

// DefaultDiskLatency approximates one synchronous write to spinning disk
// at the experiments' one-tenth timescale.
const DefaultDiskLatency = 800 * time.Microsecond

// Store holds the latest checkpoint of one subjob on a secondary machine
// and confirms each stored checkpoint back to the checkpoint manager.
// Passive standby reads the stored snapshot when deploying a recovery
// copy. When checkpoints arrive faster than they can be decoded, the
// backlog is coalesced: each cumulative checkpoint subsumes the older
// ones, so only the newest pending snapshot is decoded while every
// received checkpoint is still acknowledged.
type Store struct {
	m           *machine.Machine
	sjID        string
	backend     StoreBackend
	diskLatency time.Duration

	mu        sync.Mutex
	latest    *subjob.Snapshot
	seq       uint64
	stored    int
	lastUnits int
	work      chan storeReq
	stop      chan struct{}
	done      chan struct{}
}

type storeReq struct {
	from transport.NodeID
	msg  transport.Message
}

// NewStore creates and starts a store for subjob sjID on machine m.
func NewStore(m *machine.Machine, sjID string, backend StoreBackend, diskLatency time.Duration) *Store {
	if diskLatency <= 0 {
		diskLatency = DefaultDiskLatency
	}
	s := &Store{
		m:           m,
		sjID:        sjID,
		backend:     backend,
		diskLatency: diskLatency,
		work:        make(chan storeReq, 128),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	m.RegisterStream(subjob.CkptStream(sjID), func(from transport.NodeID, msg transport.Message) {
		select {
		case s.work <- storeReq{from: from, msg: msg}:
		case <-s.stop:
		}
	})
	go s.run()
	return s
}

func (s *Store) run() {
	defer close(s.done)
	// batch is the drained backlog, recycled between rounds.
	var batch []storeReq
	for {
		select {
		case <-s.stop:
			return
		case req := <-s.work:
			batch = append(batch[:0], req)
			// Coalesce a backlog: only the newest checkpoint in the batch is
			// worth decoding — each cumulative checkpoint subsumes the older
			// ones — but every received checkpoint is still acknowledged so
			// the manager can release upstream trims.
		drain:
			for {
				select {
				case more := <-s.work:
					batch = append(batch, more)
				default:
					break drain
				}
			}
			s.store(batch)
			for i := range batch {
				batch[i] = storeReq{}
			}
		}
	}
}

func (s *Store) store(batch []storeReq) {
	newest := 0
	for i := range batch {
		if batch[i].msg.Seq > batch[newest].msg.Seq {
			newest = i
		}
	}
	snap, err := subjob.DecodeSnapshot(batch[newest].msg.State)
	if err != nil {
		return
	}
	if s.backend == SimulatedDisk {
		s.m.CPU().Execute(s.diskLatency)
	}
	s.mu.Lock()
	if batch[newest].msg.Seq > s.seq {
		s.seq = batch[newest].msg.Seq
		s.latest = snap
		s.lastUnits = snap.ElementUnits()
	}
	s.stored++
	s.mu.Unlock()
	for i := range batch {
		s.m.Send(batch[i].from, transport.Message{
			Kind:    transport.KindControl,
			Stream:  subjob.CkptAckStream(s.sjID),
			Command: "ckpt-stored",
			Seq:     batch[i].msg.Seq,
		})
	}
}

// Latest returns the most recent stored snapshot, or false if none.
// SimulatedDisk stores pay a read latency.
func (s *Store) Latest() (*subjob.Snapshot, bool) {
	if s.backend == SimulatedDisk {
		s.m.CPU().Execute(s.diskLatency)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.latest == nil {
		return nil, false
	}
	return s.latest, true
}

// Stored returns the number of checkpoints stored.
func (s *Store) Stored() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stored
}

// StoreStats is a JSON-marshalable view of a checkpoint store, exported
// through the metrics registry.
type StoreStats struct {
	Subjob    string `json:"subjob"`
	Stored    int    `json:"stored"`
	LatestSeq uint64 `json:"latest_seq"`
	LastUnits int    `json:"last_size_units"`
}

// Stats captures how many checkpoints the store has taken in and the size
// of the latest one, in element units.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Subjob:    s.sjID,
		Stored:    s.stored,
		LatestSeq: s.seq,
		LastUnits: s.lastUnits,
	}
}

// Close stops the store and unregisters its handler.
func (s *Store) Close() {
	select {
	case <-s.stop:
		return
	default:
	}
	close(s.stop)
	<-s.done
	s.m.UnregisterStream(subjob.CkptStream(s.sjID))
}
