package checkpoint

import (
	"sort"
	"sync"
	"time"

	"streamha/internal/machine"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// StoreBackend selects where a Store keeps checkpoint state.
type StoreBackend int

const (
	// InMemory refreshes the state directly in memory — the hybrid method's
	// choice, avoiding disk I/O on the critical path.
	InMemory StoreBackend = iota
	// SimulatedDisk pads every store operation with a disk-write latency,
	// modeling a conventional persistent store.
	SimulatedDisk
)

// DefaultDiskLatency approximates one synchronous write to spinning disk
// at the experiments' one-tenth timescale.
const DefaultDiskLatency = 800 * time.Microsecond

// Store holds the latest checkpoint of one subjob on a secondary machine
// and confirms each stored checkpoint back to the checkpoint manager.
// Passive standby reads the stored snapshot when deploying a recovery
// copy.
//
// Checkpoints may be full snapshots or deltas chained by sequence number.
// The store folds each delta into its current image, advancing the chain
// one sequence at a time; a delta that does not extend the chain is
// dropped WITHOUT acknowledgment — acknowledging it would let upstream
// trim data the store cannot actually recover — and the manager rebases
// with a full snapshot once its pending window grows. When checkpoints
// arrive faster than they can be decoded, the backlog is coalesced: the
// newest full snapshot re-bases the image, older fulls and subsumed
// deltas are skipped, and every checkpoint the final image covers is
// acknowledged.
type Store struct {
	m           *machine.Machine
	sjID        string
	backend     StoreBackend
	diskLatency time.Duration
	catalog     *Catalog
	catKey      string

	mu           sync.Mutex
	latest       *subjob.Snapshot
	seq          uint64
	persistedSeq uint64
	stored       int
	fulls        int
	deltaFolds   int
	deltaDrops   int
	lastUnits    int
	onChainBreak func()
	work         chan storeReq
	stop         chan struct{}
	done         chan struct{}
}

type storeReq struct {
	from transport.NodeID
	msg  transport.Message
}

// StoreOptions configures a Store beyond its hosting machine and subjob.
type StoreOptions struct {
	// Backend selects the simulated persistence model (InMemory or
	// SimulatedDisk).
	Backend StoreBackend
	// DiskLatency overrides the SimulatedDisk write latency (0: default).
	DiskLatency time.Duration
	// Catalog, when non-nil, makes the store durable: every checkpoint
	// that advances the chain is persisted through the catalog before it
	// is acknowledged, so upstream never trims data the catalog cannot
	// recover after a cold restart.
	Catalog *Catalog
	// CatalogKey overrides the catalog key (default: the subjob ID). A
	// deployment hosting several copies of one subjob keys each copy as
	// "<subjob>@<instance>" so their checkpoint sequences do not collide.
	CatalogKey string
}

// NewStore creates and starts a store for subjob sjID on machine m.
func NewStore(m *machine.Machine, sjID string, backend StoreBackend, diskLatency time.Duration) *Store {
	return NewStoreWith(m, sjID, StoreOptions{Backend: backend, DiskLatency: diskLatency})
}

// NewStoreWith creates and starts a store for subjob sjID on machine m
// with the given options.
func NewStoreWith(m *machine.Machine, sjID string, opts StoreOptions) *Store {
	if opts.DiskLatency <= 0 {
		opts.DiskLatency = DefaultDiskLatency
	}
	if opts.CatalogKey == "" {
		opts.CatalogKey = sjID
	}
	s := &Store{
		m:           m,
		sjID:        sjID,
		backend:     opts.Backend,
		diskLatency: opts.DiskLatency,
		catalog:     opts.Catalog,
		catKey:      opts.CatalogKey,
		work:        make(chan storeReq, 128),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	m.RegisterStream(subjob.CkptStream(sjID), func(from transport.NodeID, msg transport.Message) {
		select {
		case s.work <- storeReq{from: from, msg: msg}:
		case <-s.stop:
		}
	})
	go s.run()
	return s
}

func (s *Store) run() {
	defer close(s.done)
	// batch is the drained backlog, recycled between rounds.
	var batch []storeReq
	for {
		select {
		case <-s.stop:
			// Shutdown fence: checkpoints already queued were accepted from
			// the transport and their senders may be waiting on the
			// acknowledgments; returning without storing them would drop
			// acks that Close's caller believes are settled. Close
			// unregisters the handler before closing stop, so this drain
			// observes the final backlog.
			batch = batch[:0]
			for {
				select {
				case req := <-s.work:
					batch = append(batch, req)
				default:
					if len(batch) > 0 {
						s.store(batch)
					}
					return
				}
			}
		case req := <-s.work:
			batch = append(batch[:0], req)
		drain:
			for {
				select {
				case more := <-s.work:
					batch = append(batch, more)
				default:
					break drain
				}
			}
			s.store(batch)
			for i := range batch {
				batch[i] = storeReq{}
			}
		}
	}
}

func (s *Store) store(batch []storeReq) {
	// Fold in sequence order; the shipper sends in capture order but a
	// coalesced backlog is easier to reason about sorted.
	sort.Slice(batch, func(i, j int) bool { return batch[i].msg.Seq < batch[j].msg.Seq })

	s.mu.Lock()
	chain := s.seq
	s.mu.Unlock()

	// The newest full snapshot that advances the chain re-bases the image;
	// older fulls and the deltas it subsumes are never decoded.
	fullIdx := -1
	for i := range batch {
		if batch[i].msg.Seq > chain && !subjob.IsDelta(batch[i].msg.State) {
			fullIdx = i
		}
	}
	var newFull *subjob.Snapshot
	baseSeq := chain
	if fullIdx >= 0 {
		if snap, err := subjob.DecodeSnapshot(batch[fullIdx].msg.State); err == nil {
			newFull = snap
			baseSeq = batch[fullIdx].msg.Seq
		}
	}
	type seqDelta struct {
		seq     uint64
		d       *subjob.Delta
		payload []byte
	}
	var deltas []seqDelta
	for i := range batch {
		m := &batch[i].msg
		if m.Seq <= baseSeq || !subjob.IsDelta(m.State) {
			continue
		}
		if d, err := subjob.DecodeDelta(m.State); err == nil {
			deltas = append(deltas, seqDelta{seq: m.Seq, d: d, payload: m.State})
		}
	}

	if s.backend == SimulatedDisk {
		s.m.CPU().Execute(s.diskLatency)
	}

	// toPersist records, in chain order, the raw payload of every
	// checkpoint that advances the in-memory chain; with a catalog
	// attached these must become durable before their acknowledgments go
	// out.
	type persistItem struct {
		seq     uint64
		units   int
		payload []byte
	}
	var toPersist []persistItem

	s.mu.Lock()
	dropsBefore := s.deltaDrops
	if newFull != nil {
		s.latest = newFull
		chain = baseSeq
		s.fulls++
		if s.catalog != nil {
			toPersist = append(toPersist, persistItem{baseSeq, newFull.ElementUnits(), batch[fullIdx].msg.State})
		}
	}
	for _, sd := range deltas {
		if s.latest == nil || sd.d.PrevSeq != chain {
			s.deltaDrops++
			continue
		}
		units := sd.d.ElementUnits()
		payload := sd.payload
		if err := s.latest.ApplyDelta(sd.d); err != nil {
			// The image may be partially folded; the chain stays put so the
			// manager's next full snapshot re-bases it.
			s.deltaDrops++
			continue
		}
		chain = sd.seq
		s.deltaFolds++
		if s.catalog != nil {
			toPersist = append(toPersist, persistItem{sd.seq, units, payload})
		}
	}
	dropped := s.deltaDrops > dropsBefore
	onChainBreak := s.onChainBreak
	advanced := chain > s.seq
	s.seq = chain
	if advanced && s.latest != nil {
		s.lastUnits = s.latest.ElementUnits()
	}
	durable := s.persistedSeq
	s.mu.Unlock()

	// Persist-before-ack: advance the durable watermark through the folded
	// chain in order. The first failed write stops it — the in-memory
	// image is ahead of the catalog then, acknowledgments are withheld at
	// the durable watermark, and the chain break forces the manager's next
	// checkpoint full, which re-bases the catalog and self-heals the gap.
	persistFailed := false
	ackCeil := chain
	if s.catalog != nil {
		for _, it := range toPersist {
			if err := s.catalog.Put(s.catKey, it.seq, it.units, it.payload); err != nil {
				persistFailed = true
				break
			}
			durable = it.seq
		}
		s.mu.Lock()
		if durable > s.persistedSeq {
			s.persistedSeq = durable
		}
		s.mu.Unlock()
		ackCeil = durable
	}

	accepted := 0
	for i := range batch {
		if batch[i].msg.Seq <= ackCeil {
			accepted++
		}
	}
	s.mu.Lock()
	s.stored += accepted
	s.mu.Unlock()

	if (dropped || persistFailed) && onChainBreak != nil {
		onChainBreak()
	}

	for i := range batch {
		if batch[i].msg.Seq > ackCeil {
			// Unfoldable, undecodable or unpersisted checkpoint: no
			// acknowledgment, so upstream keeps the data it would have
			// trimmed.
			continue
		}
		s.m.Send(batch[i].from, transport.Message{
			Kind:    transport.KindControl,
			Stream:  subjob.CkptAckStream(s.sjID),
			Command: "ckpt-stored",
			Seq:     batch[i].msg.Seq,
		})
	}
}

// Latest returns a copy of the most recent stored snapshot, or false if
// none. The copy is the caller's: delta folds mutate the stored image in
// place, so handing out the internal pointer would race with them.
// SimulatedDisk stores pay a read latency.
func (s *Store) Latest() (*subjob.Snapshot, bool) {
	if s.backend == SimulatedDisk {
		s.m.CPU().Execute(s.diskLatency)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.latest == nil {
		return nil, false
	}
	return s.latest.Clone(), true
}

// SetOnChainBreak installs a callback invoked (from the store goroutine)
// whenever a delta is dropped because it did not extend the chain. The HA
// lifecycle uses it to force the manager's next checkpoint full instead of
// waiting for the pending-window heuristic.
func (s *Store) SetOnChainBreak(fn func()) {
	s.mu.Lock()
	s.onChainBreak = fn
	s.mu.Unlock()
}

// Stored returns the number of checkpoints accepted (acknowledged).
func (s *Store) Stored() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stored
}

// StoreStats is a JSON-marshalable view of a checkpoint store, exported
// through the metrics registry.
type StoreStats struct {
	Subjob    string `json:"subjob"`
	Stored    int    `json:"stored"`
	LatestSeq uint64 `json:"latest_seq"`
	LastUnits int    `json:"last_size_units"`
	// Fulls counts full-snapshot re-bases; DeltaFolds counts deltas folded
	// into the image; DeltaDrops counts deltas dropped unacknowledged
	// because they did not extend the chain.
	Fulls      int `json:"fulls_stored"`
	DeltaFolds int `json:"delta_folds"`
	DeltaDrops int `json:"delta_drops"`
	// Catalog activity, populated only when the store persists through a
	// catalog: DurableSeq is the durable watermark (acknowledgments never
	// pass it), Persisted/PersistErrors/GCRemoved count catalog writes,
	// failed writes, and retention removals.
	DurableSeq    uint64 `json:"durable_seq,omitempty"`
	Persisted     int    `json:"persisted,omitempty"`
	PersistErrors int    `json:"persist_errors,omitempty"`
	GCRemoved     int    `json:"gc_removed,omitempty"`
}

// Stats captures how many checkpoints the store has taken in and the size
// of the latest one, in element units.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	st := StoreStats{
		Subjob:     s.sjID,
		Stored:     s.stored,
		LatestSeq:  s.seq,
		LastUnits:  s.lastUnits,
		Fulls:      s.fulls,
		DeltaFolds: s.deltaFolds,
		DeltaDrops: s.deltaDrops,
		DurableSeq: s.persistedSeq,
	}
	s.mu.Unlock()
	if s.catalog != nil {
		ctr := s.catalog.Counters(s.catKey)
		st.Persisted = ctr.Persisted
		st.PersistErrors = ctr.PersistErrs
		st.GCRemoved = ctr.GCRemoved
	}
	return st
}

// Close stops the store and unregisters its handler. The handler is
// unregistered FIRST, so no new checkpoints enter the work queue after
// stop closes; run() then drains and stores what is already queued
// before exiting. The previous order (stop first, unregister after)
// raced: a handler delivery between the two could be accepted into the
// queue and silently dropped — its sender never saw the acknowledgment.
func (s *Store) Close() {
	select {
	case <-s.stop:
		return
	default:
	}
	s.m.UnregisterStream(subjob.CkptStream(s.sjID))
	close(s.stop)
	<-s.done
}
