package checkpoint

import (
	"sync"
	"time"

	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// Synchronous is the timer-driven checkpointing variant the paper compares
// sweeping checkpointing against: on every interval all PEs of the subjob
// are suspended and the full state — including the input queue — is
// captured before they resume. Including the input queue makes messages
// much larger for PEs that consume more raw data than they derive, which
// is the overhead the paper's Section III quantifies. Like the other
// variants, the encode and ship stages run on the background shipper, so
// the pause covers only the state capture.
type Synchronous struct {
	cfg  Config
	stop chan struct{}
	done chan struct{}
	ship *shipper

	capMu sync.Mutex

	mu          sync.Mutex
	seq         uint64
	pending     map[uint64]map[string]uint64
	taken       int
	pauseTotal  time.Duration
	lastUnits   int
	unitsTotal  int64
	sinceFull   int
	lastOutNext uint64
	fullNext    bool
	paused      bool
	started     bool
}

var _ Manager = (*Synchronous)(nil)

// NewSynchronous creates a synchronous manager for cfg.
func NewSynchronous(cfg Config) *Synchronous {
	cfg.Costs = cfg.Costs.orDefault()
	return &Synchronous{
		cfg:     cfg,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		ship:    newShipper(cfg),
		pending: make(map[uint64]map[string]uint64),
	}
}

// Start implements Manager.
func (s *Synchronous) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	rt := s.cfg.Runtime
	rt.Machine().RegisterStream(subjob.CkptAckStream(rt.Spec().ID), s.onStoreAck)
	go s.run()
}

// Stop implements Manager.
func (s *Synchronous) Stop() {
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if !started {
		s.ship.stopWait()
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
	s.ship.stopWait()
	s.cfg.Runtime.Machine().UnregisterStream(subjob.CkptAckStream(s.cfg.Runtime.Spec().ID))
}

func (s *Synchronous) run() {
	defer close(s.done)
	t := s.cfg.Clock.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C():
			s.CheckpointNow()
		}
	}
}

// CheckpointNow implements Manager. The pause covers the state capture
// including the input queue; the acknowledged positions are the input
// queue's accepted positions, since the input queue itself is part of the
// checkpoint.
func (s *Synchronous) CheckpointNow() time.Duration {
	rt := s.cfg.Runtime
	if rt.Machine().Crashed() {
		return 0
	}
	s.capMu.Lock()
	defer s.capMu.Unlock()

	s.mu.Lock()
	if s.paused {
		s.mu.Unlock()
		return 0
	}
	tryDelta := !s.fullNext && wantDeltaLocked(&s.cfg, s.sinceFull, s.lastOutNext, len(s.pending))
	s.fullNext = false
	outSince := s.lastOutNext
	s.mu.Unlock()
	if tryDelta && s.cfg.RebaseAdaptive && s.ship.rebaseDue() {
		tryDelta = false
	}

	start := s.cfg.Clock.Now()
	var snap *subjob.Snapshot
	var delta *subjob.Delta
	var accepted map[string]uint64
	rt.WithPaused(func() {
		if tryDelta {
			delta, _ = rt.CaptureDelta(subjob.DeltaOptions{
				OutputSince:   outSince,
				IncludeOutput: true,
				IncludeInput:  true,
				OnlyPE:        -1,
			})
		}
		if delta == nil {
			snap = rt.CaptureFull()
			snap.Input = rt.In().SnapshotBuf()
		}
		accepted = rt.In().AcceptedAll()
	})
	paused := s.cfg.Clock.Since(start)

	var units int
	var outNext uint64
	if delta != nil {
		delta.Consumed = accepted
		units = delta.ElementUnits()
		outNext = delta.Output.NextSeq
	} else {
		snap.Consumed = accepted
		units = snap.ElementUnits()
		outNext = snap.Output.NextSeq
	}

	s.mu.Lock()
	s.seq++
	seq := s.seq
	if delta != nil {
		delta.PrevSeq = seq - 1
		s.sinceFull++
	} else {
		s.sinceFull = 0
	}
	s.lastOutNext = outNext
	s.pending[seq] = accepted
	s.taken++
	s.pauseTotal += paused
	s.lastUnits = units
	s.unitsTotal += int64(units)
	s.mu.Unlock()

	s.ship.enqueue(shipJob{seq: seq, snap: snap, delta: delta, units: units})
	return paused
}

func (s *Synchronous) onStoreAck(_ transport.NodeID, msg transport.Message) {
	s.mu.Lock()
	positions, ok := s.pending[msg.Seq]
	if ok {
		delete(s.pending, msg.Seq)
		for seq := range s.pending {
			if seq < msg.Seq {
				delete(s.pending, seq)
			}
		}
	}
	s.mu.Unlock()
	if ok {
		s.cfg.Runtime.AckUpstream(positions)
	}
}

// ForceFull implements Manager.
func (s *Synchronous) ForceFull() {
	s.mu.Lock()
	s.fullNext = true
	s.mu.Unlock()
}

// Pause implements Manager (see the interface comment).
func (s *Synchronous) Pause() {
	s.capMu.Lock()
	defer s.capMu.Unlock()
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

// Resume implements Manager: checkpointing restarts with a full snapshot.
func (s *Synchronous) Resume() {
	s.mu.Lock()
	s.paused = false
	s.fullNext = true
	s.mu.Unlock()
}

// Taken returns how many checkpoints were initiated.
func (s *Synchronous) Taken() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.taken
}

// MeanPause returns the average pause duration per checkpoint.
func (s *Synchronous) MeanPause() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.taken == 0 {
		return 0
	}
	return s.pauseTotal / time.Duration(s.taken)
}

// Stats implements Manager.
func (s *Synchronous) Stats() ManagerStats {
	s.mu.Lock()
	st := ManagerStats{
		Subjob:     s.cfg.Runtime.Spec().ID,
		Taken:      s.taken,
		Pending:    len(s.pending),
		LastUnits:  s.lastUnits,
		TotalUnits: s.unitsTotal,
	}
	if s.taken > 0 {
		st.MeanPauseMS = float64(s.pauseTotal) / float64(s.taken) / 1e6
	}
	s.mu.Unlock()
	s.ship.statsInto(&st)
	return st
}

// Individual is the per-PE-timer checkpointing variant: every PE has its
// own timer and is checkpointed independently. Each cycle still captures a
// consistent view of the owning subjob copy (pausing only briefly), but
// one message is sent per PE per interval and each message carries the
// PE's share of queue state plus the input queue for the first PE — more,
// smaller, overlapping messages than one swept checkpoint. With
// RebaseEvery ≥ 2, per-PE messages become per-PE deltas between
// whole-subjob full rebases; each PE's change tracking is reset only on
// its own turn, so the rotation's per-PE chains fold correctly.
type Individual struct {
	cfg  Config
	stop chan struct{}
	done chan struct{}
	ship *shipper

	capMu sync.Mutex

	mu          sync.Mutex
	seq         uint64
	pending     map[uint64]map[string]uint64
	taken       int
	pauseTotal  time.Duration
	lastUnits   int
	unitsTotal  int64
	sinceFull   int
	lastOutNext uint64
	fullNext    bool
	paused      bool
	started     bool
}

var _ Manager = (*Individual)(nil)

// NewIndividual creates an individual-timer manager for cfg.
func NewIndividual(cfg Config) *Individual {
	cfg.Costs = cfg.Costs.orDefault()
	return &Individual{
		cfg:     cfg,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		ship:    newShipper(cfg),
		pending: make(map[uint64]map[string]uint64),
	}
}

// Start implements Manager: one timer goroutine per PE, with offset phases
// like independent timers would have.
func (ind *Individual) Start() {
	ind.mu.Lock()
	if ind.started {
		ind.mu.Unlock()
		return
	}
	ind.started = true
	ind.mu.Unlock()
	rt := ind.cfg.Runtime
	rt.Machine().RegisterStream(subjob.CkptAckStream(rt.Spec().ID), ind.onStoreAck)
	go ind.run()
}

// Stop implements Manager.
func (ind *Individual) Stop() {
	ind.mu.Lock()
	started := ind.started
	ind.mu.Unlock()
	if !started {
		ind.ship.stopWait()
		return
	}
	select {
	case <-ind.stop:
	default:
		close(ind.stop)
	}
	<-ind.done
	ind.ship.stopWait()
	ind.cfg.Runtime.Machine().UnregisterStream(subjob.CkptAckStream(ind.cfg.Runtime.Spec().ID))
}

func (ind *Individual) run() {
	defer close(ind.done)
	n := len(ind.cfg.Runtime.PEs())
	if n == 0 {
		return
	}
	// Independent per-PE timers are modeled as a single loop firing n
	// evenly-phased sub-ticks per interval, each checkpointing one PE.
	sub := ind.cfg.Interval / time.Duration(n)
	if sub <= 0 {
		sub = ind.cfg.Interval
	}
	t := ind.cfg.Clock.NewTicker(sub)
	defer t.Stop()
	i := 0
	for {
		select {
		case <-ind.stop:
			return
		case <-t.C():
			ind.checkpointPE(i % n)
			i++
		}
	}
}

// CheckpointNow implements Manager by checkpointing the first PE.
func (ind *Individual) CheckpointNow() time.Duration {
	return ind.checkpointPE(0)
}

// checkpointPE captures the state owned by PE i: its logic state, its
// outgoing queue (pipe or subjob output), and for the first PE also the
// input queue. Incremental mode replaces this with a per-PE delta, except
// on the rebase cadence where a whole-subjob full snapshot is shipped.
func (ind *Individual) checkpointPE(i int) time.Duration {
	rt := ind.cfg.Runtime
	if rt.Machine().Crashed() {
		return 0
	}
	ind.capMu.Lock()
	defer ind.capMu.Unlock()
	last := i == len(rt.PEs())-1

	ind.mu.Lock()
	if ind.paused {
		ind.mu.Unlock()
		return 0
	}
	tryDelta := !ind.fullNext && wantDeltaLocked(&ind.cfg, ind.sinceFull, ind.lastOutNext, len(ind.pending))
	ind.fullNext = false
	outSince := ind.lastOutNext
	ind.mu.Unlock()
	if tryDelta && ind.cfg.RebaseAdaptive && ind.ship.rebaseDue() {
		tryDelta = false
	}
	incremental := ind.cfg.RebaseEvery >= 2 || ind.cfg.RebaseAdaptive

	start := ind.cfg.Clock.Now()
	var snap *subjob.Snapshot
	var delta *subjob.Delta
	var accepted map[string]uint64
	rt.WithPaused(func() {
		if tryDelta {
			delta, _ = rt.CaptureDelta(subjob.DeltaOptions{
				OutputSince:   outSince,
				IncludeOutput: last,
				IncludeInput:  i == 0,
				OnlyPE:        i,
			})
		}
		if delta == nil {
			snap = rt.CaptureFull()
			if incremental || i == 0 {
				snap.Input = rt.In().SnapshotBuf()
			}
		}
		if i == 0 || (incremental && delta == nil) {
			accepted = rt.In().AcceptedAll()
		}
	})
	paused := ind.cfg.Clock.Since(start)

	var units int
	var outNext uint64
	if delta != nil {
		if accepted != nil {
			delta.Consumed = accepted
		}
		units = delta.ElementUnits()
		if delta.HasOutput {
			outNext = delta.Output.NextSeq
		} else {
			outNext = outSince
		}
	} else {
		if accepted != nil {
			snap.Consumed = accepted
		}
		if !incremental {
			// The classic variant ships only PE i's share: zero out the other
			// PEs' states and queues. Incremental rebases must instead keep
			// the whole subjob, since deltas fold onto the stored image.
			for j := range snap.PEStates {
				if j != i {
					snap.PEStates[j] = nil
				}
			}
			keptUnits := 0
			if i < len(rt.PEs()) {
				keptUnits = rt.PEs()[i].Logic().StateSize()
			}
			snap.StateUnits = keptUnits
			for j := range snap.Pipes {
				if j != i {
					snap.Pipes[j] = nil
				}
			}
			if !last {
				snap.Output.Buf = nil
			}
		}
		units = snap.ElementUnits()
		outNext = snap.Output.NextSeq
	}

	ind.mu.Lock()
	ind.seq++
	seq := ind.seq
	if delta != nil {
		delta.PrevSeq = seq - 1
		ind.sinceFull++
	} else {
		ind.sinceFull = 0
	}
	ind.lastOutNext = outNext
	if accepted != nil {
		ind.pending[seq] = accepted
	}
	ind.taken++
	ind.pauseTotal += paused
	ind.lastUnits = units
	ind.unitsTotal += int64(units)
	ind.mu.Unlock()

	ind.ship.enqueue(shipJob{seq: seq, snap: snap, delta: delta, units: units})
	return paused
}

func (ind *Individual) onStoreAck(_ transport.NodeID, msg transport.Message) {
	ind.mu.Lock()
	positions, ok := ind.pending[msg.Seq]
	if ok {
		delete(ind.pending, msg.Seq)
		for seq := range ind.pending {
			if seq < msg.Seq {
				delete(ind.pending, seq)
			}
		}
	}
	ind.mu.Unlock()
	if ok {
		ind.cfg.Runtime.AckUpstream(positions)
	}
}

// ForceFull implements Manager.
func (ind *Individual) ForceFull() {
	ind.mu.Lock()
	ind.fullNext = true
	ind.mu.Unlock()
}

// Pause implements Manager (see the interface comment).
func (ind *Individual) Pause() {
	ind.capMu.Lock()
	defer ind.capMu.Unlock()
	ind.mu.Lock()
	ind.paused = true
	ind.mu.Unlock()
}

// Resume implements Manager: checkpointing restarts with a full snapshot.
func (ind *Individual) Resume() {
	ind.mu.Lock()
	ind.paused = false
	ind.fullNext = true
	ind.mu.Unlock()
}

// Taken returns how many per-PE checkpoints were initiated.
func (ind *Individual) Taken() int {
	ind.mu.Lock()
	defer ind.mu.Unlock()
	return ind.taken
}

// MeanPause returns the average pause duration per checkpoint.
func (ind *Individual) MeanPause() time.Duration {
	ind.mu.Lock()
	defer ind.mu.Unlock()
	if ind.taken == 0 {
		return 0
	}
	return ind.pauseTotal / time.Duration(ind.taken)
}

// Stats implements Manager.
func (ind *Individual) Stats() ManagerStats {
	ind.mu.Lock()
	st := ManagerStats{
		Subjob:     ind.cfg.Runtime.Spec().ID,
		Taken:      ind.taken,
		Pending:    len(ind.pending),
		LastUnits:  ind.lastUnits,
		TotalUnits: ind.unitsTotal,
	}
	if ind.taken > 0 {
		st.MeanPauseMS = float64(ind.pauseTotal) / float64(ind.taken) / 1e6
	}
	ind.mu.Unlock()
	ind.ship.statsInto(&st)
	return st
}
