package checkpoint

import (
	"sync"
	"time"

	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// Synchronous is the timer-driven checkpointing variant the paper compares
// sweeping checkpointing against: on every interval all PEs of the subjob
// are suspended, the full state — including the input queue — is captured
// and encoded while they stay suspended, and only then are they resumed.
// Including the input queue makes messages much larger for PEs that
// consume more raw data than they derive, and holding the pause across
// encoding makes each checkpoint slower; both effects are the ones the
// paper's Section III quantifies.
type Synchronous struct {
	cfg  Config
	stop chan struct{}
	done chan struct{}

	mu         sync.Mutex
	seq        uint64
	pending    map[uint64]map[string]uint64
	taken      int
	pauseTotal time.Duration
	started    bool
}

var _ Manager = (*Synchronous)(nil)

// NewSynchronous creates a synchronous manager for cfg.
func NewSynchronous(cfg Config) *Synchronous {
	cfg.Costs = cfg.Costs.orDefault()
	return &Synchronous{
		cfg:     cfg,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		pending: make(map[uint64]map[string]uint64),
	}
}

// Start implements Manager.
func (s *Synchronous) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	rt := s.cfg.Runtime
	rt.Machine().RegisterStream(subjob.CkptAckStream(rt.Spec().ID), s.onStoreAck)
	go s.run()
}

// Stop implements Manager.
func (s *Synchronous) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
	s.cfg.Runtime.Machine().UnregisterStream(subjob.CkptAckStream(s.cfg.Runtime.Spec().ID))
}

func (s *Synchronous) run() {
	defer close(s.done)
	t := s.cfg.Clock.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C():
			s.CheckpointNow()
		}
	}
}

// CheckpointNow implements Manager. The pause spans snapshot, encode-cost
// and send; the acknowledged positions are the input queue's accepted
// positions, since the input queue itself is part of the checkpoint.
func (s *Synchronous) CheckpointNow() time.Duration {
	rt := s.cfg.Runtime
	if rt.Machine().Crashed() {
		return 0
	}
	start := s.cfg.Clock.Now()
	rt.WithPaused(func() {
		snap := rt.Snapshot()
		snap.Input = rt.In().SnapshotBuf()
		accepted := rt.In().AcceptedAll()
		snap.Consumed = accepted

		units := snap.ElementUnits()
		rt.Machine().CPU().Execute(s.cfg.Costs.Base + s.cfg.Costs.PerUnit*time.Duration(units))
		state, err := snap.Encode()
		if err != nil {
			return
		}

		s.mu.Lock()
		s.seq++
		seq := s.seq
		s.pending[seq] = accepted
		s.taken++
		s.mu.Unlock()

		rt.Machine().Send(s.cfg.StoreNode, transport.Message{
			Kind:         transport.KindCheckpoint,
			Stream:       subjob.CkptStream(rt.Spec().ID),
			Seq:          seq,
			State:        state,
			ElementCount: units,
		})
	})
	paused := s.cfg.Clock.Since(start)
	s.mu.Lock()
	s.pauseTotal += paused
	s.mu.Unlock()
	return paused
}

func (s *Synchronous) onStoreAck(_ transport.NodeID, msg transport.Message) {
	s.mu.Lock()
	positions, ok := s.pending[msg.Seq]
	if ok {
		delete(s.pending, msg.Seq)
		for seq := range s.pending {
			if seq < msg.Seq {
				delete(s.pending, seq)
			}
		}
	}
	s.mu.Unlock()
	if ok {
		s.cfg.Runtime.AckUpstream(positions)
	}
}

// Taken returns how many checkpoints were initiated.
func (s *Synchronous) Taken() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.taken
}

// MeanPause returns the average pause duration per checkpoint.
func (s *Synchronous) MeanPause() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.taken == 0 {
		return 0
	}
	return s.pauseTotal / time.Duration(s.taken)
}

// Individual is the per-PE-timer checkpointing variant: every PE has its
// own timer and is checkpointed independently. Each cycle still captures a
// full consistent snapshot of the owning subjob copy (pausing only
// briefly), but one message is sent per PE per interval and each message
// carries the PE's share of queue state plus the input queue for the first
// PE — more, smaller, overlapping messages than one swept checkpoint.
type Individual struct {
	cfg  Config
	stop chan struct{}
	done chan struct{}

	mu         sync.Mutex
	seq        uint64
	pending    map[uint64]map[string]uint64
	taken      int
	pauseTotal time.Duration
	started    bool
}

var _ Manager = (*Individual)(nil)

// NewIndividual creates an individual-timer manager for cfg.
func NewIndividual(cfg Config) *Individual {
	cfg.Costs = cfg.Costs.orDefault()
	return &Individual{
		cfg:     cfg,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		pending: make(map[uint64]map[string]uint64),
	}
}

// Start implements Manager: one timer goroutine per PE, with offset phases
// like independent timers would have.
func (ind *Individual) Start() {
	ind.mu.Lock()
	if ind.started {
		ind.mu.Unlock()
		return
	}
	ind.started = true
	ind.mu.Unlock()
	rt := ind.cfg.Runtime
	rt.Machine().RegisterStream(subjob.CkptAckStream(rt.Spec().ID), ind.onStoreAck)
	go ind.run()
}

// Stop implements Manager.
func (ind *Individual) Stop() {
	ind.mu.Lock()
	if !ind.started {
		ind.mu.Unlock()
		return
	}
	ind.mu.Unlock()
	select {
	case <-ind.stop:
	default:
		close(ind.stop)
	}
	<-ind.done
	ind.cfg.Runtime.Machine().UnregisterStream(subjob.CkptAckStream(ind.cfg.Runtime.Spec().ID))
}

func (ind *Individual) run() {
	defer close(ind.done)
	n := len(ind.cfg.Runtime.PEs())
	if n == 0 {
		return
	}
	// Independent per-PE timers are modeled as a single loop firing n
	// evenly-phased sub-ticks per interval, each checkpointing one PE.
	sub := ind.cfg.Interval / time.Duration(n)
	if sub <= 0 {
		sub = ind.cfg.Interval
	}
	t := ind.cfg.Clock.NewTicker(sub)
	defer t.Stop()
	i := 0
	for {
		select {
		case <-ind.stop:
			return
		case <-t.C():
			ind.checkpointPE(i % n)
			i++
		}
	}
}

// CheckpointNow implements Manager by checkpointing the first PE.
func (ind *Individual) CheckpointNow() time.Duration {
	return ind.checkpointPE(0)
}

// checkpointPE captures the state owned by PE i: its logic state, its
// outgoing queue (pipe or subjob output), and for the first PE also the
// input queue.
func (ind *Individual) checkpointPE(i int) time.Duration {
	rt := ind.cfg.Runtime
	if rt.Machine().Crashed() {
		return 0
	}
	start := ind.cfg.Clock.Now()
	var snap *subjob.Snapshot
	var accepted map[string]uint64
	rt.WithPaused(func() {
		snap = rt.Snapshot()
		if i == 0 {
			snap.Input = rt.In().SnapshotBuf()
			accepted = rt.In().AcceptedAll()
			snap.Consumed = accepted
		}
	})
	paused := ind.cfg.Clock.Since(start)
	ind.mu.Lock()
	ind.pauseTotal += paused
	ind.mu.Unlock()
	// Keep only PE i's share: zero out the other PEs' states and queues.
	for j := range snap.PEStates {
		if j != i {
			snap.PEStates[j] = nil
		}
	}
	keptUnits := 0
	if i < len(rt.PEs()) {
		keptUnits = rt.PEs()[i].Logic().StateSize()
	}
	snap.StateUnits = keptUnits
	for j := range snap.Pipes {
		if j != i {
			snap.Pipes[j] = nil
		}
	}
	if i != len(snap.PEStates)-1 {
		snap.Output.Buf = nil
	}
	units := snap.ElementUnits()
	rt.Machine().CPU().Execute(ind.cfg.Costs.Base + ind.cfg.Costs.PerUnit*time.Duration(units))
	state, err := snap.Encode()
	if err != nil {
		return ind.cfg.Clock.Since(start)
	}

	ind.mu.Lock()
	ind.seq++
	seq := ind.seq
	if accepted != nil {
		ind.pending[seq] = accepted
	}
	ind.taken++
	ind.mu.Unlock()

	rt.Machine().Send(ind.cfg.StoreNode, transport.Message{
		Kind:         transport.KindCheckpoint,
		Stream:       subjob.CkptStream(rt.Spec().ID),
		Seq:          seq,
		State:        state,
		ElementCount: units,
	})
	return ind.cfg.Clock.Since(start)
}

func (ind *Individual) onStoreAck(_ transport.NodeID, msg transport.Message) {
	ind.mu.Lock()
	positions, ok := ind.pending[msg.Seq]
	if ok {
		delete(ind.pending, msg.Seq)
		for seq := range ind.pending {
			if seq < msg.Seq {
				delete(ind.pending, seq)
			}
		}
	}
	ind.mu.Unlock()
	if ok {
		ind.cfg.Runtime.AckUpstream(positions)
	}
}

// Taken returns how many per-PE checkpoints were initiated.
func (ind *Individual) Taken() int {
	ind.mu.Lock()
	defer ind.mu.Unlock()
	return ind.taken
}

// MeanPause returns the average pause duration per checkpoint.
func (ind *Individual) MeanPause() time.Duration {
	ind.mu.Lock()
	defer ind.mu.Unlock()
	if ind.taken == 0 {
		return 0
	}
	return ind.pauseTotal / time.Duration(ind.taken)
}
