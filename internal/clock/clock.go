// Package clock abstracts time so that runtime components can be driven by
// the wall clock in experiments and by a manual clock in unit tests.
package clock

import (
	"sync"
	"time"
)

// Clock is the time source used by every runtime component. It mirrors the
// subset of package time that the stream processing runtime needs.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the current time after d.
	After(d time.Duration) <-chan time.Time
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
}

// Ticker mirrors time.Ticker behind an interface so manual clocks can
// provide deterministic tickers.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Real is the wall-clock implementation of Clock.
type Real struct{}

var _ Clock = Real{}

// New returns the wall-clock Clock used by experiments.
func New() Clock { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

type realTicker struct{ t *time.Ticker }

func (r realTicker) C() <-chan time.Time { return r.t.C }
func (r realTicker) Stop()               { r.t.Stop() }

// Manual is a deterministic clock for tests. Time only moves when Advance is
// called. Sleepers and timers wake when the clock passes their deadline.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*manualWaiter
}

var _ Clock = (*Manual)(nil)

type manualWaiter struct {
	deadline time.Time
	ch       chan time.Time
	periodic time.Duration // zero for one-shot waiters
	stopped  bool
}

// NewManual returns a Manual clock starting at start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since implements Clock.
func (m *Manual) Since(t time.Time) time.Duration {
	return m.Now().Sub(t)
}

// Sleep implements Clock. It blocks until Advance moves the clock past the
// deadline.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &manualWaiter{deadline: m.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		w.ch <- m.now
		return w.ch
	}
	m.waiters = append(m.waiters, w)
	return w.ch
}

// NewTicker implements Clock.
func (m *Manual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker interval")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &manualWaiter{deadline: m.now.Add(d), ch: make(chan time.Time, 1), periodic: d}
	m.waiters = append(m.waiters, w)
	return &manualTicker{clock: m, w: w}
}

type manualTicker struct {
	clock *Manual
	w     *manualWaiter
}

func (t *manualTicker) C() <-chan time.Time { return t.w.ch }

func (t *manualTicker) Stop() {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	t.w.stopped = true
}

// Advance moves the clock forward by d, waking all sleepers and firing all
// tickers whose deadlines are reached.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	target := m.now.Add(d)
	// Fire waiters in deadline order so periodic tickers observe every tick
	// they are owed.
	for {
		var next *manualWaiter
		for _, w := range m.waiters {
			if w.stopped {
				continue
			}
			if !w.deadline.After(target) && (next == nil || w.deadline.Before(next.deadline)) {
				next = w
			}
		}
		if next == nil {
			break
		}
		m.now = next.deadline
		select {
		case next.ch <- m.now:
		default: // ticker consumer is behind; drop the tick like time.Ticker
		}
		if next.periodic > 0 {
			next.deadline = next.deadline.Add(next.periodic)
		} else {
			next.stopped = true
		}
	}
	m.now = target
	m.compactLocked()
}

func (m *Manual) compactLocked() {
	live := m.waiters[:0]
	for _, w := range m.waiters {
		if !w.stopped {
			live = append(live, w)
		}
	}
	m.waiters = live
}
