package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockBasics(t *testing.T) {
	c := New()
	start := c.Now()
	c.Sleep(5 * time.Millisecond)
	if c.Since(start) < 5*time.Millisecond {
		t.Fatal("Sleep returned early")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("After never fired")
	}
}

func TestRealTicker(t *testing.T) {
	c := New()
	tk := c.NewTicker(2 * time.Millisecond)
	defer tk.Stop()
	for i := 0; i < 3; i++ {
		select {
		case <-tk.C():
		case <-time.After(time.Second):
			t.Fatal("ticker stalled")
		}
	}
}

func TestManualNowAndAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Fatal("wrong start time")
	}
	m.Advance(3 * time.Second)
	if got := m.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("Now after Advance = %v", got)
	}
}

func TestManualAfterFiresOnAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	ch := m.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired before Advance")
	default:
	}
	m.Advance(10 * time.Second)
	select {
	case at := <-ch:
		if !at.Equal(time.Unix(10, 0)) {
			t.Fatalf("fired at %v", at)
		}
	default:
		t.Fatal("did not fire")
	}
}

func TestManualAfterNonPositive(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	select {
	case <-m.After(0):
	default:
		t.Fatal("After(0) must fire immediately")
	}
}

func TestManualSleepWakesOnAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	var wg sync.WaitGroup
	wg.Add(1)
	woke := make(chan struct{})
	go func() {
		defer wg.Done()
		m.Sleep(5 * time.Second)
		close(woke)
	}()
	// Give the sleeper time to register.
	time.Sleep(10 * time.Millisecond)
	m.Advance(5 * time.Second)
	select {
	case <-woke:
	case <-time.After(time.Second):
		t.Fatal("sleeper never woke")
	}
	wg.Wait()
}

func TestManualTickerDeliversEveryOwedTick(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	tk := m.NewTicker(time.Second)
	defer tk.Stop()
	// Advance one period at a time so the capacity-one channel is drained
	// between ticks.
	for i := 0; i < 3; i++ {
		m.Advance(time.Second)
		select {
		case <-tk.C():
		default:
			t.Fatalf("tick %d missing", i)
		}
	}
}

func TestManualTickerDropsBacklogLikeTimeTicker(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	tk := m.NewTicker(time.Second)
	defer tk.Stop()
	m.Advance(5 * time.Second) // 5 owed ticks, capacity 1
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("got %d buffered ticks, want 1 (drop semantics)", n)
	}
}

func TestManualTickerStop(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	tk := m.NewTicker(time.Second)
	tk.Stop()
	m.Advance(3 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
}

func TestManualZeroIntervalTickerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewManual(time.Unix(0, 0)).NewTicker(0)
}
