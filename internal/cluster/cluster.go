// Package cluster assembles simulated machines, sources and sinks into a
// testbed, mirroring the paper's experimental environment: a set of
// machines on a LAN, a stream source feeding a chain of subjobs, and a
// sink measuring end-to-end delay.
package cluster

import (
	"fmt"
	"time"

	"streamha/internal/clock"
	"streamha/internal/detect"
	"streamha/internal/machine"
	"streamha/internal/sched"
	"streamha/internal/transport"
)

// Config configures a cluster.
type Config struct {
	// Clock is the shared time source; nil selects the wall clock.
	Clock clock.Clock
	// Latency is the one-way network latency between machines (the paper's
	// testbed is a 1 Gbps LAN; 200 µs is the default here).
	Latency time.Duration
	// HeartbeatReplyCost is the CPU work per heartbeat reply; zero selects
	// the package default.
	HeartbeatReplyCost time.Duration
}

// Cluster owns the network and machines of one experiment.
type Cluster struct {
	cfg        Config
	net        *transport.Mem
	machines   map[string]*machine.Machine
	order      []string
	responders map[string]*detect.Responder
	domains    map[string]string

	// Scheduler binding: machines added after BindScheduler are admitted
	// as schedulable members with schedCap slots, and crash/recover/remove
	// events are forwarded as membership changes.
	sched    *sched.Scheduler
	schedCap int
	members  map[string]bool
}

// New creates an empty cluster.
func New(cfg Config) *Cluster {
	if cfg.Clock == nil {
		cfg.Clock = clock.New()
	}
	if cfg.Latency == 0 {
		cfg.Latency = 200 * time.Microsecond
	}
	return &Cluster{
		cfg:        cfg,
		net:        transport.NewMem(transport.MemConfig{Clock: cfg.Clock, Latency: cfg.Latency}),
		machines:   make(map[string]*machine.Machine),
		responders: make(map[string]*detect.Responder),
		domains:    make(map[string]string),
		members:    make(map[string]bool),
	}
}

// Clock returns the cluster's time source.
func (c *Cluster) Clock() clock.Clock { return c.cfg.Clock }

// Network returns the cluster's network, for traffic statistics.
func (c *Cluster) Network() *transport.Mem { return c.net }

// AddMachine registers a machine named id with a heartbeat responder, in a
// fault domain of its own (anti-affinity then degenerates to "different
// machine").
func (c *Cluster) AddMachine(id string) (*machine.Machine, error) {
	return c.AddMachineIn(id, id)
}

// AddMachineIn is AddMachine with an explicit fault-domain label (a rack,
// a power feed — whatever fails together). If a scheduler is bound, the
// machine is admitted as a schedulable member.
func (c *Cluster) AddMachineIn(id, domain string) (*machine.Machine, error) {
	if _, ok := c.machines[id]; ok {
		return nil, fmt.Errorf("cluster: machine %q exists", id)
	}
	m, err := machine.New(id, c.cfg.Clock, c.net)
	if err != nil {
		return nil, err
	}
	if domain == "" {
		domain = id
	}
	c.machines[id] = m
	c.order = append(c.order, id)
	c.domains[id] = domain
	c.responders[id] = detect.NewResponder(m, c.cfg.HeartbeatReplyCost)
	if c.sched != nil {
		if err := c.sched.MemberUp(id, domain, c.schedCap); err != nil {
			return nil, fmt.Errorf("cluster: admitting %q: %w", id, err)
		}
		c.members[id] = true
	}
	return m, nil
}

// MustAddMachine is AddMachine panicking on error, for experiment setup.
func (c *Cluster) MustAddMachine(id string) *machine.Machine {
	m, err := c.AddMachine(id)
	if err != nil {
		panic(err)
	}
	return m
}

// MustAddMachineIn is AddMachineIn panicking on error.
func (c *Cluster) MustAddMachineIn(id, domain string) *machine.Machine {
	m, err := c.AddMachineIn(id, domain)
	if err != nil {
		panic(err)
	}
	return m
}

// Machine returns the machine named id, or nil.
func (c *Cluster) Machine(id string) *machine.Machine { return c.machines[id] }

// Domain returns the fault-domain label of machine id ("" if unknown).
func (c *Cluster) Domain(id string) string { return c.domains[id] }

// Machines returns all machines in creation order.
func (c *Cluster) Machines() []*machine.Machine {
	out := make([]*machine.Machine, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.machines[id])
	}
	return out
}

// BindScheduler attaches a placement scheduler: every machine added from
// now on is admitted as a schedulable member with capacity subjob-copy
// slots, and CrashMachine/RecoverMachine/RemoveMachine forward membership
// changes. Machines that already exist (sources, sinks, the scheduler's
// own replica hosts) stay outside the schedulable pool.
func (c *Cluster) BindScheduler(s *sched.Scheduler, capacity int) {
	c.sched = s
	c.schedCap = capacity
}

// Scheduler returns the bound scheduler, or nil.
func (c *Cluster) Scheduler() *sched.Scheduler { return c.sched }

// RemoveMachine deregisters machine id: its heartbeat responder is closed,
// its endpoint released (freeing the id for reuse), and — when it is a
// schedulable member — the scheduler records it down. The caller must have
// stopped or migrated hosted components first.
func (c *Cluster) RemoveMachine(id string) error {
	m, ok := c.machines[id]
	if !ok {
		return fmt.Errorf("cluster: machine %q unknown", id)
	}
	if r := c.responders[id]; r != nil {
		r.Close()
	}
	delete(c.responders, id)
	delete(c.machines, id)
	delete(c.domains, id)
	for i, o := range c.order {
		if o == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	if c.sched != nil && c.members[id] {
		delete(c.members, id)
		if err := c.sched.MemberDown(id); err != nil {
			return err
		}
	}
	return m.Close()
}

// CrashMachine fail-stops machine id and, when it is a schedulable member,
// records it down in the placement log so its slots free up. Failure
// traces go through here so repeated-failure scenarios exercise the
// scheduler's membership path.
func (c *Cluster) CrashMachine(id string) error {
	m, ok := c.machines[id]
	if !ok {
		return fmt.Errorf("cluster: machine %q unknown", id)
	}
	m.Crash()
	if c.sched != nil && c.members[id] {
		return c.sched.MemberDown(id)
	}
	return nil
}

// RecoverMachine restarts a crashed machine with empty state, re-creates
// its heartbeat responder (the restart wiped the old handler), and
// re-admits it to the schedulable pool.
func (c *Cluster) RecoverMachine(id string) error {
	m, ok := c.machines[id]
	if !ok {
		return fmt.Errorf("cluster: machine %q unknown", id)
	}
	if !m.Crashed() {
		return nil
	}
	if r := c.responders[id]; r != nil {
		r.Close()
	}
	m.Restart()
	c.responders[id] = detect.NewResponder(m, c.cfg.HeartbeatReplyCost)
	if c.sched != nil && c.members[id] {
		return c.sched.MemberUp(id, c.domains[id], c.schedCap)
	}
	return nil
}

// Stats returns the cluster's cumulative traffic counters.
func (c *Cluster) Stats() transport.Stats { return c.net.Stats() }

// Close shuts down the responders and the network. Safe after any number
// of RemoveMachine calls.
func (c *Cluster) Close() {
	for id, r := range c.responders {
		r.Close()
		delete(c.responders, id)
	}
	c.net.Close()
}
