// Package cluster assembles simulated machines, sources and sinks into a
// testbed, mirroring the paper's experimental environment: a set of
// machines on a LAN, a stream source feeding a chain of subjobs, and a
// sink measuring end-to-end delay.
package cluster

import (
	"fmt"
	"time"

	"streamha/internal/clock"
	"streamha/internal/detect"
	"streamha/internal/machine"
	"streamha/internal/transport"
)

// Config configures a cluster.
type Config struct {
	// Clock is the shared time source; nil selects the wall clock.
	Clock clock.Clock
	// Latency is the one-way network latency between machines (the paper's
	// testbed is a 1 Gbps LAN; 200 µs is the default here).
	Latency time.Duration
	// HeartbeatReplyCost is the CPU work per heartbeat reply; zero selects
	// the package default.
	HeartbeatReplyCost time.Duration
}

// Cluster owns the network and machines of one experiment.
type Cluster struct {
	cfg        Config
	net        *transport.Mem
	machines   map[string]*machine.Machine
	order      []string
	responders map[string]*detect.Responder
}

// New creates an empty cluster.
func New(cfg Config) *Cluster {
	if cfg.Clock == nil {
		cfg.Clock = clock.New()
	}
	if cfg.Latency == 0 {
		cfg.Latency = 200 * time.Microsecond
	}
	return &Cluster{
		cfg:        cfg,
		net:        transport.NewMem(transport.MemConfig{Clock: cfg.Clock, Latency: cfg.Latency}),
		machines:   make(map[string]*machine.Machine),
		responders: make(map[string]*detect.Responder),
	}
}

// Clock returns the cluster's time source.
func (c *Cluster) Clock() clock.Clock { return c.cfg.Clock }

// Network returns the cluster's network, for traffic statistics.
func (c *Cluster) Network() *transport.Mem { return c.net }

// AddMachine registers a machine named id with a heartbeat responder.
func (c *Cluster) AddMachine(id string) (*machine.Machine, error) {
	if _, ok := c.machines[id]; ok {
		return nil, fmt.Errorf("cluster: machine %q exists", id)
	}
	m, err := machine.New(id, c.cfg.Clock, c.net)
	if err != nil {
		return nil, err
	}
	c.machines[id] = m
	c.order = append(c.order, id)
	c.responders[id] = detect.NewResponder(m, c.cfg.HeartbeatReplyCost)
	return m, nil
}

// MustAddMachine is AddMachine panicking on error, for experiment setup.
func (c *Cluster) MustAddMachine(id string) *machine.Machine {
	m, err := c.AddMachine(id)
	if err != nil {
		panic(err)
	}
	return m
}

// Machine returns the machine named id, or nil.
func (c *Cluster) Machine(id string) *machine.Machine { return c.machines[id] }

// Machines returns all machines in creation order.
func (c *Cluster) Machines() []*machine.Machine {
	out := make([]*machine.Machine, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.machines[id])
	}
	return out
}

// Stats returns the cluster's cumulative traffic counters.
func (c *Cluster) Stats() transport.Stats { return c.net.Stats() }

// Close shuts down the responders and the network.
func (c *Cluster) Close() {
	for _, r := range c.responders {
		r.Close()
	}
	c.net.Close()
}
