package cluster

import (
	"testing"
	"time"

	"streamha/internal/element"
	"streamha/internal/machine"
	"streamha/internal/sched"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

func TestAddMachineAndLookup(t *testing.T) {
	cl := New(Config{})
	defer cl.Close()
	m, err := cl.AddMachine("a")
	if err != nil {
		t.Fatal(err)
	}
	if cl.Machine("a") != m || cl.Machine("zzz") != nil {
		t.Fatal("lookup broken")
	}
	if _, err := cl.AddMachine("a"); err == nil {
		t.Fatal("duplicate machine accepted")
	}
	cl.MustAddMachine("b")
	if got := len(cl.Machines()); got != 2 {
		t.Fatalf("machines %d", got)
	}
}

func TestMustAddMachinePanicsOnDuplicate(t *testing.T) {
	cl := New(Config{})
	defer cl.Close()
	cl.MustAddMachine("a")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	cl.MustAddMachine("a")
}

func TestSourceEmitsAtConfiguredRate(t *testing.T) {
	cl := New(Config{})
	defer cl.Close()
	m := cl.MustAddMachine("src")
	s := NewSource(SourceConfig{
		Machine: m,
		Clock:   cl.Clock(),
		Stream:  "s0",
		Rate:    2000,
	})
	s.Start()
	time.Sleep(500 * time.Millisecond)
	s.Stop()
	got := float64(s.Emitted())
	if got < 800 || got > 1300 {
		t.Fatalf("emitted %v in 0.5s at 2000/s", got)
	}
}

func TestSourceElementsDeterministic(t *testing.T) {
	cl := New(Config{})
	defer cl.Close()
	m := cl.MustAddMachine("src")
	var first []element.Element
	s := NewSource(SourceConfig{Machine: m, Clock: cl.Clock(), Stream: "s0", Rate: 5000})
	s.Out().Subscribe("nowhere", "x", false)
	s.Start()
	time.Sleep(50 * time.Millisecond)
	s.Stop()
	snap := s.Out().Snapshot()
	first = snap.Buf
	if len(first) == 0 {
		t.Fatal("nothing retained")
	}
	for i, e := range first {
		if e.ID != uint64(i+1) || e.Seq != uint64(i+1) {
			t.Fatalf("element %d: %+v (IDs must be dense from 1)", i, e)
		}
	}
}

func TestSourceBurstShaping(t *testing.T) {
	cl := New(Config{})
	defer cl.Close()
	m := cl.MustAddMachine("src")
	s := NewSource(SourceConfig{
		Machine:  m,
		Clock:    cl.Clock(),
		Stream:   "s0",
		Rate:     1000,
		BurstOn:  20 * time.Millisecond,
		BurstOff: 20 * time.Millisecond,
	})
	s.Start()
	time.Sleep(400 * time.Millisecond)
	s.Stop()
	// Bursting preserves the average rate (factor defaults to on+off/on).
	got := float64(s.Emitted())
	if got < 250 || got > 550 {
		t.Fatalf("bursty source emitted %v in 0.4s at avg 1000/s", got)
	}
}

func TestSinkRecordsDelaysAndAcks(t *testing.T) {
	cl := New(Config{Latency: 100 * time.Microsecond})
	defer cl.Close()
	sinkM := cl.MustAddMachine("sink")
	upM := cl.MustAddMachine("up-copy")

	sink := NewSink(SinkConfig{
		Machine:     sinkM,
		Clock:       cl.Clock(),
		ID:          "j/sink",
		InStreams:   []string{"s1"},
		Owners:      map[string]string{"s1": "j/sj0"},
		AckInterval: 10 * time.Millisecond,
		TrackIDs:    true,
	})
	sink.Start()
	defer sink.Stop()

	acks := make(chan uint64, 16)
	upM.RegisterStream(subjob.AckStream("j/sj0", "s1"), func(_ transport.NodeID, msg transport.Message) {
		acks <- msg.Seq
	})

	origin := cl.Clock().Now().Add(-5 * time.Millisecond).UnixNano()
	upM.Send(sinkM.ID(), transport.Message{
		Kind:   transport.KindData,
		Stream: subjob.DataStream("j/sink", "s1"),
		Elements: []element.Element{
			{ID: 1, Seq: 1, Origin: origin},
			{ID: 2, Seq: 2, Origin: origin},
		},
	})

	deadline := time.Now().Add(2 * time.Second)
	for sink.Received() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sink.Received() != 2 {
		t.Fatalf("received %d", sink.Received())
	}
	if sink.Delays().Count() != 2 || sink.Delays().Mean() < 5*time.Millisecond {
		t.Fatalf("delays count=%d mean=%v", sink.Delays().Count(), sink.Delays().Mean())
	}
	if counts := sink.IDCounts(); counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("id counts %v", counts)
	}
	select {
	case seq := <-acks:
		if seq != 2 {
			t.Fatalf("ack %d", seq)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sink never acked")
	}
}

func TestSinkDeduplicatesReplicaDelivery(t *testing.T) {
	cl := New(Config{})
	defer cl.Close()
	sinkM := cl.MustAddMachine("sink")
	a := cl.MustAddMachine("copy-a")
	b := cl.MustAddMachine("copy-b")

	sink := NewSink(SinkConfig{
		Machine:   sinkM,
		Clock:     cl.Clock(),
		ID:        "j/sink",
		InStreams: []string{"s1"},
		Owners:    map[string]string{"s1": "j/sj0"},
		TrackIDs:  true,
	})
	sink.Start()
	defer sink.Stop()

	batch := []element.Element{{ID: 1, Seq: 1}, {ID: 2, Seq: 2}}
	msg := transport.Message{Kind: transport.KindData, Stream: subjob.DataStream("j/sink", "s1"), Elements: batch}
	a.Send(sinkM.ID(), msg)
	b.Send(sinkM.ID(), msg) // active-standby duplicate

	deadline := time.Now().Add(time.Second)
	for sink.Received() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if sink.Received() != 2 {
		t.Fatalf("received %d, want 2 after dedup", sink.Received())
	}
	dups, gaps := sink.In().Drops()
	if dups != 2 || gaps != 0 {
		t.Fatalf("dups=%d gaps=%d", dups, gaps)
	}
}

func TestSinkOnArrivalCallback(t *testing.T) {
	cl := New(Config{})
	defer cl.Close()
	sinkM := cl.MustAddMachine("sink")
	up := cl.MustAddMachine("up")
	sink := NewSink(SinkConfig{
		Machine:   sinkM,
		Clock:     cl.Clock(),
		ID:        "j/sink",
		InStreams: []string{"s1"},
		Owners:    map[string]string{"s1": "o"},
	})
	got := make(chan element.Element, 4)
	sink.SetOnArrival(func(e element.Element, _ time.Time) { got <- e })
	sink.Start()
	defer sink.Stop()
	up.Send(sinkM.ID(), transport.Message{
		Kind: transport.KindData, Stream: subjob.DataStream("j/sink", "s1"),
		Elements: []element.Element{{ID: 9, Seq: 1}},
	})
	select {
	case e := <-got:
		if e.ID != 9 {
			t.Fatalf("element %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("callback never fired")
	}
}

func TestRemoveMachineFreesID(t *testing.T) {
	cl := New(Config{})
	defer cl.Close()
	cl.MustAddMachine("a")
	cl.MustAddMachine("b")
	if err := cl.RemoveMachine("a"); err != nil {
		t.Fatalf("RemoveMachine: %v", err)
	}
	if cl.Machine("a") != nil {
		t.Fatal("removed machine still resolvable")
	}
	if got := len(cl.Machines()); got != 1 {
		t.Fatalf("machines after removal: %d", got)
	}
	if err := cl.RemoveMachine("a"); err == nil {
		t.Fatal("double removal accepted")
	}
	// The id is free for reuse, and Close stays safe afterwards.
	if _, err := cl.AddMachine("a"); err != nil {
		t.Fatalf("re-adding removed id: %v", err)
	}
	if err := cl.RemoveMachine("a"); err != nil {
		t.Fatalf("removing re-added machine: %v", err)
	}
}

func TestFaultDomains(t *testing.T) {
	cl := New(Config{})
	defer cl.Close()
	cl.MustAddMachineIn("w1", "rack-a")
	cl.MustAddMachine("w2")
	if got := cl.Domain("w1"); got != "rack-a" {
		t.Fatalf("domain(w1) = %q", got)
	}
	// Unlabeled machines live in a fault domain of their own.
	if got := cl.Domain("w2"); got != "w2" {
		t.Fatalf("domain(w2) = %q", got)
	}
	if got := cl.Domain("ghost"); got != "" {
		t.Fatalf("domain(ghost) = %q", got)
	}
}

func TestCrashRecoverDrivesSchedulerMembership(t *testing.T) {
	cl := New(Config{})
	defer cl.Close()
	reps := []*machine.Machine{cl.MustAddMachine("sched-a")}
	s, err := sched.New(sched.Config{Clock: cl.Clock(), Replicas: reps, Tick: 5 * time.Millisecond, ElectionTimeout: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	cl.BindScheduler(s, 2)
	cl.MustAddMachineIn("w1", "rack-a")
	cl.MustAddMachineIn("w2", "rack-b")

	st := s.Stats()
	if st.Members != 2 || st.MembersUp != 2 {
		t.Fatalf("members = %d/%d up, want 2/2 (replica host must stay outside the pool)", st.MembersUp, st.Members)
	}
	if st.Domains["rack-a"].Capacity != 2 {
		t.Fatalf("rack-a capacity = %d, want 2", st.Domains["rack-a"].Capacity)
	}

	if err := cl.CrashMachine("w1"); err != nil {
		t.Fatal(err)
	}
	if !cl.Machine("w1").Crashed() {
		t.Fatal("machine not crashed")
	}
	if st := s.Stats(); st.MembersUp != 1 {
		t.Fatalf("members up after crash = %d, want 1", st.MembersUp)
	}
	if err := cl.RecoverMachine("w1"); err != nil {
		t.Fatal(err)
	}
	if cl.Machine("w1").Crashed() {
		t.Fatal("machine still crashed")
	}
	if st := s.Stats(); st.MembersUp != 2 {
		t.Fatalf("members up after recovery = %d, want 2", st.MembersUp)
	}
	if err := cl.RemoveMachine("w2"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.MembersUp != 1 {
		t.Fatalf("members up after removal = %d, want 1", st.MembersUp)
	}
}

func TestClusterStatsAccumulate(t *testing.T) {
	cl := New(Config{})
	defer cl.Close()
	a := cl.MustAddMachine("a")
	cl.MustAddMachine("b")
	a.Send("b", transport.Message{Kind: transport.KindData, Elements: make([]element.Element, 3)})
	if got := cl.Stats().DataElements(); got != 3 {
		t.Fatalf("stats %d", got)
	}
}
