package cluster

import (
	"sync"
	"time"

	"streamha/internal/clock"
	"streamha/internal/element"
	"streamha/internal/machine"
	"streamha/internal/metrics"
	"streamha/internal/queue"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// SinkConfig parameterizes a measuring sink.
type SinkConfig struct {
	// Machine hosts the sink.
	Machine *machine.Machine
	// Clock is the time source.
	Clock clock.Clock
	// ID names the sink for stream routing (e.g. "sink").
	ID string
	// InStreams lists the logical streams the sink consumes.
	InStreams []string
	// Owners maps each input stream to the subjob ID producing it, for
	// acknowledgment routing.
	Owners map[string]string
	// AckInterval is how often consumed positions are acknowledged
	// upstream. The sink is stateless, so it acks on processing; its ack
	// cadence seeds the sweeping checkpoint cascade, so it defaults to the
	// job's checkpoint interval.
	AckInterval time.Duration
	// Delays receives one sample per delivered element; nil allocates one.
	Delays *metrics.DelayStats
	// TrackIDs retains a count per delivered element ID for exactly-once
	// verification in tests (costs memory; off for long benchmarks).
	TrackIDs bool
}

// Sink consumes a job's final stream: it deduplicates (via its input
// queue), records end-to-end delay, and acknowledges upstream.
type Sink struct {
	cfg SinkConfig
	in  *queue.Input

	mu        sync.Mutex
	senders   map[string]map[transport.NodeID]time.Time
	consumed  map[string]uint64
	ids       map[uint64]int
	received  uint64
	onArrival func(e element.Element, at time.Time)
	started   bool
	stop      chan struct{}
	done      chan struct{}
}

// NewSink creates a sink; call Start to begin consuming.
func NewSink(cfg SinkConfig) *Sink {
	if cfg.AckInterval <= 0 {
		cfg.AckInterval = 10 * time.Millisecond
	}
	if cfg.Delays == nil {
		cfg.Delays = &metrics.DelayStats{}
	}
	s := &Sink{
		cfg:      cfg,
		in:       queue.NewInput(cfg.InStreams...),
		senders:  make(map[string]map[transport.NodeID]time.Time),
		consumed: make(map[string]uint64),
	}
	if cfg.TrackIDs {
		s.ids = make(map[uint64]int)
	}
	for _, logical := range cfg.InStreams {
		s.registerInput(logical)
	}
	return s
}

func (s *Sink) registerInput(logical string) {
	s.cfg.Machine.RegisterStream(subjob.DataStream(s.cfg.ID, logical), func(from transport.NodeID, msg transport.Message) {
		s.noteSender(logical, from)
		s.in.Push(logical, msg.Elements)
	})
}

// AddInput starts consuming a new logical stream owned by owner. Live
// rescaling uses it to attach the output stream of an instance added
// after deployment; the caller subscribes the sink on the producer side.
func (s *Sink) AddInput(logical, owner string) {
	s.mu.Lock()
	for _, st := range s.cfg.InStreams {
		if st == logical {
			s.mu.Unlock()
			return
		}
	}
	s.cfg.InStreams = append(s.cfg.InStreams, logical)
	if s.cfg.Owners == nil {
		s.cfg.Owners = make(map[string]string)
	}
	s.cfg.Owners[logical] = owner
	s.mu.Unlock()
	s.in.AddStream(logical)
	s.registerInput(logical)
}

// Node returns the sink machine's node ID.
func (s *Sink) Node() transport.NodeID { return s.cfg.Machine.ID() }

// ID returns the sink's routing name.
func (s *Sink) ID() string { return s.cfg.ID }

// In returns the sink's input queue, for wiring and tests.
func (s *Sink) In() *queue.Input { return s.in }

// Delays returns the sink's delay statistics.
func (s *Sink) Delays() *metrics.DelayStats { return s.cfg.Delays }

// Received returns the number of elements delivered.
func (s *Sink) Received() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}

// SinkStats is a JSON-marshalable view of the sink, exported through the
// metrics registry.
type SinkStats struct {
	Received  uint64                `json:"received"`
	InputLen  int                   `json:"input_len"`
	InputDups int                   `json:"input_dups"`
	InputGaps int                   `json:"input_gaps"`
	Delays    metrics.DelaySnapshot `json:"delays"`
}

// Stats captures delivery and dedup counters plus the live delay
// distribution.
func (s *Sink) Stats() SinkStats {
	dups, gaps := s.in.Drops()
	return SinkStats{
		Received:  s.Received(),
		InputLen:  s.in.Len(),
		InputDups: dups,
		InputGaps: gaps,
		Delays:    s.cfg.Delays.Snapshot(),
	}
}

// RegisterMetrics registers the sink under "sink/<id>" in reg.
func (s *Sink) RegisterMetrics(reg *metrics.Registry) {
	reg.Register("sink/"+s.cfg.ID, func() any { return s.Stats() })
}

// IDCounts returns a copy of the per-ID delivery counts (TrackIDs only).
func (s *Sink) IDCounts() map[uint64]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]int, len(s.ids))
	for k, v := range s.ids {
		out[k] = v
	}
	return out
}

// senderStaleness bounds how long a copy that stopped delivering keeps
// receiving acknowledgments from the sink.
const senderStaleness = 2 * time.Second

func (s *Sink) noteSender(logical string, node transport.NodeID) {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	byNode := s.senders[logical]
	if byNode == nil {
		byNode = make(map[transport.NodeID]time.Time)
		s.senders[logical] = byNode
	}
	byNode[node] = now
}

// SetOnArrival registers a callback invoked for every delivered element.
// Recovery experiments use it to timestamp the first post-recovery output.
func (s *Sink) SetOnArrival(f func(e element.Element, at time.Time)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onArrival = f
}

// Start launches the consume and ack loops.
func (s *Sink) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.run()
}

// Stop halts the sink.
func (s *Sink) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
	s.mu.Lock()
	streams := append([]string(nil), s.cfg.InStreams...)
	s.mu.Unlock()
	for _, logical := range streams {
		s.cfg.Machine.UnregisterStream(subjob.DataStream(s.cfg.ID, logical))
	}
}

func (s *Sink) run() {
	defer close(s.done)
	ack := s.cfg.Clock.NewTicker(s.cfg.AckInterval)
	defer ack.Stop()
	for {
		for {
			ins := s.in.TryPop(256)
			if len(ins) == 0 {
				break
			}
			s.deliver(ins)
		}
		select {
		case <-s.stop:
			return
		case <-s.in.Ready():
		case <-ack.C():
			s.sendAcks()
		}
	}
}

func (s *Sink) deliver(ins []queue.In) {
	now := s.cfg.Clock.Now()
	nowNanos := now.UnixNano()
	s.mu.Lock()
	onArrival := s.onArrival
	for _, in := range ins {
		s.received++
		if in.Elem.Seq > s.consumed[in.Stream] {
			s.consumed[in.Stream] = in.Elem.Seq
		}
		if s.ids != nil {
			s.ids[in.Elem.ID]++
		}
	}
	s.mu.Unlock()
	for _, in := range ins {
		s.cfg.Delays.Add(time.Duration(nowNanos - in.Elem.Origin))
		if onArrival != nil {
			onArrival(in.Elem, now)
		}
	}
}

func (s *Sink) sendAcks() {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	positions := make(map[string]uint64, len(s.consumed))
	for k, v := range s.consumed {
		positions[k] = v
	}
	targets := make(map[string][]subjob.AckTarget, len(s.senders))
	for logical, byNode := range s.senders {
		stream := subjob.AckStream(s.cfg.Owners[logical], logical)
		for node, seen := range byNode {
			if now.Sub(seen) > senderStaleness {
				delete(byNode, node)
				continue
			}
			targets[logical] = append(targets[logical], subjob.AckTarget{Node: node, Stream: stream})
		}
	}
	s.mu.Unlock()
	for logical, seq := range positions {
		if seq == 0 {
			continue
		}
		for _, t := range targets[logical] {
			s.cfg.Machine.Send(t.Node, transport.Message{
				Kind:   transport.KindAck,
				Stream: t.Stream,
				Seq:    seq,
			})
		}
	}
}
