package cluster

import (
	"sync"
	"time"

	"streamha/internal/clock"
	"streamha/internal/element"
	"streamha/internal/machine"
	"streamha/internal/queue"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// SourceOwner is the owner name used in the source's ack-stream naming.
const SourceOwner = "source"

// SourceConfig parameterizes a stream source.
type SourceConfig struct {
	// Machine hosts the source. The paper keeps the source machine free of
	// injected failures so the input rate stays stable.
	Machine *machine.Machine
	// Clock is the time source.
	Clock clock.Clock
	// Stream is the logical stream the source produces.
	Stream string
	// Rate is the average element rate per second.
	Rate float64
	// Tick is the batching period (default 5 ms): each tick emits
	// Rate×Tick elements in one data message.
	Tick time.Duration
	// BurstOn/BurstOff, when both positive, modulate the rate in an on/off
	// pattern: Rate×BurstFactor during on-periods and zero during
	// off-periods (keeping the same average when BurstFactor =
	// (on+off)/on). Bursty input is what makes the benchmark detector
	// fire falsely.
	BurstOn, BurstOff time.Duration
	// BurstFactor scales the on-period rate (default (on+off)/on).
	BurstFactor float64
	// Payload derives an element's payload from its ID; nil keeps the ID.
	Payload func(id uint64) int64
	// KeyOf derives an element's routing key from its ID; nil keeps the ID,
	// which spreads keys uniformly over a keyed-parallel first stage.
	KeyOf func(id uint64) uint64
}

// Source emits a deterministic element stream through an output queue, so
// that recoveries can retransmit from the source exactly like from any
// subjob.
type Source struct {
	cfg SourceConfig
	out *queue.Output

	mu      sync.Mutex
	nextID  uint64
	carry   float64
	started bool
	stop    chan struct{}
	done    chan struct{}
}

// NewSource creates a source; call Start to begin emitting.
func NewSource(cfg SourceConfig) *Source {
	if cfg.Tick <= 0 {
		cfg.Tick = 5 * time.Millisecond
	}
	if cfg.BurstFactor <= 0 && cfg.BurstOn > 0 && cfg.BurstOff > 0 {
		cfg.BurstFactor = float64(cfg.BurstOn+cfg.BurstOff) / float64(cfg.BurstOn)
	}
	if cfg.Payload == nil {
		cfg.Payload = func(id uint64) int64 { return int64(id) }
	}
	if cfg.KeyOf == nil {
		cfg.KeyOf = func(id uint64) uint64 { return id }
	}
	s := &Source{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.out = queue.NewOutput(cfg.Stream, func(to transport.NodeID, msg transport.Message) {
		cfg.Machine.Send(to, msg)
	})
	cfg.Machine.RegisterStream(subjob.AckStream(SourceOwner, cfg.Stream), func(from transport.NodeID, msg transport.Message) {
		s.out.Ack(from, msg.Seq)
	})
	cfg.Machine.RegisterStream(subjob.ResyncStream(SourceOwner, cfg.Stream), func(from transport.NodeID, _ transport.Message) {
		// A restarted consumer asks for everything past its acknowledgment
		// floor; its restored input dedup absorbs the overlap.
		s.out.Resync(from)
	})
	return s
}

// Out returns the source's output queue, for subscription wiring.
func (s *Source) Out() *queue.Output { return s.out }

// Node returns the source machine's node ID.
func (s *Source) Node() transport.NodeID { return s.cfg.Machine.ID() }

// AckTarget returns the target downstream copies should ack to.
func (s *Source) AckTarget() subjob.AckTarget {
	return subjob.AckTarget{
		Node:   s.cfg.Machine.ID(),
		Stream: subjob.AckStream(SourceOwner, s.cfg.Stream),
	}
}

// Emitted returns the number of elements emitted so far.
func (s *Source) Emitted() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextID
}

// SourceStats is a JSON-marshalable view of the source, exported through
// the metrics registry.
type SourceStats struct {
	Emitted uint64            `json:"emitted"`
	Output  queue.OutputStats `json:"output"`
}

// Stats captures the emission count and output-queue retention state.
func (s *Source) Stats() SourceStats {
	return SourceStats{Emitted: s.Emitted(), Output: s.out.Stats()}
}

// Start launches the emission loop.
func (s *Source) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.run()
}

// Stop halts emission.
func (s *Source) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

func (s *Source) run() {
	defer close(s.done)
	t := s.cfg.Clock.NewTicker(s.cfg.Tick)
	defer t.Stop()
	epoch := s.cfg.Clock.Now()
	last := epoch
	for {
		select {
		case <-s.stop:
			return
		case <-t.C():
			now := s.cfg.Clock.Now()
			s.emit(epoch, now.Sub(last))
			last = now
		}
	}
}

// emit produces the elements owed for the dt that actually elapsed since
// the previous tick — tickers drop ticks under scheduling pressure, and
// integrating over real elapsed time keeps the average rate exact.
func (s *Source) emit(epoch time.Time, dt time.Duration) {
	if dt <= 0 {
		return
	}
	if dt > 4*s.cfg.Tick {
		dt = 4 * s.cfg.Tick // cap burst after a long stall
	}
	rate := s.cfg.Rate
	if s.cfg.BurstOn > 0 && s.cfg.BurstOff > 0 {
		phase := s.cfg.Clock.Since(epoch) % (s.cfg.BurstOn + s.cfg.BurstOff)
		if phase < s.cfg.BurstOn {
			rate *= s.cfg.BurstFactor
		} else {
			rate = 0
		}
	}
	s.mu.Lock()
	s.carry += rate * dt.Seconds()
	n := int(s.carry)
	s.carry -= float64(n)
	if n == 0 {
		s.mu.Unlock()
		return
	}
	now := s.cfg.Clock.Now().UnixNano()
	batch := make([]element.Element, n)
	for i := range batch {
		s.nextID++
		batch[i] = element.Element{
			ID:      s.nextID,
			Key:     s.cfg.KeyOf(s.nextID),
			Origin:  now,
			Payload: s.cfg.Payload(s.nextID),
		}
	}
	s.mu.Unlock()
	s.out.Publish(batch)
}
