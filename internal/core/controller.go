package core

import (
	"sync"
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/clock"
	"streamha/internal/detect"
	"streamha/internal/machine"
	"streamha/internal/queue"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// Target identifies one consumer of a subjob's output stream: a downstream
// copy's (or the sink's) node and data-stream name. Active reports whether
// that consumer should currently receive published data (false for a
// suspended hybrid standby, whose subscription is an early connection).
type Target struct {
	Node   transport.NodeID
	Stream string
	Active bool
}

// Wiring tells a controller how its subjob connects to the rest of the
// job. Both sides are functions because neighboring subjobs may migrate:
// they are re-evaluated whenever the controller rewires.
type Wiring struct {
	// UpstreamOutputs returns the output queues currently producing this
	// subjob's input streams (every live copy of each upstream producer,
	// including the source).
	UpstreamOutputs func() []*queue.Output
	// DownstreamTargets returns the consumer copies of this subjob's output.
	DownstreamTargets func() []Target
}

// Options tunes the hybrid method. The zero value selects the paper's full
// design at the experiments' one-tenth timescale.
type Options struct {
	// HeartbeatInterval is the detector's ping period (default 20 ms,
	// standing in for the paper's 100 ms).
	HeartbeatInterval time.Duration
	// MissThreshold triggers switchover; the hybrid method acts on the
	// first miss (default 1).
	MissThreshold int
	// RecoverThreshold is how many replies after a failure declare the
	// primary responsive again (default 1).
	RecoverThreshold int
	// CheckpointInterval drives the primary's sweeping checkpoint manager
	// (default 10 ms, standing in for the paper's 50 ms).
	CheckpointInterval time.Duration
	// CheckpointCosts models checkpoint CPU cost.
	CheckpointCosts checkpoint.Costs
	// CheckpointRebaseEvery enables incremental checkpointing when ≥ 2: up
	// to RebaseEvery-1 delta checkpoints ship between full snapshots. 0
	// keeps the classic full-snapshot-every-sweep protocol.
	CheckpointRebaseEvery int
	// CheckpointMaxInFlight bounds captured-but-unshipped checkpoints
	// (default 2; see checkpoint.Config).
	CheckpointMaxInFlight int
	// AckInterval is the standby's acknowledgment period while active
	// (default: CheckpointInterval).
	AckInterval time.Duration
	// ResumeCost is the CPU work to resume the pre-deployed copy (the
	// paper measures resume at about a quarter of a full redeployment).
	ResumeCost time.Duration
	// DeployCost is the CPU work to deploy a copy on demand; paid at
	// switchover only under NoPreDeploy (default 20 ms, standing in for
	// the paper's ~200 ms redeployment).
	DeployCost time.Duration
	// ConnectCost is the CPU work per connection established on demand;
	// paid at switchover only under NoEarlyConnection.
	ConnectCost time.Duration
	// FailStopAfter promotes the standby to primary if the failure
	// persists this long after switchover; zero disables promotion.
	FailStopAfter time.Duration

	// Ablation switches (Section IV-B optimizations; all false = full
	// hybrid):
	//
	// NoPreDeploy deploys the secondary on demand at switchover instead of
	// pre-deploying it suspended; checkpoints then go to a passive store.
	NoPreDeploy bool
	// NoEarlyConnection creates upstream/downstream connections at
	// switchover instead of in advance.
	NoEarlyConnection bool
	// NoReadState skips the read-state step on rollback: the primary
	// resumes from its own (stale) state and reprocesses its backlog.
	NoReadState bool
	// DiskStore persists checkpoints through a simulated disk instead of
	// refreshing memory (only meaningful with NoPreDeploy or for ablation
	// of the in-memory refresh; adds write latency to every checkpoint).
	DiskStore bool
}

func (o Options) withDefaults() Options {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 20 * time.Millisecond
	}
	if o.MissThreshold <= 0 {
		o.MissThreshold = 1
	}
	if o.RecoverThreshold <= 0 {
		o.RecoverThreshold = 1
	}
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 10 * time.Millisecond
	}
	if o.AckInterval <= 0 {
		o.AckInterval = o.CheckpointInterval
	}
	if o.ResumeCost <= 0 {
		o.ResumeCost = 5 * time.Millisecond
	}
	if o.DeployCost <= 0 {
		o.DeployCost = 20 * time.Millisecond
	}
	if o.ConnectCost <= 0 {
		o.ConnectCost = 2 * time.Millisecond
	}
	return o
}

// SwitchEvent records one switchover: from the detector's declaration to
// the standby running and connected.
type SwitchEvent struct {
	DetectedAt time.Time
	ReadyAt    time.Time
}

// RollbackEvent records one rollback: from the recovery declaration to the
// primary holding the adopted state (or having declined it).
type RollbackEvent struct {
	StartedAt time.Time
	DoneAt    time.Time
	// StateUnits is the size of the state read back, in element units.
	StateUnits int
	// Adopted reports whether the primary adopted the standby's state; it
	// declines when its own progress was ahead (a false-alarm switchover).
	Adopted bool
}

// PromoteEvent records a fail-stop promotion of the standby to primary.
type PromoteEvent struct {
	At time.Time
}

// ControllerConfig assembles a hybrid controller for one subjob.
type ControllerConfig struct {
	// Spec is the protected subjob.
	Spec subjob.Spec
	// Clock is the time source.
	Clock clock.Clock
	// Primary is the running primary copy.
	Primary *subjob.Runtime
	// SecondaryMachine hosts the standby; it may be shared by the
	// standbys of several subjobs (multiplexing).
	SecondaryMachine *machine.Machine
	// Secondary, when non-nil, is a pre-created suspended standby already
	// wired by the deployer (the pipeline builder wires all copies before
	// starting controllers so that standby-to-standby early connections
	// exist). When nil the controller creates and wires the standby
	// itself.
	Secondary *subjob.Runtime
	// SpareMachine hosts the new standby after a fail-stop promotion; nil
	// disables promotion re-protection.
	SpareMachine *machine.Machine
	// Wiring connects the subjob to its neighbors.
	Wiring Wiring
	// Options tunes the method.
	Options Options
}

type eventKind int

const (
	evFailure eventKind = iota
	evRecovery
)

type event struct {
	kind eventKind
	at   time.Time
}

// Controller runs the hybrid method for one subjob.
type Controller struct {
	cfg  ControllerConfig
	opts Options
	clk  clock.Clock

	mu         sync.Mutex
	primary    *subjob.Runtime
	secondary  *subjob.Runtime
	standby    *StandbyStore
	diskStore  *checkpoint.Store
	cm         checkpoint.Manager
	acker      *checkpoint.Acker
	det        *detect.Heartbeat
	active     bool // switched over to the standby
	promoted   bool
	switches   []SwitchEvent
	rollbacks  []RollbackEvent
	promotions []PromoteEvent

	events  chan event
	rsAckCh chan struct{}
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewController creates a hybrid controller; call Start after the primary
// copy is running.
func NewController(cfg ControllerConfig) *Controller {
	return &Controller{
		cfg:     cfg,
		opts:    cfg.Options.withDefaults(),
		clk:     cfg.Clock,
		primary: cfg.Primary,
		events:  make(chan event, 16),
		rsAckCh: make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start deploys the standby side (pre-deployed and early-connected unless
// ablated), starts the checkpoint manager and detector, and launches the
// control loop.
func (c *Controller) Start() error {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return nil
	}
	c.started = true
	c.mu.Unlock()

	spec := c.cfg.Spec
	secM := c.cfg.SecondaryMachine

	if !c.opts.NoPreDeploy {
		sec := c.cfg.Secondary
		if sec == nil {
			var err error
			sec, err = subjob.New(spec, secM, true)
			if err != nil {
				return err
			}
			sec.Start()
			if !c.opts.NoEarlyConnection {
				c.connectStandby(sec)
			}
		}
		// Pre-deployment pays the deployment cost up front, off the
		// critical path.
		secM.CPU().Execute(c.opts.DeployCost)
		c.mu.Lock()
		c.secondary = sec
		c.mu.Unlock()
		c.mu.Lock()
		c.standby = NewStandbyStore(sec)
		c.acker = checkpoint.NewAcker(sec, c.clk, c.opts.AckInterval)
		c.mu.Unlock()
		c.acker.Start()
	} else {
		backend := checkpoint.InMemory
		if c.opts.DiskStore {
			backend = checkpoint.SimulatedDisk
		}
		c.mu.Lock()
		c.diskStore = checkpoint.NewStore(secM, spec.ID, backend, 0)
		c.mu.Unlock()
	}

	cm := checkpoint.NewSweeping(checkpoint.Config{
		Runtime:     c.primaryRT(),
		Clock:       c.clk,
		Interval:    c.opts.CheckpointInterval,
		StoreNode:   secM.ID(),
		Costs:       c.opts.CheckpointCosts,
		RebaseEvery: c.opts.CheckpointRebaseEvery,
		MaxInFlight: c.opts.CheckpointMaxInFlight,
	})
	c.mu.Lock()
	c.cm = cm
	c.mu.Unlock()
	cm.Start()

	c.registerReadStateAck(c.primaryRT().Machine())
	c.startDetector(secM, c.primaryRT().Machine().ID())
	go c.run()
	return nil
}

// connectStandby creates the standby's early connections: inactive
// subscriptions from every upstream output, and active subscriptions from
// the standby's output to every downstream target (no data flows while the
// standby is suspended).
func (c *Controller) connectStandby(sec *subjob.Runtime) {
	for _, up := range c.cfg.Wiring.UpstreamOutputs() {
		up.Subscribe(sec.Node(), subjob.DataStream(sec.Spec().ID, up.StreamID), false)
	}
	for _, t := range c.cfg.Wiring.DownstreamTargets() {
		sec.Out().Subscribe(t.Node, t.Stream, t.Active)
	}
}

func (c *Controller) registerReadStateAck(m *machine.Machine) {
	m.RegisterStream(subjob.ReadStateStream(c.cfg.Spec.ID), func(_ transport.NodeID, _ transport.Message) {
		select {
		case c.rsAckCh <- struct{}{}:
		default:
		}
	})
}

func (c *Controller) startDetector(monitor *machine.Machine, target transport.NodeID) {
	det := detect.NewHeartbeat(detect.HeartbeatConfig{
		Monitor:          monitor,
		Clock:            c.clk,
		Target:           target,
		Session:          c.cfg.Spec.ID,
		Interval:         c.opts.HeartbeatInterval,
		MissThreshold:    c.opts.MissThreshold,
		RecoverThreshold: c.opts.RecoverThreshold,
		OnFailure:        func(at time.Time) { c.post(event{kind: evFailure, at: at}) },
		OnRecovery:       func(at time.Time) { c.post(event{kind: evRecovery, at: at}) },
	})
	c.mu.Lock()
	c.det = det
	c.mu.Unlock()
	det.Start()
}

func (c *Controller) post(ev event) {
	select {
	case c.events <- ev:
	case <-c.stop:
	}
}

func (c *Controller) primaryRT() *subjob.Runtime {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.primary
}

func (c *Controller) secondaryRT() *subjob.Runtime {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.secondary
}

// Active reports whether the subjob is currently switched over to its
// standby.
func (c *Controller) Active() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.active
}

// Switches returns the recorded switchover events.
func (c *Controller) Switches() []SwitchEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SwitchEvent(nil), c.switches...)
}

// Rollbacks returns the recorded rollback events.
func (c *Controller) Rollbacks() []RollbackEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]RollbackEvent(nil), c.rollbacks...)
}

// Promotions returns the recorded fail-stop promotions.
func (c *Controller) Promotions() []PromoteEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]PromoteEvent(nil), c.promotions...)
}

// Detector returns the controller's heartbeat detector, for experiments.
func (c *Controller) Detector() *detect.Heartbeat {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.det
}

// Checkpoint returns the controller's checkpoint manager, or nil before
// Start.
func (c *Controller) Checkpoint() checkpoint.Manager {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cm
}

// DiskStore returns the checkpoint store of the no-pre-deployment
// ablation, or nil when the standby holds state in memory.
func (c *Controller) DiskStore() *checkpoint.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.diskStore
}

// ControllerStats is a JSON-marshalable view of the controller's HA
// activity, exported through the metrics registry.
type ControllerStats struct {
	Subjob     string `json:"subjob"`
	Active     bool   `json:"standby_active"`
	Promoted   bool   `json:"promoted"`
	Switches   int    `json:"switchovers"`
	Rollbacks  int    `json:"rollbacks"`
	Promotions int    `json:"promotions"`
}

// Stats captures the controller's switchover/rollback/promotion counts
// and current standby state.
func (c *Controller) Stats() ControllerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ControllerStats{
		Subjob:     c.cfg.Spec.ID,
		Active:     c.active,
		Promoted:   c.promoted,
		Switches:   len(c.switches),
		Rollbacks:  len(c.rollbacks),
		Promotions: len(c.promotions),
	}
}

// PrimaryRuntime returns the copy currently serving as primary.
func (c *Controller) PrimaryRuntime() *subjob.Runtime { return c.primaryRT() }

// SecondaryRuntime returns the current standby copy, or nil.
func (c *Controller) SecondaryRuntime() *subjob.Runtime { return c.secondaryRT() }

// Stop halts the controller, its detector, checkpoint manager, standby
// store and acker.
func (c *Controller) Stop() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done

	c.mu.Lock()
	det, cm, acker, standby, disk, sec := c.det, c.cm, c.acker, c.standby, c.diskStore, c.secondary
	c.mu.Unlock()
	if det != nil {
		det.Stop()
	}
	if cm != nil {
		cm.Stop()
	}
	if acker != nil {
		acker.Stop()
	}
	if standby != nil {
		standby.Close()
	}
	if disk != nil {
		disk.Close()
	}
	if sec != nil {
		sec.Stop()
	}
	c.primaryRT().Machine().UnregisterStream(subjob.ReadStateStream(c.cfg.Spec.ID))
}

func (c *Controller) run() {
	defer close(c.done)
	var promote <-chan time.Time
	for {
		select {
		case <-c.stop:
			return
		case ev := <-c.events:
			switch ev.kind {
			case evFailure:
				if c.switchover(ev.at) && c.opts.FailStopAfter > 0 {
					promote = c.clk.After(c.opts.FailStopAfter)
				}
			case evRecovery:
				promote = nil
				c.rollback(ev.at)
			}
		case <-promote:
			promote = nil
			c.promote()
		}
	}
}
