package core

import (
	"testing"
	"time"

	"streamha/internal/clock"
	"streamha/internal/element"
	"streamha/internal/machine"
	"streamha/internal/pe"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

func TestPositionsCover(t *testing.T) {
	cases := []struct {
		standby, primary map[string]uint64
		want             bool
	}{
		{map[string]uint64{"a": 10}, map[string]uint64{"a": 10}, true},
		{map[string]uint64{"a": 11}, map[string]uint64{"a": 10}, true},
		{map[string]uint64{"a": 9}, map[string]uint64{"a": 10}, false},
		{map[string]uint64{}, map[string]uint64{"a": 1}, false},
		{map[string]uint64{"a": 5}, map[string]uint64{}, true},
		{nil, nil, true},
	}
	for i, c := range cases {
		if got := positionsCover(c.standby, c.primary); got != c.want {
			t.Fatalf("case %d: got %v", i, got)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MissThreshold != 1 {
		t.Fatalf("hybrid default miss threshold %d, want 1 (first-miss trigger)", o.MissThreshold)
	}
	if o.HeartbeatInterval <= 0 || o.CheckpointInterval <= 0 || o.ResumeCost <= 0 {
		t.Fatal("intervals not defaulted")
	}
	if o.ResumeCost*3 > o.DeployCost {
		t.Fatalf("resume (%v) should be about a quarter of deploy (%v)", o.ResumeCost, o.DeployCost)
	}
	keep := Options{MissThreshold: 3, HeartbeatInterval: time.Second}.withDefaults()
	if keep.MissThreshold != 3 || keep.HeartbeatInterval != time.Second {
		t.Fatal("explicit options overridden")
	}
}

type standbyRig struct {
	net  *transport.Mem
	priM *machine.Machine
	secM *machine.Machine
	sec  *subjob.Runtime
}

func newStandbyRig(t *testing.T) *standbyRig {
	t.Helper()
	net := transport.NewMem(transport.MemConfig{})
	t.Cleanup(net.Close)
	clk := clock.New()
	priM, err := machine.New("pri", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	secM, err := machine.New("sec", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	spec := subjob.Spec{
		JobID:     "j",
		ID:        "j/sj",
		InStreams: []string{"in"},
		Owners:    map[string]string{"in": "up"},
		OutStream: "out",
		PEs: []subjob.PESpec{
			{Name: "a", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 1} }},
		},
	}
	sec, err := subjob.New(spec, secM, true)
	if err != nil {
		t.Fatal(err)
	}
	sec.Start()
	t.Cleanup(sec.Stop)
	return &standbyRig{net: net, priM: priM, secM: secM, sec: sec}
}

// sendCheckpoint ships a snapshot with the given consumed position to the
// standby store and returns the ack channel.
func (r *standbyRig) sendCheckpoint(t *testing.T, seq uint64, consumed uint64) chan uint64 {
	t.Helper()
	acks := make(chan uint64, 8)
	r.priM.RegisterStream(subjob.CkptAckStream("j/sj"), func(_ transport.NodeID, msg transport.Message) {
		acks <- msg.Seq
	})
	snap := &subjob.Snapshot{
		SubjobID: "j/sj",
		Consumed: map[string]uint64{"in": consumed},
		PEStates: [][]byte{(&pe.CounterLogic{Pad: 1}).Snapshot()},
		Pipes:    [][]element.Element{},
		Output:   r.sec.Out().Snapshot(),
	}
	state, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	r.priM.Send(r.secM.ID(), transport.Message{
		Kind:         transport.KindCheckpoint,
		Stream:       subjob.CkptStream("j/sj"),
		Seq:          seq,
		State:        state,
		ElementCount: snap.ElementUnits(),
	})
	return acks
}

func expectAck(t *testing.T, acks chan uint64, want uint64) {
	t.Helper()
	select {
	case got := <-acks:
		if got != want {
			t.Fatalf("ack %d, want %d", got, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no checkpoint ack")
	}
}

func TestStandbyStoreAppliesWhileSuspended(t *testing.T) {
	r := newStandbyRig(t)
	store := NewStandbyStore(r.sec)
	defer store.Close()

	acks := r.sendCheckpoint(t, 1, 42)
	expectAck(t, acks, 1)
	deadline := time.Now().Add(time.Second)
	for store.Applied() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if store.Applied() != 1 {
		t.Fatalf("applied %d", store.Applied())
	}
	if got := r.sec.ConsumedPositions()["in"]; got != 42 {
		t.Fatalf("standby position %d, want 42 (in-memory refresh)", got)
	}
}

func TestStandbyStoreSkipsWhileActive(t *testing.T) {
	r := newStandbyRig(t)
	store := NewStandbyStore(r.sec)
	defer store.Close()
	r.sec.Resume() // activated: live state supersedes checkpoints

	acks := r.sendCheckpoint(t, 1, 99)
	expectAck(t, acks, 1) // still acknowledged so trims proceed upstream
	deadline := time.Now().Add(time.Second)
	for store.Skipped() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if store.Skipped() != 1 || store.Applied() != 0 {
		t.Fatalf("skipped=%d applied=%d", store.Skipped(), store.Applied())
	}
	if got := r.sec.ConsumedPositions()["in"]; got != 0 {
		t.Fatalf("active standby was overwritten: position %d", got)
	}
}

func TestStandbyStoreIgnoresGarbage(t *testing.T) {
	r := newStandbyRig(t)
	store := NewStandbyStore(r.sec)
	defer store.Close()
	r.priM.Send(r.secM.ID(), transport.Message{
		Kind:   transport.KindCheckpoint,
		Stream: subjob.CkptStream("j/sj"),
		Seq:    1,
		State:  []byte("not a snapshot"),
	})
	time.Sleep(20 * time.Millisecond)
	if store.Applied() != 0 {
		t.Fatal("garbage applied")
	}
}
