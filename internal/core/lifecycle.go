package core

import (
	"fmt"
	"sync"
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/clock"
	"streamha/internal/detect"
	"streamha/internal/machine"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// State is a subjob's position in the HA lifecycle. The four modes of the
// paper share one state machine; a policy simply never triggers the
// transitions it has no use for (NONE stays Unprotected, active standby
// stays Protected, passive standby never enters SwitchedOver).
type State int

const (
	// Protected: the primary is processing and a standby side (suspended
	// copy, twin, or checkpoint store) can take over.
	Protected State = iota
	// SwitchedOver: a transient failure activated the hybrid standby; the
	// primary may still come back.
	SwitchedOver
	// RollingBack: the recovered primary is reading the standby's state
	// back (transient; visited inside a recovery event).
	RollingBack
	// Migrating: a recovery copy is being deployed from the checkpoint
	// store (transient; visited inside a passive-standby failure event).
	Migrating
	// Promoted: the standby is being made the permanent primary after a
	// fail-stop (transient; visited inside the promote-timer event).
	Promoted
	// Unprotected: no standby side remains (NONE mode, a spare-less
	// promotion, or an unrecoverable migration).
	Unprotected

	// stateNone marks "no transient state" in a Transition record.
	stateNone State = -1
)

func (s State) String() string {
	switch s {
	case Protected:
		return "protected"
	case SwitchedOver:
		return "switched_over"
	case RollingBack:
		return "rolling_back"
	case Migrating:
		return "migrating"
	case Promoted:
		return "promoted"
	case Unprotected:
		return "unprotected"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// EventKind is a lifecycle input: the detector's verdicts, the fail-stop
// timer, a checkpoint-chain break reported by the standby side, and stop.
type EventKind int

const (
	// EventMiss: the heartbeat detector declared the primary unresponsive.
	EventMiss EventKind = iota
	// EventRecovery: the detector saw the primary respond again.
	EventRecovery
	// EventPromoteTimer: the failure outlasted the fail-stop threshold.
	EventPromoteTimer
	// EventChainBreak: the standby side dropped an incremental checkpoint
	// that did not extend its state chain; the manager must rebase.
	EventChainBreak
	// EventRearm: the periodic protection health check (armed only when a
	// Placer is configured): from Unprotected it asks the scheduler for a
	// replacement standby host; from Protected it verifies the standby
	// machine is still alive and replaces it if not.
	EventRearm
	// EventStop: the lifecycle is shutting down.
	EventStop
)

func (e EventKind) String() string {
	switch e {
	case EventMiss:
		return "miss"
	case EventRecovery:
		return "recovery"
	case EventPromoteTimer:
		return "promote_timer"
	case EventChainBreak:
		return "chain_break"
	case EventRearm:
		return "rearm"
	case EventStop:
		return "stop"
	default:
		return fmt.Sprintf("event(%d)", int(e))
	}
}

// action is what the transition table maps a (state, event) pair to.
type action int

const (
	// actIgnore drops the event (the no-transition entries of the table).
	actIgnore action = iota
	// actFailover runs the policy's failover: hybrid switchover or passive
	// migration.
	actFailover
	// actRestore runs the policy's restore (hybrid rollback).
	actRestore
	// actPromote runs the policy's fail-stop promotion.
	actPromote
	// actRebase forces the next checkpoint to be a full snapshot.
	actRebase
	// actRearm runs the policy's scheduler-backed protection repair.
	actRearm
	// actShutdown ends the event loop.
	actShutdown
)

// transitionTable is the lifecycle's explicit event×state map. Every
// (state, event) pair has an entry; the exhaustive test in
// lifecycle_test.go keeps it that way. The transient states (RollingBack,
// Migrating, Promoted) are only ever observed from outside the event
// loop — the loop is single-threaded, so no event is dispatched while one
// is current — but their rows are part of the contract: anything arriving
// then would be ignored.
var transitionTable = map[State]map[EventKind]action{
	Protected: {
		EventMiss:         actFailover,
		EventRecovery:     actIgnore,
		EventPromoteTimer: actIgnore,
		EventChainBreak:   actRebase,
		EventRearm:        actRearm,
		EventStop:         actShutdown,
	},
	SwitchedOver: {
		EventMiss:         actIgnore,
		EventRecovery:     actRestore,
		EventPromoteTimer: actPromote,
		EventChainBreak:   actRebase,
		EventRearm:        actIgnore,
		EventStop:         actShutdown,
	},
	RollingBack: {
		EventMiss:         actIgnore,
		EventRecovery:     actIgnore,
		EventPromoteTimer: actIgnore,
		EventChainBreak:   actRebase,
		EventRearm:        actIgnore,
		EventStop:         actShutdown,
	},
	Migrating: {
		EventMiss:         actIgnore,
		EventRecovery:     actIgnore,
		EventPromoteTimer: actIgnore,
		EventChainBreak:   actRebase,
		EventRearm:        actIgnore,
		EventStop:         actShutdown,
	},
	Promoted: {
		EventMiss:         actIgnore,
		EventRecovery:     actIgnore,
		EventPromoteTimer: actIgnore,
		EventChainBreak:   actRebase,
		EventRearm:        actIgnore,
		EventStop:         actShutdown,
	},
	Unprotected: {
		EventMiss:         actIgnore,
		EventRecovery:     actIgnore,
		EventPromoteTimer: actIgnore,
		EventChainBreak:   actIgnore,
		EventRearm:        actRearm,
		EventStop:         actShutdown,
	},
}

// Transition is one recorded lifecycle transition. Via is the transient
// state passed through while the event was being handled (stateNone for a
// direct hop).
type Transition struct {
	At    time.Time
	Event EventKind
	From  State
	Via   State
	To    State
}

// String renders a transition for logs and the metrics registry.
func (t Transition) String() string {
	if t.Via == stateNone {
		return fmt.Sprintf("%s %s: %s -> %s",
			t.At.Format("15:04:05.000"), t.Event, t.From, t.To)
	}
	return fmt.Sprintf("%s %s: %s -> %s -> %s",
		t.At.Format("15:04:05.000"), t.Event, t.From, t.Via, t.To)
}

// StandbyPolicy is one HA mode plugged into the Lifecycle engine: it arms
// the standby side at start and carries out the transitions the table
// selects. Policies run on the engine's event goroutine and return the
// state the lifecycle settles in.
type StandbyPolicy interface {
	// Mode names the policy ("none", "active", "passive", "hybrid").
	Mode() string
	// InitialState is the state after a successful Arm.
	InitialState() State
	// PreDeploy reports whether a standby copy should exist before Start
	// (so deployers can create and wire it early), and whether that copy
	// runs suspended.
	PreDeploy() (create, suspended bool)
	// NeedsStandbyMachine reports whether the policy requires a secondary
	// machine at all.
	NeedsStandbyMachine() bool
	// PromoteAfter is the fail-stop threshold armed after a failover that
	// returns SwitchedOver; zero disables promotion.
	PromoteAfter() time.Duration
	// Arm deploys the standby side: copies, checkpoint apparatus, detector.
	Arm(lc *Lifecycle) error
	// Failover handles EventMiss from Protected.
	Failover(lc *Lifecycle, at time.Time) State
	// Restore handles EventRecovery from SwitchedOver.
	Restore(lc *Lifecycle, at time.Time) State
	// Promote handles EventPromoteTimer from SwitchedOver.
	Promote(lc *Lifecycle, at time.Time) State
}

// LifecycleConfig assembles the HA lifecycle of one subjob.
type LifecycleConfig struct {
	// Spec is the protected subjob.
	Spec subjob.Spec
	// Clock is the time source.
	Clock clock.Clock
	// Primary is the running primary copy.
	Primary *subjob.Runtime
	// Secondary, when non-nil, is a pre-created standby copy already wired
	// by the deployer (pipeline builders wire all copies before starting
	// lifecycles so standby-to-standby early connections exist). When nil,
	// a policy that pre-deploys creates and wires the copy itself.
	Secondary *subjob.Runtime
	// SecondaryMachine hosts the standby side; it may be shared by the
	// standbys of several subjobs (multiplexing).
	SecondaryMachine *machine.Machine
	// SpareMachine hosts the replacement standby after a fail-stop
	// promotion; nil leaves the subjob unprotected after promoting.
	SpareMachine *machine.Machine
	// Wiring connects the subjob to its neighbors.
	Wiring Wiring
	// Policy is the HA mode.
	Policy StandbyPolicy
	// Catalog is the durable checkpoint catalog used by RestoreFromCatalog
	// and, independently, by policies whose options carry the same catalog
	// for persist-before-ack storage.
	Catalog *checkpoint.Catalog
	// RestoreFromCatalog rewinds the primary to the catalog's head chain
	// before the policy arms — the cold-restart path. Requires Catalog.
	RestoreFromCatalog bool
	// Placer, when non-nil, is the cluster scheduler the lifecycle asks for
	// replacement standby hosts: after a fail-stop promotion exhausts the
	// static spare, and from the periodic re-arm health check. Nil keeps
	// the static-placement behavior (a spare-less promotion settles
	// Unprotected for good).
	Placer Placer
	// RearmInterval is the period of the protection health check; zero
	// selects 100ms. Only armed when Placer is set and the policy
	// implements Rearmer.
	RearmInterval time.Duration
}

type lcEvent struct {
	kind EventKind
	at   time.Time
}

// Lifecycle drives one subjob's HA protocol: a single event loop applies
// the transition table to detector callbacks, the fail-stop timer and
// chain-break reports, delegating the actual work to the configured
// StandbyPolicy and recording every transition.
type Lifecycle struct {
	cfg LifecycleConfig
	pol StandbyPolicy
	clk clock.Clock

	mu          sync.Mutex
	state       State
	via         State // transient state set mid-action, stateNone otherwise
	primary     *subjob.Runtime
	secondary   *subjob.Runtime
	secondaryM  *machine.Machine // current standby machine (migrations/promotions move it)
	standby     *StandbyStore
	store       *checkpoint.Store
	cm          checkpoint.Manager
	ackers      []*checkpoint.Acker
	det         *detect.Heartbeat
	rsOn        *machine.Machine // machine holding the read-state ack handler
	transitions []Transition
	switches    []SwitchEvent
	migrations  []MigrationEvent
	rollbacks   []RollbackEvent
	promotions  []PromoteEvent
	rearms      []RearmEvent
	chainBreaks int
	restoredSeq uint64 // catalog sequence a cold restart restored, 0 otherwise
	started     bool

	events  chan lcEvent
	rsAckCh chan struct{}
	stop    chan struct{}
	done    chan struct{}
}

// NewLifecycle creates the lifecycle engine for one subjob; call Start
// once the primary copy is running.
func NewLifecycle(cfg LifecycleConfig) *Lifecycle {
	return &Lifecycle{
		cfg:        cfg,
		pol:        cfg.Policy,
		clk:        cfg.Clock,
		state:      Unprotected,
		via:        stateNone,
		primary:    cfg.Primary,
		secondary:  cfg.Secondary,
		secondaryM: cfg.SecondaryMachine,
		events:     make(chan lcEvent, 16),
		rsAckCh:    make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// Start arms the policy (standby copies, checkpoint apparatus, detector)
// and launches the event loop. Idempotent.
func (lc *Lifecycle) Start() error {
	lc.mu.Lock()
	if lc.started {
		lc.mu.Unlock()
		return nil
	}
	lc.started = true
	lc.mu.Unlock()
	// An error below means the event loop never launched; roll back the
	// started flag so a subsequent Stop doesn't block on lc.done forever
	// (and a fixed-up caller may retry Start).
	unstart := func() {
		lc.mu.Lock()
		lc.started = false
		lc.mu.Unlock()
	}

	if lc.cfg.RestoreFromCatalog {
		if err := lc.restoreFromCatalog(); err != nil {
			unstart()
			return err
		}
	}
	if err := lc.pol.Arm(lc); err != nil {
		unstart()
		return err
	}
	lc.mu.Lock()
	lc.state = lc.pol.InitialState()
	lc.mu.Unlock()
	go lc.run()
	return nil
}

func (lc *Lifecycle) run() {
	defer close(lc.done)
	var promote <-chan time.Time
	var rearmC <-chan time.Time
	if _, ok := lc.pol.(Rearmer); ok && lc.cfg.Placer != nil {
		interval := lc.cfg.RearmInterval
		if interval <= 0 {
			interval = 100 * time.Millisecond
		}
		t := lc.clk.NewTicker(interval)
		defer t.Stop()
		rearmC = t.C()
	}
	for {
		select {
		case <-lc.stop:
			return
		case ev := <-lc.events:
			if lc.dispatch(ev, &promote) {
				return
			}
		case <-promote:
			promote = nil
			if lc.dispatch(lcEvent{kind: EventPromoteTimer, at: lc.clk.Now()}, &promote) {
				return
			}
		case <-rearmC:
			if lc.dispatch(lcEvent{kind: EventRearm, at: lc.clk.Now()}, &promote) {
				return
			}
		}
	}
}

// dispatch applies the transition table to one event, running the
// selected policy action on the loop goroutine. It reports true when the
// loop must exit.
func (lc *Lifecycle) dispatch(ev lcEvent, promote *<-chan time.Time) bool {
	from := lc.State()
	switch transitionTable[from][ev.kind] {
	case actIgnore:
	case actFailover:
		to := lc.pol.Failover(lc, ev.at)
		lc.settle(ev, from, to)
		if to == SwitchedOver && lc.pol.PromoteAfter() > 0 {
			*promote = lc.clk.After(lc.pol.PromoteAfter())
		}
	case actRestore:
		*promote = nil
		to := lc.pol.Restore(lc, ev.at)
		lc.settle(ev, from, to)
	case actPromote:
		to := lc.pol.Promote(lc, ev.at)
		lc.settle(ev, from, to)
	case actRearm:
		if r, ok := lc.pol.(Rearmer); ok && lc.cfg.Placer != nil {
			to := r.Rearm(lc, ev.at)
			lc.settle(ev, from, to)
		}
	case actRebase:
		if cm := lc.Checkpoint(); cm != nil {
			cm.ForceFull()
		}
		lc.mu.Lock()
		lc.chainBreaks++
		lc.transitions = append(lc.transitions, Transition{
			At: ev.at, Event: ev.kind, From: from, Via: stateNone, To: from,
		})
		lc.mu.Unlock()
	case actShutdown:
		return true
	}
	return false
}

// settle moves the lifecycle into its post-action state and records the
// transition. A no-op action (same state, no transient visited) leaves no
// record, matching the old controllers' behavior for failed or redundant
// operations.
func (lc *Lifecycle) settle(ev lcEvent, from, to State) {
	lc.mu.Lock()
	via := lc.via
	lc.via = stateNone
	lc.state = to
	if from != to || via != stateNone {
		lc.transitions = append(lc.transitions, Transition{
			At: ev.at, Event: ev.kind, From: from, Via: via, To: to,
		})
	}
	lc.mu.Unlock()
}

// transient publishes a mid-action state (RollingBack, Migrating,
// Promoted): observers polling State see it while the policy works, and
// settle records it as the transition's Via.
func (lc *Lifecycle) transient(s State) {
	lc.mu.Lock()
	lc.via = s
	lc.state = s
	lc.mu.Unlock()
}

// post enqueues an event from a detector or store callback.
func (lc *Lifecycle) post(kind EventKind, at time.Time) {
	select {
	case lc.events <- lcEvent{kind: kind, at: at}:
	case <-lc.stop:
	}
}

// startDetector (re)creates the heartbeat detector. Both callbacks are
// always registered — callbacks are local to the monitor, so an event the
// table ignores costs nothing and sends nothing.
func (lc *Lifecycle) startDetector(monitor *machine.Machine, target transport.NodeID,
	session string, interval time.Duration, miss, recover int) {
	det := detect.NewHeartbeat(detect.HeartbeatConfig{
		Monitor:          monitor,
		Clock:            lc.clk,
		Target:           target,
		Session:          session,
		Interval:         interval,
		MissThreshold:    miss,
		RecoverThreshold: recover,
		OnFailure:        func(at time.Time) { lc.post(EventMiss, at) },
		OnRecovery:       func(at time.Time) { lc.post(EventRecovery, at) },
	})
	lc.mu.Lock()
	lc.det = det
	lc.mu.Unlock()
	det.Start()
}

// restoreFromCatalog is the cold-restart path: fold the catalog's head
// chain into a snapshot and rewind the primary to it before the policy
// arms. Restore aligns the input queue's dedup floor with the restored
// consumed positions, so the upstream resync that follows — a forced
// replay of everything past the last acknowledgment — is absorbed
// exactly once: elements the snapshot already covers are deduplicated,
// elements lost with the dead process are reprocessed.
func (lc *Lifecycle) restoreFromCatalog() error {
	if lc.cfg.Catalog == nil {
		return fmt.Errorf("core: RestoreFromCatalog without a catalog")
	}
	snap, seq, err := lc.cfg.Catalog.Restore(lc.cfg.Spec.ID, 0)
	if err != nil {
		return err
	}
	pri := lc.PrimaryRuntime()
	var rerr error
	pri.WithPaused(func() { rerr = pri.Restore(snap) })
	if rerr != nil {
		return rerr
	}
	// The restored output queue holds what downstream had not acknowledged
	// at checkpoint time; push it again rather than waiting for a timeout.
	pri.Out().RetransmitAll()
	if ups := lc.cfg.Wiring.UpstreamOutputs; ups != nil {
		for _, up := range ups() {
			up.Resync(pri.Node())
		}
	}
	lc.mu.Lock()
	lc.restoredSeq = seq
	lc.mu.Unlock()
	return nil
}

// seqBase is the checkpoint sequence managers continue from: the catalog
// sequence a cold restart restored, zero on a fresh start. Policies pass
// it to every Sweeping manager they create so new checkpoints extend the
// cataloged chain instead of colliding with it.
func (lc *Lifecycle) seqBase() uint64 {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.restoredSeq
}

// RestoredSeq returns the catalog sequence the lifecycle restored at
// start, or 0 when it started fresh.
func (lc *Lifecycle) RestoredSeq() uint64 { return lc.seqBase() }

// upPart returns the partition-instance index this subjob's copies consume
// from upstream outputs: the configured instance index for a keyed-parallel
// stage, -1 (unfiltered) otherwise.
func (lc *Lifecycle) upPart() int {
	if lc.cfg.Wiring.InPartitioner != nil {
		return lc.cfg.Wiring.Part
	}
	return -1
}

// applyPartitioning gives a newly created copy the same partition view as
// the copy it replaces or protects: the downstream routing table on its
// output and the input-queue guard of its own stage.
func (lc *Lifecycle) applyPartitioning(rt *subjob.Runtime) {
	w := lc.cfg.Wiring
	if w.OutPartitioner != nil {
		rt.Out().SetPartitioner(w.OutPartitioner)
	}
	if w.InPartitioner != nil {
		rt.SetInputPartition(w.InPartitioner, w.Part)
	}
}

// connectStandby creates the standby's early connections: inactive
// subscriptions from every upstream output, and subscriptions from the
// standby's output to every downstream target (no data flows while the
// standby is suspended).
func (lc *Lifecycle) connectStandby(sec *subjob.Runtime) {
	part := lc.upPart()
	for _, up := range lc.cfg.Wiring.UpstreamOutputs() {
		up.SubscribePart(sec.Node(), subjob.DataStream(sec.Spec().ID, up.StreamID), false, part)
	}
	for _, t := range lc.cfg.Wiring.DownstreamTargets() {
		sec.Out().SubscribePart(t.Node, t.Stream, t.Active, t.Part)
	}
}

// registerReadStateAck listens for the primary's acknowledgment of a
// read-state transfer on m, replacing any previous registration.
func (lc *Lifecycle) registerReadStateAck(m *machine.Machine) {
	stream := subjob.ReadStateStream(lc.cfg.Spec.ID)
	lc.mu.Lock()
	old := lc.rsOn
	lc.rsOn = m
	lc.mu.Unlock()
	if old != nil && old != m {
		old.UnregisterStream(stream)
	}
	m.RegisterStream(stream, func(_ transport.NodeID, _ transport.Message) {
		select {
		case lc.rsAckCh <- struct{}{}:
		default:
		}
	})
}

// watchChainBreaks makes the standby-side stores report unfoldable deltas
// to the event loop, which forces the manager's next checkpoint full.
func (lc *Lifecycle) watchChainBreaks() {
	report := func() { lc.post(EventChainBreak, lc.clk.Now()) }
	lc.mu.Lock()
	standby, store := lc.standby, lc.store
	lc.mu.Unlock()
	if standby != nil {
		standby.SetOnChainBreak(report)
	}
	if store != nil {
		store.SetOnChainBreak(report)
	}
}

// Stop halts the event loop and tears down everything the lifecycle owns:
// detector, checkpoint manager, ackers, standby-side stores and both
// runtime copies.
func (lc *Lifecycle) Stop() {
	lc.mu.Lock()
	if !lc.started {
		lc.mu.Unlock()
		return
	}
	lc.mu.Unlock()
	select {
	case <-lc.stop:
	default:
		close(lc.stop)
	}
	<-lc.done

	lc.mu.Lock()
	det, cm, ackers := lc.det, lc.cm, lc.ackers
	standby, store := lc.standby, lc.store
	sec, pri, rsOn := lc.secondary, lc.primary, lc.rsOn
	lc.mu.Unlock()
	if det != nil {
		det.Stop()
	}
	if cm != nil {
		cm.Stop()
	}
	for _, a := range ackers {
		a.Stop()
	}
	if standby != nil {
		standby.Close()
	}
	if store != nil {
		store.Close()
	}
	if sec != nil {
		sec.Stop()
	}
	pri.Stop()
	if rsOn != nil {
		rsOn.UnregisterStream(subjob.ReadStateStream(lc.cfg.Spec.ID))
	}
	if lc.cfg.Placer != nil {
		lc.cfg.Placer.Release(lc.cfg.Spec.ID)
	}
}

// --- accessors -----------------------------------------------------------

// State returns the current lifecycle state.
func (lc *Lifecycle) State() State {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.state
}

// Active reports whether the subjob is currently switched over to its
// standby.
func (lc *Lifecycle) Active() bool { return lc.State() == SwitchedOver }

// Policy returns the lifecycle's standby policy.
func (lc *Lifecycle) Policy() StandbyPolicy { return lc.pol }

// PrimaryRuntime returns the copy currently serving as primary.
func (lc *Lifecycle) PrimaryRuntime() *subjob.Runtime {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.primary
}

// SecondaryRuntime returns the current standby copy, or nil (passive
// standby keeps state in a store, not a copy; active standby returns its
// twin).
func (lc *Lifecycle) SecondaryRuntime() *subjob.Runtime {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.secondary
}

// StandbyMachine returns the machine currently hosting the standby side.
func (lc *Lifecycle) StandbyMachine() *machine.Machine {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.secondaryM
}

// Switches returns the recorded hybrid switchover events.
func (lc *Lifecycle) Switches() []SwitchEvent {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]SwitchEvent(nil), lc.switches...)
}

// Migrations returns the recorded passive-standby migration events.
func (lc *Lifecycle) Migrations() []MigrationEvent {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]MigrationEvent(nil), lc.migrations...)
}

// Failovers returns every failover the lifecycle performed — switchovers
// and migrations — in one list; a subjob's policy only ever records one
// kind, so this is the mode-agnostic accessor experiments use.
func (lc *Lifecycle) Failovers() []SwitchEvent {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := append([]SwitchEvent(nil), lc.switches...)
	return append(out, lc.migrations...)
}

// Rollbacks returns the recorded rollback events.
func (lc *Lifecycle) Rollbacks() []RollbackEvent {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]RollbackEvent(nil), lc.rollbacks...)
}

// Promotions returns the recorded fail-stop promotions.
func (lc *Lifecycle) Promotions() []PromoteEvent {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]PromoteEvent(nil), lc.promotions...)
}

// Rearms returns the recorded scheduler-driven re-arm decisions: every
// time a placer-supplied host re-established protection.
func (lc *Lifecycle) Rearms() []RearmEvent {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]RearmEvent(nil), lc.rearms...)
}

// Transitions returns the recorded transition log.
func (lc *Lifecycle) Transitions() []Transition {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]Transition(nil), lc.transitions...)
}

// ChainBreaks returns how many checkpoint-chain breaks were reported.
func (lc *Lifecycle) ChainBreaks() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.chainBreaks
}

// Detector returns the current heartbeat detector, or nil.
func (lc *Lifecycle) Detector() *detect.Heartbeat {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.det
}

// Checkpoint returns the current checkpoint manager, or nil.
func (lc *Lifecycle) Checkpoint() checkpoint.Manager {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.cm
}

// Store returns the checkpoint store of store-based policies (passive
// standby, the hybrid no-pre-deployment ablation), or nil.
func (lc *Lifecycle) Store() *checkpoint.Store {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.store
}

// DiskStore is a legacy alias for Store.
func (lc *Lifecycle) DiskStore() *checkpoint.Store { return lc.Store() }

// StandbyStoreRef returns the in-memory standby store of the hybrid
// policy, or nil.
func (lc *Lifecycle) StandbyStoreRef() *StandbyStore {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.standby
}

// --- record helpers (called by policies on the event goroutine) ----------

func (lc *Lifecycle) recordSwitch(ev SwitchEvent) {
	lc.mu.Lock()
	lc.switches = append(lc.switches, ev)
	lc.mu.Unlock()
}

func (lc *Lifecycle) recordMigration(ev MigrationEvent) {
	lc.mu.Lock()
	lc.migrations = append(lc.migrations, ev)
	lc.mu.Unlock()
}

// NoteMigration records a state migration performed outside the event loop
// — the live-rescaling cutover reuses the migration bookkeeping, so the
// metrics registry reports rescales alongside failovers.
func (lc *Lifecycle) NoteMigration(ev MigrationEvent) { lc.recordMigration(ev) }

func (lc *Lifecycle) recordRollback(ev RollbackEvent) {
	lc.mu.Lock()
	lc.rollbacks = append(lc.rollbacks, ev)
	lc.mu.Unlock()
}

func (lc *Lifecycle) recordPromotion(ev PromoteEvent) {
	lc.mu.Lock()
	lc.promotions = append(lc.promotions, ev)
	lc.mu.Unlock()
}

func (lc *Lifecycle) recordRearm(ev RearmEvent) {
	lc.mu.Lock()
	lc.rearms = append(lc.rearms, ev)
	lc.mu.Unlock()
}

// LifecycleStats is a JSON-marshalable view of one subjob's lifecycle,
// exported through the metrics registry: mode, current state, failover
// counters and the full transition log.
type LifecycleStats struct {
	Subjob      string   `json:"subjob"`
	Mode        string   `json:"mode"`
	State       string   `json:"state"`
	Active      bool     `json:"standby_active"`
	Switchovers int      `json:"switchovers"`
	Rollbacks   int      `json:"rollbacks"`
	Migrations  int      `json:"migrations"`
	Promotions  int      `json:"promotions"`
	Rearms      int      `json:"rearms"`
	ChainBreaks int      `json:"chain_breaks"`
	Transitions []string `json:"transitions"`
}

// Stats captures the lifecycle's counters and transition log.
func (lc *Lifecycle) Stats() LifecycleStats {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	st := LifecycleStats{
		Subjob:      lc.cfg.Spec.ID,
		Mode:        lc.pol.Mode(),
		State:       lc.state.String(),
		Active:      lc.state == SwitchedOver,
		Switchovers: len(lc.switches),
		Rollbacks:   len(lc.rollbacks),
		Migrations:  len(lc.migrations),
		Promotions:  len(lc.promotions),
		Rearms:      len(lc.rearms),
		ChainBreaks: lc.chainBreaks,
		Transitions: make([]string, len(lc.transitions)),
	}
	for i, tr := range lc.transitions {
		st.Transitions[i] = tr.String()
	}
	return st
}
