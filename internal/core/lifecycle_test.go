package core

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"streamha/internal/clock"
	"streamha/internal/machine"
	"streamha/internal/pe"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// TestLifecycleTransitionTableExhaustive pins the transition table: every
// (state, event) pair must have an entry, and the action must match the
// paper's protocol exactly. A new state or event that is not added here —
// and to the table — fails the test.
func TestLifecycleTransitionTableExhaustive(t *testing.T) {
	allStates := []State{Protected, SwitchedOver, RollingBack, Migrating, Promoted, Unprotected}
	allEvents := []EventKind{EventMiss, EventRecovery, EventPromoteTimer, EventChainBreak, EventRearm, EventStop}

	want := map[State]map[EventKind]action{
		Protected: {
			EventMiss:         actFailover,
			EventRecovery:     actIgnore,
			EventPromoteTimer: actIgnore,
			EventChainBreak:   actRebase,
			EventRearm:        actRearm,
			EventStop:         actShutdown,
		},
		SwitchedOver: {
			EventMiss:         actIgnore,
			EventRecovery:     actRestore,
			EventPromoteTimer: actPromote,
			EventChainBreak:   actRebase,
			EventRearm:        actIgnore,
			EventStop:         actShutdown,
		},
		RollingBack: {
			EventMiss:         actIgnore,
			EventRecovery:     actIgnore,
			EventPromoteTimer: actIgnore,
			EventChainBreak:   actRebase,
			EventRearm:        actIgnore,
			EventStop:         actShutdown,
		},
		Migrating: {
			EventMiss:         actIgnore,
			EventRecovery:     actIgnore,
			EventPromoteTimer: actIgnore,
			EventChainBreak:   actRebase,
			EventRearm:        actIgnore,
			EventStop:         actShutdown,
		},
		Promoted: {
			EventMiss:         actIgnore,
			EventRecovery:     actIgnore,
			EventPromoteTimer: actIgnore,
			EventChainBreak:   actRebase,
			EventRearm:        actIgnore,
			EventStop:         actShutdown,
		},
		Unprotected: {
			EventMiss:         actIgnore,
			EventRecovery:     actIgnore,
			EventPromoteTimer: actIgnore,
			EventChainBreak:   actIgnore,
			EventRearm:        actRearm,
			EventStop:         actShutdown,
		},
	}

	if len(transitionTable) != len(allStates) {
		t.Fatalf("table has %d states, want %d", len(transitionTable), len(allStates))
	}
	for _, s := range allStates {
		row, ok := transitionTable[s]
		if !ok {
			t.Fatalf("state %s has no row", s)
		}
		if len(row) != len(allEvents) {
			t.Fatalf("state %s row has %d events, want %d", s, len(row), len(allEvents))
		}
		for _, e := range allEvents {
			got, ok := row[e]
			if !ok {
				t.Fatalf("pair (%s, %s) has no entry", s, e)
			}
			if got != want[s][e] {
				t.Fatalf("pair (%s, %s): action %d, want %d", s, e, got, want[s][e])
			}
		}
	}
	if !reflect.DeepEqual(transitionTable, want) {
		t.Fatal("table has entries beyond the expected matrix")
	}
}

func TestLifecycleStateAndEventStrings(t *testing.T) {
	states := map[State]string{
		Protected:    "protected",
		SwitchedOver: "switched_over",
		RollingBack:  "rolling_back",
		Migrating:    "migrating",
		Promoted:     "promoted",
		Unprotected:  "unprotected",
	}
	for s, want := range states {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	events := map[EventKind]string{
		EventMiss:         "miss",
		EventRecovery:     "recovery",
		EventPromoteTimer: "promote_timer",
		EventChainBreak:   "chain_break",
		EventRearm:        "rearm",
		EventStop:         "stop",
	}
	for e, want := range events {
		if e.String() != want {
			t.Fatalf("event %d.String() = %q, want %q", int(e), e.String(), want)
		}
	}

	tr := Transition{Event: EventMiss, From: Protected, Via: stateNone, To: SwitchedOver}
	if s := tr.String(); !strings.Contains(s, "miss: protected -> switched_over") {
		t.Fatalf("direct transition renders %q", s)
	}
	tr.Via = RollingBack
	if s := tr.String(); !strings.Contains(s, "protected -> rolling_back -> switched_over") {
		t.Fatalf("transient transition renders %q", s)
	}
}

// fakePolicy drives the engine without any standby apparatus, so the event
// loop's own behavior — table dispatch, transition recording, the promote
// timer — can be asserted in isolation.
type fakePolicy struct {
	promoteAfter                 time.Duration
	failTo, restoreTo, promoteTo State
	restoreVia                   State

	mu                            sync.Mutex
	failovers, restores, promotes int
}

func (p *fakePolicy) Mode() string                { return "fake" }
func (p *fakePolicy) InitialState() State         { return Protected }
func (p *fakePolicy) PreDeploy() (bool, bool)     { return false, false }
func (p *fakePolicy) NeedsStandbyMachine() bool   { return false }
func (p *fakePolicy) PromoteAfter() time.Duration { return p.promoteAfter }
func (p *fakePolicy) Arm(lc *Lifecycle) error     { return nil }

func (p *fakePolicy) Failover(lc *Lifecycle, at time.Time) State {
	p.mu.Lock()
	p.failovers++
	p.mu.Unlock()
	return p.failTo
}

func (p *fakePolicy) Restore(lc *Lifecycle, at time.Time) State {
	if p.restoreVia != stateNone {
		lc.transient(p.restoreVia)
	}
	p.mu.Lock()
	p.restores++
	p.mu.Unlock()
	return p.restoreTo
}

func (p *fakePolicy) Promote(lc *Lifecycle, at time.Time) State {
	p.mu.Lock()
	p.promotes++
	p.mu.Unlock()
	return p.promoteTo
}

func (p *fakePolicy) counts() (f, r, pr int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failovers, p.restores, p.promotes
}

func newLifecycleRig(t *testing.T, pol StandbyPolicy) *Lifecycle {
	t.Helper()
	net := transport.NewMem(transport.MemConfig{})
	t.Cleanup(net.Close)
	clk := clock.New()
	priM, err := machine.New("pri", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	spec := subjob.Spec{
		JobID:     "j",
		ID:        "j/sj",
		InStreams: []string{"in"},
		Owners:    map[string]string{"in": "up"},
		OutStream: "out",
		PEs: []subjob.PESpec{
			{Name: "a", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 1} }},
		},
	}
	pri, err := subjob.New(spec, priM, false)
	if err != nil {
		t.Fatal(err)
	}
	pri.Start()
	lc := NewLifecycle(LifecycleConfig{
		Spec:    spec,
		Clock:   clk,
		Primary: pri,
		Policy:  pol,
	})
	t.Cleanup(lc.Stop)
	return lc
}

func waitState(t *testing.T, lc *Lifecycle, want State) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for lc.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("state %s, want %s", lc.State(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLifecycleEventLoopRecordsTransitions(t *testing.T) {
	pol := &fakePolicy{
		failTo:     SwitchedOver,
		restoreTo:  Protected,
		restoreVia: RollingBack,
		promoteTo:  Unprotected,
	}
	lc := newLifecycleRig(t, pol)
	if err := lc.Start(); err != nil {
		t.Fatal(err)
	}
	if lc.State() != Protected {
		t.Fatalf("initial state %s", lc.State())
	}

	lc.post(EventMiss, time.Now())
	waitState(t, lc, SwitchedOver)
	if !lc.Active() {
		t.Fatal("Active() false while switched over")
	}

	// A second miss while switched over is an actIgnore entry: no policy
	// call, no transition record.
	lc.post(EventMiss, time.Now())
	// A recovery event while switched over restores via the transient state.
	lc.post(EventRecovery, time.Now())
	waitState(t, lc, Protected)

	// A chain break in Protected forces a rebase and records a self-loop.
	lc.post(EventChainBreak, time.Now())
	deadline := time.Now().Add(2 * time.Second)
	for lc.ChainBreaks() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if lc.ChainBreaks() != 1 {
		t.Fatalf("chain breaks %d, want 1", lc.ChainBreaks())
	}

	f, r, pr := pol.counts()
	if f != 1 || r != 1 || pr != 0 {
		t.Fatalf("policy calls failover=%d restore=%d promote=%d", f, r, pr)
	}

	trs := lc.Transitions()
	if len(trs) != 3 {
		t.Fatalf("transition log has %d entries: %v", len(trs), trs)
	}
	checks := []struct {
		event    EventKind
		from, to State
		via      State
	}{
		{EventMiss, Protected, SwitchedOver, stateNone},
		{EventRecovery, SwitchedOver, Protected, RollingBack},
		{EventChainBreak, Protected, Protected, stateNone},
	}
	for i, c := range checks {
		tr := trs[i]
		if tr.Event != c.event || tr.From != c.from || tr.To != c.to || tr.Via != c.via {
			t.Fatalf("transition %d = %+v, want %+v", i, tr, c)
		}
	}

	st := lc.Stats()
	if st.Mode != "fake" || st.State != "protected" || st.Active {
		t.Fatalf("stats %+v", st)
	}
	if st.ChainBreaks != 1 || len(st.Transitions) != 3 {
		t.Fatalf("stats counters %+v", st)
	}
}

func TestLifecyclePromoteTimerFires(t *testing.T) {
	pol := &fakePolicy{
		promoteAfter: 30 * time.Millisecond,
		failTo:       SwitchedOver,
		restoreTo:    Protected,
		restoreVia:   stateNone,
		promoteTo:    Unprotected,
	}
	lc := newLifecycleRig(t, pol)
	if err := lc.Start(); err != nil {
		t.Fatal(err)
	}
	lc.post(EventMiss, time.Now())
	waitState(t, lc, Unprotected)
	if _, _, pr := pol.counts(); pr != 1 {
		t.Fatalf("promotions %d, want 1", pr)
	}
	trs := lc.Transitions()
	last := trs[len(trs)-1]
	if last.Event != EventPromoteTimer || last.To != Unprotected {
		t.Fatalf("last transition %+v", last)
	}

	// Once unprotected, further events are ignored.
	lc.post(EventMiss, time.Now())
	lc.post(EventRecovery, time.Now())
	time.Sleep(20 * time.Millisecond)
	if got := len(lc.Transitions()); got != len(trs) {
		t.Fatalf("unprotected lifecycle still recorded transitions: %d -> %d", len(trs), got)
	}
}

func TestLifecycleRecoveryCancelsPromoteTimer(t *testing.T) {
	pol := &fakePolicy{
		promoteAfter: 80 * time.Millisecond,
		failTo:       SwitchedOver,
		restoreTo:    Protected,
		restoreVia:   RollingBack,
		promoteTo:    Unprotected,
	}
	lc := newLifecycleRig(t, pol)
	if err := lc.Start(); err != nil {
		t.Fatal(err)
	}
	lc.post(EventMiss, time.Now())
	waitState(t, lc, SwitchedOver)
	lc.post(EventRecovery, time.Now())
	waitState(t, lc, Protected)

	// Outlive the threshold: the canceled timer must not promote.
	time.Sleep(150 * time.Millisecond)
	if _, _, pr := pol.counts(); pr != 0 {
		t.Fatalf("canceled promote timer still fired %d time(s)", pr)
	}
	if lc.State() != Protected {
		t.Fatalf("state %s after canceled timer", lc.State())
	}

	// The protection is re-armed: a second miss switches over again.
	lc.post(EventMiss, time.Now())
	waitState(t, lc, SwitchedOver)
	if f, _, _ := pol.counts(); f != 2 {
		t.Fatalf("failovers %d, want 2", f)
	}
}

func TestLifecycleStartAndStopIdempotent(t *testing.T) {
	pol := &fakePolicy{failTo: SwitchedOver, restoreTo: Protected, restoreVia: stateNone, promoteTo: Unprotected}
	lc := newLifecycleRig(t, pol)
	if err := lc.Start(); err != nil {
		t.Fatal(err)
	}
	if err := lc.Start(); err != nil {
		t.Fatal(err)
	}
	lc.Stop()
	lc.Stop()
	// post after Stop must not block or panic.
	lc.post(EventMiss, time.Now())
}

// TestLifecyclePassiveOptionsDefaults pins the conventional passive
// standby tuning (the old ha.PSOptions defaults).
func TestLifecyclePassiveOptionsDefaults(t *testing.T) {
	o := PassiveOptions{}.withDefaults()
	if o.MissThreshold != 3 {
		t.Fatalf("conventional PS threshold %d, want 3", o.MissThreshold)
	}
	if o.HeartbeatInterval <= 0 || o.CheckpointInterval <= 0 || o.DeployCost <= 0 {
		t.Fatal("defaults missing")
	}
	keep := PassiveOptions{MissThreshold: 1}.withDefaults()
	if keep.MissThreshold != 1 {
		t.Fatal("explicit threshold overridden")
	}
}

// TestPolicyContractFiveModes pins the static lifecycle contract of all
// five registered policies in one grid. Approx must match hybrid exactly —
// bounded-error recovery reuses the hybrid transition table and adds no
// states, events or timers of its own.
func TestPolicyContractFiveModes(t *testing.T) {
	opts := Options{FailStopAfter: 250 * time.Millisecond}
	grid := []struct {
		p            StandbyPolicy
		mode         string
		initial      State
		needsStandby bool
		promoteAfter time.Duration
	}{
		{NewNonePolicy(0), "none", Unprotected, false, 0},
		{NewActivePolicy(0), "active", Protected, true, 0},
		{NewPassivePolicy(PassiveOptions{}), "passive", Protected, true, 0},
		{NewHybridPolicy(opts), "hybrid", Protected, true, 250 * time.Millisecond},
		{NewApproxPolicy(opts, ErrorBudget{MaxLostElements: 100}), "approx", Protected, true, 250 * time.Millisecond},
	}
	seen := map[string]bool{}
	for _, g := range grid {
		if got := g.p.Mode(); got != g.mode {
			t.Fatalf("policy %T mode %q, want %q", g.p, got, g.mode)
		}
		if got := g.p.InitialState(); got != g.initial {
			t.Fatalf("%s initial state %s, want %s", g.mode, got, g.initial)
		}
		if got := g.p.NeedsStandbyMachine(); got != g.needsStandby {
			t.Fatalf("%s needs standby %v, want %v", g.mode, got, g.needsStandby)
		}
		if got := g.p.PromoteAfter(); got != g.promoteAfter {
			t.Fatalf("%s promote-after %s, want %s", g.mode, got, g.promoteAfter)
		}
		seen[g.mode] = true
	}
	if len(seen) != 5 {
		t.Fatalf("grid covers %d distinct modes, want 5", len(seen))
	}
}

// TestErrorBudgetZero pins the degeneration predicate: only a positive
// element bound or staleness bound makes a budget non-zero.
func TestErrorBudgetZero(t *testing.T) {
	cases := []struct {
		b    ErrorBudget
		zero bool
	}{
		{ErrorBudget{}, true},
		{ErrorBudget{MaxLostElements: -1}, true},
		{ErrorBudget{MaxLostElements: 1}, false},
		{ErrorBudget{MaxStaleness: time.Second}, false},
		{ErrorBudget{MaxLostElements: 10, MaxStaleness: time.Second}, false},
	}
	for _, c := range cases {
		if got := c.b.Zero(); got != c.zero {
			t.Fatalf("budget %+v Zero() = %v, want %v", c.b, got, c.zero)
		}
	}
}
