package core

import (
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/queue"
	"streamha/internal/transport"
)

// Target identifies one consumer of a subjob's output stream: a downstream
// copy's (or the sink's) node and data-stream name. Active reports whether
// that consumer should currently receive published data (false for a
// suspended hybrid standby, whose subscription is an early connection).
// Part is the consumer's partition-instance index when the downstream
// stage is keyed-parallel, or -1 for an unfiltered consumer; the zero
// value is harmless for unpartitioned outputs (no router installed).
type Target struct {
	Node   transport.NodeID
	Stream string
	Active bool
	Part   int
}

// Wiring tells a lifecycle how its subjob connects to the rest of the
// job. Both sides are functions because neighboring subjobs may migrate:
// they are re-evaluated whenever the lifecycle rewires.
type Wiring struct {
	// UpstreamOutputs returns the output queues currently producing this
	// subjob's input streams (every live copy of each upstream producer,
	// including the source).
	UpstreamOutputs func() []*queue.Output
	// DownstreamTargets returns the consumer copies of this subjob's output.
	DownstreamTargets func() []Target
	// OutPartitioner, when non-nil, is the keyed-parallel routing table of
	// the downstream stage; the lifecycle installs it on the output queue of
	// every copy it creates, so replicas route identically.
	OutPartitioner *queue.Partitioner
	// InPartitioner, when non-nil, marks the protected subjob as partition
	// instance Part of its own keyed-parallel stage: new copies receive the
	// input-queue guard and upstream subscriptions filter to Part.
	InPartitioner *queue.Partitioner
	// Part is the partition-instance index served (meaningful only with
	// InPartitioner).
	Part int
}

// Options tunes the hybrid method. The zero value selects the paper's full
// design at the experiments' one-tenth timescale.
type Options struct {
	// HeartbeatInterval is the detector's ping period (default 20 ms,
	// standing in for the paper's 100 ms).
	HeartbeatInterval time.Duration
	// MissThreshold triggers switchover; the hybrid method acts on the
	// first miss (default 1).
	MissThreshold int
	// RecoverThreshold is how many replies after a failure declare the
	// primary responsive again (default 1).
	RecoverThreshold int
	// CheckpointInterval drives the primary's sweeping checkpoint manager
	// (default 10 ms, standing in for the paper's 50 ms).
	CheckpointInterval time.Duration
	// CheckpointCosts models checkpoint CPU cost.
	CheckpointCosts checkpoint.Costs
	// CheckpointRebaseEvery enables incremental checkpointing when ≥ 2: up
	// to RebaseEvery-1 delta checkpoints ship between full snapshots. 0
	// keeps the classic full-snapshot-every-sweep protocol.
	CheckpointRebaseEvery int
	// CheckpointRebaseAdaptive enables the byte-budget rebase policy:
	// deltas ship until their cumulative size exceeds the last full
	// snapshot, then the manager rebases. CheckpointRebaseEvery remains a
	// manual cadence cap when both are set.
	CheckpointRebaseAdaptive bool
	// CheckpointMaxInFlight bounds captured-but-unshipped checkpoints
	// (default 2; see checkpoint.Config).
	CheckpointMaxInFlight int
	// AckInterval is the standby's acknowledgment period while active
	// (default: CheckpointInterval).
	AckInterval time.Duration
	// ResumeCost is the CPU work to resume the pre-deployed copy (the
	// paper measures resume at about a quarter of a full redeployment).
	ResumeCost time.Duration
	// DeployCost is the CPU work to deploy a copy on demand; paid at
	// switchover only under NoPreDeploy (default 20 ms, standing in for
	// the paper's ~200 ms redeployment).
	DeployCost time.Duration
	// ConnectCost is the CPU work per connection established on demand;
	// paid at switchover only under NoEarlyConnection.
	ConnectCost time.Duration
	// FailStopAfter promotes the standby to primary if the failure
	// persists this long after switchover; zero disables promotion.
	FailStopAfter time.Duration

	// Ablation switches (Section IV-B optimizations; all false = full
	// hybrid):
	//
	// NoPreDeploy deploys the secondary on demand at switchover instead of
	// pre-deploying it suspended; checkpoints then go to a passive store.
	NoPreDeploy bool
	// NoEarlyConnection creates upstream/downstream connections at
	// switchover instead of in advance.
	NoEarlyConnection bool
	// NoReadState skips the read-state step on rollback: the primary
	// resumes from its own (stale) state and reprocesses its backlog.
	NoReadState bool
	// DiskStore persists checkpoints through a simulated disk instead of
	// refreshing memory (only meaningful with NoPreDeploy or for ablation
	// of the in-memory refresh; adds write latency to every checkpoint).
	DiskStore bool
	// Catalog, when non-nil, makes the standby durable: every checkpoint
	// the standby (or its NoPreDeploy store) accepts is persisted through
	// the catalog before it is acknowledged, leaving a sequence-chained
	// history a cold restart can restore from.
	Catalog *checkpoint.Catalog
}

func (o Options) withDefaults() Options {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 20 * time.Millisecond
	}
	if o.MissThreshold <= 0 {
		o.MissThreshold = 1
	}
	if o.RecoverThreshold <= 0 {
		o.RecoverThreshold = 1
	}
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 10 * time.Millisecond
	}
	if o.AckInterval <= 0 {
		o.AckInterval = o.CheckpointInterval
	}
	if o.ResumeCost <= 0 {
		o.ResumeCost = 5 * time.Millisecond
	}
	if o.DeployCost <= 0 {
		o.DeployCost = 20 * time.Millisecond
	}
	if o.ConnectCost <= 0 {
		o.ConnectCost = 2 * time.Millisecond
	}
	return o
}

// ErrorBudget bounds the divergence the approx standby policy may admit
// at failover. A budgeted failover promotes the standby from its last
// partial checkpoint and skips the output-queue replay entirely when the
// estimated loss fits the budget; otherwise it falls back to the exact
// hybrid replay.
type ErrorBudget struct {
	// MaxLostElements bounds how many in-flight elements a budgeted
	// failover may skip instead of replaying.
	MaxLostElements int
	// MaxStaleness bounds the age of the standby's newest applied
	// checkpoint at failover; staler state forces an exact replay. Zero
	// leaves staleness unbounded.
	MaxStaleness time.Duration
}

// Zero reports whether the budget admits no loss at all, in which case
// the approx policy must behave exactly like hybrid.
func (b ErrorBudget) Zero() bool { return b.MaxLostElements <= 0 && b.MaxStaleness <= 0 }

// PassiveOptions tunes conventional passive standby.
type PassiveOptions struct {
	// HeartbeatInterval is the detector's ping period (default 20 ms).
	HeartbeatInterval time.Duration
	// MissThreshold is the consecutive misses before migration; the
	// conventional value is 3.
	MissThreshold int
	// CheckpointInterval drives the sweeping checkpoint manager
	// (default 10 ms).
	CheckpointInterval time.Duration
	// CheckpointCosts models checkpoint CPU cost.
	CheckpointCosts checkpoint.Costs
	// CheckpointRebaseEvery enables incremental checkpointing when ≥ 2 (see
	// checkpoint.Config.RebaseEvery); 0 ships a full snapshot every sweep.
	CheckpointRebaseEvery int
	// CheckpointRebaseAdaptive enables the byte-budget rebase policy (see
	// Options.CheckpointRebaseAdaptive).
	CheckpointRebaseAdaptive bool
	// DeployCost is the CPU work of deploying the recovery copy on demand
	// (default 20 ms, standing in for the paper's ~200 ms redeployment).
	DeployCost time.Duration
	// ConnectCost is the CPU work per connection established during
	// recovery (default 2 ms).
	ConnectCost time.Duration
	// StoreBackend selects the checkpoint store; conventional passive
	// standby persists to (simulated) disk.
	StoreBackend checkpoint.StoreBackend
	// Catalog, when non-nil, persists every stored checkpoint durably
	// before it is acknowledged (see Options.Catalog).
	Catalog *checkpoint.Catalog
}

func (o PassiveOptions) withDefaults() PassiveOptions {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 20 * time.Millisecond
	}
	if o.MissThreshold <= 0 {
		o.MissThreshold = 3
	}
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 10 * time.Millisecond
	}
	if o.DeployCost <= 0 {
		o.DeployCost = 20 * time.Millisecond
	}
	if o.ConnectCost <= 0 {
		o.ConnectCost = 2 * time.Millisecond
	}
	return o
}

// SwitchEvent records one switchover: from the detector's declaration to
// the standby running and connected.
type SwitchEvent struct {
	DetectedAt time.Time
	ReadyAt    time.Time
}

// MigrationEvent records one passive-standby recovery: detection to the
// recovered copy running and connected on the (former) secondary machine.
// It carries the same timestamps as a switchover.
type MigrationEvent = SwitchEvent

// RollbackEvent records one rollback: from the recovery declaration to the
// primary holding the adopted state (or having declined it).
type RollbackEvent struct {
	StartedAt time.Time
	DoneAt    time.Time
	// StateUnits is the size of the state read back, in element units.
	StateUnits int
	// Adopted reports whether the primary adopted the standby's state; it
	// declines when its own progress was ahead (a false-alarm switchover).
	Adopted bool
}

// PromoteEvent records a fail-stop promotion of the standby to primary.
type PromoteEvent struct {
	At time.Time
}
