package core

import (
	"time"

	"streamha/internal/machine"
)

// Placer is the lifecycle's window into the cluster scheduler: instead of
// being wired to static machine names forever, a lifecycle with a Placer
// asks for replacement hosts when its static placement runs out — after a
// fail-stop promotion consumed the spare, or when the re-arm health check
// finds the standby machine dead. Implementations (the ha package adapts
// the sched package) enforce anti-affinity: a standby host never shares
// the primary's fault domain.
type Placer interface {
	// PlaceStandby returns a machine to host subjob's standby side, never
	// in primaryOn's fault domain and never primaryOn itself; nil when no
	// schedulable capacity satisfies the request.
	PlaceStandby(subjob string, primaryOn *machine.Machine) *machine.Machine
	// PlacePrimary returns a machine to host a replacement primary copy,
	// avoiding the given machine; nil when none qualifies.
	PlacePrimary(subjob string, avoid *machine.Machine) *machine.Machine
	// NotePrimary records that subjob's primary now runs on m (a promotion
	// moved it), keeping the scheduler's occupancy accounting truthful.
	NotePrimary(subjob string, m *machine.Machine)
	// Release frees every slot subjob holds; called when the lifecycle
	// stops.
	Release(subjob string)
}

// Rearmer is implemented by policies that can re-establish protection
// outside a failover. The lifecycle's periodic EventRearm calls it: from
// Protected it is a health check (replace a dead standby machine), from
// Unprotected a repair attempt (acquire a standby host where none
// remains). It returns the state the lifecycle settles in.
type Rearmer interface {
	Rearm(lc *Lifecycle, at time.Time) State
}

// RearmEvent records one scheduler-driven re-arm: protection was
// re-established on a placer-supplied host.
type RearmEvent struct {
	// At is when the re-arm completed.
	At time.Time
	// Host is the machine now holding the standby side.
	Host string
}
