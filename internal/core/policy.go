package core

import (
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/subjob"
)

// defaultAckInterval paces the ackers of copies that acknowledge on
// processing (NONE and active standby) when the deployer does not supply
// an interval.
const defaultAckInterval = 10 * time.Millisecond

// NonePolicy is the no-protection mode: a single copy acknowledges its
// upstream on processing and failures are endured. The lifecycle stays
// Unprotected and every detector-style event is a no-op.
type NonePolicy struct {
	ackInterval time.Duration
}

// NewNonePolicy creates the NONE policy; ackInterval ≤ 0 selects the
// default.
func NewNonePolicy(ackInterval time.Duration) *NonePolicy {
	if ackInterval <= 0 {
		ackInterval = defaultAckInterval
	}
	return &NonePolicy{ackInterval: ackInterval}
}

// Mode implements StandbyPolicy.
func (np *NonePolicy) Mode() string { return "none" }

// InitialState implements StandbyPolicy.
func (np *NonePolicy) InitialState() State { return Unprotected }

// PreDeploy implements StandbyPolicy.
func (np *NonePolicy) PreDeploy() (bool, bool) { return false, false }

// NeedsStandbyMachine implements StandbyPolicy.
func (np *NonePolicy) NeedsStandbyMachine() bool { return false }

// PromoteAfter implements StandbyPolicy.
func (np *NonePolicy) PromoteAfter() time.Duration { return 0 }

// Arm implements StandbyPolicy: just the primary's acker.
func (np *NonePolicy) Arm(lc *Lifecycle) error {
	acker := checkpoint.NewAcker(lc.PrimaryRuntime(), lc.clk, np.ackInterval)
	lc.mu.Lock()
	lc.ackers = append(lc.ackers, acker)
	lc.mu.Unlock()
	acker.Start()
	return nil
}

// Failover implements StandbyPolicy; never selected by the table.
func (np *NonePolicy) Failover(lc *Lifecycle, _ time.Time) State { return lc.State() }

// Restore implements StandbyPolicy; never selected by the table.
func (np *NonePolicy) Restore(lc *Lifecycle, _ time.Time) State { return lc.State() }

// Promote implements StandbyPolicy; never selected by the table.
func (np *NonePolicy) Promote(lc *Lifecycle, _ time.Time) State { return lc.State() }

// ActivePolicy is conventional active standby: a second copy processes
// the full stream concurrently (roughly four times the traffic), so
// recovery is instant and no detector runs — the lifecycle is permanently
// Protected by redundancy.
type ActivePolicy struct {
	ackInterval time.Duration
}

// NewActivePolicy creates the active-standby policy; ackInterval ≤ 0
// selects the default.
func NewActivePolicy(ackInterval time.Duration) *ActivePolicy {
	if ackInterval <= 0 {
		ackInterval = defaultAckInterval
	}
	return &ActivePolicy{ackInterval: ackInterval}
}

// Mode implements StandbyPolicy.
func (ap *ActivePolicy) Mode() string { return "active" }

// InitialState implements StandbyPolicy.
func (ap *ActivePolicy) InitialState() State { return Protected }

// PreDeploy implements StandbyPolicy: the twin exists up front and runs.
func (ap *ActivePolicy) PreDeploy() (bool, bool) { return true, false }

// NeedsStandbyMachine implements StandbyPolicy.
func (ap *ActivePolicy) NeedsStandbyMachine() bool { return true }

// PromoteAfter implements StandbyPolicy.
func (ap *ActivePolicy) PromoteAfter() time.Duration { return 0 }

// Arm implements StandbyPolicy: create the twin if the deployer did not,
// subscribe it actively on both sides, and run ackers on both copies. No
// detector is started — active standby needs none, and starting one would
// add heartbeat traffic the paper's Figure 6 comparison excludes.
func (ap *ActivePolicy) Arm(lc *Lifecycle) error {
	lc.mu.Lock()
	pri, sec, secM := lc.primary, lc.secondary, lc.secondaryM
	lc.mu.Unlock()
	if sec == nil {
		var err error
		sec, err = subjob.New(lc.cfg.Spec, secM, false)
		if err != nil {
			return err
		}
		lc.applyPartitioning(sec)
		sec.Start()
		part := lc.upPart()
		for _, up := range lc.cfg.Wiring.UpstreamOutputs() {
			up.SubscribePart(sec.Node(), subjob.DataStream(sec.Spec().ID, up.StreamID), true, part)
		}
		for _, t := range lc.cfg.Wiring.DownstreamTargets() {
			sec.Out().SubscribePart(t.Node, t.Stream, t.Active, t.Part)
		}
		lc.mu.Lock()
		lc.secondary = sec
		lc.mu.Unlock()
	}
	priAcker := checkpoint.NewAcker(pri, lc.clk, ap.ackInterval)
	secAcker := checkpoint.NewAcker(sec, lc.clk, ap.ackInterval)
	lc.mu.Lock()
	lc.ackers = append(lc.ackers, priAcker, secAcker)
	lc.mu.Unlock()
	priAcker.Start()
	secAcker.Start()
	return nil
}

// Failover implements StandbyPolicy; never selected by the table.
func (ap *ActivePolicy) Failover(lc *Lifecycle, _ time.Time) State { return lc.State() }

// Restore implements StandbyPolicy; never selected by the table.
func (ap *ActivePolicy) Restore(lc *Lifecycle, _ time.Time) State { return lc.State() }

// Promote implements StandbyPolicy; never selected by the table.
func (ap *ActivePolicy) Promote(lc *Lifecycle, _ time.Time) State { return lc.State() }
