package core

import (
	"sync"
	"time"
)

// DivergenceStats reports how far the approx policy's bounded-error
// failovers have diverged from exact recovery, against the configured
// budget. Exported through the metrics registry as
// subjob.<name>.divergence.*.
type DivergenceStats struct {
	Mode string `json:"mode"`
	// Budget echoes the configured bound.
	BudgetMaxLost        int     `json:"budget_max_lost_elements"`
	BudgetMaxStalenessMS float64 `json:"budget_max_staleness_ms"`
	// Failovers counts all failovers the policy handled; BudgetedSkips of
	// them skipped the replay within budget, ExactReplays fell back to the
	// exact hybrid path (estimate over budget or standby too stale).
	Failovers     int `json:"failovers"`
	BudgetedSkips int `json:"budgeted_skips"`
	ExactReplays  int `json:"exact_replays"`
	// LostElements is the measured loss actually admitted across all
	// budgeted skips (upstream elements never replayed to the standby);
	// LastLostElements is the most recent failover's share.
	LostElements     int64 `json:"lost_elements_total"`
	LastLostElements int   `json:"last_lost_elements"`
	// StaleColdBytes is the cold remainder of the standby's state at the
	// last budgeted skip — bytes promoted as-is from an older snapshot
	// because no partial frame had touched them since.
	StaleColdBytes uint64 `json:"stale_cold_bytes"`
	// LastStalenessMS is the age of the standby's newest applied refresh
	// at the last failover.
	LastStalenessMS float64 `json:"last_staleness_ms"`
	// WithinBudget reports whether the measured loss of the last failover
	// stayed inside the budget (exact replays trivially do).
	WithinBudget bool `json:"within_budget"`
}

// DivergenceReporter is implemented by policies that admit bounded
// divergence; the pipeline exports the stats as a metrics source.
type DivergenceReporter interface {
	Divergence() DivergenceStats
}

// ApproxPolicy is the bounded-error variant of the hybrid method: the
// sweeping checkpoint manager ships unchained partial frames carrying only
// the hot (recently written) byte ranges, and failover promotes the
// standby immediately from its last partial instead of draining the full
// delta chain — skipping the upstream replay entirely whenever the
// estimated loss fits the ErrorBudget. The divergence actually admitted
// (lost in-flight elements, stale cold-slot bytes) is measured and
// reported; a zero budget degenerates to exact hybrid behavior.
type ApproxPolicy struct {
	hy     *HybridPolicy
	budget ErrorBudget

	mu  sync.Mutex
	div DivergenceStats
	// priDeactivated records that the last budgeted skip cut the stalled
	// primary off its upstream feeds. Exact hybrid can leave both copies
	// consuming — determinism assigns them identical output sequences, so
	// the duplicates collapse downstream — but after a skip the standby's
	// sequence space has diverged, and a double-processed element would
	// reach the sink under two different sequences. Restore re-activates
	// the feed once the primary has adopted the standby's state.
	priDeactivated bool
}

// NewApproxPolicy creates the bounded-error policy. Partial frames patch a
// pre-deployed standby in place, so the NoPreDeploy ablation is forced off.
func NewApproxPolicy(o Options, b ErrorBudget) *ApproxPolicy {
	o.NoPreDeploy = false
	return &ApproxPolicy{
		hy:     NewHybridPolicy(o),
		budget: b,
		div: DivergenceStats{
			Mode:                 "approx",
			BudgetMaxLost:        b.MaxLostElements,
			BudgetMaxStalenessMS: float64(b.MaxStaleness) / 1e6,
			WithinBudget:         true,
		},
	}
}

// Options returns the underlying hybrid policy's resolved options.
func (ap *ApproxPolicy) Options() Options { return ap.hy.Options() }

// Budget returns the configured error budget.
func (ap *ApproxPolicy) Budget() ErrorBudget { return ap.budget }

// Mode implements StandbyPolicy.
func (ap *ApproxPolicy) Mode() string { return "approx" }

// InitialState implements StandbyPolicy.
func (ap *ApproxPolicy) InitialState() State { return ap.hy.InitialState() }

// PreDeploy implements StandbyPolicy: always pre-deployed and suspended.
func (ap *ApproxPolicy) PreDeploy() (bool, bool) { return ap.hy.PreDeploy() }

// NeedsStandbyMachine implements StandbyPolicy.
func (ap *ApproxPolicy) NeedsStandbyMachine() bool { return ap.hy.NeedsStandbyMachine() }

// PromoteAfter implements StandbyPolicy.
func (ap *ApproxPolicy) PromoteAfter() time.Duration { return ap.hy.PromoteAfter() }

// Arm implements StandbyPolicy: the hybrid arm sequence, with the sweeping
// manager in partial (bounded-error) mode unless the budget is zero.
func (ap *ApproxPolicy) Arm(lc *Lifecycle) error { return ap.hy.arm(lc, !ap.budget.Zero()) }

// Restore implements StandbyPolicy: rollback is the hybrid read-state
// sequence — the primary adopts the standby's (approximate) live state,
// and the divergence admitted at failover simply persists. If the
// preceding budgeted skip deactivated the primary's upstream feeds, they
// are re-activated (with retransmission) now that the primary's input
// floor covers everything the standby consumed.
func (ap *ApproxPolicy) Restore(lc *Lifecycle, at time.Time) State {
	st := ap.hy.Restore(lc, at)
	ap.mu.Lock()
	deact := ap.priDeactivated
	ap.priDeactivated = false
	ap.mu.Unlock()
	if deact {
		pri := lc.PrimaryRuntime()
		for _, up := range lc.cfg.Wiring.UpstreamOutputs() {
			up.Activate(pri.Node(), true)
		}
	}
	return st
}

// Promote implements StandbyPolicy: the hybrid promotion, re-arming the
// spare's sweeping manager in partial mode unless the budget is zero. The
// old primary is unsubscribed wholesale, so a deactivated feed needs no
// undoing.
func (ap *ApproxPolicy) Promote(lc *Lifecycle, _ time.Time) State {
	ap.mu.Lock()
	ap.priDeactivated = false
	ap.mu.Unlock()
	return ap.hy.promote(lc, !ap.budget.Zero())
}

// Failover implements StandbyPolicy. With a zero budget it is hybrid
// failover verbatim. Otherwise the standby — already holding its last
// partial refresh, output sequence fast-forwarded to match the primary's
// — is promoted without draining anything: when the estimated replay
// backlog and the standby's staleness both fit the budget, the upstream
// replay is skipped (each queue's dedup floor jumps past the retained
// backlog, admitting bounded loss); when either bound is exceeded, the
// exact hybrid replay runs instead.
func (ap *ApproxPolicy) Failover(lc *Lifecycle, detectedAt time.Time) State {
	if ap.budget.Zero() {
		return ap.hy.Failover(lc, detectedAt)
	}

	sec := lc.SecondaryRuntime()
	secM := lc.StandbyMachine()

	// Estimate before resuming: the pending replay per upstream queue is
	// what activation would retransmit, and the standby store's last
	// refresh bounds how stale the promoted state is.
	ups := lc.cfg.Wiring.UpstreamOutputs()
	pending := 0
	for _, up := range ups {
		pending += up.PendingReplay(sec.Node())
	}
	staleness := time.Duration(0)
	refreshed := false
	if st := lc.StandbyStoreRef(); st != nil {
		if lr := st.LastRefresh(); !lr.IsZero() {
			staleness = lc.clk.Now().Sub(lr)
			refreshed = true
		}
	}
	within := pending <= ap.budget.MaxLostElements &&
		(ap.budget.MaxStaleness <= 0 || (refreshed && staleness <= ap.budget.MaxStaleness))
	if !refreshed {
		// Nothing ever refreshed the standby: promoting it would replay
		// from zero state, so only the exact path is sound.
		within = false
	}

	secM.CPU().Execute(ap.hy.opts.ResumeCost)
	sec.Resume()

	lost := 0
	if within {
		// Cut the (possibly just slow) primary off its feeds first: once the
		// dedup floor jumps, the standby's sequence space diverges from the
		// primary's, and an element processed by both copies would no longer
		// collapse downstream.
		pri := lc.PrimaryRuntime()
		for _, up := range ups {
			up.Activate(pri.Node(), false)
		}
		for _, up := range ups {
			lost += up.ActivateSkipReplay(sec.Node())
		}
		// No output retransmission either: the standby's output queue was
		// fast-forwarded by the partial frames to the primary's sequence,
		// retains nothing, and downstream dedup floors already cover the
		// prefix the primary published.
	} else {
		for _, up := range ups {
			up.Activate(sec.Node(), true)
		}
		sec.Out().RetransmitAll()
	}

	var cold uint64
	if st := lc.StandbyStoreRef(); st != nil {
		_, _, cold = st.PartialStats()
	}

	ap.mu.Lock()
	ap.div.Failovers++
	ap.div.LastStalenessMS = float64(staleness) / 1e6
	if within {
		ap.priDeactivated = true
		ap.div.BudgetedSkips++
		ap.div.LostElements += int64(lost)
		ap.div.LastLostElements = lost
		ap.div.StaleColdBytes = cold
		// The decision used an estimate; elements published between the
		// estimate and the floor jump are admitted too, so report the
		// measured loss against the budget honestly.
		ap.div.WithinBudget = lost <= ap.budget.MaxLostElements
	} else {
		ap.div.ExactReplays++
		ap.div.LastLostElements = 0
		ap.div.WithinBudget = true
	}
	ap.mu.Unlock()

	lc.recordSwitch(SwitchEvent{DetectedAt: detectedAt, ReadyAt: lc.clk.Now()})
	return SwitchedOver
}

// Rearm implements Rearmer: the hybrid repair, keeping the re-armed
// sweeping manager in partial (bounded-error) mode unless the budget is
// zero.
func (ap *ApproxPolicy) Rearm(lc *Lifecycle, _ time.Time) State {
	return ap.hy.rearm(lc, !ap.budget.Zero())
}

// Divergence implements DivergenceReporter.
func (ap *ApproxPolicy) Divergence() DivergenceStats {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return ap.div
}
