package core

import (
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// HybridPolicy is the paper's contribution (Section IV): a pre-deployed
// suspended secondary refreshed in memory, switchover on the first missed
// heartbeat, read-state-on-rollback when the primary returns, and
// fail-stop promotion (with spare re-protection) when the failure
// persists. The ablation switches in Options select the degraded variants
// Section IV-B measures.
type HybridPolicy struct {
	opts Options
}

// NewHybridPolicy creates the hybrid policy with o (zero value = the
// paper's full design).
func NewHybridPolicy(o Options) *HybridPolicy {
	return &HybridPolicy{opts: o.withDefaults()}
}

// Options returns the policy's resolved options.
func (hp *HybridPolicy) Options() Options { return hp.opts }

// Mode implements StandbyPolicy.
func (hp *HybridPolicy) Mode() string { return "hybrid" }

// InitialState implements StandbyPolicy.
func (hp *HybridPolicy) InitialState() State { return Protected }

// PreDeploy implements StandbyPolicy: the standby exists up front and is
// suspended, unless the NoPreDeploy ablation defers it to switchover.
func (hp *HybridPolicy) PreDeploy() (bool, bool) { return !hp.opts.NoPreDeploy, true }

// NeedsStandbyMachine implements StandbyPolicy.
func (hp *HybridPolicy) NeedsStandbyMachine() bool { return true }

// PromoteAfter implements StandbyPolicy.
func (hp *HybridPolicy) PromoteAfter() time.Duration { return hp.opts.FailStopAfter }

// Arm implements StandbyPolicy: deploy the standby side (pre-deployed and
// early-connected unless ablated), start the sweeping checkpoint manager
// on the primary and the heartbeat detector on the standby machine.
func (hp *HybridPolicy) Arm(lc *Lifecycle) error { return hp.arm(lc, false) }

// arm is the shared body; partial selects bounded-error checkpointing for
// the sweeping manager (the approx policy's wrapper sets it). It reads the
// live secondary fields — not the construction-time config — so re-arms
// onto a scheduler-supplied replacement machine reuse it unchanged.
func (hp *HybridPolicy) arm(lc *Lifecycle, partial bool) error {
	spec := lc.cfg.Spec
	secM := lc.StandbyMachine()

	if !hp.opts.NoPreDeploy {
		sec := lc.SecondaryRuntime()
		if sec == nil {
			// A nil secondary here means a re-arm onto a replacement host
			// mid-stream (the builders pre-create the initial standby). Seed
			// the fresh copy synchronously from the live primary before it
			// starts: the sweeping chain is asynchronous, and a switchover in
			// the window before its first checkpoint lands would otherwise
			// promote an empty copy whose restarted output sequences the
			// downstream dedup floors silently swallow.
			var err error
			sec, err = subjob.New(spec, secM, true)
			if err != nil {
				return err
			}
			lc.applyPartitioning(sec)
			if err := seedStandby(lc.PrimaryRuntime(), sec); err != nil {
				return err
			}
			sec.Start()
			if !hp.opts.NoEarlyConnection {
				lc.connectStandby(sec)
			}
		}
		// Pre-deployment pays the deployment cost up front, off the
		// critical path.
		secM.CPU().Execute(hp.opts.DeployCost)
		acker := checkpoint.NewAcker(sec, lc.clk, hp.opts.AckInterval)
		lc.mu.Lock()
		lc.secondary = sec
		lc.standby = NewStandbyStoreWith(sec, hp.opts.Catalog)
		lc.ackers = append(lc.ackers, acker)
		lc.mu.Unlock()
		acker.Start()
	} else {
		backend := checkpoint.InMemory
		if hp.opts.DiskStore {
			backend = checkpoint.SimulatedDisk
		}
		lc.mu.Lock()
		lc.store = checkpoint.NewStoreWith(secM, spec.ID, checkpoint.StoreOptions{
			Backend: backend,
			Catalog: hp.opts.Catalog,
		})
		lc.mu.Unlock()
	}

	cm := checkpoint.NewSweeping(checkpoint.Config{
		Runtime:        lc.PrimaryRuntime(),
		Clock:          lc.clk,
		Interval:       hp.opts.CheckpointInterval,
		StoreNode:      secM.ID(),
		Costs:          hp.opts.CheckpointCosts,
		RebaseEvery:    hp.opts.CheckpointRebaseEvery,
		RebaseAdaptive: hp.opts.CheckpointRebaseAdaptive,
		MaxInFlight:    hp.opts.CheckpointMaxInFlight,
		Partial:        partial,
		SeqBase:        lc.seqBase(),
	})
	lc.mu.Lock()
	lc.cm = cm
	lc.mu.Unlock()
	cm.Start()
	lc.watchChainBreaks()

	lc.registerReadStateAck(lc.PrimaryRuntime().Machine())
	lc.startDetector(secM, lc.PrimaryRuntime().Machine().ID(), spec.ID,
		hp.opts.HeartbeatInterval, hp.opts.MissThreshold, hp.opts.RecoverThreshold)
	return nil
}

// Failover implements StandbyPolicy: the switchover of Section IV-B.
// Resume the pre-deployed copy (or deploy one from the store under
// NoPreDeploy), flip the early connections active — which retransmits
// unacknowledged upstream data — and retransmit the standby's own
// unacknowledged outputs.
func (hp *HybridPolicy) Failover(lc *Lifecycle, detectedAt time.Time) State {
	sec := lc.SecondaryRuntime()
	secM := lc.StandbyMachine()

	if hp.opts.NoPreDeploy {
		// Ablation: deploy the standby from the stored checkpoint on demand,
		// paying the full deployment cost on the critical path.
		secM.CPU().Execute(hp.opts.DeployCost)
		rt, err := subjob.New(lc.cfg.Spec, secM, true)
		if err != nil {
			return Protected
		}
		lc.applyPartitioning(rt)
		if snap, ok := lc.Store().Latest(); ok {
			if err := rt.Restore(snap); err != nil {
				return Protected
			}
		}
		rt.Start()
		lc.mu.Lock()
		lc.secondary = rt
		lc.mu.Unlock()
		sec = rt
	}

	// Resuming the suspended copy is just resetting the processing-loop
	// flags, about a quarter of a deployment.
	secM.CPU().Execute(hp.opts.ResumeCost)
	sec.Resume()

	ups := lc.cfg.Wiring.UpstreamOutputs()
	if hp.opts.NoEarlyConnection || hp.opts.NoPreDeploy {
		// Ablation: establish connections now, paying per-connection cost.
		downs := lc.cfg.Wiring.DownstreamTargets()
		secM.CPU().Execute(hp.opts.ConnectCost * time.Duration(len(ups)+len(downs)))
		part := lc.upPart()
		for _, up := range ups {
			up.SubscribePart(sec.Node(), subjob.DataStream(sec.Spec().ID, up.StreamID), false, part)
		}
		for _, t := range downs {
			sec.Out().SubscribePart(t.Node, t.Stream, t.Active, t.Part)
		}
	}
	for _, up := range ups {
		// Activation retransmits everything the standby has not seen; its
		// restart point is covered by the sweeping-checkpoint invariant.
		up.Activate(sec.Node(), true)
	}
	sec.Out().RetransmitAll()

	lc.recordSwitch(SwitchEvent{DetectedAt: detectedAt, ReadyAt: lc.clk.Now()})
	return SwitchedOver
}

// Restore implements StandbyPolicy: the rollback once the primary is
// responsive again. The standby is suspended, the primary reads the
// standby's freshest state back ("read state on rollback") so it can jump
// past the backlog it accumulated while stalled, and upstream connections
// to the standby are deactivated.
func (hp *HybridPolicy) Restore(lc *Lifecycle, at time.Time) State {
	lc.transient(RollingBack)
	sec := lc.SecondaryRuntime()
	pri := lc.PrimaryRuntime()

	snap := sec.SuspendAndSnapshot()
	for _, up := range lc.cfg.Wiring.UpstreamOutputs() {
		up.Activate(sec.Node(), false)
	}

	units := 0
	adopted := false
	if !hp.opts.NoReadState {
		units = snap.ElementUnits()
		// The state transfer is a real message so its size is accounted in
		// the experiment's overhead figures (Figure 10).
		if state, err := snap.Encode(); err == nil {
			sec.Machine().Send(pri.Node(), transport.Message{
				Kind:         transport.KindReadStateResp,
				Stream:       subjob.ReadStateStream(lc.cfg.Spec.ID),
				State:        state,
				ElementCount: units,
			})
			select {
			case <-lc.rsAckCh:
			case <-lc.clk.After(5 * time.Second):
			case <-lc.stop:
				return RollingBack
			}
		}
		pri.WithPaused(func() {
			if positionsCover(snap.Consumed, pri.ConsumedPositions()) {
				if err := pri.Restore(snap); err == nil {
					adopted = true
				}
			}
		})
	}

	if hp.opts.NoPreDeploy {
		// Ablation: the on-demand copy is discarded; the next failure
		// deploys a fresh one from the store.
		sec.Stop()
		lc.mu.Lock()
		lc.secondary = nil
		lc.mu.Unlock()
	}

	lc.recordRollback(RollbackEvent{
		StartedAt:  at,
		DoneAt:     lc.clk.Now(),
		StateUnits: units,
		Adopted:    adopted,
	})
	return Protected
}

// positionsCover reports whether the standby's positions are at or beyond
// the primary's on every stream — the guard that prevents a rollback after
// a false alarm from regressing a primary that was actually ahead.
func positionsCover(standby, primary map[string]uint64) bool {
	for s, v := range primary {
		if standby[s] < v {
			return false
		}
	}
	return true
}

// Promote implements StandbyPolicy: the activated standby becomes the
// permanent primary after the failure persisted past the fail-stop
// threshold, and — when a spare machine is available — a new suspended
// standby is instantiated there, re-protecting the subjob.
func (hp *HybridPolicy) Promote(lc *Lifecycle, _ time.Time) State { return hp.promote(lc, false) }

// promote is the shared body; partial selects bounded-error checkpointing
// for the re-armed sweeping manager (the approx policy's wrapper sets it).
func (hp *HybridPolicy) promote(lc *Lifecycle, partial bool) State {
	lc.transient(Promoted)
	lc.mu.Lock()
	oldPrimary := lc.primary
	sec := lc.secondary
	oldCM := lc.cm
	oldDet := lc.det
	oldAckers := lc.ackers
	lc.ackers = nil
	lc.mu.Unlock()

	// The old primary is presumed dead. Tear its stack down without
	// blocking the event loop (its machine may be unresponsive).
	go func() {
		if oldDet != nil {
			oldDet.Stop()
		}
		if oldCM != nil {
			oldCM.Stop()
		}
		oldPrimary.Stop()
	}()

	// Remove the dead primary from every upstream queue so it stops gating
	// trims, and drop the read-state plumbing bound to its machine.
	for _, up := range lc.cfg.Wiring.UpstreamOutputs() {
		up.Unsubscribe(oldPrimary.Node())
	}
	oldPrimary.Machine().UnregisterStream(subjob.ReadStateStream(lc.cfg.Spec.ID))

	lc.mu.Lock()
	lc.primary = sec
	lc.secondary = nil
	lc.mu.Unlock()
	lc.recordPromotion(PromoteEvent{At: lc.clk.Now()})

	// The promoted copy must stop acking on processing: from here on its
	// checkpoint manager acknowledges after checkpointing, as passive
	// standby correctness requires.
	for _, a := range oldAckers {
		a.Stop()
	}

	spare := lc.cfg.SpareMachine
	if spare == nil || spare == sec.Machine() || spare.Crashed() {
		spare = nil
	}
	placed := false
	if placer := lc.cfg.Placer; placer != nil {
		// Keep the scheduler's books straight — the primary moved — and let
		// it pick the replacement standby host when no static spare remains.
		placer.NotePrimary(lc.cfg.Spec.ID, sec.Machine())
		if spare == nil {
			spare = placer.PlaceStandby(lc.cfg.Spec.ID, sec.Machine())
			placed = spare != nil
		}
	}
	if spare == nil {
		// No (live) spare and no schedulable capacity: the subjob runs
		// unprotected, like passive standby after exhausting its secondary.
		// With a placer, the periodic re-arm keeps retrying as capacity
		// returns.
		return Unprotected
	}

	newSec, err := subjob.New(lc.cfg.Spec, spare, true)
	if err != nil {
		return Unprotected
	}
	lc.applyPartitioning(newSec)
	// Same seeding as a re-arm: the replacement standby inherits the
	// promoted primary's sequence space immediately, closing the window
	// before its first sweeping checkpoint arrives.
	if err := seedStandby(sec, newSec); err != nil {
		return Unprotected
	}
	spare.CPU().Execute(hp.opts.DeployCost)
	newSec.Start()
	lc.connectStandby(newSec)

	lc.mu.Lock()
	lc.secondary = newSec
	lc.secondaryM = spare
	standby := lc.standby
	lc.mu.Unlock()
	if standby != nil {
		standby.Retarget(newSec)
	} else {
		lc.mu.Lock()
		lc.standby = NewStandbyStoreWith(newSec, hp.opts.Catalog)
		lc.mu.Unlock()
	}

	newCM := checkpoint.NewSweeping(checkpoint.Config{
		Runtime:        sec,
		Clock:          lc.clk,
		Interval:       hp.opts.CheckpointInterval,
		StoreNode:      spare.ID(),
		Costs:          hp.opts.CheckpointCosts,
		RebaseEvery:    hp.opts.CheckpointRebaseEvery,
		RebaseAdaptive: hp.opts.CheckpointRebaseAdaptive,
		MaxInFlight:    hp.opts.CheckpointMaxInFlight,
		Partial:        partial,
		SeqBase:        lc.seqBase(),
	})
	newAcker := checkpoint.NewAcker(newSec, lc.clk, hp.opts.AckInterval)
	lc.mu.Lock()
	lc.cm = newCM
	lc.ackers = []*checkpoint.Acker{newAcker}
	lc.mu.Unlock()
	newCM.Start()
	newAcker.Start()
	lc.watchChainBreaks()

	// Re-armed: a new detector on the spare machine watches the promoted
	// primary, so the subjob survives the next failure too.
	lc.registerReadStateAck(sec.Machine())
	lc.startDetector(spare, sec.Machine().ID(), lc.cfg.Spec.ID,
		hp.opts.HeartbeatInterval, hp.opts.MissThreshold, hp.opts.RecoverThreshold)
	if placed {
		lc.recordRearm(RearmEvent{At: lc.clk.Now(), Host: string(spare.ID())})
	}
	return Protected
}

// Rearm implements Rearmer: the scheduler-backed protection repair driven
// by the lifecycle's periodic EventRearm.
func (hp *HybridPolicy) Rearm(lc *Lifecycle, at time.Time) State { return hp.rearm(lc, false) }

// rearm is the shared body; partial selects bounded-error checkpointing,
// as in arm. From Protected it is a health check: nothing happens while
// the standby machine is alive. When the standby machine is dead (a crash
// the detector cannot see — the detector lived there) or the state is
// Unprotected (a spare-less promotion), it asks the placer for a
// replacement host, tears the old standby apparatus down and re-arms onto
// the new machine.
func (hp *HybridPolicy) rearm(lc *Lifecycle, partial bool) State {
	cur := lc.State()
	pri := lc.PrimaryRuntime()
	if pri.Machine().Crashed() {
		// No live primary to protect; this is the detector's problem, not
		// the scheduler's.
		return cur
	}
	secM := lc.StandbyMachine()
	sec := lc.SecondaryRuntime()
	healthy := secM != nil && !secM.Crashed()
	if !hp.opts.NoPreDeploy {
		healthy = healthy && sec != nil
	}
	if cur == Protected && healthy {
		return cur
	}
	target := lc.cfg.Placer.PlaceStandby(lc.cfg.Spec.ID, pri.Machine())
	if target == nil {
		return cur
	}

	// Tear down the old standby apparatus before arming on the new host.
	lc.mu.Lock()
	oldDet, oldCM, oldAckers := lc.det, lc.cm, lc.ackers
	oldStandby, oldStore := lc.standby, lc.store
	oldSec := lc.secondary
	lc.det, lc.cm, lc.ackers = nil, nil, nil
	lc.standby, lc.store = nil, nil
	lc.secondary = nil
	lc.secondaryM = target
	lc.mu.Unlock()
	if oldSec != nil {
		for _, up := range lc.cfg.Wiring.UpstreamOutputs() {
			up.Unsubscribe(oldSec.Node())
		}
	}
	// The old standby machine may be unresponsive; don't block the event
	// loop on its teardown.
	go func() {
		if oldDet != nil {
			oldDet.Stop()
		}
		if oldCM != nil {
			oldCM.Stop()
		}
		for _, a := range oldAckers {
			a.Stop()
		}
		if oldStandby != nil {
			oldStandby.Close()
		}
		if oldStore != nil {
			oldStore.Close()
		}
		if oldSec != nil {
			oldSec.Stop()
		}
	}()

	if err := hp.arm(lc, partial); err != nil {
		return Unprotected
	}
	lc.recordRearm(RearmEvent{At: lc.clk.Now(), Host: string(target.ID())})
	return Protected
}

// seedStandby synchronously copies the live primary's state into a
// freshly created (still suspended) standby, so the standby holds the
// primary's output sequence space and consumed positions from the moment
// it exists; the sweeping chain refreshes it from this baseline. Snapshot
// (not CaptureFull) leaves the primary's delta tracking untouched, so a
// checkpoint manager still winding down on the same runtime is unharmed.
func seedStandby(pri, sec *subjob.Runtime) error {
	var snap *subjob.Snapshot
	pri.WithPaused(func() { snap = pri.Snapshot() })
	return sec.Restore(snap)
}
