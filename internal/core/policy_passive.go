package core

import (
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/subjob"
)

// PassivePolicy is conventional passive standby: the primary checkpoints
// to a store on the secondary machine, and after MissThreshold (three, by
// convention) heartbeat misses a recovery copy is deployed there on
// demand. There is no rollback: after a migration the former secondary
// machine is the new primary's home and the former primary machine becomes
// the new secondary — so under transient failures the subjob keeps
// experiencing spikes on whichever machine it lands on, as the paper
// observes in Figure 4. The lifecycle re-arms after every migration, so
// repeated failures keep being survived while both machines stay alive.
type PassivePolicy struct {
	opts PassiveOptions
}

// NewPassivePolicy creates the passive-standby policy with o.
func NewPassivePolicy(o PassiveOptions) *PassivePolicy {
	return &PassivePolicy{opts: o.withDefaults()}
}

// Options returns the policy's resolved options.
func (pp *PassivePolicy) Options() PassiveOptions { return pp.opts }

// Mode implements StandbyPolicy.
func (pp *PassivePolicy) Mode() string { return "passive" }

// InitialState implements StandbyPolicy.
func (pp *PassivePolicy) InitialState() State { return Protected }

// PreDeploy implements StandbyPolicy: passive standby deploys on demand.
func (pp *PassivePolicy) PreDeploy() (bool, bool) { return false, false }

// NeedsStandbyMachine implements StandbyPolicy.
func (pp *PassivePolicy) NeedsStandbyMachine() bool { return true }

// PromoteAfter implements StandbyPolicy: a migration never enters
// SwitchedOver, so no fail-stop timer is armed.
func (pp *PassivePolicy) PromoteAfter() time.Duration { return 0 }

// Arm implements StandbyPolicy.
func (pp *PassivePolicy) Arm(lc *Lifecycle) error {
	pp.arm(lc)
	return nil
}

// arm (re)creates the store, checkpoint manager and detector for the
// current primary/standby pair.
func (pp *PassivePolicy) arm(lc *Lifecycle) {
	lc.mu.Lock()
	active, standbyM := lc.primary, lc.secondaryM
	lc.mu.Unlock()

	store := checkpoint.NewStoreWith(standbyM, lc.cfg.Spec.ID, checkpoint.StoreOptions{
		Backend: pp.opts.StoreBackend,
		Catalog: pp.opts.Catalog,
	})
	cm := checkpoint.NewSweeping(checkpoint.Config{
		Runtime:        active,
		Clock:          lc.clk,
		Interval:       pp.opts.CheckpointInterval,
		StoreNode:      standbyM.ID(),
		Costs:          pp.opts.CheckpointCosts,
		RebaseEvery:    pp.opts.CheckpointRebaseEvery,
		RebaseAdaptive: pp.opts.CheckpointRebaseAdaptive,
		SeqBase:        lc.seqBase(),
	})
	lc.mu.Lock()
	lc.store = store
	lc.cm = cm
	lc.mu.Unlock()
	cm.Start()
	lc.watchChainBreaks()
	lc.startDetector(standbyM, active.Machine().ID(),
		lc.cfg.Spec.ID+"/"+string(standbyM.ID()),
		pp.opts.HeartbeatInterval, pp.opts.MissThreshold, 1)
}

// Failover implements StandbyPolicy: the passive-standby migration.
// Deploy a copy from the last checkpoint on the secondary machine,
// reconnect it upstream and downstream (retransmitting unacknowledged
// data), then swap roles so the former primary machine becomes the new
// secondary and re-arm.
func (pp *PassivePolicy) Failover(lc *Lifecycle, detectedAt time.Time) State {
	lc.mu.Lock()
	old := lc.primary
	target := lc.secondaryM
	store := lc.store
	oldCM := lc.cm
	oldDet := lc.det
	lc.mu.Unlock()

	if target.Crashed() {
		// No live statically named machine to recover on. With a placer the
		// scheduler supplies a replacement host; the checkpoints died with
		// the store machine, so the copy restarts empty and relies on the
		// upstream replay. Without one, selection of an alternative
		// secondary is outside the paper's scope.
		if lc.cfg.Placer == nil {
			return Unprotected
		}
		repl := lc.cfg.Placer.PlacePrimary(lc.cfg.Spec.ID, old.Machine())
		if repl == nil {
			return Unprotected
		}
		target = repl
		store = nil
	}
	lc.transient(Migrating)

	// Job redeployment: the dominant non-detection cost of PS recovery.
	target.CPU().Execute(pp.opts.DeployCost)
	rt, err := subjob.New(lc.cfg.Spec, target, false)
	if err != nil {
		return Unprotected
	}
	lc.applyPartitioning(rt)
	if store != nil {
		if snap, ok := store.Latest(); ok {
			if err := rt.Restore(snap); err != nil {
				return Unprotected
			}
		}
	}
	rt.Start()

	// Connection establishment, on the critical path for PS.
	ups := lc.cfg.Wiring.UpstreamOutputs()
	downs := lc.cfg.Wiring.DownstreamTargets()
	target.CPU().Execute(pp.opts.ConnectCost * time.Duration(len(ups)+len(downs)))
	for _, up := range ups {
		// Rebinding the subscription retransmits everything unacknowledged,
		// which the recovered copy reprocesses.
		up.ResetSubscriber(old.Node(), rt.Node(), subjob.DataStream(lc.cfg.Spec.ID, up.StreamID))
	}
	for _, t := range downs {
		rt.Out().SubscribePart(t.Node, t.Stream, t.Active, t.Part)
	}
	rt.Out().RetransmitAll()

	readyAt := lc.clk.Now()

	// Tear down the old stack without blocking (its machine may be
	// unresponsive); the old copy may limp along for a while, and the
	// downstream deduplicates whatever it still emits.
	go func() {
		if oldDet != nil {
			oldDet.Stop()
		}
		if oldCM != nil {
			oldCM.Stop()
		}
		old.Stop()
	}()
	if store != nil {
		store.Close()
	}

	lc.mu.Lock()
	lc.primary = rt
	lc.secondaryM = old.Machine()
	lc.mu.Unlock()
	lc.recordMigration(MigrationEvent{DetectedAt: detectedAt, ReadyAt: readyAt})

	// Re-protect: new store on the former primary machine, new checkpoint
	// manager on the new primary, new detector monitoring it. A fail-stop
	// crash of the former primary leaves no live machine to host the store —
	// with a placer the scheduler supplies one; without, the subjob keeps
	// running unprotected rather than arming apparatus on a dead machine.
	if placer := lc.cfg.Placer; placer != nil {
		placer.NotePrimary(lc.cfg.Spec.ID, rt.Machine())
	}
	if old.Machine().Crashed() {
		if lc.cfg.Placer == nil {
			return Unprotected
		}
		repl := lc.cfg.Placer.PlaceStandby(lc.cfg.Spec.ID, rt.Machine())
		if repl == nil {
			return Unprotected
		}
		lc.mu.Lock()
		lc.secondaryM = repl
		lc.mu.Unlock()
		lc.recordRearm(RearmEvent{At: lc.clk.Now(), Host: string(repl.ID())})
	}
	pp.arm(lc)
	return Protected
}

// Rearm implements Rearmer: replace a dead store machine (from Protected —
// a standby-machine crash is invisible to the detector, which lived there)
// or acquire one where none remains (from Unprotected after a correlated
// failure), tearing down the old apparatus and re-arming.
func (pp *PassivePolicy) Rearm(lc *Lifecycle, at time.Time) State {
	cur := lc.State()
	pri := lc.PrimaryRuntime()
	if pri.Machine().Crashed() {
		return cur
	}
	secM := lc.StandbyMachine()
	if cur == Protected && secM != nil && !secM.Crashed() {
		return cur
	}
	target := lc.cfg.Placer.PlaceStandby(lc.cfg.Spec.ID, pri.Machine())
	if target == nil {
		return cur
	}

	lc.mu.Lock()
	oldDet, oldCM, oldStore := lc.det, lc.cm, lc.store
	lc.det, lc.cm, lc.store = nil, nil, nil
	lc.secondaryM = target
	lc.mu.Unlock()
	go func() {
		if oldDet != nil {
			oldDet.Stop()
		}
		if oldCM != nil {
			oldCM.Stop()
		}
		if oldStore != nil {
			oldStore.Close()
		}
	}()

	pp.arm(lc)
	lc.recordRearm(RearmEvent{At: lc.clk.Now(), Host: string(target.ID())})
	return Protected
}

// Restore implements StandbyPolicy; never selected by the table (passive
// standby does not roll back).
func (pp *PassivePolicy) Restore(lc *Lifecycle, _ time.Time) State { return lc.State() }

// Promote implements StandbyPolicy; never selected by the table.
func (pp *PassivePolicy) Promote(lc *Lifecycle, _ time.Time) State { return lc.State() }
