package core

import (
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// switchover activates the standby on the first detected heartbeat miss
// (Section IV-B): resume the pre-deployed copy, flip the early connections
// active (which retransmits unacknowledged upstream data), and retransmit
// the standby's own unacknowledged outputs. It returns true if a
// switchover actually happened.
func (c *Controller) switchover(detectedAt time.Time) bool {
	c.mu.Lock()
	if c.active || c.promoted {
		c.mu.Unlock()
		return false
	}
	sec := c.secondary
	c.mu.Unlock()

	secM := c.cfg.SecondaryMachine
	if c.opts.NoPreDeploy {
		// Ablation: deploy the standby from the stored checkpoint on demand,
		// paying the full deployment cost on the critical path.
		secM.CPU().Execute(c.opts.DeployCost)
		rt, err := subjob.New(c.cfg.Spec, secM, true)
		if err != nil {
			return false
		}
		if snap, ok := c.diskStoreRef().Latest(); ok {
			if err := rt.Restore(snap); err != nil {
				return false
			}
		}
		rt.Start()
		c.mu.Lock()
		c.secondary = rt
		sec = rt
		c.mu.Unlock()
	}

	// Resuming the suspended copy is just resetting the processing-loop
	// flags, about a quarter of a deployment.
	secM.CPU().Execute(c.opts.ResumeCost)
	sec.Resume()

	ups := c.cfg.Wiring.UpstreamOutputs()
	if c.opts.NoEarlyConnection || c.opts.NoPreDeploy {
		// Ablation: establish connections now, paying per-connection cost.
		downs := c.cfg.Wiring.DownstreamTargets()
		secM.CPU().Execute(c.opts.ConnectCost * time.Duration(len(ups)+len(downs)))
		for _, up := range ups {
			up.Subscribe(sec.Node(), subjob.DataStream(sec.Spec().ID, up.StreamID), false)
		}
		for _, t := range downs {
			sec.Out().Subscribe(t.Node, t.Stream, t.Active)
		}
	}
	for _, up := range ups {
		// Activation retransmits everything the standby has not seen; its
		// restart point is covered by the sweeping-checkpoint invariant.
		up.Activate(sec.Node(), true)
	}
	sec.Out().RetransmitAll()

	readyAt := c.clk.Now()
	c.mu.Lock()
	c.active = true
	c.switches = append(c.switches, SwitchEvent{DetectedAt: detectedAt, ReadyAt: readyAt})
	c.mu.Unlock()
	return true
}

func (c *Controller) diskStoreRef() *checkpoint.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.diskStore
}

// rollback returns to passive-standby mode once the primary is responsive
// again: the standby is suspended, the primary reads the standby's
// freshest state back ("read state on rollback") so it can jump past the
// backlog it accumulated while stalled, and upstream connections to the
// standby are deactivated.
func (c *Controller) rollback(at time.Time) {
	c.mu.Lock()
	if !c.active || c.promoted {
		c.mu.Unlock()
		return
	}
	sec := c.secondary
	pri := c.primary
	c.mu.Unlock()

	snap := sec.SuspendAndSnapshot()
	for _, up := range c.cfg.Wiring.UpstreamOutputs() {
		up.Activate(sec.Node(), false)
	}

	units := 0
	adopted := false
	if !c.opts.NoReadState {
		units = snap.ElementUnits()
		// The state transfer is a real message so its size is accounted in
		// the experiment's overhead figures (Figure 10).
		if state, err := snap.Encode(); err == nil {
			sec.Machine().Send(pri.Node(), transport.Message{
				Kind:         transport.KindReadStateResp,
				Stream:       subjob.ReadStateStream(c.cfg.Spec.ID),
				State:        state,
				ElementCount: units,
			})
			select {
			case <-c.rsAckCh:
			case <-c.clk.After(5 * time.Second):
			case <-c.stop:
				return
			}
		}
		pri.WithPaused(func() {
			if positionsCover(snap.Consumed, pri.ConsumedPositions()) {
				if err := pri.Restore(snap); err == nil {
					adopted = true
				}
			}
		})
	}

	if c.opts.NoPreDeploy {
		// Ablation: the on-demand copy is discarded; the next failure
		// deploys a fresh one from the store.
		sec.Stop()
		c.mu.Lock()
		c.secondary = nil
		c.mu.Unlock()
	}

	done := c.clk.Now()
	c.mu.Lock()
	c.active = false
	c.rollbacks = append(c.rollbacks, RollbackEvent{
		StartedAt:  at,
		DoneAt:     done,
		StateUnits: units,
		Adopted:    adopted,
	})
	c.mu.Unlock()
}

// positionsCover reports whether the standby's positions are at or beyond
// the primary's on every stream — the guard that prevents a rollback after
// a false alarm from regressing a primary that was actually ahead.
func positionsCover(standby, primary map[string]uint64) bool {
	for s, v := range primary {
		if standby[s] < v {
			return false
		}
	}
	return true
}

// promote makes the activated standby the permanent primary after the
// failure persisted past the fail-stop threshold, and — when a spare
// machine is available — instantiates a new suspended standby there,
// re-protecting the subjob.
func (c *Controller) promote() {
	c.mu.Lock()
	if !c.active || c.promoted {
		c.mu.Unlock()
		return
	}
	c.promoted = true
	oldPrimary := c.primary
	sec := c.secondary
	oldCM := c.cm
	oldDet := c.det
	oldAcker := c.acker
	c.mu.Unlock()

	// The old primary is presumed dead. Tear its stack down without
	// blocking the control loop (its machine may be unresponsive).
	go func() {
		if oldDet != nil {
			oldDet.Stop()
		}
		if oldCM != nil {
			oldCM.Stop()
		}
		oldPrimary.Stop()
	}()

	// Remove the dead primary from every upstream queue so it stops gating
	// trims, and drop the read-state plumbing bound to its machine.
	for _, up := range c.cfg.Wiring.UpstreamOutputs() {
		up.Unsubscribe(oldPrimary.Node())
	}
	oldPrimary.Machine().UnregisterStream(subjob.ReadStateStream(c.cfg.Spec.ID))

	c.mu.Lock()
	c.primary = sec
	c.secondary = nil
	c.active = false
	c.promotions = append(c.promotions, PromoteEvent{At: c.clk.Now()})
	c.mu.Unlock()

	// The promoted copy must stop acking on processing: from here on its
	// checkpoint manager acknowledges after checkpointing, as passive
	// standby correctness requires.
	if oldAcker != nil {
		oldAcker.Stop()
	}

	spare := c.cfg.SpareMachine
	if spare == nil {
		// No spare: the subjob runs unprotected, like passive standby after
		// exhausting its secondary.
		return
	}

	newSec, err := subjob.New(c.cfg.Spec, spare, true)
	if err != nil {
		return
	}
	spare.CPU().Execute(c.opts.DeployCost)
	newSec.Start()
	c.connectStandby(newSec)

	c.mu.Lock()
	c.secondary = newSec
	standby := c.standby
	c.mu.Unlock()
	if standby != nil {
		standby.Retarget(newSec)
	} else {
		c.mu.Lock()
		c.standby = NewStandbyStore(newSec)
		c.mu.Unlock()
	}

	newCM := checkpoint.NewSweeping(checkpoint.Config{
		Runtime:     sec,
		Clock:       c.clk,
		Interval:    c.opts.CheckpointInterval,
		StoreNode:   spare.ID(),
		Costs:       c.opts.CheckpointCosts,
		RebaseEvery: c.opts.CheckpointRebaseEvery,
		MaxInFlight: c.opts.CheckpointMaxInFlight,
	})
	newAcker := checkpoint.NewAcker(newSec, c.clk, c.opts.AckInterval)
	c.mu.Lock()
	c.cm = newCM
	c.acker = newAcker
	c.promoted = false // re-armed: the subjob is protected again
	c.mu.Unlock()
	newCM.Start()
	newAcker.Start()

	c.registerReadStateAck(sec.Machine())
	c.startDetector(spare, sec.Machine().ID())
}
