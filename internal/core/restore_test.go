package core

import (
	"testing"
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/clock"
	"streamha/internal/element"
	"streamha/internal/machine"
	"streamha/internal/pe"
	"streamha/internal/queue"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// putCatalogChain seeds cat with a full checkpoint at seq 1 (consumed 40)
// and a chaining delta at seq 2 (consumed 50) for j/sj, mimicking what a
// persisting store left behind before the process died.
func putCatalogChain(t *testing.T, cat *checkpoint.Catalog) {
	t.Helper()
	snap := &subjob.Snapshot{
		SubjobID: "j/sj",
		Consumed: map[string]uint64{"in": 40},
		PEStates: [][]byte{(&pe.CounterLogic{Pad: 1}).Snapshot()},
		Pipes:    [][]element.Element{},
		Output:   queue.OutputSnapshot{StreamID: "out", NextSeq: 1},
	}
	payload, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Put("j/sj", 1, snap.ElementUnits(), payload); err != nil {
		t.Fatal(err)
	}
	d := &subjob.Delta{
		SubjobID: "j/sj",
		PrevSeq:  1,
		Consumed: map[string]uint64{"in": 50},
		PEDeltas: [][]byte{nil},
		PEFull:   [][]byte{(&pe.CounterLogic{Pad: 1}).Snapshot()},
		Pipes:    [][]element.Element{},
		PipeSet:  []bool{},
	}
	dp, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Put("j/sj", 2, d.ElementUnits(), dp); err != nil {
		t.Fatal(err)
	}
}

// TestLifecycleRestoreFromCatalog is the cold-restart path end to end at
// the library level: the catalog's head chain rewinds the primary before
// the policy arms, the restored consumed positions raise the input dedup
// floor, and the upstream resync force-replays everything past the last
// acknowledgment — absorbed exactly once.
func TestLifecycleRestoreFromCatalog(t *testing.T) {
	net := transport.NewMem(transport.MemConfig{})
	t.Cleanup(net.Close)
	clk := clock.New()
	priM, err := machine.New("pri", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	upM, err := machine.New("up", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	spec := subjob.Spec{
		JobID:     "j",
		ID:        "j/sj",
		InStreams: []string{"in"},
		Owners:    map[string]string{"in": "up"},
		OutStream: "out",
		PEs: []subjob.PESpec{
			{Name: "a", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 1} }},
		},
	}

	// The upstream published 60 elements to the now-dead process: 1..40
	// were acknowledged (covered by the cataloged full), 41..60 are still
	// retained; of those, 41..50 are covered by the cataloged delta and
	// 51..60 died with the process.
	up := queue.NewOutput("in", upM.Send)
	up.Subscribe(priM.ID(), subjob.DataStream("j/sj", "in"), true)
	batch := make([]element.Element, 60)
	for i := range batch {
		batch[i] = element.Element{ID: uint64(i + 1), Payload: int64(i + 1)}
	}
	up.Publish(batch) // no handler registered yet: lost in flight, like a crash
	up.Ack(priM.ID(), 40)

	cat := checkpoint.NewCatalog(checkpoint.NewMemBackend(), checkpoint.Retention{})
	putCatalogChain(t, cat)

	pri, err := subjob.New(spec, priM, false)
	if err != nil {
		t.Fatal(err)
	}
	pri.Start()
	t.Cleanup(pri.Stop)

	lc := NewLifecycle(LifecycleConfig{
		Spec:    spec,
		Clock:   clk,
		Primary: pri,
		Policy:  &fakePolicy{},
		Wiring: Wiring{
			UpstreamOutputs: func() []*queue.Output { return []*queue.Output{up} },
		},
		Catalog:            cat,
		RestoreFromCatalog: true,
	})
	t.Cleanup(lc.Stop)
	if err := lc.Start(); err != nil {
		t.Fatal(err)
	}

	if got := lc.RestoredSeq(); got != 2 {
		t.Fatalf("RestoredSeq = %d, want 2 (the chain head)", got)
	}
	if got := pri.ConsumedPositions()["in"]; got != 50 {
		t.Fatalf("restored consumed position %d, want 50 (full+delta fold)", got)
	}

	// The resync replays 41..60; the restored dedup floor (50) absorbs
	// 41..50 and only the ten elements lost with the process reprocess.
	deadline := time.Now().Add(2 * time.Second)
	for pri.PEs()[0].Processed() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := pri.PEs()[0].Processed(); got != 10 {
		t.Fatalf("processed %d elements after resync, want exactly 10 (51..60)", got)
	}
	if got := pri.ConsumedPositions()["in"]; got != 60 {
		t.Fatalf("consumed position %d after resync, want 60", got)
	}
}

// TestLifecycleRestoreFromCatalogErrors: a cold restart must fail loudly
// — not silently start empty — when the catalog is missing or has
// nothing restorable for the subjob.
func TestLifecycleRestoreFromCatalogErrors(t *testing.T) {
	lc := newLifecycleRig(t, &fakePolicy{})
	lc.cfg.RestoreFromCatalog = true
	if err := lc.Start(); err == nil {
		t.Fatal("Start succeeded with RestoreFromCatalog and no catalog")
	}

	lc2 := newLifecycleRig(t, &fakePolicy{})
	lc2.cfg.RestoreFromCatalog = true
	lc2.cfg.Catalog = checkpoint.NewCatalog(checkpoint.NewMemBackend(), checkpoint.Retention{})
	if err := lc2.Start(); err == nil {
		t.Fatal("Start succeeded restoring from an empty catalog")
	}
}
