// Package core implements the paper's primary contribution: the hybrid
// high-availability method (Section IV). A protected subjob runs as
// passive standby in normal conditions — sweeping checkpoints refresh a
// pre-deployed, suspended secondary copy directly in memory — and switches
// to active standby on the first missed heartbeat: the secondary's
// processing loops are resumed (a flag flip), its early-created upstream
// connections are activated, and unacknowledged data is retransmitted.
// When the primary becomes responsive again the system rolls back: the
// primary reads the freshest state from the secondary ("read state on
// rollback") and the secondary re-suspends. If the failure persists, the
// secondary is promoted to primary and a new standby is instantiated.
package core

import (
	"sync"
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// StandbyStore applies checkpoint messages to a pre-deployed suspended
// standby copy, refreshing its state directly in memory (the paper's
// storeJobState(jobState) interface), and confirms storage back to the
// checkpoint manager. While the standby is active (during a transient
// failure) incoming checkpoints are acknowledged but not applied: the live
// state supersedes them, and trimming remains gated by the standby's own
// acknowledgments.
//
// Incremental checkpoints fold into the standby the same way they fold
// into a Store: a delta is applied only when it extends the sequence chain
// of the state the standby currently holds, and a delta that does not is
// dropped without acknowledgment so upstream keeps the data. Any break —
// an active period, a retarget, a failed restore — invalidates the chain
// until the next full snapshot re-bases it.
type StandbyStore struct {
	mu      sync.Mutex
	rt      *subjob.Runtime
	catalog *checkpoint.Catalog

	applied      int
	skipped      int
	deltaDrops   int
	chain        uint64
	chainOK      bool
	onChainBreak func()

	// Bounded-error (approx) bookkeeping. Partial frames are unchained:
	// partialSeq only dedups stale/duplicate frames, and lastRefresh is
	// the clock reading of the newest applied refresh (full or partial) —
	// the approx policy's staleness measure at failover. coldBytes is the
	// cold remainder the last applied partial did not cover.
	partialSeq     uint64
	partialApplied int
	partialSkipped int
	lastRefresh    time.Time
	coldBytes      uint64
	work           chan storeReq
	stop           chan struct{}
	done           chan struct{}
}

type storeReq struct {
	from transport.NodeID
	msg  transport.Message
}

// NewStandbyStore starts a store refreshing rt, which must be the
// suspended standby copy of its subjob.
func NewStandbyStore(rt *subjob.Runtime) *StandbyStore {
	return NewStandbyStoreWith(rt, nil)
}

// NewStandbyStoreWith starts a store refreshing rt that also persists
// checkpoints through catalog (when non-nil) before acknowledging them,
// so the in-memory refresh leaves a durable trail a cold restart can
// restore from. Full snapshots are persisted whenever they decode — even
// ones skipped because the standby is active or ahead, since a full is a
// valid restore base regardless of the standby's live state. Deltas are
// persisted only when applied: an applied delta extends the in-memory
// chain, whose predecessor was persisted by the same rule, so the
// cataloged chain always mirrors the in-memory one.
func NewStandbyStoreWith(rt *subjob.Runtime, catalog *checkpoint.Catalog) *StandbyStore {
	s := &StandbyStore{
		rt:      rt,
		catalog: catalog,
		work:    make(chan storeReq, 128),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	rt.Machine().RegisterStream(subjob.CkptStream(rt.Spec().ID), func(from transport.NodeID, msg transport.Message) {
		select {
		case s.work <- storeReq{from: from, msg: msg}:
		case <-s.stop:
		}
	})
	go s.run()
	return s
}

// Retarget points the store at a different standby runtime (after a
// fail-stop promotion instantiates a new secondary).
func (s *StandbyStore) Retarget(rt *subjob.Runtime) {
	s.mu.Lock()
	old := s.rt
	s.rt = rt
	s.chainOK = false
	s.mu.Unlock()
	if old.Machine() != rt.Machine() {
		old.Machine().UnregisterStream(subjob.CkptStream(old.Spec().ID))
		rt.Machine().RegisterStream(subjob.CkptStream(rt.Spec().ID), func(from transport.NodeID, msg transport.Message) {
			select {
			case s.work <- storeReq{from: from, msg: msg}:
			case <-s.stop:
			}
		})
	}
}

func (s *StandbyStore) runtime() *subjob.Runtime {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rt
}

func (s *StandbyStore) run() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			// Shutdown fence: Close unregisters the handler before closing
			// stop, so the work queue no longer grows; applying what is
			// already queued keeps the acknowledgments the senders are
			// waiting on from silently vanishing.
			for {
				select {
				case req := <-s.work:
					s.apply(req)
				default:
					return
				}
			}
		case req := <-s.work:
			s.apply(req)
		}
	}
}

func (s *StandbyStore) apply(req storeReq) {
	if subjob.IsPartial(req.msg.State) {
		s.applyPartial(req)
		return
	}
	snap, delta, err := subjob.DecodeCheckpoint(req.msg.State)
	if err != nil {
		return
	}
	rt := s.runtime()

	s.mu.Lock()
	chain, chainOK := s.chain, s.chainOK
	s.mu.Unlock()
	if delta != nil && (!chainOK || delta.PrevSeq != chain) {
		// The delta does not extend the state the standby holds (chain broken
		// by an active period or a lost checkpoint): dropping it without an
		// acknowledgment keeps the data recoverable upstream until the
		// manager re-bases with a full snapshot.
		s.mu.Lock()
		s.deltaDrops++
		onChainBreak := s.onChainBreak
		s.mu.Unlock()
		if onChainBreak != nil {
			onChainBreak()
		}
		return
	}

	var ckptPos map[string]uint64
	if delta != nil {
		ckptPos = delta.Consumed
	} else {
		ckptPos = snap.Consumed
	}

	applied := false
	suspended := false
	rt.Exclusive(func() {
		suspended = rt.Suspended()
		if !suspended {
			return
		}
		if !positionsCover(ckptPos, rt.ConsumedPositions()) {
			// The checkpoint was captured before the standby's current state
			// (a capture in flight across a rollback, which re-suspends the
			// standby at its live — newer — positions). Applying it would
			// rewind consumed positions and the output sequence while the
			// input queue's dedup floor stays put, so the next activation
			// would drop the replayed gap as duplicates and permanently
			// shift the output sequence mapping. The standby's state covers
			// everything the checkpoint does, so skip it (acknowledged: the
			// skip leaves applied=false with suspended=true below).
			return
		}
		if delta != nil {
			applied = rt.ApplyDelta(delta) == nil
		} else {
			applied = rt.Restore(snap) == nil
		}
	})
	s.mu.Lock()
	if applied {
		s.applied++
		s.chain = req.msg.Seq
		s.chainOK = true
		s.lastRefresh = rt.Machine().Clock().Now()
	} else {
		s.skipped++
		// A live standby's state supersedes checkpoints, a stale checkpoint
		// is behind it, and a failed apply leaves it indeterminate; in every
		// case the chain must restart from the next full snapshot.
		s.chainOK = false
	}
	ack := applied || suspended || delta == nil
	s.mu.Unlock()
	if !ack {
		return
	}
	// Persist-before-ack. Fulls are cataloged whenever they decode (any
	// full is a valid cold-restart base); deltas only when applied, which
	// guarantees their cataloged predecessor exists. A failed persist
	// withholds the acknowledgment — upstream must keep the data the
	// catalog cannot recover — and invalidates the chain so the manager
	// re-bases with a full snapshot.
	if s.catalog != nil && (delta == nil || applied) {
		units := 0
		if delta != nil {
			units = delta.ElementUnits()
		} else {
			units = snap.ElementUnits()
		}
		if err := s.catalog.Put(rt.Spec().ID, req.msg.Seq, units, req.msg.State); err != nil {
			s.mu.Lock()
			s.chainOK = false
			onChainBreak := s.onChainBreak
			s.mu.Unlock()
			if onChainBreak != nil {
				onChainBreak()
			}
			return
		}
	}
	rt.Machine().Send(req.from, transport.Message{
		Kind:    transport.KindControl,
		Stream:  subjob.CkptAckStream(rt.Spec().ID),
		Command: "ckpt-stored",
		Seq:     req.msg.Seq,
	})
}

// applyPartial handles an unchained bounded-error frame. Partials patch
// only the hot byte ranges of the standby's state, so a frame that cannot
// be applied — the standby is active, ahead, or the patch misfits — is
// simply skipped: the cold remainder stays stale, which is exactly the
// divergence the approx policy's error budget accounts for. Every frame
// that decodes is acknowledged, letting upstream trim on the partial
// cadence (the source of approx's retention savings), and none are
// persisted to the catalog: a cold restart restores from the last full
// snapshot, approximate by design.
func (s *StandbyStore) applyPartial(req storeReq) {
	part, err := subjob.DecodePartial(req.msg.State)
	if err != nil {
		return
	}
	rt := s.runtime()

	s.mu.Lock()
	stale := s.partialApplied > 0 && req.msg.Seq <= s.partialSeq
	s.mu.Unlock()

	applied := false
	if !stale {
		rt.Exclusive(func() {
			if !rt.Suspended() {
				return
			}
			if !positionsCover(part.Consumed, rt.ConsumedPositions()) {
				return
			}
			applied = rt.ApplyPartial(part) == nil
		})
	}

	s.mu.Lock()
	if applied {
		s.partialApplied++
		s.partialSeq = req.msg.Seq
		s.lastRefresh = rt.Machine().Clock().Now()
		s.coldBytes = part.ColdBytes
		// A partial mutates state out of band of the delta chain: any delta
		// captured against the pre-partial base no longer folds cleanly.
		s.chainOK = false
	} else {
		s.partialSkipped++
	}
	s.mu.Unlock()

	rt.Machine().Send(req.from, transport.Message{
		Kind:    transport.KindControl,
		Stream:  subjob.CkptAckStream(rt.Spec().ID),
		Command: "ckpt-stored",
		Seq:     req.msg.Seq,
	})
}

// PartialStats returns how many unchained partial frames refreshed the
// standby, how many were skipped, and the cold bytes the last applied
// frame did not cover.
func (s *StandbyStore) PartialStats() (applied, skipped int, coldBytes uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.partialApplied, s.partialSkipped, s.coldBytes
}

// LastRefresh returns when a checkpoint (full, delta or partial) last
// refreshed the standby's in-memory state; the zero time if none has.
func (s *StandbyStore) LastRefresh() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastRefresh
}

// SetOnChainBreak installs a callback invoked (from the store goroutine)
// whenever a delta is dropped because it did not extend the standby's
// chain; the lifecycle uses it to force an immediate rebase.
func (s *StandbyStore) SetOnChainBreak(fn func()) {
	s.mu.Lock()
	s.onChainBreak = fn
	s.mu.Unlock()
}

// Applied returns how many checkpoints refreshed the standby in memory.
func (s *StandbyStore) Applied() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Skipped returns how many checkpoints arrived while the standby was
// active and were acknowledged without being applied.
func (s *StandbyStore) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// DeltaDrops returns how many delta checkpoints were dropped,
// unacknowledged, because they did not extend the standby's state chain.
func (s *StandbyStore) DeltaDrops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deltaDrops
}

// Persisted returns how many checkpoints this store made durable through
// its catalog (always 0 without one).
func (s *StandbyStore) Persisted() int {
	if s.catalog == nil {
		return 0
	}
	return s.catalog.Counters(s.runtime().Spec().ID).Persisted
}

// Close stops the store. The handler is unregistered before stop closes
// so run()'s shutdown drain observes the final backlog; the reverse
// order could accept a checkpoint into the queue after the drain and
// drop its acknowledgment.
func (s *StandbyStore) Close() {
	select {
	case <-s.stop:
		return
	default:
	}
	rt := s.runtime()
	rt.Machine().UnregisterStream(subjob.CkptStream(rt.Spec().ID))
	close(s.stop)
	<-s.done
}
