package core

import (
	"testing"
	"time"

	"streamha/internal/pe"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// deltaHarness adds raw checkpoint sends and a single ack listener on top
// of standbyRig, for driving the incremental protocol by hand.
type deltaHarness struct {
	*standbyRig
	acks chan uint64
	base []byte // fresh CounterLogic{Pad:1} state, the full-snapshot payload
}

func newDeltaHarness(t *testing.T) *deltaHarness {
	t.Helper()
	r := newStandbyRig(t)
	h := &deltaHarness{
		standbyRig: r,
		acks:       make(chan uint64, 8),
		base:       (&pe.CounterLogic{Pad: 1}).Snapshot(),
	}
	r.priM.RegisterStream(subjob.CkptAckStream("j/sj"), func(_ transport.NodeID, msg transport.Message) {
		h.acks <- msg.Seq
	})
	return h
}

func (h *deltaHarness) send(t *testing.T, seq uint64, state []byte) {
	t.Helper()
	h.priM.Send(h.secM.ID(), transport.Message{
		Kind:   transport.KindCheckpoint,
		Stream: subjob.CkptStream("j/sj"),
		Seq:    seq,
		State:  state,
	})
}

func (h *deltaHarness) sendFull(t *testing.T, seq, consumed uint64) {
	t.Helper()
	snap := &subjob.Snapshot{
		SubjobID: "j/sj",
		Consumed: map[string]uint64{"in": consumed},
		PEStates: [][]byte{append([]byte(nil), h.base...)},
		Output:   h.sec.Out().Snapshot(),
	}
	state, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	h.send(t, seq, state)
}

// sendDelta ships a delta chaining onto prevSeq that patches the last pad
// byte of the PE state to mark.
func (h *deltaHarness) sendDelta(t *testing.T, seq, prevSeq, consumed uint64, mark byte) {
	t.Helper()
	p := pe.AppendPatchHeader(nil, len(h.base), 1)
	p = pe.AppendPatchChunk(p, len(h.base)-1, []byte{mark})
	d := &subjob.Delta{
		SubjobID: "j/sj",
		PrevSeq:  prevSeq,
		Consumed: map[string]uint64{"in": consumed},
		PEDeltas: [][]byte{p},
		PEFull:   [][]byte{nil},
	}
	state, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	h.send(t, seq, state)
}

func (h *deltaHarness) expectNoAck(t *testing.T) {
	t.Helper()
	select {
	case seq := <-h.acks:
		t.Fatalf("unexpected ack %d", seq)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestStandbyStoreFoldsDeltaChain(t *testing.T) {
	h := newDeltaHarness(t)
	store := NewStandbyStore(h.sec)
	defer store.Close()

	h.sendFull(t, 1, 42)
	expectAck(t, h.acks, 1)

	h.sendDelta(t, 2, 1, 50, 0xAB)
	expectAck(t, h.acks, 2)
	if store.Applied() != 2 || store.DeltaDrops() != 0 {
		t.Fatalf("applied=%d drops=%d", store.Applied(), store.DeltaDrops())
	}
	if got := h.sec.ConsumedPositions()["in"]; got != 50 {
		t.Fatalf("standby position %d, want 50 (delta refresh)", got)
	}
	st := h.sec.Snapshot().PEStates[0]
	if st[len(st)-1] != 0xAB {
		t.Fatalf("patched pad byte = %#x, want 0xAB", st[len(st)-1])
	}

	// Replaying the delta no longer chains (chain is at 2): dropped, and
	// critically NOT acknowledged — upstream must keep that data.
	h.sendDelta(t, 2, 1, 50, 0xCD)
	h.expectNoAck(t)
	if store.DeltaDrops() != 1 {
		t.Fatalf("drops=%d, want 1", store.DeltaDrops())
	}
	if got := h.sec.Snapshot().PEStates[0]; got[len(got)-1] != 0xAB {
		t.Fatal("dropped delta mutated the standby")
	}
}

func TestStandbyStoreActivePeriodBreaksChain(t *testing.T) {
	h := newDeltaHarness(t)
	store := NewStandbyStore(h.sec)
	defer store.Close()

	h.sendFull(t, 1, 10)
	expectAck(t, h.acks, 1)

	h.sec.Resume() // transient-failure takeover: live state supersedes

	// A chaining delta while active: not applied and not acknowledged —
	// the live state diverges from the checkpoint chain immediately.
	h.sendDelta(t, 2, 1, 20, 0x01)
	h.expectNoAck(t)
	deadline := time.Now().Add(time.Second)
	for store.Skipped() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if store.Skipped() != 1 {
		t.Fatalf("skipped=%d, want 1", store.Skipped())
	}

	// The chain is now broken: even a delta chaining onto seq 2 is dropped.
	h.sendDelta(t, 3, 2, 30, 0x02)
	h.expectNoAck(t)
	if store.DeltaDrops() != 1 {
		t.Fatalf("drops=%d, want 1", store.DeltaDrops())
	}

	// Fulls while active stay acknowledged (trims proceed) but unapplied.
	h.sendFull(t, 4, 40)
	expectAck(t, h.acks, 4)
	if store.Applied() != 1 {
		t.Fatalf("applied=%d, want 1 (only the initial full)", store.Applied())
	}

	// Back to passive: the next full re-bases and deltas fold again.
	h.sec.Suspend()
	h.sendFull(t, 5, 50)
	expectAck(t, h.acks, 5)
	h.sendDelta(t, 6, 5, 60, 0xEE)
	expectAck(t, h.acks, 6)
	if store.Applied() != 3 {
		t.Fatalf("applied=%d, want 3", store.Applied())
	}
	if got := h.sec.ConsumedPositions()["in"]; got != 60 {
		t.Fatalf("standby position %d, want 60", got)
	}
}
