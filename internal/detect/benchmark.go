package detect

import (
	"sync"
	"time"

	"streamha/internal/clock"
	"streamha/internal/machine"
)

// BenchmarkConfig configures a benchmark (probe-based) detector.
type BenchmarkConfig struct {
	// Machine is the monitored machine; the probe executes on it, like the
	// paper's embedded standard data set.
	Machine *machine.Machine
	// Clock is the time source.
	Clock clock.Clock
	// Monitor samples the machine's CPU load at fine granularity.
	Monitor *machine.LoadMonitor
	// Granularity is how often the load is checked (the paper uses 50 ms;
	// experiments here run at one-tenth scale).
	Granularity time.Duration
	// LoadThreshold is the utilization above which the probe is triggered
	// (L_th in the paper).
	LoadThreshold float64
	// ProbeWork is the CPU work of processing the standard data set.
	ProbeWork time.Duration
	// Baseline is the probe's duration on an idle machine; zero defaults to
	// ProbeWork (full CPU share).
	Baseline time.Duration
	// Factor is the multiple of Baseline beyond which a failure is declared
	// (P_th in the paper).
	Factor float64
	// Cooldown is how long after a declaration the detector stays quiet
	// before probing again (default 100 ms), so one excursion yields one
	// declaration.
	Cooldown time.Duration
	// OnDetect is invoked from the detector goroutine on each declaration.
	OnDetect func(at time.Time)
}

// Benchmark is the probe-based detector the paper evaluates and rejects:
// when the sampled load exceeds LoadThreshold it processes a standard data
// set and declares a failure if the measured time exceeds the idle-machine
// baseline by Factor. Because the probe contends with whatever the
// application is doing at that moment, bursty traffic inflates probe times
// even at moderate loads — the over-sensitivity and false alarms of
// Figures 12 and 13 emerge from that contention rather than being
// hard-coded.
type Benchmark struct {
	cfg BenchmarkConfig

	mu          sync.Mutex
	events      []Event
	lastDeclare time.Time
	started     bool
	stop        chan struct{}
	done        chan struct{}
}

// NewBenchmark creates a benchmark detector.
func NewBenchmark(cfg BenchmarkConfig) *Benchmark {
	if cfg.Baseline <= 0 {
		cfg.Baseline = cfg.ProbeWork
	}
	if cfg.Factor <= 0 {
		cfg.Factor = 2
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 100 * time.Millisecond
	}
	return &Benchmark{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start launches the sampling loop.
func (b *Benchmark) Start() {
	b.mu.Lock()
	if b.started {
		b.mu.Unlock()
		return
	}
	b.started = true
	b.mu.Unlock()
	go b.run()
}

// Stop halts the detector.
func (b *Benchmark) Stop() {
	b.mu.Lock()
	if !b.started {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	select {
	case <-b.stop:
	default:
		close(b.stop)
	}
	<-b.done
}

func (b *Benchmark) run() {
	defer close(b.done)
	t := b.cfg.Clock.NewTicker(b.cfg.Granularity)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C():
			b.sample()
		}
	}
}

func (b *Benchmark) sample() {
	util := b.cfg.Monitor.Utilization()
	if util <= b.cfg.LoadThreshold {
		return
	}
	b.mu.Lock()
	cooling := !b.lastDeclare.IsZero() && b.cfg.Clock.Now().Sub(b.lastDeclare) < b.cfg.Cooldown
	b.mu.Unlock()
	if cooling {
		return
	}

	start := b.cfg.Clock.Now()
	b.cfg.Machine.CPU().Execute(b.cfg.ProbeWork)
	elapsed := b.cfg.Clock.Since(start)
	if float64(elapsed) <= float64(b.cfg.Baseline)*b.cfg.Factor {
		return
	}
	now := b.cfg.Clock.Now()
	b.mu.Lock()
	b.lastDeclare = now
	b.events = append(b.events, Event{Type: EventFailure, At: now})
	b.mu.Unlock()
	if b.cfg.OnDetect != nil {
		b.cfg.OnDetect(now)
	}
}

// Events returns a copy of the declared events.
func (b *Benchmark) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}
