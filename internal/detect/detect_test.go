package detect

import (
	"sync"
	"testing"
	"time"

	"streamha/internal/clock"
	"streamha/internal/machine"
	"streamha/internal/transport"
)

type detRig struct {
	net  *transport.Mem
	tgt  *machine.Machine
	mon  *machine.Machine
	resp *Responder
}

func newDetRig(t *testing.T) *detRig {
	t.Helper()
	net := transport.NewMem(transport.MemConfig{})
	t.Cleanup(net.Close)
	clk := clock.New()
	tgt, err := machine.New("target", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := machine.New("monitor", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	resp := NewResponder(tgt, 200*time.Microsecond)
	t.Cleanup(resp.Close)
	return &detRig{net: net, tgt: tgt, mon: mon, resp: resp}
}

func newHB(r *detRig, interval time.Duration, miss int, onFail, onRec func(time.Time)) *Heartbeat {
	return NewHeartbeat(HeartbeatConfig{
		Monitor:       r.mon,
		Clock:         clock.New(),
		Target:        r.tgt.ID(),
		Session:       "t",
		Interval:      interval,
		MissThreshold: miss,
		OnFailure:     onFail,
		OnRecovery:    onRec,
	})
}

func TestHeartbeatStaysQuietOnHealthyTarget(t *testing.T) {
	r := newDetRig(t)
	hb := newHB(r, 20*time.Millisecond, 1, nil, nil)
	hb.Start()
	defer hb.Stop()
	time.Sleep(300 * time.Millisecond)
	if hb.Failed() {
		t.Fatal("declared failure on a healthy target")
	}
	for _, e := range hb.Events() {
		if e.Type == EventFailure {
			t.Fatalf("false alarm at %v", e.At)
		}
	}
}

func TestHeartbeatDetectsStallAndRecovery(t *testing.T) {
	r := newDetRig(t)
	var mu sync.Mutex
	var failedAt, recoveredAt time.Time
	hb := newHB(r, 20*time.Millisecond, 1,
		func(at time.Time) { mu.Lock(); failedAt = at; mu.Unlock() },
		func(at time.Time) { mu.Lock(); recoveredAt = at; mu.Unlock() })
	hb.Start()
	defer hb.Stop()
	time.Sleep(150 * time.Millisecond) // past startup grace

	r.tgt.CPU().SetBackgroundLoad(1)
	deadline := time.Now().Add(2 * time.Second)
	for !hb.Failed() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !hb.Failed() {
		t.Fatal("stall not detected")
	}
	r.tgt.CPU().SetBackgroundLoad(0)
	deadline = time.Now().Add(2 * time.Second)
	for hb.Failed() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if hb.Failed() {
		t.Fatal("recovery not detected")
	}
	mu.Lock()
	defer mu.Unlock()
	if failedAt.IsZero() || recoveredAt.IsZero() || !recoveredAt.After(failedAt) {
		t.Fatalf("callbacks: failed=%v recovered=%v", failedAt, recoveredAt)
	}
}

func TestHeartbeatDetectsCrash(t *testing.T) {
	r := newDetRig(t)
	hb := newHB(r, 20*time.Millisecond, 3, nil, nil)
	hb.Start()
	defer hb.Stop()
	time.Sleep(150 * time.Millisecond)
	r.tgt.Crash()
	deadline := time.Now().Add(2 * time.Second)
	for !hb.Failed() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !hb.Failed() {
		t.Fatal("crash not detected")
	}
}

func TestHeartbeatThreeMissSlowerThanOneMiss(t *testing.T) {
	measure := func(miss int) time.Duration {
		r := newDetRig(t)
		hb := newHB(r, 20*time.Millisecond, miss, nil, nil)
		hb.Start()
		defer hb.Stop()
		time.Sleep(150 * time.Millisecond)
		start := time.Now()
		r.tgt.CPU().SetBackgroundLoad(1)
		deadline := time.Now().Add(3 * time.Second)
		for !hb.Failed() && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if !hb.Failed() {
			t.Fatalf("no detection at miss threshold %d", miss)
		}
		return time.Since(start)
	}
	one := measure(1)
	three := measure(3)
	if three < one+20*time.Millisecond {
		t.Fatalf("3-miss detection (%v) not slower than 1-miss (%v)", three, one)
	}
}

func TestBenchmarkDetectorFiresUnderLoad(t *testing.T) {
	r := newDetRig(t)
	lm := machine.NewLoadMonitor(r.tgt.CPU(), clock.New(), 5*time.Millisecond)
	defer lm.Stop()
	bm := NewBenchmark(BenchmarkConfig{
		Machine:       r.tgt,
		Clock:         clock.New(),
		Monitor:       lm,
		Granularity:   5 * time.Millisecond,
		LoadThreshold: 0.5,
		ProbeWork:     time.Millisecond,
		Factor:        2,
		Cooldown:      50 * time.Millisecond,
	})
	bm.Start()
	defer bm.Stop()

	time.Sleep(50 * time.Millisecond)
	if n := len(bm.Events()); n != 0 {
		t.Fatalf("benchmark fired %d times on idle machine", n)
	}
	r.tgt.CPU().SetBackgroundLoad(0.9)
	deadline := time.Now().Add(2 * time.Second)
	for len(bm.Events()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(bm.Events()) == 0 {
		t.Fatal("benchmark never fired at 90% load")
	}
}

func TestBenchmarkCooldownLimitsRate(t *testing.T) {
	r := newDetRig(t)
	lm := machine.NewLoadMonitor(r.tgt.CPU(), clock.New(), 2*time.Millisecond)
	defer lm.Stop()
	bm := NewBenchmark(BenchmarkConfig{
		Machine:       r.tgt,
		Clock:         clock.New(),
		Monitor:       lm,
		Granularity:   2 * time.Millisecond,
		LoadThreshold: 0.5,
		ProbeWork:     500 * time.Microsecond,
		Factor:        1.5,
		Cooldown:      100 * time.Millisecond,
	})
	bm.Start()
	defer bm.Stop()
	r.tgt.CPU().SetBackgroundLoad(0.95)
	time.Sleep(250 * time.Millisecond)
	r.tgt.CPU().SetBackgroundLoad(0)
	if n := len(bm.Events()); n > 4 {
		t.Fatalf("cooldown failed: %d declarations in 250ms", n)
	}
}

func TestScoreMatchesDeclarationsToSpikes(t *testing.T) {
	t0 := time.Unix(0, 0)
	spikes := []Spike{
		{Start: t0, End: t0.Add(100 * time.Millisecond)},
		{Start: t0.Add(500 * time.Millisecond), End: t0.Add(600 * time.Millisecond)},
	}
	events := []Event{
		{Type: EventFailure, At: t0.Add(30 * time.Millisecond)},  // hit spike 1
		{Type: EventFailure, At: t0.Add(300 * time.Millisecond)}, // false alarm
		{Type: EventFailure, At: t0.Add(610 * time.Millisecond)}, // hit spike 2 within grace
		{Type: EventRecovery, At: t0.Add(700 * time.Millisecond)},
	}
	q := Score(spikes, events, 50*time.Millisecond)
	if q.Spikes != 2 || q.Detected != 2 || q.Declarations != 3 || q.FalseAlarms != 1 {
		t.Fatalf("quality %+v", q)
	}
	if q.DetectionRatio() != 1 {
		t.Fatalf("detection ratio %f", q.DetectionRatio())
	}
	if q.FalseAlarmRatio() < 0.32 || q.FalseAlarmRatio() > 0.34 {
		t.Fatalf("false alarm ratio %f", q.FalseAlarmRatio())
	}
	// Mean delay: spike1 hit at +30ms, spike2 hit at +110ms → 70ms.
	if q.MeanDelay != 70*time.Millisecond {
		t.Fatalf("mean delay %v", q.MeanDelay)
	}
}

func TestScoreEmpty(t *testing.T) {
	q := Score(nil, nil, 0)
	if q.DetectionRatio() != 0 || q.FalseAlarmRatio() != 0 {
		t.Fatalf("empty quality %+v", q)
	}
}

func TestCrashedResponderSendsNoPongsAndBurnsNoCPU(t *testing.T) {
	net := transport.NewMem(transport.MemConfig{})
	t.Cleanup(net.Close)
	clk := clock.New()
	tgt, err := machine.New("target", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := machine.New("monitor", clk, net)
	if err != nil {
		t.Fatal(err)
	}
	resp := NewResponder(tgt, 50*time.Millisecond)
	t.Cleanup(resp.Close)

	pongs := make(chan uint64, 64)
	mon.RegisterStream("hbreply|crashed", func(_ transport.NodeID, msg transport.Message) {
		pongs <- msg.Seq
	})

	tgt.Crash()
	before := tgt.CPU().WorkDone()
	// Inject pings directly into the responder's queue, modeling pings
	// that were already accepted when the crash hit: the crashed machine's
	// transport would drop newly arriving ones before they got here.
	for i := 1; i <= 8; i++ {
		resp.work <- pingReq{from: mon.ID(), seq: uint64(i), replyStream: "hbreply|crashed"}
	}
	time.Sleep(100 * time.Millisecond)

	if got := tgt.CPU().WorkDone() - before; got != 0 {
		t.Fatalf("crashed responder burned %v of simulated CPU", got)
	}
	if n := len(pongs); n != 0 {
		t.Fatalf("crashed responder sent %d pongs", n)
	}
}

func TestResponderDropsWhenSaturated(t *testing.T) {
	r := newDetRig(t)
	// Stall the target so replies queue up; flood with pings.
	r.tgt.CPU().SetBackgroundLoad(1)
	pongs := make(chan uint64, 256)
	r.mon.RegisterStream("hbreply|flood", func(_ transport.NodeID, msg transport.Message) {
		pongs <- msg.Seq
	})
	for i := 1; i <= 100; i++ {
		r.mon.Send(r.tgt.ID(), transport.Message{
			Kind:    transport.KindPing,
			Stream:  "hb|target",
			Command: "hbreply|flood",
			Seq:     uint64(i),
		})
	}
	time.Sleep(50 * time.Millisecond)
	r.tgt.CPU().SetBackgroundLoad(0)
	time.Sleep(100 * time.Millisecond)
	if got := len(pongs); got > 40 {
		t.Fatalf("overloaded responder answered %d of 100 pings; queue should have dropped most", got)
	}
}
