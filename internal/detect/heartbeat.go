// Package detect implements transient-failure detection: the conventional
// heartbeat method the paper ends up recommending, and the benchmark
// (probe-based) method it compares against, together with quality scoring
// (detection ratio, false-alarm ratio, detection delay — Figures 12/13).
package detect

import (
	"sync"
	"time"

	"streamha/internal/clock"
	"streamha/internal/machine"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// DefaultReplyCost is the CPU work a machine spends producing one
// heartbeat reply. It is sized so that replies comfortably beat the
// heartbeat interval below ~85% machine load and decisively miss it at
// 95%+ — the paper's detection knee (Figure 12: heartbeat detection is
// rare at low loads and near-certain at 90%+).
const DefaultReplyCost = 2 * time.Millisecond

// Responder answers heartbeat pings on a machine, paying ReplyCost of CPU
// work per reply so that replies slow down with machine load.
type Responder struct {
	m         *machine.Machine
	replyCost time.Duration
	work      chan pingReq
	stop      chan struct{}
	done      chan struct{}
}

type pingReq struct {
	from        transport.NodeID
	seq         uint64
	replyStream string
}

// NewResponder starts a heartbeat responder on m. replyCost <= 0 selects
// DefaultReplyCost.
func NewResponder(m *machine.Machine, replyCost time.Duration) *Responder {
	if replyCost <= 0 {
		replyCost = DefaultReplyCost
	}
	r := &Responder{
		m:         m,
		replyCost: replyCost,
		work:      make(chan pingReq, 16),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	m.RegisterStream(subjob.HeartbeatStream(string(m.ID())), func(from transport.NodeID, msg transport.Message) {
		select {
		case r.work <- pingReq{from: from, seq: msg.Seq, replyStream: msg.Command}:
		default:
			// The responder is saturated — drop the ping, as an overloaded
			// machine would.
		}
	})
	go r.run()
	return r
}

func (r *Responder) run() {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			return
		case req := <-r.work:
			// A crashed machine does nothing: check before paying the reply
			// cost, so pings queued around the crash burn no simulated CPU.
			if r.m.Crashed() {
				continue
			}
			r.m.CPU().ExecutePriority(r.replyCost)
			if r.m.Crashed() {
				continue
			}
			r.m.Send(req.from, transport.Message{
				Kind:   transport.KindPong,
				Stream: req.replyStream,
				Seq:    req.seq,
			})
		}
	}
}

// Close stops the responder.
func (r *Responder) Close() {
	select {
	case <-r.stop:
		return
	default:
	}
	close(r.stop)
	<-r.done
	r.m.UnregisterStream(subjob.HeartbeatStream(string(r.m.ID())))
}

// EventType classifies detector events.
type EventType int

// Detector event types.
const (
	EventFailure EventType = iota
	EventRecovery
)

// Event is one detector declaration with its timestamp.
type Event struct {
	Type EventType
	At   time.Time
}

// HeartbeatConfig configures a heartbeat detector.
type HeartbeatConfig struct {
	// Monitor is the machine the detector runs on (typically the secondary).
	Monitor *machine.Machine
	// Clock is the time source.
	Clock clock.Clock
	// Target is the monitored machine's node ID.
	Target transport.NodeID
	// Session uniquely names this detector's reply stream.
	Session string
	// Interval is the ping period (the paper sweeps 100–500 ms; experiments
	// here run at one-tenth scale).
	Interval time.Duration
	// MissThreshold is the number of consecutive missed replies that
	// declares a failure: 3 for conventional passive standby, 1 for the
	// hybrid method's aggressive trigger.
	MissThreshold int
	// RecoverThreshold is the number of replies after a declared failure
	// that declares recovery (default 1).
	RecoverThreshold int
	// OnFailure and OnRecovery are invoked from the detector goroutine.
	OnFailure  func(at time.Time)
	OnRecovery func(at time.Time)
}

// startupGrace is the number of initial pings whose misses are ignored,
// so deployment transients on a freshly started pipeline do not produce a
// spurious first-miss switchover.
const startupGrace = 3

// Heartbeat is the conventional ping/reply failure detector. Every
// interval it pings the target; when MissThreshold consecutive intervals
// pass without a reply it declares a failure, and when replies resume it
// declares recovery.
type Heartbeat struct {
	cfg HeartbeatConfig

	mu         sync.Mutex
	sent       uint64
	lastPong   uint64
	lastPongAt time.Time
	misses     int
	failed     bool
	okSince    int
	events     []Event
	started    bool
	stop       chan struct{}
	done       chan struct{}
}

// NewHeartbeat creates a heartbeat detector.
func NewHeartbeat(cfg HeartbeatConfig) *Heartbeat {
	if cfg.MissThreshold <= 0 {
		cfg.MissThreshold = 3
	}
	if cfg.RecoverThreshold <= 0 {
		cfg.RecoverThreshold = 1
	}
	return &Heartbeat{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start registers the reply handler and launches the ping loop.
func (h *Heartbeat) Start() {
	h.mu.Lock()
	if h.started {
		h.mu.Unlock()
		return
	}
	h.started = true
	h.mu.Unlock()
	h.cfg.Monitor.RegisterStream(h.replyStream(), h.onPong)
	go h.run()
}

// Stop halts the detector.
func (h *Heartbeat) Stop() {
	h.mu.Lock()
	if !h.started {
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
	h.cfg.Monitor.UnregisterStream(h.replyStream())
}

func (h *Heartbeat) replyStream() string { return "hbreply|" + h.cfg.Session }

func (h *Heartbeat) run() {
	defer close(h.done)
	t := h.cfg.Clock.NewTicker(h.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C():
			h.tick()
		}
	}
}

// missSlack absorbs scheduling jitter in the reply path: a ping counts as
// missed only when the quiet period exceeds the interval by this margin.
func (h *Heartbeat) missSlack() time.Duration {
	slack := h.cfg.Interval / 4
	if slack < 4*time.Millisecond {
		slack = 4 * time.Millisecond
	}
	return slack
}

func (h *Heartbeat) tick() {
	now := h.cfg.Clock.Now()
	if h.cfg.Monitor.Crashed() {
		// A crashed monitor is blind, not informed: it cannot distinguish
		// "target down" from "my own machine down", so it declares nothing.
		// Resetting the quiet-period baseline also keeps a recovered
		// monitor from counting its own blackout as target misses.
		h.mu.Lock()
		h.lastPongAt = now
		h.misses = 0
		h.mu.Unlock()
		return
	}
	var declareFailure bool
	h.mu.Lock()
	if h.lastPongAt.IsZero() {
		h.lastPongAt = now
	}
	// Account the previous ping before sending the next: if replies have
	// been quiet for more than an interval (plus slack), it is a miss.
	if h.sent > startupGrace {
		if h.lastPong < h.sent && now.Sub(h.lastPongAt) > h.cfg.Interval+h.missSlack() {
			h.misses++
			if !h.failed && h.misses >= h.cfg.MissThreshold {
				h.failed = true
				h.okSince = 0
				h.events = append(h.events, Event{Type: EventFailure, At: now})
				declareFailure = true
			}
		} else if h.lastPong >= h.sent {
			h.misses = 0
		}
	}
	h.sent++
	seq := h.sent
	h.mu.Unlock()

	if declareFailure && h.cfg.OnFailure != nil {
		h.cfg.OnFailure(now)
	}
	h.cfg.Monitor.Send(h.cfg.Target, transport.Message{
		Kind:    transport.KindPing,
		Stream:  subjob.HeartbeatStream(string(h.cfg.Target)),
		Command: h.replyStream(),
		Seq:     seq,
	})
}

func (h *Heartbeat) onPong(_ transport.NodeID, msg transport.Message) {
	now := h.cfg.Clock.Now()
	var declareRecovery bool
	h.mu.Lock()
	if msg.Seq > h.lastPong {
		h.lastPong = msg.Seq
		h.lastPongAt = now
	}
	// A reply for the most recent ping clears the miss streak even between
	// ticks.
	if h.lastPong >= h.sent {
		h.misses = 0
	}
	if h.failed && msg.Seq >= h.sent {
		h.okSince++
		if h.okSince >= h.cfg.RecoverThreshold {
			h.failed = false
			h.misses = 0
			h.events = append(h.events, Event{Type: EventRecovery, At: now})
			declareRecovery = true
		}
	}
	h.mu.Unlock()
	if declareRecovery && h.cfg.OnRecovery != nil {
		h.cfg.OnRecovery(now)
	}
}

// Failed reports whether the detector currently considers the target
// failed.
func (h *Heartbeat) Failed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.failed
}

// HeartbeatStats is a JSON-marshalable view of a heartbeat detector's
// state, exported through the metrics registry.
type HeartbeatStats struct {
	Target     string `json:"target"`
	Sent       uint64 `json:"pings_sent"`
	LastPong   uint64 `json:"last_pong_seq"`
	Misses     int    `json:"consecutive_misses"`
	Failed     bool   `json:"failed"`
	Failures   int    `json:"failures_declared"`
	Recoveries int    `json:"recoveries_declared"`
}

// Stats captures the detector's ping/reply position and declaration
// counts.
func (h *Heartbeat) Stats() HeartbeatStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HeartbeatStats{
		Target:   string(h.cfg.Target),
		Sent:     h.sent,
		LastPong: h.lastPong,
		Misses:   h.misses,
		Failed:   h.failed,
	}
	for _, e := range h.events {
		if e.Type == EventFailure {
			st.Failures++
		} else {
			st.Recoveries++
		}
	}
	return st
}

// Events returns a copy of the declared events.
func (h *Heartbeat) Events() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Event(nil), h.events...)
}
