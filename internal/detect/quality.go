package detect

import "time"

// Spike is one ground-truth transient failure interval, as reported by the
// failure injector.
type Spike struct {
	Start time.Time
	End   time.Time
}

// Quality scores a detector's declarations against ground truth, yielding
// the metrics of the paper's Section V-C.
type Quality struct {
	// Spikes is the number of injected load spikes.
	Spikes int
	// Detected is how many spikes had at least one failure declaration
	// between their start and a grace period after their end.
	Detected int
	// Declarations is the total number of failure declarations.
	Declarations int
	// FalseAlarms is the number of declarations outside every spike window.
	FalseAlarms int
	// MeanDelay is the mean time from spike start to its first declaration,
	// over detected spikes.
	MeanDelay time.Duration
}

// DetectionRatio returns Detected / Spikes (the paper's background load
// detection ratio).
func (q Quality) DetectionRatio() float64 {
	if q.Spikes == 0 {
		return 0
	}
	return float64(q.Detected) / float64(q.Spikes)
}

// FalseAlarmRatio returns FalseAlarms / Declarations.
func (q Quality) FalseAlarmRatio() float64 {
	if q.Declarations == 0 {
		return 0
	}
	return float64(q.FalseAlarms) / float64(q.Declarations)
}

// Score matches failure declarations against ground-truth spikes. A
// declaration within [spike start, spike end + grace] counts for that
// spike; declarations matching no spike are false alarms.
func Score(spikes []Spike, events []Event, grace time.Duration) Quality {
	q := Quality{Spikes: len(spikes)}
	var delaySum time.Duration
	firstHit := make([]time.Time, len(spikes))
	for _, e := range events {
		if e.Type != EventFailure {
			continue
		}
		q.Declarations++
		matched := false
		for i, s := range spikes {
			if !e.At.Before(s.Start) && !e.At.After(s.End.Add(grace)) {
				matched = true
				if firstHit[i].IsZero() || e.At.Before(firstHit[i]) {
					firstHit[i] = e.At
				}
			}
		}
		if !matched {
			q.FalseAlarms++
		}
	}
	for i, s := range spikes {
		if !firstHit[i].IsZero() {
			q.Detected++
			delaySum += firstHit[i].Sub(s.Start)
		}
	}
	if q.Detected > 0 {
		q.MeanDelay = delaySum / time.Duration(q.Detected)
	}
	return q
}
