package detect

import (
	"sync"
	"time"

	"streamha/internal/clock"
	"streamha/internal/machine"
)

// TrendConfig configures a trend (predictive) detector.
type TrendConfig struct {
	// Clock is the time source.
	Clock clock.Clock
	// Monitor samples the machine's load.
	Monitor *machine.LoadMonitor
	// Granularity is the sampling period (default 5 ms).
	Granularity time.Duration
	// Threshold is the utilization treated as unavailability (default
	// 0.95, the paper's delineation).
	Threshold float64
	// Horizon is how far ahead the load trend is extrapolated; a predicted
	// threshold crossing within it declares a failure early (default 50 ms).
	Horizon time.Duration
	// Alpha is the EWMA smoothing factor for the load and its slope in
	// (0, 1]; smaller is smoother (default 0.3).
	Alpha float64
	// RecoverBelow is the smoothed load under which recovery is declared
	// (default Threshold − 0.15).
	RecoverBelow float64
	// OnFailure and OnRecovery are invoked from the detector goroutine.
	OnFailure  func(at time.Time)
	OnRecovery func(at time.Time)
}

// Trend is a predictive failure detector in the spirit of the failure
// prediction work the paper cites (Gu et al.): it smooths the machine's
// load, estimates its slope, and declares a failure as soon as the
// extrapolated load crosses the unavailability threshold within the
// horizon — often before the machine has fully stalled. The paper's
// hybrid method is explicitly compatible with such detectors ("as long as
// one can detect such transient unavailability quickly and reliably, our
// hybrid HA method can readily take advantage of it"); this implementation
// demonstrates the plug-in point.
type Trend struct {
	cfg TrendConfig

	mu      sync.Mutex
	ewma    float64
	slope   float64
	primed  bool
	failed  bool
	events  []Event
	started bool
	stop    chan struct{}
	done    chan struct{}
}

// NewTrend creates a trend detector.
func NewTrend(cfg TrendConfig) *Trend {
	if cfg.Granularity <= 0 {
		cfg.Granularity = 5 * time.Millisecond
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.95
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 50 * time.Millisecond
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.3
	}
	if cfg.RecoverBelow <= 0 {
		cfg.RecoverBelow = cfg.Threshold - 0.15
	}
	return &Trend{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start launches the sampling loop.
func (tr *Trend) Start() {
	tr.mu.Lock()
	if tr.started {
		tr.mu.Unlock()
		return
	}
	tr.started = true
	tr.mu.Unlock()
	go tr.run()
}

// Stop halts the detector.
func (tr *Trend) Stop() {
	tr.mu.Lock()
	if !tr.started {
		tr.mu.Unlock()
		return
	}
	tr.mu.Unlock()
	select {
	case <-tr.stop:
	default:
		close(tr.stop)
	}
	<-tr.done
}

func (tr *Trend) run() {
	defer close(tr.done)
	t := tr.cfg.Clock.NewTicker(tr.cfg.Granularity)
	defer t.Stop()
	for {
		select {
		case <-tr.stop:
			return
		case <-t.C():
			tr.sample()
		}
	}
}

func (tr *Trend) sample() {
	load := tr.cfg.Monitor.Utilization()
	now := tr.cfg.Clock.Now()

	var declareFailure, declareRecovery bool
	tr.mu.Lock()
	if !tr.primed {
		tr.ewma = load
		tr.primed = true
		tr.mu.Unlock()
		return
	}
	prev := tr.ewma
	tr.ewma = tr.cfg.Alpha*load + (1-tr.cfg.Alpha)*tr.ewma
	// Slope per sample, smoothed the same way.
	tr.slope = tr.cfg.Alpha*(tr.ewma-prev) + (1-tr.cfg.Alpha)*tr.slope

	// Extrapolate the smoothed load over the horizon.
	steps := float64(tr.cfg.Horizon) / float64(tr.cfg.Granularity)
	predicted := tr.ewma + tr.slope*steps

	switch {
	case !tr.failed && (tr.ewma >= tr.cfg.Threshold || (tr.slope > 0 && predicted >= tr.cfg.Threshold)):
		tr.failed = true
		tr.events = append(tr.events, Event{Type: EventFailure, At: now})
		declareFailure = true
	case tr.failed && tr.ewma <= tr.cfg.RecoverBelow && tr.slope <= 0.01:
		tr.failed = false
		tr.events = append(tr.events, Event{Type: EventRecovery, At: now})
		declareRecovery = true
	}
	tr.mu.Unlock()

	if declareFailure && tr.cfg.OnFailure != nil {
		tr.cfg.OnFailure(now)
	}
	if declareRecovery && tr.cfg.OnRecovery != nil {
		tr.cfg.OnRecovery(now)
	}
}

// Failed reports whether the detector currently predicts or observes
// unavailability.
func (tr *Trend) Failed() bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.failed
}

// Events returns a copy of the declared events.
func (tr *Trend) Events() []Event {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]Event(nil), tr.events...)
}
