package detect

import (
	"testing"
	"time"

	"streamha/internal/clock"
	"streamha/internal/machine"
)

func newTrendRig(t *testing.T) (*machine.Machine, *machine.LoadMonitor, *Trend) {
	t.Helper()
	r := newDetRig(t)
	lm := machine.NewLoadMonitor(r.tgt.CPU(), clock.New(), 3*time.Millisecond)
	t.Cleanup(lm.Stop)
	tr := NewTrend(TrendConfig{
		Clock:       clock.New(),
		Monitor:     lm,
		Granularity: 3 * time.Millisecond,
		Threshold:   0.9,
		Horizon:     30 * time.Millisecond,
	})
	tr.Start()
	t.Cleanup(tr.Stop)
	return r.tgt, lm, tr
}

func TestTrendQuietWhenIdle(t *testing.T) {
	_, _, tr := newTrendRig(t)
	time.Sleep(150 * time.Millisecond)
	if tr.Failed() || len(tr.Events()) != 0 {
		t.Fatalf("trend fired on an idle machine: %+v", tr.Events())
	}
}

func TestTrendDetectsAndRecovers(t *testing.T) {
	m, _, tr := newTrendRig(t)
	time.Sleep(50 * time.Millisecond)
	m.CPU().SetBackgroundLoad(1)
	deadline := time.Now().Add(2 * time.Second)
	for !tr.Failed() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !tr.Failed() {
		t.Fatal("stall not detected")
	}
	m.CPU().SetBackgroundLoad(0)
	deadline = time.Now().Add(2 * time.Second)
	for tr.Failed() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if tr.Failed() {
		t.Fatal("recovery not detected")
	}
	events := tr.Events()
	if len(events) < 2 || events[0].Type != EventFailure || events[len(events)-1].Type != EventRecovery {
		t.Fatalf("event sequence %+v", events)
	}
}

// TestTrendPredictsRampBeforeThreshold drives the load up in steps below
// the threshold and checks the detector fires on the extrapolated trend —
// the predictive behavior that distinguishes it from a plain threshold.
func TestTrendPredictsRampBeforeThreshold(t *testing.T) {
	m, _, tr := newTrendRig(t)
	time.Sleep(30 * time.Millisecond)
	var firedAtLoad float64 = -1
	for _, load := range []float64{0.3, 0.45, 0.6, 0.7, 0.8, 0.85, 0.88} {
		m.CPU().SetBackgroundLoad(load)
		time.Sleep(25 * time.Millisecond)
		if tr.Failed() && firedAtLoad < 0 {
			firedAtLoad = load
		}
	}
	if firedAtLoad < 0 {
		t.Fatal("predictive detector never fired on a sustained ramp toward the threshold")
	}
	if firedAtLoad >= 0.9 {
		t.Fatalf("fired only at load %.2f — not predictive", firedAtLoad)
	}
}

func TestTrendDefaults(t *testing.T) {
	tr := NewTrend(TrendConfig{})
	if tr.cfg.Threshold != 0.95 || tr.cfg.Granularity <= 0 || tr.cfg.Horizon <= 0 {
		t.Fatalf("defaults %+v", tr.cfg)
	}
	if tr.cfg.RecoverBelow >= tr.cfg.Threshold {
		t.Fatal("recovery threshold must sit below the failure threshold")
	}
}
