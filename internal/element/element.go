// Package element defines the data elements that flow through stream
// processing jobs, together with their identity and encoding rules.
//
// Identity matters for high availability: active-standby replicas and
// post-recovery retransmissions both produce duplicate elements, and
// downstream consumers eliminate them by logical ID. Deterministic
// processing elements must therefore derive output IDs purely from input
// IDs, which DeriveID guarantees.
package element

import (
	"encoding/binary"
	"fmt"
)

// Element is one unit of streaming data.
//
// ID is the logical identity of the element. Two elements with the same ID
// are duplicates of the same logical datum (for example, the outputs of two
// active-standby replicas of a deterministic PE), and consumers keep only
// one of them.
//
// Origin is the creation timestamp at the source in nanoseconds since the
// Unix epoch; the sink uses it to measure end-to-end delay.
//
// Seq is the transport sequence number assigned by the output queue of the
// sending PE; it is scoped to one logical stream (one output queue) and is
// the unit of cumulative acknowledgment and trimming.
type Element struct {
	ID      uint64
	Origin  int64
	Seq     uint64
	Payload int64
	// Key is the partitioning key: keyed-parallel stages route an element
	// to the instance owning KeyHash(Key)'s partition. Sources stamp it and
	// deterministic PEs must carry it through to derived outputs, so an
	// element stays on its partition across the whole chain. Zero is a
	// valid key.
	Key uint64
}

// EncodedSize is the wire size of one element in bytes.
const EncodedSize = 8 * 5

// AppendEncode appends the binary encoding of e to dst and returns the
// extended slice.
func (e Element) AppendEncode(dst []byte) []byte {
	var buf [EncodedSize]byte
	binary.BigEndian.PutUint64(buf[0:8], e.ID)
	binary.BigEndian.PutUint64(buf[8:16], uint64(e.Origin))
	binary.BigEndian.PutUint64(buf[16:24], e.Seq)
	binary.BigEndian.PutUint64(buf[24:32], uint64(e.Payload))
	binary.BigEndian.PutUint64(buf[32:40], e.Key)
	return append(dst, buf[:]...)
}

// Decode parses one element from b.
func Decode(b []byte) (Element, error) {
	if len(b) < EncodedSize {
		return Element{}, fmt.Errorf("element: short buffer: %d bytes", len(b))
	}
	return Element{
		ID:      binary.BigEndian.Uint64(b[0:8]),
		Origin:  int64(binary.BigEndian.Uint64(b[8:16])),
		Seq:     binary.BigEndian.Uint64(b[16:24]),
		Payload: int64(binary.BigEndian.Uint64(b[24:32])),
		Key:     binary.BigEndian.Uint64(b[32:40]),
	}, nil
}

// AppendBatch appends the fixed-width binary encoding of each element in
// elems to dst and returns the extended slice. The encoding is the
// concatenation of AppendEncode outputs; the caller records the count.
func AppendBatch(dst []byte, elems []Element) []byte {
	for _, e := range elems {
		dst = e.AppendEncode(dst)
	}
	return dst
}

// DecodeBatch parses n fixed-width elements from b, appending them to dst
// (which may be nil), and returns the extended slice together with the
// unconsumed remainder of b.
func DecodeBatch(dst []Element, b []byte, n int) ([]Element, []byte, error) {
	if n < 0 || n > len(b)/EncodedSize {
		return dst, b, fmt.Errorf("element: batch of %d elements needs %d bytes, have %d", n, n*EncodedSize, len(b))
	}
	if dst == nil && n > 0 {
		dst = make([]Element, 0, n)
	}
	for i := 0; i < n; i++ {
		e, err := Decode(b[i*EncodedSize:])
		if err != nil {
			return dst, b, err
		}
		dst = append(dst, e)
	}
	return dst, b[n*EncodedSize:], nil
}

// CloneBatch returns an independent copy of a batch. The data plane shares
// published batches across subscribers without copying (see the queue
// package's ownership rules); a consumer that needs to mutate or retain a
// batch beyond its handler takes a copy-on-write clone with this helper.
func CloneBatch(elems []Element) []Element {
	if len(elems) == 0 {
		return nil
	}
	out := make([]Element, len(elems))
	copy(out, elems)
	return out
}

// DeriveID deterministically derives the logical ID of the i-th output
// element produced while processing the input element with ID parent.
//
// For selectivity-1 PEs (i == 0 and one output per input) the identity is
// preserved bit-for-bit, so end-to-end duplicate elimination can compare
// source IDs directly. For higher selectivity the derived IDs of distinct
// (parent, i) pairs are distinct with overwhelming probability.
func DeriveID(parent uint64, i int) uint64 {
	if i == 0 {
		return parent
	}
	// splitmix64 finalizer over the pair; cheap and well distributed.
	x := parent ^ (uint64(i) * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// KeyHash maps a partitioning key to a well-distributed 64-bit hash (the
// splitmix64 finalizer). It is a pure function of the key, so every copy of
// every producer — and every restart — routes a key identically.
func KeyHash(key uint64) uint64 {
	x := key + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// PartitionOf returns the logical partition of key among parts partitions.
// Partitions are stable in the number of logical partitions, not in the
// number of instances, so rescaling an operator moves whole partitions
// between instances without reshuffling the keys inside unmoved ones.
func PartitionOf(key uint64, parts int) int {
	if parts <= 1 {
		return 0
	}
	return int(KeyHash(key) % uint64(parts))
}

// String implements fmt.Stringer for debugging output.
func (e Element) String() string {
	return fmt.Sprintf("elem{id=%d seq=%d payload=%d}", e.ID, e.Seq, e.Payload)
}
