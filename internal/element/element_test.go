package element

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := Element{ID: 42, Origin: 1234567890, Seq: 7, Payload: -3}
	b := e.AppendEncode(nil)
	if len(b) != EncodedSize {
		t.Fatalf("encoded size %d, want %d", len(b), EncodedSize)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got != e {
		t.Fatalf("round trip: got %+v want %+v", got, e)
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(id uint64, origin int64, seq uint64, payload int64) bool {
		e := Element{ID: id, Origin: origin, Seq: seq, Payload: payload}
		got, err := Decode(e.AppendEncode(nil))
		return err == nil && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, err := Decode(make([]byte, EncodedSize-1)); err == nil {
		t.Fatal("want error on short buffer")
	}
}

func TestAppendEncodeAppends(t *testing.T) {
	prefix := []byte{1, 2, 3}
	e := Element{ID: 1}
	b := e.AppendEncode(prefix)
	if len(b) != 3+EncodedSize {
		t.Fatalf("len %d", len(b))
	}
	if b[0] != 1 || b[1] != 2 || b[2] != 3 {
		t.Fatal("prefix clobbered")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	batch := []Element{
		{ID: 1, Origin: -5, Seq: 1, Payload: 100},
		{ID: 2, Origin: 123456, Seq: 2, Payload: -100},
		{ID: 1<<64 - 1, Origin: 1<<63 - 1, Seq: 3, Payload: -1 << 62},
	}
	b := AppendBatch([]byte{9, 9}, batch) // with a prefix to leave intact
	if len(b) != 2+len(batch)*EncodedSize {
		t.Fatalf("encoded %d bytes", len(b))
	}
	got, rest, err := DecodeBatch(nil, b[2:], len(batch))
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	for i := range batch {
		if got[i] != batch[i] {
			t.Fatalf("element %d: got %+v want %+v", i, got[i], batch[i])
		}
	}
}

func TestDecodeBatchAppendsAndReturnsRemainder(t *testing.T) {
	batch := []Element{{ID: 7, Seq: 1}, {ID: 8, Seq: 2}}
	b := append(AppendBatch(nil, batch), 0xEE, 0xFF)
	dst := []Element{{ID: 1}}
	got, rest, err := DecodeBatch(dst, b, len(batch))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].ID != 1 || got[1].ID != 7 || got[2].ID != 8 {
		t.Fatalf("appended decode %+v", got)
	}
	if len(rest) != 2 || rest[0] != 0xEE {
		t.Fatalf("remainder %v", rest)
	}
}

func TestDecodeBatchRejectsShortBuffer(t *testing.T) {
	b := AppendBatch(nil, []Element{{ID: 1}})
	if _, _, err := DecodeBatch(nil, b, 2); err == nil {
		t.Fatal("want error decoding 2 elements from 1-element buffer")
	}
	if _, _, err := DecodeBatch(nil, b, -1); err == nil {
		t.Fatal("want error on negative count")
	}
	if got, rest, err := DecodeBatch(nil, b, 0); err != nil || len(got) != 0 || len(rest) != EncodedSize {
		t.Fatalf("zero-count decode: %v %v %v", got, rest, err)
	}
}

func TestDeriveIDIdentityForFirstOutput(t *testing.T) {
	for _, id := range []uint64{0, 1, 42, 1 << 60} {
		if got := DeriveID(id, 0); got != id {
			t.Fatalf("DeriveID(%d, 0) = %d, want identity", id, got)
		}
	}
}

func TestDeriveIDDeterministic(t *testing.T) {
	if DeriveID(99, 3) != DeriveID(99, 3) {
		t.Fatal("DeriveID must be deterministic")
	}
}

func TestDeriveIDDistinctAcrossIndices(t *testing.T) {
	seen := make(map[uint64]bool)
	for parent := uint64(1); parent <= 100; parent++ {
		for i := 0; i < 10; i++ {
			id := DeriveID(parent, i)
			if seen[id] {
				t.Fatalf("collision at parent=%d i=%d", parent, i)
			}
			seen[id] = true
		}
	}
}

func TestDeriveIDDistinctProperty(t *testing.T) {
	f := func(parent uint64, i, j uint8) bool {
		a := int(i%16) + 1
		b := int(j%16) + 1
		if a == b {
			return true
		}
		return DeriveID(parent, a) != DeriveID(parent, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestElementString(t *testing.T) {
	s := Element{ID: 1, Seq: 2, Payload: 3}.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
