package experiment

import (
	"fmt"
	"time"

	"streamha/internal/core"
	"streamha/internal/ha"
)

// AblationVariant names one hybrid design choice being turned off.
type AblationVariant struct {
	Label   string
	Options core.Options
}

// DefaultAblationVariants cover the optimizations of Section IV-B.
func DefaultAblationVariants() []AblationVariant {
	return []AblationVariant{
		{Label: "full-hybrid", Options: core.Options{}},
		{Label: "no-predeploy", Options: core.Options{NoPreDeploy: true}},
		{Label: "no-early-conn", Options: core.Options{NoEarlyConnection: true}},
		{Label: "no-read-state", Options: core.Options{NoReadState: true}},
		{Label: "3-miss-trigger", Options: core.Options{MissThreshold: 3}},
		{Label: "disk-store", Options: core.Options{NoPreDeploy: true, DiskStore: true}},
	}
}

// AblationRow is one variant's measurements.
type AblationRow struct {
	Label string
	// Recovery phases from a single hard stall.
	Phases RecoveryPhases
	// MeanDelay is the average E2E delay under recurring transient
	// failures (40% of the time), which exposes the read-state benefit.
	MeanDelay time.Duration
}

// AblationResult quantifies the gains of each hybrid optimization
// (Section IV-B: pre-deployment ≈ 75% less redeploy time, early
// connection ≈ 50% less retransmission time, first-miss trigger ≈ 1/3 the
// detection time, in-memory refresh vs disk).
type AblationResult struct {
	Rows []AblationRow
}

// RunAblation measures each variant.
func RunAblation(p Params, variants []AblationVariant, repeats int) (*AblationResult, error) {
	p = p.withDefaults()
	if len(variants) == 0 {
		variants = DefaultAblationVariants()
	}
	if repeats <= 0 {
		repeats = 3
	}
	res := &AblationResult{}
	const protected = 1
	for _, v := range variants {
		opts := v.Options
		opts.HeartbeatInterval = p.HeartbeatInterval
		opts.CheckpointInterval = p.CheckpointInterval

		phases, err := averageRecoveries(p, ha.ModeHybrid, opts, ha.PSOptions{}, 800*time.Millisecond, repeats)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.Label, err)
		}

		// Sustained-failure delay run.
		tb, err := newTestbed(testbedConfig{
			params: p,
			modes:  uniformModes(p.Subjobs, protected, ha.ModeHybrid),
			hybrid: opts,
		})
		if err != nil {
			return nil, err
		}
		if err := tb.pipe.Start(); err != nil {
			tb.close()
			return nil, err
		}
		time.Sleep(p.Warmup)
		priM := tb.cl.Machine(fmt.Sprintf("p%d", protected))
		inj := startSpikes(tb, priM, 0.4, p.Seed)
		warmup := tb.pipe.Sink().Delays().Window()
		time.Sleep(p.Run)
		inj.Stop()
		mean := tb.pipe.Sink().Delays().MeanSince(warmup)
		tb.close()

		res.Rows = append(res.Rows, AblationRow{Label: v.Label, Phases: phases, MeanDelay: mean})
	}
	return res, nil
}

// Table renders the result.
func (r *AblationResult) Table() Table {
	t := Table{
		Title:  "Ablation: gains of the hybrid optimizations (Section IV-B)",
		Note:   "paper: pre-deploy cuts redeploy ~75%; early connection cuts retrans ~50%; first-miss trigger cuts detection to 1/3",
		Header: []string{"variant", "detect(ms)", "deploy/resume(ms)", "retrans(ms)", "total(ms)", "mean-delay(ms)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Label,
			ms(row.Phases.Detection),
			ms(row.Phases.Deploy),
			ms(row.Phases.Reprocess),
			ms(row.Phases.Total()),
			ms(row.MeanDelay),
		})
	}
	return t
}
