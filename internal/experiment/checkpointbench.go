package experiment

import (
	"fmt"
	"testing"
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/clock"
	"streamha/internal/element"
	"streamha/internal/machine"
	"streamha/internal/pe"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// This file measures the checkpoint path: the binary snapshot codec vs the
// seed's gob encoding (kept as Snapshot.EncodeGob, the frozen baseline),
// the pause window under the seed protocol (encode inside the pause) vs
// the split capture/ship pipeline, and the bytes shipped per sweep with
// full snapshots vs incremental deltas at ~1% state churn. The bodies are
// shared between the go-test harness (BenchmarkCheckpoint* in
// bench_checkpoint_test.go, which CI smoke-runs) and streamha-bench -fig
// checkpoint, so recorded numbers come from the same code.

// CkptBenchPad sizes the benchmark PE state in element-equivalents:
// 32768 units = 1 MiB of pad, the "large state" regime where the pause
// and shipped-bytes savings matter.
const CkptBenchPad = 1 << 15

// ckptChurnPerSweep is how many elements are processed between two
// checkpoints in the churn benchmarks. With HotSlots equal to it, each
// sweep rewrites ckptChurnPerSweep consecutive 8-byte pad slots —
// about 41 dirty 256-byte pages, ~1% of the 1 MiB pad.
const ckptChurnPerSweep = 1312

// silentCounter is CounterLogic with its output suppressed: the churn
// benchmarks measure state-checkpoint traffic, so the output queue (whose
// cost the throughput family already covers) is kept empty.
type silentCounter struct {
	pe.CounterLogic
}

func (s *silentCounter) Process(e element.Element, _ func(element.Element)) {
	s.CounterLogic.Process(e, func(element.Element) {})
}

// ckptRig is a primary runtime with a large-state PE, a store on a second
// machine, and an upstream machine to feed from.
type ckptRig struct {
	net   *transport.Mem
	clk   clock.Clock
	priM  *machine.Machine
	secM  *machine.Machine
	upM   *machine.Machine
	rt    *subjob.Runtime
	store *checkpoint.Store
	fed   uint64
}

func newCkptRig(pad, hotSlots int) (*ckptRig, error) {
	net := transport.NewMem(transport.MemConfig{})
	clk := clock.New()
	priM, err := machine.New("pri", clk, net)
	if err != nil {
		net.Close()
		return nil, err
	}
	secM, err := machine.New("sec", clk, net)
	if err != nil {
		net.Close()
		return nil, err
	}
	upM, err := machine.New("up1", clk, net)
	if err != nil {
		net.Close()
		return nil, err
	}
	spec := subjob.Spec{
		JobID:     "bench",
		ID:        "bench/ckpt",
		InStreams: []string{"in"},
		Owners:    map[string]string{"in": "up"},
		OutStream: "out",
		BatchSize: 256,
		PEs: []subjob.PESpec{
			{Name: "a", NewLogic: func() pe.Logic {
				return &silentCounter{CounterLogic: pe.CounterLogic{Pad: pad, HotSlots: hotSlots}}
			}},
		},
	}
	rt, err := subjob.New(spec, priM, false)
	if err != nil {
		net.Close()
		return nil, err
	}
	rt.Start()
	r := &ckptRig{net: net, clk: clk, priM: priM, secM: secM, upM: upM, rt: rt}
	r.store = checkpoint.NewStore(secM, spec.ID, checkpoint.InMemory, 0)
	return r, nil
}

func (r *ckptRig) close() {
	r.store.Close()
	r.rt.Stop()
	r.net.Close()
}

// feed pushes n elements through the PE and waits for them to be
// processed, so the next checkpoint observes exactly this much churn.
func (r *ckptRig) feed(b *testing.B, n int) {
	batch := make([]element.Element, n)
	for i := range batch {
		r.fed++
		batch[i] = element.Element{ID: r.fed, Seq: r.fed, Payload: int64(r.fed)}
	}
	r.upM.Send(r.priM.ID(), transport.Message{
		Kind:     transport.KindData,
		Stream:   subjob.DataStream("bench/ckpt", "in"),
		Elements: batch,
	})
	deadline := time.Now().Add(5 * time.Second)
	for r.rt.PEs()[0].Processed() < r.fed {
		if time.Now().After(deadline) {
			b.Fatalf("feed stalled at %d/%d", r.rt.PEs()[0].Processed(), r.fed)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// ckptBenchSnapshot captures a representative large-state snapshot for the
// codec benchmarks: 1 MiB PE pad plus a little queue state.
func ckptBenchSnapshot(b *testing.B) (*subjob.Snapshot, func()) {
	r, err := newCkptRig(CkptBenchPad, ckptChurnPerSweep)
	if err != nil {
		b.Fatal(err)
	}
	r.feed(b, ckptChurnPerSweep)
	snap := r.rt.CaptureFull()
	return snap, r.close
}

// BenchCheckpointEncodeBinary measures encoding one large full snapshot
// with the binary codec into a recycled buffer — the shipper's
// steady-state encode cost.
func BenchCheckpointEncodeBinary(b *testing.B) {
	snap, cleanup := ckptBenchSnapshot(b)
	defer cleanup()
	var dst []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = snap.AppendTo(dst[:0])
	}
	b.StopTimer()
	b.SetBytes(int64(len(dst)))
}

// BenchCheckpointEncodeGob measures the same snapshot through the frozen
// gob baseline, the seed's per-checkpoint encode.
func BenchCheckpointEncodeGob(b *testing.B) {
	snap, cleanup := ckptBenchSnapshot(b)
	defer cleanup()
	var n int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := snap.EncodeGob()
		if err != nil {
			b.Fatal(err)
		}
		n = len(buf)
	}
	b.StopTimer()
	b.SetBytes(int64(n))
}

// BenchCheckpointDecodeBinary measures decoding one binary full snapshot,
// the store's per-checkpoint cost.
func BenchCheckpointDecodeBinary(b *testing.B) {
	snap, cleanup := ckptBenchSnapshot(b)
	defer cleanup()
	buf, err := snap.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := subjob.DecodeSnapshot(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.SetBytes(int64(len(buf)))
}

// ckptPauseChurn is the light churn fed between pause measurements; the
// same for every pause variant, so the variants differ only in what their
// pause window contains.
const ckptPauseChurn = 128

// benchPause drives one pause-per-iteration body and reports the mean
// pause window as "pause-ns/op" (ns/op additionally includes the feed and
// any backpressure, which tuple latency does not pay).
func benchPause(b *testing.B, r *ckptRig, pause func() time.Duration) {
	b.ReportAllocs()
	b.ResetTimer()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		r.feed(b, ckptPauseChurn)
		total += pause()
	}
	b.StopTimer()
	b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "pause-ns/op")
}

// BenchCheckpointPauseSeedGob reproduces the seed protocol's pause window,
// frozen as a baseline: state capture, input snapshot AND the gob encode
// all happen while the PEs are suspended, and the encoded checkpoint is
// sent before resuming.
func BenchCheckpointPauseSeedGob(b *testing.B) {
	r, err := newCkptRig(CkptBenchPad, ckptChurnPerSweep)
	if err != nil {
		b.Fatal(err)
	}
	defer r.close()
	var seq uint64
	benchPause(b, r, func() time.Duration {
		start := time.Now()
		r.rt.WithPaused(func() {
			snap := r.rt.CaptureFull()
			snap.Input = r.rt.In().SnapshotBuf()
			snap.Consumed = r.rt.In().AcceptedAll()
			buf, err := snap.EncodeGob()
			if err != nil {
				b.Fatal(err)
			}
			seq++
			r.priM.Send(r.secM.ID(), transport.Message{
				Kind:         transport.KindCheckpoint,
				Stream:       subjob.CkptStream(r.rt.Spec().ID),
				Seq:          seq,
				State:        buf,
				ElementCount: snap.ElementUnits(),
			})
		})
		return time.Since(start)
	})
}

// BenchCheckpointPauseSplit measures the overhauled full-snapshot pause:
// the pause covers only the in-memory state capture, while encode and ship
// run on the background shipper.
func BenchCheckpointPauseSplit(b *testing.B) {
	r, err := newCkptRig(CkptBenchPad, ckptChurnPerSweep)
	if err != nil {
		b.Fatal(err)
	}
	defer r.close()
	cm := checkpoint.NewSweeping(checkpoint.Config{
		Runtime:   r.rt,
		Clock:     r.clk,
		Interval:  time.Hour,
		StoreNode: r.secM.ID(),
		Costs:     checkpoint.Costs{Disabled: true},
	})
	cm.Start()
	defer cm.Stop()
	benchPause(b, r, cm.CheckpointNow)
}

// BenchCheckpointPauseDelta measures the incremental pause: most sweeps
// capture only the dirty pad pages and queue watermarks.
func BenchCheckpointPauseDelta(b *testing.B) {
	r, err := newCkptRig(CkptBenchPad, ckptChurnPerSweep)
	if err != nil {
		b.Fatal(err)
	}
	defer r.close()
	cm := checkpoint.NewSweeping(checkpoint.Config{
		Runtime:     r.rt,
		Clock:       r.clk,
		Interval:    time.Hour,
		StoreNode:   r.secM.ID(),
		Costs:       checkpoint.Costs{Disabled: true},
		RebaseEvery: 64,
	})
	cm.Start()
	defer cm.Stop()
	benchPause(b, r, cm.CheckpointNow)
}

// benchSweepBytes runs b.N feed-then-checkpoint sweeps at ~1% churn under
// the given manager and reports the mean bytes shipped per sweep.
func benchSweepBytes(b *testing.B, r *ckptRig, cm checkpoint.Manager) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.feed(b, ckptChurnPerSweep)
		cm.CheckpointNow()
	}
	// The shipper runs behind the capture path; wait for it to drain.
	deadline := time.Now().Add(10 * time.Second)
	var st checkpoint.ManagerStats
	for {
		st = cm.Stats()
		if st.Fulls+st.Deltas >= b.N {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("shipper drained %d/%d checkpoints", st.Fulls+st.Deltas, b.N)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(st.BytesFull+st.BytesDelta)/float64(b.N), "B/sweep")
	if st.DeltaRatio > 0 {
		b.ReportMetric(st.DeltaRatio, "delta-ratio")
	}
}

// BenchCheckpointBytesFullGob ships a gob full snapshot every sweep — the
// frozen seed volume baseline at 1% churn.
func BenchCheckpointBytesFullGob(b *testing.B) {
	r, err := newCkptRig(CkptBenchPad, ckptChurnPerSweep)
	if err != nil {
		b.Fatal(err)
	}
	defer r.close()
	var total int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.feed(b, ckptChurnPerSweep)
		r.rt.WithPaused(func() {
			snap := r.rt.CaptureFull()
			buf, err := snap.EncodeGob()
			if err != nil {
				b.Fatal(err)
			}
			total += int64(len(buf))
		})
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/float64(b.N), "B/sweep")
}

// BenchCheckpointBytesFullBinary ships a binary full snapshot every sweep
// (incremental off, the default configuration).
func BenchCheckpointBytesFullBinary(b *testing.B) {
	r, err := newCkptRig(CkptBenchPad, ckptChurnPerSweep)
	if err != nil {
		b.Fatal(err)
	}
	defer r.close()
	cm := checkpoint.NewSweeping(checkpoint.Config{
		Runtime:   r.rt,
		Clock:     r.clk,
		Interval:  time.Hour,
		StoreNode: r.secM.ID(),
		Costs:     checkpoint.Costs{Disabled: true},
	})
	cm.Start()
	defer cm.Stop()
	benchSweepBytes(b, r, cm)
}

// BenchCheckpointBytesDelta ships deltas between every-8th-sweep rebases:
// the incremental configuration's shipped volume at 1% churn.
func BenchCheckpointBytesDelta(b *testing.B) {
	r, err := newCkptRig(CkptBenchPad, ckptChurnPerSweep)
	if err != nil {
		b.Fatal(err)
	}
	defer r.close()
	cm := checkpoint.NewSweeping(checkpoint.Config{
		Runtime:     r.rt,
		Clock:       r.clk,
		Interval:    time.Hour,
		StoreNode:   r.secM.ID(),
		Costs:       checkpoint.Costs{Disabled: true},
		RebaseEvery: 8,
	})
	cm.Start()
	defer cm.Stop()
	benchSweepBytes(b, r, cm)
}

// CheckpointRow is one checkpoint-path benchmark measurement.
type CheckpointRow struct {
	Name        string
	NsPerOp     float64
	PauseNsOp   float64
	BytesSweep  float64
	MBPerSec    float64
	BytesPerOp  int64
	AllocsPerOp int64
}

// CheckpointResult holds the checkpoint-path benchmark sweep.
type CheckpointResult struct {
	Rows []CheckpointRow
}

// RunCheckpoint runs the checkpoint benchmark family via
// testing.Benchmark, outside the go-test harness. Smoke mode runs the
// codec benchmarks only, as a fast CI-style health check.
func RunCheckpoint(smoke bool) *CheckpointResult {
	res := &CheckpointResult{}
	add := func(name string, body func(b *testing.B)) {
		r := testing.Benchmark(body)
		row := CheckpointRow{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if v, ok := r.Extra["pause-ns/op"]; ok {
			row.PauseNsOp = v
		}
		if v, ok := r.Extra["B/sweep"]; ok {
			row.BytesSweep = v
		}
		if r.Bytes > 0 && r.T > 0 {
			row.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		res.Rows = append(res.Rows, row)
	}
	add("encode/binary", BenchCheckpointEncodeBinary)
	add("encode/gob-baseline", BenchCheckpointEncodeGob)
	add("decode/binary", BenchCheckpointDecodeBinary)
	if !smoke {
		add("pause/seed-gob-baseline", BenchCheckpointPauseSeedGob)
		add("pause/split-full", BenchCheckpointPauseSplit)
		add("pause/split-delta", BenchCheckpointPauseDelta)
		add("bytes-1pct-churn/full-gob-baseline", BenchCheckpointBytesFullGob)
		add("bytes-1pct-churn/full-binary", BenchCheckpointBytesFullBinary)
		add("bytes-1pct-churn/delta-rebase8", BenchCheckpointBytesDelta)
	}
	return res
}

// Table renders the result.
func (r *CheckpointResult) Table() Table {
	t := Table{
		Title:  "Checkpoint path: codec, pause window and shipped volume (1 MiB PE state)",
		Note:   "binary snapshot codec vs frozen gob; capture-only pause vs seed encode-in-pause; delta sweeps at ~1% churn",
		Header: []string{"benchmark", "ns/op", "pause-ns", "B/sweep", "MB/s", "B/op", "allocs/op"},
	}
	for _, row := range r.Rows {
		cell := func(v float64) string {
			if v <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f", v)
		}
		t.Rows = append(t.Rows, []string{
			row.Name,
			fmt.Sprintf("%.0f", row.NsPerOp),
			cell(row.PauseNsOp),
			cell(row.BytesSweep),
			cell(row.MBPerSec),
			fmt.Sprintf("%d", row.BytesPerOp),
			fmt.Sprintf("%d", row.AllocsPerOp),
		})
	}
	return t
}
