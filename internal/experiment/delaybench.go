package experiment

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"streamha/internal/metrics"
)

// This file measures the observability plane: the cost of recording one
// delay sample while 1–8 goroutines (sink shards, pollers) hammer the same
// DelayStats, and the cost of a live percentile query. The bodies are
// shared between the go-test harness (BenchmarkDelayStats* in
// bench_metrics_test.go, which CI smoke-runs) and streamha-bench
// -fig delaystats, so recorded numbers come from the same code.
//
// seedDelayStats is a frozen copy of the pre-sharding implementation — one
// mutex around an ever-growing sample slice — kept as the benchmark
// baseline so the speedup of the sharded version stays measurable after
// the old code is gone.

// seedDelayStats is the original mutex-and-slice DelayStats, retained
// verbatim as a baseline for BenchDelayStatsAddSeed.
type seedDelayStats struct {
	mu      sync.Mutex
	samples []time.Duration
	sum     time.Duration
	max     time.Duration
}

func (d *seedDelayStats) Add(v time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.samples = append(d.samples, v)
	d.sum += v
	if v > d.max {
		d.max = v
	}
}

func (d *seedDelayStats) Percentile(p float64) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), d.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p/100*float64(n)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return sorted[rank]
}

// delayBenchSample advances a tiny LCG and maps it into a bounded delay
// band [0, ~100ms) — the shape of steady-state end-to-end delays, where
// new maxima are rare.
func delayBenchSample(state *uint64) time.Duration {
	*state = *state*6364136223846793005 + 1442695040888963407
	return time.Duration((*state >> 33) % uint64(100*time.Millisecond))
}

// BenchDelayStatsAdd measures one Add on the sharded DelayStats under
// RunParallel, the shape of the sink's hot path.
func BenchDelayStatsAdd(b *testing.B) {
	var d metrics.DelayStats
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		state := uint64(1)
		for pb.Next() {
			d.Add(delayBenchSample(&state))
		}
	})
}

// BenchDelayStatsAddSeed is the same workload against the seed
// implementation, the baseline for the speedup claim.
func BenchDelayStatsAddSeed(b *testing.B) {
	var d seedDelayStats
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		state := uint64(1)
		for pb.Next() {
			d.Add(delayBenchSample(&state))
		}
	})
}

// delayBenchPrefill is how many samples the percentile benchmarks record
// before the timed loop: past the reservoir capacity, so the sharded query
// cost is the steady-state (fixed-size) one and the seed query cost shows
// its O(n log n) copy-and-sort.
const delayBenchPrefill = 200_000

// BenchDelayStatsPercentile measures one live p99 query on the sharded
// DelayStats after delayBenchPrefill samples.
func BenchDelayStatsPercentile(b *testing.B) {
	var d metrics.DelayStats
	for i := 0; i < delayBenchPrefill; i++ {
		d.Add(time.Duration(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Percentile(99)
	}
}

// BenchDelayStatsPercentileSeed is the same query against the seed
// implementation.
func BenchDelayStatsPercentileSeed(b *testing.B) {
	var d seedDelayStats
	for i := 0; i < delayBenchPrefill; i++ {
		d.Add(time.Duration(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Percentile(99)
	}
}

// DelayStatsRow is one observability-plane benchmark measurement.
type DelayStatsRow struct {
	Name        string
	NsPerOp     float64
	BytesPerOp  int64
	AllocsPerOp int64
}

// DelayStatsResult holds the observability-plane benchmark sweep.
type DelayStatsResult struct {
	Rows []DelayStatsRow
}

// RunDelayStats runs the metrics benchmarks via testing.Benchmark, outside
// the go-test harness.
func RunDelayStats() *DelayStatsResult {
	res := &DelayStatsResult{}
	add := func(name string, body func(b *testing.B)) {
		r := testing.Benchmark(body)
		res.Rows = append(res.Rows, DelayStatsRow{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	add("add/sharded", BenchDelayStatsAdd)
	add("add/seed-mutex", BenchDelayStatsAddSeed)
	add("p99/sharded", BenchDelayStatsPercentile)
	add("p99/seed-sort", BenchDelayStatsPercentileSeed)
	return res
}

// Table renders the result.
func (r *DelayStatsResult) Table() Table {
	t := Table{
		Title:  "Observability plane: DelayStats record and query cost",
		Note:   "sharded atomic counters + fixed-size reservoir sketch vs the seed's mutex + growing sample slice",
		Header: []string{"benchmark", "ns/op", "B/op", "allocs/op"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Name,
			fmt.Sprintf("%.1f", row.NsPerOp),
			fmt.Sprintf("%d", row.BytesPerOp),
			fmt.Sprintf("%d", row.AllocsPerOp),
		})
	}
	return t
}
