// Package experiment regenerates every table and figure of the paper's
// evaluation (Section II-B and Section V). Each figure has one runner
// returning a typed result that renders as a text table; the bench harness
// (bench_test.go) and the streamha-bench command both call these runners.
//
// All experiments run at one-fifth the paper's timescale (TimeScale): a
// 100 ms heartbeat becomes 20 ms, a 50 ms checkpoint interval becomes
// 10 ms, a 10 s outage becomes 2 s. The claims under reproduction —
// orderings, ratios and crossovers — are invariant to this scaling, and
// the full harness completes in minutes instead of hours. The factor is
// chosen so the smallest interval (the heartbeat) stays an order of
// magnitude above single-core host scheduling jitter.
package experiment

import (
	"fmt"
	"strings"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/ha"
	"streamha/internal/pe"
	"streamha/internal/subjob"
)

// TimeScale is the factor by which paper durations are divided.
const TimeScale = 5

// Params are the shared experiment parameters; zero fields take the
// defaults of DefaultParams, which mirror Section V-A at one-tenth scale.
type Params struct {
	// Rate is the source rate in elements per second (paper: 1000/s).
	Rate float64
	// PECost is the CPU work per element per PE. The default 300 µs gives
	// the paper's ~60% application CPU usage at two PEs per machine and
	// 1000 elements/s.
	PECost time.Duration
	// StatePad is the PE internal state size in element-equivalents
	// (paper: 200).
	StatePad int
	// Subjobs is the chain length (paper: 4 subjobs of 2 PEs each).
	Subjobs int
	// PEsPerSubjob is the PE count per subjob.
	PEsPerSubjob int
	// CheckpointInterval (paper 50 ms → 10 ms).
	CheckpointInterval time.Duration
	// HeartbeatInterval (paper 100 ms → 20 ms).
	HeartbeatInterval time.Duration
	// Latency is the one-way network latency (1 Gbps LAN → 200 µs).
	Latency time.Duration
	// Run is the measured portion of each run (paper: 100 s → seconds
	// here; figures override as needed).
	Run time.Duration
	// Warmup is discarded before measurement starts.
	Warmup time.Duration
	// SpikeLoad is the background load injected during transient failures
	// (pushes total CPU to 95–100%).
	SpikeLoadMin, SpikeLoadMax float64
	// SpikeDuration is the default transient failure length (paper ~3 s →
	// 600 ms).
	SpikeDuration time.Duration
	// Seed makes failure schedules reproducible.
	Seed int64
}

// DefaultParams returns the Section V-A setup at one-tenth timescale.
func DefaultParams() Params {
	return Params{
		Rate:               1000,
		PECost:             300 * time.Microsecond,
		StatePad:           200,
		Subjobs:            4,
		PEsPerSubjob:       2,
		CheckpointInterval: 10 * time.Millisecond,
		HeartbeatInterval:  20 * time.Millisecond,
		Latency:            200 * time.Microsecond,
		Run:                3 * time.Second,
		Warmup:             500 * time.Millisecond,
		SpikeLoadMin:       0.95,
		SpikeLoadMax:       1.0,
		SpikeDuration:      600 * time.Millisecond,
		Seed:               1,
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.Rate == 0 {
		p.Rate = d.Rate
	}
	if p.PECost == 0 {
		p.PECost = d.PECost
	}
	if p.StatePad == 0 {
		p.StatePad = d.StatePad
	}
	if p.Subjobs == 0 {
		p.Subjobs = d.Subjobs
	}
	if p.PEsPerSubjob == 0 {
		p.PEsPerSubjob = d.PEsPerSubjob
	}
	if p.CheckpointInterval == 0 {
		p.CheckpointInterval = d.CheckpointInterval
	}
	if p.HeartbeatInterval == 0 {
		p.HeartbeatInterval = d.HeartbeatInterval
	}
	if p.Latency == 0 {
		p.Latency = d.Latency
	}
	if p.Run == 0 {
		p.Run = d.Run
	}
	if p.Warmup == 0 {
		p.Warmup = d.Warmup
	}
	if p.SpikeLoadMin == 0 {
		p.SpikeLoadMin = d.SpikeLoadMin
	}
	if p.SpikeLoadMax == 0 {
		p.SpikeLoadMax = d.SpikeLoadMax
	}
	if p.SpikeDuration == 0 {
		p.SpikeDuration = d.SpikeDuration
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

// testbed is one deployed chain job with named machines.
type testbed struct {
	params     Params
	cl         *cluster.Cluster
	pipe       *ha.Pipeline
	primaryIDs []string // primary machine IDs, in chain order
}

// testbedConfig controls chain construction.
type testbedConfig struct {
	params Params
	// modes per subjob; len must equal params.Subjobs.
	modes []ha.Mode
	// secondaries per subjob ("" lets the builder allocate s<i>); sharing
	// an ID multiplexes standbys onto one machine.
	secondaries []string
	// hybrid/ps option overrides.
	hybrid core.Options
	ps     ha.PSOptions
	// approx is the error budget of approx-mode subjobs.
	approx core.ErrorBudget
	// hotSlots concentrates each PE's writes on the first hotSlots state
	// slots (see pe.CounterLogic.HotSlots), giving the approx mode's
	// partial frames a hot/cold split to exploit; 0 spreads writes evenly.
	hotSlots int
	// burst shaping for the source, for detector experiments.
	burstOn, burstOff time.Duration
	trackIDs          bool
}

// newTestbed deploys the chain: one machine per primary, per requested
// secondary, plus source and sink machines.
func newTestbed(cfg testbedConfig) (*testbed, error) {
	p := cfg.params.withDefaults()
	if len(cfg.modes) != p.Subjobs {
		return nil, fmt.Errorf("experiment: %d modes for %d subjobs", len(cfg.modes), p.Subjobs)
	}
	cl := cluster.New(cluster.Config{Latency: p.Latency})
	cl.MustAddMachine("m-src")
	cl.MustAddMachine("m-sink")

	defs := make([]ha.SubjobDef, p.Subjobs)
	added := map[string]bool{}
	for i := 0; i < p.Subjobs; i++ {
		pri := fmt.Sprintf("p%d", i)
		cl.MustAddMachine(pri)
		sec := ""
		if cfg.modes[i] != ha.ModeNone {
			sec = fmt.Sprintf("s%d", i)
			if len(cfg.secondaries) > i && cfg.secondaries[i] != "" {
				sec = cfg.secondaries[i]
			}
			if !added[sec] {
				cl.MustAddMachine(sec)
				added[sec] = true
			}
		}
		pes := make([]subjob.PESpec, p.PEsPerSubjob)
		for j := range pes {
			pes[j] = subjob.PESpec{
				Name:     fmt.Sprintf("pe%d", j),
				NewLogic: newHotCounterLogic(p.StatePad, cfg.hotSlots),
				Cost:     p.PECost,
			}
		}
		defs[i] = ha.SubjobDef{
			PEs:       pes,
			Mode:      cfg.modes[i],
			Primary:   pri,
			Secondary: sec,
			// Small batches keep pause latency and recovery-phase
			// quantization well below the measured effects.
			BatchSize: 16,
		}
	}

	hybrid := cfg.hybrid
	if hybrid.CheckpointInterval == 0 {
		hybrid.CheckpointInterval = p.CheckpointInterval
	}
	if hybrid.HeartbeatInterval == 0 {
		hybrid.HeartbeatInterval = p.HeartbeatInterval
	}
	ps := cfg.ps
	if ps.CheckpointInterval == 0 {
		ps.CheckpointInterval = p.CheckpointInterval
	}
	if ps.HeartbeatInterval == 0 {
		ps.HeartbeatInterval = p.HeartbeatInterval
	}

	pipe, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "job",
		Source:      ha.SourceDef{Machine: "m-src", Rate: p.Rate, BurstOn: cfg.burstOn, BurstOff: cfg.burstOff},
		SinkMachine: "m-sink",
		Subjobs:     defs,
		Hybrid:      hybrid,
		PS:          ps,
		Approx:      cfg.approx,
		AckInterval: p.CheckpointInterval,
		TrackIDs:    cfg.trackIDs,
	})
	if err != nil {
		cl.Close()
		return nil, err
	}
	tb := &testbed{params: p, cl: cl, pipe: pipe}
	for i := range defs {
		tb.primaryIDs = append(tb.primaryIDs, defs[i].Primary)
	}
	return tb, nil
}

func newCounterLogic(pad int) func() pe.Logic {
	return func() pe.Logic { return &pe.CounterLogic{Pad: pad} }
}

func newHotCounterLogic(pad, hotSlots int) func() pe.Logic {
	return func() pe.Logic { return &pe.CounterLogic{Pad: pad, HotSlots: hotSlots} }
}

func (tb *testbed) close() {
	tb.pipe.Stop()
	tb.cl.Close()
}

// uniformModes returns a mode slice with protected holding mode and all
// other subjobs running unprotected.
func uniformModes(n int, protected int, mode ha.Mode) []ha.Mode {
	modes := make([]ha.Mode, n)
	for i := range modes {
		modes[i] = ha.ModeNone
	}
	if protected >= 0 && protected < n {
		modes[protected] = mode
	}
	return modes
}

// allModes returns a slice with every subjob in the given mode.
func allModes(n int, mode ha.Mode) []ha.Mode {
	modes := make([]ha.Mode, n)
	for i := range modes {
		modes[i] = mode
	}
	return modes
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	if t.Note != "" {
		b.WriteString(t.Note)
		b.WriteString("\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// ms formats a duration as milliseconds with one decimal.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
