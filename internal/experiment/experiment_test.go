package experiment

import (
	"strings"
	"testing"
	"time"

	"streamha/internal/failure"
	"streamha/internal/ha"
)

func TestDefaultParamsFillEverything(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Rate == 0 || p.PECost == 0 || p.Subjobs == 0 || p.CheckpointInterval == 0 ||
		p.HeartbeatInterval == 0 || p.Run == 0 || p.SpikeDuration == 0 || p.Seed == 0 {
		t.Fatalf("defaults incomplete: %+v", p)
	}
	// Explicit values survive.
	p2 := Params{Rate: 42}.withDefaults()
	if p2.Rate != 42 {
		t.Fatal("explicit rate overridden")
	}
}

func TestUniformAndAllModes(t *testing.T) {
	m := uniformModes(4, 1, ha.ModeHybrid)
	if m[0] != ha.ModeNone || m[1] != ha.ModeHybrid || m[3] != ha.ModeNone {
		t.Fatalf("uniform %v", m)
	}
	a := allModes(3, ha.ModeActive)
	for _, v := range a {
		if v != ha.ModeActive {
			t.Fatalf("all %v", a)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:  "T",
		Note:   "note",
		Header: []string{"a", "longer"},
		Rows:   [][]string{{"x", "1"}, {"yyyy", "2"}},
	}
	out := tb.Render()
	for _, want := range []string{"T\n", "note", "a", "longer", "yyyy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig01ReproducesSlowdown(t *testing.T) {
	r, err := RunFig01(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Machines) != 21 {
		t.Fatalf("machines %d", len(r.Machines))
	}
	slow := float64(r.LoadedMean) / float64(r.CleanMean)
	// Paper: 0.58s vs ~0.90s, about +55%.
	if slow < 1.3 || slow > 1.9 {
		t.Fatalf("slowdown %.2f, want ~1.55", slow)
	}
	if got := r.Table().Render(); !strings.Contains(got, "Figure 1") {
		t.Fatal("table broken")
	}
}

func TestRunFig02And03AnchorsAndTable(t *testing.T) {
	r := RunFig02And03(failure.DefaultTraceConfig())
	if r.FractionUnder60s < 0.6 || r.FractionUnder60s > 0.9 {
		t.Fatalf("frac under 60s %.2f", r.FractionUnder60s)
	}
	if r.FractionDurUnder10s < 0.55 || r.FractionDurUnder10s > 0.85 {
		t.Fatalf("frac under 10s %.2f", r.FractionDurUnder10s)
	}
	if len(r.InterFailureCDF) == 0 || len(r.DurationCDF) == 0 {
		t.Fatal("empty CDFs")
	}
	out := r.Table().Render()
	if !strings.Contains(out, "Figures 2 & 3") {
		t.Fatal("table broken")
	}
}

func TestValueAtFraction(t *testing.T) {
	r := RunFig02And03(failure.DefaultTraceConfig())
	lo := valueAtFraction(r.InterFailureCDF, 0.1)
	hi := valueAtFraction(r.InterFailureCDF, 0.9)
	if lo > hi {
		t.Fatalf("CDF not monotone: %f > %f", lo, hi)
	}
	if valueAtFraction(nil, 0.5) != 0 {
		t.Fatal("empty CDF")
	}
}

func TestRecoveryPhasesTotal(t *testing.T) {
	r := RecoveryPhases{Detection: time.Millisecond, Deploy: 2 * time.Millisecond, Reprocess: 3 * time.Millisecond}
	if r.Total() != 6*time.Millisecond {
		t.Fatalf("total %v", r.Total())
	}
}

// TestRunFig07SingleQuickPoint runs one real recovery decomposition,
// keeping the full harness covered by a fast test.
func TestRunFig07SingleQuickPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time experiment")
	}
	p := DefaultParams()
	p.Run = time.Second
	r, err := RunFig07(p, []time.Duration{20 * time.Millisecond}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	var ps, hy RecoveryPhases
	for _, row := range r.Rows {
		switch row.Mode {
		case ha.ModePassive:
			ps = row
		case ha.ModeHybrid:
			hy = row
		}
	}
	// The paper's headline: hybrid detection well under PS's (1 vs 3
	// misses) and resume well under redeployment.
	if hy.Detection >= ps.Detection {
		t.Fatalf("hybrid detection %v not faster than PS %v", hy.Detection, ps.Detection)
	}
	if hy.Deploy >= ps.Deploy {
		t.Fatalf("hybrid resume %v not faster than PS redeploy %v", hy.Deploy, ps.Deploy)
	}
}
