package experiment

import (
	"fmt"
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/core"
	"streamha/internal/failure"
	"streamha/internal/ha"
	"streamha/internal/transport"
)

// ApproxModePoint is one mode's steady-state measurement in the
// bounded-error comparison grid.
type ApproxModePoint struct {
	Label string
	Mode  ha.Mode
	// CheckpointElements is the checkpoint traffic (element units) over
	// the window — approx should undercut hybrid and PS here, since its
	// partial frames carry only the hot slots.
	CheckpointElements int64
	// Sweeps and CkptBytes are the protected subjob's checkpoint count and
	// total encoded bytes over the window; BytesPerSweep is their ratio.
	Sweeps        int
	CkptBytes     int64
	BytesPerSweep float64
	// PrimaryCPU is the CPU work executed on the protected subjob's
	// primary machine over the window (element processing plus the modeled
	// checkpoint cost), the steady-state CPU proxy.
	PrimaryCPU time.Duration
}

// ApproxResult reproduces the bounded-error standby evaluation: the
// steady-state five-mode grid plus one injected failover under the approx
// policy, with the measured divergence reported against the budget.
type ApproxResult struct {
	Window time.Duration
	Budget core.ErrorBudget
	Points []ApproxModePoint
	// Divergence is the approx policy's accounting after the injected
	// failover; Switchovers is the lifecycle's count for the same run.
	Divergence  core.DivergenceStats
	Switchovers int
	// SinkGaps and SinkDuplicateIDs validate the bounded-loss contract on
	// the failover run: the sink stream stays gap-free (skip-replay jumps
	// the dedup floor, it never tears the sequence) and no element is
	// delivered twice.
	SinkGaps         int
	SinkDuplicateIDs int
}

// approxHotSlots concentrates PE writes on the first slots so partial
// frames have a hot/cold split to exploit; approxBudget is generous so the
// injected failover stays within budget (the point of the figure is to
// measure the divergence, not to exercise the fallback).
const approxHotSlots = 8

var approxBudget = core.ErrorBudget{MaxLostElements: 100000}

// RunApprox measures the five modes side by side — checkpoint traffic,
// checkpoint bytes per sweep, primary CPU — and then injects one transient
// failure under the approx policy, reading back the divergence it admitted.
func RunApprox(p Params) (*ApproxResult, error) {
	p = p.withDefaults()
	// Two subjobs and light PEs keep the grid fast; the checkpoint cost
	// model (DefaultCosts) charges the primary per shipped unit, so the
	// CPU column reflects what each mode's checkpoints cost.
	p.Subjobs = 2
	p.PECost = 50 * time.Microsecond
	p.Rate = 2000
	if p.Run > 2*time.Second {
		p.Run = 2 * time.Second
	}

	res := &ApproxResult{Window: p.Run, Budget: approxBudget}
	grid := []struct {
		label string
		mode  ha.Mode
	}{
		{"none", ha.ModeNone},
		{"as", ha.ModeActive},
		{"ps", ha.ModePassive},
		{"hybrid", ha.ModeHybrid},
		{fmt.Sprintf("approx(b=%d)", approxBudget.MaxLostElements), ha.ModeApprox},
	}
	for _, cfg := range grid {
		tb, err := newTestbed(testbedConfig{
			params:   p,
			modes:    allModes(p.Subjobs, cfg.mode),
			approx:   approxBudget,
			hotSlots: approxHotSlots,
		})
		if err != nil {
			return nil, err
		}
		if err := tb.pipe.Start(); err != nil {
			tb.close()
			return nil, err
		}
		time.Sleep(p.Warmup)
		priM := tb.cl.Machine("p0")
		before := tb.cl.Stats()
		cpu0 := priM.CPU().WorkDone()
		cm0 := managerStats(tb.pipe.Group(0).HA.Checkpoint())
		time.Sleep(p.Run)
		delta := tb.cl.Stats().Sub(before)
		cpu := priM.CPU().WorkDone() - cpu0
		cm1 := managerStats(tb.pipe.Group(0).HA.Checkpoint())
		tb.close()

		pt := ApproxModePoint{
			Label:              cfg.label,
			Mode:               cfg.mode,
			CheckpointElements: delta.Elements[transport.KindCheckpoint],
			Sweeps:             cm1.Taken - cm0.Taken,
			CkptBytes: (cm1.BytesFull + cm1.BytesDelta + cm1.BytesPartial) -
				(cm0.BytesFull + cm0.BytesDelta + cm0.BytesPartial),
			PrimaryCPU: cpu,
		}
		if pt.Sweeps > 0 {
			pt.BytesPerSweep = float64(pt.CkptBytes) / float64(pt.Sweeps)
		}
		res.Points = append(res.Points, pt)
	}

	// Failover probe: protect subjob 0 with approx, stall its primary for
	// one spike, and read back the divergence the budgeted promotion
	// admitted.
	fp := p
	fp.Run = 0 // unused below
	tb, err := newTestbed(testbedConfig{
		params:   fp,
		modes:    uniformModes(fp.Subjobs, 0, ha.ModeApprox),
		approx:   approxBudget,
		hotSlots: approxHotSlots,
		trackIDs: true,
	})
	if err != nil {
		return nil, err
	}
	if err := tb.pipe.Start(); err != nil {
		tb.close()
		return nil, err
	}
	time.Sleep(fp.Warmup)
	failure.InjectOnce(tb.cl.Machine("p0").CPU(), tb.cl.Clock(), 1.0, fp.SpikeDuration, 0)
	time.Sleep(600 * time.Millisecond) // rollback + drain

	g := tb.pipe.Group(0)
	if dr, ok := g.HA.Policy().(core.DivergenceReporter); ok {
		res.Divergence = dr.Divergence()
	}
	res.Switchovers = g.HA.Stats().Switchovers
	sk := tb.pipe.Sink().Stats()
	res.SinkGaps = sk.InputGaps
	for _, n := range tb.pipe.Sink().IDCounts() {
		if n > 1 {
			res.SinkDuplicateIDs++
		}
	}
	tb.close()
	return res, nil
}

// managerStats resolves a possibly-nil checkpoint manager (NONE and AS
// subjobs have none) to its stats.
func managerStats(cm checkpoint.Manager) checkpoint.ManagerStats {
	if cm == nil {
		return checkpoint.ManagerStats{}
	}
	return cm.Stats()
}

// Table renders the result.
func (r *ApproxResult) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Approx: bounded-error standby vs the four exact modes (%.1fs window)", r.Window.Seconds()),
		Note: "expected shape: approx ships fewer checkpoint bytes/sweep than PS and hybrid and less checkpoint traffic;\n" +
			"the injected failover's measured loss stays within the budget, with zero sink gaps and duplicates",
		Header: []string{"config", "ckpt-elems", "sweeps", "ckpt-bytes", "bytes/sweep", "primary-cpu(ms)"},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			pt.Label,
			fmt.Sprintf("%d", pt.CheckpointElements),
			fmt.Sprintf("%d", pt.Sweeps),
			fmt.Sprintf("%d", pt.CkptBytes),
			fmt.Sprintf("%.0f", pt.BytesPerSweep),
			ms(pt.PrimaryCPU),
		})
	}
	d := r.Divergence
	within := "no"
	if d.WithinBudget {
		within = "yes"
	}
	t.Rows = append(t.Rows,
		[]string{"-- failover --", "", "", "", "", ""},
		[]string{"switchovers", fmt.Sprintf("%d", r.Switchovers), "", "", "", ""},
		[]string{"budgeted-skips", fmt.Sprintf("%d", d.BudgetedSkips), "", "", "", ""},
		[]string{"exact-replays", fmt.Sprintf("%d", d.ExactReplays), "", "", "", ""},
		[]string{"lost-elements", fmt.Sprintf("%d", d.LostElements), "", "", "", ""},
		[]string{"budget", fmt.Sprintf("%d", d.BudgetMaxLost), "", "", "", ""},
		[]string{"stale-cold-bytes", fmt.Sprintf("%d", d.StaleColdBytes), "", "", "", ""},
		[]string{"within-budget", within, "", "", "", ""},
		[]string{"sink-gaps", fmt.Sprintf("%d", r.SinkGaps), "", "", "", ""},
		[]string{"sink-dup-ids", fmt.Sprintf("%d", r.SinkDuplicateIDs), "", "", "", ""},
	)
	return t
}
