package experiment

import (
	"fmt"
	"time"

	"streamha/internal/failure"
	"streamha/internal/ha"
	"streamha/internal/machine"
)

// startSpikes launches a transient-failure injector on machine m with the
// given present-time fraction, returning it started.
func startSpikes(tb *testbed, m *machine.Machine, fraction float64, seed int64) *failure.Injector {
	p := tb.params
	inj := failure.NewInjector(failure.InjectorConfig{
		CPU:   m.CPU(),
		Clock: tb.cl.Clock(),
		// Random (exponential) arrivals with fixed spike lengths: the
		// measured cluster's spikes are short and bounded (Figure 3), and
		// exponential durations would make rare very long joint stalls
		// dominate the means.
		Pattern:         failure.Poisson,
		DurationPattern: failure.Regular,
		Gap:             failure.GapForFraction(p.SpikeDuration, fraction),
		Duration:        p.SpikeDuration,
		LoadMin:         p.SpikeLoadMin,
		LoadMax:         p.SpikeLoadMax,
		Seed:            seed,
		InitialDelay:    time.Duration(seed%7) * 37 * time.Millisecond, // decorrelate machines
	})
	inj.Start()
	return inj
}

// sampleUtilization averages a machine's utilization over the run, sampled
// every 20 ms in a background goroutine; the returned function stops
// sampling and yields the mean.
func sampleUtilization(tb *testbed, m *machine.Machine) func() float64 {
	stop := make(chan struct{})
	out := make(chan float64, 1)
	go func() {
		t := tb.cl.Clock().NewTicker(20 * time.Millisecond)
		defer t.Stop()
		var sum float64
		var n int
		for {
			select {
			case <-stop:
				if n == 0 {
					out <- 0
					return
				}
				out <- sum / float64(n)
				return
			case <-t.C():
				sum += m.CPU().Utilization()
				n++
			}
		}
	}()
	return func() float64 {
		close(stop)
		return <-out
	}
}

// Fig04Point is one (mode, failure severity) measurement.
type Fig04Point struct {
	Mode            ha.Mode
	FailureFraction float64
	// AvgCPU is the measured average utilization of the protected
	// subjob's primary machine — the paper's x-axis.
	AvgCPU float64
	// MeanDelay is the average end-to-end element delay.
	MeanDelay time.Duration
	// P99Delay is the 99th-percentile delay.
	P99Delay time.Duration
}

// Fig04Result reproduces Figure 4: average element delay under transient
// failures for NONE, AS, PS and Hybrid.
type Fig04Result struct {
	Points []Fig04Point
}

// Fig04Fractions are the default failure-time fractions (paper: 30–80%).
var Fig04Fractions = []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8}

// RunFig04 protects one subjob of the chain with each HA mode in turn and
// injects independent spike loads on its primary and secondary machines,
// sweeping the fraction of time failures are present.
//
// The application is sized to ~20% of each machine (100 µs per element at
// two PEs and 1000 elements/s): during a spike the machine is pinned near
// 100% and processing nearly stalls — the paper's ">8-fold delay increase
// during unavailability" — yet the system can still drain its backlog
// between spikes at the highest failure fraction, as the paper's testbed
// evidently could (its delays stay bounded at 80% failure time over 100 s
// runs).
func RunFig04(p Params, modes []ha.Mode, fractions []float64) (*Fig04Result, error) {
	p = p.withDefaults()
	p.PECost = 100 * time.Microsecond
	// Spike schedules are sparse (one spike per ~2 s at 30% failure time);
	// the run must span enough of them for stable means. Triple the base
	// run for this figure (the paper runs 100 s per point).
	p.Run *= 3
	if len(modes) == 0 {
		modes = []ha.Mode{ha.ModeNone, ha.ModeActive, ha.ModePassive, ha.ModeHybrid}
	}
	if len(fractions) == 0 {
		fractions = Fig04Fractions
	}
	res := &Fig04Result{}
	const protected = 1
	for _, mode := range modes {
		for _, frac := range fractions {
			tb, err := newTestbed(testbedConfig{
				params: p,
				modes:  uniformModes(p.Subjobs, protected, mode),
			})
			if err != nil {
				return nil, err
			}
			if err := tb.pipe.Start(); err != nil {
				tb.close()
				return nil, err
			}
			time.Sleep(p.Warmup)

			priM := tb.cl.Machine(fmt.Sprintf("p%d", protected))
			var injectors []*failure.Injector
			injectors = append(injectors, startSpikes(tb, priM, frac, p.Seed))
			if mode != ha.ModeNone {
				secM := tb.cl.Machine(fmt.Sprintf("s%d", protected))
				injectors = append(injectors, startSpikes(tb, secM, frac, p.Seed+1000))
			}
			utilDone := sampleUtilization(tb, priM)

			warmup := tb.pipe.Sink().Delays().Window()
			time.Sleep(p.Run)
			for _, inj := range injectors {
				inj.Stop()
			}
			avgCPU := utilDone()
			mean := tb.pipe.Sink().Delays().MeanSince(warmup)
			p99 := tb.pipe.Sink().Delays().Percentile(99)
			tb.close()

			res.Points = append(res.Points, Fig04Point{
				Mode:            mode,
				FailureFraction: frac,
				AvgCPU:          avgCPU,
				MeanDelay:       mean,
				P99Delay:        p99,
			})
		}
	}
	return res, nil
}

// Table renders the result.
func (r *Fig04Result) Table() Table {
	t := Table{
		Title:  "Figure 4: average element delay vs CPU usage under transient failures",
		Note:   "paper shape: AS lowest and flat (~90ms), Hybrid flat slightly above, NONE grows, PS worst",
		Header: []string{"mode", "failure-time", "avg-cpu", "mean-delay(ms)", "p99(ms)"},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			pt.Mode.String(),
			fmt.Sprintf("%.0f%%", pt.FailureFraction*100),
			fmt.Sprintf("%.0f%%", pt.AvgCPU*100),
			ms(pt.MeanDelay),
			ms(pt.P99Delay),
		})
	}
	return t
}

// Fig05Point is one multiplexing measurement.
type Fig05Point struct {
	FailureFraction float64
	// SharedDelay is the mean delay with three primaries sharing one
	// secondary machine.
	SharedDelay time.Duration
	// DedicatedDelay is the mean delay with one secondary per primary.
	DedicatedDelay time.Duration
}

// Fig05Result reproduces Figure 5: E2E delay vs transient-failure time
// percentage with a multiplexed secondary.
type Fig05Result struct {
	Points []Fig05Point
}

// Fig05Fractions are the default failure fractions (paper: 5–30%).
var Fig05Fractions = []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3}

// RunFig05 deploys three hybrid subjobs whose standbys share one machine,
// injects spikes on the primaries only, and compares against dedicated
// standbys.
func RunFig05(p Params, fractions []float64) (*Fig05Result, error) {
	p = p.withDefaults()
	p.PECost = 100 * time.Microsecond
	p.Run *= 3
	p.Subjobs = 3
	if len(fractions) == 0 {
		fractions = Fig05Fractions
	}
	res := &Fig05Result{}
	run := func(frac float64, shared bool) (time.Duration, error) {
		secondaries := make([]string, p.Subjobs)
		if shared {
			for i := range secondaries {
				secondaries[i] = "s-shared"
			}
		}
		tb, err := newTestbed(testbedConfig{
			params:      p,
			modes:       allModes(p.Subjobs, ha.ModeHybrid),
			secondaries: secondaries,
		})
		if err != nil {
			return 0, err
		}
		defer tb.close()
		if err := tb.pipe.Start(); err != nil {
			return 0, err
		}
		time.Sleep(p.Warmup)
		var injectors []*failure.Injector
		for i := 0; i < p.Subjobs; i++ {
			m := tb.cl.Machine(fmt.Sprintf("p%d", i))
			injectors = append(injectors, startSpikes(tb, m, frac, p.Seed+int64(i)*77))
		}
		warmup := tb.pipe.Sink().Delays().Window()
		time.Sleep(p.Run)
		for _, inj := range injectors {
			inj.Stop()
		}
		return tb.pipe.Sink().Delays().MeanSince(warmup), nil
	}
	for _, frac := range fractions {
		sharedDelay, err := run(frac, true)
		if err != nil {
			return nil, err
		}
		dedicated, err := run(frac, false)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig05Point{
			FailureFraction: frac,
			SharedDelay:     sharedDelay,
			DedicatedDelay:  dedicated,
		})
	}
	return res, nil
}

// Table renders the result.
func (r *Fig05Result) Table() Table {
	t := Table{
		Title:  "Figure 5: E2E delay vs transient failure time (3 primaries sharing 1 secondary)",
		Note:   "paper shape: shared ≈ dedicated up to ~20% failure time, rises (~+80%) at 30%",
		Header: []string{"failure-time", "shared(ms)", "dedicated(ms)", "shared/dedicated"},
	}
	for _, pt := range r.Points {
		ratio := 0.0
		if pt.DedicatedDelay > 0 {
			ratio = float64(pt.SharedDelay) / float64(pt.DedicatedDelay)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", pt.FailureFraction*100),
			ms(pt.SharedDelay),
			ms(pt.DedicatedDelay),
			f2(ratio),
		})
	}
	return t
}
