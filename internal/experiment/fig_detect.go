package experiment

import (
	"fmt"
	"time"

	"streamha/internal/detect"
	"streamha/internal/failure"
	"streamha/internal/ha"
	"streamha/internal/machine"
)

// Fig12And13Point is one machine-load measurement of both detectors.
type Fig12And13Point struct {
	Load float64
	// Heartbeat and Benchmark quality at this load.
	Heartbeat detect.Quality
	Benchmark detect.Quality
}

// Fig12And13Result reproduces Figures 12 and 13 (plus the detection-delay
// comparison of Section V-C) in one family of runs.
type Fig12And13Result struct {
	Spikes int
	Points []Fig12And13Point
}

// Fig12Loads is the default machine-load sweep (paper: 60–95%).
var Fig12Loads = []float64{0.6, 0.7, 0.8, 0.85, 0.9, 0.95}

// RunFig12And13 runs a bursty one-subjob pipeline on the monitored
// machine, injects spikes of each load level, and scores the heartbeat and
// benchmark detectors against the injector's ground truth.
func RunFig12And13(p Params, loads []float64, spikes int) (*Fig12And13Result, error) {
	p = p.withDefaults()
	p.Subjobs = 1
	if len(loads) == 0 {
		loads = Fig12Loads
	}
	if spikes <= 0 {
		spikes = 15
	}
	// The paper uses an 110 ms heartbeat for the detector comparison
	// (one-fifth scale here).
	hb := 22 * time.Millisecond
	res := &Fig12And13Result{Spikes: spikes}

	for _, load := range loads {
		tb, err := newTestbed(testbedConfig{
			params: p,
			modes:  []ha.Mode{ha.ModeNone},
			// Bursty input: double-rate on-periods, matching the stream
			// burstiness that defeats the benchmark method.
			burstOn:  40 * time.Millisecond,
			burstOff: 40 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		monM := tb.cl.MustAddMachine("m-mon")
		target := tb.cl.Machine("p0")
		if err := tb.pipe.Start(); err != nil {
			tb.close()
			return nil, err
		}

		hbDet := detect.NewHeartbeat(detect.HeartbeatConfig{
			Monitor:       monM,
			Clock:         tb.cl.Clock(),
			Target:        target.ID(),
			Session:       "quality",
			Interval:      hb,
			MissThreshold: 1,
		})
		hbDet.Start()
		lm := machine.NewLoadMonitor(target.CPU(), tb.cl.Clock(), 5*time.Millisecond)
		bmDet := detect.NewBenchmark(detect.BenchmarkConfig{
			Machine:       target,
			Clock:         tb.cl.Clock(),
			Monitor:       lm,
			Granularity:   5 * time.Millisecond,
			LoadThreshold: 0.5,
			ProbeWork:     2 * time.Millisecond,
			Factor:        2.5,
		})
		bmDet.Start()
		time.Sleep(p.Warmup)

		inj := failure.NewInjector(failure.InjectorConfig{
			CPU:      target.CPU(),
			Clock:    tb.cl.Clock(),
			Pattern:  failure.Regular,
			Gap:      400 * time.Millisecond,
			Duration: 250 * time.Millisecond,
			LoadMin:  load,
			LoadMax:  load,
			Seed:     p.Seed,
		})
		inj.Start()
		deadline := time.Now().Add(time.Duration(spikes) * 700 * time.Millisecond)
		for len(inj.Spikes()) < spikes && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
		inj.Stop()
		time.Sleep(100 * time.Millisecond)

		truth := make([]detect.Spike, 0, spikes)
		for _, s := range inj.Spikes() {
			truth = append(truth, detect.Spike{Start: s.Start, End: s.End})
		}
		grace := 3*hb + 30*time.Millisecond
		point := Fig12And13Point{
			Load:      load,
			Heartbeat: detect.Score(truth, hbDet.Events(), grace),
			Benchmark: detect.Score(truth, bmDet.Events(), grace),
		}
		hbDet.Stop()
		bmDet.Stop()
		lm.Stop()
		tb.close()
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// Fig12Table renders the detection-ratio half (Figure 12).
func (r *Fig12And13Result) Fig12Table() Table {
	t := Table{
		Title:  "Figure 12: background load detection ratio vs machine load",
		Note:   "paper shape: benchmark ≈ 1 at every load (oversensitive); heartbeat low at low load, ≈ 1 at ≥90%",
		Header: []string{"load", "heartbeat", "benchmark"},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", pt.Load*100),
			f2(pt.Heartbeat.DetectionRatio()),
			f2(pt.Benchmark.DetectionRatio()),
		})
	}
	return t
}

// Fig13Table renders the false-alarm half (Figure 13).
func (r *Fig12And13Result) Fig13Table() Table {
	t := Table{
		Title:  "Figure 13: false alarm ratio vs machine load",
		Note:   "paper shape: benchmark >15% even at 90% load; heartbeat ≈ 0 at every load",
		Header: []string{"load", "heartbeat", "benchmark", "hb-delay(ms)", "bm-delay(ms)"},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", pt.Load*100),
			f2(pt.Heartbeat.FalseAlarmRatio()),
			f2(pt.Benchmark.FalseAlarmRatio()),
			ms(pt.Heartbeat.MeanDelay),
			ms(pt.Benchmark.MeanDelay),
		})
	}
	return t
}
