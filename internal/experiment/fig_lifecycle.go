package experiment

import (
	"fmt"
	"strings"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/failure"
	"streamha/internal/ha"
	"streamha/internal/subjob"
)

// LifecycleRow is one mode's lifecycle trace: the settled state plus the
// per-subjob transition log after a scripted failure sequence (one
// transient stall, then a fail-stop crash of the primary machine).
type LifecycleRow struct {
	Mode        ha.Mode
	Stats       core.LifecycleStats
	Transitions []string
}

// LifecycleResult drives every standby policy through the same failure
// script and collects the lifecycle state machine's transition logs. It is
// not a paper figure; it exercises the control plane the figures rely on
// and makes the event/state walk of each policy inspectable from the CLI.
type LifecycleResult struct {
	Rows []LifecycleRow
}

// RunLifecycle runs the failure script once per mode. Each run deploys a
// single protected subjob (primary p1, standby s1, spare machine for
// hybrid re-protection), stalls the primary past the detection threshold,
// lets it recover, then crashes it for good.
func RunLifecycle(p Params) (*LifecycleResult, error) {
	p = p.withDefaults()
	res := &LifecycleResult{}
	for _, name := range ha.Modes() {
		mode, err := ha.ParseMode(name)
		if err != nil {
			return nil, err
		}
		row, err := runOneLifecycle(p, mode)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runOneLifecycle(p Params, mode ha.Mode) (LifecycleRow, error) {
	cl := cluster.New(cluster.Config{Latency: p.Latency})
	for _, id := range []string{"m-src", "m-sink", "p1", "s1", "spare"} {
		cl.MustAddMachine(id)
	}
	defer cl.Close()

	pipe, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "job",
		Source:      ha.SourceDef{Machine: "m-src", Rate: p.Rate},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{{
			PEs: []subjob.PESpec{
				{Name: "pe", NewLogic: newCounterLogic(p.StatePad), Cost: p.PECost},
			},
			Mode: mode, Primary: "p1", Secondary: "s1", Spare: "spare",
			BatchSize: 16,
		}},
		Hybrid: core.Options{
			HeartbeatInterval:  p.HeartbeatInterval,
			CheckpointInterval: p.CheckpointInterval,
			FailStopAfter:      250 * time.Millisecond,
		},
		PS: ha.PSOptions{
			HeartbeatInterval:  p.HeartbeatInterval,
			CheckpointInterval: p.CheckpointInterval,
		},
	})
	if err != nil {
		return LifecycleRow{}, err
	}
	if err := pipe.Start(); err != nil {
		return LifecycleRow{}, err
	}
	defer pipe.Stop()
	time.Sleep(p.Warmup)

	// Transient stall: long enough for either detector (1 miss for hybrid,
	// 3 for passive) to fire, short enough that hybrid rolls back instead
	// of promoting.
	g := pipe.Group(0)
	stallFor := 5 * p.HeartbeatInterval
	failure.InjectOnce(cl.Machine("p1").CPU(), cl.Clock(), 1.0, stallFor, 0)
	time.Sleep(stallFor + 600*time.Millisecond)

	// Fail-stop: crash whichever machine currently hosts the primary.
	// Unprotected subjobs skip this — with no standby the subjob would
	// simply die, which the modes with a policy are there to prevent.
	if mode != ha.ModeNone {
		cl.Machine(string(g.HA.PrimaryRuntime().Node())).Crash()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if len(g.HA.Failovers())+len(g.HA.Promotions()) >= 2 || mode == ha.ModeActive {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		time.Sleep(300 * time.Millisecond)
	}

	st := g.HA.Stats()
	return LifecycleRow{Mode: mode, Stats: st, Transitions: st.Transitions}, nil
}

// Table renders the result: one summary row per mode followed by its
// transition log, one transition per line.
func (r *LifecycleResult) Table() Table {
	t := Table{
		Title: "Lifecycle: control-plane transition logs per standby policy",
		Note: "script: transient stall then fail-stop crash; " +
			"hybrid switches over + rolls back + promotes, passive migrates, active/none record nothing",
		Header: []string{"mode", "state", "switch", "rollback", "migrate", "promote", "chainbreak", "transition log"},
	}
	for _, row := range r.Rows {
		s := row.Stats
		logCol := "-"
		if len(row.Transitions) > 0 {
			logCol = row.Transitions[0]
		}
		t.Rows = append(t.Rows, []string{
			row.Mode.String(), s.State,
			fmt.Sprint(s.Switchovers), fmt.Sprint(s.Rollbacks),
			fmt.Sprint(s.Migrations), fmt.Sprint(s.Promotions),
			fmt.Sprint(s.ChainBreaks), logCol,
		})
		for _, tr := range row.Transitions[min(1, len(row.Transitions)):] {
			t.Rows = append(t.Rows, []string{"", "", "", "", "", "", "", tr})
		}
	}
	return t
}

// Summary returns a compact one-line-per-mode digest, used by tests.
func (r *LifecycleResult) Summary() string {
	var b strings.Builder
	for _, row := range r.Rows {
		s := row.Stats
		fmt.Fprintf(&b, "%s: state=%s sw=%d rb=%d mig=%d pro=%d trs=%d\n",
			row.Mode, s.State, s.Switchovers, s.Rollbacks, s.Migrations, s.Promotions,
			len(row.Transitions))
	}
	return b.String()
}
