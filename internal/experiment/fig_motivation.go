package experiment

import (
	"fmt"
	"sync"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/failure"
	"streamha/internal/metrics"
)

// Fig01Result reproduces Figure 1: the processing time of a parallel
// application across machines 41–61, where machines 54–61 carry co-located
// background load and therefore finish ~50% slower.
type Fig01Result struct {
	// Machines maps machine number to measured processing time.
	Machines []Fig01Machine
	// CleanMean and LoadedMean are the means over unloaded and loaded
	// machines.
	CleanMean, LoadedMean time.Duration
}

// Fig01Machine is one machine's measurement.
type Fig01Machine struct {
	ID      int
	Loaded  bool
	Elapsed time.Duration
}

// RunFig01 executes the same unit of work on 21 simulated machines, with
// background load on machines 54–61, mirroring the uncontrolled
// measurement of Figure 1 (0.58 s vs 0.90 s at paper scale; one-tenth
// here).
func RunFig01(p Params) (*Fig01Result, error) {
	p = p.withDefaults()
	cl := cluster.New(cluster.Config{Latency: p.Latency})
	defer cl.Close()

	const work = 58 * time.Millisecond // paper: 0.58 s
	res := &Fig01Result{}
	type meas struct {
		id      int
		loaded  bool
		elapsed time.Duration
	}
	var wg sync.WaitGroup
	out := make([]meas, 0, 21)
	var mu sync.Mutex
	for id := 41; id <= 61; id++ {
		m := cl.MustAddMachine(fmt.Sprintf("m%d", id))
		loaded := id >= 54
		if loaded {
			// Another application occupies part of the machine.
			m.CPU().SetBackgroundLoad(0.35)
		}
		wg.Add(1)
		go func(id int, loaded bool) {
			defer wg.Done()
			start := cl.Clock().Now()
			m.CPU().Execute(work)
			elapsed := cl.Clock().Since(start)
			mu.Lock()
			out = append(out, meas{id: id, loaded: loaded, elapsed: elapsed})
			mu.Unlock()
		}(id, loaded)
	}
	wg.Wait()

	var cleanSum, loadedSum time.Duration
	var cleanN, loadedN int
	for id := 41; id <= 61; id++ {
		for _, m := range out {
			if m.id != id {
				continue
			}
			res.Machines = append(res.Machines, Fig01Machine{ID: m.id, Loaded: m.loaded, Elapsed: m.elapsed})
			if m.loaded {
				loadedSum += m.elapsed
				loadedN++
			} else {
				cleanSum += m.elapsed
				cleanN++
			}
		}
	}
	if cleanN > 0 {
		res.CleanMean = cleanSum / time.Duration(cleanN)
	}
	if loadedN > 0 {
		res.LoadedMean = loadedSum / time.Duration(loadedN)
	}
	return res, nil
}

// Table renders the result.
func (r *Fig01Result) Table() Table {
	t := Table{
		Title:  "Figure 1: processing time per machine (transient co-location)",
		Note:   fmt.Sprintf("paper: ~0.58s vs ~0.90s (+55%%); here (1/10 scale): %s ms vs %s ms", ms(r.CleanMean), ms(r.LoadedMean)),
		Header: []string{"machine", "background", "processing(ms)"},
	}
	for _, m := range r.Machines {
		bg := "idle"
		if m.Loaded {
			bg = "loaded"
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", m.ID), bg, ms(m.Elapsed)})
	}
	return t
}

// Fig02And03Result reproduces Figures 2 and 3: the CDFs of mean
// inter-failure time and mean failure duration across the synthetic
// 83-machine cluster trace.
type Fig02And03Result struct {
	// InterFailureCDF is the CDF of per-machine mean inter-failure time in
	// seconds.
	InterFailureCDF []metrics.CDFPoint
	// DurationCDF is the CDF of per-machine mean spike duration in seconds.
	DurationCDF []metrics.CDFPoint
	// FractionUnder60s is the fraction of machines spiking more often than
	// once per 60 s (paper: ~75%).
	FractionUnder60s float64
	// FractionDurUnder10s is the fraction of machines whose mean spike
	// lasts under 10 s (paper: ~70%).
	FractionDurUnder10s float64
	// FractionDurOver20s is the fraction over 20 s (paper: ~20%).
	FractionDurOver20s float64
}

// RunFig02And03 generates the synthetic cluster trace and computes both
// CDFs. Pure computation over virtual time; instant.
func RunFig02And03(cfg failure.TraceConfig) *Fig02And03Result {
	traces := failure.GenerateTrace(cfg)
	var inter, dur []float64
	for _, t := range traces {
		if v, ok := t.MeanInterFailure(); ok {
			inter = append(inter, v.Seconds())
		}
		if v, ok := t.MeanDuration(); ok {
			dur = append(dur, v.Seconds())
		}
	}
	return &Fig02And03Result{
		InterFailureCDF:     metrics.CDF(inter),
		DurationCDF:         metrics.CDF(dur),
		FractionUnder60s:    metrics.FractionBelow(inter, 60),
		FractionDurUnder10s: metrics.FractionBelow(dur, 10),
		FractionDurOver20s:  1 - metrics.FractionBelow(dur, 20),
	}
}

// Table renders Figure 2 (inter-failure CDF at decile points).
func (r *Fig02And03Result) Table() Table {
	t := Table{
		Title: "Figures 2 & 3: transient failure frequency and duration (83-machine synthetic trace)",
		Note: fmt.Sprintf("paper: ~75%% of machines spike >1/60s, ~70%% of spikes <10s, ~20%% >20s; "+
			"here: %.0f%%, %.0f%%, %.0f%%",
			100*r.FractionUnder60s, 100*r.FractionDurUnder10s, 100*r.FractionDurOver20s),
		Header: []string{"CDF fraction", "inter-failure(s)", "duration(s)"},
	}
	for _, f := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		t.Rows = append(t.Rows, []string{
			f2(f),
			f2(valueAtFraction(r.InterFailureCDF, f)),
			f2(valueAtFraction(r.DurationCDF, f)),
		})
	}
	return t
}

// valueAtFraction returns the smallest CDF value whose fraction reaches f.
func valueAtFraction(cdf []metrics.CDFPoint, f float64) float64 {
	for _, pt := range cdf {
		if pt.Fraction >= f {
			return pt.Value
		}
	}
	if len(cdf) == 0 {
		return 0
	}
	return cdf[len(cdf)-1].Value
}
