package experiment

import (
	"fmt"
	"time"

	"streamha/internal/core"
	"streamha/internal/ha"
	"streamha/internal/transport"
)

// Fig06Config is one HA configuration of the traffic comparison.
type Fig06Config struct {
	Label              string
	Mode               ha.Mode
	CheckpointInterval time.Duration
}

// Fig06Point is one (configuration, rate) measurement.
type Fig06Point struct {
	Label string
	Rate  float64
	// Elements is the total element units transmitted during the measured
	// window (data + checkpoint traffic), the y-axis of Figure 6.
	Elements int64
	// DataElements and CheckpointElements decompose it.
	DataElements       int64
	CheckpointElements int64
}

// Fig06Result reproduces Figure 6: message overhead vs data rate for NONE,
// AS, PS (two checkpoint intervals) and Hybrid (two checkpoint intervals).
type Fig06Result struct {
	Window time.Duration
	Points []Fig06Point
}

// Fig06Rates are the default source rates. This figure involves no
// failure/detection timing, so it runs with real checkpoint intervals
// (100/500 ms); the rate sweep tops out at 10k elements/s — the bottom of
// the paper's 10–25k range — because beyond that the simulator host
// saturates on sleep syscalls and the measured ratios reflect host
// contention rather than protocol traffic. Traffic is proportional to
// rate for every mode, so the ratios are rate-invariant.
var Fig06Rates = []float64{4000, 6000, 8000, 10000}

// DefaultFig06Configs mirror the paper's six lines (paper-scale
// checkpoint intervals).
func DefaultFig06Configs() []Fig06Config {
	return []Fig06Config{
		{Label: "none", Mode: ha.ModeNone},
		{Label: "as", Mode: ha.ModeActive},
		{Label: "ps-100ms", Mode: ha.ModePassive, CheckpointInterval: 100 * time.Millisecond},
		{Label: "ps-500ms", Mode: ha.ModePassive, CheckpointInterval: 500 * time.Millisecond},
		{Label: "hybrid-100ms", Mode: ha.ModeHybrid, CheckpointInterval: 100 * time.Millisecond},
		{Label: "hybrid-500ms", Mode: ha.ModeHybrid, CheckpointInterval: 500 * time.Millisecond},
	}
}

// RunFig06 measures total transmitted element units over a fixed window
// for each configuration and rate, with every subjob protected by the
// configuration's mode and no failures injected.
func RunFig06(p Params, configs []Fig06Config, rates []float64) (*Fig06Result, error) {
	p = p.withDefaults()
	// Lighter PEs keep machines below saturation at 25k elements/s.
	p.PECost = 10 * time.Microsecond
	p.Run = 3 * time.Second
	if len(configs) == 0 {
		configs = DefaultFig06Configs()
	}
	if len(rates) == 0 {
		rates = Fig06Rates
	}
	res := &Fig06Result{Window: p.Run}
	for _, cfg := range configs {
		for _, rate := range rates {
			pp := p
			pp.Rate = rate
			if cfg.CheckpointInterval > 0 {
				pp.CheckpointInterval = cfg.CheckpointInterval
			}
			tb, err := newTestbed(testbedConfig{
				params: pp,
				modes:  allModes(pp.Subjobs, cfg.Mode),
			})
			if err != nil {
				return nil, err
			}
			if err := tb.pipe.Start(); err != nil {
				tb.close()
				return nil, err
			}
			time.Sleep(pp.Warmup)
			before := tb.cl.Stats()
			time.Sleep(pp.Run)
			delta := tb.cl.Stats().Sub(before)
			tb.close()
			res.Points = append(res.Points, Fig06Point{
				Label:              cfg.Label,
				Rate:               rate,
				Elements:           delta.TotalElements(),
				DataElements:       delta.DataElements(),
				CheckpointElements: delta.CheckpointElements(),
			})
		}
	}
	return res, nil
}

// Table renders the result.
func (r *Fig06Result) Table() Table {
	t := Table{
		Title:  fmt.Sprintf("Figure 6: message overhead vs data rate (%.1fs window)", r.Window.Seconds()),
		Note:   "paper shape: AS ≈ 4× NONE; PS and Hybrid ≈ +10% over NONE, insensitive to checkpoint interval",
		Header: []string{"config", "rate(elem/s)", "total-elems", "data-elems", "ckpt-elems", "vs-none"},
	}
	baseline := map[float64]int64{}
	for _, pt := range r.Points {
		if pt.Label == "none" {
			baseline[pt.Rate] = pt.Elements
		}
	}
	for _, pt := range r.Points {
		ratio := "-"
		if b := baseline[pt.Rate]; b > 0 {
			ratio = f2(float64(pt.Elements) / float64(b))
		}
		t.Rows = append(t.Rows, []string{
			pt.Label,
			fmt.Sprintf("%.0f", pt.Rate),
			fmt.Sprintf("%d", pt.Elements),
			fmt.Sprintf("%d", pt.DataElements),
			fmt.Sprintf("%d", pt.CheckpointElements),
			ratio,
		})
	}
	return t
}

// Fig11Point is one (PE count) measurement.
type Fig11Point struct {
	PEsPerSubjob int
	// CheckpointElements is the checkpoint traffic over the window — the
	// y-axis of Figure 11.
	CheckpointElements int64
}

// Fig11Result reproduces Figure 11: hybrid checkpoint overhead vs the
// number of PEs per machine.
type Fig11Result struct {
	Window time.Duration
	Points []Fig11Point
}

// Fig11PECounts is the default sweep.
var Fig11PECounts = []int{1, 2, 4, 6, 8}

// RunFig11 protects one subjob with the hybrid method and sweeps its PE
// count, measuring checkpoint traffic.
func RunFig11(p Params, peCounts []int) (*Fig11Result, error) {
	p = p.withDefaults()
	// Keep the machine unsaturated at 8 PEs.
	p.PECost = 50 * time.Microsecond
	p.Subjobs = 2
	if p.Run > 2*time.Second {
		p.Run = 2 * time.Second
	}
	if len(peCounts) == 0 {
		peCounts = Fig11PECounts
	}
	res := &Fig11Result{Window: p.Run}
	for _, n := range peCounts {
		pp := p
		pp.PEsPerSubjob = n
		tb, err := newTestbed(testbedConfig{
			params: pp,
			modes:  uniformModes(pp.Subjobs, 0, ha.ModeHybrid),
			hybrid: core.Options{},
		})
		if err != nil {
			return nil, err
		}
		if err := tb.pipe.Start(); err != nil {
			tb.close()
			return nil, err
		}
		time.Sleep(pp.Warmup)
		before := tb.cl.Stats()
		time.Sleep(pp.Run)
		delta := tb.cl.Stats().Sub(before)
		tb.close()
		res.Points = append(res.Points, Fig11Point{
			PEsPerSubjob:       n,
			CheckpointElements: delta.Elements[transport.KindCheckpoint],
		})
	}
	return res, nil
}

// Table renders the result.
func (r *Fig11Result) Table() Table {
	t := Table{
		Title:  fmt.Sprintf("Figure 11: hybrid checkpoint overhead vs PEs per machine (%.1fs window)", r.Window.Seconds()),
		Note:   "paper shape: overhead grows about linearly with the number of PEs",
		Header: []string{"pes/machine", "ckpt-elems", "per-pe"},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pt.PEsPerSubjob),
			fmt.Sprintf("%d", pt.CheckpointElements),
			fmt.Sprintf("%d", pt.CheckpointElements/int64(pt.PEsPerSubjob)),
		})
	}
	return t
}
