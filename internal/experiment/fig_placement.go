package experiment

import (
	"fmt"
	"sync"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/failure"
	"streamha/internal/ha"
	"streamha/internal/machine"
	"streamha/internal/sched"
	"streamha/internal/subjob"
)

// The placement experiment is not a paper figure: it evaluates the
// cluster scheduler the repo adds on top of the paper's method. Two
// identical jobs run through the same multi-failure trace. The static
// variant names its machines up front (primary, standby, one spare) the
// way the paper's evaluation does — after the spare is consumed the next
// failure leaves the subjob permanently unprotected. The scheduled
// variant hands placement to the consensus-backed scheduler: every crash
// is followed by an automatic re-arm onto fresh capacity outside the new
// primary's fault domain, and the placement log itself survives a leader
// kill mid-trace.

// PlacementVariant is one run's outcome.
type PlacementVariant struct {
	Name string
	// Crashes is how many worker machines the trace killed.
	Crashes int
	// Failovers, Promotions and Rearms aggregate the groups' lifecycles.
	Failovers, Promotions, Rearms int
	// FinalStates lists each group's terminal lifecycle state.
	FinalStates []string
	// ProtectedFrac is the fraction of post-warmup samples with every
	// group Protected.
	ProtectedFrac float64
	// AntiAffinityViolations counts samples where a primary and its
	// standby shared a fault domain.
	AntiAffinityViolations int
	// UnprotectedEnd reports whether any group settled Unprotected.
	UnprotectedEnd bool
	// Exactly-once audit.
	Emitted, Delivered, Lost, Duplicated uint64
	// Scheduler-side counters (zero for the static variant).
	Placements, Denials, LeaderChanges int
}

// PlacementResult is the static-vs-scheduled comparison.
type PlacementResult struct {
	Static    PlacementVariant
	Scheduled PlacementVariant
}

// placementPEs is the small two-PE stage both variants run.
func placementPEs() []subjob.PESpec {
	return []subjob.PESpec{
		{Name: "pe0", NewLogic: newCounterLogic(100), Cost: 100 * time.Microsecond},
		{Name: "pe1", NewLogic: newCounterLogic(100), Cost: 100 * time.Microsecond},
	}
}

// placementSampler polls group states, accumulating the protected-time
// fraction and anti-affinity violations until stopped.
type placementSampler struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once

	samples, protected, violations int
}

func startPlacementSampler(cl *cluster.Cluster, groups []*ha.Group) *placementSampler {
	s := &placementSampler{stop: make(chan struct{}), done: make(chan struct{})}
	clk := cl.Clock()
	go func() {
		defer close(s.done)
		for {
			select {
			case <-s.stop:
				return
			case <-clk.After(10 * time.Millisecond):
			}
			allProt := true
			for _, g := range groups {
				if g.HA.State() != core.Protected {
					allProt = false
				}
				secM := g.HA.StandbyMachine()
				if secM == nil {
					continue
				}
				priID := string(g.HA.PrimaryRuntime().Machine().ID())
				secID := string(secM.ID())
				if priID != secID && cl.Domain(priID) != "" && cl.Domain(priID) == cl.Domain(secID) {
					s.violations++
				}
			}
			s.samples++
			if allProt {
				s.protected++
			}
		}
	}()
	return s
}

func (s *placementSampler) halt() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// waitAllProtected polls until every group is Protected with a live
// standby machine, or the timeout expires.
func waitAllProtected(cl *cluster.Cluster, groups []*ha.Group, timeout time.Duration) bool {
	clk := cl.Clock()
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		ok := true
		for _, g := range groups {
			secM := g.HA.StandbyMachine()
			if g.HA.State() != core.Protected || secM == nil || secM.Crashed() {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
		clk.Sleep(10 * time.Millisecond)
	}
	return false
}

// quiesceAndAudit stops the source, waits for the sink to stop
// advancing, and fills the variant's exactly-once fields.
func quiesceAndAudit(cl *cluster.Cluster, pipe *ha.Pipeline, v *PlacementVariant) {
	clk := cl.Clock()
	pipe.Source().Stop()
	last := pipe.Sink().Received()
	for settle := 0; settle < 8; {
		clk.Sleep(50 * time.Millisecond)
		if now := pipe.Sink().Received(); now != last {
			last, settle = now, 0
		} else {
			settle++
		}
	}
	v.Emitted = pipe.Source().Emitted()
	v.Delivered = pipe.Sink().Received()
	counts := pipe.Sink().IDCounts()
	for _, c := range counts {
		if c > 1 {
			v.Duplicated += uint64(c - 1)
		}
	}
	if distinct := uint64(len(counts)); distinct < v.Emitted {
		v.Lost = v.Emitted - distinct
	}
}

// collectLifecycles fills the variant's lifecycle aggregates.
func collectLifecycles(pipe *ha.Pipeline, v *PlacementVariant) {
	for _, g := range pipe.AllGroups() {
		st := g.HA.Stats()
		v.Failovers += st.Switchovers + st.Migrations
		v.Promotions += st.Promotions
		v.Rearms += st.Rearms
		v.FinalStates = append(v.FinalStates, g.HA.State().String())
		if g.HA.State() == core.Unprotected {
			v.UnprotectedEnd = true
		}
	}
}

// placementHybrid is the hybrid tuning both variants share: one missed
// 20 ms heartbeat switches over, a 120 ms persistent outage promotes.
func placementHybrid() core.Options {
	return core.Options{
		HeartbeatInterval:  20 * time.Millisecond,
		CheckpointInterval: 10 * time.Millisecond,
		FailStopAfter:      120 * time.Millisecond,
	}
}

// runPlacementStatic runs the statically placed baseline through a
// scripted two-crash trace against subjob sj0's hosts: the first crash
// consumes the spare, the second strands the subjob unprotected — the
// dead end the scheduler variant is built to remove.
func runPlacementStatic(warmup, settle time.Duration) (PlacementVariant, error) {
	v := PlacementVariant{Name: "static"}
	cl := cluster.New(cluster.Config{Latency: 200 * time.Microsecond})
	defer cl.Close()
	cl.MustAddMachine("m-src")
	cl.MustAddMachine("m-sink")
	domains := map[string]string{
		"w1": "rack-a", "w2": "rack-a",
		"w3": "rack-b", "w4": "rack-b",
		"w5": "rack-c", "w6": "rack-c",
	}
	for _, id := range []string{"w1", "w2", "w3", "w4", "w5", "w6"} {
		cl.MustAddMachineIn(id, domains[id])
	}

	pipe, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "placestatic",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 500},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{
			{PEs: placementPEs(), Mode: ha.ModeHybrid, Primary: "w1", Secondary: "w3", Spare: "w5", BatchSize: 16},
			{PEs: placementPEs(), Mode: ha.ModeHybrid, Primary: "w2", Secondary: "w4", Spare: "w6", BatchSize: 16},
		},
		Hybrid:   placementHybrid(),
		TrackIDs: true,
	})
	if err != nil {
		return v, err
	}
	defer pipe.Stop()
	if err := pipe.Start(); err != nil {
		return v, err
	}
	clk := cl.Clock()
	clk.Sleep(warmup)

	groups := pipe.AllGroups()
	sampler := startPlacementSampler(cl, groups)

	// sj0's placement chain is w1 -> w3 (promote, spare w5 re-arms) ->
	// w5 with nothing left. The script kills w1, waits for the spare to
	// take over, then kills w3 (the promoted primary's machine).
	script, err := failure.ParseScript(`
		0ms     crash w1
		` + fmt.Sprintf("%dms crash w3", settle/time.Millisecond) + `
	`)
	if err != nil {
		sampler.halt()
		return v, err
	}
	rep := failure.NewReplayer(clk, cl, script)
	rep.Start()
	rep.Wait()
	for _, ap := range rep.Applied() {
		if ap.Err != nil {
			sampler.halt()
			return v, fmt.Errorf("experiment: static trace: %v", ap.Err)
		}
	}
	v.Crashes = len(rep.Applied())
	clk.Sleep(settle)

	sampler.halt()
	v.ProtectedFrac = float64(sampler.protected) / float64(max(1, sampler.samples))
	v.AntiAffinityViolations = sampler.violations
	quiesceAndAudit(cl, pipe, &v)
	collectLifecycles(pipe, &v)
	return v, nil
}

// runPlacementScheduled runs the scheduler-resolved variant through the
// same failure pressure and more — each round kills the protected
// subjob's standby host, waits for the automatic re-arm, then kills its
// primary host and waits for promotion plus re-arm — with a
// placement-log leader kill in the middle of the trace. Crashed workers
// are not recovered, so the pool genuinely shrinks as the trace runs.
func runPlacementScheduled(warmup, settle time.Duration, rounds int) (PlacementVariant, error) {
	v := PlacementVariant{Name: "scheduled"}
	cl := cluster.New(cluster.Config{Latency: 200 * time.Microsecond})
	defer cl.Close()
	cl.MustAddMachine("m-src")
	cl.MustAddMachine("m-sink")
	// Placement-log replicas live outside the schedulable pool: added
	// before BindScheduler, they are never chosen to host subjob copies.
	replicaMs := []*machine.Machine{
		cl.MustAddMachine("sched-a"),
		cl.MustAddMachine("sched-b"),
		cl.MustAddMachine("sched-c"),
	}
	s, err := sched.New(sched.Config{
		Clock:           cl.Clock(),
		Replicas:        replicaMs,
		Tick:            5 * time.Millisecond,
		ElectionTimeout: 40 * time.Millisecond,
	})
	if err != nil {
		return v, err
	}
	s.Start()
	defer s.Stop()
	cl.BindScheduler(s, 2)

	// Workers join after the bind, so each admission lands in the log.
	domains := map[string]string{
		"w1": "rack-a", "w2": "rack-a",
		"w3": "rack-b", "w4": "rack-b",
		"w5": "rack-c", "w6": "rack-c",
	}
	for _, id := range []string{"w1", "w2", "w3", "w4", "w5", "w6"} {
		if _, err := cl.AddMachineIn(id, domains[id]); err != nil {
			return v, err
		}
	}

	pipe, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "placesched",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 500},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{
			// No machine names: the scheduler resolves both placements.
			{PEs: placementPEs(), Mode: ha.ModeHybrid, BatchSize: 16},
			{PEs: placementPEs(), Mode: ha.ModeHybrid, BatchSize: 16},
		},
		Hybrid:        placementHybrid(),
		TrackIDs:      true,
		Scheduler:     s,
		RearmInterval: 20 * time.Millisecond,
	})
	if err != nil {
		return v, err
	}
	defer pipe.Stop()
	if err := pipe.Start(); err != nil {
		return v, err
	}
	clk := cl.Clock()
	clk.Sleep(warmup)

	groups := pipe.AllGroups()
	sampler := startPlacementSampler(cl, groups)
	defer sampler.halt()
	target := groups[0]

	crash := func(id string) error {
		v.Crashes++
		return cl.CrashMachine(id)
	}
	for round := 0; round < rounds; round++ {
		// Kill the protected subjob's standby host; the detector lives
		// there, so only the periodic re-arm health check notices.
		if secM := target.HA.StandbyMachine(); secM != nil && !secM.Crashed() {
			if err := crash(string(secM.ID())); err != nil {
				return v, err
			}
		}
		if !waitAllProtected(cl, groups, settle) {
			return v, fmt.Errorf("experiment: scheduled round %d: no re-arm after standby kill", round)
		}

		if round == rounds/2 {
			// Mid-trace, kill the placement-log leader; the survivors
			// re-elect and placement keeps working.
			if ldr := s.Leader(); ldr != "" {
				if err := cl.CrashMachine(ldr); err != nil {
					return v, err
				}
			}
		}

		// Kill the primary host: switchover, fail-stop promotion, then a
		// scheduler-supplied replacement standby.
		if err := crash(string(target.HA.PrimaryRuntime().Machine().ID())); err != nil {
			return v, err
		}
		if !waitAllProtected(cl, groups, settle) {
			return v, fmt.Errorf("experiment: scheduled round %d: no re-arm after primary kill", round)
		}
	}
	clk.Sleep(settle / 2)

	sampler.halt()
	v.ProtectedFrac = float64(sampler.protected) / float64(max(1, sampler.samples))
	v.AntiAffinityViolations = sampler.violations
	quiesceAndAudit(cl, pipe, &v)
	collectLifecycles(pipe, &v)
	st := s.Stats()
	v.Placements = st.Placements
	v.Denials = st.Denials
	v.LeaderChanges = st.LeaderChanges
	return v, nil
}

// RunPlacement compares static and scheduled placement under the
// multi-failure trace. smoke shortens the trace for CI.
func RunPlacement(smoke bool) (*PlacementResult, error) {
	warmup, settle, rounds := 500*time.Millisecond, 2*time.Second, 2
	if smoke {
		warmup, settle, rounds = 300*time.Millisecond, 1500*time.Millisecond, 1
	}
	res := &PlacementResult{}
	st, err := runPlacementStatic(warmup, settle)
	if err != nil {
		return nil, err
	}
	res.Static = st
	sc, err := runPlacementScheduled(warmup, settle, rounds)
	if err != nil {
		return nil, err
	}
	res.Scheduled = sc
	if res.Scheduled.UnprotectedEnd {
		return nil, fmt.Errorf("experiment: scheduled variant settled unprotected with capacity available")
	}
	if res.Scheduled.AntiAffinityViolations > 0 {
		return nil, fmt.Errorf("experiment: scheduled variant violated fault-domain anti-affinity %d times",
			res.Scheduled.AntiAffinityViolations)
	}
	return res, nil
}

// Table renders the comparison.
func (r *PlacementResult) Table() Table {
	t := Table{
		Title:  "Placement: static spare vs consensus-backed scheduler under a multi-failure trace",
		Note:   "same hybrid tuning; scheduled variant also survives a standby-host kill per round and a placement-log leader kill mid-trace",
		Header: []string{"metric", "static", "scheduled"},
	}
	row := func(name, a, b string) { t.Rows = append(t.Rows, []string{name, a, b}) }
	sv, cv := r.Static, r.Scheduled
	row("machine crashes", fmt.Sprintf("%d", sv.Crashes), fmt.Sprintf("%d", cv.Crashes))
	row("failovers", fmt.Sprintf("%d", sv.Failovers), fmt.Sprintf("%d", cv.Failovers))
	row("promotions", fmt.Sprintf("%d", sv.Promotions), fmt.Sprintf("%d", cv.Promotions))
	row("re-arms", fmt.Sprintf("%d", sv.Rearms), fmt.Sprintf("%d", cv.Rearms))
	row("final states", fmt.Sprintf("%v", sv.FinalStates), fmt.Sprintf("%v", cv.FinalStates))
	row("ends unprotected", fmt.Sprintf("%v", sv.UnprotectedEnd), fmt.Sprintf("%v", cv.UnprotectedEnd))
	row("protected-time frac", f2(sv.ProtectedFrac), f2(cv.ProtectedFrac))
	row("anti-affinity violations", fmt.Sprintf("%d", sv.AntiAffinityViolations), fmt.Sprintf("%d", cv.AntiAffinityViolations))
	row("exactly-once lost", fmt.Sprintf("%d", sv.Lost), fmt.Sprintf("%d", cv.Lost))
	row("exactly-once duped", fmt.Sprintf("%d", sv.Duplicated), fmt.Sprintf("%d", cv.Duplicated))
	row("delivered", fmt.Sprintf("%d", sv.Delivered), fmt.Sprintf("%d", cv.Delivered))
	row("scheduler placements", "-", fmt.Sprintf("%d", cv.Placements))
	row("scheduler denials", "-", fmt.Sprintf("%d", cv.Denials))
	row("leader changes", "-", fmt.Sprintf("%d", cv.LeaderChanges))
	return t
}
