package experiment

import (
	"fmt"
	"sync"
	"time"

	"streamha/internal/core"
	"streamha/internal/failure"
	"streamha/internal/ha"
	"streamha/internal/metrics"
	"streamha/internal/transport"
)

// RecoveryPhases is one averaged recovery-time decomposition, the unit of
// Figures 7 and 8.
type RecoveryPhases struct {
	Mode ha.Mode
	// Swept parameter value (heartbeat or checkpoint interval).
	Param time.Duration
	// Detection, Deploy (redeployment for PS / resume for Hybrid) and
	// Reprocess (retransmission + reprocessing until first new output).
	Detection, Deploy, Reprocess time.Duration
}

// Total returns the full recovery time.
func (r RecoveryPhases) Total() time.Duration { return r.Detection + r.Deploy + r.Reprocess }

// outputLog records the times at which a node sent data messages, so the
// paper's "first new output data after the switch" can be located at the
// recovered copy's output rather than at the sink.
type outputLog struct {
	mu    sync.Mutex
	node  transport.NodeID
	clk   interface{ Now() time.Time }
	times []time.Time
}

func (l *outputLog) observe(from, _ transport.NodeID, msg *transport.Message) {
	if msg.Kind != transport.KindData || from != l.node {
		return
	}
	now := l.clk.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.times = append(l.times, now)
}

// firstAfter returns the earliest send strictly after t.
func (l *outputLog) firstAfter(t time.Time) (time.Time, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, at := range l.times {
		if at.After(t) {
			return at, true
		}
	}
	return time.Time{}, false
}

// runOneRecovery injects a single hard stall on the protected subjob's
// primary and decomposes the recovery.
func runOneRecovery(p Params, mode ha.Mode, hybrid core.Options, ps ha.PSOptions, outage time.Duration) (metrics.Recovery, error) {
	const protected = 1
	tb, err := newTestbed(testbedConfig{
		params: p,
		modes:  uniformModes(p.Subjobs, protected, mode),
		hybrid: hybrid,
		ps:     ps,
	})
	if err != nil {
		return metrics.Recovery{}, err
	}
	defer tb.close()
	if err := tb.pipe.Start(); err != nil {
		return metrics.Recovery{}, err
	}
	time.Sleep(p.Warmup)

	// The recovery copy runs on the secondary machine in both modes.
	log := &outputLog{node: tb.cl.Machine(fmt.Sprintf("s%d", protected)).ID(), clk: tb.cl.Clock()}
	tb.cl.Network().SetObserver(log.observe)
	priM := tb.cl.Machine(fmt.Sprintf("p%d", protected))
	spike := failure.InjectOnce(priM.CPU(), tb.cl.Clock(), 1.0, outage, 0)
	time.Sleep(400 * time.Millisecond) // settle
	tb.cl.Network().SetObserver(nil)

	if mode != ha.ModePassive && mode != ha.ModeHybrid {
		return metrics.Recovery{}, fmt.Errorf("experiment: recovery decomposition needs PS or Hybrid, got %s", mode)
	}
	g := tb.pipe.Group(protected)
	rec := metrics.Recovery{FailureAt: spike.Start}
	// Select the first failover event (migration for PS, switchover for
	// Hybrid) belonging to this spike: startup noise can produce an earlier
	// false-alarm event.
	found := false
	for _, sw := range g.HA.Failovers() {
		if !sw.DetectedAt.Before(spike.Start) {
			rec.DetectedAt = sw.DetectedAt
			rec.ReadyAt = sw.ReadyAt
			found = true
			break
		}
	}
	if !found {
		return rec, fmt.Errorf("experiment: %s did not fail over within the outage", mode)
	}
	first, ok := log.firstAfter(rec.ReadyAt)
	if !ok {
		return rec, fmt.Errorf("experiment: no output after recovery")
	}
	rec.FirstOutputAt = first
	return rec, nil
}

// averageRecoveries runs repeats single-spike recoveries and averages the
// phases.
func averageRecoveries(p Params, mode ha.Mode, hybrid core.Options, ps ha.PSOptions, outage time.Duration, repeats int) (RecoveryPhases, error) {
	var out RecoveryPhases
	out.Mode = mode
	ok := 0
	for i := 0; i < repeats; i++ {
		pp := p
		pp.Seed = p.Seed + int64(i)
		rec, err := runOneRecovery(pp, mode, hybrid, ps, outage)
		if err != nil {
			continue
		}
		out.Detection += rec.Detection()
		out.Deploy += rec.Deploy()
		out.Reprocess += rec.Reprocess()
		ok++
	}
	if ok == 0 {
		return out, fmt.Errorf("experiment: no successful recovery for %s", mode)
	}
	out.Detection /= time.Duration(ok)
	out.Deploy /= time.Duration(ok)
	out.Reprocess /= time.Duration(ok)
	return out, nil
}

// Fig07Result reproduces Figure 7: recovery time decomposition vs the
// heartbeat interval, for PS (3 misses) and Hybrid (1 miss).
type Fig07Result struct {
	Rows []RecoveryPhases
}

// Fig07Intervals is the default heartbeat sweep (paper 100–500 ms at
// one-fifth scale).
var Fig07Intervals = []time.Duration{
	20 * time.Millisecond, 40 * time.Millisecond, 60 * time.Millisecond,
	80 * time.Millisecond, 100 * time.Millisecond,
}

// RunFig07 sweeps the heartbeat interval at a fixed checkpoint interval.
func RunFig07(p Params, intervals []time.Duration, repeats int) (*Fig07Result, error) {
	p = p.withDefaults()
	if len(intervals) == 0 {
		intervals = Fig07Intervals
	}
	if repeats <= 0 {
		repeats = 3
	}
	res := &Fig07Result{}
	for _, hb := range intervals {
		// The outage must comfortably cover 3 misses at the largest
		// interval plus recovery work.
		outage := 4*hb*3 + 300*time.Millisecond
		for _, mode := range []ha.Mode{ha.ModePassive, ha.ModeHybrid} {
			pp := p
			pp.HeartbeatInterval = hb
			row, err := averageRecoveries(pp, mode,
				core.Options{HeartbeatInterval: hb, CheckpointInterval: p.CheckpointInterval},
				ha.PSOptions{HeartbeatInterval: hb, CheckpointInterval: p.CheckpointInterval},
				outage, repeats)
			if err != nil {
				return nil, err
			}
			row.Param = hb
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Table renders the result.
func (r *Fig07Result) Table() Table {
	t := Table{
		Title:  "Figure 7: recovery time decomposition vs heartbeat interval",
		Note:   "paper shape: detection = 1×hb (Hybrid) vs 3×hb (PS), both linear; resume ≈ 1/4 of redeploy; Hybrid total ≈ 1/3 PS",
		Header: []string{"mode", "hb(ms)", "detection(ms)", "deploy/resume(ms)", "retrans/reproc(ms)", "total(ms)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Mode.String(), ms(row.Param),
			ms(row.Detection), ms(row.Deploy), ms(row.Reprocess), ms(row.Total()),
		})
	}
	return t
}

// Fig08Result reproduces Figure 8: recovery time decomposition vs the
// checkpoint interval at a fixed heartbeat interval.
type Fig08Result struct {
	Rows []RecoveryPhases
}

// Fig08Intervals is the default checkpoint sweep (paper 100–900 ms at
// one-fifth scale).
var Fig08Intervals = []time.Duration{
	20 * time.Millisecond, 60 * time.Millisecond, 100 * time.Millisecond,
	140 * time.Millisecond, 180 * time.Millisecond,
}

// RunFig08 sweeps the checkpoint interval at a fixed heartbeat interval.
func RunFig08(p Params, intervals []time.Duration, repeats int) (*Fig08Result, error) {
	p = p.withDefaults()
	if len(intervals) == 0 {
		intervals = Fig08Intervals
	}
	if repeats <= 0 {
		repeats = 3
	}
	res := &Fig08Result{}
	outage := 800 * time.Millisecond
	for _, ck := range intervals {
		for _, mode := range []ha.Mode{ha.ModePassive, ha.ModeHybrid} {
			pp := p
			pp.CheckpointInterval = ck
			row, err := averageRecoveries(pp, mode,
				core.Options{HeartbeatInterval: p.HeartbeatInterval, CheckpointInterval: ck},
				ha.PSOptions{HeartbeatInterval: p.HeartbeatInterval, CheckpointInterval: ck},
				outage, repeats)
			if err != nil {
				return nil, err
			}
			row.Param = ck
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Table renders the result.
func (r *Fig08Result) Table() Table {
	t := Table{
		Title:  "Figure 8: recovery time decomposition vs checkpoint interval",
		Note:   "paper shape: retrans/reproc grows mildly with the interval; detection and deploy dominate, total ~flat",
		Header: []string{"mode", "ckpt(ms)", "detection(ms)", "deploy/resume(ms)", "retrans/reproc(ms)", "total(ms)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Mode.String(), ms(row.Param),
			ms(row.Detection), ms(row.Deploy), ms(row.Reprocess), ms(row.Total()),
		})
	}
	return t
}
