package experiment

import (
	"fmt"
	"sync/atomic"
	"time"

	"streamha/internal/failure"
	"streamha/internal/ha"
	"streamha/internal/transport"
)

// Fig09And10Point is one (rate, outage duration) measurement of the hybrid
// switchover/rollback cycle.
type Fig09And10Point struct {
	Rate   float64
	Outage time.Duration
	// SwitchoverTime is detection-declared to standby running+connected.
	SwitchoverTime time.Duration
	// RollbackTime is recovery-declared to primary holding the read state.
	RollbackTime time.Duration
	// OverheadElements is the message overhead of the cycle: element units
	// sent to the unresponsive primary during the outage, plus the state
	// read back at rollback (Figure 10's metric).
	OverheadElements int64
	// ReadStateElements is the read-back state's share of it.
	ReadStateElements int64
}

// Fig09And10Result reproduces Figures 9 and 10 in one family of runs.
type Fig09And10Result struct {
	Points []Fig09And10Point
}

// Fig09Rates is the default rate sweep (the paper's 100–700 elements/s).
var Fig09Rates = []float64{100, 300, 500, 700}

// Fig09Outages are the outage durations (paper: 5 s and 10 s at one-fifth
// scale).
var Fig09Outages = []time.Duration{time.Second, 2 * time.Second}

// RunFig09And10 overloads the protected subjob's primary for fixed
// periods at each rate and measures switchover time, rollback time and
// the cycle's message overhead.
func RunFig09And10(p Params, rates []float64, outages []time.Duration, repeats int) (*Fig09And10Result, error) {
	p = p.withDefaults()
	if len(rates) == 0 {
		rates = Fig09Rates
	}
	if len(outages) == 0 {
		outages = Fig09Outages
	}
	if repeats <= 0 {
		repeats = 3
	}
	const protected = 1
	res := &Fig09And10Result{}
	for _, outage := range outages {
		for _, rate := range rates {
			var swSum, rbSum time.Duration
			var ovSum, rsSum int64
			ok := 0
			for rep := 0; rep < repeats; rep++ {
				pp := p
				pp.Rate = rate
				pp.Seed = p.Seed + int64(rep)
				tb, err := newTestbed(testbedConfig{
					params: pp,
					modes:  uniformModes(pp.Subjobs, protected, ha.ModeHybrid),
				})
				if err != nil {
					return nil, err
				}
				if err := tb.pipe.Start(); err != nil {
					tb.close()
					return nil, err
				}
				time.Sleep(pp.Warmup)

				priM := tb.cl.Machine(fmt.Sprintf("p%d", protected))
				priNode := priM.ID()

				// Count element units addressed to the stalled primary
				// during the outage window.
				var counting atomic.Bool
				var toPrimary atomic.Int64
				tb.cl.Network().SetObserver(func(_, to transport.NodeID, msg *transport.Message) {
					if counting.Load() && to == priNode {
						if n := msg.ElementUnits(); n > 0 {
							toPrimary.Add(int64(n))
						}
					}
				})
				counting.Store(true)
				spike := failure.InjectOnce(priM.CPU(), tb.cl.Clock(), 1.0, outage, 0)
				counting.Store(false)
				time.Sleep(400 * time.Millisecond) // let the rollback finish
				tb.cl.Network().SetObserver(nil)

				g := tb.pipe.Group(protected)
				var swDur, rbDur time.Duration
				var rsUnits int64
				found := false
				for _, sw := range g.HA.Switches() {
					if !sw.DetectedAt.Before(spike.Start) {
						swDur = sw.ReadyAt.Sub(sw.DetectedAt)
						found = true
						break
					}
				}
				for _, rb := range g.HA.Rollbacks() {
					if !rb.StartedAt.Before(spike.Start) {
						rbDur = rb.DoneAt.Sub(rb.StartedAt)
						rsUnits = int64(rb.StateUnits)
						break
					}
				}
				tb.close()
				if !found || rbDur == 0 {
					continue
				}
				swSum += swDur
				rbSum += rbDur
				// The paper's metric: data sent to the unresponsive primary
				// during the failure, plus the state read back at rollback.
				ovSum += toPrimary.Load() + rsUnits
				rsSum += rsUnits
				ok++
			}
			if ok == 0 {
				return nil, fmt.Errorf("experiment: no completed switch/rollback cycle at rate %.0f", rate)
			}
			res.Points = append(res.Points, Fig09And10Point{
				Rate:              rate,
				Outage:            outage,
				SwitchoverTime:    swSum / time.Duration(ok),
				RollbackTime:      rbSum / time.Duration(ok),
				OverheadElements:  ovSum / int64(ok),
				ReadStateElements: rsSum / int64(ok),
			})
		}
	}
	return res, nil
}

// Fig09Table renders the timing half (Figure 9).
func (r *Fig09And10Result) Fig09Table() Table {
	t := Table{
		Title:  "Figure 9: switchover and rollback time vs data rate",
		Note:   "paper shape: switchover flat across rates; rollback grows with rate (state read-back); ~+20% overall over the sweep",
		Header: []string{"outage", "rate(elem/s)", "switchover(ms)", "rollback(ms)", "total(ms)"},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			pt.Outage.String(),
			fmt.Sprintf("%.0f", pt.Rate),
			ms(pt.SwitchoverTime),
			ms(pt.RollbackTime),
			ms(pt.SwitchoverTime + pt.RollbackTime),
		})
	}
	return t
}

// Fig10Table renders the overhead half (Figure 10).
func (r *Fig09And10Result) Fig10Table() Table {
	t := Table{
		Title:  "Figure 10: switchover and rollback message overhead vs data rate",
		Note:   "paper shape: overhead ≈ rate × outage duration (data to the unresponsive primary dominates); read-state share small",
		Header: []string{"outage", "rate(elem/s)", "overhead-elems", "read-state-elems", "rate×outage"},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			pt.Outage.String(),
			fmt.Sprintf("%.0f", pt.Rate),
			fmt.Sprintf("%d", pt.OverheadElements),
			fmt.Sprintf("%d", pt.ReadStateElements),
			fmt.Sprintf("%.0f", pt.Rate*pt.Outage.Seconds()),
		})
	}
	return t
}
