// Keyed-parallelism scaling: throughput versus partition-instance count on
// the counter workload, plus a live n→n+1 rescale with exactly-once
// verification. This is the evaluation for the "-fig scale" figure: the
// paper scales subjobs out for availability; this figure shows the same
// subjob machinery scaling for throughput, and that the delta-checkpoint
// shipping built for standby refresh doubles as live state migration.
package experiment

import (
	"fmt"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/ha"
	"streamha/internal/subjob"
)

// ScaleParallelisms is the instance-count sweep of the scaling figure.
var ScaleParallelisms = []int{1, 2, 4, 8}

// ScalePoint is one measured instance count.
type ScalePoint struct {
	Parallelism int
	ElemsPerSec float64
	Speedup     float64
}

// ScaleRescale is the live n→n+1 rescale measurement.
type ScaleRescale struct {
	From, To     int
	CutoverPause time.Duration
	SyncDuration time.Duration
	Rounds       int
	FullBytes    int
	DeltaBytes   int
	Moved        int
	Emitted      uint64
	Delivered    uint64
	Lost         uint64
	Duplicated   uint64
}

// ScaleResult is the scaling figure's data.
type ScaleResult struct {
	Points  []ScalePoint
	Rescale ScaleRescale
}

// scalePECost is the per-element CPU work of each PE in the scaling
// workload; two PEs per instance give a per-instance capacity of about
// 25k elements/s, low enough that a single host CPU can offer several
// saturated instances worth of simulated work.
const scalePECost = 20 * time.Microsecond

func scalePEs(pad int) []subjob.PESpec {
	return []subjob.PESpec{
		{Name: "pe0", NewLogic: newCounterLogic(pad), Cost: scalePECost},
		{Name: "pe1", NewLogic: newCounterLogic(pad), Cost: scalePECost},
	}
}

// runScalePoint measures sink throughput of a single keyed-parallel stage
// at parallelism n under an offered load well above one instance's
// capacity.
func runScalePoint(n int, rate float64, warmup, run time.Duration) (float64, error) {
	cl := cluster.New(cluster.Config{Latency: 200 * time.Microsecond})
	defer cl.Close()
	cl.MustAddMachine("m-src")
	cl.MustAddMachine("m-sink")
	primaries := make([]string, n)
	for k := range primaries {
		primaries[k] = fmt.Sprintf("p%d", k)
		cl.MustAddMachine(primaries[k])
	}

	pipe, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "scale",
		Source:      ha.SourceDef{Machine: "m-src", Rate: rate, Tick: 2 * time.Millisecond},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{{
			PEs:         scalePEs(50),
			Mode:        ha.ModeNone,
			Parallelism: n,
			Primaries:   primaries,
			Primary:     primaries[0],
			BatchSize:   32,
		}},
	})
	if err != nil {
		return 0, err
	}
	defer pipe.Stop()
	if err := pipe.Start(); err != nil {
		return 0, err
	}

	clk := cl.Clock()
	clk.Sleep(warmup)
	rec0, t0 := pipe.Sink().Received(), clk.Now()
	clk.Sleep(run)
	rec1, t1 := pipe.Sink().Received(), clk.Now()
	return float64(rec1-rec0) / t1.Sub(t0).Seconds(), nil
}

// runScaleRescale runs a hybrid-protected Parallelism(2) stage at a
// comfortable load, scales it out to 3 instances mid-run, then stops the
// source, drains, and audits the sink's per-ID delivery counts.
func runScaleRescale(serve time.Duration) (ScaleRescale, error) {
	var res ScaleRescale
	cl := cluster.New(cluster.Config{Latency: 200 * time.Microsecond})
	defer cl.Close()
	for _, m := range []string{"m-src", "m-sink", "p0", "p1", "s0", "s1", "p-new", "s-new"} {
		cl.MustAddMachine(m)
	}

	pipe, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "rescale",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 12000, Tick: 2 * time.Millisecond},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{{
			PEs:         scalePEs(50),
			Mode:        ha.ModeHybrid,
			Parallelism: 2,
			Primaries:   []string{"p0", "p1"},
			Secondaries: []string{"s0", "s1"},
			Primary:     "p0",
			Secondary:   "s0",
			BatchSize:   32,
		}},
		Hybrid:   core.Options{CheckpointInterval: 10 * time.Millisecond},
		TrackIDs: true,
	})
	if err != nil {
		return res, err
	}
	defer pipe.Stop()
	if err := pipe.Start(); err != nil {
		return res, err
	}

	clk := cl.Clock()
	clk.Sleep(serve)
	rep, err := pipe.ScaleOut(0, ha.RescalePlacement{Primary: "p-new", Secondary: "s-new"}, ha.RescaleOptions{})
	if err != nil {
		return res, err
	}
	clk.Sleep(serve)

	// Quiesce: stop the offered load and wait until the sink stops
	// advancing, so nothing is legitimately in flight when we audit.
	pipe.Source().Stop()
	last := pipe.Sink().Received()
	for settle := 0; settle < 10; {
		clk.Sleep(50 * time.Millisecond)
		if now := pipe.Sink().Received(); now != last {
			last, settle = now, 0
		} else {
			settle++
		}
	}

	res = ScaleRescale{
		From:         2,
		To:           3,
		CutoverPause: rep.CutoverPause,
		SyncDuration: rep.SyncDuration,
		Rounds:       rep.Rounds,
		FullBytes:    rep.FullBytes,
		DeltaBytes:   rep.DeltaBytes,
		Moved:        len(rep.Moved),
		Emitted:      pipe.Source().Emitted(),
		Delivered:    pipe.Sink().Received(),
	}
	counts := pipe.Sink().IDCounts()
	for _, c := range counts {
		if c > 1 {
			res.Duplicated += uint64(c - 1)
		}
	}
	if distinct := uint64(len(counts)); distinct < res.Emitted {
		res.Lost = res.Emitted - distinct
	}
	return res, nil
}

// RunScale produces the keyed-parallelism scaling figure. smoke restricts
// the sweep to n ∈ {1, 4} with short runs for CI.
func RunScale(smoke bool) (*ScaleResult, error) {
	ns := ScaleParallelisms
	warmup, run, serve := 500*time.Millisecond, 2*time.Second, 600*time.Millisecond
	if smoke {
		ns = []int{1, 4}
		warmup, run, serve = 300*time.Millisecond, 700*time.Millisecond, 300*time.Millisecond
	}

	// Offered load: about 6x one instance's capacity, so every swept n
	// short of saturation is compute-bound and the curve reflects the
	// fan-out, not the source.
	const rate = 150000

	r := &ScaleResult{}
	for _, n := range ns {
		eps, err := runScalePoint(n, rate, warmup, run)
		if err != nil {
			return nil, err
		}
		r.Points = append(r.Points, ScalePoint{Parallelism: n, ElemsPerSec: eps})
	}
	base := r.Points[0].ElemsPerSec
	for i := range r.Points {
		if base > 0 {
			r.Points[i].Speedup = r.Points[i].ElemsPerSec / base
		}
	}

	resc, err := runScaleRescale(serve)
	if err != nil {
		return nil, err
	}
	r.Rescale = resc
	return r, nil
}

// Table renders the scaling sweep and the rescale audit.
func (r *ScaleResult) Table() Table {
	t := Table{
		Title:  "Keyed parallelism: counter-workload throughput vs partition instances",
		Note:   "hash fan-out by element key; saturating offered load; one instance per machine; plus a live 2->3 rescale (hybrid mode) with exactly-once audit",
		Header: []string{"instances", "elems/s", "speedup"},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pt.Parallelism),
			fmt.Sprintf("%.0f", pt.ElemsPerSec),
			f2(pt.Speedup) + "x",
		})
	}
	rs := r.Rescale
	t.Rows = append(t.Rows, []string{"", "", ""})
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("rescale %d->%d", rs.From, rs.To), "", "",
	})
	t.Rows = append(t.Rows, []string{"  cutover pause", ms(rs.CutoverPause) + " ms", ""})
	t.Rows = append(t.Rows, []string{"  sync total", ms(rs.SyncDuration) + " ms", fmt.Sprintf("%d rounds", rs.Rounds)})
	t.Rows = append(t.Rows, []string{"  shipped", fmt.Sprintf("%d B full", rs.FullBytes), fmt.Sprintf("%d B delta", rs.DeltaBytes)})
	t.Rows = append(t.Rows, []string{"  partitions moved", fmt.Sprintf("%d", rs.Moved), ""})
	t.Rows = append(t.Rows, []string{"  exactly-once", fmt.Sprintf("lost %d", rs.Lost), fmt.Sprintf("duped %d", rs.Duplicated)})
	return t
}
