package experiment

import (
	"fmt"
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/cluster"
	"streamha/internal/pe"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

// SweepingRow is one checkpointing variant's measurements.
type SweepingRow struct {
	Label string
	// Checkpoints is how many checkpoints were taken over the window.
	Checkpoints int
	// Elements is the checkpoint traffic in element units.
	Elements int64
	// Messages is the number of checkpoint messages.
	Messages int64
	// MeanPause is the average PE suspension per checkpoint.
	MeanPause time.Duration
}

// SweepingResult reproduces the Section III comparison: sweeping
// checkpointing against the synchronous and individual variants
// (the authors' earlier work reports sweeping ~4× faster with ~10% of the
// message overhead).
type SweepingResult struct {
	Window time.Duration
	Rows   []SweepingRow
}

// RunSweeping builds a one-subjob job by hand (so the checkpoint manager
// variant can be chosen directly) and measures checkpoint cost per
// variant.
func RunSweeping(p Params) (*SweepingResult, error) {
	p = p.withDefaults()
	if p.Run > 2*time.Second {
		p.Run = 2 * time.Second
	}
	interval := 10 * time.Millisecond
	res := &SweepingResult{Window: p.Run}

	type variant struct {
		label string
		build func(cfg checkpoint.Config) checkpoint.Manager
		taken func(m checkpoint.Manager) (int, time.Duration)
	}
	variants := []variant{
		{
			label: "sweeping",
			build: func(cfg checkpoint.Config) checkpoint.Manager { return checkpoint.NewSweeping(cfg) },
			taken: func(m checkpoint.Manager) (int, time.Duration) {
				s := m.(*checkpoint.Sweeping)
				return s.Taken(), s.MeanPause()
			},
		},
		{
			label: "synchronous",
			build: func(cfg checkpoint.Config) checkpoint.Manager { return checkpoint.NewSynchronous(cfg) },
			taken: func(m checkpoint.Manager) (int, time.Duration) {
				s := m.(*checkpoint.Synchronous)
				return s.Taken(), s.MeanPause()
			},
		},
		{
			label: "individual",
			build: func(cfg checkpoint.Config) checkpoint.Manager { return checkpoint.NewIndividual(cfg) },
			taken: func(m checkpoint.Manager) (int, time.Duration) {
				s := m.(*checkpoint.Individual)
				return s.Taken(), s.MeanPause()
			},
		},
	}

	for _, v := range variants {
		cl := cluster.New(cluster.Config{Latency: p.Latency})
		srcM := cl.MustAddMachine("m-src")
		sinkM := cl.MustAddMachine("m-sink")
		priM := cl.MustAddMachine("p0")
		secM := cl.MustAddMachine("s0")

		// Small internal state, high rate and small batches make the queue
		// contributions to checkpoint size and pause time visible, as in
		// the workload of the authors' earlier study.
		spec := subjob.Spec{
			JobID:     "swp",
			ID:        "swp/sj0",
			InStreams: []string{"s0"},
			Owners:    map[string]string{"s0": cluster.SourceOwner},
			OutStream: "s1",
			BatchSize: 8,
			PEs: []subjob.PESpec{
				{Name: "pe0", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 4} }, Cost: 60 * time.Microsecond},
				{Name: "pe1", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 4} }, Cost: 60 * time.Microsecond},
			},
		}
		rt, err := subjob.New(spec, priM, false)
		if err != nil {
			cl.Close()
			return nil, err
		}
		rt.Start()

		src := cluster.NewSource(cluster.SourceConfig{
			Machine: srcM,
			Clock:   cl.Clock(),
			Stream:  "s0",
			Rate:    3000,
		})
		sink := cluster.NewSink(cluster.SinkConfig{
			Machine:     sinkM,
			Clock:       cl.Clock(),
			ID:          "swp/sink",
			InStreams:   []string{"s1"},
			Owners:      map[string]string{"s1": spec.ID},
			AckInterval: interval,
		})
		src.Out().Subscribe(priM.ID(), subjob.DataStream(spec.ID, "s0"), true)
		rt.Out().Subscribe(sinkM.ID(), subjob.DataStream(sink.ID(), "s1"), true)

		store := checkpoint.NewStore(secM, spec.ID, checkpoint.InMemory, 0)
		cm := v.build(checkpoint.Config{
			Runtime:   rt,
			Clock:     cl.Clock(),
			Interval:  interval,
			StoreNode: secM.ID(),
			Costs:     checkpoint.Costs{Base: 200 * time.Microsecond, PerUnit: 10 * time.Microsecond},
		})
		sink.Start()
		cm.Start()
		src.Start()

		time.Sleep(p.Warmup)
		before := cl.Stats()
		taken0, _ := v.taken(cm)
		time.Sleep(p.Run)
		delta := cl.Stats().Sub(before)
		taken1, pause := v.taken(cm)

		src.Stop()
		cm.Stop()
		sink.Stop()
		store.Close()
		rt.Stop()
		cl.Close()

		res.Rows = append(res.Rows, SweepingRow{
			Label:       v.label,
			Checkpoints: taken1 - taken0,
			Elements:    delta.Elements[transport.KindCheckpoint],
			Messages:    delta.Messages[transport.KindCheckpoint],
			MeanPause:   pause,
		})
	}
	return res, nil
}

// Table renders the result.
func (r *SweepingResult) Table() Table {
	t := Table{
		Title:  fmt.Sprintf("Section III: sweeping vs synchronous vs individual checkpointing (%.1fs window)", r.Window.Seconds()),
		Note:   "paper claim (from the authors' earlier work): sweeping is ~4× faster with ~10% of the message overhead",
		Header: []string{"variant", "checkpoints", "ckpt-elems", "ckpt-msgs", "elems/ckpt", "mean-pause(ms)"},
	}
	for _, row := range r.Rows {
		per := int64(0)
		if row.Checkpoints > 0 {
			per = row.Elements / int64(row.Checkpoints)
		}
		t.Rows = append(t.Rows, []string{
			row.Label,
			fmt.Sprintf("%d", row.Checkpoints),
			fmt.Sprintf("%d", row.Elements),
			fmt.Sprintf("%d", row.Messages),
			fmt.Sprintf("%d", per),
			ms(row.MeanPause),
		})
	}
	return t
}
