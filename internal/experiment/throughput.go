package experiment

import (
	"fmt"
	"sync/atomic"
	"testing"

	"streamha/internal/element"
	"streamha/internal/queue"
	"streamha/internal/transport"
)

// This file measures the data plane itself rather than a paper figure: raw
// publish/ack/trim throughput of an output queue over a real transport.
// The benchmark bodies are shared between the go-test harness
// (BenchmarkThroughput* in bench_throughput_test.go) and streamha-bench
// -fig throughput, which runs them through testing.Benchmark and prints a
// table, so the numbers recorded in bench_results_full.txt and the ones CI
// smoke-runs are produced by the same code.

// ThroughputBatch is the per-publish batch size used by the data-plane
// benchmarks, matching the default PE batch size.
const ThroughputBatch = 64

// throughputAckLag is how many batches the mem-publish benchmark keeps
// retained before acking, so trims run continuously.
const throughputAckLag = 4

// NewThroughputBatch builds one publish batch. Each call allocates: under
// the queue package's ownership rules a publisher hands the batch over and
// may not reuse it, so the allocation is an inherent producer cost and is
// deliberately inside the measured loop.
func NewThroughputBatch(n int, idBase uint64) []element.Element {
	batch := make([]element.Element, n)
	for i := range batch {
		batch[i] = element.Element{ID: idBase + uint64(i), Origin: 1, Payload: int64(i)}
	}
	return batch
}

// BenchPublishMem is the publish fan-out benchmark body over the in-memory
// transport with subs active subscribers, acking with a fixed lag so the
// retained window stays bounded and trims happen continuously.
func BenchPublishMem(b *testing.B, subs int) {
	net := transport.NewMem(transport.MemConfig{})
	defer net.Close()

	var delivered atomic.Int64
	subNodes := make([]transport.NodeID, subs)
	for i := range subNodes {
		subNodes[i] = transport.NodeID(fmt.Sprintf("sub%d", i))
		if _, err := net.Register(subNodes[i], func(_ transport.NodeID, msg transport.Message) {
			delivered.Add(int64(len(msg.Elements)))
		}); err != nil {
			b.Fatal(err)
		}
	}
	ep, err := net.Register("pub", func(transport.NodeID, transport.Message) {})
	if err != nil {
		b.Fatal(err)
	}
	out := queue.NewOutput("st", func(to transport.NodeID, msg transport.Message) {
		_ = ep.Send(to, msg)
	})
	for _, n := range subNodes {
		out.Subscribe(n, "in", true)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var published uint64
	for i := 0; i < b.N; i++ {
		out.Publish(NewThroughputBatch(ThroughputBatch, published))
		published += ThroughputBatch
		if i >= throughputAckLag {
			ackTo := published - throughputAckLag*ThroughputBatch
			for _, n := range subNodes {
				out.Ack(n, ackTo)
			}
		}
	}
	b.StopTimer()
	elems := float64(b.N) * ThroughputBatch
	b.ReportMetric(elems/b.Elapsed().Seconds(), "elems/s")
}

// BenchAckTrim isolates cumulative-ack trimming with a large retained
// window: each iteration publishes one batch and trims one batch off the
// head while windowBatches batches stay retained — the pattern a
// slow-but-steady downstream produces.
func BenchAckTrim(b *testing.B) {
	const windowBatches = 16
	out := queue.NewOutput("st", func(transport.NodeID, transport.Message) {})
	out.Subscribe("down", "in", true)

	var published uint64
	for i := 0; i < windowBatches; i++ {
		out.Publish(NewThroughputBatch(ThroughputBatch, published))
		published += ThroughputBatch
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Publish(NewThroughputBatch(ThroughputBatch, published))
		published += ThroughputBatch
		out.Ack("down", published-windowBatches*ThroughputBatch)
	}
	b.StopTimer()
	elems := float64(b.N) * ThroughputBatch
	b.ReportMetric(elems/b.Elapsed().Seconds(), "elems/s")
}

// BenchPublishTCP runs the publish path across a real TCP loopback
// connection, exercising the wire codec: the publisher lives on one TCP
// segment and the subscriber on another.
func BenchPublishTCP(b *testing.B) {
	recv, err := transport.NewTCP(transport.TCPConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	var delivered atomic.Int64
	if _, err := recv.Register("sub0", func(_ transport.NodeID, msg transport.Message) {
		delivered.Add(int64(len(msg.Elements)))
	}); err != nil {
		b.Fatal(err)
	}

	send, err := transport.NewTCP(transport.TCPConfig{
		Peers: map[transport.NodeID]string{"sub0": recv.Addr()},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()
	ep, err := send.Register("pub", func(transport.NodeID, transport.Message) {})
	if err != nil {
		b.Fatal(err)
	}
	out := queue.NewOutput("st", func(to transport.NodeID, msg transport.Message) {
		_ = ep.Send(to, msg)
	})
	out.Subscribe("sub0", "in", true)

	b.ReportAllocs()
	b.ResetTimer()
	var published uint64
	for i := 0; i < b.N; i++ {
		out.Publish(NewThroughputBatch(ThroughputBatch, published))
		published += ThroughputBatch
		// Ack locally: the ack plane is queue-local here, the wire cost
		// under test is the data path.
		out.Ack("sub0", published)
	}
	b.StopTimer()
	elems := float64(b.N) * ThroughputBatch
	b.ReportMetric(elems/b.Elapsed().Seconds(), "elems/s")
}

// ThroughputRow is one data-plane benchmark measurement.
type ThroughputRow struct {
	Name        string
	ElemsPerSec float64
	NsPerOp     float64
	BytesPerOp  int64
	AllocsPerOp int64
}

// ThroughputResult holds the data-plane benchmark sweep.
type ThroughputResult struct {
	Rows []ThroughputRow
}

// RunThroughput runs the data-plane benchmark family via
// testing.Benchmark, outside the go-test harness.
func RunThroughput() *ThroughputResult {
	res := &ThroughputResult{}
	add := func(name string, body func(b *testing.B)) {
		r := testing.Benchmark(body)
		elems := float64(r.N) * ThroughputBatch
		res.Rows = append(res.Rows, ThroughputRow{
			Name:        name,
			ElemsPerSec: elems / r.T.Seconds(),
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	for _, subs := range []int{1, 2, 4, 8} {
		subs := subs
		add(fmt.Sprintf("publish/mem-subs-%d", subs), func(b *testing.B) { BenchPublishMem(b, subs) })
	}
	add("ack-trim", BenchAckTrim)
	add("publish/tcp", BenchPublishTCP)
	return res
}

// Table renders the result.
func (r *ThroughputResult) Table() Table {
	t := Table{
		Title:  "Data-plane throughput: publish/ack/trim hot path (batch of 64)",
		Note:   "sharded delivery + ring-buffer trims + zero-copy fan-out; the one remaining alloc/op is the producer's own batch",
		Header: []string{"benchmark", "elems/s", "ns/op", "B/op", "allocs/op"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Name,
			fmt.Sprintf("%.0f", row.ElemsPerSec),
			fmt.Sprintf("%.0f", row.NsPerOp),
			fmt.Sprintf("%d", row.BytesPerOp),
			fmt.Sprintf("%d", row.AllocsPerOp),
		})
	}
	return t
}
