package experiment

import (
	"bytes"
	"container/heap"
	"encoding/gob"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamha/internal/transport"
)

// This file measures the wire path: the cost of encoding one frame for the
// TCP transport (hand-rolled length-prefixed binary codec vs the seed's gob
// framing, which tcp.go keeps behind TCPConfig.Codec as the frozen
// baseline), the end-to-end publish rate over a real socket under both
// codecs, and the in-memory latency scheduler's throughput (timing wheel vs
// a frozen copy of the seed's global-mutex container/heap scheduler). The
// bodies are shared between the go-test harness (BenchmarkWire* in
// bench_wire_test.go, which CI smoke-runs) and streamha-bench -fig wire, so
// recorded numbers come from the same code.

// gobWireFrame mirrors the TCP transport's gob wire unit, for the encode
// baseline benchmark.
type gobWireFrame struct {
	From transport.NodeID
	To   transport.NodeID
	Msg  transport.Message
}

// wireBenchMessage builds the data frame the codec benchmarks encode: one
// publish batch of ThroughputBatch elements, the hot shape on the wire.
func wireBenchMessage() transport.Message {
	return transport.Message{
		Kind:     transport.KindData,
		Stream:   "job/s1",
		Elements: NewThroughputBatch(ThroughputBatch, 1),
	}
}

// BenchWireEncodeBinary measures encoding one data frame with the binary
// codec into a recycled buffer — the TCP writer's steady-state encode cost.
func BenchWireEncodeBinary(b *testing.B) {
	msg := wireBenchMessage()
	var dst []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = transport.AppendFrame(dst[:0], "pe-3", "sink-1", &msg)
	}
	b.StopTimer()
	b.SetBytes(int64(len(dst)))
}

// BenchWireEncodeGob measures the same frame through a persistent gob
// encoder writing to a reset buffer, reproducing the seed writer's shape:
// the seed encoded `&f` for each frame copied out of the drained batch, so
// every message heap-allocates its frame on top of gob's own encode work.
func BenchWireEncodeGob(b *testing.B) {
	frame := gobWireFrame{From: "pe-3", To: "sink-1", Msg: wireBenchMessage()}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(&frame); err != nil { // prime the type descriptors
		b.Fatal(err)
	}
	frameLen := buf.Len()
	buf.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		f := frame
		if err := enc.Encode(&f); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.SetBytes(int64(frameLen))
}

// BenchWireDecodeBinary measures decoding one binary data frame.
func BenchWireDecodeBinary(b *testing.B) {
	msg := wireBenchMessage()
	buf := transport.AppendFrame(nil, "pe-3", "sink-1", &msg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := transport.DecodeFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.SetBytes(int64(len(buf)))
}

// BenchWireTCPPublish runs the publish path across a real TCP loopback
// connection under the given codec: the wire-path cost end to end,
// including the writer's batch drain and single-flush writes.
func BenchWireTCPPublish(b *testing.B, codec transport.Codec) {
	recv, err := transport.NewTCP(transport.TCPConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	var delivered atomic.Int64
	if _, err := recv.Register("sub0", func(_ transport.NodeID, msg transport.Message) {
		delivered.Add(int64(len(msg.Elements)))
	}); err != nil {
		b.Fatal(err)
	}

	send, err := transport.NewTCP(transport.TCPConfig{
		Peers: map[transport.NodeID]string{"sub0": recv.Addr()},
		Codec: codec,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()
	ep, err := send.Register("pub", func(transport.NodeID, transport.Message) {})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var published uint64
	for i := 0; i < b.N; i++ {
		batch := NewThroughputBatch(ThroughputBatch, published)
		published += ThroughputBatch
		if err := ep.Send("sub0", transport.Message{Kind: transport.KindData, Stream: "s", Elements: batch}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elems := float64(b.N) * ThroughputBatch
	b.ReportMetric(elems/b.Elapsed().Seconds(), "elems/s")
}

// ---------------------------------------------------------------------------
// Latency-scheduler benchmarks: timing wheel vs frozen seed heap.

// seedPendingDelivery and seedDeliveryQueue are the seed scheduler's heap
// entry and container/heap implementation, retained verbatim as a baseline
// after mem.go moved to the timing wheel.
type seedPendingDelivery struct {
	at   time.Time
	seq  uint64
	from transport.NodeID
	to   transport.NodeID
	msg  transport.Message
}

type seedDeliveryQueue []*seedPendingDelivery

func (q seedDeliveryQueue) Len() int { return len(q) }
func (q seedDeliveryQueue) Less(i, j int) bool {
	if q[i].at.Equal(q[j].at) {
		return q[i].seq < q[j].seq
	}
	return q[i].at.Before(q[j].at)
}
func (q seedDeliveryQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *seedDeliveryQueue) Push(x any)   { *q = append(*q, x.(*seedPendingDelivery)) }
func (q *seedDeliveryQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}

var seedPendingPool = sync.Pool{New: func() any { return new(seedPendingDelivery) }}

// seedScheduler is the seed's latency scheduler frozen in place: every send
// pushes one heap entry under a single global mutex, and a drainer pops due
// entries. Matured deliveries are discarded; the benchmarks isolate the
// scheduling structure, which is what the timing wheel replaced.
type seedScheduler struct {
	mu    sync.Mutex
	queue seedDeliveryQueue
	seq   uint64
}

func (s *seedScheduler) push(at time.Time, from, to transport.NodeID, msg transport.Message) {
	pd := seedPendingPool.Get().(*seedPendingDelivery)
	pd.at = at
	pd.from = from
	pd.to = to
	pd.msg = msg
	s.mu.Lock()
	s.seq++
	pd.seq = s.seq
	heap.Push(&s.queue, pd)
	s.mu.Unlock()
}

// drainDue pops and discards every entry due at now.
func (s *seedScheduler) drainDue(now time.Time) int {
	n := 0
	s.mu.Lock()
	for s.queue.Len() > 0 && !s.queue[0].at.After(now) {
		pd := heap.Pop(&s.queue).(*seedPendingDelivery)
		*pd = seedPendingDelivery{}
		seedPendingPool.Put(pd)
		n++
	}
	s.mu.Unlock()
	return n
}

// wireSchedLatency is the simulated one-way latency the scheduler
// benchmarks run under.
const wireSchedLatency = 500 * time.Microsecond

// WireSchedSenders is the sender count the scheduler contention benchmarks
// use, matching the throughput family's widest fan-in.
const WireSchedSenders = 8

// wireSchedWindow bounds in-flight scheduled deliveries: a pusher stalls
// while the backlog is at the window, the way a flow-controlled send
// window would. Without a bound the benchmark degenerates into a one-shot
// "push b.N, then drain b.N" batch whose timing is dominated by allocator
// and GC behavior on an ever-growing backlog; with it, both structures are
// measured at sustained steady state, backlogged deeply enough that the
// heap's O(log n) pops and the wheel's O(1) appends and slab handoffs are
// what differ.
const wireSchedWindow = 1 << 18

// wireClockBatch is how many sends share one deadline stamp. A per-push
// time.Now() costs more than a wheel append itself and is identical for
// both structures, so stamping in small batches keeps the measurement on
// the scheduling structures rather than on the clock syscall.
const wireClockBatch = 32

// benchSched drives one scheduling structure: WireSchedSenders goroutines
// push delayed deliveries as fast as they can — subject to the
// wireSchedWindow in-flight bound — while one drainer goroutine releases
// matured entries, the same division of labor as Mem's send path and
// scheduler goroutine. Reported msgs/s counts scheduled messages; the
// timer stops only once the drainer has released everything.
func benchSched(b *testing.B, push func(sender int, at time.Time), drain func(time.Time) int) {
	var pushed, drained atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := drain(time.Now()); n > 0 {
				drained.Add(int64(n))
			} else {
				time.Sleep(5 * time.Microsecond)
			}
		}
	}()
	per := b.N/WireSchedSenders + 1
	total := int64(per * WireSchedSenders)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < WireSchedSenders; g++ {
		wg.Add(1)
		go func(sender int) {
			defer wg.Done()
			var at time.Time
			for i := 0; i < per; i++ {
				if i&(wireClockBatch-1) == 0 {
					for pushed.Load()-drained.Load() >= wireSchedWindow {
						runtime.Gosched()
					}
					pushed.Add(wireClockBatch)
					at = time.Now().Add(wireSchedLatency)
				}
				push(sender, at)
			}
		}(g)
	}
	wg.Wait()
	for drained.Load() < total {
		time.Sleep(20 * time.Microsecond)
	}
	b.StopTimer()
	close(stop)
	<-done
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchWireSchedSeed hammers the frozen seed scheduler, the workload that
// serialized every sender on one mutex and paid O(log n) per push.
func BenchWireSchedSeed(b *testing.B) {
	s := &seedScheduler{}
	msg := transport.Message{Kind: transport.KindPing}
	benchSched(b,
		func(_ int, at time.Time) { s.push(at, "src", "dst", msg) },
		s.drainDue)
}

// BenchWireSchedWheel runs the identical workload through the timing wheel
// Mem now schedules with: per-bucket locks and O(1) appends on the push
// side.
func BenchWireSchedWheel(b *testing.B) {
	s := transport.NewWheelSched(wireSchedLatency)
	msg := transport.Message{Kind: transport.KindPing}
	benchSched(b,
		func(sender int, at time.Time) { s.Add(at, sender, "src", "dst", msg) },
		func(now time.Time) int { n, _ := s.Drain(now); return n })
}

// WireRow is one wire-path benchmark measurement.
type WireRow struct {
	Name        string
	NsPerOp     float64
	MBPerSec    float64
	MsgsPerSec  float64
	BytesPerOp  int64
	AllocsPerOp int64
}

// WireResult holds the wire-path benchmark sweep.
type WireResult struct {
	Rows []WireRow
}

// RunWire runs the wire-path benchmark family via testing.Benchmark,
// outside the go-test harness.
func RunWire() *WireResult {
	res := &WireResult{}
	add := func(name string, body func(b *testing.B)) {
		r := testing.Benchmark(body)
		row := WireRow{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if v, ok := r.Extra["MB/s"]; ok {
			row.MBPerSec = v
		} else if r.Bytes > 0 && r.T > 0 {
			row.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		if v, ok := r.Extra["msgs/s"]; ok {
			row.MsgsPerSec = v
		}
		if v, ok := r.Extra["elems/s"]; ok {
			row.MsgsPerSec = v
		}
		res.Rows = append(res.Rows, row)
	}
	add("encode/binary", BenchWireEncodeBinary)
	add("encode/gob-baseline", BenchWireEncodeGob)
	add("decode/binary", BenchWireDecodeBinary)
	add("tcp-publish/binary", func(b *testing.B) { BenchWireTCPPublish(b, transport.CodecBinary) })
	add("tcp-publish/gob-baseline", func(b *testing.B) { BenchWireTCPPublish(b, transport.CodecGob) })
	add("sched-8senders/wheel", BenchWireSchedWheel)
	add("sched-8senders/seed-heap", BenchWireSchedSeed)
	return res
}

// Table renders the result.
func (r *WireResult) Table() Table {
	t := Table{
		Title:  "Wire path: frame codec and latency scheduler (batch of 64)",
		Note:   "binary length-prefixed codec + batched flushes vs gob baseline; timing wheel vs seed global-mutex heap",
		Header: []string{"benchmark", "ns/op", "MB/s", "msgs|elems/s", "B/op", "allocs/op"},
	}
	for _, row := range r.Rows {
		mb := "-"
		if row.MBPerSec > 0 {
			mb = fmt.Sprintf("%.0f", row.MBPerSec)
		}
		rate := "-"
		if row.MsgsPerSec > 0 {
			rate = fmt.Sprintf("%.0f", row.MsgsPerSec)
		}
		t.Rows = append(t.Rows, []string{
			row.Name,
			fmt.Sprintf("%.0f", row.NsPerOp),
			mb,
			rate,
			fmt.Sprintf("%d", row.BytesPerOp),
			fmt.Sprintf("%d", row.AllocsPerOp),
		})
	}
	return t
}
