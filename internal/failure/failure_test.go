package failure

import (
	"testing"
	"time"

	"streamha/internal/clock"
	"streamha/internal/machine"
)

func TestGapForFraction(t *testing.T) {
	d := 100 * time.Millisecond
	cases := []struct {
		fraction float64
		want     time.Duration
	}{
		{0.5, 100 * time.Millisecond},
		{0.25, 300 * time.Millisecond},
		{1, 0},
	}
	for _, c := range cases {
		if got := GapForFraction(d, c.fraction); got != c.want {
			t.Fatalf("GapForFraction(%v, %v) = %v, want %v", d, c.fraction, got, c.want)
		}
	}
	if got := GapForFraction(d, 0); got < time.Hour {
		t.Fatalf("zero fraction gap %v, want effectively infinite", got)
	}
}

func TestInjectorRegularSchedule(t *testing.T) {
	cpu := machine.NewCPU(clock.New())
	inj := NewInjector(InjectorConfig{
		CPU:      cpu,
		Clock:    clock.New(),
		Pattern:  Regular,
		Gap:      30 * time.Millisecond,
		Duration: 30 * time.Millisecond,
		LoadMin:  0.9,
		LoadMax:  0.9,
		Seed:     1,
	})
	inj.Start()
	time.Sleep(200 * time.Millisecond)
	inj.Stop()
	spikes := inj.Spikes()
	if len(spikes) < 2 || len(spikes) > 5 {
		t.Fatalf("got %d spikes in 200ms at 60ms period", len(spikes))
	}
	for _, s := range spikes {
		d := s.End.Sub(s.Start)
		if d < 20*time.Millisecond || d > 80*time.Millisecond {
			t.Fatalf("spike duration %v", d)
		}
	}
	if cpu.BackgroundLoad() != 0 {
		t.Fatal("load not restored after Stop")
	}
}

func TestInjectorPoissonDoesNotDeadlock(t *testing.T) {
	cpu := machine.NewCPU(clock.New())
	inj := NewInjector(InjectorConfig{
		CPU:      cpu,
		Clock:    clock.New(),
		Pattern:  Poisson,
		Gap:      10 * time.Millisecond,
		Duration: 10 * time.Millisecond,
		LoadMin:  0.8,
		LoadMax:  1.0,
		Seed:     7,
	})
	inj.Start()
	time.Sleep(100 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		inj.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Poisson injector Stop deadlocked")
	}
	if len(inj.Spikes()) == 0 {
		t.Fatal("Poisson injector injected nothing")
	}
}

func TestInjectorStopIdempotent(t *testing.T) {
	inj := NewInjector(InjectorConfig{
		CPU:      machine.NewCPU(clock.New()),
		Clock:    clock.New(),
		Gap:      time.Hour,
		Duration: time.Millisecond,
	})
	inj.Stop() // before start: no-op
	inj.Start()
	inj.Stop()
	inj.Stop()
}

func TestInjectOnce(t *testing.T) {
	cpu := machine.NewCPU(clock.New())
	start := time.Now()
	spike := InjectOnce(cpu, clock.New(), 0.95, 30*time.Millisecond, 0.1)
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("returned before outage ended")
	}
	if spike.End.Sub(spike.Start) < 30*time.Millisecond {
		t.Fatalf("spike interval %v", spike.End.Sub(spike.Start))
	}
	if got := cpu.BackgroundLoad(); got != 0.1 {
		t.Fatalf("base load %v after outage", got)
	}
}

func TestGenerateTraceReproducible(t *testing.T) {
	cfg := DefaultTraceConfig()
	a := GenerateTrace(cfg)
	b := GenerateTrace(cfg)
	if len(a) != cfg.Machines || len(b) != cfg.Machines {
		t.Fatalf("machine counts %d/%d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Spikes) != len(b[i].Spikes) {
			t.Fatalf("machine %d: %d vs %d spikes", i, len(a[i].Spikes), len(b[i].Spikes))
		}
	}
}

func TestGenerateTraceMatchesPaperAnchors(t *testing.T) {
	traces := GenerateTrace(DefaultTraceConfig())
	interUnder60, durUnder10, durOver20, n := 0, 0, 0, 0
	for _, tr := range traces {
		inter, ok := tr.MeanInterFailure()
		if !ok {
			continue
		}
		dur, _ := tr.MeanDuration()
		n++
		if inter < 60*time.Second {
			interUnder60++
		}
		if dur < 10*time.Second {
			durUnder10++
		}
		if dur > 20*time.Second {
			durOver20++
		}
	}
	if n < 70 {
		t.Fatalf("only %d machines produced spikes", n)
	}
	// Paper anchors: ~75%, ~70%, ~20%. Allow generous tolerance.
	if f := float64(interUnder60) / float64(n); f < 0.6 || f > 0.9 {
		t.Fatalf("inter-failure <60s fraction %.2f", f)
	}
	if f := float64(durUnder10) / float64(n); f < 0.55 || f > 0.85 {
		t.Fatalf("duration <10s fraction %.2f", f)
	}
	if f := float64(durOver20) / float64(n); f < 0.08 || f > 0.35 {
		t.Fatalf("duration >20s fraction %.2f", f)
	}
}

func TestTraceSpikesAreOrderedAndQuantized(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Machines = 5
	for _, tr := range GenerateTrace(cfg) {
		var prev SpikeOffsets
		for i, s := range tr.Spikes {
			if s.End <= s.Start {
				t.Fatalf("empty spike %+v", s)
			}
			if i > 0 && s.Start < prev.End {
				t.Fatalf("overlapping spikes %+v after %+v", s, prev)
			}
			if s.Start%cfg.SampleInterval != 0 || s.End%cfg.SampleInterval != 0 {
				t.Fatalf("unquantized spike %+v", s)
			}
			prev = s
		}
	}
}

func TestMeanHelpersEmptyTrace(t *testing.T) {
	var tr MachineTrace
	if _, ok := tr.MeanInterFailure(); ok {
		t.Fatal("expected no inter-failure time")
	}
	if _, ok := tr.MeanDuration(); ok {
		t.Fatal("expected no duration")
	}
}
