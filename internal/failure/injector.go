// Package failure generates the failure workloads of the paper's
// evaluation: transient CPU-load spikes on individual machines (the
// computation-intensive co-located program of Section V-A), fail-stop
// crashes, and the synthetic 83-machine cluster trace behind the
// motivation figures.
package failure

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"streamha/internal/clock"
	"streamha/internal/machine"
)

// Pattern selects the spike arrival process.
type Pattern int

// Arrival patterns, mirroring the paper's regular and Poisson arrivals.
const (
	Regular Pattern = iota
	Poisson
)

// Spike is one ground-truth transient failure interval.
type Spike struct {
	Start time.Time
	End   time.Time
}

// InjectorConfig parameterizes a transient-failure injector on one machine.
type InjectorConfig struct {
	// CPU is the target machine's CPU.
	CPU *machine.CPU
	// Clock is the time source.
	Clock clock.Clock
	// Pattern is the arrival process of spikes.
	Pattern Pattern
	// DurationPattern draws spike lengths. The zero value is Regular
	// (fixed durations) regardless of Pattern: measured cluster spikes are
	// short and bounded (Figure 3), and exponential durations would let
	// rare very long stalls dominate means. Set Poisson explicitly for
	// exponential spike lengths.
	DurationPattern Pattern
	// Gap is the (mean, for Poisson) idle time between the end of one spike
	// and the start of the next.
	Gap time.Duration
	// Duration is the (mean, for Poisson-duration) spike length.
	Duration time.Duration
	// LoadMin and LoadMax bound the spike's background load; each spike
	// draws uniformly from the range. The paper's spikes push total CPU to
	// 95–100%.
	LoadMin, LoadMax float64
	// BaseLoad is the background load outside spikes (usually zero).
	BaseLoad float64
	// InitialDelay postpones the first spike.
	InitialDelay time.Duration
	// Seed makes the spike schedule reproducible.
	Seed int64
}

// GapForFraction returns the idle gap that makes transient failures present
// for the given fraction of time at the given spike duration — the knob
// behind the paper's "percentage of transient failure time" axes.
func GapForFraction(duration time.Duration, fraction float64) time.Duration {
	if fraction <= 0 {
		return time.Duration(math.MaxInt64)
	}
	if fraction >= 1 {
		return 0
	}
	return time.Duration(float64(duration) * (1 - fraction) / fraction)
}

// Injector drives transient-failure load on one machine.
type Injector struct {
	cfg InjectorConfig
	rng *rand.Rand

	mu      sync.Mutex
	spikes  []Spike
	started bool
	stop    chan struct{}
	done    chan struct{}
}

// NewInjector creates an injector; call Start to begin injecting.
func NewInjector(cfg InjectorConfig) *Injector {
	if cfg.LoadMax < cfg.LoadMin {
		cfg.LoadMax = cfg.LoadMin
	}
	return &Injector{
		cfg: cfg,
		// math/rand draws are visibly correlated across nearby seeds (the
		// first ExpFloat64 of seeds 1 and 1001 differ by 2%), which would
		// synchronize "independent" failure schedules across machines.
		// Scrambling the seed through splitmix64 restores independence
		// while keeping runs reproducible.
		rng:  rand.New(rand.NewSource(int64(splitmix64(uint64(cfg.Seed))))),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// splitmix64 is the standard 64-bit finalizer used to decorrelate seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Start launches the injection loop.
func (in *Injector) Start() {
	in.mu.Lock()
	if in.started {
		in.mu.Unlock()
		return
	}
	in.started = true
	in.mu.Unlock()
	go in.run()
}

// Stop halts injection and restores the base load.
func (in *Injector) Stop() {
	in.mu.Lock()
	if !in.started {
		in.mu.Unlock()
		return
	}
	in.mu.Unlock()
	select {
	case <-in.stop:
	default:
		close(in.stop)
	}
	<-in.done
	in.cfg.CPU.SetBackgroundLoad(in.cfg.BaseLoad)
}

// Spikes returns the ground-truth spike intervals injected so far.
func (in *Injector) Spikes() []Spike {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Spike(nil), in.spikes...)
}

func (in *Injector) run() {
	defer close(in.done)
	in.cfg.CPU.SetBackgroundLoad(in.cfg.BaseLoad)
	if in.cfg.InitialDelay > 0 && !in.sleep(in.cfg.InitialDelay) {
		return
	}
	for {
		if !in.sleep(in.draw(in.cfg.Gap)) {
			return
		}
		load := in.cfg.LoadMin
		in.mu.Lock()
		if in.cfg.LoadMax > in.cfg.LoadMin {
			load += in.rng.Float64() * (in.cfg.LoadMax - in.cfg.LoadMin)
		}
		dur := in.cfg.Duration
		if in.cfg.DurationPattern == Poisson {
			dur = in.drawLocked(in.cfg.Duration)
		}
		in.mu.Unlock()

		start := in.cfg.Clock.Now()
		in.cfg.CPU.SetBackgroundLoad(load)
		ok := in.sleep(dur)
		in.cfg.CPU.SetBackgroundLoad(in.cfg.BaseLoad)
		in.mu.Lock()
		in.spikes = append(in.spikes, Spike{Start: start, End: in.cfg.Clock.Now()})
		in.mu.Unlock()
		if !ok {
			return
		}
	}
}

// draw returns mean for Regular arrivals and an exponential variate with
// that mean for Poisson arrivals.
func (in *Injector) draw(mean time.Duration) time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.drawLocked(mean)
}

// drawLocked is draw with in.mu already held.
func (in *Injector) drawLocked(mean time.Duration) time.Duration {
	if in.cfg.Pattern == Regular || mean <= 0 {
		return mean
	}
	d := time.Duration(float64(mean) * in.rng.ExpFloat64())
	// Clamp pathological draws so a single spike cannot dominate a run.
	if d > 10*mean {
		d = 10 * mean
	}
	return d
}

func (in *Injector) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	select {
	case <-in.stop:
		return false
	case <-in.cfg.Clock.After(d):
		return true
	}
}

// InjectOnce raises the background load on cpu to load for dur, blocking
// until the outage ends. It returns the ground-truth interval. Used by the
// switchover/rollback experiments (Figures 9 and 10), which overload the
// primary for fixed periods.
func InjectOnce(cpu *machine.CPU, clk clock.Clock, load float64, dur time.Duration, base float64) Spike {
	start := clk.Now()
	cpu.SetBackgroundLoad(load)
	clk.Sleep(dur)
	cpu.SetBackgroundLoad(base)
	return Spike{Start: start, End: clk.Now()}
}
