package failure

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"streamha/internal/clock"
)

// Beyond load spikes, the placement experiments need scripted fail-stop
// traces: "at t=2s machine w3 crashes, at t=5s it comes back". A Script
// is that trace; replaying one against a cluster drives the scheduler's
// membership view (CrashMachine reports the member down, RecoverMachine
// re-admits it), which in turn drives re-placement.

// ScriptAction is one kind of scripted machine event.
type ScriptAction string

// Script actions.
const (
	ActionCrash   ScriptAction = "crash"
	ActionRecover ScriptAction = "recover"
)

// ScriptEvent is one scripted fail-stop event.
type ScriptEvent struct {
	// At is the event's offset from replay start.
	At time.Duration
	// Action is what happens.
	Action ScriptAction
	// Machine names the target machine.
	Machine string
}

// Script is an ordered fail-stop trace.
type Script struct {
	Events []ScriptEvent
}

// ParseScript reads a trace in the one-event-per-line format
//
//	<offset> <action> <machine>
//
// e.g. "2s crash w3" or "500ms recover w1". Blank lines and lines
// starting with '#' are skipped. Events are returned sorted by offset.
func ParseScript(text string) (Script, error) {
	var s Script
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return Script{}, fmt.Errorf("failure: script line %d: want \"<offset> <action> <machine>\", got %q", ln+1, line)
		}
		at, err := time.ParseDuration(fields[0])
		if err != nil {
			return Script{}, fmt.Errorf("failure: script line %d: bad offset %q: %v", ln+1, fields[0], err)
		}
		action := ScriptAction(fields[1])
		switch action {
		case ActionCrash, ActionRecover:
		default:
			return Script{}, fmt.Errorf("failure: script line %d: unknown action %q", ln+1, fields[1])
		}
		s.Events = append(s.Events, ScriptEvent{At: at, Action: action, Machine: fields[2]})
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s, nil
}

// ScriptTarget applies scripted events; cluster.Cluster satisfies it.
type ScriptTarget interface {
	CrashMachine(id string) error
	RecoverMachine(id string) error
}

// AppliedEvent records one replayed event and its outcome.
type AppliedEvent struct {
	Event ScriptEvent
	// At is when the event was actually applied.
	At time.Time
	// Err is the target's verdict, nil on success.
	Err error
}

// Replayer replays a Script against a target in real (simulated) time.
type Replayer struct {
	clk    clock.Clock
	target ScriptTarget
	script Script

	mu      sync.Mutex
	applied []AppliedEvent
	started bool
	stop    chan struct{}
	done    chan struct{}
}

// NewReplayer creates a replayer; Start begins the trace.
func NewReplayer(clk clock.Clock, target ScriptTarget, s Script) *Replayer {
	return &Replayer{
		clk:    clk,
		target: target,
		script: s,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Start launches the replay loop; offsets count from here.
func (r *Replayer) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go r.run()
}

// Stop abandons any events not yet due and waits for the loop to exit.
func (r *Replayer) Stop() {
	r.mu.Lock()
	if !r.started {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
}

// Wait blocks until every event has been applied (or Stop abandoned the
// rest).
func (r *Replayer) Wait() { <-r.done }

// Applied returns the events replayed so far with their outcomes.
func (r *Replayer) Applied() []AppliedEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]AppliedEvent(nil), r.applied...)
}

func (r *Replayer) run() {
	defer close(r.done)
	start := r.clk.Now()
	for _, ev := range r.script.Events {
		due := start.Add(ev.At)
		if wait := due.Sub(r.clk.Now()); wait > 0 {
			select {
			case <-r.stop:
				return
			case <-r.clk.After(wait):
			}
		}
		var err error
		switch ev.Action {
		case ActionCrash:
			err = r.target.CrashMachine(ev.Machine)
		case ActionRecover:
			err = r.target.RecoverMachine(ev.Machine)
		}
		r.mu.Lock()
		r.applied = append(r.applied, AppliedEvent{Event: ev, At: r.clk.Now(), Err: err})
		r.mu.Unlock()
	}
}
