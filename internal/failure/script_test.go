package failure

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamha/internal/clock"
)

func TestParseScript(t *testing.T) {
	s, err := ParseScript(`
		# comment line
		500ms crash   w3

		0ms   crash   w1
		2s    recover w1
	`)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	want := []ScriptEvent{
		{At: 0, Action: ActionCrash, Machine: "w1"},
		{At: 500 * time.Millisecond, Action: ActionCrash, Machine: "w3"},
		{At: 2 * time.Second, Action: ActionRecover, Machine: "w1"},
	}
	if len(s.Events) != len(want) {
		t.Fatalf("got %d events, want %d", len(s.Events), len(want))
	}
	for i, ev := range s.Events {
		if ev != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
}

func TestParseScriptErrors(t *testing.T) {
	for _, bad := range []string{
		"0ms crash",             // missing machine
		"soon crash w1",         // bad offset
		"1s explode w1",         // unknown action
		"1s crash w1 extra arg", // too many fields
	} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("ParseScript(%q): want error, got nil", bad)
		}
	}
}

// scriptRecorder records applied events, failing recovers for machines
// never crashed — enough to verify ordering and error capture.
type scriptRecorder struct {
	mu      sync.Mutex
	crashed map[string]bool
	log     []string
}

func (r *scriptRecorder) CrashMachine(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.crashed == nil {
		r.crashed = map[string]bool{}
	}
	r.crashed[id] = true
	r.log = append(r.log, "crash "+id)
	return nil
}

func (r *scriptRecorder) RecoverMachine(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.crashed[id] {
		r.log = append(r.log, "recover? "+id)
		return fmt.Errorf("machine %s not crashed", id)
	}
	delete(r.crashed, id)
	r.log = append(r.log, "recover "+id)
	return nil
}

func TestReplayerAppliesInOrder(t *testing.T) {
	clk := clock.New()
	s, err := ParseScript(`
		0ms  crash   a
		10ms crash   b
		20ms recover a
		30ms recover c
	`)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	rec := &scriptRecorder{}
	rep := NewReplayer(clk, rec, s)
	rep.Start()
	rep.Wait()

	applied := rep.Applied()
	if len(applied) != 4 {
		t.Fatalf("applied %d events, want 4", len(applied))
	}
	for i, ap := range applied {
		if ap.Event != s.Events[i] {
			t.Fatalf("applied[%d] = %+v, want %+v", i, ap.Event, s.Events[i])
		}
	}
	// The recover of the never-crashed machine c surfaces as an error.
	if applied[3].Err == nil {
		t.Fatal("recover of never-crashed machine: want error recorded")
	}
	for i := 0; i < 3; i++ {
		if applied[i].Err != nil {
			t.Fatalf("applied[%d] unexpected error: %v", i, applied[i].Err)
		}
	}
}

func TestReplayerStopAbandonsRest(t *testing.T) {
	clk := clock.New()
	s, err := ParseScript(`
		0ms crash a
		1h  crash b
	`)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	rec := &scriptRecorder{}
	rep := NewReplayer(clk, rec, s)
	rep.Start()
	clk.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() { rep.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return; replayer still waiting on abandoned event")
	}
	if got := len(rep.Applied()); got != 1 {
		t.Fatalf("applied %d events after early stop, want 1", got)
	}
}
