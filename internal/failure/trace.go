package failure

import (
	"math"
	"math/rand"
	"time"
)

// The paper's motivation (Figures 1–3) measures transient unavailability
// over 83 shared machines for 24 hours at 0.25 s samples. That trace is
// proprietary; this generator produces a synthetic cluster with the same
// published statistics — over 75% of machines spike more often than once
// per 60 s, about 70% of spikes last under 10 s and about 20% exceed 20 s —
// so the CDF shapes of the figures can be regenerated.

// TraceConfig parameterizes the synthetic cluster trace.
type TraceConfig struct {
	// Machines is the number of machines (the paper measures 83).
	Machines int
	// Duration is the virtual observation window (the paper uses 24 h).
	Duration time.Duration
	// SampleInterval is the virtual load-sampling period (0.25 s in the
	// paper); spike boundaries are quantized to it.
	SampleInterval time.Duration
	// MedianGap is the median across machines of the mean idle gap between
	// spikes; per-machine means are log-normal around it.
	MedianGap time.Duration
	// GapSigma is the log-normal sigma of per-machine mean gaps.
	GapSigma float64
	// MedianDuration is the median across machines of the per-machine
	// median spike duration; per-spike durations are drawn log-normal
	// around each machine's median.
	MedianDuration time.Duration
	// DurationSigma is the log-normal sigma of spike durations within one
	// machine.
	DurationSigma float64
	// MachineDurationSigma is the log-normal sigma of the per-machine
	// duration medians; the heavy cross-machine tail of Figure 3 (70% of
	// machines under 10 s yet 20% above 20 s) needs it large.
	MachineDurationSigma float64
	// Seed makes the trace reproducible.
	Seed int64
}

// DefaultTraceConfig reproduces the paper's published cluster statistics.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Machines:             83,
		Duration:             24 * time.Hour,
		SampleInterval:       250 * time.Millisecond,
		MedianGap:            18 * time.Second,
		GapSigma:             0.9,
		MedianDuration:       1900 * time.Millisecond,
		DurationSigma:        1.0,
		MachineDurationSigma: 2.2,
		Seed:                 1,
	}
}

// MachineTrace is the spike history of one machine over the window.
type MachineTrace struct {
	// Spikes holds (start, end) offsets from the window start.
	Spikes []SpikeOffsets
}

// SpikeOffsets is one spike as offsets into the observation window.
type SpikeOffsets struct {
	Start time.Duration
	End   time.Duration
}

// MeanInterFailure returns the machine's average time between spike starts
// (the x-axis of Figure 2). The second return is false if fewer than two
// spikes occurred.
func (t MachineTrace) MeanInterFailure() (time.Duration, bool) {
	if len(t.Spikes) < 2 {
		return 0, false
	}
	total := t.Spikes[len(t.Spikes)-1].Start - t.Spikes[0].Start
	return total / time.Duration(len(t.Spikes)-1), true
}

// MeanDuration returns the machine's average spike duration (the x-axis of
// Figure 3). The second return is false if no spikes occurred.
func (t MachineTrace) MeanDuration() (time.Duration, bool) {
	if len(t.Spikes) == 0 {
		return 0, false
	}
	var total time.Duration
	for _, s := range t.Spikes {
		total += s.End - s.Start
	}
	return total / time.Duration(len(t.Spikes)), true
}

// GenerateTrace produces the synthetic cluster trace. It is pure
// computation over virtual time — no clocks, instant at any window length.
func GenerateTrace(cfg TraceConfig) []MachineTrace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	traces := make([]MachineTrace, cfg.Machines)
	for m := range traces {
		machineDurSigma := cfg.MachineDurationSigma
		if machineDurSigma == 0 {
			machineDurSigma = 1.8
		}
		meanGap := logNormal(rng, float64(cfg.MedianGap), cfg.GapSigma)
		meanDur := logNormal(rng, float64(cfg.MedianDuration), machineDurSigma)
		var at time.Duration
		for {
			gap := time.Duration(rng.ExpFloat64() * meanGap)
			dur := time.Duration(logNormal(rng, meanDur, cfg.DurationSigma))
			at += quantize(gap, cfg.SampleInterval)
			end := at + quantize(dur, cfg.SampleInterval)
			if end >= cfg.Duration {
				break
			}
			if end > at {
				traces[m].Spikes = append(traces[m].Spikes, SpikeOffsets{Start: at, End: end})
			}
			at = end
		}
	}
	return traces
}

// logNormal draws a log-normal variate with the given median and sigma.
func logNormal(rng *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(rng.NormFloat64()*sigma)
}

func quantize(d, step time.Duration) time.Duration {
	if step <= 0 {
		return d
	}
	q := (d / step) * step
	if q < step {
		q = step
	}
	return q
}
