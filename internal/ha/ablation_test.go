package ha_test

// Integration tests for the hybrid controller's ablation switches
// (Section IV-B optimizations) and edge cases, driven through the pipeline
// builder so the full wiring is exercised.

import (
	"testing"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/ha"
	"streamha/internal/queue"
	"streamha/internal/subjob"
)

// stallAndRecover runs a single hard stall against a 2-subjob hybrid
// pipeline with the given options and returns the pipeline for inspection.
func stallAndRecover(t *testing.T, opts core.Options) (*cluster.Cluster, *ha.Pipeline) {
	t.Helper()
	cl := cluster.New(cluster.Config{Latency: 100 * time.Microsecond})
	for _, id := range []string{"m-src", "m-sink", "p1", "p2", "s1", "s2"} {
		cl.MustAddMachine(id)
	}
	p, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "job",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 1500},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{
			{PEs: cheapPEs(2), Mode: ha.ModeHybrid, Primary: "p1", Secondary: "s1"},
			{PEs: cheapPEs(2), Mode: ha.ModeHybrid, Primary: "p2", Secondary: "s2"},
		},
		Hybrid:   opts,
		TrackIDs: true,
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		p.Stop()
		cl.Close()
	})

	time.Sleep(400 * time.Millisecond)
	cl.Machine("p1").CPU().SetBackgroundLoad(1)
	time.Sleep(350 * time.Millisecond)
	cl.Machine("p1").CPU().SetBackgroundLoad(0)
	time.Sleep(500 * time.Millisecond)
	p.Source().Stop()
	time.Sleep(300 * time.Millisecond)
	return cl, p
}

func requireRecovered(t *testing.T, p *ha.Pipeline) {
	t.Helper()
	g := p.Group(0)
	if len(g.HA.Switches()) == 0 {
		t.Fatal("no switchover")
	}
	if len(g.HA.Rollbacks()) == 0 {
		t.Fatal("no rollback")
	}
	verifyExactlyOnce(t, p, 500)
}

func TestHybridAblationNoPreDeploy(t *testing.T) {
	_, p := stallAndRecover(t, core.Options{NoPreDeploy: true})
	requireRecovered(t, p)
	// After rollback the on-demand copy is discarded: no standby runtime.
	if sec := p.Group(0).HA.SecondaryRuntime(); sec != nil {
		t.Fatalf("on-demand copy not discarded after rollback: %v", sec.Node())
	}
}

func TestHybridAblationNoEarlyConnection(t *testing.T) {
	_, p := stallAndRecover(t, core.Options{NoEarlyConnection: true})
	requireRecovered(t, p)
}

func TestHybridAblationNoReadState(t *testing.T) {
	_, p := stallAndRecover(t, core.Options{NoReadState: true})
	g := p.Group(0)
	if len(g.HA.Switches()) == 0 || len(g.HA.Rollbacks()) == 0 {
		t.Fatal("no switchover/rollback")
	}
	for _, rb := range g.HA.Rollbacks() {
		if rb.Adopted || rb.StateUnits != 0 {
			t.Fatalf("read-state happened despite ablation: %+v", rb)
		}
	}
	// Without the read-back the primary reprocesses its backlog; delivery
	// must still be exactly-once.
	verifyExactlyOnce(t, p, 500)
}

func TestHybridAblationDiskStore(t *testing.T) {
	_, p := stallAndRecover(t, core.Options{NoPreDeploy: true, DiskStore: true})
	requireRecovered(t, p)
}

// TestHybridSwitchoverDurationBoundedAcrossTriggers checks that the
// switchover mechanics (resume + activation) stay in the fast range
// regardless of the detection trigger; the trigger thresholds' detection
// times themselves are measured by the Figure 7 experiment and
// TestHeartbeatThreeMissSlowerThanOneMiss.
func TestHybridSwitchoverDurationBoundedAcrossTriggers(t *testing.T) {
	switchDur := func(opts core.Options) time.Duration {
		_, p := stallAndRecover(t, opts)
		sw := p.Group(0).HA.Switches()
		if len(sw) == 0 {
			t.Fatal("no switchover")
		}
		return sw[0].ReadyAt.Sub(sw[0].DetectedAt)
	}
	one := switchDur(core.Options{MissThreshold: 1})
	three := switchDur(core.Options{MissThreshold: 3})
	for _, d := range []time.Duration{one, three} {
		if d <= 0 || d > 200*time.Millisecond {
			t.Fatalf("switchover duration out of range: %v", d)
		}
	}
}

func TestHybridRollbackAdoptsFresherStandbyState(t *testing.T) {
	// A hard stall leaves the standby ahead of the primary, so the
	// following rollback adopts its state. Host-jitter false alarms can
	// interleave a flapped cycle whose rollback correctly declines
	// adoption, so stall repeatedly until an adopted rollback is observed.
	cl, p := stallAndRecover(t, core.Options{})
	g := p.Group(0)
	hasAdopted := func() bool {
		for _, rb := range g.HA.Rollbacks() {
			if rb.Adopted {
				if rb.StateUnits == 0 {
					t.Fatal("adopted rollback carried no state")
				}
				return true
			}
		}
		return false
	}
	for attempt := 0; attempt < 4 && !hasAdopted(); attempt++ {
		cl.Machine("p1").CPU().SetBackgroundLoad(1)
		time.Sleep(400 * time.Millisecond)
		cl.Machine("p1").CPU().SetBackgroundLoad(0)
		time.Sleep(500 * time.Millisecond)
	}
	if !hasAdopted() {
		t.Fatalf("no rollback adopted the standby state after repeated stalls: %+v", g.HA.Rollbacks())
	}
}

func TestHybridPromotionWithoutSpareLeavesUnprotected(t *testing.T) {
	cl := cluster.New(cluster.Config{Latency: 100 * time.Microsecond})
	for _, id := range []string{"m-src", "m-sink", "p1", "s1"} {
		cl.MustAddMachine(id)
	}
	p, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "job",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 1000},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{
			{PEs: cheapPEs(1), Mode: ha.ModeHybrid, Primary: "p1", Secondary: "s1"}, // no Spare
		},
		Hybrid:   core.Options{FailStopAfter: 200 * time.Millisecond},
		TrackIDs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		p.Stop()
		cl.Close()
	}()

	time.Sleep(300 * time.Millisecond)
	cl.Machine("p1").Crash()
	time.Sleep(800 * time.Millisecond)
	p.Source().Stop()
	time.Sleep(300 * time.Millisecond)

	g := p.Group(0)
	if len(g.HA.Promotions()) == 0 {
		t.Fatal("no promotion")
	}
	if got := g.HA.PrimaryRuntime().Node(); string(got) != "s1" {
		t.Fatalf("primary on %s", got)
	}
	if g.HA.SecondaryRuntime() != nil {
		t.Fatal("spare-less promotion still produced a standby")
	}
	verifyExactlyOnce(t, p, 200)
}

func TestHybridControllerStandaloneCreatesOwnStandby(t *testing.T) {
	// Controller used without the pipeline builder: it must create and
	// wire its own standby.
	cl := cluster.New(cluster.Config{Latency: 100 * time.Microsecond})
	defer cl.Close()
	for _, id := range []string{"m-src", "m-sink", "p0", "s0"} {
		cl.MustAddMachine(id)
	}
	clk := cl.Clock()
	spec := subjob.Spec{
		JobID: "solo", ID: "solo/sj",
		InStreams: []string{"s0"},
		Owners:    map[string]string{"s0": cluster.SourceOwner},
		OutStream: "s1",
		PEs:       cheapPEs(1),
		BatchSize: 16,
	}
	pri, err := subjob.New(spec, cl.Machine("p0"), false)
	if err != nil {
		t.Fatal(err)
	}
	pri.Start()
	defer pri.Stop()

	src := cluster.NewSource(cluster.SourceConfig{Machine: cl.Machine("m-src"), Clock: clk, Stream: "s0", Rate: 1000})
	sink := cluster.NewSink(cluster.SinkConfig{
		Machine: cl.Machine("m-sink"), Clock: clk, ID: "solo/sink",
		InStreams: []string{"s1"}, Owners: map[string]string{"s1": spec.ID},
		TrackIDs: true,
	})
	src.Out().Subscribe("p0", subjob.DataStream(spec.ID, "s0"), true)
	pri.Out().Subscribe("m-sink", subjob.DataStream("solo/sink", "s1"), true)
	sink.Start()
	defer sink.Stop()

	ctl := core.NewLifecycle(core.LifecycleConfig{
		Spec:             spec,
		Clock:            clk,
		Primary:          pri,
		SecondaryMachine: cl.Machine("s0"),
		Wiring: core.Wiring{
			UpstreamOutputs: func() []*queue.Output { return []*queue.Output{src.Out()} },
			DownstreamTargets: func() []core.Target {
				return []core.Target{{Node: "m-sink", Stream: subjob.DataStream("solo/sink", "s1"), Active: true}}
			},
		},
		Policy: core.NewHybridPolicy(core.Options{}),
	})
	if err := ctl.Start(); err != nil {
		t.Fatal(err)
	}
	src.Start()
	time.Sleep(300 * time.Millisecond)

	sec := ctl.SecondaryRuntime()
	if sec == nil {
		t.Fatal("standalone controller did not create a standby")
	}
	if !sec.Suspended() {
		t.Fatal("self-created standby not suspended")
	}
	// The standby's early connection must exist on the source queue.
	if _, ok := src.Out().AckedBy(sec.Node()); !ok {
		t.Fatal("self-created standby not early-connected upstream")
	}
	src.Stop()
	ctl.Stop()
	sec.Stop()
}
