package ha_test

import (
	"testing"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/ha"
	"streamha/internal/pe"
	"streamha/internal/subjob"
)

// buildApproxCycleTestbed mirrors buildCycleTestbed for the approx mode:
// one protected subjob with a spare machine, under the given error budget.
// HotSlots gives the partial frames a hot/cold split to exploit.
func buildApproxCycleTestbed(t *testing.T, budget core.ErrorBudget) (*cluster.Cluster, *ha.Pipeline) {
	t.Helper()
	cl := cluster.New(cluster.Config{Latency: 100 * time.Microsecond})
	for _, id := range []string{"m-src", "m-sink", "p1", "s1", "spare"} {
		cl.MustAddMachine(id)
	}
	p, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "job",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 1000, Tick: 2 * time.Millisecond},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{{
			PEs: []subjob.PESpec{
				{Name: "pe", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 10, HotSlots: 4} }, Cost: 10 * time.Microsecond},
			},
			Mode: ha.ModeApprox, Primary: "p1", Secondary: "s1", Spare: "spare",
		}},
		Hybrid:   core.Options{FailStopAfter: 250 * time.Millisecond},
		Approx:   budget,
		TrackIDs: true,
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		p.Stop()
		cl.Close()
	})
	return cl, p
}

// divergence reads the approx policy's loss accounting off a group.
func divergence(t *testing.T, g *ha.Group) core.DivergenceStats {
	t.Helper()
	dr, ok := g.HA.Policy().(core.DivergenceReporter)
	if !ok {
		t.Fatalf("policy %T does not report divergence", g.HA.Policy())
	}
	return dr.Divergence()
}

// verifyBoundedLoss is the approx-mode counterpart of verifyExactlyOnce:
// deliveries still never duplicate and the sink sequence stays gap-free,
// but budgeted failovers may lose elements — the missing IDs must not
// exceed the loss the policy accounted (plus a small in-flight allowance).
func verifyBoundedLoss(t *testing.T, p *ha.Pipeline, lost int64, minElements int) {
	t.Helper()
	counts := p.Sink().IDCounts()
	if len(counts) < minElements {
		t.Fatalf("sink received %d distinct elements, want at least %d", len(counts), minElements)
	}
	for id, n := range counts {
		if n != 1 {
			t.Fatalf("element %d delivered %d times, want at most once", id, n)
		}
	}
	var max uint64
	for id := range counts {
		if id > max {
			max = id
		}
	}
	var missing int64
	for id := uint64(1); id <= max; id++ {
		if counts[id] == 0 {
			missing++
		}
	}
	// The slack covers elements in flight between the loss estimate and the
	// dedup-floor jump; everything else missing must have been accounted.
	const slack = 256
	if missing > lost+slack {
		t.Fatalf("%d element IDs missing below max %d, but the policy accounted only %d lost (+%d slack)",
			missing, max, lost, slack)
	}
	_, gaps := p.Sink().In().Drops()
	if gaps != 0 {
		t.Fatalf("sink input recorded %d sequence gaps: protocol bug", gaps)
	}
}

// TestLifecycleCycleApprox drives the approx policy through the hybrid
// cycle — two transient stalls (switchover + rollback each), a fail-stop
// promotion, then a stall on the re-armed protection — and checks the
// bounded-loss contract: budgeted skips instead of exact replays, measured
// loss within budget, no duplicates and no sink gaps.
func TestLifecycleCycleApprox(t *testing.T) {
	budget := core.ErrorBudget{MaxLostElements: 5000}
	cl, p := buildApproxCycleTestbed(t, budget)
	g := p.Group(0)
	time.Sleep(300 * time.Millisecond)

	for i := 0; i < 2; i++ {
		before := len(g.HA.Rollbacks())
		stall(cl, "p1", 120*time.Millisecond)
		deadline := time.Now().Add(2 * time.Second)
		for len(g.HA.Rollbacks()) == before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if len(g.HA.Rollbacks()) == before {
			t.Fatalf("stall %d: no rollback (switches=%d rollbacks=%d)",
				i+1, len(g.HA.Switches()), len(g.HA.Rollbacks()))
		}
	}
	swBeforeCrash := len(g.HA.Switches())

	cl.Machine("p1").Crash()
	deadline := time.Now().Add(3 * time.Second)
	for len(g.HA.Promotions()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(g.HA.Promotions()) != 1 {
		t.Fatalf("promotions %d, want 1", len(g.HA.Promotions()))
	}
	if got := g.HA.PrimaryRuntime().Node(); string(got) != "s1" {
		t.Fatalf("primary on %s, want s1 after promotion", got)
	}
	deadline = time.Now().Add(2 * time.Second)
	for g.HA.SecondaryRuntime() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	sec := g.HA.SecondaryRuntime()
	if sec == nil || string(sec.Node()) != "spare" {
		t.Fatal("promotion did not re-arm a standby on the spare machine")
	}
	time.Sleep(200 * time.Millisecond)

	stall(cl, "s1", 120*time.Millisecond)
	deadline = time.Now().Add(2 * time.Second)
	for len(g.HA.Switches()) == swBeforeCrash && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(g.HA.Switches()) == swBeforeCrash {
		t.Fatal("re-armed standby never switched over after promotion")
	}

	time.Sleep(400 * time.Millisecond)
	p.Source().Stop()
	time.Sleep(400 * time.Millisecond)

	// Approx adds no lifecycle states: the transition log must be the same
	// connected hybrid walk.
	trs := g.HA.Transitions()
	checkTransitionChain(t, trs, core.Protected)
	for _, tr := range trs {
		switch tr.Event {
		case core.EventMiss:
			if tr.From != core.Protected || tr.To != core.SwitchedOver {
				t.Fatalf("miss transition %s", tr)
			}
		case core.EventRecovery:
			if tr.From != core.SwitchedOver || tr.Via != core.RollingBack || tr.To != core.Protected {
				t.Fatalf("recovery transition %s", tr)
			}
		case core.EventPromoteTimer:
			if tr.From != core.SwitchedOver || tr.Via != core.Promoted || tr.To != core.Protected {
				t.Fatalf("promotion transition %s (spare present: must re-protect)", tr)
			}
		}
	}
	st := g.HA.Stats()
	if st.Mode != "approx" || st.Promotions != 1 || st.Switchovers < 3 || st.Rollbacks < 2 {
		t.Fatalf("lifecycle stats %+v", st)
	}

	d := divergence(t, g)
	if d.Failovers < 3 {
		t.Fatalf("divergence records %d failovers, want >= 3: %+v", d.Failovers, d)
	}
	if d.BudgetedSkips == 0 {
		t.Fatalf("no failover skipped replay within a %d-element budget: %+v", budget.MaxLostElements, d)
	}
	if !d.WithinBudget {
		t.Fatalf("measured loss exceeded the budget: %+v", d)
	}
	if d.LostElements > int64(budget.MaxLostElements)*int64(d.BudgetedSkips) {
		t.Fatalf("cumulative loss %d exceeds %d budgeted skips x %d: %+v",
			d.LostElements, d.BudgetedSkips, budget.MaxLostElements, d)
	}
	verifyBoundedLoss(t, p, d.LostElements, 200)

	// The partial-snapshot path must actually have been exercised.
	if cm := g.HA.Checkpoint(); cm != nil {
		if cs := cm.Stats(); cs.Partials == 0 {
			t.Fatalf("approx shipped no partial checkpoints: %+v", cs)
		}
	}
}

// TestLifecycleCycleApproxZeroBudget pins the degeneration contract: approx
// with a zero budget is byte-identical hybrid — full/delta checkpoints
// only, exact replay on every failover, zero recorded divergence, and the
// exactly-once audit holds.
func TestLifecycleCycleApproxZeroBudget(t *testing.T) {
	cl, p := buildApproxCycleTestbed(t, core.ErrorBudget{})
	g := p.Group(0)
	time.Sleep(300 * time.Millisecond)

	before := len(g.HA.Rollbacks())
	stall(cl, "p1", 120*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for len(g.HA.Rollbacks()) == before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(g.HA.Rollbacks()) == before {
		t.Fatal("no rollback after transient stall")
	}

	cl.Machine("p1").Crash()
	deadline = time.Now().Add(3 * time.Second)
	for len(g.HA.Promotions()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(g.HA.Promotions()) != 1 {
		t.Fatalf("promotions %d, want 1", len(g.HA.Promotions()))
	}

	time.Sleep(400 * time.Millisecond)
	p.Source().Stop()
	time.Sleep(400 * time.Millisecond)

	st := g.HA.Stats()
	if st.Mode != "approx" {
		t.Fatalf("lifecycle stats %+v", st)
	}
	d := divergence(t, g)
	if d.BudgetedSkips != 0 || d.LostElements != 0 || d.StaleColdBytes != 0 || !d.WithinBudget {
		t.Fatalf("zero-budget approx recorded divergence: %+v", d)
	}
	if cm := g.HA.Checkpoint(); cm != nil {
		if cs := cm.Stats(); cs.Partials != 0 || cs.BytesPartial != 0 {
			t.Fatalf("zero-budget approx shipped partial checkpoints: %+v", cs)
		}
	}
	verifyExactlyOnce(t, p, 200)
}

// TestPartitionedCycleApprox: four independently protected approx
// partition-instances; a stall on one must budget-skip and roll back that
// instance only, a fail-stop on another must promote its standby, and the
// job-level audit is bounded loss instead of exactly-once.
func TestPartitionedCycleApprox(t *testing.T) {
	budget := core.ErrorBudget{MaxLostElements: 5000}
	cl := cluster.New(cluster.Config{Latency: 100 * time.Microsecond})
	for _, id := range []string{"m-src", "m-sink", "p0", "p1", "p2", "p3", "s0", "s1", "s2", "s3"} {
		cl.MustAddMachine(id)
	}
	p, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "pjob",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 4000, Tick: 2 * time.Millisecond},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{{
			PEs: []subjob.PESpec{
				{Name: "pe", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 10, HotSlots: 4} }, Cost: 10 * time.Microsecond},
			},
			Mode:        ha.ModeApprox,
			Parallelism: 4,
			Primaries:   []string{"p0", "p1", "p2", "p3"},
			Secondaries: []string{"s0", "s1", "s2", "s3"},
		}},
		Hybrid:   core.Options{FailStopAfter: 250 * time.Millisecond},
		Approx:   budget,
		TrackIDs: true,
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		p.Stop()
		cl.Close()
	})
	groups := p.StageInstances(0)
	time.Sleep(300 * time.Millisecond)

	// Transient stall on instance 1's primary: switchover then rollback.
	stall(cl, "p1", 120*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for len(groups[1].HA.Rollbacks()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(groups[1].HA.Rollbacks()) == 0 {
		t.Fatalf("instance 1 never rolled back (switches=%d)", len(groups[1].HA.Switches()))
	}

	// Fail-stop on instance 2's primary machine: its standby is promoted.
	cl.Machine("p2").Crash()
	deadline = time.Now().Add(3 * time.Second)
	for len(groups[2].HA.Promotions()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(groups[2].HA.Promotions()) != 1 {
		t.Fatalf("instance 2 promotions %d, want 1", len(groups[2].HA.Promotions()))
	}
	if got := string(groups[2].HA.PrimaryRuntime().Node()); got != "s2" {
		t.Fatalf("instance 2 primary on %s, want s2", got)
	}

	// Containment: untouched instances never promote or move.
	for _, k := range []int{0, 3} {
		if n := len(groups[k].HA.Promotions()); n != 0 {
			t.Fatalf("untouched instance %d promoted %d times", k, n)
		}
		if got, want := string(groups[k].HA.PrimaryRuntime().Node()), []string{"p0", "", "", "p3"}[k]; got != want {
			t.Fatalf("untouched instance %d primary moved to %s", k, got)
		}
	}

	time.Sleep(300 * time.Millisecond)
	p.Source().Stop()
	time.Sleep(400 * time.Millisecond)

	var lost int64
	for k, g := range groups {
		checkTransitionChain(t, g.HA.Transitions(), core.Protected)
		d := divergence(t, g)
		if !d.WithinBudget {
			t.Fatalf("instance %d divergence exceeded budget: %+v", k, d)
		}
		lost += d.LostElements
	}
	verifyBoundedLoss(t, p, lost, 500)
}
