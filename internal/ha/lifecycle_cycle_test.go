package ha_test

import (
	"testing"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/ha"
	"streamha/internal/pe"
	"streamha/internal/subjob"
)

// buildCycleTestbed deploys a single protected subjob with a spare machine
// so every mode can be driven through repeated failures.
func buildCycleTestbed(t *testing.T, mode ha.Mode) (*cluster.Cluster, *ha.Pipeline) {
	t.Helper()
	cl := cluster.New(cluster.Config{Latency: 100 * time.Microsecond})
	for _, id := range []string{"m-src", "m-sink", "p1", "s1", "spare"} {
		cl.MustAddMachine(id)
	}
	p, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "job",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 1000, Tick: 2 * time.Millisecond},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{{
			PEs: []subjob.PESpec{
				{Name: "pe", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 10} }, Cost: 10 * time.Microsecond},
			},
			Mode: mode, Primary: "p1", Secondary: "s1", Spare: "spare",
		}},
		Hybrid:   core.Options{FailStopAfter: 250 * time.Millisecond},
		TrackIDs: true,
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		p.Stop()
		cl.Close()
	})
	return cl, p
}

// checkTransitionChain verifies the transition log is a connected walk:
// every transition leaves the state the previous one settled in. This is
// the core invariant of the single event loop — no interleaved actions.
func checkTransitionChain(t *testing.T, trs []core.Transition, initial core.State) {
	t.Helper()
	prev := initial
	for i, tr := range trs {
		if tr.From != prev {
			t.Fatalf("transition %d (%s) starts from %s, previous settled in %s:\n%v",
				i, tr, tr.From, prev, trs)
		}
		prev = tr.To
	}
}

// stall pins a machine's CPU for d, then releases it.
func stall(cl *cluster.Cluster, m string, d time.Duration) {
	cl.Machine(m).CPU().SetBackgroundLoad(1)
	time.Sleep(d)
	cl.Machine(m).CPU().SetBackgroundLoad(0)
}

// TestLifecycleCycleHybrid drives the hybrid policy through two transient
// stalls (switchover + rollback each), then a fail-stop promotion, then a
// further stall on the re-armed protection — the standby that was
// re-instantiated on the spare machine must take over.
func TestLifecycleCycleHybrid(t *testing.T) {
	cl, p := buildCycleTestbed(t, ha.ModeHybrid)
	g := p.Group(0)
	time.Sleep(300 * time.Millisecond)

	// Two consecutive transient stalls: each must switch over and roll back.
	for i := 0; i < 2; i++ {
		before := len(g.HA.Rollbacks())
		stall(cl, "p1", 120*time.Millisecond)
		deadline := time.Now().Add(2 * time.Second)
		for len(g.HA.Rollbacks()) == before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if len(g.HA.Rollbacks()) == before {
			t.Fatalf("stall %d: no rollback (switches=%d rollbacks=%d)",
				i+1, len(g.HA.Switches()), len(g.HA.Rollbacks()))
		}
	}
	swBeforeCrash := len(g.HA.Switches())

	// Fail-stop: the primary crashes for good, the standby is promoted and
	// protection re-arms on the spare machine.
	cl.Machine("p1").Crash()
	deadline := time.Now().Add(3 * time.Second)
	for len(g.HA.Promotions()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(g.HA.Promotions()) != 1 {
		t.Fatalf("promotions %d, want 1", len(g.HA.Promotions()))
	}
	if got := g.HA.PrimaryRuntime().Node(); string(got) != "s1" {
		t.Fatalf("primary on %s, want s1 after promotion", got)
	}
	// Re-arming finishes after the promotion event is recorded; wait for
	// the replacement standby to appear.
	deadline = time.Now().Add(2 * time.Second)
	for g.HA.SecondaryRuntime() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	sec := g.HA.SecondaryRuntime()
	if sec == nil || string(sec.Node()) != "spare" {
		t.Fatal("promotion did not re-arm a standby on the spare machine")
	}
	if !sec.Suspended() {
		t.Fatal("re-armed standby not suspended")
	}
	time.Sleep(200 * time.Millisecond)

	// Fail-stop-style stall on the re-armed protection: the promoted
	// primary (on s1) stalls and the spare standby must take over.
	stall(cl, "s1", 120*time.Millisecond)
	deadline = time.Now().Add(2 * time.Second)
	for len(g.HA.Switches()) == swBeforeCrash && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(g.HA.Switches()) == swBeforeCrash {
		t.Fatal("re-armed standby never switched over after promotion")
	}

	time.Sleep(400 * time.Millisecond)
	p.Source().Stop()
	time.Sleep(400 * time.Millisecond)

	trs := g.HA.Transitions()
	checkTransitionChain(t, trs, core.Protected)
	var promoteSeen bool
	for _, tr := range trs {
		switch tr.Event {
		case core.EventMiss:
			if tr.From != core.Protected || tr.To != core.SwitchedOver {
				t.Fatalf("miss transition %s", tr)
			}
		case core.EventRecovery:
			if tr.From != core.SwitchedOver || tr.Via != core.RollingBack || tr.To != core.Protected {
				t.Fatalf("recovery transition %s", tr)
			}
		case core.EventPromoteTimer:
			promoteSeen = true
			if tr.From != core.SwitchedOver || tr.Via != core.Promoted || tr.To != core.Protected {
				t.Fatalf("promotion transition %s (spare present: must re-protect)", tr)
			}
		}
	}
	if !promoteSeen {
		t.Fatalf("transition log has no promote_timer event:\n%v", trs)
	}
	st := g.HA.Stats()
	if st.Mode != "hybrid" || st.Promotions != 1 || st.Switchovers < 3 || st.Rollbacks < 2 {
		t.Fatalf("lifecycle stats %+v", st)
	}
	verifyExactlyOnce(t, p, 200)
}

// TestLifecycleCyclePassive drives passive standby through two transient
// stalls — the machine roles ping-pong on each migration — and then a
// fail-stop crash of the re-armed primary; each failure is one migration
// in the transition log.
func TestLifecycleCyclePassive(t *testing.T) {
	cl, p := buildCycleTestbed(t, ha.ModePassive)
	g := p.Group(0)
	time.Sleep(300 * time.Millisecond)

	// Two transient stalls; the primary alternates p1 -> s1 -> p1.
	wantNode := []string{"s1", "p1"}
	for i := 0; i < 2; i++ {
		before := len(g.HA.Migrations())
		from := string(g.HA.PrimaryRuntime().Node())
		stall(cl, from, 400*time.Millisecond)
		deadline := time.Now().Add(3 * time.Second)
		for len(g.HA.Migrations()) == before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if len(g.HA.Migrations()) == before {
			t.Fatalf("stall %d on %s: no migration", i+1, from)
		}
		time.Sleep(300 * time.Millisecond)
		if got := string(g.HA.PrimaryRuntime().Node()); got != wantNode[i] {
			t.Fatalf("after migration %d primary on %s, want %s", i+1, got, wantNode[i])
		}
	}

	// Fail-stop on the re-armed protection: crash the current primary; the
	// detector re-armed after the second migration must drive a third
	// migration onto the standby machine.
	before := len(g.HA.Migrations())
	cl.Machine(string(g.HA.PrimaryRuntime().Node())).Crash()
	deadline := time.Now().Add(3 * time.Second)
	for len(g.HA.Migrations()) == before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(g.HA.Migrations()) == before {
		t.Fatal("crash after re-arming: no migration")
	}

	time.Sleep(400 * time.Millisecond)
	p.Source().Stop()
	time.Sleep(400 * time.Millisecond)

	trs := g.HA.Transitions()
	checkTransitionChain(t, trs, core.Protected)
	migrations := 0
	for i, tr := range trs {
		if tr.Event != core.EventMiss {
			t.Fatalf("passive log has non-miss event: %s", tr)
		}
		if tr.From != core.Protected || tr.Via != core.Migrating {
			t.Fatalf("migration transition %s", tr)
		}
		// The final migration leaves the crashed machine as the only
		// standby host: the subjob keeps running but unprotected. Every
		// earlier migration re-arms back to Protected.
		if i < len(trs)-1 && tr.To != core.Protected {
			t.Fatalf("migration %d did not re-arm: %s", i, tr)
		}
		migrations++
	}
	if migrations < 3 {
		t.Fatalf("transition log has %d migrations, want >= 3:\n%v", migrations, trs)
	}
	last := trs[len(trs)-1]
	if last.To != core.Unprotected {
		t.Fatalf("final migration off the crashed machine should settle unprotected: %s", last)
	}
	if st := g.HA.State(); st != core.Unprotected {
		t.Fatalf("state %s after exhausting live standby machines", st)
	}
	st := g.HA.Stats()
	if st.Mode != "passive" || st.Migrations != migrations || st.Switchovers != 0 {
		t.Fatalf("lifecycle stats %+v", st)
	}
}

// TestLifecycleCycleActive: the active-standby twin needs no detector and
// no transitions — it must keep delivering through a stall and even a
// crash of the primary machine, with an empty transition log throughout.
func TestLifecycleCycleActive(t *testing.T) {
	cl, p := buildCycleTestbed(t, ha.ModeActive)
	g := p.Group(0)
	time.Sleep(300 * time.Millisecond)

	stall(cl, "p1", 200*time.Millisecond)
	time.Sleep(200 * time.Millisecond)
	cl.Machine("p1").Crash()
	time.Sleep(400 * time.Millisecond)

	p.Source().Stop()
	time.Sleep(400 * time.Millisecond)

	if st := g.HA.State(); st != core.Protected {
		t.Fatalf("active standby state %s, want protected", st)
	}
	if trs := g.HA.Transitions(); len(trs) != 0 {
		t.Fatalf("active standby recorded transitions: %v", trs)
	}
	st := g.HA.Stats()
	if st.Mode != "active" || st.Switchovers != 0 || st.Migrations != 0 {
		t.Fatalf("lifecycle stats %+v", st)
	}
	verifyExactlyOnce(t, p, 200)
}

// TestLifecycleCycleNone: an unprotected subjob endures stalls with no HA
// machinery at all; the lifecycle stays Unprotected and records nothing.
func TestLifecycleCycleNone(t *testing.T) {
	cl, p := buildCycleTestbed(t, ha.ModeNone)
	g := p.Group(0)
	time.Sleep(300 * time.Millisecond)

	stall(cl, "p1", 200*time.Millisecond)
	stall(cl, "p1", 200*time.Millisecond)
	time.Sleep(300 * time.Millisecond)

	p.Source().Stop()
	time.Sleep(300 * time.Millisecond)

	if st := g.HA.State(); st != core.Unprotected {
		t.Fatalf("none-mode state %s, want unprotected", st)
	}
	if trs := g.HA.Transitions(); len(trs) != 0 {
		t.Fatalf("none-mode recorded transitions: %v", trs)
	}
	if st := g.HA.Stats(); st.Mode != "none" {
		t.Fatalf("lifecycle stats %+v", st)
	}
	verifyExactlyOnce(t, p, 300)
}
