// Package ha assembles the four high-availability modes the paper
// evaluates — NONE, active standby, passive standby and hybrid — and the
// pipeline builder that deploys a chain job across cluster machines with a
// per-subjob mode choice (Section V-A: each subjob in the same job can use
// a different HA mode).
package ha

import "fmt"

// Mode selects a subjob's high-availability scheme.
type Mode int

// The four HA modes of the paper's evaluation.
const (
	// ModeNone deploys a single copy; failures are endured.
	ModeNone Mode = iota
	// ModeActive runs two copies concurrently (active standby): roughly
	// four times the traffic, near-zero recovery delay.
	ModeActive
	// ModePassive checkpoints a primary to a secondary machine and deploys
	// a recovery copy on demand after three heartbeat misses.
	ModePassive
	// ModeHybrid pre-deploys a suspended secondary refreshed in memory and
	// switches to active standby on the first heartbeat miss (the paper's
	// contribution; implemented in internal/core).
	ModeHybrid
)

var modeNames = map[Mode]string{
	ModeNone:    "none",
	ModeActive:  "active",
	ModePassive: "passive",
	ModeHybrid:  "hybrid",
}

func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode converts a mode name to a Mode.
func ParseMode(s string) (Mode, error) {
	for m, name := range modeNames {
		if name == s {
			return m, nil
		}
	}
	return ModeNone, fmt.Errorf("ha: unknown mode %q", s)
}
