// Package ha assembles the four high-availability modes the paper
// evaluates — NONE, active standby, passive standby and hybrid — and the
// pipeline builder that deploys a chain job across cluster machines with a
// per-subjob mode choice (Section V-A: each subjob in the same job can use
// a different HA mode). Every mode is a core.StandbyPolicy plugged into
// the shared core.Lifecycle state machine; this package only picks the
// policy and wires the job.
package ha

import (
	"fmt"
	"strings"
	"time"

	"streamha/internal/core"
)

// Mode selects a subjob's high-availability scheme.
type Mode int

// The four HA modes of the paper's evaluation.
const (
	// ModeNone deploys a single copy; failures are endured.
	ModeNone Mode = iota
	// ModeActive runs two copies concurrently (active standby): roughly
	// four times the traffic, near-zero recovery delay.
	ModeActive
	// ModePassive checkpoints a primary to a secondary machine and deploys
	// a recovery copy on demand after three heartbeat misses.
	ModePassive
	// ModeHybrid pre-deploys a suspended secondary refreshed in memory and
	// switches to active standby on the first heartbeat miss (the paper's
	// contribution; implemented in internal/core).
	ModeHybrid
)

// allModes fixes the canonical ordering, so String, ParseMode and Modes
// are deterministic.
var allModes = [...]struct {
	mode Mode
	name string
}{
	{ModeNone, "none"},
	{ModeActive, "active"},
	{ModePassive, "passive"},
	{ModeHybrid, "hybrid"},
}

func (m Mode) String() string {
	for _, e := range allModes {
		if e.mode == m {
			return e.name
		}
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Modes returns the valid mode names in canonical order, for CLI flag
// validation and help text.
func Modes() []string {
	names := make([]string, len(allModes))
	for i, e := range allModes {
		names[i] = e.name
	}
	return names
}

// ParseMode converts a mode name to a Mode. The error for an unknown name
// lists the valid names, deterministically ordered.
func ParseMode(s string) (Mode, error) {
	for _, e := range allModes {
		if e.name == s {
			return e.mode, nil
		}
	}
	return ModeNone, fmt.Errorf("ha: unknown mode %q (valid: %s)", s, strings.Join(Modes(), ", "))
}

// PSOptions tunes conventional passive standby. It is an alias of the
// core package's options type; the policy itself lives in core.
type PSOptions = core.PassiveOptions

// MigrationEvent records one passive-standby recovery (alias of the core
// event type).
type MigrationEvent = core.MigrationEvent

// policyFor maps a subjob's Mode to its StandbyPolicy — the one residual
// mode dispatch in the package; everything downstream of it is uniform.
func policyFor(m Mode, hybrid core.Options, ps PSOptions, ackInterval time.Duration) core.StandbyPolicy {
	switch m {
	case ModeActive:
		return core.NewActivePolicy(ackInterval)
	case ModePassive:
		return core.NewPassivePolicy(ps)
	case ModeHybrid:
		return core.NewHybridPolicy(hybrid)
	default:
		return core.NewNonePolicy(ackInterval)
	}
}
