// Package ha assembles the five high-availability modes — NONE, active
// standby, passive standby, hybrid (the four the paper evaluates) and
// approx (bounded-error hybrid) — and the pipeline builder that deploys a
// chain job across cluster machines with a per-subjob mode choice
// (Section V-A: each subjob in the same job can use a different HA mode).
// Every mode is a core.StandbyPolicy plugged into the shared
// core.Lifecycle state machine; this package only picks the policy and
// wires the job.
package ha

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"streamha/internal/core"
)

// Mode selects a subjob's high-availability scheme.
type Mode int

// The four HA modes of the paper's evaluation.
const (
	// ModeNone deploys a single copy; failures are endured.
	ModeNone Mode = iota
	// ModeActive runs two copies concurrently (active standby): roughly
	// four times the traffic, near-zero recovery delay.
	ModeActive
	// ModePassive checkpoints a primary to a secondary machine and deploys
	// a recovery copy on demand after three heartbeat misses.
	ModePassive
	// ModeHybrid pre-deploys a suspended secondary refreshed in memory and
	// switches to active standby on the first heartbeat miss (the paper's
	// contribution; implemented in internal/core).
	ModeHybrid
	// ModeApprox is hybrid with bounded-error recovery: checkpoints ship
	// only the hot state slots as unchained partial frames, and failover
	// promotes the standby immediately, skipping the upstream replay when
	// the estimated loss fits a configured error budget. Spelled
	// "approx:<max-lost-elements>" wherever mode names are parsed.
	ModeApprox
)

// allModes registers every mode's canonical name; String, ParseMode and
// Modes derive from it, so a new policy registered here is automatically
// parseable and listed.
var allModes = [...]struct {
	mode Mode
	name string
}{
	{ModeNone, "none"},
	{ModeActive, "active"},
	{ModePassive, "passive"},
	{ModeHybrid, "hybrid"},
	{ModeApprox, "approx"},
}

func (m Mode) String() string {
	for _, e := range allModes {
		if e.mode == m {
			return e.name
		}
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Modes returns the valid mode names, sorted, for CLI flag validation and
// help text.
func Modes() []string {
	names := make([]string, len(allModes))
	for i, e := range allModes {
		names[i] = e.name
	}
	sort.Strings(names)
	return names
}

// ParseMode converts a mode name to a Mode. The approx mode carries its
// error budget in the name ("approx:<max-lost-elements>", budget > 0);
// ParseMode validates it and discards the value — use ParseModeBudget to
// keep it. The error for an unknown name lists the valid names,
// deterministically ordered.
func ParseMode(s string) (Mode, error) {
	m, _, err := ParseModeBudget(s)
	return m, err
}

// ParseModeBudget converts a mode name to a Mode plus, for approx, the
// error budget spelled in it ("approx:<max-lost-elements>"). The budget
// must be a positive integer: a bare "approx", a zero or negative budget,
// or a malformed one is rejected with a deterministic error (a zero
// budget is expressible only programmatically, via core.ErrorBudget, where
// it degenerates to exact hybrid behavior). Other modes return a zero
// budget.
func ParseModeBudget(s string) (Mode, core.ErrorBudget, error) {
	if spec, ok := strings.CutPrefix(s, "approx:"); ok {
		n, err := strconv.Atoi(spec)
		if err != nil || n <= 0 {
			return ModeNone, core.ErrorBudget{},
				fmt.Errorf("ha: approx error budget must be a positive element count, got %q", spec)
		}
		return ModeApprox, core.ErrorBudget{MaxLostElements: n}, nil
	}
	if s == "approx" {
		return ModeNone, core.ErrorBudget{},
			fmt.Errorf("ha: mode approx requires an error budget (use approx:<max-lost-elements>)")
	}
	for _, e := range allModes {
		if e.name == s {
			return e.mode, core.ErrorBudget{}, nil
		}
	}
	return ModeNone, core.ErrorBudget{},
		fmt.Errorf("ha: unknown mode %q (valid: %s)", s, strings.Join(Modes(), ", "))
}

// PSOptions tunes conventional passive standby. It is an alias of the
// core package's options type; the policy itself lives in core.
type PSOptions = core.PassiveOptions

// MigrationEvent records one passive-standby recovery (alias of the core
// event type).
type MigrationEvent = core.MigrationEvent

// policyFor maps a subjob's Mode to its StandbyPolicy — the one residual
// mode dispatch in the package; everything downstream of it is uniform.
// approx is the error budget applied when m is ModeApprox (a zero budget
// degenerates the policy to exact hybrid behavior).
func policyFor(m Mode, hybrid core.Options, ps PSOptions, approx core.ErrorBudget, ackInterval time.Duration) core.StandbyPolicy {
	switch m {
	case ModeActive:
		return core.NewActivePolicy(ackInterval)
	case ModePassive:
		return core.NewPassivePolicy(ps)
	case ModeHybrid:
		return core.NewHybridPolicy(hybrid)
	case ModeApprox:
		return core.NewApproxPolicy(hybrid, approx)
	default:
		return core.NewNonePolicy(ackInterval)
	}
}
