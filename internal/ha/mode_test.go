package ha

import (
	"strings"
	"testing"

	"streamha/internal/core"
)

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModeNone:    "none",
		ModeActive:  "active",
		ModePassive: "passive",
		ModeHybrid:  "hybrid",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", int(m), m.String())
		}
	}
	if Mode(42).String() == "" {
		t.Fatal("unknown mode must still stringify")
	}
}

func TestParseMode(t *testing.T) {
	for _, name := range []string{"none", "active", "passive", "hybrid"} {
		m, err := ParseMode(name)
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", name, err)
		}
		if m.String() != name {
			t.Fatalf("round trip %q -> %v", name, m)
		}
	}
}

func TestParseModeErrorListsValidNames(t *testing.T) {
	_, err := ParseMode("bogus")
	if err == nil {
		t.Fatal("want error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"bogus"`) {
		t.Fatalf("error does not name the bad input: %q", msg)
	}
	for _, name := range Modes() {
		if !strings.Contains(msg, name) {
			t.Fatalf("error does not list mode %q: %q", name, msg)
		}
	}
	// Deterministic: two parses of different bad inputs order the list the
	// same way.
	_, err2 := ParseMode("also-bogus")
	tail := func(s string) string {
		if i := strings.Index(s, "valid:"); i >= 0 {
			return s[i:]
		}
		return s
	}
	if tail(err.Error()) != tail(err2.Error()) {
		t.Fatalf("valid-name list not deterministic: %q vs %q", err.Error(), err2.Error())
	}
}

func TestModesOrder(t *testing.T) {
	want := []string{"none", "active", "passive", "hybrid"}
	got := Modes()
	if len(got) != len(want) {
		t.Fatalf("Modes() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Modes() = %v, want %v", got, want)
		}
	}
}

func TestPolicyForModes(t *testing.T) {
	for _, name := range Modes() {
		m, err := ParseMode(name)
		if err != nil {
			t.Fatal(err)
		}
		pol := policyFor(m, core.Options{}, PSOptions{}, 0)
		if pol.Mode() != name {
			t.Fatalf("policyFor(%s).Mode() = %q", name, pol.Mode())
		}
	}
}
