package ha

import "testing"

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModeNone:    "none",
		ModeActive:  "active",
		ModePassive: "passive",
		ModeHybrid:  "hybrid",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", int(m), m.String())
		}
	}
	if Mode(42).String() == "" {
		t.Fatal("unknown mode must still stringify")
	}
}

func TestParseMode(t *testing.T) {
	for _, name := range []string{"none", "active", "passive", "hybrid"} {
		m, err := ParseMode(name)
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", name, err)
		}
		if m.String() != name {
			t.Fatalf("round trip %q -> %v", name, m)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("want error")
	}
}

func TestPSOptionsDefaults(t *testing.T) {
	o := PSOptions{}.withDefaults()
	if o.MissThreshold != 3 {
		t.Fatalf("conventional PS threshold %d, want 3", o.MissThreshold)
	}
	if o.HeartbeatInterval <= 0 || o.CheckpointInterval <= 0 || o.DeployCost <= 0 {
		t.Fatal("defaults missing")
	}
}
