package ha

import (
	"sort"
	"strings"
	"testing"

	"streamha/internal/core"
)

// parseName spells mode name as ParseMode input: approx carries its error
// budget in the spelling, the other modes are bare.
func parseName(name string) string {
	if name == "approx" {
		return "approx:100"
	}
	return name
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModeNone:    "none",
		ModeActive:  "active",
		ModePassive: "passive",
		ModeHybrid:  "hybrid",
		ModeApprox:  "approx",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", int(m), m.String())
		}
	}
	if Mode(42).String() == "" {
		t.Fatal("unknown mode must still stringify")
	}
}

func TestParseMode(t *testing.T) {
	for _, name := range Modes() {
		m, err := ParseMode(parseName(name))
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", parseName(name), err)
		}
		if m.String() != name {
			t.Fatalf("round trip %q -> %v", name, m)
		}
	}
}

func TestParseModeBudget(t *testing.T) {
	m, b, err := ParseModeBudget("approx:250")
	if err != nil {
		t.Fatal(err)
	}
	if m != ModeApprox || b.MaxLostElements != 250 {
		t.Fatalf("ParseModeBudget(approx:250) = %v, %+v", m, b)
	}
	if b.Zero() {
		t.Fatal("a positive budget must not be zero")
	}
	m, b, err = ParseModeBudget("hybrid")
	if err != nil {
		t.Fatal(err)
	}
	if m != ModeHybrid || !b.Zero() {
		t.Fatalf("ParseModeBudget(hybrid) = %v, %+v", m, b)
	}
}

func TestParseModeApproxBudgetRejected(t *testing.T) {
	// The approx mode must not be creatable without a positive budget: a
	// bare name, a zero or negative count, and garbage all fail, each with
	// the same deterministic message for the same input.
	for _, bad := range []string{"approx", "approx:", "approx:0", "approx:-5", "approx:lots"} {
		_, err := ParseMode(bad)
		if err == nil {
			t.Fatalf("ParseMode(%q): want error", bad)
		}
		_, err2 := ParseMode(bad)
		if err.Error() != err2.Error() {
			t.Fatalf("ParseMode(%q) error not deterministic: %q vs %q", bad, err, err2)
		}
		if !strings.Contains(err.Error(), "budget") {
			t.Fatalf("ParseMode(%q) error does not mention the budget: %q", bad, err)
		}
	}
}

func TestParseModeErrorListsValidNames(t *testing.T) {
	_, err := ParseMode("bogus")
	if err == nil {
		t.Fatal("want error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"bogus"`) {
		t.Fatalf("error does not name the bad input: %q", msg)
	}
	for _, name := range Modes() {
		if !strings.Contains(msg, name) {
			t.Fatalf("error does not list mode %q: %q", name, msg)
		}
	}
	// Deterministic: two parses of different bad inputs order the list the
	// same way.
	_, err2 := ParseMode("also-bogus")
	tail := func(s string) string {
		if i := strings.Index(s, "valid:"); i >= 0 {
			return s[i:]
		}
		return s
	}
	if tail(err.Error()) != tail(err2.Error()) {
		t.Fatalf("valid-name list not deterministic: %q vs %q", err.Error(), err2.Error())
	}
}

func TestModesOrder(t *testing.T) {
	want := []string{"active", "approx", "hybrid", "none", "passive"}
	got := Modes()
	if !sort.StringsAreSorted(got) {
		t.Fatalf("Modes() not sorted: %v", got)
	}
	if len(got) != len(want) {
		t.Fatalf("Modes() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Modes() = %v, want %v", got, want)
		}
	}
}

// TestModesPolicyDrift pins Modes(), ParseMode/ParseModeBudget and
// policyFor together: every listed name parses (with a budget where the
// spelling requires one) and resolves to a policy reporting that name, so
// registering a policy without listing it — or listing one without a
// parse or dispatch arm — fails here.
func TestModesPolicyDrift(t *testing.T) {
	seen := make(map[string]bool)
	for _, name := range Modes() {
		if seen[name] {
			t.Fatalf("Modes() lists %q twice", name)
		}
		seen[name] = true
		m, b, err := ParseModeBudget(parseName(name))
		if err != nil {
			t.Fatalf("ParseModeBudget(%q): %v", parseName(name), err)
		}
		pol := policyFor(m, core.Options{}, PSOptions{}, b, 0)
		if pol.Mode() != name {
			t.Fatalf("policyFor(%s).Mode() = %q", name, pol.Mode())
		}
	}
}

func TestPolicyForModes(t *testing.T) {
	for _, name := range Modes() {
		m, err := ParseMode(parseName(name))
		if err != nil {
			t.Fatal(err)
		}
		pol := policyFor(m, core.Options{}, PSOptions{}, core.ErrorBudget{MaxLostElements: 100}, 0)
		if pol.Mode() != name {
			t.Fatalf("policyFor(%s).Mode() = %q", name, pol.Mode())
		}
	}
}
