package ha_test

import (
	"testing"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/ha"
	"streamha/internal/pe"
	"streamha/internal/subjob"
)

// buildPartitionedTestbed deploys one keyed-parallel stage at
// Parallelism(4) under the given HA mode: four partition-instances, each
// its own lifecycle with a primary on p<k> and (mode permitting) a standby
// on s<k>.
func buildPartitionedTestbed(t *testing.T, mode ha.Mode) (*cluster.Cluster, *ha.Pipeline) {
	t.Helper()
	cl := cluster.New(cluster.Config{Latency: 100 * time.Microsecond})
	for _, id := range []string{"m-src", "m-sink", "p0", "p1", "p2", "p3", "s0", "s1", "s2", "s3"} {
		cl.MustAddMachine(id)
	}
	p, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "pjob",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 4000, Tick: 2 * time.Millisecond},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{{
			PEs: []subjob.PESpec{
				{Name: "pe", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 10} }, Cost: 10 * time.Microsecond},
			},
			Mode:        mode,
			Parallelism: 4,
			Primaries:   []string{"p0", "p1", "p2", "p3"},
			Secondaries: []string{"s0", "s1", "s2", "s3"},
		}},
		Hybrid:   core.Options{FailStopAfter: 250 * time.Millisecond},
		TrackIDs: true,
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		p.Stop()
		cl.Close()
	})
	return cl, p
}

// TestPartitionedCycleHybrid: with four independently protected
// partition-instances, a stall on one instance's primary must switch over
// and roll back that instance only, and a fail-stop on another must
// promote its standby — while the untouched instances keep the rest of the
// key space flowing and the job stays exactly-once end to end.
func TestPartitionedCycleHybrid(t *testing.T) {
	cl, p := buildPartitionedTestbed(t, ha.ModeHybrid)
	groups := p.StageInstances(0)
	time.Sleep(300 * time.Millisecond)

	// Transient stall on instance 1's primary: switchover then rollback.
	stall(cl, "p1", 120*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for len(groups[1].HA.Rollbacks()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(groups[1].HA.Rollbacks()) == 0 {
		t.Fatalf("instance 1 never rolled back (switches=%d)", len(groups[1].HA.Switches()))
	}

	// Fail-stop on instance 2's primary machine: its standby is promoted.
	cl.Machine("p2").Crash()
	deadline = time.Now().Add(3 * time.Second)
	for len(groups[2].HA.Promotions()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(groups[2].HA.Promotions()) != 1 {
		t.Fatalf("instance 2 promotions %d, want 1", len(groups[2].HA.Promotions()))
	}
	if got := string(groups[2].HA.PrimaryRuntime().Node()); got != "s2" {
		t.Fatalf("instance 2 primary on %s, want s2", got)
	}

	// The failures must stay contained: the untouched instances keep their
	// own primaries and never promote. (A transient switchover+rollback on
	// a heavily loaded host is tolerated — it self-heals — but a promotion
	// would mean another instance's failure leaked into this one.)
	for _, k := range []int{0, 3} {
		if n := len(groups[k].HA.Promotions()); n != 0 {
			t.Fatalf("untouched instance %d promoted %d times", k, n)
		}
		if got, want := string(groups[k].HA.PrimaryRuntime().Node()), []string{"p0", "", "", "p3"}[k]; got != want {
			t.Fatalf("untouched instance %d primary moved to %s", k, got)
		}
	}

	time.Sleep(300 * time.Millisecond)
	p.Source().Stop()
	time.Sleep(400 * time.Millisecond)

	for k, g := range groups {
		checkTransitionChain(t, g.HA.Transitions(), core.Protected)
		if k == 1 && len(g.HA.Rollbacks()) == 0 {
			t.Fatalf("instance 1 lost its rollback record")
		}
	}
	verifyExactlyOnce(t, p, 500)
}

// TestPartitionedCyclePassive: a stall on one partition-instance migrates
// only that instance; the others never transition.
func TestPartitionedCyclePassive(t *testing.T) {
	cl, p := buildPartitionedTestbed(t, ha.ModePassive)
	groups := p.StageInstances(0)
	time.Sleep(300 * time.Millisecond)

	stall(cl, "p1", 400*time.Millisecond)
	deadline := time.Now().Add(3 * time.Second)
	for len(groups[1].HA.Migrations()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(groups[1].HA.Migrations()) == 0 {
		t.Fatal("instance 1 never migrated")
	}
	time.Sleep(300 * time.Millisecond)
	if got := string(groups[1].HA.PrimaryRuntime().Node()); got != "s1" {
		t.Fatalf("instance 1 primary on %s after migration, want s1", got)
	}
	// Containment: the untouched instances keep their own primaries.
	for _, k := range []int{0, 2, 3} {
		if got, want := string(groups[k].HA.PrimaryRuntime().Node()), []string{"p0", "", "p2", "p3"}[k]; got != want {
			t.Fatalf("untouched instance %d primary moved to %s", k, got)
		}
	}

	time.Sleep(300 * time.Millisecond)
	p.Source().Stop()
	time.Sleep(400 * time.Millisecond)

	// Passive recovery replays from the last checkpoint; deliveries must
	// still never duplicate at the element level.
	for id, n := range p.Sink().IDCounts() {
		if n != 1 {
			t.Fatalf("element %d delivered %d times after migration", id, n)
		}
	}
}

// TestPartitionedCycleActive: every partition-instance runs a twin; a
// stall and even a crash of two different primaries must pass without a
// single transition or lost element.
func TestPartitionedCycleActive(t *testing.T) {
	cl, p := buildPartitionedTestbed(t, ha.ModeActive)
	groups := p.StageInstances(0)
	time.Sleep(300 * time.Millisecond)

	stall(cl, "p1", 200*time.Millisecond)
	time.Sleep(200 * time.Millisecond)
	cl.Machine("p2").Crash()
	time.Sleep(400 * time.Millisecond)

	p.Source().Stop()
	time.Sleep(400 * time.Millisecond)

	for k, g := range groups {
		if st := g.HA.State(); st != core.Protected {
			t.Fatalf("instance %d state %s, want protected", k, st)
		}
		if trs := g.HA.Transitions(); len(trs) != 0 {
			t.Fatalf("instance %d recorded transitions: %v", k, trs)
		}
	}
	verifyExactlyOnce(t, p, 500)
}

// TestPartitionedCycleNone: unprotected partition-instances endure stalls
// (nothing fails permanently, nothing transitions) and the fan-out/fan-in
// path alone preserves exactly-once.
func TestPartitionedCycleNone(t *testing.T) {
	cl, p := buildPartitionedTestbed(t, ha.ModeNone)
	groups := p.StageInstances(0)
	time.Sleep(300 * time.Millisecond)

	stall(cl, "p1", 200*time.Millisecond)
	stall(cl, "p3", 200*time.Millisecond)
	time.Sleep(300 * time.Millisecond)

	p.Source().Stop()
	time.Sleep(400 * time.Millisecond)

	for k, g := range groups {
		if st := g.HA.State(); st != core.Unprotected {
			t.Fatalf("instance %d state %s, want unprotected", k, st)
		}
	}
	verifyExactlyOnce(t, p, 500)
}
