package ha

import (
	"fmt"
	"sync"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/machine"
	"streamha/internal/metrics"
	"streamha/internal/queue"
	"streamha/internal/sched"
	"streamha/internal/subjob"
)

// SubjobDef places one subjob of a chain job and selects its HA mode.
type SubjobDef struct {
	// ID names the subjob; empty selects "sj<i>".
	ID string
	// PEs is the subjob's pipeline.
	PEs []subjob.PESpec
	// Mode is the HA scheme.
	Mode Mode
	// Primary is the machine hosting the primary copy. Empty delegates the
	// choice to the pipeline's Scheduler (required then).
	Primary string
	// Secondary is the machine hosting the standby side (AS second copy,
	// PS store, hybrid standby). Required unless Mode is ModeNone or a
	// Scheduler resolves it — a scheduled standby never lands on the
	// primary's machine or anywhere in its fault domain.
	Secondary string
	// Spare optionally hosts the hybrid's replacement standby after a
	// fail-stop promotion. A non-empty name must exist in the cluster.
	// With a Scheduler, leaving it empty lets promotion ask for a host on
	// demand instead of pinning one up front.
	Spare string
	// BatchSize overrides the per-PE batch size.
	BatchSize int

	// Parallelism enables keyed parallelism: n ≥ 1 deploys n partition
	// instances of the stage, each a full HA group (own lifecycle, standby
	// and checkpoints), with upstream elements fanned out by a stable hash
	// of Element.Key over the stage's partition table. 0 selects the legacy
	// single unpartitioned instance (no routing table, no input guard).
	Parallelism int
	// Partitions is the logical partition count of the stage's routing
	// table (default queue.DefaultPartitions); meaningful only with
	// Parallelism ≥ 1. Rescaling moves logical partitions between
	// instances, so Partitions bounds the granularity of rebalancing.
	Partitions int
	// Primaries, Secondaries and Spares place instance k on
	// Primaries[k] etc.; instances beyond the slice fall back to
	// Primary/Secondary/Spare. Meaningful only with Parallelism ≥ 1.
	Primaries   []string
	Secondaries []string
	Spares      []string
}

// partitioned reports whether the stage uses the keyed-parallel path.
func (d SubjobDef) partitioned() bool { return d.Parallelism >= 1 }

// instances is the stage's initial instance count.
func (d SubjobDef) instances() int {
	if d.Parallelism >= 1 {
		return d.Parallelism
	}
	return 1
}

func pick(list []string, k int, fallback string) string {
	if k < len(list) && list[k] != "" {
		return list[k]
	}
	return fallback
}

func (d SubjobDef) primaryOf(k int) string   { return pick(d.Primaries, k, d.Primary) }
func (d SubjobDef) secondaryOf(k int) string { return pick(d.Secondaries, k, d.Secondary) }
func (d SubjobDef) spareOf(k int) string     { return pick(d.Spares, k, d.Spare) }

// SourceDef places and shapes the job's source.
type SourceDef struct {
	Machine     string
	Rate        float64
	Tick        time.Duration
	BurstOn     time.Duration
	BurstOff    time.Duration
	BurstFactor float64
}

// PipelineConfig deploys a chain job (the paper's 8-PE / 4-subjob
// experimental topology, generalized).
type PipelineConfig struct {
	// Cluster supplies machines, network and clock.
	Cluster *cluster.Cluster
	// JobID names the job; stream and subjob names derive from it.
	JobID string
	// Source feeds the first subjob.
	Source SourceDef
	// SinkMachine hosts the measuring sink.
	SinkMachine string
	// Subjobs is the chain, upstream to downstream.
	Subjobs []SubjobDef
	// Hybrid tunes hybrid-mode subjobs (intervals, costs, ablations); it
	// also tunes approx-mode subjobs, which share the hybrid machinery.
	Hybrid core.Options
	// PS tunes passive-standby subjobs.
	PS PSOptions
	// Approx is the error budget of approx-mode subjobs: how many
	// in-flight elements a budgeted failover may skip instead of
	// replaying, and how stale the promoted standby may be. The zero
	// budget degenerates approx to exact hybrid behavior.
	Approx core.ErrorBudget
	// AckInterval drives the ackers of NONE/AS copies and the sink
	// (default: the hybrid checkpoint interval, seeding the sweep).
	AckInterval time.Duration
	// TrackIDs makes the sink retain per-ID delivery counts for
	// exactly-once verification in tests.
	TrackIDs bool
	// Scheduler, when set, resolves placement requests (empty Primary /
	// Secondary / Spare fields) against the cluster's schedulable pool and
	// keeps every lifecycle re-armable: after a promotion or standby-machine
	// death the lifecycle asks it for a fresh host instead of settling
	// unprotected.
	Scheduler *sched.Scheduler
	// RearmInterval is the lifecycles' re-arm health-check period
	// (default 100ms); meaningful only with a Scheduler.
	RearmInterval time.Duration
}

// Group is one deployed subjob instance with its HA lifecycle. A legacy
// stage has exactly one group; a keyed-parallel stage has one group per
// partition instance.
type Group struct {
	Def  SubjobDef
	Spec subjob.Spec
	Mode Mode

	// Stage is the group's stage index in the chain.
	Stage int
	// Part is the group's partition-instance index within its stage, or
	// -1 for a legacy unpartitioned stage.
	Part int

	// HA is the subjob's lifecycle engine: one state machine regardless of
	// mode, with the mode plugged in as its StandbyPolicy.
	HA *core.Lifecycle
}

// LiveOutputs returns the output queues of every live copy of the group.
func (g *Group) LiveOutputs() []*queue.Output {
	outs := []*queue.Output{g.HA.PrimaryRuntime().Out()}
	if sec := g.HA.SecondaryRuntime(); sec != nil {
		outs = append(outs, sec.Out())
	}
	return outs
}

// ConsumerTargets returns every copy of the group as a consumer of its
// input stream, with the flag saying whether data should flow to it now:
// always to the primary, and to a standby copy only while it is running
// (an AS twin, or a hybrid standby that is currently switched over). A
// suspended standby's subscription stays inactive — that is the early
// connection. Part carries the group's partition-instance index so keyed
// producers filter the subscription to the keys the group serves.
func (g *Group) ConsumerTargets(logical string) []core.Target {
	stream := subjob.DataStream(g.Spec.ID, logical)
	out := []core.Target{{Node: g.HA.PrimaryRuntime().Node(), Stream: stream, Active: true, Part: g.Part}}
	if sec := g.HA.SecondaryRuntime(); sec != nil {
		out = append(out, core.Target{Node: sec.Node(), Stream: stream, Active: !sec.Suspended(), Part: g.Part})
	}
	return out
}

// PrimaryRuntime returns the group's current primary copy.
func (g *Group) PrimaryRuntime() *subjob.Runtime { return g.HA.PrimaryRuntime() }

// SecondaryRuntime returns the group's standby copy, or nil (AS returns
// its second copy; PS keeps state in a store, not a copy).
func (g *Group) SecondaryRuntime() *subjob.Runtime { return g.HA.SecondaryRuntime() }

// Pipeline is a deployed chain job.
type Pipeline struct {
	cfg    PipelineConfig
	source *cluster.Source
	sink   *cluster.Sink

	// mu guards stages and linkStreams, which live rescaling mutates.
	mu          sync.Mutex
	stages      [][]*Group
	linkStreams [][]string // linkStreams[i] feeds stage i; last entry feeds the sink
	linkSplit   []*queue.Partitioner
	reg         *metrics.Registry

	// placer adapts cfg.Scheduler for the lifecycles; nil without one.
	placer core.Placer
}

// defID resolves stage i's subjob name.
func (p *Pipeline) defID(i int) string {
	if id := p.cfg.Subjobs[i].ID; id != "" {
		return id
	}
	return fmt.Sprintf("sj%d", i)
}

// specID names stage i's instance k: "<job>/<def>" for a legacy stage,
// "<job>/<def>.p<k>" for a keyed-parallel one.
func (p *Pipeline) specID(i, k int) string {
	if p.cfg.Subjobs[i].partitioned() {
		return fmt.Sprintf("%s/%s.p%d", p.cfg.JobID, p.defID(i), k)
	}
	return p.cfg.JobID + "/" + p.defID(i)
}

// linkBase names link i's base stream ("<job>/s<i>"); partitioned
// producers append ".p<k>".
func (p *Pipeline) linkBase(i int) string {
	return fmt.Sprintf("%s/s%d", p.cfg.JobID, i)
}

// outStream names the output stream of stage i's instance k.
func (p *Pipeline) outStream(i, k int) string {
	if p.cfg.Subjobs[i].partitioned() {
		return fmt.Sprintf("%s.p%d", p.linkBase(i+1), k)
	}
	return p.linkBase(i + 1)
}

// ownersFor maps each stream of link i to its producing owner's ID.
func (p *Pipeline) ownersFor(i int) map[string]string {
	owners := make(map[string]string, len(p.linkStreams[i]))
	for k, st := range p.linkStreams[i] {
		if i == 0 {
			owners[st] = cluster.SourceOwner
		} else {
			owners[st] = p.specID(i-1, k)
		}
	}
	return owners
}

// downSplit returns the routing table stage i publishes through (the
// partitioner of the downstream link), or nil.
func (p *Pipeline) downSplit(i int) *queue.Partitioner {
	if i+1 < len(p.linkSplit) {
		return p.linkSplit[i+1]
	}
	return nil
}

// StagePartitioner returns stage i's input routing table, or nil for a
// legacy stage.
func (p *Pipeline) StagePartitioner(i int) *queue.Partitioner { return p.linkSplit[i] }

// NewPipeline builds and wires the job; call Start to begin processing.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if len(cfg.Subjobs) == 0 {
		return nil, fmt.Errorf("ha: pipeline needs at least one subjob")
	}
	if cfg.AckInterval <= 0 {
		if cfg.Hybrid.CheckpointInterval > 0 {
			cfg.AckInterval = cfg.Hybrid.CheckpointInterval
		} else {
			cfg.AckInterval = 5 * time.Millisecond
		}
	}
	p := &Pipeline{cfg: cfg}
	cl := cfg.Cluster
	if cfg.Scheduler != nil {
		p.placer = newSchedPlacer(cl, cfg.Scheduler)
	}

	// Routing tables: one shared Partitioner per keyed-parallel link. Every
	// producer of the link routes through the same table and every HA copy
	// of a consumer guards with it, so replicas agree on ownership even
	// while a rescale is moving partitions.
	p.linkSplit = make([]*queue.Partitioner, len(cfg.Subjobs))
	for i, def := range cfg.Subjobs {
		if def.partitioned() {
			p.linkSplit[i] = queue.NewPartitioner(def.Partitions, def.instances())
		}
	}

	// Stream names: link 0 is the source's stream; link i+1 carries stage
	// i's outputs — one stream per instance, so each producer keeps its own
	// sequence space and the downstream dedup stays per (stream, seq).
	p.linkStreams = make([][]string, len(cfg.Subjobs)+1)
	p.linkStreams[0] = []string{p.linkBase(0)}
	for i, def := range cfg.Subjobs {
		streams := make([]string, def.instances())
		for k := range streams {
			streams[k] = p.outStream(i, k)
		}
		p.linkStreams[i+1] = streams
	}

	// Source.
	srcM := cl.Machine(cfg.Source.Machine)
	if srcM == nil {
		return nil, fmt.Errorf("ha: unknown source machine %q", cfg.Source.Machine)
	}
	p.source = cluster.NewSource(cluster.SourceConfig{
		Machine:     srcM,
		Clock:       cl.Clock(),
		Stream:      p.linkStreams[0][0],
		Rate:        cfg.Source.Rate,
		Tick:        cfg.Source.Tick,
		BurstOn:     cfg.Source.BurstOn,
		BurstOff:    cfg.Source.BurstOff,
		BurstFactor: cfg.Source.BurstFactor,
	})
	if p.linkSplit[0] != nil {
		p.source.Out().SetPartitioner(p.linkSplit[0])
	}

	// Copies (phase A): create every runtime before any wiring so that
	// standby-to-standby early connections can be created uniformly. The
	// lifecycles are constructed here too — their wiring closures resolve
	// lazily — but armed only in Start.
	p.stages = make([][]*Group, len(cfg.Subjobs))
	for i, def := range cfg.Subjobs {
		for k := 0; k < def.instances(); k++ {
			g, err := p.buildGroup(i, k, def)
			if err != nil {
				return nil, err
			}
			p.stages[i] = append(p.stages[i], g)
		}
	}

	// Sink.
	sinkM := cl.Machine(cfg.SinkMachine)
	if sinkM == nil {
		return nil, fmt.Errorf("ha: unknown sink machine %q", cfg.SinkMachine)
	}
	lastLink := len(p.linkStreams) - 1
	p.sink = cluster.NewSink(cluster.SinkConfig{
		Machine:     sinkM,
		Clock:       cl.Clock(),
		ID:          cfg.JobID + "/sink",
		InStreams:   append([]string(nil), p.linkStreams[lastLink]...),
		Owners:      p.ownersFor(lastLink),
		AckInterval: cfg.AckInterval,
		TrackIDs:    cfg.TrackIDs,
	})

	// Wiring (phase B): subscribe every consumer copy of link i to every
	// producer copy of link i, with activity per the consumer's HA state.
	// Keyed consumers subscribe with their partition-instance index so the
	// producer's router filters their feed.
	for i := range p.stages {
		for _, out := range p.producerOutputs(i) {
			for _, g := range p.stages[i] {
				for _, t := range g.ConsumerTargets(out.StreamID) {
					out.SubscribePart(t.Node, t.Stream, t.Active, t.Part)
				}
			}
		}
	}
	for _, out := range p.producerOutputs(len(p.stages)) {
		out.SubscribePart(p.sink.Node(), subjob.DataStream(p.sink.ID(), out.StreamID), true, -1)
	}
	return p, nil
}

// buildGroup deploys stage i's instance k: primary (and policy-dictated
// standby) runtimes with partition plumbing installed before start, plus
// the lifecycle that protects them.
func (p *Pipeline) buildGroup(i, k int, def SubjobDef) (*Group, error) {
	cl := p.cfg.Cluster
	def.ID = p.defID(i)
	spec := subjob.Spec{
		JobID:     p.cfg.JobID,
		ID:        p.specID(i, k),
		InStreams: append([]string(nil), p.linkStreams[i]...),
		Owners:    p.ownersFor(i),
		OutStream: p.outStream(i, k),
		PEs:       def.PEs,
		BatchSize: def.BatchSize,
	}
	part := -1
	if def.partitioned() {
		part = k
	}
	split := p.linkSplit[i]
	down := p.downSplit(i)

	plumb := func(rt *subjob.Runtime) {
		if split != nil {
			rt.SetInputPartition(split, k)
		}
		if down != nil {
			rt.Out().SetPartitioner(down)
		}
	}

	pol := policyFor(def.Mode, p.cfg.Hybrid, p.cfg.PS, p.cfg.Approx, p.cfg.AckInterval)
	priM, secM, spareM, err := resolvePlacement(cl, p.placer, placementReq{
		Subjob:       spec.ID,
		Primary:      def.primaryOf(k),
		Secondary:    def.secondaryOf(k),
		Spare:        def.spareOf(k),
		NeedsStandby: pol.NeedsStandbyMachine(),
	})
	if err != nil {
		return nil, err
	}
	primary, err := subjob.New(spec, priM, false)
	if err != nil {
		return nil, err
	}
	plumb(primary)
	primary.Start()

	var secondary *subjob.Runtime
	if create, suspended := pol.PreDeploy(); create {
		secondary, err = subjob.New(spec, secM, suspended)
		if err != nil {
			return nil, err
		}
		plumb(secondary)
		secondary.Start()
	}

	g := &Group{Def: def, Spec: spec, Mode: def.Mode, Stage: i, Part: part}
	g.HA = core.NewLifecycle(core.LifecycleConfig{
		Spec:             spec,
		Clock:            cl.Clock(),
		Primary:          primary,
		Secondary:        secondary,
		SecondaryMachine: secM,
		SpareMachine:     spareM, // nil if unset
		Wiring:           p.wiringFor(i, g),
		Policy:           pol,
		Placer:           p.placer,
		RearmInterval:    p.cfg.RearmInterval,
	})
	return g, nil
}

// placementReq carries one group's machine names into resolvePlacement;
// empty names are placement requests when a placer is available.
type placementReq struct {
	Subjob       string
	Primary      string
	Secondary    string
	Spare        string
	NeedsStandby bool
}

// resolvePlacement turns a group's machine names into machines. Named
// machines must exist — including the spare, whose absence would
// otherwise surface only as a silent nil at promotion time. Empty names
// are resolved through the placer when one is bound: the primary goes
// wherever capacity is, the standby anywhere outside the primary's fault
// domain. An empty spare stays nil — with a placer, promotion requests a
// replacement on demand.
func resolvePlacement(cl *cluster.Cluster, placer core.Placer, req placementReq) (priM, secM, spareM *machine.Machine, err error) {
	if req.Primary == "" && placer != nil {
		priM = placer.PlacePrimary(req.Subjob, nil)
		if priM == nil {
			return nil, nil, nil, fmt.Errorf("ha: subjob %s: no schedulable capacity for primary", req.Subjob)
		}
	} else {
		priM = cl.Machine(req.Primary)
		if priM == nil {
			return nil, nil, nil, fmt.Errorf("ha: subjob %s: unknown primary machine %q", req.Subjob, req.Primary)
		}
	}
	if req.Secondary == "" && placer != nil && req.NeedsStandby {
		secM = placer.PlaceStandby(req.Subjob, priM)
		if secM == nil {
			return nil, nil, nil, fmt.Errorf("ha: subjob %s: no schedulable capacity for standby outside the primary's fault domain", req.Subjob)
		}
	} else {
		secM = cl.Machine(req.Secondary)
		if req.NeedsStandby && secM == nil {
			return nil, nil, nil, fmt.Errorf("ha: subjob %s: unknown secondary machine %q", req.Subjob, req.Secondary)
		}
	}
	if req.Spare != "" {
		spareM = cl.Machine(req.Spare)
		if spareM == nil {
			return nil, nil, nil, fmt.Errorf("ha: subjob %s: unknown spare machine %q", req.Subjob, req.Spare)
		}
	}
	return priM, secM, spareM, nil
}

// producerOutputs returns the output queues feeding link i
// (i == len(stages) means the sink's input link).
func (p *Pipeline) producerOutputs(i int) []*queue.Output {
	if i == 0 {
		return []*queue.Output{p.source.Out()}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var outs []*queue.Output
	for _, g := range p.stages[i-1] {
		outs = append(outs, g.LiveOutputs()...)
	}
	return outs
}

// wiringFor builds the dynamic wiring closures for group g of stage i.
func (p *Pipeline) wiringFor(i int, g *Group) core.Wiring {
	return core.Wiring{
		UpstreamOutputs: func() []*queue.Output { return p.producerOutputs(i) },
		DownstreamTargets: func() []core.Target {
			p.mu.Lock()
			lastStage := i == len(p.stages)-1
			var consumers []*Group
			if !lastStage {
				consumers = append(consumers, p.stages[i+1]...)
			}
			p.mu.Unlock()
			if lastStage {
				return []core.Target{{
					Node:   p.sink.Node(),
					Stream: subjob.DataStream(p.sink.ID(), g.Spec.OutStream),
					Active: true,
					Part:   -1,
				}}
			}
			var targets []core.Target
			for _, cg := range consumers {
				targets = append(targets, cg.ConsumerTargets(g.Spec.OutStream)...)
			}
			return targets
		},
		OutPartitioner: p.downSplit(i),
		InPartitioner:  p.linkSplit[i],
		Part:           g.Part,
	}
}

// Start launches sink and HA lifecycles, then the source — in that order,
// so no data is published before its consumers are wired.
func (p *Pipeline) Start() error {
	p.sink.Start()
	for _, g := range p.AllGroups() {
		if err := g.HA.Start(); err != nil {
			return err
		}
	}
	p.source.Start()
	return nil
}

// Stop halts everything: source first, then lifecycles (which own the
// copies and their HA apparatus) and the sink.
func (p *Pipeline) Stop() {
	p.source.Stop()
	for _, g := range p.AllGroups() {
		g.HA.Stop()
	}
	p.sink.Stop()
}

// Source returns the job's source.
func (p *Pipeline) Source() *cluster.Source { return p.source }

// Sink returns the job's sink.
func (p *Pipeline) Sink() *cluster.Sink { return p.sink }

// Groups returns one group per stage in chain order: the sole group of a
// legacy stage, instance 0 of a keyed-parallel one. Use StageInstances for
// every instance.
func (p *Pipeline) Groups() []*Group {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Group, len(p.stages))
	for i, st := range p.stages {
		out[i] = st[0]
	}
	return out
}

// Group returns stage i's first instance.
func (p *Pipeline) Group(i int) *Group {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stages[i][0]
}

// StageInstances returns every instance of stage i in partition order.
func (p *Pipeline) StageInstances(i int) []*Group {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Group(nil), p.stages[i]...)
}

// AllGroups returns every group of every stage, stage-major.
func (p *Pipeline) AllGroups() []*Group {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*Group
	for _, st := range p.stages {
		out = append(out, st...)
	}
	return out
}

// Stages returns the number of stages in the chain.
func (p *Pipeline) Stages() int { return len(p.cfg.Subjobs) }

// Streams returns the base link stream names, source stream first. A
// keyed-parallel stage's instances suffix ".p<k>" to their link's base
// name; LinkStreams returns the expanded per-instance list.
func (p *Pipeline) Streams() []string {
	out := make([]string, len(p.cfg.Subjobs)+1)
	for i := range out {
		out[i] = p.linkBase(i)
	}
	return out
}

// LinkStreams returns the stream names feeding link i
// (i == Stages() means the sink's input link).
func (p *Pipeline) LinkStreams(i int) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.linkStreams[i]...)
}

// RegisterMetrics registers every component of the pipeline in reg:
// transport traffic, source and sink state, and — per group — the current
// primary/standby runtimes plus the lifecycle (state, transition log),
// detector, checkpoint manager and store. Sources are closures that
// resolve the group's *current* components at snapshot time, so the
// registry keeps tracking across switchover, rollback and migration.
// Keyed-parallel instances register under their ".p<k>" spec IDs, giving
// per-partition delay, queue-depth and checkpoint series; groups added by
// a later ScaleOut self-register in the same registry.
func (p *Pipeline) RegisterMetrics(reg *metrics.Registry) {
	reg.Register("transport", func() any { return p.cfg.Cluster.Stats() })
	reg.Register("source", func() any { return p.source.Stats() })
	p.sink.RegisterMetrics(reg)
	for i, split := range p.linkSplit {
		if split == nil {
			continue
		}
		s := split
		reg.Register("partition/"+p.linkBase(i), func() any { return s.Stats() })
	}
	p.mu.Lock()
	p.reg = reg
	p.mu.Unlock()
	for _, g := range p.AllGroups() {
		registerGroupMetrics(reg, g)
	}
}

// registerGroupMetrics registers one group's components; shared by the
// chain and DAG builders. Every mode gets the same set — sources resolve
// nil components (a NONE subjob's detector, an AS subjob's checkpoint
// manager) to null at snapshot time.
func registerGroupMetrics(reg *metrics.Registry, g *Group) {
	id := g.Spec.ID
	lc := g.HA
	reg.Register("subjob/"+id+"/primary", func() any {
		return lc.PrimaryRuntime().Stats()
	})
	reg.Register("subjob/"+id+"/standby", func() any {
		sec := lc.SecondaryRuntime()
		if sec == nil {
			return nil
		}
		return sec.Stats()
	})
	reg.Register("ha/"+id, func() any { return lc.Stats() })
	reg.Register("detector/"+id, func() any {
		det := lc.Detector()
		if det == nil {
			return nil
		}
		return det.Stats()
	})
	reg.Register("checkpoint/"+id, func() any {
		if cm := lc.Checkpoint(); cm != nil {
			return cm.Stats()
		}
		return nil
	})
	reg.Register("store/"+id, func() any {
		if st := lc.Store(); st != nil {
			return st.Stats()
		}
		return nil
	})
	if dr, ok := lc.Policy().(core.DivergenceReporter); ok {
		reg.Register("subjob/"+id+"/divergence", func() any { return dr.Divergence() })
	}
}
