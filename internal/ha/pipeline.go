package ha

import (
	"fmt"
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/metrics"
	"streamha/internal/queue"
	"streamha/internal/subjob"
)

// SubjobDef places one subjob of a chain job and selects its HA mode.
type SubjobDef struct {
	// ID names the subjob; empty selects "sj<i>".
	ID string
	// PEs is the subjob's pipeline.
	PEs []subjob.PESpec
	// Mode is the HA scheme.
	Mode Mode
	// Primary is the machine hosting the primary copy.
	Primary string
	// Secondary is the machine hosting the standby side (AS second copy,
	// PS store, hybrid standby). Required unless Mode is ModeNone.
	Secondary string
	// Spare optionally hosts the hybrid's replacement standby after a
	// fail-stop promotion.
	Spare string
	// BatchSize overrides the per-PE batch size.
	BatchSize int
}

// SourceDef places and shapes the job's source.
type SourceDef struct {
	Machine     string
	Rate        float64
	Tick        time.Duration
	BurstOn     time.Duration
	BurstOff    time.Duration
	BurstFactor float64
}

// PipelineConfig deploys a chain job (the paper's 8-PE / 4-subjob
// experimental topology, generalized).
type PipelineConfig struct {
	// Cluster supplies machines, network and clock.
	Cluster *cluster.Cluster
	// JobID names the job; stream and subjob names derive from it.
	JobID string
	// Source feeds the first subjob.
	Source SourceDef
	// SinkMachine hosts the measuring sink.
	SinkMachine string
	// Subjobs is the chain, upstream to downstream.
	Subjobs []SubjobDef
	// Hybrid tunes hybrid-mode subjobs (intervals, costs, ablations).
	Hybrid core.Options
	// PS tunes passive-standby subjobs.
	PS PSOptions
	// AckInterval drives the ackers of NONE/AS copies and the sink
	// (default: the hybrid checkpoint interval, seeding the sweep).
	AckInterval time.Duration
	// TrackIDs makes the sink retain per-ID delivery counts for
	// exactly-once verification in tests.
	TrackIDs bool
}

// Group is one deployed subjob with its HA apparatus.
type Group struct {
	Def  SubjobDef
	Spec subjob.Spec
	Mode Mode

	primary     *subjob.Runtime // initial primary (PS/hybrid may migrate; see Live*)
	asSecondary *subjob.Runtime // second copy under ModeActive
	hybridSec   *subjob.Runtime // pre-deployed standby under ModeHybrid
	ackers      []*checkpoint.Acker

	// PS is the passive-standby controller (ModePassive only).
	PS *PS
	// Hybrid is the hybrid controller (ModeHybrid only).
	Hybrid *core.Controller
}

// LiveOutputs returns the output queues of every live copy of the group.
func (g *Group) LiveOutputs() []*queue.Output {
	switch g.Mode {
	case ModeActive:
		return []*queue.Output{g.primary.Out(), g.asSecondary.Out()}
	case ModePassive:
		if g.PS != nil {
			return []*queue.Output{g.PS.ActiveRuntime().Out()}
		}
		return []*queue.Output{g.primary.Out()}
	case ModeHybrid:
		if g.Hybrid != nil {
			outs := []*queue.Output{g.Hybrid.PrimaryRuntime().Out()}
			if sec := g.Hybrid.SecondaryRuntime(); sec != nil {
				outs = append(outs, sec.Out())
			}
			return outs
		}
		outs := []*queue.Output{g.primary.Out()}
		if g.hybridSec != nil {
			outs = append(outs, g.hybridSec.Out())
		}
		return outs
	default:
		return []*queue.Output{g.primary.Out()}
	}
}

// ConsumerTargets returns every copy of the group as a consumer of its
// input stream, with the flag saying whether data should flow to it now.
func (g *Group) ConsumerTargets(logical string) []core.Target {
	stream := subjob.DataStream(g.Spec.ID, logical)
	switch g.Mode {
	case ModeActive:
		return []core.Target{
			{Node: g.primary.Node(), Stream: stream, Active: true},
			{Node: g.asSecondary.Node(), Stream: stream, Active: true},
		}
	case ModePassive:
		rt := g.primary
		if g.PS != nil {
			rt = g.PS.ActiveRuntime()
		}
		return []core.Target{{Node: rt.Node(), Stream: stream, Active: true}}
	case ModeHybrid:
		pri, sec, active := g.primary, g.hybridSec, false
		if g.Hybrid != nil {
			pri = g.Hybrid.PrimaryRuntime()
			sec = g.Hybrid.SecondaryRuntime()
			active = g.Hybrid.Active()
		}
		out := []core.Target{{Node: pri.Node(), Stream: stream, Active: true}}
		if sec != nil {
			out = append(out, core.Target{Node: sec.Node(), Stream: stream, Active: active})
		}
		return out
	default:
		return []core.Target{{Node: g.primary.Node(), Stream: stream, Active: true}}
	}
}

// PrimaryRuntime returns the group's current primary copy.
func (g *Group) PrimaryRuntime() *subjob.Runtime {
	switch {
	case g.Mode == ModePassive && g.PS != nil:
		return g.PS.ActiveRuntime()
	case g.Mode == ModeHybrid && g.Hybrid != nil:
		return g.Hybrid.PrimaryRuntime()
	default:
		return g.primary
	}
}

// SecondaryRuntime returns the group's standby copy, or nil (AS returns
// its second copy).
func (g *Group) SecondaryRuntime() *subjob.Runtime {
	switch g.Mode {
	case ModeActive:
		return g.asSecondary
	case ModeHybrid:
		if g.Hybrid != nil {
			return g.Hybrid.SecondaryRuntime()
		}
		return g.hybridSec
	default:
		return nil
	}
}

// Pipeline is a deployed chain job.
type Pipeline struct {
	cfg     PipelineConfig
	streams []string
	source  *cluster.Source
	sink    *cluster.Sink
	groups  []*Group
}

// NewPipeline builds and wires the job; call Start to begin processing.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if len(cfg.Subjobs) == 0 {
		return nil, fmt.Errorf("ha: pipeline needs at least one subjob")
	}
	if cfg.AckInterval <= 0 {
		if cfg.Hybrid.CheckpointInterval > 0 {
			cfg.AckInterval = cfg.Hybrid.CheckpointInterval
		} else {
			cfg.AckInterval = 5 * time.Millisecond
		}
	}
	p := &Pipeline{cfg: cfg}
	cl := cfg.Cluster

	// Stream names: s0 from the source, s<i+1> out of subjob i.
	p.streams = make([]string, len(cfg.Subjobs)+1)
	for i := range p.streams {
		p.streams[i] = fmt.Sprintf("%s/s%d", cfg.JobID, i)
	}

	// Source.
	srcM := cl.Machine(cfg.Source.Machine)
	if srcM == nil {
		return nil, fmt.Errorf("ha: unknown source machine %q", cfg.Source.Machine)
	}
	p.source = cluster.NewSource(cluster.SourceConfig{
		Machine:     srcM,
		Clock:       cl.Clock(),
		Stream:      p.streams[0],
		Rate:        cfg.Source.Rate,
		Tick:        cfg.Source.Tick,
		BurstOn:     cfg.Source.BurstOn,
		BurstOff:    cfg.Source.BurstOff,
		BurstFactor: cfg.Source.BurstFactor,
	})

	// Copies (phase A): create every runtime before any wiring so that
	// standby-to-standby early connections can be created uniformly.
	for i, def := range cfg.Subjobs {
		g, err := p.buildGroup(i, def)
		if err != nil {
			return nil, err
		}
		p.groups = append(p.groups, g)
	}

	// Sink.
	sinkM := cl.Machine(cfg.SinkMachine)
	if sinkM == nil {
		return nil, fmt.Errorf("ha: unknown sink machine %q", cfg.SinkMachine)
	}
	last := p.streams[len(p.streams)-1]
	p.sink = cluster.NewSink(cluster.SinkConfig{
		Machine:     sinkM,
		Clock:       cl.Clock(),
		ID:          cfg.JobID + "/sink",
		InStreams:   []string{last},
		Owners:      map[string]string{last: p.groups[len(p.groups)-1].Spec.ID},
		AckInterval: cfg.AckInterval,
		TrackIDs:    cfg.TrackIDs,
	})

	// Wiring (phase B): subscribe every consumer copy of link i to every
	// producer copy of link i, with activity per the consumer's HA state.
	for i := range p.groups {
		for _, out := range p.producerOutputs(i) {
			for _, t := range p.groups[i].ConsumerTargets(p.streams[i]) {
				out.Subscribe(t.Node, t.Stream, t.Active)
			}
		}
	}
	for _, out := range p.producerOutputs(len(p.groups)) {
		out.Subscribe(p.sink.Node(), subjob.DataStream(p.sink.ID(), last), true)
	}
	return p, nil
}

func (p *Pipeline) buildGroup(i int, def SubjobDef) (*Group, error) {
	cl := p.cfg.Cluster
	if def.ID == "" {
		def.ID = fmt.Sprintf("sj%d", i)
	}
	owner := cluster.SourceOwner
	if i > 0 {
		owner = p.cfg.JobID + "/" + p.cfg.Subjobs[i-1].ID
		if p.cfg.Subjobs[i-1].ID == "" {
			owner = fmt.Sprintf("%s/sj%d", p.cfg.JobID, i-1)
		}
	}
	spec := subjob.Spec{
		JobID:     p.cfg.JobID,
		ID:        p.cfg.JobID + "/" + def.ID,
		InStreams: []string{p.streams[i]},
		Owners:    map[string]string{p.streams[i]: owner},
		OutStream: p.streams[i+1],
		PEs:       def.PEs,
		BatchSize: def.BatchSize,
	}
	priM := cl.Machine(def.Primary)
	if priM == nil {
		return nil, fmt.Errorf("ha: subjob %s: unknown primary machine %q", def.ID, def.Primary)
	}
	primary, err := subjob.New(spec, priM, false)
	if err != nil {
		return nil, err
	}
	primary.Start()
	g := &Group{Def: def, Spec: spec, Mode: def.Mode, primary: primary}

	needSecondary := def.Mode == ModeActive ||
		(def.Mode == ModeHybrid && !p.cfg.Hybrid.NoPreDeploy)
	if def.Mode != ModeNone && cl.Machine(def.Secondary) == nil {
		return nil, fmt.Errorf("ha: subjob %s: unknown secondary machine %q", def.ID, def.Secondary)
	}
	if needSecondary {
		secM := cl.Machine(def.Secondary)
		suspended := def.Mode == ModeHybrid
		sec, err := subjob.New(spec, secM, suspended)
		if err != nil {
			return nil, err
		}
		sec.Start()
		if def.Mode == ModeActive {
			g.asSecondary = sec
		} else {
			g.hybridSec = sec
		}
	}
	return g, nil
}

// producerOutputs returns the output queues feeding stream index i
// (i == len(groups) means the sink's input stream).
func (p *Pipeline) producerOutputs(i int) []*queue.Output {
	if i == 0 {
		return []*queue.Output{p.source.Out()}
	}
	return p.groups[i-1].LiveOutputs()
}

// wiringFor builds the dynamic wiring closures for group i's controller.
func (p *Pipeline) wiringFor(i int) core.Wiring {
	return core.Wiring{
		UpstreamOutputs: func() []*queue.Output { return p.producerOutputs(i) },
		DownstreamTargets: func() []core.Target {
			if i == len(p.groups)-1 {
				last := p.streams[len(p.streams)-1]
				return []core.Target{{
					Node:   p.sink.Node(),
					Stream: subjob.DataStream(p.sink.ID(), last),
					Active: true,
				}}
			}
			return p.groups[i+1].ConsumerTargets(p.streams[i+1])
		},
	}
}

// Start launches sink, HA controllers and ackers, then the source — in
// that order, so no data is published before its consumers are wired.
func (p *Pipeline) Start() error {
	cl := p.cfg.Cluster
	p.sink.Start()
	for i, g := range p.groups {
		switch g.Mode {
		case ModeNone:
			g.ackers = append(g.ackers, checkpoint.NewAcker(g.primary, cl.Clock(), p.cfg.AckInterval))
		case ModeActive:
			g.ackers = append(g.ackers,
				checkpoint.NewAcker(g.primary, cl.Clock(), p.cfg.AckInterval),
				checkpoint.NewAcker(g.asSecondary, cl.Clock(), p.cfg.AckInterval))
		case ModePassive:
			g.PS = NewPS(PSConfig{
				Spec:             g.Spec,
				Clock:            cl.Clock(),
				Primary:          g.primary,
				SecondaryMachine: cl.Machine(g.Def.Secondary),
				Wiring:           p.wiringFor(i),
				Options:          p.cfg.PS,
			})
			g.PS.Start()
		case ModeHybrid:
			var spare = cl.Machine(g.Def.Spare) // nil if unset
			g.Hybrid = core.NewController(core.ControllerConfig{
				Spec:             g.Spec,
				Clock:            cl.Clock(),
				Primary:          g.primary,
				Secondary:        g.hybridSec,
				SecondaryMachine: cl.Machine(g.Def.Secondary),
				SpareMachine:     spare,
				Wiring:           p.wiringFor(i),
				Options:          p.cfg.Hybrid,
			})
			if err := g.Hybrid.Start(); err != nil {
				return err
			}
		}
		for _, a := range g.ackers {
			a.Start()
		}
	}
	p.source.Start()
	return nil
}

// Stop halts everything: source first, then controllers, copies and sink.
func (p *Pipeline) Stop() {
	p.source.Stop()
	for _, g := range p.groups {
		for _, a := range g.ackers {
			a.Stop()
		}
		if g.PS != nil {
			g.PS.Stop()
			g.PS.ActiveRuntime().Stop()
		}
		if g.Hybrid != nil {
			g.Hybrid.Stop()
			g.Hybrid.PrimaryRuntime().Stop()
		} else if g.hybridSec != nil {
			g.hybridSec.Stop()
		}
		if g.Mode != ModePassive && g.Mode != ModeHybrid {
			g.primary.Stop()
		}
		if g.asSecondary != nil {
			g.asSecondary.Stop()
		}
	}
	p.sink.Stop()
}

// Source returns the job's source.
func (p *Pipeline) Source() *cluster.Source { return p.source }

// Sink returns the job's sink.
func (p *Pipeline) Sink() *cluster.Sink { return p.sink }

// Groups returns the deployed subjobs in chain order.
func (p *Pipeline) Groups() []*Group { return p.groups }

// Group returns the i-th subjob group.
func (p *Pipeline) Group(i int) *Group { return p.groups[i] }

// Streams returns the logical stream names, source stream first.
func (p *Pipeline) Streams() []string { return append([]string(nil), p.streams...) }

// RegisterMetrics registers every component of the pipeline in reg:
// transport traffic, source and sink state, and — per group — the current
// primary/standby runtimes plus the HA apparatus of the group's mode
// (controller events, detector quality, checkpoint cadence and sizes).
// Sources are closures that resolve the group's *current* copies at
// snapshot time, so the registry keeps tracking across switchover,
// rollback and migration.
func (p *Pipeline) RegisterMetrics(reg *metrics.Registry) {
	reg.Register("transport", func() any { return p.cfg.Cluster.Stats() })
	reg.Register("source", func() any { return p.source.Stats() })
	p.sink.RegisterMetrics(reg)
	for _, g := range p.groups {
		g := g
		id := g.Spec.ID
		reg.Register("subjob/"+id+"/primary", func() any {
			return g.PrimaryRuntime().Stats()
		})
		reg.Register("subjob/"+id+"/standby", func() any {
			sec := g.SecondaryRuntime()
			if sec == nil {
				return nil
			}
			return sec.Stats()
		})
		switch {
		case g.Mode == ModeHybrid && g.Hybrid != nil:
			hc := g.Hybrid
			reg.Register("ha/"+id, func() any { return hc.Stats() })
			reg.Register("detector/"+id, func() any {
				det := hc.Detector()
				if det == nil {
					return nil
				}
				return det.Stats()
			})
			reg.Register("checkpoint/"+id, func() any {
				if cm := hc.Checkpoint(); cm != nil {
					return cm.Stats()
				}
				return nil
			})
			reg.Register("store/"+id, func() any {
				if st := hc.DiskStore(); st != nil {
					return st.Stats()
				}
				return nil
			})
		case g.Mode == ModePassive && g.PS != nil:
			ps := g.PS
			reg.Register("detector/"+id, func() any {
				det := ps.Detector()
				if det == nil {
					return nil
				}
				return det.Stats()
			})
			reg.Register("checkpoint/"+id, func() any {
				if cm := ps.Checkpoint(); cm != nil {
					return cm.Stats()
				}
				return nil
			})
			reg.Register("store/"+id, func() any {
				if st := ps.Store(); st != nil {
					return st.Stats()
				}
				return nil
			})
		}
	}
}
