package ha

import (
	"fmt"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/metrics"
	"streamha/internal/queue"
	"streamha/internal/subjob"
)

// SubjobDef places one subjob of a chain job and selects its HA mode.
type SubjobDef struct {
	// ID names the subjob; empty selects "sj<i>".
	ID string
	// PEs is the subjob's pipeline.
	PEs []subjob.PESpec
	// Mode is the HA scheme.
	Mode Mode
	// Primary is the machine hosting the primary copy.
	Primary string
	// Secondary is the machine hosting the standby side (AS second copy,
	// PS store, hybrid standby). Required unless Mode is ModeNone.
	Secondary string
	// Spare optionally hosts the hybrid's replacement standby after a
	// fail-stop promotion.
	Spare string
	// BatchSize overrides the per-PE batch size.
	BatchSize int
}

// SourceDef places and shapes the job's source.
type SourceDef struct {
	Machine     string
	Rate        float64
	Tick        time.Duration
	BurstOn     time.Duration
	BurstOff    time.Duration
	BurstFactor float64
}

// PipelineConfig deploys a chain job (the paper's 8-PE / 4-subjob
// experimental topology, generalized).
type PipelineConfig struct {
	// Cluster supplies machines, network and clock.
	Cluster *cluster.Cluster
	// JobID names the job; stream and subjob names derive from it.
	JobID string
	// Source feeds the first subjob.
	Source SourceDef
	// SinkMachine hosts the measuring sink.
	SinkMachine string
	// Subjobs is the chain, upstream to downstream.
	Subjobs []SubjobDef
	// Hybrid tunes hybrid-mode subjobs (intervals, costs, ablations).
	Hybrid core.Options
	// PS tunes passive-standby subjobs.
	PS PSOptions
	// AckInterval drives the ackers of NONE/AS copies and the sink
	// (default: the hybrid checkpoint interval, seeding the sweep).
	AckInterval time.Duration
	// TrackIDs makes the sink retain per-ID delivery counts for
	// exactly-once verification in tests.
	TrackIDs bool
}

// Group is one deployed subjob with its HA lifecycle.
type Group struct {
	Def  SubjobDef
	Spec subjob.Spec
	Mode Mode

	// HA is the subjob's lifecycle engine: one state machine regardless of
	// mode, with the mode plugged in as its StandbyPolicy.
	HA *core.Lifecycle
}

// LiveOutputs returns the output queues of every live copy of the group.
func (g *Group) LiveOutputs() []*queue.Output {
	outs := []*queue.Output{g.HA.PrimaryRuntime().Out()}
	if sec := g.HA.SecondaryRuntime(); sec != nil {
		outs = append(outs, sec.Out())
	}
	return outs
}

// ConsumerTargets returns every copy of the group as a consumer of its
// input stream, with the flag saying whether data should flow to it now:
// always to the primary, and to a standby copy only while it is running
// (an AS twin, or a hybrid standby that is currently switched over). A
// suspended standby's subscription stays inactive — that is the early
// connection.
func (g *Group) ConsumerTargets(logical string) []core.Target {
	stream := subjob.DataStream(g.Spec.ID, logical)
	out := []core.Target{{Node: g.HA.PrimaryRuntime().Node(), Stream: stream, Active: true}}
	if sec := g.HA.SecondaryRuntime(); sec != nil {
		out = append(out, core.Target{Node: sec.Node(), Stream: stream, Active: !sec.Suspended()})
	}
	return out
}

// PrimaryRuntime returns the group's current primary copy.
func (g *Group) PrimaryRuntime() *subjob.Runtime { return g.HA.PrimaryRuntime() }

// SecondaryRuntime returns the group's standby copy, or nil (AS returns
// its second copy; PS keeps state in a store, not a copy).
func (g *Group) SecondaryRuntime() *subjob.Runtime { return g.HA.SecondaryRuntime() }

// Pipeline is a deployed chain job.
type Pipeline struct {
	cfg     PipelineConfig
	streams []string
	source  *cluster.Source
	sink    *cluster.Sink
	groups  []*Group
}

// NewPipeline builds and wires the job; call Start to begin processing.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if len(cfg.Subjobs) == 0 {
		return nil, fmt.Errorf("ha: pipeline needs at least one subjob")
	}
	if cfg.AckInterval <= 0 {
		if cfg.Hybrid.CheckpointInterval > 0 {
			cfg.AckInterval = cfg.Hybrid.CheckpointInterval
		} else {
			cfg.AckInterval = 5 * time.Millisecond
		}
	}
	p := &Pipeline{cfg: cfg}
	cl := cfg.Cluster

	// Stream names: s0 from the source, s<i+1> out of subjob i.
	p.streams = make([]string, len(cfg.Subjobs)+1)
	for i := range p.streams {
		p.streams[i] = fmt.Sprintf("%s/s%d", cfg.JobID, i)
	}

	// Source.
	srcM := cl.Machine(cfg.Source.Machine)
	if srcM == nil {
		return nil, fmt.Errorf("ha: unknown source machine %q", cfg.Source.Machine)
	}
	p.source = cluster.NewSource(cluster.SourceConfig{
		Machine:     srcM,
		Clock:       cl.Clock(),
		Stream:      p.streams[0],
		Rate:        cfg.Source.Rate,
		Tick:        cfg.Source.Tick,
		BurstOn:     cfg.Source.BurstOn,
		BurstOff:    cfg.Source.BurstOff,
		BurstFactor: cfg.Source.BurstFactor,
	})

	// Copies (phase A): create every runtime before any wiring so that
	// standby-to-standby early connections can be created uniformly. The
	// lifecycles are constructed here too — their wiring closures resolve
	// lazily — but armed only in Start.
	for i, def := range cfg.Subjobs {
		g, err := p.buildGroup(i, def)
		if err != nil {
			return nil, err
		}
		p.groups = append(p.groups, g)
	}

	// Sink.
	sinkM := cl.Machine(cfg.SinkMachine)
	if sinkM == nil {
		return nil, fmt.Errorf("ha: unknown sink machine %q", cfg.SinkMachine)
	}
	last := p.streams[len(p.streams)-1]
	p.sink = cluster.NewSink(cluster.SinkConfig{
		Machine:     sinkM,
		Clock:       cl.Clock(),
		ID:          cfg.JobID + "/sink",
		InStreams:   []string{last},
		Owners:      map[string]string{last: p.groups[len(p.groups)-1].Spec.ID},
		AckInterval: cfg.AckInterval,
		TrackIDs:    cfg.TrackIDs,
	})

	// Wiring (phase B): subscribe every consumer copy of link i to every
	// producer copy of link i, with activity per the consumer's HA state.
	for i := range p.groups {
		for _, out := range p.producerOutputs(i) {
			for _, t := range p.groups[i].ConsumerTargets(p.streams[i]) {
				out.Subscribe(t.Node, t.Stream, t.Active)
			}
		}
	}
	for _, out := range p.producerOutputs(len(p.groups)) {
		out.Subscribe(p.sink.Node(), subjob.DataStream(p.sink.ID(), last), true)
	}
	return p, nil
}

func (p *Pipeline) buildGroup(i int, def SubjobDef) (*Group, error) {
	cl := p.cfg.Cluster
	if def.ID == "" {
		def.ID = fmt.Sprintf("sj%d", i)
	}
	owner := cluster.SourceOwner
	if i > 0 {
		owner = p.cfg.JobID + "/" + p.cfg.Subjobs[i-1].ID
		if p.cfg.Subjobs[i-1].ID == "" {
			owner = fmt.Sprintf("%s/sj%d", p.cfg.JobID, i-1)
		}
	}
	spec := subjob.Spec{
		JobID:     p.cfg.JobID,
		ID:        p.cfg.JobID + "/" + def.ID,
		InStreams: []string{p.streams[i]},
		Owners:    map[string]string{p.streams[i]: owner},
		OutStream: p.streams[i+1],
		PEs:       def.PEs,
		BatchSize: def.BatchSize,
	}
	priM := cl.Machine(def.Primary)
	if priM == nil {
		return nil, fmt.Errorf("ha: subjob %s: unknown primary machine %q", def.ID, def.Primary)
	}
	primary, err := subjob.New(spec, priM, false)
	if err != nil {
		return nil, err
	}
	primary.Start()

	pol := policyFor(def.Mode, p.cfg.Hybrid, p.cfg.PS, p.cfg.AckInterval)
	if pol.NeedsStandbyMachine() && cl.Machine(def.Secondary) == nil {
		return nil, fmt.Errorf("ha: subjob %s: unknown secondary machine %q", def.ID, def.Secondary)
	}
	var secondary *subjob.Runtime
	if create, suspended := pol.PreDeploy(); create {
		secondary, err = subjob.New(spec, cl.Machine(def.Secondary), suspended)
		if err != nil {
			return nil, err
		}
		secondary.Start()
	}

	g := &Group{Def: def, Spec: spec, Mode: def.Mode}
	g.HA = core.NewLifecycle(core.LifecycleConfig{
		Spec:             spec,
		Clock:            cl.Clock(),
		Primary:          primary,
		Secondary:        secondary,
		SecondaryMachine: cl.Machine(def.Secondary),
		SpareMachine:     cl.Machine(def.Spare), // nil if unset
		Wiring:           p.wiringFor(i),
		Policy:           pol,
	})
	return g, nil
}

// producerOutputs returns the output queues feeding stream index i
// (i == len(groups) means the sink's input stream).
func (p *Pipeline) producerOutputs(i int) []*queue.Output {
	if i == 0 {
		return []*queue.Output{p.source.Out()}
	}
	return p.groups[i-1].LiveOutputs()
}

// wiringFor builds the dynamic wiring closures for group i's lifecycle.
func (p *Pipeline) wiringFor(i int) core.Wiring {
	return core.Wiring{
		UpstreamOutputs: func() []*queue.Output { return p.producerOutputs(i) },
		DownstreamTargets: func() []core.Target {
			if i == len(p.groups)-1 {
				last := p.streams[len(p.streams)-1]
				return []core.Target{{
					Node:   p.sink.Node(),
					Stream: subjob.DataStream(p.sink.ID(), last),
					Active: true,
				}}
			}
			return p.groups[i+1].ConsumerTargets(p.streams[i+1])
		},
	}
}

// Start launches sink and HA lifecycles, then the source — in that order,
// so no data is published before its consumers are wired.
func (p *Pipeline) Start() error {
	p.sink.Start()
	for _, g := range p.groups {
		if err := g.HA.Start(); err != nil {
			return err
		}
	}
	p.source.Start()
	return nil
}

// Stop halts everything: source first, then lifecycles (which own the
// copies and their HA apparatus) and the sink.
func (p *Pipeline) Stop() {
	p.source.Stop()
	for _, g := range p.groups {
		g.HA.Stop()
	}
	p.sink.Stop()
}

// Source returns the job's source.
func (p *Pipeline) Source() *cluster.Source { return p.source }

// Sink returns the job's sink.
func (p *Pipeline) Sink() *cluster.Sink { return p.sink }

// Groups returns the deployed subjobs in chain order.
func (p *Pipeline) Groups() []*Group { return p.groups }

// Group returns the i-th subjob group.
func (p *Pipeline) Group(i int) *Group { return p.groups[i] }

// Streams returns the logical stream names, source stream first.
func (p *Pipeline) Streams() []string { return append([]string(nil), p.streams...) }

// RegisterMetrics registers every component of the pipeline in reg:
// transport traffic, source and sink state, and — per group — the current
// primary/standby runtimes plus the lifecycle (state, transition log),
// detector, checkpoint manager and store. Sources are closures that
// resolve the group's *current* components at snapshot time, so the
// registry keeps tracking across switchover, rollback and migration.
func (p *Pipeline) RegisterMetrics(reg *metrics.Registry) {
	reg.Register("transport", func() any { return p.cfg.Cluster.Stats() })
	reg.Register("source", func() any { return p.source.Stats() })
	p.sink.RegisterMetrics(reg)
	for _, g := range p.groups {
		registerGroupMetrics(reg, g)
	}
}

// registerGroupMetrics registers one group's components; shared by the
// chain and DAG builders. Every mode gets the same set — sources resolve
// nil components (a NONE subjob's detector, an AS subjob's checkpoint
// manager) to null at snapshot time.
func registerGroupMetrics(reg *metrics.Registry, g *Group) {
	id := g.Spec.ID
	lc := g.HA
	reg.Register("subjob/"+id+"/primary", func() any {
		return lc.PrimaryRuntime().Stats()
	})
	reg.Register("subjob/"+id+"/standby", func() any {
		sec := lc.SecondaryRuntime()
		if sec == nil {
			return nil
		}
		return sec.Stats()
	})
	reg.Register("ha/"+id, func() any { return lc.Stats() })
	reg.Register("detector/"+id, func() any {
		det := lc.Detector()
		if det == nil {
			return nil
		}
		return det.Stats()
	})
	reg.Register("checkpoint/"+id, func() any {
		if cm := lc.Checkpoint(); cm != nil {
			return cm.Stats()
		}
		return nil
	})
	reg.Register("store/"+id, func() any {
		if st := lc.Store(); st != nil {
			return st.Stats()
		}
		return nil
	})
}
