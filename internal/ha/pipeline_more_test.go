package ha_test

import (
	"testing"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/ha"
	"streamha/internal/pe"
	"streamha/internal/subjob"
	"streamha/internal/transport"
)

func cheapPEs(n int) []subjob.PESpec {
	pes := make([]subjob.PESpec, n)
	for i := range pes {
		pes[i] = subjob.PESpec{
			Name:     "pe",
			NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 5} },
			Cost:     10 * time.Microsecond,
		}
	}
	return pes
}

func TestPipelineRejectsUnknownMachines(t *testing.T) {
	cl := cluster.New(cluster.Config{})
	defer cl.Close()
	cl.MustAddMachine("src")
	cl.MustAddMachine("sink")
	cl.MustAddMachine("p0")

	base := ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "j",
		Source:      ha.SourceDef{Machine: "src", Rate: 100},
		SinkMachine: "sink",
	}

	cfg := base
	cfg.Subjobs = []ha.SubjobDef{{PEs: cheapPEs(1), Primary: "ghost"}}
	if _, err := ha.NewPipeline(cfg); err == nil {
		t.Fatal("unknown primary accepted")
	}

	cfg = base
	cfg.Subjobs = []ha.SubjobDef{{PEs: cheapPEs(1), Mode: ha.ModeHybrid, Primary: "p0", Secondary: "ghost"}}
	if _, err := ha.NewPipeline(cfg); err == nil {
		t.Fatal("unknown secondary accepted")
	}

	cfg = base
	cfg.Source.Machine = "ghost"
	cfg.Subjobs = []ha.SubjobDef{{PEs: cheapPEs(1), Primary: "p0"}}
	if _, err := ha.NewPipeline(cfg); err == nil {
		t.Fatal("unknown source machine accepted")
	}

	cfg = base
	cfg.SinkMachine = "ghost"
	cfg.Subjobs = []ha.SubjobDef{{PEs: cheapPEs(1), Primary: "p0"}}
	if _, err := ha.NewPipeline(cfg); err == nil {
		t.Fatal("unknown sink machine accepted")
	}

	cfg = base
	cfg.Subjobs = nil
	if _, err := ha.NewPipeline(cfg); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestActiveStandbyTrafficMultiplier(t *testing.T) {
	run := func(mode ha.Mode) int64 {
		cl := cluster.New(cluster.Config{})
		defer cl.Close()
		for _, id := range []string{"src", "sink", "p0", "p1", "s0", "s1"} {
			cl.MustAddMachine(id)
		}
		p, err := ha.NewPipeline(ha.PipelineConfig{
			Cluster:     cl,
			JobID:       "j",
			Source:      ha.SourceDef{Machine: "src", Rate: 2000},
			SinkMachine: "sink",
			Subjobs: []ha.SubjobDef{
				{PEs: cheapPEs(1), Mode: mode, Primary: "p0", Secondary: "s0"},
				{PEs: cheapPEs(1), Mode: mode, Primary: "p1", Secondary: "s1"},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Start(); err != nil {
			t.Fatal(err)
		}
		defer p.Stop()
		time.Sleep(200 * time.Millisecond)
		before := cl.Stats()
		time.Sleep(600 * time.Millisecond)
		return cl.Stats().Sub(before).DataElements()
	}

	none := run(ha.ModeNone)
	as := run(ha.ModeActive)
	// Chain of 2 subjobs: src->sj0 (2x), sj0->sj1 (4x), sj1->sink (2x):
	// expected AS multiplier (2+4+2)/3 ≈ 2.7.
	ratio := float64(as) / float64(none)
	if ratio < 2.0 || ratio > 3.6 {
		t.Fatalf("AS data traffic ratio %.2f, want ~2.7", ratio)
	}
}

func TestHybridMultiplexedSecondariesShareOneMachine(t *testing.T) {
	cl := cluster.New(cluster.Config{})
	defer cl.Close()
	for _, id := range []string{"src", "sink", "p0", "p1", "p2", "shared"} {
		cl.MustAddMachine(id)
	}
	p, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "j",
		Source:      ha.SourceDef{Machine: "src", Rate: 1000},
		SinkMachine: "sink",
		Subjobs: []ha.SubjobDef{
			{PEs: cheapPEs(1), Mode: ha.ModeHybrid, Primary: "p0", Secondary: "shared"},
			{PEs: cheapPEs(1), Mode: ha.ModeHybrid, Primary: "p1", Secondary: "shared"},
			{PEs: cheapPEs(1), Mode: ha.ModeHybrid, Primary: "p2", Secondary: "shared"},
		},
		TrackIDs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	time.Sleep(400 * time.Millisecond)

	for i, g := range p.Groups() {
		sec := g.SecondaryRuntime()
		if sec == nil || string(sec.Node()) != "shared" {
			t.Fatalf("group %d standby not on the shared machine", i)
		}
		if !sec.Suspended() {
			t.Fatalf("group %d standby not suspended", i)
		}
	}

	// Stall one primary: only its standby activates; the others stay
	// suspended on the shared machine.
	cl.Machine("p1").CPU().SetBackgroundLoad(1)
	time.Sleep(300 * time.Millisecond)
	cl.Machine("p1").CPU().SetBackgroundLoad(0)
	time.Sleep(400 * time.Millisecond)
	if len(p.Group(1).HA.Switches()) == 0 {
		t.Fatal("stalled group never switched")
	}

	p.Source().Stop()
	time.Sleep(300 * time.Millisecond)
	for id, n := range p.Sink().IDCounts() {
		if n != 1 {
			t.Fatalf("element %d delivered %d times", id, n)
		}
	}
}

func TestGroupAccessors(t *testing.T) {
	cl := cluster.New(cluster.Config{})
	defer cl.Close()
	for _, id := range []string{"src", "sink", "p0", "s0"} {
		cl.MustAddMachine(id)
	}
	p, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "j",
		Source:      ha.SourceDef{Machine: "src", Rate: 100},
		SinkMachine: "sink",
		Subjobs:     []ha.SubjobDef{{PEs: cheapPEs(1), Mode: ha.ModeActive, Primary: "p0", Secondary: "s0"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	g := p.Group(0)
	if g.PrimaryRuntime() == nil || g.SecondaryRuntime() == nil {
		t.Fatal("AS group accessors nil")
	}
	if len(g.LiveOutputs()) != 2 {
		t.Fatalf("AS live outputs %d", len(g.LiveOutputs()))
	}
	targets := g.ConsumerTargets(p.Streams()[0])
	if len(targets) != 2 || !targets[0].Active || !targets[1].Active {
		t.Fatalf("AS consumer targets %+v", targets)
	}
	if len(p.Streams()) != 2 {
		t.Fatalf("streams %v", p.Streams())
	}
	if p.Groups()[0] != g {
		t.Fatal("Groups/Group disagree")
	}
}

func TestHybridSecondaryEarlyConnectionsExist(t *testing.T) {
	cl := cluster.New(cluster.Config{})
	defer cl.Close()
	for _, id := range []string{"src", "sink", "p0", "s0"} {
		cl.MustAddMachine(id)
	}
	p, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "j",
		Source:      ha.SourceDef{Machine: "src", Rate: 500},
		SinkMachine: "sink",
		Subjobs:     []ha.SubjobDef{{PEs: cheapPEs(1), Mode: ha.ModeHybrid, Primary: "p0", Secondary: "s0"}},
		Hybrid:      core.Options{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	time.Sleep(200 * time.Millisecond)

	// The source's output queue has an inactive subscription for the
	// standby ("early connection"): data flows only to the primary.
	if _, ok := p.Source().Out().AckedBy(transport.NodeID("s0")); !ok {
		t.Fatal("standby early connection missing on the source output queue")
	}
	sec := p.Group(0).SecondaryRuntime()
	if sec.PEs()[0].Processed() != 0 {
		t.Fatal("suspended standby processed data through an inactive connection")
	}
}
