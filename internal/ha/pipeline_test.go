package ha_test

import (
	"testing"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/ha"
	"streamha/internal/pe"
	"streamha/internal/subjob"
)

// buildTestbed deploys a 2-subjob chain (2 PEs each) across 6 machines
// with the given HA mode on both subjobs and returns the pipeline.
func buildTestbed(t *testing.T, mode ha.Mode, hybridOpts core.Options) (*cluster.Cluster, *ha.Pipeline) {
	t.Helper()
	cl := cluster.New(cluster.Config{Latency: 100 * time.Microsecond})
	for _, id := range []string{"m-src", "m-sink", "p1", "p2", "s1", "s2"} {
		cl.MustAddMachine(id)
	}
	newPEs := func() []subjob.PESpec {
		return []subjob.PESpec{
			{Name: "pe-a", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 10} }, Cost: 10 * time.Microsecond},
			{Name: "pe-b", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 10} }, Cost: 10 * time.Microsecond},
		}
	}
	p, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "job",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 2000, Tick: 2 * time.Millisecond},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{
			{PEs: newPEs(), Mode: mode, Primary: "p1", Secondary: "s1"},
			{PEs: newPEs(), Mode: mode, Primary: "p2", Secondary: "s2"},
		},
		Hybrid:      hybridOpts,
		PS:          ha.PSOptions{},
		AckInterval: 5 * time.Millisecond,
		TrackIDs:    true,
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		p.Stop()
		cl.Close()
	})
	return cl, p
}

// verifyExactlyOnce checks the sink saw a dense prefix of source IDs
// exactly once each (deterministic selectivity-1 chain).
func verifyExactlyOnce(t *testing.T, p *ha.Pipeline, minElements int) {
	t.Helper()
	counts := p.Sink().IDCounts()
	if len(counts) < minElements {
		t.Fatalf("sink received %d distinct elements, want at least %d", len(counts), minElements)
	}
	for id, n := range counts {
		if n != 1 {
			t.Fatalf("element %d delivered %d times, want exactly once", id, n)
		}
	}
	// The received IDs must form a dense prefix 1..max with only a small
	// in-flight tail missing.
	var max uint64
	for id := range counts {
		if id > max {
			max = id
		}
	}
	missing := 0
	for id := uint64(1); id <= max; id++ {
		if counts[id] == 0 {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d element IDs missing below max %d: data loss", missing, max)
	}
	dups, gaps := p.Sink().In().Drops()
	_ = dups // duplicates are expected under retransmission
	if gaps != 0 {
		t.Fatalf("sink input recorded %d sequence gaps: protocol bug", gaps)
	}
}

func waitSettled(p *ha.Pipeline, d time.Duration) {
	time.Sleep(d)
	p.Source().Stop()
	// Let the pipeline drain.
	time.Sleep(300 * time.Millisecond)
}

func TestPipelineNoneDeliversExactlyOnce(t *testing.T) {
	_, p := buildTestbed(t, ha.ModeNone, core.Options{})
	waitSettled(p, 700*time.Millisecond)
	verifyExactlyOnce(t, p, 500)
}

func TestPipelineActiveStandbyDeduplicates(t *testing.T) {
	_, p := buildTestbed(t, ha.ModeActive, core.Options{})
	waitSettled(p, 700*time.Millisecond)
	verifyExactlyOnce(t, p, 500)
}

func TestPipelinePassiveStandbySteadyState(t *testing.T) {
	_, p := buildTestbed(t, ha.ModePassive, core.Options{})
	waitSettled(p, 700*time.Millisecond)
	verifyExactlyOnce(t, p, 500)
}

func TestPipelineHybridSteadyState(t *testing.T) {
	_, p := buildTestbed(t, ha.ModeHybrid, core.Options{})
	waitSettled(p, 700*time.Millisecond)
	verifyExactlyOnce(t, p, 500)
	g := p.Group(0)
	if g.HA == nil {
		t.Fatal("hybrid controller missing")
	}
	// Scheduling jitter on a loaded host can trip the aggressive 1-miss
	// trigger even without injected failures — a false alarm the hybrid
	// method is explicitly designed to tolerate (Section IV-B). What must
	// hold is that every false switchover rolled back (or is the last,
	// still-active one) and that delivery stayed exactly-once.
	sw, rb := len(g.HA.Switches()), len(g.HA.Rollbacks())
	if sw > rb+1 {
		t.Fatalf("switchovers (%d) did not roll back (%d)", sw, rb)
	}
	if sw > 3 {
		t.Fatalf("excessive false-alarm switchovers in steady state: %d", sw)
	}
}

func TestPipelineHybridSwitchoverAndRollback(t *testing.T) {
	cl, p := buildTestbed(t, ha.ModeHybrid, core.Options{})
	// Let the pipeline warm up and checkpoint.
	time.Sleep(300 * time.Millisecond)

	// Stall the first subjob's primary hard for 400 ms.
	cl.Machine("p1").CPU().SetBackgroundLoad(1)
	time.Sleep(400 * time.Millisecond)
	cl.Machine("p1").CPU().SetBackgroundLoad(0)

	// Give the rollback time to happen, then drain.
	time.Sleep(500 * time.Millisecond)
	p.Source().Stop()
	time.Sleep(400 * time.Millisecond)

	g := p.Group(0)
	if n := len(g.HA.Switches()); n == 0 {
		t.Fatal("expected at least one switchover")
	}
	if n := len(g.HA.Rollbacks()); n == 0 {
		t.Fatal("expected at least one rollback")
	}
	verifyExactlyOnce(t, p, 500)
}

func TestPipelinePassiveStandbyMigratesOnStall(t *testing.T) {
	cl, p := buildTestbed(t, ha.ModePassive, core.Options{})
	time.Sleep(300 * time.Millisecond)

	cl.Machine("p1").CPU().SetBackgroundLoad(1)
	time.Sleep(400 * time.Millisecond)
	cl.Machine("p1").CPU().SetBackgroundLoad(0)

	time.Sleep(500 * time.Millisecond)
	p.Source().Stop()
	time.Sleep(400 * time.Millisecond)

	g := p.Group(0)
	if n := len(g.HA.Migrations()); n == 0 {
		t.Fatal("expected at least one migration")
	}
	if got := g.HA.PrimaryRuntime().Node(); string(got) != "s1" {
		t.Fatalf("active copy on %s, want s1 after migration", got)
	}
	verifyExactlyOnce(t, p, 500)
}

func TestPipelineHybridSurvivesFailStopPromotion(t *testing.T) {
	cl := cluster.New(cluster.Config{Latency: 100 * time.Microsecond})
	for _, id := range []string{"m-src", "m-sink", "p1", "s1", "spare"} {
		cl.MustAddMachine(id)
	}
	newPEs := func() []subjob.PESpec {
		return []subjob.PESpec{
			{Name: "pe", NewLogic: func() pe.Logic { return &pe.CounterLogic{} }, Cost: 10 * time.Microsecond},
		}
	}
	p, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "job",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 1000, Tick: 2 * time.Millisecond},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{
			{PEs: newPEs(), Mode: ha.ModeHybrid, Primary: "p1", Secondary: "s1", Spare: "spare"},
		},
		Hybrid:   core.Options{FailStopAfter: 250 * time.Millisecond},
		TrackIDs: true,
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() {
		p.Stop()
		cl.Close()
	}()

	time.Sleep(300 * time.Millisecond)
	cl.Machine("p1").Crash()
	time.Sleep(800 * time.Millisecond)

	p.Source().Stop()
	time.Sleep(400 * time.Millisecond)

	g := p.Group(0)
	if len(g.HA.Promotions()) == 0 {
		t.Fatal("expected a fail-stop promotion")
	}
	if got := g.HA.PrimaryRuntime().Node(); string(got) != "s1" {
		t.Fatalf("primary on %s, want s1 after promotion", got)
	}
	verifyExactlyOnce(t, p, 200)
}

func TestPipelineRejectsUnknownSpare(t *testing.T) {
	cl := cluster.New(cluster.Config{})
	defer cl.Close()
	for _, id := range []string{"m-src", "m-sink", "p1", "s1"} {
		cl.MustAddMachine(id)
	}
	_, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "job",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 100},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{{
			PEs: []subjob.PESpec{
				{Name: "pe-a", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 10} }, Cost: 10 * time.Microsecond},
			},
			Mode: ha.ModeHybrid, Primary: "p1", Secondary: "s1", Spare: "ghost",
		}},
	})
	if err == nil {
		t.Fatal("unknown spare machine accepted; it would surface only as a nil at promotion time")
	}
}
