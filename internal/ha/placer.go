package ha

import (
	"errors"

	"streamha/internal/cluster"
	"streamha/internal/machine"
	"streamha/internal/sched"
)

// schedPlacer adapts the cluster scheduler to core.Placer, the lifecycle's
// re-arm interface. Anti-affinity is enforced here: a standby request
// always avoids the primary's machine and its entire fault domain, so a
// correlated failure of one domain never takes both copies. All errors
// collapse to nil — the lifecycle treats "no placement" uniformly, and
// the scheduler's denial counter keeps the reason observable.
type schedPlacer struct {
	cl *cluster.Cluster
	s  *sched.Scheduler
}

func newSchedPlacer(cl *cluster.Cluster, s *sched.Scheduler) *schedPlacer {
	return &schedPlacer{cl: cl, s: s}
}

// place resolves one request and maps the chosen name back to a machine.
func (p *schedPlacer) place(req sched.Request) *machine.Machine {
	id, err := p.s.Place(req)
	if err != nil {
		return nil
	}
	return p.cl.Machine(id)
}

// avoidReq builds a request that avoids m and m's whole fault domain.
func (p *schedPlacer) avoidReq(subjob string, role sched.Role, m *machine.Machine) sched.Request {
	req := sched.Request{Subjob: subjob, Role: role}
	if m != nil {
		id := string(m.ID())
		req.AvoidMachines = []string{id}
		if d := p.cl.Domain(id); d != "" {
			req.AvoidDomains = []string{d}
		}
	}
	return req
}

// PlaceStandby implements core.Placer.
func (p *schedPlacer) PlaceStandby(subjob string, primaryOn *machine.Machine) *machine.Machine {
	return p.place(p.avoidReq(subjob, sched.RoleStandby, primaryOn))
}

// PlacePrimary implements core.Placer.
func (p *schedPlacer) PlacePrimary(subjob string, avoid *machine.Machine) *machine.Machine {
	return p.place(p.avoidReq(subjob, sched.RolePrimary, avoid))
}

// NotePrimary implements core.Placer: after a promotion the primary runs
// on the former standby's machine; the log follows reality. A machine
// outside the schedulable pool (statically placed) is simply not tracked.
func (p *schedPlacer) NotePrimary(subjob string, m *machine.Machine) {
	if m == nil {
		return
	}
	if err := p.s.Assign(subjob, sched.RolePrimary, string(m.ID())); err != nil &&
		!errors.Is(err, sched.ErrUnknownMember) {
		return
	}
}

// Release implements core.Placer.
func (p *schedPlacer) Release(subjob string) {
	_ = p.s.ReleaseJob(subjob)
}
