package ha

import (
	"sync"
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/clock"
	"streamha/internal/core"
	"streamha/internal/detect"
	"streamha/internal/machine"
	"streamha/internal/subjob"
)

// PSOptions tunes conventional passive standby.
type PSOptions struct {
	// HeartbeatInterval is the detector's ping period (default 20 ms).
	HeartbeatInterval time.Duration
	// MissThreshold is the consecutive misses before migration; the
	// conventional value is 3.
	MissThreshold int
	// CheckpointInterval drives the sweeping checkpoint manager
	// (default 10 ms).
	CheckpointInterval time.Duration
	// CheckpointCosts models checkpoint CPU cost.
	CheckpointCosts checkpoint.Costs
	// CheckpointRebaseEvery enables incremental checkpointing when ≥ 2 (see
	// checkpoint.Config.RebaseEvery); 0 ships a full snapshot every sweep.
	CheckpointRebaseEvery int
	// DeployCost is the CPU work of deploying the recovery copy on demand
	// (default 20 ms, standing in for the paper's ~200 ms redeployment).
	DeployCost time.Duration
	// ConnectCost is the CPU work per connection established during
	// recovery (default 2 ms).
	ConnectCost time.Duration
	// StoreBackend selects the checkpoint store; conventional passive
	// standby persists to (simulated) disk.
	StoreBackend checkpoint.StoreBackend
}

func (o PSOptions) withDefaults() PSOptions {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 20 * time.Millisecond
	}
	if o.MissThreshold <= 0 {
		o.MissThreshold = 3
	}
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 10 * time.Millisecond
	}
	if o.DeployCost <= 0 {
		o.DeployCost = 20 * time.Millisecond
	}
	if o.ConnectCost <= 0 {
		o.ConnectCost = 2 * time.Millisecond
	}
	return o
}

// MigrationEvent records one passive-standby recovery: detection to the
// recovered copy running and connected on the (former) secondary machine.
type MigrationEvent struct {
	DetectedAt time.Time
	ReadyAt    time.Time
}

// PSConfig assembles a passive-standby controller for one subjob.
type PSConfig struct {
	Spec subjob.Spec
	// Clock is the time source.
	Clock clock.Clock
	// Primary is the running primary copy.
	Primary *subjob.Runtime
	// SecondaryMachine receives checkpoints and hosts the recovery copy.
	SecondaryMachine *machine.Machine
	// Wiring connects the subjob to its neighbors (shared with the hybrid
	// controller).
	Wiring core.Wiring
	// Options tunes the method.
	Options PSOptions
}

// PS implements conventional passive standby. Unlike the hybrid method it
// deploys the recovery copy on demand after three heartbeat misses, pays
// connection setup on the critical path, and never rolls back: after a
// migration the former secondary is the new primary and the former primary
// machine becomes the new secondary — so under transient failures the
// subjob keeps experiencing spikes on whichever machine it lands on, as
// the paper observes in Figure 4.
type PS struct {
	cfg  PSConfig
	opts PSOptions
	clk  clock.Clock

	mu         sync.Mutex
	active     *subjob.Runtime
	standbyM   *machine.Machine
	store      *checkpoint.Store
	cm         *checkpoint.Sweeping
	det        *detect.Heartbeat
	migrations []MigrationEvent
	started    bool

	events chan time.Time
	stop   chan struct{}
	done   chan struct{}
}

// NewPS creates a passive-standby controller; call Start once the primary
// copy is running.
func NewPS(cfg PSConfig) *PS {
	return &PS{
		cfg:      cfg,
		opts:     cfg.Options.withDefaults(),
		clk:      cfg.Clock,
		active:   cfg.Primary,
		standbyM: cfg.SecondaryMachine,
		events:   make(chan time.Time, 16),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the store, checkpoint manager, detector and control loop.
func (p *PS) Start() {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.mu.Unlock()

	p.armLocked()
	go p.run()
}

// armLocked (re)creates the store, checkpoint manager and detector for the
// current primary/standby pair.
func (p *PS) armLocked() {
	p.mu.Lock()
	active, standbyM := p.active, p.standbyM
	p.mu.Unlock()

	store := checkpoint.NewStore(standbyM, p.cfg.Spec.ID, p.opts.StoreBackend, 0)
	cm := checkpoint.NewSweeping(checkpoint.Config{
		Runtime:     active,
		Clock:       p.clk,
		Interval:    p.opts.CheckpointInterval,
		StoreNode:   standbyM.ID(),
		Costs:       p.opts.CheckpointCosts,
		RebaseEvery: p.opts.CheckpointRebaseEvery,
	})
	det := detect.NewHeartbeat(detect.HeartbeatConfig{
		Monitor:       standbyM,
		Clock:         p.clk,
		Target:        active.Machine().ID(),
		Session:       p.cfg.Spec.ID + "/" + string(standbyM.ID()),
		Interval:      p.opts.HeartbeatInterval,
		MissThreshold: p.opts.MissThreshold,
		OnFailure: func(at time.Time) {
			select {
			case p.events <- at:
			case <-p.stop:
			}
		},
	})
	p.mu.Lock()
	p.store = store
	p.cm = cm
	p.det = det
	p.mu.Unlock()
	cm.Start()
	det.Start()
}

// Stop halts the controller and its components.
func (p *PS) Stop() {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
	p.mu.Lock()
	det, cm, store := p.det, p.cm, p.store
	p.mu.Unlock()
	if det != nil {
		det.Stop()
	}
	if cm != nil {
		cm.Stop()
	}
	if store != nil {
		store.Close()
	}
}

// ActiveRuntime returns the copy currently serving as primary.
func (p *PS) ActiveRuntime() *subjob.Runtime {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Migrations returns the recorded migration events.
func (p *PS) Migrations() []MigrationEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]MigrationEvent(nil), p.migrations...)
}

// Checkpoint returns the current checkpoint manager, or nil before Start.
func (p *PS) Checkpoint() *checkpoint.Sweeping {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cm
}

// Store returns the current checkpoint store, or nil before Start.
func (p *PS) Store() *checkpoint.Store {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store
}

// Detector returns the current heartbeat detector, or nil before Start.
func (p *PS) Detector() *detect.Heartbeat {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.det
}

func (p *PS) run() {
	defer close(p.done)
	for {
		select {
		case <-p.stop:
			return
		case at := <-p.events:
			p.migrate(at)
		}
	}
}

// migrate performs the passive-standby recovery: deploy a copy from the
// last checkpoint on the secondary machine, reconnect it upstream and
// downstream (retransmitting unacknowledged data), then swap roles so the
// former primary machine becomes the new secondary.
func (p *PS) migrate(detectedAt time.Time) {
	p.mu.Lock()
	old := p.active
	target := p.standbyM
	store := p.store
	oldCM := p.cm
	oldDet := p.det
	p.mu.Unlock()

	if target.Crashed() {
		// No live machine to recover on; selection of an alternative
		// secondary is outside the paper's scope.
		return
	}

	// Job redeployment: the dominant non-detection cost of PS recovery.
	target.CPU().Execute(p.opts.DeployCost)
	rt, err := subjob.New(p.cfg.Spec, target, false)
	if err != nil {
		return
	}
	if snap, ok := store.Latest(); ok {
		if err := rt.Restore(snap); err != nil {
			return
		}
	}
	rt.Start()

	// Connection establishment, on the critical path for PS.
	ups := p.cfg.Wiring.UpstreamOutputs()
	downs := p.cfg.Wiring.DownstreamTargets()
	target.CPU().Execute(p.opts.ConnectCost * time.Duration(len(ups)+len(downs)))
	for _, up := range ups {
		// Rebinding the subscription retransmits everything unacknowledged,
		// which the recovered copy reprocesses.
		up.ResetSubscriber(old.Node(), rt.Node(), subjob.DataStream(p.cfg.Spec.ID, up.StreamID))
	}
	for _, t := range downs {
		rt.Out().Subscribe(t.Node, t.Stream, t.Active)
	}
	rt.Out().RetransmitAll()

	readyAt := p.clk.Now()

	// Tear down the old stack without blocking (its machine may be
	// unresponsive); the old copy may limp along for a while, and the
	// downstream deduplicates whatever it still emits.
	go func() {
		oldDet.Stop()
		oldCM.Stop()
		old.Stop()
	}()
	store.Close()

	p.mu.Lock()
	p.active = rt
	p.standbyM = old.Machine()
	p.migrations = append(p.migrations, MigrationEvent{DetectedAt: detectedAt, ReadyAt: readyAt})
	p.mu.Unlock()

	// Re-protect: new store on the former primary machine, new checkpoint
	// manager on the new primary, new detector monitoring it.
	p.armLocked()
}
