package ha

import (
	"fmt"
	"time"

	"streamha/internal/core"
	"streamha/internal/subjob"
)

// RescalePlacement places the instance a ScaleOut adds: the machine for
// its primary copy and, per the stage's HA mode, its standby and spare.
type RescalePlacement struct {
	Primary   string
	Secondary string
	Spare     string
}

// RescaleOptions tunes a ScaleOut.
type RescaleOptions struct {
	// SyncRounds is the number of delta rounds shipped after the full
	// snapshot while the donor keeps serving (default 2). More rounds
	// shrink the final delta and so the cutover pause.
	SyncRounds int
	// RoundGap is how long the donor keeps processing between delta rounds
	// (default 20 ms).
	RoundGap time.Duration
	// DrainTimeout bounds the wait for the donor's backlog to empty during
	// cutover (default 5 s).
	DrainTimeout time.Duration
}

func (o RescaleOptions) withDefaults() RescaleOptions {
	if o.SyncRounds <= 0 {
		o.SyncRounds = 2
	}
	if o.RoundGap <= 0 {
		o.RoundGap = 20 * time.Millisecond
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	return o
}

// RescaleReport describes one completed ScaleOut.
type RescaleReport struct {
	Stage       int
	NewInstance int
	// Donor is the partition-instance index that gave up partitions.
	Donor int
	// Moved lists the logical partitions reassigned to the new instance.
	Moved []int
	// FullBytes and DeltaBytes are the encoded sizes shipped during state
	// sync (the full snapshot round, then every delta round including the
	// final cutover delta).
	FullBytes  int
	DeltaBytes int
	// Rounds counts delta rounds shipped, including the final one.
	Rounds int
	// SyncDuration spans the whole ScaleOut; CutoverPause is the window in
	// which the donor was actually paused (the only service interruption).
	SyncDuration time.Duration
	CutoverPause time.Duration
}

// ScaleOut grows a keyed-parallel stage from n to n+1 instances while the
// job keeps serving. Only the last stage can grow live — an instance added
// mid-chain would need every downstream copy's input re-specced, which is
// out of scope — and the stage must not run active standby (the twin
// processes the same feed concurrently, so pausing just the primary for
// state sync would fork the pair).
//
// Protocol: the new instance is deployed suspended with early (inactive)
// upstream connections and an active sink subscription for its own output
// stream. The donor — the instance owning the most partitions — then ships
// a full snapshot and a chain of delta checkpoints while it keeps serving;
// its checkpoint manager is paused so the migration owns the delta
// baseline. Cutover deactivates the donor's feed, drains its backlog,
// ships the final (empty-backlog) delta under pause, flips the shared
// routing table, purges moved elements from the donor's buffer, resumes
// the new instance and reactivates both feeds. Upstream replay plus the
// adopted consumed positions make the handoff exactly-once: the new
// instance's input dedups everything the donor already consumed, and its
// partition guard drops everything the donor still owns. The cutover is
// recorded on the donor's lifecycle as a migration event.
func (p *Pipeline) ScaleOut(stage int, pl RescalePlacement, opt RescaleOptions) (*RescaleReport, error) {
	opt = opt.withDefaults()
	cl := p.cfg.Cluster
	clk := cl.Clock()
	started := clk.Now()

	if stage != len(p.cfg.Subjobs)-1 {
		return nil, fmt.Errorf("ha: ScaleOut: only the last stage can grow live (got stage %d of %d)", stage, len(p.cfg.Subjobs))
	}
	def := p.cfg.Subjobs[stage]
	if !def.partitioned() {
		return nil, fmt.Errorf("ha: ScaleOut: stage %d is not keyed-parallel", stage)
	}
	if def.Mode == ModeActive {
		return nil, fmt.Errorf("ha: ScaleOut: active-standby stages cannot rescale live")
	}
	split := p.linkSplit[stage]

	p.mu.Lock()
	n := len(p.stages[stage])
	instances := append([]*Group(nil), p.stages[stage]...)
	p.mu.Unlock()
	if split.Instances() != n {
		return nil, fmt.Errorf("ha: ScaleOut: routing table has %d instances, pipeline has %d", split.Instances(), n)
	}

	// Donor: the instance owning the most partitions; it gives up half.
	donorIdx, donorOwned := 0, split.OwnedBy(0)
	for k := 1; k < n; k++ {
		if owned := split.OwnedBy(k); len(owned) > len(donorOwned) {
			donorIdx, donorOwned = k, owned
		}
	}
	if len(donorOwned) < 2 {
		return nil, fmt.Errorf("ha: ScaleOut: donor instance %d owns %d partitions; nothing to move", donorIdx, len(donorOwned))
	}
	moved := append([]int(nil), donorOwned[:len(donorOwned)/2]...)
	donorGroup := instances[donorIdx]
	donor := donorGroup.HA.PrimaryRuntime()

	// Deploy the new instance suspended, with its partition guard installed
	// before any element can reach it. Its output stream is new: the sink
	// learns it first, then the instance subscribes the sink actively (the
	// output queue is empty, so the active subscription carries nothing yet).
	newStream := p.outStream(stage, n)
	p.mu.Lock()
	p.linkStreams[stage+1] = append(p.linkStreams[stage+1], newStream)
	p.mu.Unlock()

	spec := subjob.Spec{
		JobID:     p.cfg.JobID,
		ID:        p.specID(stage, n),
		InStreams: append([]string(nil), p.linkStreams[stage]...),
		Owners:    p.ownersFor(stage),
		OutStream: newStream,
		PEs:       def.PEs,
		BatchSize: def.BatchSize,
	}
	priM := cl.Machine(pl.Primary)
	if priM == nil {
		return nil, fmt.Errorf("ha: ScaleOut: unknown primary machine %q", pl.Primary)
	}
	rt, err := subjob.New(spec, priM, true)
	if err != nil {
		return nil, err
	}
	rt.SetInputPartition(split, n)
	rt.Start()

	p.sink.AddInput(newStream, spec.ID)
	rt.Out().SubscribePart(p.sink.Node(), subjob.DataStream(p.sink.ID(), newStream), true, -1)

	// Early inactive upstream connections, filtered to the new instance's
	// (currently empty) partition set.
	ups := p.producerOutputs(stage)
	for _, up := range ups {
		up.SubscribePart(rt.Node(), subjob.DataStream(spec.ID, up.StreamID), false, n)
	}

	// The migration owns the donor's delta baseline: an interleaved manager
	// capture would reset per-PE change tracking mid-chain.
	if cm := donorGroup.HA.Checkpoint(); cm != nil {
		cm.Pause()
		defer cm.Resume()
	}

	rep := &RescaleReport{Stage: stage, NewInstance: n, Donor: donorIdx, Moved: moved}

	// Round 1: full snapshot, shipped encoded, while the donor serves on.
	var snapBytes []byte
	donor.WithPaused(func() {
		s := donor.CaptureFull()
		snapBytes, err = s.Encode()
	})
	if err != nil {
		return nil, fmt.Errorf("ha: ScaleOut: encode snapshot: %w", err)
	}
	snap, err := subjob.DecodeSnapshot(snapBytes)
	if err != nil {
		return nil, fmt.Errorf("ha: ScaleOut: decode snapshot: %w", err)
	}
	if err := rt.AdoptSnapshot(snap); err != nil {
		return nil, fmt.Errorf("ha: ScaleOut: adopt snapshot: %w", err)
	}
	rep.FullBytes = len(snapBytes)

	shipDelta := func() error {
		var deltaBytes []byte
		ok := true
		donor.WithPaused(func() {
			d, dok := donor.CaptureDelta(subjob.DeltaOptions{OnlyPE: -1})
			if !dok {
				ok = false
				return
			}
			deltaBytes, err = d.Encode()
		})
		if !ok {
			return fmt.Errorf("ha: ScaleOut: donor cannot express delta; state was restored mid-rescale")
		}
		if err != nil {
			return fmt.Errorf("ha: ScaleOut: encode delta: %w", err)
		}
		d, err := subjob.DecodeDelta(deltaBytes)
		if err != nil {
			return fmt.Errorf("ha: ScaleOut: decode delta: %w", err)
		}
		if err := rt.AdoptDelta(d); err != nil {
			return fmt.Errorf("ha: ScaleOut: adopt delta: %w", err)
		}
		rep.DeltaBytes += len(deltaBytes)
		rep.Rounds++
		return nil
	}

	// Chained delta rounds: the donor keeps processing between captures, so
	// each round ships only what changed and the final gap stays small.
	for i := 0; i < opt.SyncRounds; i++ {
		clk.Sleep(opt.RoundGap)
		if err := shipDelta(); err != nil {
			return nil, err
		}
	}

	// Cutover. Stop the donor's feed and let it finish what it holds, so
	// the final delta carries state only — no in-flight elements exist whose
	// outputs could be emitted twice.
	cutStart := clk.Now()
	for _, up := range ups {
		up.Activate(donor.Node(), false)
	}
	deadline := clk.Now().Add(opt.DrainTimeout)
	var cutErr error
	for settled := false; !settled; {
		for donor.Backlog() > 0 {
			if clk.Now().After(deadline) {
				for _, up := range ups {
					up.Activate(donor.Node(), true)
				}
				return nil, fmt.Errorf("ha: ScaleOut: donor backlog did not drain within %v", opt.DrainTimeout)
			}
			clk.Sleep(500 * time.Microsecond)
		}
		donor.WithPaused(func() {
			// Re-check under the pause: a batch in flight when the backlog
			// last read zero may have landed since, and a PE finishing it
			// while parking would leave its outputs in a pipe. A delta
			// shipped with a non-empty pipe is processed by both sides —
			// the adopter after Resume and the donor after unpause — so
			// retry the drain until the quiescent backlog really is zero.
			if donor.Backlog() > 0 {
				return
			}
			settled = true
			d, dok := donor.CaptureDelta(subjob.DeltaOptions{OnlyPE: -1})
			if !dok {
				cutErr = fmt.Errorf("ha: ScaleOut: donor cannot express final delta")
				return
			}
			var deltaBytes []byte
			deltaBytes, cutErr = d.Encode()
			if cutErr != nil {
				return
			}
			var dd *subjob.Delta
			dd, cutErr = subjob.DecodeDelta(deltaBytes)
			if cutErr != nil {
				return
			}
			if cutErr = rt.AdoptDelta(dd); cutErr != nil {
				return
			}
			rep.DeltaBytes += len(deltaBytes)
			rep.Rounds++
			// Flip ownership while both sides are quiescent, then purge moved
			// elements the donor had buffered: from here on the guard routes
			// them to the new instance via upstream replay.
			if cutErr = split.Move(moved, n); cutErr != nil {
				return
			}
			donor.In().Repartition()
		})
		if cutErr != nil {
			for _, up := range ups {
				up.Activate(donor.Node(), true)
			}
			return nil, cutErr
		}
	}

	// Serve: resume the new instance, then open both feeds. Activation
	// replays everything unacknowledged through each subscription's filter,
	// and the adopted consumed positions dedup what the donor already
	// processed.
	rt.Resume()
	for _, up := range ups {
		up.Activate(rt.Node(), true)
		up.Activate(donor.Node(), true)
	}
	cutEnd := clk.Now()
	rep.CutoverPause = cutEnd.Sub(cutStart)

	// Protect the new instance: a full HA group, same mode as its stage.
	g := &Group{Def: def, Spec: spec, Mode: def.Mode, Stage: stage, Part: n}
	pol := policyFor(def.Mode, p.cfg.Hybrid, p.cfg.PS, p.cfg.Approx, p.cfg.AckInterval)
	secM := cl.Machine(pl.Secondary)
	if pol.NeedsStandbyMachine() && secM == nil {
		return nil, fmt.Errorf("ha: ScaleOut: unknown secondary machine %q", pl.Secondary)
	}
	g.HA = core.NewLifecycle(core.LifecycleConfig{
		Spec:             spec,
		Clock:            clk,
		Primary:          rt,
		SecondaryMachine: secM,
		SpareMachine:     cl.Machine(pl.Spare),
		Wiring:           p.wiringFor(stage, g),
		Policy:           pol,
	})
	p.mu.Lock()
	p.stages[stage] = append(p.stages[stage], g)
	reg := p.reg
	p.mu.Unlock()
	if err := g.HA.Start(); err != nil {
		return nil, fmt.Errorf("ha: ScaleOut: start lifecycle: %w", err)
	}
	if reg != nil {
		registerGroupMetrics(reg, g)
	}

	donorGroup.HA.NoteMigration(core.MigrationEvent{DetectedAt: cutStart, ReadyAt: cutEnd})
	rep.SyncDuration = clk.Now().Sub(started)
	return rep, nil
}
