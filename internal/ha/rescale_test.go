package ha_test

import (
	"testing"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/ha"
	"streamha/internal/metrics"
	"streamha/internal/pe"
	"streamha/internal/queue"
	"streamha/internal/subjob"
)

// buildRescaleTestbed deploys a hybrid-protected keyed-parallel stage at
// Parallelism(2) with two PEs per instance, so the inter-PE pipe is part
// of the migrated state, plus spare machines for the instance ScaleOut
// adds.
func buildRescaleTestbed(t *testing.T) (*cluster.Cluster, *ha.Pipeline) {
	t.Helper()
	cl := cluster.New(cluster.Config{Latency: 200 * time.Microsecond})
	for _, m := range []string{"m-src", "m-sink", "p0", "p1", "s0", "s1", "p-new", "s-new"} {
		cl.MustAddMachine(m)
	}
	p, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "rescale",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 12000, Tick: 2 * time.Millisecond},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{{
			PEs: []subjob.PESpec{
				{Name: "pe0", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 50} }, Cost: 20 * time.Microsecond},
				{Name: "pe1", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 50} }, Cost: 20 * time.Microsecond},
			},
			Mode:        ha.ModeHybrid,
			Parallelism: 2,
			Primaries:   []string{"p0", "p1"},
			Secondaries: []string{"s0", "s1"},
			BatchSize:   32,
		}},
		Hybrid:   core.Options{CheckpointInterval: 10 * time.Millisecond},
		TrackIDs: true,
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		p.Stop()
		cl.Close()
	})
	return cl, p
}

// drainPipeline stops the source and waits until the sink stops advancing,
// so nothing is legitimately in flight when the delivery audit runs.
func drainPipeline(p *ha.Pipeline, clk interface{ Sleep(time.Duration) }) {
	p.Source().Stop()
	last := p.Sink().Received()
	for settle := 0; settle < 10; {
		clk.Sleep(50 * time.Millisecond)
		if now := p.Sink().Received(); now != last {
			last, settle = now, 0
		} else {
			settle++
		}
	}
}

// TestRescaleExactlyOnce grows a serving 2-instance stage to 3 and audits
// every source element's delivery count: a correct live rescale loses
// nothing and delivers nothing twice, even though the donor's elements are
// split between two instances mid-stream.
func TestRescaleExactlyOnce(t *testing.T) {
	cl, p := buildRescaleTestbed(t)
	clk := cl.Clock()
	clk.Sleep(300 * time.Millisecond)

	rep, err := p.ScaleOut(0, ha.RescalePlacement{Primary: "p-new", Secondary: "s-new"}, ha.RescaleOptions{})
	if err != nil {
		t.Fatalf("ScaleOut: %v", err)
	}
	clk.Sleep(300 * time.Millisecond)
	drainPipeline(p, clk)

	// Report invariants: one new instance, a non-trivial partition move, a
	// full round plus at least SyncRounds+1 deltas (the final one under
	// pause), and a bounded cutover.
	if rep.NewInstance != 2 || rep.Donor < 0 || rep.Donor > 1 {
		t.Fatalf("report placement %+v", rep)
	}
	if len(rep.Moved) == 0 {
		t.Fatalf("no partitions moved: %+v", rep)
	}
	if rep.FullBytes == 0 || rep.DeltaBytes == 0 || rep.Rounds < 3 {
		t.Fatalf("state sync rounds missing: %+v", rep)
	}
	if rep.CutoverPause <= 0 || rep.CutoverPause > time.Second {
		t.Fatalf("cutover pause %v out of range", rep.CutoverPause)
	}

	// The routing table and the pipeline agree on the grown stage.
	split := p.StagePartitioner(0)
	if split.Instances() != 3 {
		t.Fatalf("partitioner has %d instances, want 3", split.Instances())
	}
	if got := split.OwnedBy(2); len(got) != len(rep.Moved) {
		t.Fatalf("new instance owns %d partitions, report moved %d", len(got), len(rep.Moved))
	}
	groups := p.StageInstances(0)
	if len(groups) != 3 {
		t.Fatalf("stage has %d instances, want 3", len(groups))
	}

	// The new instance actually served: its first PE processed elements
	// after cutover (adoption alone never advances the processed counter).
	newRT := groups[2].HA.PrimaryRuntime()
	if got := newRT.PEs()[0].Processed(); got == 0 {
		t.Fatal("new instance processed nothing after cutover")
	}
	// The cutover is on the donor's lifecycle record as a migration.
	if migs := groups[rep.Donor].HA.Migrations(); len(migs) != 1 {
		t.Fatalf("donor recorded %d migration events, want 1", len(migs))
	}

	// Exactly-once audit over every emitted element. CounterLogic derives
	// child IDs with index 0, which is the identity, so sink IDs are
	// source IDs.
	emitted := p.Source().Emitted()
	if emitted == 0 {
		t.Fatal("source emitted nothing")
	}
	counts := p.Sink().IDCounts()
	var dup, lost int
	for id := uint64(1); id <= emitted; id++ {
		switch c := counts[id]; {
		case c == 0:
			lost++
		case c > 1:
			dup += c - 1
		}
	}
	if dup != 0 || lost != 0 {
		t.Fatalf("rescale broke exactly-once: %d duplicated, %d lost of %d emitted", dup, lost, emitted)
	}
}

// TestPartitionedMetrics: every partition-instance registers its own
// metric series under its ".p<k>" spec ID — per-partition queue depths,
// lifecycle and checkpoint state — plus the stage's shared routing table;
// an instance added by ScaleOut self-registers in the same registry.
func TestPartitionedMetrics(t *testing.T) {
	cl, p := buildRescaleTestbed(t)
	reg := metrics.NewRegistry()
	p.RegisterMetrics(reg)
	clk := cl.Clock()
	clk.Sleep(200 * time.Millisecond)

	names := make(map[string]bool)
	for _, n := range reg.Names() {
		names[n] = true
	}
	for _, want := range []string{
		"partition/rescale/s0",
		"subjob/rescale/sj0.p0/primary",
		"subjob/rescale/sj0.p1/primary",
		"ha/rescale/sj0.p0",
		"ha/rescale/sj0.p1",
		"checkpoint/rescale/sj0.p0",
	} {
		if !names[want] {
			t.Fatalf("registry missing %q; have %v", want, reg.Names())
		}
	}
	snap := reg.Snapshot()
	st, ok := snap["partition/rescale/s0"].(queue.PartitionerStats)
	if !ok {
		t.Fatalf("partition metric snapshot is %T", snap["partition/rescale/s0"])
	}
	if st.Instances != 2 || st.Partitions != queue.DefaultPartitions {
		t.Fatalf("partition stats %+v", st)
	}

	if _, err := p.ScaleOut(0, ha.RescalePlacement{Primary: "p-new", Secondary: "s-new"}, ha.RescaleOptions{}); err != nil {
		t.Fatalf("ScaleOut: %v", err)
	}
	names = make(map[string]bool)
	for _, n := range reg.Names() {
		names[n] = true
	}
	if !names["subjob/rescale/sj0.p2/primary"] || !names["ha/rescale/sj0.p2"] {
		t.Fatalf("ScaleOut did not self-register the new instance; have %v", reg.Names())
	}
	if st := reg.Snapshot()["partition/rescale/s0"].(queue.PartitionerStats); st.Instances != 3 {
		t.Fatalf("partition stats after rescale %+v", st)
	}
}

// TestRescaleRejections pins ScaleOut's safety refusals: active-standby
// stages (the twin would fork under a one-sided pause), unkeyed stages,
// and stages that are not last in the chain.
func TestRescaleRejections(t *testing.T) {
	cl := cluster.New(cluster.Config{Latency: 100 * time.Microsecond})
	defer cl.Close()
	for _, m := range []string{"m-src", "m-sink", "a0", "a1", "b0", "x"} {
		cl.MustAddMachine(m)
	}
	counter := func() pe.Logic { return &pe.CounterLogic{} }
	p, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "rej",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 500, Tick: 2 * time.Millisecond},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{
			{
				PEs:         []subjob.PESpec{{Name: "pe", NewLogic: counter, Cost: time.Microsecond}},
				Mode:        ha.ModeNone,
				Parallelism: 2,
				Primaries:   []string{"a0", "a1"},
			},
			{
				PEs:     []subjob.PESpec{{Name: "pe", NewLogic: counter, Cost: time.Microsecond}},
				Mode:    ha.ModeNone,
				Primary: "b0",
			},
		},
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	defer p.Stop()
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}

	pl := ha.RescalePlacement{Primary: "x"}
	if _, err := p.ScaleOut(0, pl, ha.RescaleOptions{}); err == nil {
		t.Fatal("ScaleOut accepted a mid-chain stage")
	}
	if _, err := p.ScaleOut(1, pl, ha.RescaleOptions{}); err == nil {
		t.Fatal("ScaleOut accepted an unkeyed stage")
	}
}

// TestRescaleRejectsActive: an active-standby keyed stage must refuse to
// rescale live.
func TestRescaleRejectsActive(t *testing.T) {
	cl := cluster.New(cluster.Config{Latency: 100 * time.Microsecond})
	defer cl.Close()
	for _, m := range []string{"m-src", "m-sink", "a0", "a1", "t0", "t1", "x"} {
		cl.MustAddMachine(m)
	}
	counter := func() pe.Logic { return &pe.CounterLogic{} }
	p, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "rej-active",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 500, Tick: 2 * time.Millisecond},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{{
			PEs:         []subjob.PESpec{{Name: "pe", NewLogic: counter, Cost: time.Microsecond}},
			Mode:        ha.ModeActive,
			Parallelism: 2,
			Primaries:   []string{"a0", "a1"},
			Secondaries: []string{"t0", "t1"},
		}},
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	defer p.Stop()
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, err := p.ScaleOut(0, ha.RescalePlacement{Primary: "x"}, ha.RescaleOptions{}); err == nil {
		t.Fatal("ScaleOut accepted an active-standby stage")
	}
}
