package ha_test

import (
	"fmt"
	"testing"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/failure"
	"streamha/internal/ha"
	"streamha/internal/machine"
	"streamha/internal/pe"
	"streamha/internal/sched"
	"streamha/internal/subjob"
)

// buildScheduledTestbed deploys a two-subjob hybrid chain whose placement
// is entirely scheduler-resolved: three placement-log replicas outside
// the pool, six workers across three racks, no machine names in the
// subjob defs.
func buildScheduledTestbed(t *testing.T) (*cluster.Cluster, *sched.Scheduler, *ha.Pipeline) {
	t.Helper()
	cl := cluster.New(cluster.Config{Latency: 200 * time.Microsecond})
	cl.MustAddMachine("m-src")
	cl.MustAddMachine("m-sink")
	s, err := sched.New(sched.Config{
		Clock: cl.Clock(),
		Replicas: []*machine.Machine{
			cl.MustAddMachine("sched-a"),
			cl.MustAddMachine("sched-b"),
			cl.MustAddMachine("sched-c"),
		},
		Tick:            5 * time.Millisecond,
		ElectionTimeout: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("sched.New: %v", err)
	}
	s.Start()
	cl.BindScheduler(s, 2)
	for id, rack := range map[string]string{
		"w1": "rack-a", "w2": "rack-a",
		"w3": "rack-b", "w4": "rack-b",
		"w5": "rack-c", "w6": "rack-c",
	} {
		cl.MustAddMachineIn(id, rack)
	}
	newPEs := func() []subjob.PESpec {
		return []subjob.PESpec{
			{Name: "pe-a", NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 10} }, Cost: 10 * time.Microsecond},
		}
	}
	p, err := ha.NewPipeline(ha.PipelineConfig{
		Cluster:     cl,
		JobID:       "cycle",
		Source:      ha.SourceDef{Machine: "m-src", Rate: 500},
		SinkMachine: "m-sink",
		Subjobs: []ha.SubjobDef{
			{PEs: newPEs(), Mode: ha.ModeHybrid, BatchSize: 16},
			{PEs: newPEs(), Mode: ha.ModeHybrid, BatchSize: 16},
		},
		Hybrid: core.Options{
			HeartbeatInterval:  20 * time.Millisecond,
			CheckpointInterval: 10 * time.Millisecond,
			FailStopAfter:      120 * time.Millisecond,
		},
		TrackIDs:      true,
		Scheduler:     s,
		RearmInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		p.Stop()
		s.Stop()
		cl.Close()
	})
	return cl, s, p
}

// hostsOf returns the machine IDs currently hosting a group's primary
// and standby ("" when no standby exists).
func hostsOf(g *ha.Group) (pri, sby string) {
	pri = string(g.HA.PrimaryRuntime().Machine().ID())
	if m := g.HA.StandbyMachine(); m != nil {
		sby = string(m.ID())
	}
	return
}

// waitProtectedGroups polls until every group is Protected with live
// primary and standby machines — any in-flight failover and re-arm done.
func waitProtectedGroups(cl *cluster.Cluster, groups []*ha.Group, timeout time.Duration) bool {
	clk := cl.Clock()
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		ok := true
		for _, g := range groups {
			secM := g.HA.StandbyMachine()
			if g.HA.State() != core.Protected || secM == nil || secM.Crashed() ||
				g.HA.PrimaryRuntime().Machine().Crashed() {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
		clk.Sleep(10 * time.Millisecond)
	}
	return false
}

// assertAntiAffine fails if any group's primary and standby share a
// fault domain, or a group is missing its standby.
func assertAntiAffine(t *testing.T, cl *cluster.Cluster, groups []*ha.Group, when string) {
	t.Helper()
	for _, g := range groups {
		pri, sby := hostsOf(g)
		if sby == "" {
			t.Fatalf("%s: subjob %s has no standby", when, g.Spec.ID)
		}
		if dp, ds := cl.Domain(pri), cl.Domain(sby); dp != "" && dp == ds {
			t.Fatalf("%s: subjob %s primary %s and standby %s share fault domain %s",
				when, g.Spec.ID, pri, sby, dp)
		}
	}
}

// TestScheduledPipelineSurvivesFailureTrace replays a crash/recover
// trace against a fully scheduler-placed pipeline: the target subjob's
// standby host dies (a failure its heartbeat detector cannot see, since
// the detector lived there), then its primary host dies, then the first
// casualty comes back. While schedulable capacity exists no subjob may
// settle unprotected, primary and standby must never share a fault
// domain, and delivery stays exactly-once throughout.
func TestScheduledPipelineSurvivesFailureTrace(t *testing.T) {
	cl, _, p := buildScheduledTestbed(t)
	clk := cl.Clock()
	clk.Sleep(300 * time.Millisecond)

	groups := p.AllGroups()
	assertAntiAffine(t, cl, groups, "initial placement")
	target := groups[0]
	pri, sby := hostsOf(target)

	script, err := failure.ParseScript(fmt.Sprintf(`
		0ms    crash   %s
		700ms  crash   %s
		1400ms recover %s
	`, sby, pri, sby))
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	rep := failure.NewReplayer(clk, cl, script)
	rep.Start()
	rep.Wait()
	for _, ap := range rep.Applied() {
		if ap.Err != nil {
			t.Fatalf("trace event %v %s: %v", ap.Event.Action, ap.Event.Machine, ap.Err)
		}
	}

	if !waitProtectedGroups(cl, groups, 3*time.Second) {
		for _, g := range groups {
			gp, gs := hostsOf(g)
			t.Logf("subjob %s: state=%s primary=%s standby=%s", g.Spec.ID, g.HA.State(), gp, gs)
		}
		t.Fatal("a subjob stayed unprotected while schedulable capacity existed")
	}
	assertAntiAffine(t, cl, groups, "after trace")

	st := target.HA.Stats()
	if st.Rearms < 2 {
		t.Fatalf("target subjob recorded %d re-arms, want at least 2 (standby loss, then post-promotion)", st.Rearms)
	}
	if st.Promotions < 1 {
		t.Fatalf("target subjob recorded %d promotions, want at least 1 for the primary-host kill", st.Promotions)
	}

	clk.Sleep(300 * time.Millisecond)
	p.Source().Stop()
	clk.Sleep(500 * time.Millisecond)
	verifyExactlyOnce(t, p, 300)
}
