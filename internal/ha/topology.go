package ha

import (
	"fmt"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/queue"
	"streamha/internal/sched"
	"streamha/internal/subjob"
)

// The paper's evaluation uses chain jobs and names tree-shaped topologies
// as future work. Topology generalizes the chain Pipeline to arbitrary
// DAGs: any subjob may consume the outputs of several producers (fan-in)
// and feed several consumers (fan-out), each with its own HA mode. The
// underlying queue protocol already supports both — an output queue trims
// only when every consumer acknowledged, and an input queue merges and
// deduplicates per upstream stream — so the builder's job is wiring and
// lifecycle construction.

// TopologySource declares one source node of a DAG job.
type TopologySource struct {
	// Name identifies the source within the job (e.g. "ticks").
	Name string
	// Machine hosts it.
	Machine string
	// Rate is the emission rate in elements per second.
	Rate float64
	// Burst shaping, as in SourceDef.
	BurstOn, BurstOff time.Duration
	BurstFactor       float64
}

// TopologySubjob declares one subjob node of a DAG job.
type TopologySubjob struct {
	// ID names the subjob within the job.
	ID string
	// Inputs lists the producers feeding it: subjob IDs or source names.
	Inputs []string
	// PEs is the subjob's pipeline.
	PEs []subjob.PESpec
	// Mode, Primary, Secondary, Spare as in SubjobDef.
	Mode      Mode
	Primary   string
	Secondary string
	Spare     string
	// BatchSize overrides the per-PE batch size.
	BatchSize int
}

// TopologySink declares one sink node of a DAG job.
type TopologySink struct {
	// Name identifies the sink within the job.
	Name string
	// Machine hosts it.
	Machine string
	// Inputs lists the subjob IDs it consumes.
	Inputs []string
	// TrackIDs retains per-ID delivery counts for verification.
	TrackIDs bool
}

// TopologyConfig deploys a DAG job.
type TopologyConfig struct {
	Cluster *cluster.Cluster
	JobID   string
	Sources []TopologySource
	Subjobs []TopologySubjob
	Sinks   []TopologySink
	// Hybrid, PS and Approx tune the HA policies, AckInterval the ackers
	// and sinks, as in PipelineConfig.
	Hybrid      core.Options
	PS          PSOptions
	Approx      core.ErrorBudget
	AckInterval time.Duration
	// Scheduler and RearmInterval enable scheduler-resolved placement and
	// automatic re-arm, as in PipelineConfig.
	Scheduler     *sched.Scheduler
	RearmInterval time.Duration
}

// Topology is a deployed DAG job.
type Topology struct {
	cfg     TopologyConfig
	sources map[string]*cluster.Source
	sinks   map[string]*cluster.Sink
	groups  map[string]*Group
	order   []string // subjobs in topological order
	placer  core.Placer
}

// NewTopology builds and wires the DAG; call Start to begin processing.
func NewTopology(cfg TopologyConfig) (*Topology, error) {
	if cfg.AckInterval <= 0 {
		if cfg.Hybrid.CheckpointInterval > 0 {
			cfg.AckInterval = cfg.Hybrid.CheckpointInterval
		} else {
			cfg.AckInterval = 10 * time.Millisecond
		}
	}
	t := &Topology{
		cfg:     cfg,
		sources: make(map[string]*cluster.Source),
		sinks:   make(map[string]*cluster.Sink),
		groups:  make(map[string]*Group),
	}
	cl := cfg.Cluster
	if cfg.Scheduler != nil {
		t.placer = newSchedPlacer(cl, cfg.Scheduler)
	}

	names := map[string]bool{}
	for _, s := range cfg.Sources {
		if names[s.Name] {
			return nil, fmt.Errorf("ha: duplicate node name %q", s.Name)
		}
		names[s.Name] = true
	}
	for _, sj := range cfg.Subjobs {
		if names[sj.ID] {
			return nil, fmt.Errorf("ha: duplicate node name %q", sj.ID)
		}
		names[sj.ID] = true
	}

	order, err := t.topoSort()
	if err != nil {
		return nil, err
	}
	t.order = order

	// Sources.
	for _, s := range cfg.Sources {
		m := cl.Machine(s.Machine)
		if m == nil {
			return nil, fmt.Errorf("ha: source %s: unknown machine %q", s.Name, s.Machine)
		}
		t.sources[s.Name] = cluster.NewSource(cluster.SourceConfig{
			Machine:     m,
			Clock:       cl.Clock(),
			Stream:      t.streamOf(s.Name),
			Rate:        s.Rate,
			BurstOn:     s.BurstOn,
			BurstOff:    s.BurstOff,
			BurstFactor: s.BurstFactor,
		})
	}

	// Subjob copies and lifecycles (phase A), in topological order. The
	// wiring closures resolve lazily, so forward references to groups not
	// yet built are safe; lifecycles are armed in Start.
	for _, id := range order {
		def := t.subjobDef(id)
		g, err := t.buildGroup(def)
		if err != nil {
			return nil, err
		}
		t.groups[id] = g
	}

	// Sinks.
	for _, sk := range cfg.Sinks {
		m := cl.Machine(sk.Machine)
		if m == nil {
			return nil, fmt.Errorf("ha: sink %s: unknown machine %q", sk.Name, sk.Machine)
		}
		streams := make([]string, 0, len(sk.Inputs))
		owners := make(map[string]string, len(sk.Inputs))
		for _, in := range sk.Inputs {
			if _, ok := t.groups[in]; !ok {
				return nil, fmt.Errorf("ha: sink %s: unknown input %q", sk.Name, in)
			}
			st := t.streamOf(in)
			streams = append(streams, st)
			owners[st] = t.groups[in].Spec.ID
		}
		t.sinks[sk.Name] = cluster.NewSink(cluster.SinkConfig{
			Machine:     m,
			Clock:       cl.Clock(),
			ID:          cfg.JobID + "/" + sk.Name,
			InStreams:   streams,
			Owners:      owners,
			AckInterval: cfg.AckInterval,
			TrackIDs:    sk.TrackIDs,
		})
	}

	// Wiring (phase B): for every edge, subscribe every consumer copy to
	// every producer copy.
	for _, id := range order {
		def := t.subjobDef(id)
		g := t.groups[id]
		for _, in := range def.Inputs {
			for _, out := range t.producerOutputs(in) {
				for _, tgt := range g.ConsumerTargets(t.streamOf(in)) {
					out.Subscribe(tgt.Node, tgt.Stream, tgt.Active)
				}
			}
		}
	}
	for _, sk := range cfg.Sinks {
		sink := t.sinks[sk.Name]
		for _, in := range sk.Inputs {
			for _, out := range t.producerOutputs(in) {
				out.Subscribe(sink.Node(), subjob.DataStream(sink.ID(), t.streamOf(in)), true)
			}
		}
	}
	return t, nil
}

// streamOf names the logical output stream of a source or subjob node.
func (t *Topology) streamOf(node string) string { return t.cfg.JobID + "/out/" + node }

func (t *Topology) subjobDef(id string) TopologySubjob {
	for _, sj := range t.cfg.Subjobs {
		if sj.ID == id {
			return sj
		}
	}
	panic("ha: unknown subjob " + id)
}

// topoSort orders subjobs so producers precede consumers, rejecting cycles
// and unknown inputs.
func (t *Topology) topoSort() ([]string, error) {
	isSource := map[string]bool{}
	for _, s := range t.cfg.Sources {
		isSource[s.Name] = true
	}
	deps := map[string][]string{}
	for _, sj := range t.cfg.Subjobs {
		if len(sj.Inputs) == 0 {
			return nil, fmt.Errorf("ha: subjob %s has no inputs", sj.ID)
		}
		for _, in := range sj.Inputs {
			if isSource[in] {
				continue
			}
			found := false
			for _, other := range t.cfg.Subjobs {
				if other.ID == in {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("ha: subjob %s: unknown input %q", sj.ID, in)
			}
			deps[sj.ID] = append(deps[sj.ID], in)
		}
	}
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(id string) error
	visit = func(id string) error {
		switch state[id] {
		case 1:
			return fmt.Errorf("ha: topology cycle through %q", id)
		case 2:
			return nil
		}
		state[id] = 1
		for _, dep := range deps[id] {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[id] = 2
		order = append(order, id)
		return nil
	}
	for _, sj := range t.cfg.Subjobs {
		if err := visit(sj.ID); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// buildGroup mirrors Pipeline.buildGroup for a DAG node.
func (t *Topology) buildGroup(def TopologySubjob) (*Group, error) {
	cl := t.cfg.Cluster
	isSource := map[string]bool{}
	for _, s := range t.cfg.Sources {
		isSource[s.Name] = true
	}
	inStreams := make([]string, 0, len(def.Inputs))
	owners := make(map[string]string, len(def.Inputs))
	for _, in := range def.Inputs {
		st := t.streamOf(in)
		inStreams = append(inStreams, st)
		if isSource[in] {
			owners[st] = cluster.SourceOwner
		} else {
			owners[st] = t.cfg.JobID + "/" + in
		}
	}
	spec := subjob.Spec{
		JobID:     t.cfg.JobID,
		ID:        t.cfg.JobID + "/" + def.ID,
		InStreams: inStreams,
		Owners:    owners,
		OutStream: t.streamOf(def.ID),
		PEs:       def.PEs,
		BatchSize: def.BatchSize,
	}
	pol := policyFor(def.Mode, t.cfg.Hybrid, t.cfg.PS, t.cfg.Approx, t.cfg.AckInterval)
	priM, secM, spareM, err := resolvePlacement(cl, t.placer, placementReq{
		Subjob:       spec.ID,
		Primary:      def.Primary,
		Secondary:    def.Secondary,
		Spare:        def.Spare,
		NeedsStandby: pol.NeedsStandbyMachine(),
	})
	if err != nil {
		return nil, err
	}
	primary, err := subjob.New(spec, priM, false)
	if err != nil {
		return nil, err
	}
	primary.Start()

	var secondary *subjob.Runtime
	if create, suspended := pol.PreDeploy(); create {
		secondary, err = subjob.New(spec, secM, suspended)
		if err != nil {
			return nil, err
		}
		secondary.Start()
	}

	sjDef := SubjobDef{
		ID:        def.ID,
		PEs:       def.PEs,
		Mode:      def.Mode,
		Primary:   def.Primary,
		Secondary: def.Secondary,
		Spare:     def.Spare,
		BatchSize: def.BatchSize,
	}
	g := &Group{Def: sjDef, Spec: spec, Mode: def.Mode, Stage: -1, Part: -1}
	g.HA = core.NewLifecycle(core.LifecycleConfig{
		Spec:             spec,
		Clock:            cl.Clock(),
		Primary:          primary,
		Secondary:        secondary,
		SecondaryMachine: secM,
		SpareMachine:     spareM,
		Wiring:           t.wiringFor(def),
		Policy:           pol,
		Placer:           t.placer,
		RearmInterval:    t.cfg.RearmInterval,
	})
	return g, nil
}

// producerOutputs returns the live output queues of the node (source or
// subjob) named in.
func (t *Topology) producerOutputs(in string) []*queue.Output {
	if s, ok := t.sources[in]; ok {
		return []*queue.Output{s.Out()}
	}
	if g, ok := t.groups[in]; ok {
		return g.LiveOutputs()
	}
	return nil
}

// wiringFor builds the lifecycle wiring closures for a DAG node.
func (t *Topology) wiringFor(def TopologySubjob) core.Wiring {
	return core.Wiring{
		UpstreamOutputs: func() []*queue.Output {
			var outs []*queue.Output
			for _, in := range def.Inputs {
				outs = append(outs, t.producerOutputs(in)...)
			}
			return outs
		},
		DownstreamTargets: func() []core.Target {
			var targets []core.Target
			for _, sj := range t.cfg.Subjobs {
				for _, in := range sj.Inputs {
					if in == def.ID {
						targets = append(targets, t.groups[sj.ID].ConsumerTargets(t.streamOf(in))...)
					}
				}
			}
			for _, sk := range t.cfg.Sinks {
				for _, in := range sk.Inputs {
					if in == def.ID {
						sink := t.sinks[sk.Name]
						targets = append(targets, core.Target{
							Node:   sink.Node(),
							Stream: subjob.DataStream(sink.ID(), t.streamOf(in)),
							Active: true,
							Part:   -1,
						})
					}
				}
			}
			return targets
		},
	}
}

// Start launches sinks and HA lifecycles, then the sources.
func (t *Topology) Start() error {
	for _, sk := range t.sinks {
		sk.Start()
	}
	for _, id := range t.order {
		if err := t.groups[id].HA.Start(); err != nil {
			return err
		}
	}
	for _, s := range t.sources {
		s.Start()
	}
	return nil
}

// Stop halts everything: sources first, then lifecycles (which own the
// copies and their HA apparatus) and the sinks.
func (t *Topology) Stop() {
	for _, s := range t.sources {
		s.Stop()
	}
	for _, id := range t.order {
		t.groups[id].HA.Stop()
	}
	for _, sk := range t.sinks {
		sk.Stop()
	}
}

// Source returns the source named name, or nil.
func (t *Topology) Source(name string) *cluster.Source { return t.sources[name] }

// Sink returns the sink named name, or nil.
func (t *Topology) Sink(name string) *cluster.Sink { return t.sinks[name] }

// Group returns the deployed subjob named id, or nil.
func (t *Topology) Group(id string) *Group { return t.groups[id] }

// Order returns the subjobs in topological order.
func (t *Topology) Order() []string { return append([]string(nil), t.order...) }
