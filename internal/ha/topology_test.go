package ha_test

import (
	"testing"
	"time"

	"streamha/internal/cluster"
	"streamha/internal/ha"
)

// diamondTopology builds source → split → {branch-a (hybrid), branch-b} →
// merge → sink through the DAG builder.
func diamondTopology(t *testing.T, mode ha.Mode) (*cluster.Cluster, *ha.Topology) {
	t.Helper()
	cl := cluster.New(cluster.Config{Latency: 100 * time.Microsecond})
	for _, id := range []string{"m-src", "m-sink", "m-split", "m-a", "m-a2", "m-b", "m-merge"} {
		cl.MustAddMachine(id)
	}
	topo, err := ha.NewTopology(ha.TopologyConfig{
		Cluster: cl,
		JobID:   "dag",
		Sources: []ha.TopologySource{{Name: "feed", Machine: "m-src", Rate: 2000}},
		Subjobs: []ha.TopologySubjob{
			{ID: "split", Inputs: []string{"feed"}, PEs: cheapPEs(1), Mode: ha.ModeNone, Primary: "m-split", BatchSize: 16},
			{ID: "a", Inputs: []string{"split"}, PEs: cheapPEs(1), Mode: mode, Primary: "m-a", Secondary: "m-a2", BatchSize: 16},
			{ID: "b", Inputs: []string{"split"}, PEs: cheapPEs(1), Mode: ha.ModeNone, Primary: "m-b", BatchSize: 16},
			{ID: "merge", Inputs: []string{"a", "b"}, PEs: cheapPEs(1), Mode: ha.ModeNone, Primary: "m-merge", BatchSize: 16},
		},
		Sinks: []ha.TopologySink{{Name: "out", Machine: "m-sink", Inputs: []string{"merge"}, TrackIDs: true}},
	})
	if err != nil {
		t.Fatalf("NewTopology: %v", err)
	}
	if err := topo.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		topo.Stop()
		cl.Close()
	})
	return cl, topo
}

// verifyDiamondDelivery checks every source ID reached the sink exactly
// twice (once per branch) with no gaps.
func verifyDiamondDelivery(t *testing.T, topo *ha.Topology, minIDs int) {
	t.Helper()
	sink := topo.Sink("out")
	counts := sink.IDCounts()
	if len(counts) < minIDs {
		t.Fatalf("sink saw %d ids, want at least %d", len(counts), minIDs)
	}
	var max uint64
	for id := range counts {
		if id > max {
			max = id
		}
	}
	for id := uint64(1); id <= max; id++ {
		if counts[id] != 2 {
			t.Fatalf("id %d delivered %d times, want 2 (one per branch)", id, counts[id])
		}
	}
	if _, gaps := sink.In().Drops(); gaps != 0 {
		t.Fatalf("%d gaps at sink", gaps)
	}
}

func TestTopologyDiamondSteadyState(t *testing.T) {
	_, topo := diamondTopology(t, ha.ModeNone)
	time.Sleep(700 * time.Millisecond)
	topo.Source("feed").Stop()
	time.Sleep(300 * time.Millisecond)
	verifyDiamondDelivery(t, topo, 800)
}

func TestTopologyDiamondHybridBranchSurvivesStall(t *testing.T) {
	cl, topo := diamondTopology(t, ha.ModeHybrid)
	time.Sleep(400 * time.Millisecond)

	cl.Machine("m-a").CPU().SetBackgroundLoad(1)
	time.Sleep(300 * time.Millisecond)
	cl.Machine("m-a").CPU().SetBackgroundLoad(0)
	time.Sleep(500 * time.Millisecond)
	topo.Source("feed").Stop()
	time.Sleep(400 * time.Millisecond)

	if len(topo.Group("a").HA.Switches()) == 0 {
		t.Fatal("hybrid branch never switched")
	}
	verifyDiamondDelivery(t, topo, 800)
}

func TestTopologyDiamondActiveBranch(t *testing.T) {
	cl, topo := diamondTopology(t, ha.ModeActive)
	time.Sleep(300 * time.Millisecond)
	cl.Machine("m-a").CPU().SetBackgroundLoad(1)
	time.Sleep(250 * time.Millisecond)
	cl.Machine("m-a").CPU().SetBackgroundLoad(0)
	time.Sleep(400 * time.Millisecond)
	topo.Source("feed").Stop()
	time.Sleep(300 * time.Millisecond)
	verifyDiamondDelivery(t, topo, 600)
}

func TestTopologyRejectsCycles(t *testing.T) {
	cl := cluster.New(cluster.Config{})
	defer cl.Close()
	for _, id := range []string{"m-src", "m-sink", "m-a", "m-b"} {
		cl.MustAddMachine(id)
	}
	_, err := ha.NewTopology(ha.TopologyConfig{
		Cluster: cl,
		JobID:   "dag",
		Sources: []ha.TopologySource{{Name: "s", Machine: "m-src", Rate: 100}},
		Subjobs: []ha.TopologySubjob{
			{ID: "a", Inputs: []string{"s", "b"}, PEs: cheapPEs(1), Primary: "m-a"},
			{ID: "b", Inputs: []string{"a"}, PEs: cheapPEs(1), Primary: "m-b"},
		},
		Sinks: []ha.TopologySink{{Name: "out", Machine: "m-sink", Inputs: []string{"b"}}},
	})
	if err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestTopologyRejectsUnknownInput(t *testing.T) {
	cl := cluster.New(cluster.Config{})
	defer cl.Close()
	for _, id := range []string{"m-src", "m-sink", "m-a"} {
		cl.MustAddMachine(id)
	}
	_, err := ha.NewTopology(ha.TopologyConfig{
		Cluster: cl,
		JobID:   "dag",
		Sources: []ha.TopologySource{{Name: "s", Machine: "m-src", Rate: 100}},
		Subjobs: []ha.TopologySubjob{
			{ID: "a", Inputs: []string{"ghost"}, PEs: cheapPEs(1), Primary: "m-a"},
		},
		Sinks: []ha.TopologySink{{Name: "out", Machine: "m-sink", Inputs: []string{"a"}}},
	})
	if err == nil {
		t.Fatal("unknown input accepted")
	}
}

func TestTopologyRejectsDuplicateNames(t *testing.T) {
	cl := cluster.New(cluster.Config{})
	defer cl.Close()
	for _, id := range []string{"m-src", "m-sink", "m-a"} {
		cl.MustAddMachine(id)
	}
	_, err := ha.NewTopology(ha.TopologyConfig{
		Cluster: cl,
		JobID:   "dag",
		Sources: []ha.TopologySource{{Name: "x", Machine: "m-src", Rate: 100}},
		Subjobs: []ha.TopologySubjob{
			{ID: "x", Inputs: []string{"x"}, PEs: cheapPEs(1), Primary: "m-a"},
		},
		Sinks: []ha.TopologySink{{Name: "out", Machine: "m-sink", Inputs: []string{"x"}}},
	})
	if err == nil {
		t.Fatal("duplicate node name accepted")
	}
}

func TestTopologyOrderIsTopological(t *testing.T) {
	_, topo := diamondTopology(t, ha.ModeNone)
	pos := map[string]int{}
	for i, id := range topo.Order() {
		pos[id] = i
	}
	if !(pos["split"] < pos["a"] && pos["split"] < pos["b"] && pos["a"] < pos["merge"] && pos["b"] < pos["merge"]) {
		t.Fatalf("order %v not topological", topo.Order())
	}
}

func TestTopologyRejectsUnknownSpare(t *testing.T) {
	cl := cluster.New(cluster.Config{})
	defer cl.Close()
	for _, id := range []string{"m-src", "m-sink", "m-a", "m-a2"} {
		cl.MustAddMachine(id)
	}
	_, err := ha.NewTopology(ha.TopologyConfig{
		Cluster: cl,
		JobID:   "dag",
		Sources: []ha.TopologySource{{Name: "s", Machine: "m-src", Rate: 100}},
		Subjobs: []ha.TopologySubjob{
			{ID: "a", Inputs: []string{"s"}, PEs: cheapPEs(1), Mode: ha.ModeHybrid,
				Primary: "m-a", Secondary: "m-a2", Spare: "ghost"},
		},
		Sinks: []ha.TopologySink{{Name: "out", Machine: "m-sink", Inputs: []string{"a"}}},
	})
	if err == nil {
		t.Fatal("unknown spare machine accepted")
	}
}
