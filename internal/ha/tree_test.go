package ha_test

// The paper's discussion section names tree-shaped PE topologies as future
// work. The runtime's queue layer supports them already: an output queue
// fans out to any number of downstream subscribers (each gating trims),
// and an input queue merges any number of upstream streams. This test
// wires a diamond topology by hand from the cluster primitives —
//
//	          ┌─> branch-a (hybrid) ─┐
//	source ─> split                  ├─> merge ─> sink
//	          └─> branch-b ──────────┘
//
// — protects one branch with the hybrid method, stalls its primary, and
// verifies exactly-once delivery on both branches end to end.

import (
	"testing"
	"time"

	"streamha/internal/checkpoint"
	"streamha/internal/cluster"
	"streamha/internal/core"
	"streamha/internal/pe"
	"streamha/internal/queue"
	"streamha/internal/subjob"
)

func treePEs(t *testing.T) []subjob.PESpec {
	t.Helper()
	return []subjob.PESpec{{
		Name:     "pe",
		NewLogic: func() pe.Logic { return &pe.CounterLogic{Pad: 5} },
		Cost:     20 * time.Microsecond,
	}}
}

func TestTreeTopologyWithHybridBranch(t *testing.T) {
	cl := cluster.New(cluster.Config{Latency: 100 * time.Microsecond})
	defer cl.Close()
	for _, id := range []string{"m-src", "m-sink", "m-split", "m-a", "m-a2", "m-b", "m-merge"} {
		cl.MustAddMachine(id)
	}
	clk := cl.Clock()

	// Streams: s0 source->split, sa split->branch-a, sb split->branch-b,
	// ma branch-a->merge, mb branch-b->merge, out merge->sink.
	src := cluster.NewSource(cluster.SourceConfig{
		Machine: cl.Machine("m-src"), Clock: clk, Stream: "s0", Rate: 2000,
	})

	split, err := subjob.New(subjob.Spec{
		JobID: "tree", ID: "tree/split",
		InStreams: []string{"s0"},
		Owners:    map[string]string{"s0": cluster.SourceOwner},
		OutStream: "sfan",
		PEs:       treePEs(t),
		BatchSize: 16,
	}, cl.Machine("m-split"), false)
	if err != nil {
		t.Fatal(err)
	}

	branchSpec := func(id string) subjob.Spec {
		return subjob.Spec{
			JobID: "tree", ID: "tree/" + id,
			InStreams: []string{"sfan"},
			Owners:    map[string]string{"sfan": "tree/split"},
			OutStream: "m" + id,
			PEs:       treePEs(t),
			BatchSize: 16,
		}
	}
	branchA, err := subjob.New(branchSpec("a"), cl.Machine("m-a"), false)
	if err != nil {
		t.Fatal(err)
	}
	branchB, err := subjob.New(branchSpec("b"), cl.Machine("m-b"), false)
	if err != nil {
		t.Fatal(err)
	}

	// The merge consumes both branch streams (fan-in).
	merge, err := subjob.New(subjob.Spec{
		JobID: "tree", ID: "tree/merge",
		InStreams: []string{"ma", "mb"},
		Owners:    map[string]string{"ma": "tree/a", "mb": "tree/b"},
		OutStream: "out",
		PEs:       treePEs(t),
		BatchSize: 16,
	}, cl.Machine("m-merge"), false)
	if err != nil {
		t.Fatal(err)
	}

	sink := cluster.NewSink(cluster.SinkConfig{
		Machine: cl.Machine("m-sink"), Clock: clk, ID: "tree/sink",
		InStreams:   []string{"out"},
		Owners:      map[string]string{"out": "tree/merge"},
		AckInterval: 10 * time.Millisecond,
		TrackIDs:    true,
	})

	for _, rt := range []*subjob.Runtime{split, branchA, branchB, merge} {
		rt.Start()
		defer rt.Stop()
	}
	sink.Start()
	defer sink.Stop()

	// Wiring. The split's single output queue fans out to BOTH branches:
	// each branch holds back trimming until it has acknowledged.
	src.Out().Subscribe("m-split", subjob.DataStream("tree/split", "s0"), true)
	split.Out().Subscribe("m-a", subjob.DataStream("tree/a", "sfan"), true)
	split.Out().Subscribe("m-b", subjob.DataStream("tree/b", "sfan"), true)
	branchA.Out().Subscribe("m-merge", subjob.DataStream("tree/merge", "ma"), true)
	branchB.Out().Subscribe("m-merge", subjob.DataStream("tree/merge", "mb"), true)
	merge.Out().Subscribe("m-sink", subjob.DataStream("tree/sink", "out"), true)

	// Ackers drive trims on the unprotected stages.
	for _, rt := range []*subjob.Runtime{split, branchB, merge} {
		a := checkpoint.NewAcker(rt, clk, 10*time.Millisecond)
		a.Start()
		defer a.Stop()
	}

	// Protect branch A with the hybrid method on machine m-a2.
	ctl := core.NewLifecycle(core.LifecycleConfig{
		Spec:             branchSpec("a"),
		Clock:            clk,
		Primary:          branchA,
		SecondaryMachine: cl.Machine("m-a2"),
		Wiring: core.Wiring{
			UpstreamOutputs: func() []*queue.Output { return []*queue.Output{split.Out()} },
			DownstreamTargets: func() []core.Target {
				return []core.Target{{Node: "m-merge", Stream: subjob.DataStream("tree/merge", "ma"), Active: true}}
			},
		},
		Policy: core.NewHybridPolicy(core.Options{}),
	})
	if err := ctl.Start(); err != nil {
		t.Fatal(err)
	}
	defer ctl.Stop()

	src.Start()
	defer src.Stop()
	time.Sleep(400 * time.Millisecond)

	// Stall branch A's primary; the hybrid standby takes over while branch
	// B is untouched.
	cl.Machine("m-a").CPU().SetBackgroundLoad(1)
	time.Sleep(300 * time.Millisecond)
	cl.Machine("m-a").CPU().SetBackgroundLoad(0)
	time.Sleep(500 * time.Millisecond)

	src.Stop()
	time.Sleep(400 * time.Millisecond)

	if len(ctl.Switches()) == 0 {
		t.Fatal("hybrid branch never switched during the stall")
	}

	// Exactly-once per branch: with selectivity-1 deterministic PEs, the
	// merge emits one element per branch per source element, and the two
	// branches produce distinct derived IDs only at the source level —
	// both branch outputs of a source element carry the same logical ID,
	// so each ID must be delivered exactly twice (once per branch).
	counts := sink.IDCounts()
	if len(counts) < 500 {
		t.Fatalf("sink saw %d distinct ids", len(counts))
	}
	var max uint64
	for id := range counts {
		if id > max {
			max = id
		}
	}
	missing, wrong := 0, 0
	for id := uint64(1); id <= max; id++ {
		switch counts[id] {
		case 2:
		case 0:
			missing++
		default:
			wrong++
		}
	}
	if missing > 0 || wrong > 0 {
		t.Fatalf("per-branch exactly-once violated: %d missing, %d wrong-count ids (max %d)", missing, wrong, max)
	}
	if _, gaps := sink.In().Drops(); gaps != 0 {
		t.Fatalf("sink recorded %d gaps", gaps)
	}
	if _, gaps := merge.In().Drops(); gaps != 0 {
		t.Fatalf("merge recorded %d gaps", gaps)
	}
}
