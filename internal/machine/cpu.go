// Package machine simulates the shared cluster machines of the paper's
// testbed: each machine executes the work of its hosted processing
// elements, checkpoint managers and heartbeat responders on a CPU whose
// available share shrinks when co-located background load spikes. A
// transient failure is nothing more than a background-load spike close to
// 100%, which slows every activity on the machine — including heartbeat
// replies — by orders of magnitude, exactly the symptom the paper's
// detectors observe.
package machine

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"streamha/internal/clock"
)

// minShare is the floor on the CPU share available to application
// activities. Even a machine at 100% background load makes infinitesimal
// progress, mirroring a real OS scheduler; the floor keeps sleeps finite.
const minShare = 0.002

// maxSlice bounds how long Execute sleeps before re-reading the load, so
// that load changes take effect quickly relative to experiment timescales.
// It is coarse enough to keep timer-wakeup churn low on small hosts.
const maxSlice = 3 * time.Millisecond

// CPU models one machine's processor. Application activities call Execute
// with the amount of CPU work they need; the wall-clock time taken is
// work / share, where share is the CPU fraction left over by background
// load, divided evenly among concurrently executing activities.
type CPU struct {
	clk clock.Clock

	mu      sync.Mutex
	bgLoad  float64
	stopped bool

	active   atomic.Int64
	workDone atomic.Int64 // executed app work in nanoseconds, for utilization sampling
}

// NewCPU returns a CPU driven by clk.
func NewCPU(clk clock.Clock) *CPU {
	return &CPU{clk: clk}
}

// SetBackgroundLoad sets the fraction of the CPU consumed by co-located
// background jobs, in [0, 1]. The failure injector raises this during
// transient unavailability.
func (c *CPU) SetBackgroundLoad(load float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bgLoad = math.Min(1, math.Max(0, load))
}

// BackgroundLoad returns the current injected background load.
func (c *CPU) BackgroundLoad() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bgLoad
}

// setStopped freezes (true) or thaws (false) the CPU. Execute calls on a
// stopped CPU abandon their remaining work and return, so that the
// goroutines of a fail-stopped machine can be torn down promptly.
func (c *CPU) setStopped(stopped bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped == stopped {
		return
	}
	c.stopped = stopped
}

// priorityShare returns the share for latency-sensitive work: everything
// the background leaves, regardless of app activity.
func (c *CPU) priorityShare() (float64, bool) {
	c.mu.Lock()
	bg := c.bgLoad
	stopped := c.stopped
	c.mu.Unlock()
	s := 1 - bg
	if s < minShare {
		s = minShare
	}
	return s, stopped
}

// share returns the CPU fraction currently available to one activity and
// whether the CPU is stopped.
func (c *CPU) share() (float64, bool) {
	c.mu.Lock()
	bg := c.bgLoad
	stopped := c.stopped
	c.mu.Unlock()
	n := c.active.Load()
	if n < 1 {
		n = 1
	}
	s := (1 - bg) / float64(n)
	if s < minShare {
		s = minShare
	}
	return s, stopped
}

// Execute consumes work CPU-time, sleeping for work scaled by the inverse
// of the available share. It re-reads the load every slice so that spikes
// starting or ending mid-execution take effect. If the CPU is stopped
// (machine crash), Execute abandons the remaining work and returns.
func (c *CPU) Execute(work time.Duration) {
	c.execute(work, false)
}

// ExecutePriority is Execute for short latency-sensitive work (heartbeat
// replies): it receives the full share left over by background load
// without splitting it with concurrently executing application
// activities, the way an OS scheduler favors a briefly-runnable
// interactive thread over long-running batch work. Background load still
// slows it down in full — which is precisely the signal heartbeat
// detection relies on.
func (c *CPU) ExecutePriority(work time.Duration) {
	c.execute(work, true)
}

func (c *CPU) execute(work time.Duration, priority bool) {
	if work <= 0 {
		return
	}
	if !priority {
		c.active.Add(1)
		defer c.active.Add(-1)
	}
	remaining := work
	for remaining > 0 {
		var s float64
		var stopped bool
		if priority {
			s, stopped = c.priorityShare()
		} else {
			s, stopped = c.share()
		}
		if stopped {
			return
		}
		wall := time.Duration(float64(remaining) / s)
		if wall > maxSlice {
			wall = maxSlice
		}
		if wall < 100*time.Microsecond {
			wall = 100 * time.Microsecond
		}
		// Account the measured sleep, not the requested one: kernel timer
		// slack routinely overshoots short sleeps, and charging only the
		// nominal duration would silently inflate every cost in the model.
		start := c.clk.Now()
		c.clk.Sleep(wall)
		elapsed := c.clk.Since(start)
		if elapsed < wall {
			elapsed = wall
		}
		done := time.Duration(float64(elapsed) * s)
		if done > remaining {
			done = remaining
		}
		remaining -= done
		c.workDone.Add(int64(done))
	}
}

// WorkDone returns the cumulative application work executed, in
// nanoseconds. The load monitor samples it to estimate app utilization.
func (c *CPU) WorkDone() time.Duration {
	return time.Duration(c.workDone.Load())
}

// Utilization returns the machine's instantaneous total CPU utilization
// estimate in [0, 1]: injected background load plus the share consumed by
// currently executing application activities.
func (c *CPU) Utilization() float64 {
	c.mu.Lock()
	bg := c.bgLoad
	c.mu.Unlock()
	app := 0.0
	if c.active.Load() > 0 {
		app = 1 - bg // active app work soaks up whatever the background leaves
	}
	return math.Min(1, bg+app)
}
