package machine

import (
	"fmt"
	"sync"
	"time"

	"streamha/internal/clock"
	"streamha/internal/transport"
)

// Machine is one simulated cluster machine. It owns a transport endpoint, a
// CPU, and a registry of stream handlers through which hosted components
// (subjob runtimes, checkpoint managers, detectors, responders) receive
// their messages.
type Machine struct {
	id  transport.NodeID
	clk clock.Clock
	cpu *CPU
	net transport.Network
	ep  transport.Endpoint

	mu        sync.RWMutex
	streams   map[string]transport.Handler
	crashed   bool
	closed    bool
	onCrash   []func()
	onRestart []func()
	stopOnce  sync.Once
}

// New registers a machine named id on the network and returns it.
func New(id string, clk clock.Clock, net transport.Network) (*Machine, error) {
	m := &Machine{
		id:      transport.NodeID(id),
		clk:     clk,
		cpu:     NewCPU(clk),
		net:     net,
		streams: make(map[string]transport.Handler),
	}
	ep, err := net.Register(m.id, m.handle)
	if err != nil {
		return nil, fmt.Errorf("machine %q: %w", id, err)
	}
	m.ep = ep
	return m, nil
}

// ID returns the machine's node ID.
func (m *Machine) ID() transport.NodeID { return m.id }

// Clock returns the machine's time source.
func (m *Machine) Clock() clock.Clock { return m.clk }

// CPU returns the machine's CPU model.
func (m *Machine) CPU() *CPU { return m.cpu }

// Send transmits msg to the node named to. Messages from a crashed machine
// are dropped by the network.
func (m *Machine) Send(to transport.NodeID, msg transport.Message) {
	_ = m.ep.Send(to, msg)
}

// RegisterStream routes incoming messages whose Stream field equals stream
// to h. Handlers must be light — heavy work belongs in component goroutines
// that call CPU().Execute — because one goroutine dispatches all of the
// machine's incoming messages in order.
func (m *Machine) RegisterStream(stream string, h transport.Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.streams[stream] = h
}

// UnregisterStream removes the handler for stream.
func (m *Machine) UnregisterStream(stream string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.streams, stream)
}

// OnCrash registers a hook invoked when the machine crashes. Components use
// it to halt their goroutines.
func (m *Machine) OnCrash(f func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onCrash = append(m.onCrash, f)
}

// OnRestart registers a hook invoked after the machine restarts. Unlike
// crash hooks — which are wiped by Restart along with all hosted state —
// restart hooks survive the crash/restart cycle; long-lived residents
// (scheduler replicas) use them to re-register their stream handlers.
func (m *Machine) OnRestart(f func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onRestart = append(m.onRestart, f)
}

// Crash fail-stops the machine: the network drops its traffic, its CPU
// freezes, and crash hooks run. Hosted state is lost from the cluster's
// point of view; recovery must redeploy.
func (m *Machine) Crash() {
	m.mu.Lock()
	if m.crashed {
		m.mu.Unlock()
		return
	}
	m.crashed = true
	hooks := append([]func(){}, m.onCrash...)
	m.mu.Unlock()

	m.net.SetDown(m.id, true)
	m.cpu.setStopped(true)
	for _, f := range hooks {
		f()
	}
}

// Restart brings a crashed machine back up with empty state. The
// coordinator is responsible for redeploying subjobs onto it.
func (m *Machine) Restart() {
	m.mu.Lock()
	if !m.crashed {
		m.mu.Unlock()
		return
	}
	m.crashed = false
	m.streams = make(map[string]transport.Handler)
	m.onCrash = nil
	hooks := append([]func(){}, m.onRestart...)
	m.mu.Unlock()

	m.cpu.setStopped(false)
	m.net.SetDown(m.id, false)
	for _, f := range hooks {
		f()
	}
}

// Crashed reports whether the machine is currently failed-stop.
func (m *Machine) Crashed() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.crashed
}

// Close deregisters the machine from the network, freeing its node id for
// reuse. The machine is unusable afterwards; callers must have stopped or
// migrated hosted components first.
func (m *Machine) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.streams = make(map[string]transport.Handler)
	m.onCrash = nil
	m.onRestart = nil
	m.mu.Unlock()
	return m.ep.Close()
}

func (m *Machine) handle(from transport.NodeID, msg transport.Message) {
	m.mu.RLock()
	crashed := m.crashed
	h := m.streams[msg.Stream]
	m.mu.RUnlock()
	if crashed || h == nil {
		return
	}
	h(from, msg)
}

// LoadMonitor periodically samples a CPU at a fine granularity, keeping a
// windowed estimate of total utilization. The benchmark failure detector
// reads it the way the paper's implementation reads /proc via system calls.
type LoadMonitor struct {
	cpu      *CPU
	clk      clock.Clock
	interval time.Duration

	mu       sync.Mutex
	lastWork time.Duration
	lastAt   time.Time
	util     float64
	stop     chan struct{}
	done     chan struct{}
}

// NewLoadMonitor starts a monitor sampling cpu every interval.
func NewLoadMonitor(cpu *CPU, clk clock.Clock, interval time.Duration) *LoadMonitor {
	lm := &LoadMonitor{
		cpu:      cpu,
		clk:      clk,
		interval: interval,
		lastWork: cpu.WorkDone(),
		lastAt:   clk.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go lm.run()
	return lm
}

func (lm *LoadMonitor) run() {
	defer close(lm.done)
	t := lm.clk.NewTicker(lm.interval)
	defer t.Stop()
	for {
		select {
		case <-lm.stop:
			return
		case <-t.C():
			lm.sample()
		}
	}
}

func (lm *LoadMonitor) sample() {
	now := lm.clk.Now()
	work := lm.cpu.WorkDone()
	lm.mu.Lock()
	defer lm.mu.Unlock()
	dt := now.Sub(lm.lastAt)
	if dt <= 0 {
		return
	}
	app := float64(work-lm.lastWork) / float64(dt)
	lm.lastWork = work
	lm.lastAt = now
	u := lm.cpu.BackgroundLoad() + app
	if u > 1 {
		u = 1
	}
	lm.util = u
}

// Utilization returns the most recent windowed utilization estimate.
func (lm *LoadMonitor) Utilization() float64 {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.util
}

// Stop halts the monitor's sampling goroutine.
func (lm *LoadMonitor) Stop() {
	select {
	case <-lm.stop:
	default:
		close(lm.stop)
	}
	<-lm.done
}
