package machine

import (
	"sync"
	"testing"
	"time"

	"streamha/internal/clock"
	"streamha/internal/transport"
)

func newTestMachine(t *testing.T) (*Machine, *transport.Mem) {
	t.Helper()
	net := transport.NewMem(transport.MemConfig{})
	t.Cleanup(net.Close)
	m, err := New("m1", clock.New(), net)
	if err != nil {
		t.Fatal(err)
	}
	return m, net
}

func TestExecuteTakesAboutWorkWhenIdle(t *testing.T) {
	m, _ := newTestMachine(t)
	const work = 30 * time.Millisecond
	start := time.Now()
	m.CPU().Execute(work)
	elapsed := time.Since(start)
	if elapsed < work || elapsed > 4*work {
		t.Fatalf("idle Execute(%v) took %v", work, elapsed)
	}
}

func TestExecuteSlowsWithBackgroundLoad(t *testing.T) {
	m, _ := newTestMachine(t)
	const work = 10 * time.Millisecond

	start := time.Now()
	m.CPU().Execute(work)
	idle := time.Since(start)

	m.CPU().SetBackgroundLoad(0.75)
	start = time.Now()
	m.CPU().Execute(work)
	loaded := time.Since(start)

	// At 75% background load the same work takes ~4x as long.
	if loaded < idle*2 {
		t.Fatalf("idle %v vs loaded %v: load had no effect", idle, loaded)
	}
}

func TestExecuteSharesAmongActivities(t *testing.T) {
	m, _ := newTestMachine(t)
	const work = 20 * time.Millisecond
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.CPU().Execute(work)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Two concurrent 20ms tasks on one CPU need ~40ms.
	if elapsed < 35*time.Millisecond {
		t.Fatalf("two concurrent tasks finished in %v: no contention modeled", elapsed)
	}
}

func TestExecutePriorityIgnoresAppContention(t *testing.T) {
	m, _ := newTestMachine(t)
	// Saturate with app activities.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					m.CPU().Execute(2 * time.Millisecond)
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	start := time.Now()
	m.CPU().ExecutePriority(2 * time.Millisecond)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if elapsed > 15*time.Millisecond {
		t.Fatalf("priority work took %v under app load", elapsed)
	}
}

func TestExecutePrioritySlowedByBackgroundLoad(t *testing.T) {
	m, _ := newTestMachine(t)
	m.CPU().SetBackgroundLoad(0.9)
	start := time.Now()
	m.CPU().ExecutePriority(2 * time.Millisecond)
	elapsed := time.Since(start)
	if elapsed < 15*time.Millisecond {
		t.Fatalf("priority work at 90%% load took only %v", elapsed)
	}
}

func TestCrashAbandonsExecution(t *testing.T) {
	m, _ := newTestMachine(t)
	m.CPU().SetBackgroundLoad(1) // near-stall: 10ms of work would take ~5s
	done := make(chan struct{})
	go func() {
		m.CPU().Execute(10 * time.Millisecond)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	m.Crash()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Execute did not abandon work on crash")
	}
}

func TestCrashDropsMessagesAndRestartRestores(t *testing.T) {
	net := transport.NewMem(transport.MemConfig{})
	defer net.Close()
	m, err := New("m1", clock.New(), net)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := New("m2", clock.New(), net)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	received := 0
	m.RegisterStream("s", func(transport.NodeID, transport.Message) {
		mu.Lock()
		received++
		mu.Unlock()
	})

	peer.Send(m.ID(), transport.Message{Stream: "s"})
	time.Sleep(5 * time.Millisecond)

	hookFired := false
	m.OnCrash(func() { hookFired = true })
	m.Crash()
	if !m.Crashed() || !hookFired {
		t.Fatal("crash state or hook wrong")
	}
	peer.Send(m.ID(), transport.Message{Stream: "s"})
	time.Sleep(5 * time.Millisecond)

	m.Restart()
	if m.Crashed() {
		t.Fatal("still crashed after restart")
	}
	// Handlers are cleared by restart; re-register.
	m.RegisterStream("s", func(transport.NodeID, transport.Message) {
		mu.Lock()
		received++
		mu.Unlock()
	})
	peer.Send(m.ID(), transport.Message{Stream: "s"})
	time.Sleep(5 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	if received != 2 {
		t.Fatalf("received %d, want 2 (crash window dropped)", received)
	}
}

func TestStreamRouting(t *testing.T) {
	m, _ := newTestMachine(t)
	peer, err := New("m2", clock.New(), mustNet(t, m))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	for _, s := range []string{"a", "b"} {
		s := s
		m.RegisterStream(s, func(_ transport.NodeID, msg transport.Message) {
			mu.Lock()
			got = append(got, s+":"+msg.Command)
			mu.Unlock()
		})
	}
	peer.Send(m.ID(), transport.Message{Stream: "b", Command: "x"})
	peer.Send(m.ID(), transport.Message{Stream: "a", Command: "y"})
	peer.Send(m.ID(), transport.Message{Stream: "unknown", Command: "z"})
	time.Sleep(5 * time.Millisecond)
	mu.Lock()
	if len(got) != 2 || got[0] != "b:x" || got[1] != "a:y" {
		mu.Unlock()
		t.Fatalf("routing got %v", got)
	}
	mu.Unlock()

	m.UnregisterStream("a")
	peer.Send(m.ID(), transport.Message{Stream: "a"})
	time.Sleep(5 * time.Millisecond)
	mu.Lock()
	if len(got) != 2 {
		mu.Unlock()
		t.Fatal("unregistered stream still routed")
	}
	mu.Unlock()
}

// mustNet extracts the network a machine was registered on via a second
// registration — helper keeping tests independent of struct internals.
func mustNet(t *testing.T, m *Machine) transport.Network {
	t.Helper()
	return m.net
}

func TestLoadMonitorTracksBackgroundAndAppLoad(t *testing.T) {
	m, _ := newTestMachine(t)
	lm := NewLoadMonitor(m.CPU(), clock.New(), 5*time.Millisecond)
	defer lm.Stop()

	time.Sleep(20 * time.Millisecond)
	if u := lm.Utilization(); u > 0.2 {
		t.Fatalf("idle utilization %f", u)
	}

	m.CPU().SetBackgroundLoad(0.8)
	time.Sleep(25 * time.Millisecond)
	if u := lm.Utilization(); u < 0.7 {
		t.Fatalf("loaded utilization %f, want >= 0.7", u)
	}
}

func TestUtilizationInstantaneous(t *testing.T) {
	m, _ := newTestMachine(t)
	if u := m.CPU().Utilization(); u != 0 {
		t.Fatalf("idle util %f", u)
	}
	m.CPU().SetBackgroundLoad(0.5)
	if u := m.CPU().Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("bg util %f", u)
	}
	done := make(chan struct{})
	go func() {
		m.CPU().Execute(50 * time.Millisecond)
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	if u := m.CPU().Utilization(); u < 0.99 {
		t.Fatalf("busy util %f, want ~1", u)
	}
	<-done
}
