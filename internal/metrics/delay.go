package metrics

import (
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync/atomic"
	"time"
	"unsafe"
)

// DelayStats is striped across shards so concurrent Add calls from the
// data plane do not contend on one lock, and each shard keeps a
// fixed-size reservoir sample instead of the full history, so quantile
// queries cost O(reservoir) regardless of how many samples were recorded.
const (
	// maxShards bounds the stripe width (and the zero-value footprint).
	maxShards = 32
	// reservoirCap is the per-shard reservoir size. With uniform
	// (Algorithm R) sampling the standard error of a mid-range quantile
	// estimate is sqrt(p(1-p)/k) ≈ 0.8 percentile points at k=4096.
	reservoirCap = 4096
)

// numShards is the stripe width used at runtime: GOMAXPROCS at package
// init, rounded up to a power of two and clamped to [8, maxShards]. The
// floor keeps Add scalable when tests raise GOMAXPROCS after init.
var numShards = func() int {
	n := runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	if n > maxShards {
		n = maxShards
	}
	return 1 << bits.Len(uint(n-1))
}()

// reservoir is a fixed block of sample slots, written and read with
// atomics so live polling never blocks the writers.
type reservoir [reservoirCap]atomic.Int64

// delayShard is one stripe: exact count/sum/max counters plus a uniform
// reservoir of sample values. Padded to two cache lines so neighboring
// shards do not false-share.
type delayShard struct {
	count atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
	res   atomic.Pointer[reservoir]
	_     [128 - 4*8]byte
}

// mix64 is the splitmix64 finalizer: a bijective bit mixer whose output on
// a counter input passes as uniform. Feeding it (goroutine stack address,
// sample index) makes a counter-based RNG with zero shared state, so the
// reservoir draw in Add costs no atomics.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// DelayStats accumulates per-element delay samples, safe for concurrent
// use. Add is lock-free: counters are striped per shard and each shard
// retains a fixed-size uniform reservoir (Algorithm R) of sample values,
// so memory stays constant no matter how many samples are recorded and a
// dashboard can poll Mean/Percentile live without perturbing the
// pipeline it measures.
//
// Readers are weakly consistent with concurrent writers: a poll may
// observe a sample's count before its value, so live Mean/Percentile
// results can lag by the handful of samples in flight. Once writers
// quiesce, all read methods are exact (and Percentile matches the seed's
// nearest-rank over the full history whenever no shard has overflowed
// its reservoir).
//
// The zero value is ready to use.
type DelayStats struct {
	shards [maxShards]delayShard
}

// Add records one delay sample.
//
// The shard is picked by hashing the address of a stack local: goroutine
// stacks live in distinct allocations, so distinct goroutines land on
// distinct shards with high probability.
func (d *DelayStats) Add(v time.Duration) {
	var probe byte
	p := uintptr(unsafe.Pointer(&probe))
	s := &d.shards[int((p>>11)*0x9E3779B97F4A7C15>>32)&(numShards-1)]
	n := s.count.Add(1)
	s.sum.Add(int64(v))
	for {
		cur := s.max.Load()
		if int64(v) <= cur {
			break
		}
		if s.max.CompareAndSwap(cur, int64(v)) {
			break
		}
	}
	res := s.res.Load()
	if res == nil {
		fresh := new(reservoir)
		if s.res.CompareAndSwap(nil, fresh) {
			res = fresh
		} else {
			res = s.res.Load()
		}
	}
	if n <= reservoirCap {
		res[n-1].Store(int64(v))
		return
	}
	// Algorithm R: the i-th sample replaces a random slot with
	// probability reservoirCap/i, keeping the reservoir uniform. The draw
	// hashes (stack address, sample index) — no shared RNG state — and
	// maps into [0, n) by multiply-high instead of modulo.
	r := mix64(uint64(p) + uint64(n)*0x9E3779B97F4A7C15)
	if j, _ := bits.Mul64(r, uint64(n)); j < reservoirCap {
		res[j].Store(int64(v))
	}
}

// Count returns the number of samples recorded.
func (d *DelayStats) Count() int {
	var n int64
	for i := 0; i < numShards; i++ {
		n += d.shards[i].count.Load()
	}
	return int(n)
}

// Mean returns the mean delay, or zero with no samples.
func (d *DelayStats) Mean() time.Duration {
	var n, sum int64
	for i := 0; i < numShards; i++ {
		n += d.shards[i].count.Load()
		sum += d.shards[i].sum.Load()
	}
	if n == 0 {
		return 0
	}
	return time.Duration(sum / n)
}

// Max returns the largest sample. Max is tracked exactly, outside the
// reservoir, so it never degrades under sampling.
func (d *DelayStats) Max() time.Duration {
	var m int64
	for i := 0; i < numShards; i++ {
		if v := d.shards[i].max.Load(); v > m {
			m = v
		}
	}
	return time.Duration(m)
}

// Window marks a position in the sample stream, used to exclude warm-up
// from mean calculations.
type Window struct {
	count int64
	sum   int64
}

// Window captures the current count/sum position. Pass it to MeanSince
// later to average only the samples recorded after this point.
func (d *DelayStats) Window() Window {
	var w Window
	for i := 0; i < numShards; i++ {
		w.count += d.shards[i].count.Load()
		w.sum += d.shards[i].sum.Load()
	}
	return w
}

// MeanSince returns the mean over samples recorded after w was captured,
// or zero if none were.
func (d *DelayStats) MeanSince(w Window) time.Duration {
	cur := d.Window()
	n := cur.count - w.count
	if n <= 0 {
		return 0
	}
	return time.Duration((cur.sum - w.sum) / n)
}

// weighted is one merged sketch sample: a value and the number of
// recorded samples it stands for (shard count / reservoir size).
type weighted struct {
	v int64
	w float64
}

// merged collects every shard's reservoir into one weighted sample set.
// A shard that recorded more samples than its reservoir holds contributes
// each retained value with proportionally higher weight.
func (d *DelayStats) merged() (samples []weighted, total float64) {
	for i := 0; i < numShards; i++ {
		s := &d.shards[i]
		c := s.count.Load()
		if c == 0 {
			continue
		}
		res := s.res.Load()
		if res == nil {
			continue
		}
		k := c
		if k > reservoirCap {
			k = reservoirCap
		}
		w := float64(c) / float64(k)
		for j := int64(0); j < k; j++ {
			samples = append(samples, weighted{v: res[j].Load(), w: w})
		}
		total += float64(c)
	}
	return samples, total
}

// Percentile returns the p-th percentile by the nearest-rank convention:
// the smallest recorded value whose rank r satisfies r >= round(p/100*n)
// (with the rank clamped to [1, n]). p outside (0, 100] returns 0.
// Percentile(100) always returns Max exactly; other quantiles are
// computed from the merged reservoirs, which is exact until a shard
// overflows reservoirCap and a tight estimate afterwards. Cost is
// O(reservoir log reservoir), independent of the total sample count.
func (d *DelayStats) Percentile(p float64) time.Duration {
	if p <= 0 || p > 100 {
		return 0
	}
	if p == 100 {
		return d.Max()
	}
	q := d.quantiles(p)
	return q[0]
}

// Quantiles returns the percentile for each of ps with a single merge and
// sort of the reservoirs. Each p follows the same convention as
// Percentile.
func (d *DelayStats) Quantiles(ps ...float64) []time.Duration {
	return d.quantiles(ps...)
}

func (d *DelayStats) quantiles(ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	samples, total := d.merged()
	if len(samples) == 0 {
		for i, p := range ps {
			if p == 100 {
				out[i] = d.Max()
			}
		}
		return out
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].v < samples[j].v })
	for i, p := range ps {
		switch {
		case p <= 0 || p > 100:
			out[i] = 0
		case p == 100:
			out[i] = d.Max()
		default:
			rank := math.Floor(p/100*total + 0.5)
			if rank < 1 {
				rank = 1
			}
			if rank > total {
				rank = total
			}
			cum := 0.0
			v := samples[len(samples)-1].v
			for _, s := range samples {
				cum += s.w
				if cum >= rank {
					v = s.v
					break
				}
			}
			out[i] = time.Duration(v)
		}
	}
	return out
}

// Sampled reports whether any shard has recorded more samples than its
// reservoir retains, i.e. whether quantiles are estimates rather than
// exact.
func (d *DelayStats) Sampled() bool {
	for i := 0; i < numShards; i++ {
		if d.shards[i].count.Load() > reservoirCap {
			return true
		}
	}
	return false
}

// DelaySnapshot is a JSON-marshalable point-in-time view of a DelayStats,
// exported through the metrics Registry.
type DelaySnapshot struct {
	Count   int64   `json:"count"`
	MeanMS  float64 `json:"mean_ms"`
	MaxMS   float64 `json:"max_ms"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
	Sampled bool    `json:"sampled"`
}

// Snapshot captures count, mean, max and the 50/95/99th percentiles in
// one pass over the reservoirs.
func (d *DelayStats) Snapshot() DelaySnapshot {
	q := d.quantiles(50, 95, 99)
	ms := func(v time.Duration) float64 { return float64(v) / 1e6 }
	return DelaySnapshot{
		Count:   int64(d.Count()),
		MeanMS:  ms(d.Mean()),
		MaxMS:   ms(d.Max()),
		P50MS:   ms(q[0]),
		P95MS:   ms(q[1]),
		P99MS:   ms(q[2]),
		Sampled: d.Sampled(),
	}
}
