package metrics

import (
	"encoding/json"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// refPercentile is the seed implementation's nearest-rank percentile over
// the full sample history, used as the exactness/accuracy reference.
func refPercentile(samples []time.Duration, p float64) time.Duration {
	n := len(samples)
	if n == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p/100*float64(n)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return sorted[rank]
}

func TestPercentileRejectsOutOfRange(t *testing.T) {
	var d DelayStats
	for i := 1; i <= 10; i++ {
		d.Add(time.Duration(i) * time.Millisecond)
	}
	for _, p := range []float64{0, -1, -100, 100.001, 101, 1e9} {
		if got := d.Percentile(p); got != 0 {
			t.Fatalf("Percentile(%v) = %v, want 0 for out-of-range p", p, got)
		}
	}
}

func TestPercentileBoundaries(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	cases := []struct {
		name    string
		samples []time.Duration
		want    map[float64]time.Duration
	}{
		{
			name:    "single",
			samples: []time.Duration{ms(42)},
			want:    map[float64]time.Duration{0.1: ms(42), 50: ms(42), 99: ms(42), 100: ms(42)},
		},
		{
			name:    "pair",
			samples: []time.Duration{ms(20), ms(10)},
			want:    map[float64]time.Duration{0.1: ms(10), 50: ms(10), 99: ms(20), 100: ms(20)},
		},
		{
			name:    "odd",
			samples: []time.Duration{ms(30), ms(10), ms(50), ms(20), ms(40)},
			want:    map[float64]time.Duration{0.1: ms(10), 50: ms(30), 99: ms(50), 100: ms(50)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d DelayStats
			for _, v := range tc.samples {
				d.Add(v)
			}
			for p, want := range tc.want {
				if got := d.Percentile(p); got != want {
					t.Errorf("p%g = %v, want %v", p, got, want)
				}
				if ref := refPercentile(tc.samples, p); ref != want {
					t.Errorf("reference disagrees at p%g: %v vs want %v", p, ref, want)
				}
			}
		})
	}
}

// TestPercentileExactWhileUnsampled verifies that concurrent adds spread
// across shards still produce the exact nearest-rank percentile as long
// as no shard overflows its reservoir.
func TestPercentileExactWhileUnsampled(t *testing.T) {
	var d DelayStats
	const (
		writers   = 8
		perWriter = 500
	)
	all := make([]time.Duration, 0, writers*perWriter)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			local := make([]time.Duration, 0, perWriter)
			for i := 0; i < perWriter; i++ {
				v := time.Duration(rng.Intn(1_000_000)) * time.Microsecond
				d.Add(v)
				local = append(local, v)
			}
			mu.Lock()
			all = append(all, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if d.Sampled() {
		t.Fatal("reservoirs overflowed with only 4000 samples")
	}
	for _, p := range []float64{0.1, 10, 50, 90, 99, 100} {
		if got, want := d.Percentile(p), refPercentile(all, p); got != want {
			t.Fatalf("p%g = %v, want exact %v", p, got, want)
		}
	}
}

// TestSketchAccuracy bounds the reservoir estimate's quantile error
// against the exact nearest-rank percentile on 100k samples, where the
// sketch retains at most a few reservoirs' worth of values.
func TestSketchAccuracy(t *testing.T) {
	const n = 100_000
	var d DelayStats
	all := make([]time.Duration, 0, n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		// Uniform values: quantile error maps directly onto rank error.
		v := time.Duration(rng.Intn(n)) * time.Microsecond
		d.Add(v)
		all = append(all, v)
	}
	if !d.Sampled() {
		t.Fatal("100k samples should overflow the reservoirs")
	}
	// Uniform reservoir sampling at k=4096 has rank standard error
	// sqrt(p(1-p)/k) <= 0.8 percentile points; 4 points is > 5 sigma.
	const tolerance = 4.0 / 100.0 * n * float64(time.Microsecond)
	for _, p := range []float64{10, 25, 50, 75, 90, 99} {
		got := float64(d.Percentile(p))
		want := float64(refPercentile(all, p))
		if diff := got - want; diff < -tolerance || diff > tolerance {
			t.Errorf("p%g estimate %v vs exact %v exceeds tolerance", p, time.Duration(int64(got)), time.Duration(int64(want)))
		}
	}
	if got, want := d.Percentile(100), refPercentile(all, 100); got != want {
		t.Errorf("p100 must stay exact under sampling: %v vs %v", got, want)
	}
}

// TestDelayStatsConcurrentPolling hammers Add from parallel writers while
// a reader polls live statistics, then checks the exact counters. Run
// under -race this exercises the lock-free paths.
func TestDelayStatsConcurrentPolling(t *testing.T) {
	var d DelayStats
	const (
		writers   = 8
		perWriter = 20_000
		maxVal    = 100 * time.Millisecond
	)
	var wantSum int64
	var mu sync.Mutex
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	pollers.Add(1)
	go func() {
		defer pollers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if m := d.Mean(); m < 0 || m > maxVal {
				t.Errorf("live Mean out of range: %v", m)
				return
			}
			p50, p99 := d.Percentile(50), d.Percentile(99)
			if p50 < 0 || p99 < p50 && d.Count() > 0 && !d.Sampled() {
				t.Errorf("live percentiles inconsistent: p50=%v p99=%v", p50, p99)
				return
			}
			d.Snapshot()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var sum int64
			for i := 0; i < perWriter; i++ {
				v := time.Duration(rng.Int63n(int64(maxVal)))
				d.Add(v)
				sum += int64(v)
			}
			mu.Lock()
			wantSum += sum
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	close(stop)
	pollers.Wait()

	if got := d.Count(); got != writers*perWriter {
		t.Fatalf("Count = %d, want %d", got, writers*perWriter)
	}
	if got, want := d.Mean(), time.Duration(wantSum/int64(writers*perWriter)); got != want {
		t.Fatalf("Mean = %v, want exact %v", got, want)
	}
	if m := d.Max(); m <= 0 || m >= maxVal {
		t.Fatalf("Max = %v out of range", m)
	}
	if p50 := d.Percentile(50); p50 <= 0 || p50 >= maxVal {
		t.Fatalf("p50 = %v out of range", p50)
	}
}

func TestDelaySnapshotJSON(t *testing.T) {
	var d DelayStats
	for i := 1; i <= 100; i++ {
		d.Add(time.Duration(i) * time.Millisecond)
	}
	snap := d.Snapshot()
	if snap.Count != 100 || snap.MeanMS != 50.5 || snap.P50MS != 50 || snap.P99MS != 99 || snap.MaxMS != 100 {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap.Sampled {
		t.Fatal("100 samples must not be marked sampled")
	}
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back DelaySnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != snap {
		t.Fatalf("JSON round trip: %+v != %+v", back, snap)
	}
}

func TestQuantilesSingleMerge(t *testing.T) {
	var d DelayStats
	for i := 1; i <= 1000; i++ {
		d.Add(time.Duration(i) * time.Microsecond)
	}
	qs := d.Quantiles(50, 95, 99, 100)
	for i, p := range []float64{50, 95, 99, 100} {
		if want := d.Percentile(p); qs[i] != want {
			t.Fatalf("Quantiles[%d] = %v, Percentile(%g) = %v", i, qs[i], p, want)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	var d DelayStats
	d.Add(10 * time.Millisecond)
	r.Register("sink/delays", func() any { return d.Snapshot() })
	r.Register("static", func() any { return map[string]int{"x": 1} })
	if got := r.Names(); len(got) != 2 || got[0] != "sink/delays" || got[1] != "static" {
		t.Fatalf("names %v", got)
	}
	snap := r.Snapshot()
	if ds, ok := snap["sink/delays"].(DelaySnapshot); !ok || ds.Count != 1 {
		t.Fatalf("snapshot entry %+v", snap["sink/delays"])
	}
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("registry JSON not valid: %v\n%s", err, b)
	}
	if len(decoded) != 2 {
		t.Fatalf("JSON keys %v", decoded)
	}
	r.Unregister("static")
	if got := r.Names(); len(got) != 1 {
		t.Fatalf("names after unregister %v", got)
	}
	// A zero-value registry must be usable too.
	var zero Registry
	zero.Register("a", func() any { return 1 })
	if len(zero.Snapshot()) != 1 {
		t.Fatal("zero-value registry broken")
	}
}
