// Package metrics collects the measurements the paper's evaluation
// reports: per-element end-to-end delay statistics, empirical CDFs, and
// recovery-time decompositions.
package metrics

import (
	"sort"
	"sync"
	"time"
)

// DelayStats accumulates per-element delay samples, safe for concurrent
// use. Samples are retained so that percentiles and CDFs can be computed.
type DelayStats struct {
	mu      sync.Mutex
	samples []time.Duration
	sum     time.Duration
	max     time.Duration
}

// Add records one delay sample.
func (d *DelayStats) Add(v time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.samples = append(d.samples, v)
	d.sum += v
	if v > d.max {
		d.max = v
	}
}

// Count returns the number of samples.
func (d *DelayStats) Count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.samples)
}

// Mean returns the mean delay, or zero with no samples.
func (d *DelayStats) Mean() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum / time.Duration(len(d.samples))
}

// Max returns the largest sample.
func (d *DelayStats) Max() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.max
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank over the recorded samples.
func (d *DelayStats) Percentile(p float64) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), d.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p/100*float64(n)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return sorted[rank]
}

// MeanSince returns the mean over samples recorded after the first skip
// samples — used to exclude warm-up.
func (d *DelayStats) MeanSince(skip int) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if skip < 0 {
		skip = 0
	}
	if skip >= len(d.samples) {
		return 0
	}
	var sum time.Duration
	for _, v := range d.samples[skip:] {
		sum += v
	}
	return sum / time.Duration(len(d.samples)-skip)
}

// Samples returns a copy of all samples.
func (d *DelayStats) Samples() []time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]time.Duration(nil), d.samples...)
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF computes the empirical CDF of values, one point per sample.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// FractionBelow returns the fraction of values strictly below x.
func FractionBelow(values []float64, x float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v < x {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// Recovery decomposes one failure recovery the way Figures 7 and 8 do:
// detection, redeployment (passive standby) or resume (hybrid), and
// retransmission/reprocessing until the first new output.
type Recovery struct {
	// FailureAt is when the transient failure began (ground truth).
	FailureAt time.Time
	// DetectedAt is when the detector declared it.
	DetectedAt time.Time
	// ReadyAt is when the recovery copy was running (deployed and connected
	// for PS; resumed for hybrid).
	ReadyAt time.Time
	// FirstOutputAt is when the first post-recovery new output reached the
	// sink.
	FirstOutputAt time.Time
}

// Detection returns the detection phase duration.
func (r Recovery) Detection() time.Duration { return r.DetectedAt.Sub(r.FailureAt) }

// Deploy returns the redeployment/resume phase duration.
func (r Recovery) Deploy() time.Duration { return r.ReadyAt.Sub(r.DetectedAt) }

// Reprocess returns the retransmission/reprocessing phase duration.
func (r Recovery) Reprocess() time.Duration { return r.FirstOutputAt.Sub(r.ReadyAt) }

// Total returns the full recovery time: failure inception to first new
// output.
func (r Recovery) Total() time.Duration { return r.FirstOutputAt.Sub(r.FailureAt) }

// RecoveryLog accumulates recovery records, safe for concurrent use.
type RecoveryLog struct {
	mu      sync.Mutex
	records []Recovery
}

// Add appends one record.
func (l *RecoveryLog) Add(r Recovery) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append(l.records, r)
}

// Records returns a copy of all records.
func (l *RecoveryLog) Records() []Recovery {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Recovery(nil), l.records...)
}

// MeanPhases returns the mean of each phase over the records.
func (l *RecoveryLog) MeanPhases() (detection, deploy, reprocess time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.records) == 0 {
		return 0, 0, 0
	}
	for _, r := range l.records {
		detection += r.Detection()
		deploy += r.Deploy()
		reprocess += r.Reprocess()
	}
	n := time.Duration(len(l.records))
	return detection / n, deploy / n, reprocess / n
}
