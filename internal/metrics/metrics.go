// Package metrics collects the measurements the paper's evaluation
// reports — per-element end-to-end delay statistics, empirical CDFs, and
// recovery-time decompositions — and aggregates them, with every other
// component's counters, into a live-pollable Registry. DelayStats (the
// hot, per-element path) lives in delay.go; the Registry in registry.go.
package metrics

import (
	"sort"
	"sync"
	"time"
)

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF computes the empirical CDF of values, one point per sample.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// FractionBelow returns the fraction of values strictly below x.
func FractionBelow(values []float64, x float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v < x {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// Recovery decomposes one failure recovery the way Figures 7 and 8 do:
// detection, redeployment (passive standby) or resume (hybrid), and
// retransmission/reprocessing until the first new output.
type Recovery struct {
	// FailureAt is when the transient failure began (ground truth).
	FailureAt time.Time
	// DetectedAt is when the detector declared it.
	DetectedAt time.Time
	// ReadyAt is when the recovery copy was running (deployed and connected
	// for PS; resumed for hybrid).
	ReadyAt time.Time
	// FirstOutputAt is when the first post-recovery new output reached the
	// sink.
	FirstOutputAt time.Time
}

// Detection returns the detection phase duration.
func (r Recovery) Detection() time.Duration { return r.DetectedAt.Sub(r.FailureAt) }

// Deploy returns the redeployment/resume phase duration.
func (r Recovery) Deploy() time.Duration { return r.ReadyAt.Sub(r.DetectedAt) }

// Reprocess returns the retransmission/reprocessing phase duration.
func (r Recovery) Reprocess() time.Duration { return r.FirstOutputAt.Sub(r.ReadyAt) }

// Total returns the full recovery time: failure inception to first new
// output.
func (r Recovery) Total() time.Duration { return r.FirstOutputAt.Sub(r.FailureAt) }

// RecoveryLog accumulates recovery records, safe for concurrent use.
type RecoveryLog struct {
	mu      sync.Mutex
	records []Recovery
}

// Add appends one record.
func (l *RecoveryLog) Add(r Recovery) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append(l.records, r)
}

// Records returns a copy of all records.
func (l *RecoveryLog) Records() []Recovery {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Recovery(nil), l.records...)
}

// RecoverySnapshot is a JSON-marshalable summary of a RecoveryLog,
// exported through the metrics Registry.
type RecoverySnapshot struct {
	Recoveries    int     `json:"recoveries"`
	DetectionMS   float64 `json:"mean_detection_ms"`
	DeployMS      float64 `json:"mean_deploy_ms"`
	ReprocessMS   float64 `json:"mean_reprocess_ms"`
	LastTotalMS   float64 `json:"last_total_ms"`
	LastFailureAt string  `json:"last_failure_at,omitempty"`
}

// Snapshot summarizes the log: record count, mean phase durations, and
// the most recent recovery.
func (l *RecoveryLog) Snapshot() RecoverySnapshot {
	det, dep, rep := l.MeanPhases()
	ms := func(v time.Duration) float64 { return float64(v) / 1e6 }
	s := RecoverySnapshot{
		DetectionMS: ms(det),
		DeployMS:    ms(dep),
		ReprocessMS: ms(rep),
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s.Recoveries = len(l.records)
	if n := len(l.records); n > 0 {
		last := l.records[n-1]
		s.LastTotalMS = ms(last.Total())
		s.LastFailureAt = last.FailureAt.Format(time.RFC3339Nano)
	}
	return s
}

// MeanPhases returns the mean of each phase over the records.
func (l *RecoveryLog) MeanPhases() (detection, deploy, reprocess time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.records) == 0 {
		return 0, 0, 0
	}
	for _, r := range l.records {
		detection += r.Detection()
		deploy += r.Deploy()
		reprocess += r.Reprocess()
	}
	n := time.Duration(len(l.records))
	return detection / n, deploy / n, reprocess / n
}
