package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDelayStatsBasics(t *testing.T) {
	var d DelayStats
	if d.Mean() != 0 || d.Count() != 0 || d.Percentile(50) != 0 {
		t.Fatal("empty stats not zero")
	}
	for _, v := range []time.Duration{10, 20, 30} {
		d.Add(v * time.Millisecond)
	}
	if d.Count() != 3 || d.Mean() != 20*time.Millisecond || d.Max() != 30*time.Millisecond {
		t.Fatalf("count=%d mean=%v max=%v", d.Count(), d.Mean(), d.Max())
	}
}

func TestDelayStatsPercentile(t *testing.T) {
	var d DelayStats
	for i := 1; i <= 100; i++ {
		d.Add(time.Duration(i) * time.Millisecond)
	}
	if got := d.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := d.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := d.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
}

func TestDelayStatsMeanSince(t *testing.T) {
	var d DelayStats
	for _, v := range []time.Duration{100, 100} {
		d.Add(v * time.Millisecond)
	}
	warmup := d.Window()
	for _, v := range []time.Duration{10, 20, 30} {
		d.Add(v * time.Millisecond)
	}
	if got := d.MeanSince(warmup); got != 20*time.Millisecond {
		t.Fatalf("MeanSince(warmup) = %v", got)
	}
	if got := d.MeanSince(d.Window()); got != 0 {
		t.Fatalf("MeanSince with nothing after = %v", got)
	}
	var zero Window
	if got := d.MeanSince(zero); got != 52*time.Millisecond {
		t.Fatalf("MeanSince(zero) = %v", got)
	}
}

func TestPercentileIsMonotoneProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var d DelayStats
		for _, v := range vals {
			d.Add(time.Duration(v) * time.Microsecond)
		}
		last := time.Duration(-1)
		for _, p := range []float64{1, 25, 50, 75, 99, 100} {
			v := d.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return d.Percentile(100) == d.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("points %d", len(pts))
	}
	if pts[0].Value != 1 || pts[0].Fraction != 1.0/3 {
		t.Fatalf("first point %+v", pts[0])
	}
	if pts[2].Value != 3 || pts[2].Fraction != 1 {
		t.Fatalf("last point %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF must be nil")
	}
}

func TestFractionBelow(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	if got := FractionBelow(vals, 3); got != 0.5 {
		t.Fatalf("got %f", got)
	}
	if got := FractionBelow(nil, 3); got != 0 {
		t.Fatalf("empty got %f", got)
	}
}

func TestRecoveryPhases(t *testing.T) {
	t0 := time.Unix(0, 0)
	r := Recovery{
		FailureAt:     t0,
		DetectedAt:    t0.Add(10 * time.Millisecond),
		ReadyAt:       t0.Add(15 * time.Millisecond),
		FirstOutputAt: t0.Add(18 * time.Millisecond),
	}
	if r.Detection() != 10*time.Millisecond || r.Deploy() != 5*time.Millisecond ||
		r.Reprocess() != 3*time.Millisecond || r.Total() != 18*time.Millisecond {
		t.Fatalf("phases %v %v %v %v", r.Detection(), r.Deploy(), r.Reprocess(), r.Total())
	}
}

func TestRecoveryLogMeanPhases(t *testing.T) {
	var l RecoveryLog
	d0, d1, d2 := l.MeanPhases()
	if d0 != 0 || d1 != 0 || d2 != 0 {
		t.Fatal("empty log means not zero")
	}
	t0 := time.Unix(0, 0)
	l.Add(Recovery{FailureAt: t0, DetectedAt: t0.Add(10 * time.Millisecond), ReadyAt: t0.Add(20 * time.Millisecond), FirstOutputAt: t0.Add(30 * time.Millisecond)})
	l.Add(Recovery{FailureAt: t0, DetectedAt: t0.Add(20 * time.Millisecond), ReadyAt: t0.Add(40 * time.Millisecond), FirstOutputAt: t0.Add(60 * time.Millisecond)})
	det, dep, rep := l.MeanPhases()
	if det != 15*time.Millisecond || dep != 15*time.Millisecond || rep != 15*time.Millisecond {
		t.Fatalf("means %v %v %v", det, dep, rep)
	}
	if len(l.Records()) != 2 {
		t.Fatal("records lost")
	}
}
