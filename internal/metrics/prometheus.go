package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the content type of the text exposition format
// produced by WritePrometheus.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promLine is one sample of the exposition: a gauge, optionally carrying a
// single "value" label for string-valued leaves (info-style gauges).
type promLine struct {
	name  string
	label string // empty for plain numeric gauges
	value string
}

// WritePrometheus renders the registry snapshot in the Prometheus text
// exposition format (version 0.0.4). The nested per-source structures are
// flattened into gauge names: source "ha/job/sj1" with field "switchovers"
// becomes `streamha_ha_job_sj1_switchovers`. Numbers export as gauges,
// booleans as 0/1, and string leaves as info-style gauges with the string
// in a `value` label (`streamha_..._state{value="protected"} 1`); arrays
// and null sources are skipped. Output is sorted by metric name, so the
// exposition is deterministic for a given snapshot.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// The JSON round-trip normalizes every source's typed stats struct into
	// maps and float64/bool/string leaves, reusing the exact field names the
	// JSON endpoint exposes.
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		return err
	}
	var tree map[string]any
	if err := json.Unmarshal(raw, &tree); err != nil {
		return err
	}
	var lines []promLine
	flattenProm("streamha", tree, &lines)
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].name != lines[j].name {
			return lines[i].name < lines[j].name
		}
		return lines[i].label < lines[j].label
	})
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", l.name); err != nil {
			return err
		}
		if l.label != "" {
			if _, err := fmt.Fprintf(w, "%s{value=%q} %s\n", l.name, l.label, l.value); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", l.name, l.value); err != nil {
			return err
		}
	}
	return nil
}

func flattenProm(prefix string, v any, out *[]promLine) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			flattenProm(prefix+"_"+promSanitize(k), child, out)
		}
	case float64:
		*out = append(*out, promLine{name: prefix, value: strconv.FormatFloat(x, 'g', -1, 64)})
	case bool:
		val := "0"
		if x {
			val = "1"
		}
		*out = append(*out, promLine{name: prefix, value: val})
	case string:
		*out = append(*out, promLine{name: prefix, label: x, value: "1"})
	default:
		// Arrays (e.g. transition logs) and nulls have no gauge rendering;
		// they stay JSON-only.
	}
}

// promSanitize maps one snapshot path component onto the Prometheus metric
// name alphabet [a-zA-Z0-9_].
func promSanitize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
