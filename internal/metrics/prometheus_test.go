package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePrometheusFlattensSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Register("transport", func() any {
		return map[string]any{"messages": 42, "bytes": 1.5}
	})
	reg.Register("ha/job/sj1", func() any {
		return map[string]any{
			"state":          "protected",
			"standby_active": false,
			"switchovers":    3,
			"transitions":    []string{"a", "b"}, // arrays stay JSON-only
		}
	})
	reg.Register("store/job/sj1", func() any { return nil }) // null source skipped

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"streamha_transport_messages 42\n",
		"streamha_transport_bytes 1.5\n",
		"streamha_ha_job_sj1_switchovers 3\n",
		"streamha_ha_job_sj1_standby_active 0\n",
		`streamha_ha_job_sj1_state{value="protected"} 1` + "\n",
		"# TYPE streamha_transport_messages gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	for _, reject := range []string{"transitions", "store_job"} {
		if strings.Contains(out, reject) {
			t.Fatalf("exposition should not contain %q:\n%s", reject, out)
		}
	}
}

func TestWritePrometheusDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Register("b", func() any { return map[string]any{"x": 1} })
	reg.Register("a", func() any { return map[string]any{"y": 2, "x": 1} })

	var first bytes.Buffer
	if err := reg.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var again bytes.Buffer
		if err := reg.WritePrometheus(&again); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("non-deterministic exposition:\n%s\nvs\n%s", first.String(), again.String())
		}
	}
	if !strings.HasPrefix(first.String(), "# TYPE streamha_a_x gauge\nstreamha_a_x 1\n") {
		t.Fatalf("sorted output should start with streamha_a_x:\n%s", first.String())
	}
}

func TestPromSanitize(t *testing.T) {
	cases := map[string]string{
		"ha/job/sj1":  "ha_job_sj1",
		"p99(ms)":     "p99_ms_",
		"plain_name9": "plain_name9",
	}
	for in, want := range cases {
		if got := promSanitize(in); got != want {
			t.Fatalf("promSanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
