package metrics

import (
	"encoding/json"
	"sort"
	"sync"
)

// Source produces one named component's current metrics value. The value
// must be JSON-marshalable; it is re-evaluated on every snapshot so a
// registry poll always observes live state.
type Source func() any

// Registry aggregates named metric sources — transport traffic, queue
// depths, checkpoint sizes, detector quality, recovery phases — into one
// JSON-exportable snapshot that dashboards or the CLIs can poll while the
// pipeline runs. It is safe for concurrent use; sources are invoked
// outside the registry lock, so a slow source never blocks registration.
type Registry struct {
	mu      sync.RWMutex
	sources map[string]Source
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]Source)}
}

// Register adds (or replaces) the source under name. Components
// conventionally namespace their entries, e.g. "subjob/stage@primary" or
// "transport".
func (r *Registry) Register(name string, src Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sources == nil {
		r.sources = make(map[string]Source)
	}
	r.sources[name] = src
}

// Unregister removes the source under name, if present.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sources, name)
}

// Names returns the registered source names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.sources))
	for n := range r.sources {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot evaluates every source and returns the combined view. The
// source functions run outside the registry lock; each entry is
// independent, so the snapshot is per-source consistent, not global.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	sources := make(map[string]Source, len(r.sources))
	for n, s := range r.sources {
		sources[n] = s
	}
	r.mu.RUnlock()
	out := make(map[string]any, len(sources))
	for n, s := range sources {
		out[n] = s()
	}
	return out
}

// JSON returns the snapshot as indented JSON.
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}
