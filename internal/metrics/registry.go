package metrics

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// Source produces one named component's current metrics value. The value
// must be JSON-marshalable; it is re-evaluated on every snapshot so a
// registry poll always observes live state.
type Source func() any

// Registry aggregates named metric sources — transport traffic, queue
// depths, checkpoint sizes, detector quality, recovery phases — into one
// JSON-exportable snapshot that dashboards or the CLIs can poll while the
// pipeline runs. It is safe for concurrent use; sources are invoked
// outside the registry lock, so a slow source never blocks registration.
type Registry struct {
	mu      sync.RWMutex
	sources map[string]Source

	// ttl > 0 enables the per-source snapshot cache: a source whose last
	// evaluation is younger than ttl serves the cached value instead of
	// re-evaluating, bounding the cost of tight scrape loops (every
	// source evaluation takes component locks). 0 — the default — always
	// re-evaluates.
	ttl   time.Duration
	cache map[string]cachedValue
}

type cachedValue struct {
	val any
	at  time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]Source)}
}

// Register adds (or replaces) the source under name. Components
// conventionally namespace their entries, e.g. "subjob/stage@primary" or
// "transport".
func (r *Registry) Register(name string, src Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sources == nil {
		r.sources = make(map[string]Source)
	}
	r.sources[name] = src
	delete(r.cache, name)
}

// Unregister removes the source under name, if present.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sources, name)
	delete(r.cache, name)
}

// SetSourceTTL sets the per-source cache lifetime used by Snapshot (and
// everything built on it, like WritePrometheus): a source evaluated
// within the last d serves its cached value. d <= 0 disables caching,
// the default, and drops any cached values.
func (r *Registry) SetSourceTTL(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ttl = d
	r.cache = nil
}

// Names returns the registered source names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.sources))
	for n := range r.sources {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot evaluates every source and returns the combined view. The
// source functions run outside the registry lock; each entry is
// independent, so the snapshot is per-source consistent, not global.
// With a source TTL set (SetSourceTTL), sources evaluated within the
// TTL serve their cached value instead.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	ttl := r.ttl
	sources := make(map[string]Source, len(r.sources))
	for n, s := range r.sources {
		sources[n] = s
	}
	r.mu.RUnlock()

	out := make(map[string]any, len(sources))
	if ttl <= 0 {
		for n, s := range sources {
			out[n] = s()
		}
		return out
	}

	// Serve fresh-enough cache entries, collect the stale remainder.
	now := time.Now()
	stale := make(map[string]Source)
	r.mu.RLock()
	for n, s := range sources {
		if e, ok := r.cache[n]; ok && now.Sub(e.at) < ttl {
			out[n] = e.val
		} else {
			stale[n] = s
		}
	}
	r.mu.RUnlock()

	// Evaluate stale sources outside any lock, then refresh the cache.
	// Concurrent snapshots may race to evaluate the same source; last
	// write wins, which only means one redundant evaluation.
	for n, s := range stale {
		out[n] = s()
	}
	r.mu.Lock()
	if r.ttl == ttl { // SetSourceTTL may have reset the cache meanwhile
		if r.cache == nil {
			r.cache = make(map[string]cachedValue)
		}
		for n := range stale {
			r.cache[n] = cachedValue{val: out[n], at: now}
		}
	}
	r.mu.Unlock()
	return out
}

// JSON returns the snapshot as indented JSON.
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}
