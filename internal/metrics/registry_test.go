package metrics

import (
	"testing"
	"time"
)

func TestRegistrySnapshotAlwaysLiveWithoutTTL(t *testing.T) {
	r := NewRegistry()
	evals := 0
	r.Register("counter", func() any { evals++; return evals })

	if v := r.Snapshot()["counter"]; v != 1 {
		t.Fatalf("first snapshot %v, want 1", v)
	}
	if v := r.Snapshot()["counter"]; v != 2 {
		t.Fatalf("second snapshot %v, want 2 (no TTL set: must re-evaluate)", v)
	}
}

func TestRegistrySourceTTLServesCachedValue(t *testing.T) {
	r := NewRegistry()
	evals := 0
	r.Register("counter", func() any { evals++; return evals })
	r.SetSourceTTL(time.Hour)

	if v := r.Snapshot()["counter"]; v != 1 {
		t.Fatalf("first snapshot %v, want 1", v)
	}
	for i := 0; i < 3; i++ {
		if v := r.Snapshot()["counter"]; v != 1 {
			t.Fatalf("snapshot within TTL %v, want cached 1", v)
		}
	}
	if evals != 1 {
		t.Fatalf("source evaluated %d times within TTL, want 1", evals)
	}
}

func TestRegistrySourceTTLExpires(t *testing.T) {
	r := NewRegistry()
	evals := 0
	r.Register("counter", func() any { evals++; return evals })
	r.SetSourceTTL(30 * time.Millisecond)

	if v := r.Snapshot()["counter"]; v != 1 {
		t.Fatalf("first snapshot %v, want 1", v)
	}
	time.Sleep(60 * time.Millisecond)
	if v := r.Snapshot()["counter"]; v != 2 {
		t.Fatalf("snapshot after TTL expiry %v, want re-evaluated 2", v)
	}
}

func TestRegistrySourceTTLStalenessBounded(t *testing.T) {
	// The cache trades staleness for scrape cost; the staleness must never
	// exceed the TTL. Pin it by re-registering (which drops the cached
	// value) and by disabling the TTL (which must go back to live reads).
	r := NewRegistry()
	val := 1
	r.Register("gauge", func() any { return val })
	r.SetSourceTTL(time.Hour)

	if v := r.Snapshot()["gauge"]; v != 1 {
		t.Fatalf("snapshot %v, want 1", v)
	}
	val = 2
	if v := r.Snapshot()["gauge"]; v != 1 {
		t.Fatalf("snapshot %v, want stale 1 within TTL", v)
	}

	// Re-registering a source invalidates its cache entry.
	r.Register("gauge", func() any { return val })
	if v := r.Snapshot()["gauge"]; v != 2 {
		t.Fatalf("snapshot after re-register %v, want live 2", v)
	}

	// Disabling the TTL drops the cache entirely.
	val = 3
	r.SetSourceTTL(0)
	if v := r.Snapshot()["gauge"]; v != 3 {
		t.Fatalf("snapshot after disabling TTL %v, want live 3", v)
	}
}
