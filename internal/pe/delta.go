package pe

import (
	"encoding/binary"
	"fmt"

	"streamha/internal/element"
)

// DeltaLogic is the optional incremental-checkpoint capability of a Logic.
// A Logic that implements it can describe only the state bytes that changed
// since the previous capture, letting the checkpoint manager ship a small
// patch instead of a full snapshot on most sweeps.
//
// The contract mirrors Snapshot/Restore but is stateful across calls:
//
//   - DeltaSnapshot returns a patch (see AppendPatch/ApplyPatch for the
//     encoding) covering every byte of the full snapshot that may have
//     changed since the last successful DeltaSnapshot or ResetDelta, and
//     clears the change tracking. It returns ok=false when no valid
//     baseline exists — e.g. right after construction or after Restore —
//     in which case the caller must fall back to a full Snapshot.
//   - ResetDelta aligns the change tracking with a full Snapshot the caller
//     has just captured: the next DeltaSnapshot describes changes relative
//     to that snapshot, and becomes valid even after a Restore.
//   - ApplyDelta folds a patch produced by DeltaSnapshot into the live
//     state, the standby-side counterpart of Restore.
//
// Plain Snapshot() must not disturb the tracking: recovery paths (rollback
// state read-back, read-state replies) snapshot at arbitrary times, and a
// later delta that re-ships bytes already covered by such a snapshot is
// harmless, while a delta that omits changes would corrupt the folded image.
type DeltaLogic interface {
	Logic
	DeltaSnapshot() ([]byte, bool)
	ApplyDelta(patch []byte) error
	ResetDelta()
}

// PartialLogic is the optional bounded-error capability of a DeltaLogic.
// The approx standby policy ships DeltaSnapshot patches as unchained
// partial checkpoints: each frame carries only the hot (recently written)
// byte ranges, and a standby that misses a frame simply keeps stale cold
// bytes instead of breaking a chain. StateBytes reports the current full
// snapshot length so the policy can account the cold remainder — the
// bytes a partial frame did NOT cover — against the error budget.
type PartialLogic interface {
	DeltaLogic
	StateBytes() int
}

// Patch encoding: a compact byte-range diff against a full snapshot.
//
//	uvarint finalLen   — length of the full snapshot after applying
//	uvarint n          — number of chunks
//	n × (uvarint off, uvarint len, len raw bytes)
//
// Chunks are non-overlapping and sorted by offset. The store side folds a
// patch into an opaque stored snapshot with ApplyPatch, without needing a
// Logic instance.

// AppendPatchHeader begins a patch with the final snapshot length and the
// number of chunks that follow.
func AppendPatchHeader(dst []byte, finalLen, chunks int) []byte {
	dst = binary.AppendUvarint(dst, uint64(finalLen))
	return binary.AppendUvarint(dst, uint64(chunks))
}

// AppendPatchChunk appends one (offset, bytes) chunk to a patch under
// construction. Chunks must be appended in increasing offset order.
func AppendPatchChunk(dst []byte, off int, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(off))
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// WalkPatch decodes a patch, calling size once with the final snapshot
// length and then chunk for each (offset, bytes) range in order. The bytes
// slice aliases the patch and must not be retained.
func WalkPatch(patch []byte, size func(finalLen int) error, chunk func(off int, b []byte) error) error {
	finalLen, n := binary.Uvarint(patch)
	if n <= 0 {
		return fmt.Errorf("pe: patch truncated at final length")
	}
	rest := patch[n:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("pe: patch truncated at chunk count")
	}
	rest = rest[n:]
	if size != nil {
		if err := size(int(finalLen)); err != nil {
			return err
		}
	}
	prevEnd := -1
	for i := uint64(0); i < count; i++ {
		off, n := binary.Uvarint(rest)
		if n <= 0 {
			return fmt.Errorf("pe: patch truncated at chunk %d offset", i)
		}
		rest = rest[n:]
		ln, n := binary.Uvarint(rest)
		if n <= 0 {
			return fmt.Errorf("pe: patch truncated at chunk %d length", i)
		}
		rest = rest[n:]
		if uint64(len(rest)) < ln {
			return fmt.Errorf("pe: patch chunk %d wants %d bytes, %d left", i, ln, len(rest))
		}
		if int(off) <= prevEnd {
			return fmt.Errorf("pe: patch chunk %d offset %d overlaps previous end %d", i, off, prevEnd)
		}
		if off+ln > finalLen {
			return fmt.Errorf("pe: patch chunk %d [%d,%d) exceeds final length %d", i, off, off+ln, finalLen)
		}
		if err := chunk(int(off), rest[:ln]); err != nil {
			return err
		}
		prevEnd = int(off+ln) - 1
		rest = rest[ln:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("pe: %d trailing bytes after patch", len(rest))
	}
	return nil
}

// ApplyPatch folds a patch into a full snapshot image and returns the
// updated image. The base slice is reused when its capacity allows;
// otherwise a new slice is allocated and the base contents carried over.
func ApplyPatch(base, patch []byte) ([]byte, error) {
	out := base
	err := WalkPatch(patch,
		func(finalLen int) error {
			switch {
			case finalLen <= len(out):
				out = out[:finalLen]
			case finalLen <= cap(out):
				grown := out[:finalLen]
				clearBytes(grown[len(out):])
				out = grown
			default:
				grown := make([]byte, finalLen)
				copy(grown, out)
				out = grown
			}
			return nil
		},
		func(off int, b []byte) error {
			copy(out[off:], b)
			return nil
		})
	if err != nil {
		return base, err
	}
	return out, nil
}

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// PatchUnits converts a patch's shipped size into data-element
// equivalents, the accounting unit of the paper's overhead figures, by the
// same convention StateSize uses for full snapshots (one unit per encoded
// element's worth of bytes, rounded up).
func PatchUnits(patch []byte) int {
	return (len(patch) + element.EncodedSize - 1) / element.EncodedSize
}
