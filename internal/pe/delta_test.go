package pe

import (
	"bytes"
	"testing"

	"streamha/internal/element"
)

func buildPatch(finalLen int, chunks ...[]any) []byte {
	p := AppendPatchHeader(nil, finalLen, len(chunks))
	for _, c := range chunks {
		p = AppendPatchChunk(p, c[0].(int), c[1].([]byte))
	}
	return p
}

func TestApplyPatchBasics(t *testing.T) {
	base := []byte{0, 1, 2, 3, 4, 5, 6, 7}
	patch := buildPatch(8, []any{2, []byte{9, 9}}, []any{6, []byte{8}})
	got, err := ApplyPatch(base, patch)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 1, 9, 9, 4, 5, 8, 7}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestApplyPatchResizes(t *testing.T) {
	// Growth zero-fills; shrink truncates.
	got, err := ApplyPatch([]byte{1, 2}, buildPatch(4, []any{3, []byte{7}}))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 0, 7}) {
		t.Fatalf("grow: %v", got)
	}
	got, err = ApplyPatch([]byte{1, 2, 3, 4}, buildPatch(2, []any{0, []byte{9}}))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{9, 2}) {
		t.Fatalf("shrink: %v", got)
	}
}

func TestApplyPatchRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":         nil,
		"truncated":     buildPatch(8, []any{0, []byte{1, 2}})[:3],
		"out-of-bounds": buildPatch(4, []any{3, []byte{1, 2}}),
		"overlapping":   buildPatch(8, []any{0, []byte{1, 2}}, []any{1, []byte{3}}),
		"trailing":      append(buildPatch(4, []any{0, []byte{1}}), 0xFF),
	}
	for name, patch := range cases {
		if _, err := ApplyPatch(make([]byte, 8), patch); err == nil {
			t.Errorf("%s: patch accepted", name)
		}
	}
}

func TestPatchUnits(t *testing.T) {
	p := buildPatch(64, []any{0, make([]byte, element.EncodedSize+1)})
	if got := PatchUnits(p); got != 2 {
		t.Fatalf("units = %d, want 2 (ceil)", got)
	}
}

// TestCounterDeltaEquivalence: applying a baseline snapshot plus the
// deltas captured between churn rounds must land byte-identical to a full
// snapshot of the final state.
func TestCounterDeltaEquivalence(t *testing.T) {
	emit := func(element.Element) {}
	live := &CounterLogic{Pad: 64, HotSlots: 40}
	follower := &CounterLogic{Pad: 64, HotSlots: 40}

	// Baseline: full snapshot, then align tracking.
	if err := follower.ApplyDelta(buildPatch(len(live.Snapshot()), []any{0, live.Snapshot()})); err != nil {
		t.Fatal(err)
	}
	live.ResetDelta()

	var id uint64
	for round := 0; round < 5; round++ {
		for i := 0; i < 17; i++ {
			id++
			live.Process(element.Element{ID: id, Payload: int64(id)}, emit)
		}
		patch, ok := live.DeltaSnapshot()
		if !ok {
			t.Fatalf("round %d: no delta despite baseline", round)
		}
		if len(patch) >= len(live.Snapshot()) {
			t.Fatalf("round %d: delta (%d B) not smaller than full (%d B)", round, len(patch), len(live.Snapshot()))
		}
		if err := follower.ApplyDelta(patch); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !bytes.Equal(follower.Snapshot(), live.Snapshot()) {
			t.Fatalf("round %d: follower diverged", round)
		}
	}
}

func TestCounterDeltaRequiresBaseline(t *testing.T) {
	emit := func(element.Element) {}
	l := &CounterLogic{Pad: 4, HotSlots: 2}
	l.Process(element.Element{ID: 1, Payload: 1}, emit)
	if _, ok := l.DeltaSnapshot(); ok {
		t.Fatal("delta produced without a baseline capture")
	}
	l.ResetDelta() // baseline established (as CaptureFull does)
	l.Process(element.Element{ID: 2, Payload: 2}, emit)
	if _, ok := l.DeltaSnapshot(); !ok {
		t.Fatal("no delta after baseline")
	}

	// Restore invalidates the baseline: tracking no longer matches what any
	// consumer holds.
	snap := l.Snapshot()
	if err := l.Restore(snap); err != nil {
		t.Fatal(err)
	}
	l.Process(element.Element{ID: 3, Payload: 3}, emit)
	if _, ok := l.DeltaSnapshot(); ok {
		t.Fatal("delta produced after Restore broke the baseline")
	}
}

func TestCounterSnapshotDoesNotDisturbTracking(t *testing.T) {
	emit := func(element.Element) {}
	l := &CounterLogic{Pad: 8, HotSlots: 4}
	l.ResetDelta()
	l.Process(element.Element{ID: 1, Payload: 1}, emit)
	_ = l.Snapshot() // recovery-path read; must not clear dirty tracking
	patch, ok := l.DeltaSnapshot()
	if !ok || len(patch) == 0 {
		t.Fatal("Snapshot() cleared the delta tracking")
	}
}

func TestCounterRestoreAdoptsPad(t *testing.T) {
	emit := func(element.Element) {}
	src := &CounterLogic{Pad: 8, HotSlots: 8}
	for i := 1; i <= 20; i++ {
		src.Process(element.Element{ID: uint64(i), Payload: int64(i)}, emit)
	}
	dst := &CounterLogic{Pad: 8, HotSlots: 8}
	if err := dst.Restore(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Snapshot(), src.Snapshot()) {
		t.Fatal("restored pad differs from source")
	}
}

func TestWindowSumDelta(t *testing.T) {
	emit := func(element.Element) {}
	live := &WindowSumLogic{Window: 4}
	follower := &WindowSumLogic{Window: 4}
	for i := 1; i <= 9; i++ {
		live.Process(element.Element{ID: uint64(i), Payload: int64(i)}, emit)
	}
	patch, ok := live.DeltaSnapshot()
	if !ok {
		t.Fatal("WindowSumLogic must always offer a delta")
	}
	if err := follower.ApplyDelta(patch); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(follower.Snapshot(), live.Snapshot()) {
		t.Fatal("window state diverged")
	}
}
