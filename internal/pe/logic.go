// Package pe implements processing elements: the user-supplied processing
// logic, the runtime loop that drives it, and the pause/checkpoint/resume
// protocol the checkpoint manager uses (pause(controller), checkpoint(),
// resume() and storeJobState in the paper's PE interface).
package pe

import (
	"encoding/binary"
	"fmt"

	"streamha/internal/element"
)

// Logic is the application-defined transformation of one PE. A Logic must
// be deterministic for the system to guarantee identical results across
// replicas and recoveries; non-deterministic logics still enjoy no-loss
// guarantees, as in the paper.
//
// Process is called once per input element and emits zero or more outputs.
// Implementations derive output IDs with element.DeriveID and propagate
// Origin so that duplicate elimination and end-to-end delay accounting work.
//
// Snapshot and Restore implement the internal-state part of checkpoints:
// the variables that affect future output, not the PE's memory image.
// StateSize reports the snapshot's size in data-element equivalents, the
// unit used for checkpoint message accounting.
type Logic interface {
	Process(e element.Element, emit func(element.Element))
	Snapshot() []byte
	Restore(state []byte) error
	StateSize() int
}

// CounterLogic is the synthetic stateful PE used throughout the paper's
// evaluation: selectivity 1, an internal state of configurable size, and a
// running counter that makes state divergence detectable in tests.
type CounterLogic struct {
	// Pad is the internal state size in element-equivalents (the paper sets
	// it to 200 for the overhead experiments).
	Pad int

	count uint64
	sum   int64
}

var _ Logic = (*CounterLogic)(nil)

// Process implements Logic with selectivity 1: each input yields one
// output whose payload is transformed deterministically.
func (l *CounterLogic) Process(e element.Element, emit func(element.Element)) {
	l.count++
	l.sum += e.Payload
	emit(element.Element{
		ID:      element.DeriveID(e.ID, 0),
		Origin:  e.Origin,
		Payload: e.Payload + 1,
	})
}

// Snapshot implements Logic.
func (l *CounterLogic) Snapshot() []byte {
	buf := make([]byte, 16, 16+l.Pad*element.EncodedSize)
	binary.BigEndian.PutUint64(buf[0:8], l.count)
	binary.BigEndian.PutUint64(buf[8:16], uint64(l.sum))
	// The pad stands in for application state of the configured size; its
	// content is irrelevant but its transfer cost is what the experiments
	// measure.
	return append(buf, make([]byte, l.Pad*element.EncodedSize)...)
}

// Restore implements Logic.
func (l *CounterLogic) Restore(state []byte) error {
	if len(state) < 16 {
		return fmt.Errorf("pe: counter snapshot too short: %d bytes", len(state))
	}
	l.count = binary.BigEndian.Uint64(state[0:8])
	l.sum = int64(binary.BigEndian.Uint64(state[8:16]))
	return nil
}

// StateSize implements Logic.
func (l *CounterLogic) StateSize() int { return l.Pad }

// Count returns the number of elements processed, for tests.
func (l *CounterLogic) Count() uint64 { return l.count }

// Sum returns the running payload sum, for tests.
func (l *CounterLogic) Sum() int64 { return l.sum }

// FilterLogic drops elements whose payload is divisible by Modulus
// (selectivity below one). Stateless.
type FilterLogic struct {
	// Modulus selects which elements are dropped; must be at least 2.
	Modulus int64
}

var _ Logic = (*FilterLogic)(nil)

// Process implements Logic.
func (l *FilterLogic) Process(e element.Element, emit func(element.Element)) {
	if l.Modulus >= 2 && e.Payload%l.Modulus == 0 {
		return
	}
	emit(element.Element{ID: element.DeriveID(e.ID, 0), Origin: e.Origin, Payload: e.Payload})
}

// Snapshot implements Logic.
func (l *FilterLogic) Snapshot() []byte { return nil }

// Restore implements Logic.
func (l *FilterLogic) Restore([]byte) error { return nil }

// StateSize implements Logic.
func (l *FilterLogic) StateSize() int { return 0 }

// SplitLogic emits Fanout outputs per input (selectivity above one),
// deterministically derived from the input. Stateless.
type SplitLogic struct {
	// Fanout is the number of outputs per input; values below 1 behave as 1.
	Fanout int
}

var _ Logic = (*SplitLogic)(nil)

// Process implements Logic.
func (l *SplitLogic) Process(e element.Element, emit func(element.Element)) {
	n := l.Fanout
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		emit(element.Element{
			ID:      element.DeriveID(e.ID, i),
			Origin:  e.Origin,
			Payload: e.Payload*int64(n) + int64(i),
		})
	}
}

// Snapshot implements Logic.
func (l *SplitLogic) Snapshot() []byte { return nil }

// Restore implements Logic.
func (l *SplitLogic) Restore([]byte) error { return nil }

// StateSize implements Logic.
func (l *SplitLogic) StateSize() int { return 0 }

// WindowSumLogic aggregates tumbling windows of Window inputs into one
// output carrying their payload sum — a typical stateful analytic PE.
type WindowSumLogic struct {
	// Window is the tumbling window size in elements; values below 1 behave
	// as 1.
	Window int

	filled int
	acc    int64
	lastID uint64
}

var _ Logic = (*WindowSumLogic)(nil)

// Process implements Logic.
func (l *WindowSumLogic) Process(e element.Element, emit func(element.Element)) {
	w := l.Window
	if w < 1 {
		w = 1
	}
	l.acc += e.Payload
	l.filled++
	l.lastID = e.ID
	if l.filled < w {
		return
	}
	out := element.Element{ID: element.DeriveID(l.lastID, 0), Origin: e.Origin, Payload: l.acc}
	l.filled = 0
	l.acc = 0
	emit(out)
}

// Snapshot implements Logic.
func (l *WindowSumLogic) Snapshot() []byte {
	buf := make([]byte, 24)
	binary.BigEndian.PutUint64(buf[0:8], uint64(l.filled))
	binary.BigEndian.PutUint64(buf[8:16], uint64(l.acc))
	binary.BigEndian.PutUint64(buf[16:24], l.lastID)
	return buf
}

// Restore implements Logic.
func (l *WindowSumLogic) Restore(state []byte) error {
	if len(state) < 24 {
		return fmt.Errorf("pe: window snapshot too short: %d bytes", len(state))
	}
	l.filled = int(binary.BigEndian.Uint64(state[0:8]))
	l.acc = int64(binary.BigEndian.Uint64(state[8:16]))
	l.lastID = binary.BigEndian.Uint64(state[16:24])
	return nil
}

// StateSize implements Logic.
func (l *WindowSumLogic) StateSize() int { return 1 }
