// Package pe implements processing elements: the user-supplied processing
// logic, the runtime loop that drives it, and the pause/checkpoint/resume
// protocol the checkpoint manager uses (pause(controller), checkpoint(),
// resume() and storeJobState in the paper's PE interface).
package pe

import (
	"encoding/binary"
	"fmt"

	"streamha/internal/element"
)

// Logic is the application-defined transformation of one PE. A Logic must
// be deterministic for the system to guarantee identical results across
// replicas and recoveries; non-deterministic logics still enjoy no-loss
// guarantees, as in the paper.
//
// Process is called once per input element and emits zero or more outputs.
// Implementations derive output IDs with element.DeriveID and propagate
// Origin so that duplicate elimination and end-to-end delay accounting work.
//
// Snapshot and Restore implement the internal-state part of checkpoints:
// the variables that affect future output, not the PE's memory image.
// StateSize reports the snapshot's size in data-element equivalents, the
// unit used for checkpoint message accounting.
type Logic interface {
	Process(e element.Element, emit func(element.Element))
	Snapshot() []byte
	Restore(state []byte) error
	StateSize() int
}

// counterPage is the change-tracking granularity of CounterLogic's pad:
// one dirty bit covers this many pad bytes, so a delta ships whole pages.
const counterPage = 256

// CounterLogic is the synthetic stateful PE used throughout the paper's
// evaluation: selectivity 1, an internal state of configurable size, and a
// running counter that makes state divergence detectable in tests.
//
// The pad is real, keyed state: when HotSlots is set, every processed
// element rewrites one 8-byte slot of the pad (slot = count mod HotSlots),
// making state churn tunable. CounterLogic implements DeltaLogic by
// tracking dirty pad pages, so an incremental checkpoint ships the 16-byte
// counter head plus only the touched pages instead of the whole pad.
type CounterLogic struct {
	// Pad is the internal state size in element-equivalents (the paper sets
	// it to 200 for the overhead experiments).
	Pad int
	// HotSlots bounds the working set of the keyed pad state: each processed
	// element updates slot count%HotSlots. Zero leaves the pad untouched
	// (the seed behavior: pure transfer-cost ballast).
	HotSlots int

	count uint64
	sum   int64

	// pad is the keyed state, allocated lazily at Pad*element.EncodedSize
	// bytes (or adopted from Restore). nil means an all-zero pad.
	pad []byte
	// dirty is a bitmap with one bit per counterPage-sized pad page, set on
	// write and cleared by DeltaSnapshot/ResetDelta.
	dirty []uint64
	// headDirty records a count/sum change since the last capture.
	headDirty bool
	// baseline reports whether the change tracking is aligned with a full
	// snapshot some consumer holds; false after construction or Restore.
	baseline bool
}

var (
	_ Logic        = (*CounterLogic)(nil)
	_ DeltaLogic   = (*CounterLogic)(nil)
	_ PartialLogic = (*CounterLogic)(nil)
)

func (l *CounterLogic) padLen() int {
	if l.pad != nil {
		return len(l.pad)
	}
	return l.Pad * element.EncodedSize
}

func (l *CounterLogic) ensurePad() {
	if l.pad == nil {
		l.pad = make([]byte, l.Pad*element.EncodedSize)
	}
	if pages := (len(l.pad) + counterPage - 1) / counterPage; len(l.dirty) < (pages+63)/64 {
		l.dirty = make([]uint64, (pages+63)/64)
	}
}

func (l *CounterLogic) markPage(off int) {
	page := off / counterPage
	l.dirty[page/64] |= 1 << (page % 64)
}

// Process implements Logic with selectivity 1: each input yields one
// output whose payload is transformed deterministically.
func (l *CounterLogic) Process(e element.Element, emit func(element.Element)) {
	l.count++
	l.sum += e.Payload
	l.headDirty = true
	if l.HotSlots > 0 {
		l.ensurePad()
		if slots := len(l.pad) / 8; slots > 0 {
			n := l.HotSlots
			if n > slots {
				n = slots
			}
			off := int(l.count%uint64(n)) * 8
			binary.BigEndian.PutUint64(l.pad[off:off+8], l.count)
			l.markPage(off)
		}
	}
	emit(element.Element{
		ID:      element.DeriveID(e.ID, 0),
		Key:     e.Key,
		Origin:  e.Origin,
		Payload: e.Payload + 1,
	})
}

// Snapshot implements Logic. It does not disturb delta tracking, so
// recovery-path snapshots never invalidate an in-flight delta chain.
func (l *CounterLogic) Snapshot() []byte {
	buf := make([]byte, 16, 16+l.padLen())
	binary.BigEndian.PutUint64(buf[0:8], l.count)
	binary.BigEndian.PutUint64(buf[8:16], uint64(l.sum))
	// The pad stands in for application state of the configured size; until
	// HotSlots writes to it, its content is all zeros and only its transfer
	// cost matters, exactly as in the original synthetic workload.
	if l.pad != nil {
		return append(buf, l.pad...)
	}
	return append(buf, make([]byte, l.Pad*element.EncodedSize)...)
}

// Restore implements Logic. The restored logic has no delta baseline until
// the next ResetDelta: its first checkpoint after recovery must be full.
func (l *CounterLogic) Restore(state []byte) error {
	if len(state) < 16 {
		return fmt.Errorf("pe: counter snapshot too short: %d bytes", len(state))
	}
	l.count = binary.BigEndian.Uint64(state[0:8])
	l.sum = int64(binary.BigEndian.Uint64(state[8:16]))
	l.pad = append(l.pad[:0], state[16:]...)
	l.dirty = nil
	l.headDirty = false
	l.baseline = false
	return nil
}

// StateSize implements Logic.
func (l *CounterLogic) StateSize() int { return l.Pad }

// DeltaSnapshot implements DeltaLogic: the patch carries the counter head
// if it changed plus every dirty pad page, then clears the tracking.
func (l *CounterLogic) DeltaSnapshot() ([]byte, bool) {
	if !l.baseline {
		return nil, false
	}
	chunks := 0
	if l.headDirty {
		chunks++
	}
	padLen := l.padLen()
	pages := (padLen + counterPage - 1) / counterPage
	for p := 0; p < pages; p++ {
		if p/64 < len(l.dirty) && l.dirty[p/64]&(1<<(p%64)) != 0 {
			chunks++
		}
	}
	patch := AppendPatchHeader(make([]byte, 0, 32+chunks*(counterPage+8)), 16+padLen, chunks)
	if l.headDirty {
		var head [16]byte
		binary.BigEndian.PutUint64(head[0:8], l.count)
		binary.BigEndian.PutUint64(head[8:16], uint64(l.sum))
		patch = AppendPatchChunk(patch, 0, head[:])
		l.headDirty = false
	}
	for p := 0; p < pages; p++ {
		if p/64 >= len(l.dirty) || l.dirty[p/64]&(1<<(p%64)) == 0 {
			continue
		}
		start := p * counterPage
		end := start + counterPage
		if end > padLen {
			end = padLen
		}
		patch = AppendPatchChunk(patch, 16+start, l.pad[start:end])
	}
	for i := range l.dirty {
		l.dirty[i] = 0
	}
	return patch, true
}

// ApplyDelta implements DeltaLogic, folding a patch into the live state.
func (l *CounterLogic) ApplyDelta(patch []byte) error {
	return WalkPatch(patch,
		func(finalLen int) error {
			if finalLen < 16 {
				return fmt.Errorf("pe: counter delta final length %d too short", finalLen)
			}
			if want := finalLen - 16; want != len(l.pad) {
				if want <= cap(l.pad) {
					grown := l.pad[:want]
					for i := len(l.pad); i < want; i++ {
						grown[i] = 0
					}
					l.pad = grown
				} else {
					grown := make([]byte, want)
					copy(grown, l.pad)
					l.pad = grown
				}
			}
			return nil
		},
		func(off int, b []byte) error {
			if off < 16 {
				// Chunk covers (part of) the counter head: fold through a
				// scratch image so partial overlaps stay correct.
				var head [16]byte
				binary.BigEndian.PutUint64(head[0:8], l.count)
				binary.BigEndian.PutUint64(head[8:16], uint64(l.sum))
				n := copy(head[off:], b)
				l.count = binary.BigEndian.Uint64(head[0:8])
				l.sum = int64(binary.BigEndian.Uint64(head[8:16]))
				b = b[n:]
				off = 16
				if len(b) == 0 {
					return nil
				}
			}
			copy(l.pad[off-16:], b)
			return nil
		})
}

// ResetDelta implements DeltaLogic: the caller captured a full Snapshot and
// future deltas are relative to it.
func (l *CounterLogic) ResetDelta() {
	for i := range l.dirty {
		l.dirty[i] = 0
	}
	l.headDirty = false
	l.baseline = true
}

// StateBytes implements PartialLogic: the 16-byte counter head plus the
// keyed pad.
func (l *CounterLogic) StateBytes() int { return 16 + l.padLen() }

// Count returns the number of elements processed, for tests.
func (l *CounterLogic) Count() uint64 { return l.count }

// Sum returns the running payload sum, for tests.
func (l *CounterLogic) Sum() int64 { return l.sum }

// FilterLogic drops elements whose payload is divisible by Modulus
// (selectivity below one). Stateless.
type FilterLogic struct {
	// Modulus selects which elements are dropped; must be at least 2.
	Modulus int64
}

var _ Logic = (*FilterLogic)(nil)

// Process implements Logic.
func (l *FilterLogic) Process(e element.Element, emit func(element.Element)) {
	if l.Modulus >= 2 && e.Payload%l.Modulus == 0 {
		return
	}
	emit(element.Element{ID: element.DeriveID(e.ID, 0), Key: e.Key, Origin: e.Origin, Payload: e.Payload})
}

// Snapshot implements Logic.
func (l *FilterLogic) Snapshot() []byte { return nil }

// Restore implements Logic.
func (l *FilterLogic) Restore([]byte) error { return nil }

// StateSize implements Logic.
func (l *FilterLogic) StateSize() int { return 0 }

// SplitLogic emits Fanout outputs per input (selectivity above one),
// deterministically derived from the input. Stateless.
type SplitLogic struct {
	// Fanout is the number of outputs per input; values below 1 behave as 1.
	Fanout int
}

var _ Logic = (*SplitLogic)(nil)

// Process implements Logic.
func (l *SplitLogic) Process(e element.Element, emit func(element.Element)) {
	n := l.Fanout
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		emit(element.Element{
			ID:      element.DeriveID(e.ID, i),
			Key:     e.Key,
			Origin:  e.Origin,
			Payload: e.Payload*int64(n) + int64(i),
		})
	}
}

// Snapshot implements Logic.
func (l *SplitLogic) Snapshot() []byte { return nil }

// Restore implements Logic.
func (l *SplitLogic) Restore([]byte) error { return nil }

// StateSize implements Logic.
func (l *SplitLogic) StateSize() int { return 0 }

// WindowSumLogic aggregates tumbling windows of Window inputs into one
// output carrying their payload sum — a typical stateful analytic PE.
type WindowSumLogic struct {
	// Window is the tumbling window size in elements; values below 1 behave
	// as 1.
	Window int

	filled int
	acc    int64
	lastID uint64
}

var (
	_ Logic        = (*WindowSumLogic)(nil)
	_ DeltaLogic   = (*WindowSumLogic)(nil)
	_ PartialLogic = (*WindowSumLogic)(nil)
)

// Process implements Logic.
func (l *WindowSumLogic) Process(e element.Element, emit func(element.Element)) {
	w := l.Window
	if w < 1 {
		w = 1
	}
	l.acc += e.Payload
	l.filled++
	l.lastID = e.ID
	if l.filled < w {
		return
	}
	out := element.Element{ID: element.DeriveID(l.lastID, 0), Key: e.Key, Origin: e.Origin, Payload: l.acc}
	l.filled = 0
	l.acc = 0
	emit(out)
}

// Snapshot implements Logic.
func (l *WindowSumLogic) Snapshot() []byte {
	buf := make([]byte, 24)
	binary.BigEndian.PutUint64(buf[0:8], uint64(l.filled))
	binary.BigEndian.PutUint64(buf[8:16], uint64(l.acc))
	binary.BigEndian.PutUint64(buf[16:24], l.lastID)
	return buf
}

// Restore implements Logic.
func (l *WindowSumLogic) Restore(state []byte) error {
	if len(state) < 24 {
		return fmt.Errorf("pe: window snapshot too short: %d bytes", len(state))
	}
	l.filled = int(binary.BigEndian.Uint64(state[0:8]))
	l.acc = int64(binary.BigEndian.Uint64(state[8:16]))
	l.lastID = binary.BigEndian.Uint64(state[16:24])
	return nil
}

// StateSize implements Logic.
func (l *WindowSumLogic) StateSize() int { return 1 }

// DeltaSnapshot implements DeltaLogic. The versioned window state is only
// 24 bytes, so the delta is simply a whole-state replace chunk; it needs no
// baseline and is valid even right after a Restore.
func (l *WindowSumLogic) DeltaSnapshot() ([]byte, bool) {
	patch := AppendPatchHeader(make([]byte, 0, 32), 24, 1)
	return AppendPatchChunk(patch, 0, l.Snapshot()), true
}

// ApplyDelta implements DeltaLogic.
func (l *WindowSumLogic) ApplyDelta(patch []byte) error {
	full, err := ApplyPatch(l.Snapshot(), patch)
	if err != nil {
		return err
	}
	return l.Restore(full)
}

// ResetDelta implements DeltaLogic (no tracking to align).
func (l *WindowSumLogic) ResetDelta() {}

// StateBytes implements PartialLogic: every delta re-ships the whole
// 24-byte window state, so a partial frame leaves no cold remainder.
func (l *WindowSumLogic) StateBytes() int { return 24 }
