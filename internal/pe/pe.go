package pe

import (
	"sync"
	"time"

	"streamha/internal/element"
	"streamha/internal/queue"
)

// Source feeds a PE. Both queue.Input and Pipe satisfy it.
type Source interface {
	Ready() <-chan struct{}
	TryPop(max int) []queue.In
}

// Sink receives a PE's outputs. Pipe satisfies it directly; the subjob
// runtime adapts queue.Output.
type Sink interface {
	Push(elems []element.Element)
}

// Executor charges CPU work to the hosting machine. machine.CPU satisfies
// it; tests may use a no-op.
type Executor interface {
	Execute(work time.Duration)
}

// Config assembles a PE runtime.
type Config struct {
	// Name identifies the PE in logs and metrics.
	Name string
	// Logic is the processing function with its checkpointable state.
	Logic Logic
	// Cost is the CPU work charged per input element; this is the
	// "synthesized computation" knob of the paper's evaluation.
	Cost time.Duration
	// BatchSize bounds how many elements are processed per loop iteration.
	// Defaults to 64. Smaller batches react to pause requests faster.
	BatchSize int
	// Executor charges processing work; nil means processing is free.
	Executor Executor
	// Source and Sink connect the PE into the subjob pipeline.
	Source Source
	Sink   Sink
}

// PE is the runtime driving one processing element: a goroutine that pops
// input batches, charges their CPU cost, applies the Logic and pushes the
// outputs. It implements the paper's pause/checkpoint/resume protocol:
// Pause parks the loop at a quiescent point (no element half-processed),
// after which the checkpoint manager may call Snapshot-related methods, and
// Resume restarts it. A parked PE consumes no CPU, which is how suspended
// hybrid-standby copies are kept warm for free.
type PE struct {
	cfg  Config
	kick chan struct{}

	mu       sync.Mutex
	cond     *sync.Cond
	pauseReq bool
	parked   bool
	stopped  bool
	started  bool
	consumed map[string]uint64
	done     chan struct{}

	processed uint64
}

// New creates a PE runtime; call Start to launch its loop.
func New(cfg Config) *PE {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	p := &PE{
		cfg:      cfg,
		kick:     make(chan struct{}, 1),
		consumed: make(map[string]uint64),
		done:     make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Name returns the PE's name.
func (p *PE) Name() string { return p.cfg.Name }

// Logic returns the PE's logic, for checkpointing and inspection.
func (p *PE) Logic() Logic { return p.cfg.Logic }

// Start launches the processing loop. Starting twice panics; a PE is
// started exactly once by its subjob runtime.
func (p *PE) Start() {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		panic("pe: Start called twice")
	}
	p.started = true
	p.mu.Unlock()
	go p.run()
}

// Stop terminates the loop; it returns once the goroutine has exited.
// Stopping a never-started PE is a no-op.
func (p *PE) Stop() {
	p.mu.Lock()
	started := p.started
	p.stopped = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.signalKick()
	if started {
		<-p.done
	}
}

// Pause asks the loop to park at the next quiescent point and blocks until
// it has. Pausing an already-parked PE returns immediately.
func (p *PE) Pause() {
	p.mu.Lock()
	p.pauseReq = true
	p.mu.Unlock()
	p.signalKick()
	p.mu.Lock()
	for !p.parked && !p.stopped && p.started {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Resume lets a parked loop continue.
func (p *PE) Resume() {
	p.mu.Lock()
	p.pauseReq = false
	p.cond.Broadcast()
	p.mu.Unlock()
	p.signalKick()
}

// Paused reports whether a pause is currently requested.
func (p *PE) Paused() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pauseReq
}

// ConsumedPositions returns the highest input sequence number processed per
// logical stream. Only meaningful for the first PE of a subjob, whose
// source is the subjob input queue; positions become acknowledgments once
// the covering checkpoint is stored.
func (p *PE) ConsumedPositions() map[string]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]uint64, len(p.consumed))
	for k, v := range p.consumed {
		out[k] = v
	}
	return out
}

// SetConsumedPositions overwrites consumption positions during a restore.
func (p *PE) SetConsumedPositions(pos map[string]uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.consumed = make(map[string]uint64, len(pos))
	for k, v := range pos {
		p.consumed[k] = v
	}
}

// Processed returns the total number of elements processed.
func (p *PE) Processed() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.processed
}

func (p *PE) signalKick() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// park blocks while a pause is requested. It returns false when the PE is
// stopped.
func (p *PE) park() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.pauseReq && !p.stopped {
		p.parked = true
		p.cond.Broadcast()
		p.cond.Wait()
	}
	p.parked = false
	return !p.stopped
}

func (p *PE) run() {
	defer close(p.done)
	for {
		if !p.park() {
			return
		}
		// Drain available input, checking for control requests between
		// batches so pauses are honored promptly.
		for {
			ins := p.cfg.Source.TryPop(p.cfg.BatchSize)
			if len(ins) == 0 {
				break
			}
			p.processBatch(ins)
			if p.controlPending() {
				break
			}
		}
		if p.controlPending() {
			continue
		}
		select {
		case <-p.kick:
		case <-p.cfg.Source.Ready():
		}
	}
}

func (p *PE) controlPending() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pauseReq || p.stopped
}

func (p *PE) processBatch(ins []queue.In) {
	if p.cfg.Executor != nil && p.cfg.Cost > 0 {
		p.cfg.Executor.Execute(p.cfg.Cost * time.Duration(len(ins)))
	}
	outs := make([]element.Element, 0, len(ins))
	emit := func(e element.Element) { outs = append(outs, e) }
	for _, in := range ins {
		p.cfg.Logic.Process(in.Elem, emit)
	}
	if len(outs) > 0 {
		p.cfg.Sink.Push(outs)
	}
	p.mu.Lock()
	p.processed += uint64(len(ins))
	for _, in := range ins {
		if in.Stream == "" {
			continue
		}
		if in.Elem.Seq > p.consumed[in.Stream] {
			p.consumed[in.Stream] = in.Elem.Seq
		}
	}
	p.mu.Unlock()
}
