package pe

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"streamha/internal/element"
	"streamha/internal/queue"
)

// memSink collects outputs.
type memSink struct {
	mu  sync.Mutex
	out []element.Element
}

func (s *memSink) Push(elems []element.Element) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out = append(s.out, elems...)
}

func (s *memSink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.out)
}

func (s *memSink) waitFor(t *testing.T, n int) []element.Element {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.len() >= n {
			s.mu.Lock()
			defer s.mu.Unlock()
			return append([]element.Element(nil), s.out...)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d outputs (have %d)", n, s.len())
	return nil
}

func pushSeq(q *queue.Input, stream string, from, to uint64) {
	batch := make([]element.Element, 0, to-from+1)
	for s := from; s <= to; s++ {
		batch = append(batch, element.Element{ID: s, Seq: s, Payload: int64(s)})
	}
	q.Push(stream, batch)
}

func newTestPE(src Source, sink Sink) *PE {
	return New(Config{
		Name:      "t",
		Logic:     &CounterLogic{},
		BatchSize: 8,
		Source:    src,
		Sink:      sink,
	})
}

func TestPEProcessesInput(t *testing.T) {
	in := queue.NewInput("s")
	sink := &memSink{}
	p := newTestPE(in, sink)
	p.Start()
	defer p.Stop()

	pushSeq(in, "s", 1, 20)
	out := sink.waitFor(t, 20)
	for i, e := range out {
		if e.ID != uint64(i+1) || e.Payload != int64(i+1)+1 {
			t.Fatalf("output %d = %+v", i, e)
		}
	}
	if p.Processed() != 20 {
		t.Fatalf("processed %d", p.Processed())
	}
}

func TestPETracksConsumedPositions(t *testing.T) {
	in := queue.NewInput("a", "b")
	sink := &memSink{}
	p := newTestPE(in, sink)
	p.Start()
	defer p.Stop()

	pushSeq(in, "a", 1, 5)
	pushSeq(in, "b", 1, 3)
	sink.waitFor(t, 8)
	pos := p.ConsumedPositions()
	if pos["a"] != 5 || pos["b"] != 3 {
		t.Fatalf("consumed %v", pos)
	}
}

func TestPEPauseQuiescesAndResumes(t *testing.T) {
	in := queue.NewInput("s")
	sink := &memSink{}
	p := newTestPE(in, sink)
	p.Start()
	defer p.Stop()

	pushSeq(in, "s", 1, 8)
	sink.waitFor(t, 8)

	p.Pause()
	pushSeq(in, "s", 9, 16)
	time.Sleep(20 * time.Millisecond)
	if sink.len() != 8 {
		t.Fatalf("paused PE processed: %d outputs", sink.len())
	}
	p.Resume()
	sink.waitFor(t, 16)
}

func TestPEPauseWhileBlockedOnEmptySource(t *testing.T) {
	in := queue.NewInput("s")
	p := newTestPE(in, &memSink{})
	p.Start()
	defer p.Stop()
	time.Sleep(5 * time.Millisecond) // let it block on Ready

	done := make(chan struct{})
	go func() {
		p.Pause()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Pause deadlocked on idle PE")
	}
	p.Resume()
}

func TestPEPauseBeforeStartParksImmediately(t *testing.T) {
	in := queue.NewInput("s")
	sink := &memSink{}
	p := newTestPE(in, sink)
	p.Pause() // the pre-deployed standby pattern
	p.Start()
	defer p.Stop()

	pushSeq(in, "s", 1, 4)
	time.Sleep(20 * time.Millisecond)
	if sink.len() != 0 {
		t.Fatal("suspended PE processed data")
	}
	p.Resume()
	sink.waitFor(t, 4)
}

func TestPEStopWhileBlocked(t *testing.T) {
	in := queue.NewInput("s")
	p := newTestPE(in, &memSink{})
	p.Start()
	done := make(chan struct{})
	go func() {
		p.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop deadlocked")
	}
}

func TestPEStopWithoutStart(t *testing.T) {
	p := newTestPE(queue.NewInput("s"), &memSink{})
	p.Stop() // must not hang
}

func TestPEDoubleStartPanics(t *testing.T) {
	p := newTestPE(queue.NewInput("s"), &memSink{})
	p.Start()
	defer p.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on double Start")
		}
	}()
	p.Start()
}

func TestSetConsumedPositions(t *testing.T) {
	p := newTestPE(queue.NewInput("s"), &memSink{})
	p.SetConsumedPositions(map[string]uint64{"s": 42})
	if p.ConsumedPositions()["s"] != 42 {
		t.Fatal("positions not set")
	}
}

func TestPipeFIFO(t *testing.T) {
	p := NewPipe()
	p.Push([]element.Element{{Seq: 1}, {Seq: 2}})
	p.Push([]element.Element{{Seq: 3}})
	got := p.TryPop(10)
	if len(got) != 3 || got[0].Elem.Seq != 1 || got[2].Elem.Seq != 3 {
		t.Fatalf("got %+v", got)
	}
	if got[0].Stream != "" {
		t.Fatal("pipe entries must carry no stream")
	}
}

func TestPipeSnapshotRestore(t *testing.T) {
	p := NewPipe()
	p.Push([]element.Element{{Seq: 1}, {Seq: 2}})
	snap := p.Snapshot()
	p2 := NewPipe()
	p2.Restore(snap)
	if p2.Len() != 2 {
		t.Fatalf("restored len %d", p2.Len())
	}
	select {
	case <-p2.Ready():
	default:
		t.Fatal("restore must signal ready")
	}
}

func TestCounterLogicSnapshotRoundTrip(t *testing.T) {
	l := &CounterLogic{Pad: 3}
	emit := func(element.Element) {}
	for i := 0; i < 10; i++ {
		l.Process(element.Element{ID: uint64(i), Payload: int64(i)}, emit)
	}
	snap := l.Snapshot()
	if len(snap) != 16+3*element.EncodedSize {
		t.Fatalf("snapshot size %d", len(snap))
	}
	l2 := &CounterLogic{Pad: 3}
	if err := l2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if l2.Count() != l.Count() || l2.Sum() != l.Sum() {
		t.Fatal("state mismatch after restore")
	}
}

func TestCounterLogicRestoreShort(t *testing.T) {
	if err := (&CounterLogic{}).Restore(nil); err == nil {
		t.Fatal("want error")
	}
}

// TestCounterLogicRestoreEquivalenceProperty: restoring a snapshot and
// continuing produces the same state as never failing — the determinism
// recovery correctness rests on.
func TestCounterLogicRestoreEquivalenceProperty(t *testing.T) {
	f := func(payloads []int64, cut uint8) bool {
		emit := func(element.Element) {}
		ref := &CounterLogic{}
		for i, p := range payloads {
			ref.Process(element.Element{ID: uint64(i), Payload: p}, emit)
		}

		split := 0
		if len(payloads) > 0 {
			split = int(cut) % (len(payloads) + 1)
		}
		a := &CounterLogic{}
		for i := 0; i < split; i++ {
			a.Process(element.Element{ID: uint64(i), Payload: payloads[i]}, emit)
		}
		b := &CounterLogic{}
		if err := b.Restore(a.Snapshot()); err != nil {
			return false
		}
		for i := split; i < len(payloads); i++ {
			b.Process(element.Element{ID: uint64(i), Payload: payloads[i]}, emit)
		}
		return b.Count() == ref.Count() && b.Sum() == ref.Sum()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFilterLogicDropsMultiples(t *testing.T) {
	l := &FilterLogic{Modulus: 3}
	var out []element.Element
	emit := func(e element.Element) { out = append(out, e) }
	for p := int64(1); p <= 9; p++ {
		l.Process(element.Element{ID: uint64(p), Payload: p}, emit)
	}
	if len(out) != 6 {
		t.Fatalf("passed %d, want 6", len(out))
	}
}

func TestSplitLogicFanout(t *testing.T) {
	l := &SplitLogic{Fanout: 3}
	var out []element.Element
	l.Process(element.Element{ID: 7, Payload: 2}, func(e element.Element) { out = append(out, e) })
	if len(out) != 3 {
		t.Fatalf("fanout %d", len(out))
	}
	seen := map[uint64]bool{}
	for _, e := range out {
		if seen[e.ID] {
			t.Fatal("duplicate derived ID")
		}
		seen[e.ID] = true
	}
}

func TestWindowSumLogic(t *testing.T) {
	l := &WindowSumLogic{Window: 4}
	var out []element.Element
	emit := func(e element.Element) { out = append(out, e) }
	for p := int64(1); p <= 8; p++ {
		l.Process(element.Element{ID: uint64(p), Payload: p}, emit)
	}
	if len(out) != 2 || out[0].Payload != 10 || out[1].Payload != 26 {
		t.Fatalf("windows %+v", out)
	}
}

func TestWindowSumSnapshotRoundTrip(t *testing.T) {
	l := &WindowSumLogic{Window: 4}
	emit := func(element.Element) {}
	l.Process(element.Element{ID: 1, Payload: 5}, emit)
	l.Process(element.Element{ID: 2, Payload: 6}, emit)
	l2 := &WindowSumLogic{Window: 4}
	if err := l2.Restore(l.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var out []element.Element
	emitOut := func(e element.Element) { out = append(out, e) }
	l2.Process(element.Element{ID: 3, Payload: 7}, emitOut)
	l2.Process(element.Element{ID: 4, Payload: 8}, emitOut)
	if len(out) != 1 || out[0].Payload != 26 {
		t.Fatalf("restored window emitted %+v", out)
	}
}
