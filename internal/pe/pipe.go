package pe

import (
	"sync"

	"streamha/internal/element"
	"streamha/internal/queue"
)

// Pipe is the in-memory queue connecting consecutive PEs inside one subjob.
// In the paper's model it is the upstream PE's output queue; because both
// ends live in the same process, acknowledgment is implicit and the pipe's
// content is captured in checkpoints (it is part of the producing PE's
// output queue). Consumption follows the same edge-triggered Ready/TryPop
// contract as queue.Input.
type Pipe struct {
	mu    sync.Mutex
	buf   []element.Element
	ready chan struct{}
}

// NewPipe returns an empty pipe.
func NewPipe() *Pipe {
	return &Pipe{ready: make(chan struct{}, 1)}
}

// Push appends elements.
func (p *Pipe) Push(elems []element.Element) {
	if len(elems) == 0 {
		return
	}
	p.mu.Lock()
	p.buf = append(p.buf, elems...)
	p.mu.Unlock()
	p.signal()
}

func (p *Pipe) signal() {
	select {
	case p.ready <- struct{}{}:
	default:
	}
}

// Ready returns the edge-triggered data-availability channel.
func (p *Pipe) Ready() <-chan struct{} { return p.ready }

// TryPop removes and returns up to max elements without blocking. The
// returned entries carry an empty Stream: consumption positions are only
// tracked at subjob boundaries.
func (p *Pipe) TryPop(max int) []queue.In {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.buf)
	if n == 0 {
		return nil
	}
	if n > max {
		n = max
	}
	out := make([]queue.In, n)
	for i := 0; i < n; i++ {
		out[i] = queue.In{Elem: p.buf[i]}
	}
	// Compact in place: the survivors slide to the front of the same
	// backing array instead of reallocating it on every pop.
	k := copy(p.buf, p.buf[n:])
	p.buf = p.buf[:k]
	return out
}

// Snapshot returns a copy of the pipe's content for a checkpoint.
func (p *Pipe) Snapshot() []element.Element {
	p.mu.Lock()
	defer p.mu.Unlock()
	return element.CloneBatch(p.buf)
}

// Restore replaces the pipe's content from a checkpoint.
func (p *Pipe) Restore(elems []element.Element) {
	p.mu.Lock()
	p.buf = append(p.buf[:0], elems...)
	n := len(p.buf)
	p.mu.Unlock()
	if n > 0 {
		p.signal()
	}
}

// Len returns the number of buffered elements.
func (p *Pipe) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}
