package queue

import (
	"sync"

	"streamha/internal/element"
)

// In is one queued input element together with the logical stream it
// arrived on, so that consumption positions can be acknowledged per stream.
type In struct {
	Stream string
	Elem   element.Element
}

// Input is the merged input queue of a subjob copy. It accepts data from
// one or more logical upstream streams, deduplicates by (stream, seq) —
// which covers both active-standby duplicate delivery and post-recovery
// retransmission — and feeds a single FIFO to the subjob's first PE.
//
// Consumption is non-blocking: TryPop drains what is available and Ready
// signals (edge-triggered, capacity one) when new data arrives, so
// consumers can select over data and control channels without a wakeup
// race.
//
// Sequence numbers on each stream must arrive contiguously; the transport
// is FIFO and retransmission always restarts from the consumer's
// acknowledged floor, so a gap can only be produced by a protocol bug.
// Gaps are counted and the offending elements dropped rather than silently
// accepted out of order.
type Input struct {
	mu       sync.Mutex
	buf      []In
	accepted map[string]uint64 // highest accepted seq per stream
	// split/part form the consumer-side partition guard of a keyed-parallel
	// instance: elements whose key routes elsewhere in the live table are
	// dropped (but still advance the dedup floor). The guard consults the
	// shared routing table at push time, so an element that raced a
	// rescaling table flip is never processed by two instances.
	split *Partitioner
	part  int
	gaps  int
	dups  int
	ready chan struct{}
}

// NewInput returns an empty input queue accepting the given streams.
func NewInput(streams ...string) *Input {
	q := &Input{
		accepted: make(map[string]uint64, len(streams)),
		ready:    make(chan struct{}, 1),
	}
	for _, s := range streams {
		q.accepted[s] = 0
	}
	return q
}

// AddStream registers an additional upstream stream.
func (q *Input) AddStream(stream string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.accepted[stream]; !ok {
		q.accepted[stream] = 0
	}
}

// SetPartition installs the partition guard: the queue belongs to
// partition-instance part of the stage routed by split, and elements whose
// key routes to a sibling instance are accepted (for dedup purposes) but
// not queued. A nil split removes the guard.
func (q *Input) SetPartition(split *Partitioner, part int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.split = split
	q.part = part
}

// Repartition re-filters the queued elements against the live routing
// table. A rescaling cutover calls it on the donor instance right after the
// table flip, so elements of moved partitions that were already buffered
// are discarded here and processed only by the instance they moved to.
func (q *Input) Repartition() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.split == nil {
		return
	}
	kept := q.buf[:0]
	for _, in := range q.buf {
		if q.split.Instance(in.Elem.Key) == q.part {
			kept = append(kept, in)
		}
	}
	q.buf = kept
}

// mineLocked reports whether e routes to this queue's partition instance.
func (q *Input) mineLocked(e element.Element) bool {
	return q.split == nil || q.split.Instance(e.Key) == q.part
}

// Push offers a batch of elements that arrived on stream. Duplicates
// (seq <= accepted) are dropped; a gap (seq > accepted+1) is counted and
// dropped. Elements on unknown streams are ignored.
func (q *Input) Push(stream string, elems []element.Element) {
	q.mu.Lock()
	if _, ok := q.accepted[stream]; !ok {
		q.mu.Unlock()
		return
	}
	appended := false
	for _, e := range elems {
		last := q.accepted[stream]
		switch {
		case e.Seq <= last:
			q.dups++
		case e.Seq == last+1:
			q.accepted[stream] = e.Seq
			if !q.mineLocked(e) {
				continue // foreign partition: covered, not queued
			}
			q.buf = append(q.buf, In{Stream: stream, Elem: e})
			appended = true
		default:
			q.gaps++
		}
	}
	q.mu.Unlock()
	if appended {
		q.signal()
	}
}

// PushCovered offers a partition-filtered batch together with the covered
// watermark: the highest sequence number of the unfiltered prefix the batch
// was cut from (transport.Message.Seq on partitioned sends). Sequence
// numbers inside the batch rise but may skip the elements routed to sibling
// instances, so contiguity is not required; after queuing, the stream's
// dedup floor is raised to covered. Replayed prefixes (seq <= accepted) are
// dropped as duplicates exactly like in Push.
func (q *Input) PushCovered(stream string, elems []element.Element, covered uint64) {
	q.mu.Lock()
	last, ok := q.accepted[stream]
	if !ok {
		q.mu.Unlock()
		return
	}
	appended := false
	for _, e := range elems {
		if e.Seq <= last {
			q.dups++
			continue
		}
		last = e.Seq
		if !q.mineLocked(e) {
			continue
		}
		q.buf = append(q.buf, In{Stream: stream, Elem: e})
		appended = true
	}
	if covered > last {
		last = covered
	}
	q.accepted[stream] = last
	q.mu.Unlock()
	if appended {
		q.signal()
	}
}

func (q *Input) signal() {
	select {
	case q.ready <- struct{}{}:
	default:
	}
}

// Ready returns a channel that receives a token when data may be
// available. It is edge-triggered with capacity one: consumers must call
// TryPop until it returns nothing before blocking on Ready again.
func (q *Input) Ready() <-chan struct{} { return q.ready }

// TryPop removes and returns up to max queued elements without blocking.
func (q *Input) TryPop(max int) []In {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.buf)
	if n == 0 {
		return nil
	}
	if n > max {
		n = max
	}
	out := make([]In, n)
	copy(out, q.buf[:n])
	// Compact in place: the survivors slide to the front of the same
	// backing array instead of reallocating it on every pop.
	k := copy(q.buf, q.buf[n:])
	q.buf = q.buf[:k]
	return out
}

// Accepted returns the highest accepted sequence number for stream.
func (q *Input) Accepted(stream string) uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.accepted[stream]
}

// SetAccepted aligns the queue with a restored or read-back snapshot whose
// consumption positions are pos. Queued elements at or below a stream's
// position are discarded (the state they produced is already in the
// snapshot), and the dedup high-water mark is raised to at least the
// position. The mark never moves backward: elements the queue has already
// accepted stay accepted, so in-flight retransmissions are recognized as
// duplicates rather than gaps.
func (q *Input) SetAccepted(pos map[string]uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for s, v := range pos {
		if v > q.accepted[s] {
			q.accepted[s] = v
		}
	}
	kept := q.buf[:0]
	for _, in := range q.buf {
		if in.Elem.Seq > pos[in.Stream] {
			kept = append(kept, in)
		}
	}
	q.buf = kept
}

// AcceptedAll returns the highest accepted sequence number of every stream.
func (q *Input) AcceptedAll() map[string]uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]uint64, len(q.accepted))
	for s, v := range q.accepted {
		out[s] = v
	}
	return out
}

// SnapshotBuf returns a copy of the queued (unprocessed) elements. Only the
// synchronous and individual checkpointing variants include input queues in
// checkpoints; sweeping checkpointing excludes them by design.
func (q *Input) SnapshotBuf() []In {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]In(nil), q.buf...)
}

// RestoreBuf replaces the queued elements and raises the dedup mark to
// cover them.
func (q *Input) RestoreBuf(buf []In) {
	q.mu.Lock()
	q.buf = append([]In(nil), buf...)
	for _, in := range q.buf {
		if in.Elem.Seq > q.accepted[in.Stream] {
			q.accepted[in.Stream] = in.Elem.Seq
		}
	}
	n := len(q.buf)
	q.mu.Unlock()
	if n > 0 {
		q.signal()
	}
}

// Len returns the number of queued elements.
func (q *Input) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// Drops returns the counts of duplicate and gap drops, for tests and
// protocol assertions.
func (q *Input) Drops() (dups, gaps int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dups, q.gaps
}
