package queue

import (
	"sync"

	"streamha/internal/element"
)

// In is one queued input element together with the logical stream it
// arrived on, so that consumption positions can be acknowledged per stream.
type In struct {
	Stream string
	Elem   element.Element
}

// Input is the merged input queue of a subjob copy. It accepts data from
// one or more logical upstream streams, deduplicates by (stream, seq) —
// which covers both active-standby duplicate delivery and post-recovery
// retransmission — and feeds a single FIFO to the subjob's first PE.
//
// Consumption is non-blocking: TryPop drains what is available and Ready
// signals (edge-triggered, capacity one) when new data arrives, so
// consumers can select over data and control channels without a wakeup
// race.
//
// Sequence numbers on each stream must arrive contiguously; the transport
// is FIFO and retransmission always restarts from the consumer's
// acknowledged floor, so a gap can only be produced by a protocol bug.
// Gaps are counted and the offending elements dropped rather than silently
// accepted out of order.
type Input struct {
	mu       sync.Mutex
	buf      []In
	accepted map[string]uint64 // highest accepted seq per stream
	gaps     int
	dups     int
	ready    chan struct{}
}

// NewInput returns an empty input queue accepting the given streams.
func NewInput(streams ...string) *Input {
	q := &Input{
		accepted: make(map[string]uint64, len(streams)),
		ready:    make(chan struct{}, 1),
	}
	for _, s := range streams {
		q.accepted[s] = 0
	}
	return q
}

// AddStream registers an additional upstream stream.
func (q *Input) AddStream(stream string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.accepted[stream]; !ok {
		q.accepted[stream] = 0
	}
}

// Push offers a batch of elements that arrived on stream. Duplicates
// (seq <= accepted) are dropped; a gap (seq > accepted+1) is counted and
// dropped. Elements on unknown streams are ignored.
func (q *Input) Push(stream string, elems []element.Element) {
	q.mu.Lock()
	if _, ok := q.accepted[stream]; !ok {
		q.mu.Unlock()
		return
	}
	appended := false
	for _, e := range elems {
		last := q.accepted[stream]
		switch {
		case e.Seq <= last:
			q.dups++
		case e.Seq == last+1:
			q.accepted[stream] = e.Seq
			q.buf = append(q.buf, In{Stream: stream, Elem: e})
			appended = true
		default:
			q.gaps++
		}
	}
	q.mu.Unlock()
	if appended {
		q.signal()
	}
}

func (q *Input) signal() {
	select {
	case q.ready <- struct{}{}:
	default:
	}
}

// Ready returns a channel that receives a token when data may be
// available. It is edge-triggered with capacity one: consumers must call
// TryPop until it returns nothing before blocking on Ready again.
func (q *Input) Ready() <-chan struct{} { return q.ready }

// TryPop removes and returns up to max queued elements without blocking.
func (q *Input) TryPop(max int) []In {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.buf)
	if n == 0 {
		return nil
	}
	if n > max {
		n = max
	}
	out := make([]In, n)
	copy(out, q.buf[:n])
	// Compact in place: the survivors slide to the front of the same
	// backing array instead of reallocating it on every pop.
	k := copy(q.buf, q.buf[n:])
	q.buf = q.buf[:k]
	return out
}

// Accepted returns the highest accepted sequence number for stream.
func (q *Input) Accepted(stream string) uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.accepted[stream]
}

// SetAccepted aligns the queue with a restored or read-back snapshot whose
// consumption positions are pos. Queued elements at or below a stream's
// position are discarded (the state they produced is already in the
// snapshot), and the dedup high-water mark is raised to at least the
// position. The mark never moves backward: elements the queue has already
// accepted stay accepted, so in-flight retransmissions are recognized as
// duplicates rather than gaps.
func (q *Input) SetAccepted(pos map[string]uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for s, v := range pos {
		if v > q.accepted[s] {
			q.accepted[s] = v
		}
	}
	kept := q.buf[:0]
	for _, in := range q.buf {
		if in.Elem.Seq > pos[in.Stream] {
			kept = append(kept, in)
		}
	}
	q.buf = kept
}

// AcceptedAll returns the highest accepted sequence number of every stream.
func (q *Input) AcceptedAll() map[string]uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]uint64, len(q.accepted))
	for s, v := range q.accepted {
		out[s] = v
	}
	return out
}

// SnapshotBuf returns a copy of the queued (unprocessed) elements. Only the
// synchronous and individual checkpointing variants include input queues in
// checkpoints; sweeping checkpointing excludes them by design.
func (q *Input) SnapshotBuf() []In {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]In(nil), q.buf...)
}

// RestoreBuf replaces the queued elements and raises the dedup mark to
// cover them.
func (q *Input) RestoreBuf(buf []In) {
	q.mu.Lock()
	q.buf = append([]In(nil), buf...)
	for _, in := range q.buf {
		if in.Elem.Seq > q.accepted[in.Stream] {
			q.accepted[in.Stream] = in.Elem.Seq
		}
	}
	n := len(q.buf)
	q.mu.Unlock()
	if n > 0 {
		q.signal()
	}
}

// Len returns the number of queued elements.
func (q *Input) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// Drops returns the counts of duplicate and gap drops, for tests and
// protocol assertions.
func (q *Input) Drops() (dups, gaps int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dups, q.gaps
}
