package queue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamha/internal/element"
)

func seqElems(from, to uint64) []element.Element {
	out := make([]element.Element, 0, to-from+1)
	for s := from; s <= to; s++ {
		out = append(out, element.Element{ID: s, Seq: s})
	}
	return out
}

func TestPushPopInOrder(t *testing.T) {
	q := NewInput("a")
	q.Push("a", seqElems(1, 5))
	got := q.TryPop(10)
	if len(got) != 5 {
		t.Fatalf("popped %d", len(got))
	}
	for i, in := range got {
		if in.Elem.Seq != uint64(i+1) || in.Stream != "a" {
			t.Fatalf("entry %d = %+v", i, in)
		}
	}
}

func TestDuplicatesDropped(t *testing.T) {
	q := NewInput("a")
	q.Push("a", seqElems(1, 3))
	q.Push("a", seqElems(1, 3)) // retransmission
	q.Push("a", seqElems(2, 5)) // overlapping retransmission
	if got := q.TryPop(100); len(got) != 5 {
		t.Fatalf("popped %d, want 5 unique", len(got))
	}
	dups, gaps := q.Drops()
	if dups != 5 || gaps != 0 {
		t.Fatalf("dups=%d gaps=%d", dups, gaps)
	}
}

func TestGapsDroppedAndCounted(t *testing.T) {
	q := NewInput("a")
	q.Push("a", seqElems(1, 2))
	q.Push("a", seqElems(5, 6)) // 3,4 missing
	if got := q.TryPop(100); len(got) != 2 {
		t.Fatalf("popped %d, want 2", len(got))
	}
	_, gaps := q.Drops()
	if gaps != 2 {
		t.Fatalf("gaps=%d", gaps)
	}
}

func TestUnknownStreamIgnored(t *testing.T) {
	q := NewInput("a")
	q.Push("zzz", seqElems(1, 3))
	if q.Len() != 0 {
		t.Fatal("accepted unknown stream")
	}
}

func TestAddStream(t *testing.T) {
	q := NewInput("a")
	q.AddStream("b")
	q.Push("b", seqElems(1, 2))
	if q.Len() != 2 {
		t.Fatal("AddStream did not register")
	}
}

func TestMergeAcrossStreams(t *testing.T) {
	q := NewInput("a", "b")
	q.Push("a", seqElems(1, 2))
	q.Push("b", seqElems(1, 3))
	if q.Len() != 5 {
		t.Fatalf("len %d", q.Len())
	}
	if q.Accepted("a") != 2 || q.Accepted("b") != 3 {
		t.Fatal("wrong accepted positions")
	}
}

func TestReadySignalsOnce(t *testing.T) {
	q := NewInput("a")
	q.Push("a", seqElems(1, 1))
	q.Push("a", seqElems(2, 2))
	select {
	case <-q.Ready():
	default:
		t.Fatal("no ready token")
	}
	select {
	case <-q.Ready():
		t.Fatal("ready token duplicated")
	default:
	}
}

func TestReadyAfterDrainResignals(t *testing.T) {
	q := NewInput("a")
	q.Push("a", seqElems(1, 1))
	<-q.Ready()
	q.TryPop(10)
	q.Push("a", seqElems(2, 2))
	select {
	case <-q.Ready():
	default:
		t.Fatal("no ready after new data")
	}
}

func TestSetAcceptedDiscardsCoveredKeepsRest(t *testing.T) {
	q := NewInput("a")
	q.Push("a", seqElems(1, 10))
	q.SetAccepted(map[string]uint64{"a": 6})
	got := q.TryPop(100)
	if len(got) != 4 || got[0].Elem.Seq != 7 {
		t.Fatalf("kept %d starting at %d", len(got), got[0].Elem.Seq)
	}
}

func TestSetAcceptedNeverRewindsDedupMark(t *testing.T) {
	q := NewInput("a")
	q.Push("a", seqElems(1, 10))
	q.TryPop(100)
	// A rollback snapshot may carry an older position; the mark must not
	// move backward or later arrivals would read as gaps.
	q.SetAccepted(map[string]uint64{"a": 4})
	if q.Accepted("a") != 10 {
		t.Fatalf("accepted rewound to %d", q.Accepted("a"))
	}
	q.Push("a", seqElems(11, 12))
	if _, gaps := q.Drops(); gaps != 0 {
		t.Fatalf("gap recorded after rollback alignment: %d", gaps)
	}
	if q.Len() != 2 {
		t.Fatalf("len %d", q.Len())
	}
}

func TestSetAcceptedAdvancesMark(t *testing.T) {
	q := NewInput("a")
	q.Push("a", seqElems(1, 3))
	q.SetAccepted(map[string]uint64{"a": 8})
	// Duplicates of 4..8 (already covered by the restored state) drop.
	q.Push("a", seqElems(4, 8))
	if q.Len() != 0 {
		t.Fatalf("len %d", q.Len())
	}
	q.Push("a", seqElems(9, 9))
	if q.Len() != 1 {
		t.Fatal("contiguous arrival after restore rejected")
	}
}

func TestSnapshotRestoreBuf(t *testing.T) {
	q := NewInput("a")
	q.Push("a", seqElems(1, 4))
	buf := q.SnapshotBuf()
	if len(buf) != 4 {
		t.Fatalf("snapshot %d", len(buf))
	}
	q2 := NewInput("a")
	q2.RestoreBuf(buf)
	if q2.Len() != 4 || q2.Accepted("a") != 4 {
		t.Fatalf("restored len=%d accepted=%d", q2.Len(), q2.Accepted("a"))
	}
}

// TestExactlyOnceUnderRetransmissionProperty: any sequence of (possibly
// duplicated, possibly batched) contiguous pushes yields each sequence
// number exactly once, in order.
func TestExactlyOnceUnderRetransmissionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewInput("s")
		const total = 200
		sent := uint64(0)
		for sent < total {
			// Retransmit from a random point at or before sent, extending
			// the frontier by a random amount — the shape real recoveries
			// produce.
			from := uint64(1)
			if sent > 0 {
				from = uint64(rng.Intn(int(sent))) + 1
			}
			to := sent + uint64(rng.Intn(8))
			if to > total {
				to = total
			}
			if to >= from {
				q.Push("s", seqElems(from, to))
			}
			if to > sent {
				sent = to
			}
		}
		got := q.TryPop(10000)
		if len(got) != total {
			return false
		}
		for i, in := range got {
			if in.Elem.Seq != uint64(i+1) {
				return false
			}
		}
		_, gaps := q.Drops()
		return gaps == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestFanInPreservesPerStreamOrderProperty: merging streams may interleave
// arbitrarily, but each stream's elements appear in sequence order.
func TestFanInPreservesPerStreamOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewInput("a", "b")
		next := map[string]uint64{"a": 0, "b": 0}
		for i := 0; i < 100; i++ {
			s := "a"
			if rng.Intn(2) == 1 {
				s = "b"
			}
			n := uint64(rng.Intn(4) + 1)
			q.Push(s, seqElems(next[s]+1, next[s]+n))
			next[s] += n
		}
		seen := map[string]uint64{}
		for {
			got := q.TryPop(16)
			if len(got) == 0 {
				break
			}
			for _, in := range got {
				if in.Elem.Seq != seen[in.Stream]+1 {
					return false
				}
				seen[in.Stream] = in.Elem.Seq
			}
		}
		return seen["a"] == next["a"] && seen["b"] == next["b"]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
