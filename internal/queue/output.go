// Package queue implements the input and output queues that connect
// processing elements across machines, including the cumulative
// acknowledgment and trimming protocol that sweeping checkpointing is built
// on (Section III of the paper).
//
// An output queue assigns an incremental sequence number to every newly
// produced element and retains elements until every active downstream copy
// has acknowledged them. A downstream acknowledges data only after the data
// has been processed and the resulting state checkpointed, so any element a
// failed copy might need again is still retained upstream and can be
// retransmitted. Input queues deduplicate by (logical stream, sequence
// number), which simultaneously handles active-standby duplicate delivery
// and post-recovery retransmission.
//
// # Batch ownership
//
// Publish takes ownership of the batch slice passed to it: the queue
// stamps sequence numbers into it and then shares that same slice, without
// copying, as the payload of the data message sent to every active
// subscriber (retention uses a separate internal copy, so retransmission
// never reads the caller's slice). Callers must therefore hand Publish a
// batch they will neither mutate nor reuse afterwards; reading it — e.g.
// to inspect the assigned sequence numbers via Publish's return value — is
// fine. Symmetrically, message handlers must treat received element slices
// as immutable, since every subscriber of a stream observes the same
// backing array.
package queue

import (
	"fmt"
	"sync"

	"streamha/internal/element"
	"streamha/internal/transport"
)

// Sender transmits a message to a node. Output queues use it to push data
// to downstream copies; the subjob runtime provides the machine's endpoint.
type Sender func(to transport.NodeID, msg transport.Message)

// Subscriber identifies one downstream copy receiving this output stream.
type Subscriber struct {
	// Node is the machine hosting the downstream copy.
	Node transport.NodeID
	// Stream is the input stream name the downstream copy listens on.
	Stream string
	// Active controls whether data flows. Hybrid standby pre-creates
	// inactive subscriptions ("early connection", isActive=false in the
	// paper) so that switchover is a flag flip.
	Active bool
	// part is the partition-instance index this subscriber consumes, or -1
	// for an unfiltered subscriber. Partitioned sends carry only the
	// elements routed to part, plus a covered-sequence watermark (see
	// Publish), so the consumer's dedup floor still advances past the
	// elements that went to sibling instances.
	part int

	acked uint64 // guarded by Output.mu

	// sendMu serializes every transmission to this subscriber — publish
	// fan-out (which runs outside Output.mu) and activation replay — so
	// the two cannot interleave and double-deliver.
	sendMu sync.Mutex
	// sent is the highest sequence number ever transmitted to this
	// subscriber, guarded by sendMu. Replay resumes after it (unless
	// forced), and publish fan-out skips any prefix a concurrent replay
	// already covered, closing the duplicate-delivery race between an
	// in-flight Publish and an Activate/ResetSubscriber replay.
	sent uint64
}

// Output is the output queue of the last PE of a subjob copy for one
// logical stream. It is safe for concurrent use.
type Output struct {
	// StreamID names the logical stream. All copies of the producing subjob
	// share it, so downstream dedup is replica-agnostic.
	StreamID string

	mu      sync.Mutex
	send    Sender
	buf     ring   // elements > floor, in seq order
	floor   uint64 // highest trimmed (fully acked) seq
	nextSeq uint64 // seq to assign to the next published element
	subs    map[transport.NodeID]*Subscriber
	// active is an immutable snapshot of the active fan-out destinations,
	// rebuilt whenever subscriptions change. Publish reads the slice header
	// under the lock and iterates it outside the lock, so the hot path
	// neither allocates nor holds the lock during sends.
	active []*Subscriber
	// router is the keyed-parallel routing table shared by every producer
	// copy feeding a partitioned stage; nil when no subscriber filters by
	// partition. Partition-filtered subscribers consult it per batch.
	router *Partitioner
	onTrim func()

	// assumedLost counts retained elements deliberately skipped (not
	// replayed) by ActivateSkipReplay — the output-queue share of the
	// approx policy's admitted loss. skippedReplays counts the skips.
	assumedLost    uint64
	skippedReplays int
}

// NewOutput creates an output queue for streamID that transmits via send.
func NewOutput(streamID string, send Sender) *Output {
	return &Output{
		StreamID: streamID,
		send:     send,
		nextSeq:  1,
		subs:     make(map[transport.NodeID]*Subscriber),
	}
}

// SetOnTrim registers a callback invoked (without the queue lock held)
// whenever trimming removes at least one element. Sweeping checkpointing
// checkpoints the PE immediately after its output queue is trimmed.
func (o *Output) SetOnTrim(f func()) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.onTrim = f
}

// rebuildActiveLocked recomputes the immutable fan-out snapshot. Called
// under the lock whenever subscription state changes; the old slice is
// never mutated, so a Publish that captured it keeps iterating a
// consistent view.
func (o *Output) rebuildActiveLocked() {
	active := make([]*Subscriber, 0, len(o.subs))
	for _, s := range o.subs {
		if s.Active {
			active = append(active, s)
		}
	}
	o.active = active
}

// SetPartitioner installs the keyed-parallel routing table consulted by
// partition-filtered subscribers. Every copy of the producing subjob must
// share the same Partitioner so replicas route identically.
func (o *Output) SetPartitioner(pt *Partitioner) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.router = pt
}

// Partitioner returns the installed routing table, or nil.
func (o *Output) Partitioner() *Partitioner {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.router
}

// Subscribe adds a downstream copy. If active, data published from now on
// flows to it; its acknowledgment position starts at the current trim
// floor, which is exactly the data a checkpoint-restored copy already has.
func (o *Output) Subscribe(node transport.NodeID, stream string, active bool) {
	o.SubscribePart(node, stream, active, -1)
}

// SubscribePart adds a downstream copy that consumes only the elements
// routed to partition-instance part (-1 subscribes unfiltered, like
// Subscribe). Partitioned sends carry a covered-sequence watermark so the
// consumer's dedup floor advances past sibling instances' elements.
func (o *Output) SubscribePart(node transport.NodeID, stream string, active bool, part int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.subs[node] = &Subscriber{
		Node:   node,
		Stream: stream,
		Active: active,
		part:   part,
		acked:  o.floor,
		sent:   o.floor,
	}
	o.rebuildActiveLocked()
}

// PartOf returns the partition-instance index of the subscriber on node,
// or -1 when the subscriber is unfiltered or unknown. HA policies use it to
// give a standby the same partition view as the copy it protects.
func (o *Output) PartOf(node transport.NodeID) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	if s, ok := o.subs[node]; ok {
		return s.part
	}
	return -1
}

// Unsubscribe removes the downstream copy on node.
func (o *Output) Unsubscribe(node transport.NodeID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.subs, node)
	o.rebuildActiveLocked()
}

// Activate makes the subscription for node active (or inactive) and, when
// activating, retransmits every retained element the subscriber has not
// acknowledged. Retransmission and subsequent publishes share the queue
// lock, so the subscriber observes a contiguous sequence.
func (o *Output) Activate(node transport.NodeID, active bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s, ok := o.subs[node]
	if !ok {
		return
	}
	wasActive := s.Active
	s.Active = active
	o.rebuildActiveLocked()
	if !active || wasActive {
		return
	}
	// A newly activated standby resumes from the trim floor: everything it
	// has not acknowledged is still retained and is replayed now.
	if s.acked < o.floor {
		s.acked = o.floor
	}
	o.replayLocked(s, false)
}

// PendingReplay estimates how many retained elements activating the
// subscription for node would replay: everything between its acknowledged
// position and the retention head. An already-active or unknown
// subscriber pends nothing. The approx policy sums this across upstreams
// to decide whether skipping the replay fits its error budget.
func (o *Output) PendingReplay(node transport.NodeID) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	s, ok := o.subs[node]
	if !ok || s.Active {
		return 0
	}
	after := s.acked
	if after < o.floor {
		after = o.floor
	}
	head := o.floor + uint64(o.buf.len())
	if head <= after {
		return 0
	}
	return int(head - after)
}

// ActivateSkipReplay activates the subscription for node WITHOUT replaying
// retained elements: the subscriber's positions jump to the retention
// head, the skipped elements are counted as assumed-lost, and an empty
// covered-watermark message advances the consumer's dedup floor past them
// so subsequent publishes arrive gap-free. This is the approx policy's
// budgeted failover path; the returned count is the loss it admitted.
func (o *Output) ActivateSkipReplay(node transport.NodeID) int {
	o.mu.Lock()
	s, ok := o.subs[node]
	if !ok {
		o.mu.Unlock()
		return 0
	}
	wasActive := s.Active
	s.Active = true
	o.rebuildActiveLocked()
	if wasActive {
		o.mu.Unlock()
		return 0
	}
	head := o.floor + uint64(o.buf.len())
	after := s.acked
	if after < o.floor {
		after = o.floor
	}
	skipped := 0
	if head > after {
		skipped = int(head - after)
	}
	if s.acked < head {
		s.acked = head
	}
	o.assumedLost += uint64(skipped)
	o.skippedReplays++
	// The watermark send holds sendMu like a replay would: a Publish that
	// picks up the now-active subscription is ordered after it, so its
	// elements land on a dedup floor already raised to head.
	s.sendMu.Lock()
	if s.sent < head {
		s.sent = head
	}
	if head > 0 {
		o.send(s.Node, transport.Message{
			Kind:   transport.KindData,
			Stream: s.Stream,
			Seq:    head,
		})
	}
	s.sendMu.Unlock()
	trimmed := o.trimLocked()
	onTrim := o.onTrim
	o.mu.Unlock()
	if trimmed > 0 && onTrim != nil {
		onTrim()
	}
	return skipped
}

// ResetSubscriber rebinds the subscription for node to a fresh copy
// starting at the trim floor and retransmits retained data to it. Passive
// standby uses it when a recovered copy is deployed on a new machine.
func (o *Output) ResetSubscriber(oldNode, newNode transport.NodeID, stream string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	part := -1
	if old, ok := o.subs[oldNode]; ok {
		part = old.part // the recovered copy serves the same partition
	}
	delete(o.subs, oldNode)
	s := &Subscriber{Node: newNode, Stream: stream, Active: true, part: part, acked: o.floor, sent: o.floor}
	o.subs[newNode] = s
	o.rebuildActiveLocked()
	o.replayLocked(s, false)
}

// replayLocked retransmits retained elements to s. The caller holds o.mu;
// replayLocked additionally takes s.sendMu so the replay is ordered
// against any in-flight publish fan-out to the same subscriber.
//
// Normally replay resumes after max(acked, floor, sent): everything below
// the send watermark has already been put on the wire by a publish or an
// earlier replay, so resending it would only duplicate. With force set
// (RetransmitAll, the in-flight-loss recovery path) the watermark is
// ignored and everything unacknowledged is resent, since the point there
// is precisely that earlier sends may have been lost. The batch is copied
// out of the ring: retained slots are overwritten in place as the ring
// wraps, so in-flight messages must not alias them.
func (o *Output) replayLocked(s *Subscriber, force bool) {
	head := o.floor + uint64(o.buf.len())
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	after := s.acked
	if after < o.floor {
		after = o.floor
	}
	if !force && after < s.sent {
		after = s.sent
	}
	if s.sent < after {
		s.sent = after
	}
	if after >= head {
		return
	}
	batch := o.buf.slice(int(after - o.floor))
	s.sent = head
	covered := uint64(0)
	if s.part >= 0 {
		covered = head
		if o.router != nil {
			batch = filterPart(batch, o.router, s.part)
		}
		if len(batch) == 0 {
			// Nothing of this subscriber's partitions is retained; the send
			// watermark advanced, and the next non-empty covered send will
			// carry the dedup floor forward.
			return
		}
	}
	o.send(s.Node, transport.Message{
		Kind:     transport.KindData,
		Stream:   s.Stream,
		Seq:      covered,
		Elements: batch,
	})
}

// filterPart copies the elements of batch routed to partition-instance part
// into a fresh slice. The copy is required: filtered sends cannot share the
// published batch across subscribers the way unfiltered fan-out does.
func filterPart(batch []element.Element, router *Partitioner, part int) []element.Element {
	var out []element.Element
	for _, e := range batch {
		if router.Instance(e.Key) == part {
			out = append(out, e)
		}
	}
	return out
}

// Publish appends newly produced elements, assigns their sequence numbers,
// and transmits them to every active subscriber. It returns the elements
// with sequence numbers filled in.
//
// Publish takes ownership of elems (see the package comment): the slice is
// shared as the payload of every outgoing data message, so the caller must
// not mutate or reuse it after the call. Retention uses an internal copy.
func (o *Output) Publish(elems []element.Element) []element.Element {
	if len(elems) == 0 {
		return elems
	}
	o.mu.Lock()
	for i := range elems {
		elems[i].Seq = o.nextSeq
		o.nextSeq++
	}
	o.buf.append(elems)
	targets := o.active
	router := o.router
	o.mu.Unlock()

	first := elems[0].Seq
	last := elems[len(elems)-1].Seq
	for _, s := range targets {
		// Holding sendMu across the send orders this fan-out against any
		// concurrent activation replay to the same subscriber; the send
		// watermark then trims whatever prefix such a replay (which runs
		// under the queue lock, hence after the batch was appended) has
		// already transmitted, so no element is delivered twice.
		s.sendMu.Lock()
		if s.sent >= last {
			s.sendMu.Unlock()
			continue
		}
		out := elems
		if s.sent >= first {
			out = elems[s.sent-first+1:]
		}
		covered := uint64(0)
		if s.part >= 0 {
			// Partition-filtered fan-out: send only this instance's elements,
			// stamped with the covered watermark (the last sequence of the
			// whole prefix), so the consumer's dedup floor advances over the
			// elements that went to sibling instances. An all-foreign batch
			// is skipped entirely — the watermark rides the next send.
			covered = last
			if router != nil {
				out = filterPart(out, router, s.part)
			}
			if len(out) == 0 {
				s.sent = last
				s.sendMu.Unlock()
				continue
			}
		}
		s.sent = last
		o.send(s.Node, transport.Message{
			Kind:     transport.KindData,
			Stream:   s.Stream,
			Seq:      covered,
			Elements: out,
		})
		s.sendMu.Unlock()
	}
	return elems
}

// Ack records a cumulative acknowledgment from the downstream copy on node
// and trims every element acknowledged by all active subscribers.
func (o *Output) Ack(node transport.NodeID, seq uint64) {
	o.mu.Lock()
	s, ok := o.subs[node]
	if !ok {
		o.mu.Unlock()
		return
	}
	if seq > s.acked {
		s.acked = seq
	}
	trimmed := o.trimLocked()
	onTrim := o.onTrim
	o.mu.Unlock()
	if trimmed > 0 && onTrim != nil {
		onTrim()
	}
}

// trimLocked removes every element acknowledged by all active subscribers
// and returns how many were removed. Inactive (early-connection) standby
// subscriptions do not hold back trimming: the sweeping protocol guarantees
// their restart point equals the primary's acknowledged position. Trimming
// advances the ring's head — O(1) regardless of how many elements remain
// retained.
func (o *Output) trimLocked() int {
	target := uint64(0)
	first := true
	for _, s := range o.subs {
		if !s.Active {
			continue
		}
		if first || s.acked < target {
			target = s.acked
			first = false
		}
	}
	if first || target <= o.floor {
		return 0
	}
	n := int(target - o.floor)
	if n > o.buf.len() {
		n = o.buf.len()
	}
	o.buf.trim(n)
	o.floor += uint64(n)
	return n
}

// Snapshot captures the queue's retained elements and sequence state for a
// checkpoint. Subscribers are deliberately excluded: connection state is
// re-established by the HA controller on recovery.
func (o *Output) Snapshot() OutputSnapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	return OutputSnapshot{
		StreamID: o.StreamID,
		Floor:    o.floor,
		NextSeq:  o.nextSeq,
		Buf:      o.buf.slice(0),
	}
}

// Restore overwrites the queue's retained elements and sequence state from
// a snapshot.
func (o *Output) Restore(s OutputSnapshot) error {
	if s.StreamID != o.StreamID {
		return fmt.Errorf("queue: snapshot for stream %q applied to %q", s.StreamID, o.StreamID)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.floor = s.Floor
	o.nextSeq = s.NextSeq
	o.buf.reset(s.Buf)
	for _, sub := range o.subs {
		if sub.acked < o.floor {
			sub.acked = o.floor
		}
		// The send watermark described the replaced queue's transmissions;
		// rewind it to the ack position so the recovery retransmission that
		// follows a restore is not suppressed.
		sub.sendMu.Lock()
		sub.sent = sub.acked
		sub.sendMu.Unlock()
	}
	return nil
}

// FastForward advances the queue's sequence space to next without
// publishing: retained elements are dropped, the trim floor moves to
// next-1, and subscriber positions advance with it. A standby promoted
// from a partial checkpoint uses it so the elements it regenerates from
// replayed input receive the same sequence numbers the failed primary
// assigned — downstream consumers, whose dedup floors already sit at or
// near next-1, then see a contiguous stream. Moving backwards is a no-op.
func (o *Output) FastForward(next uint64) {
	if next == 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if next <= o.nextSeq {
		return
	}
	o.buf.trim(o.buf.len())
	o.floor = next - 1
	o.nextSeq = next
	for _, sub := range o.subs {
		if sub.acked < o.floor {
			sub.acked = o.floor
		}
		sub.sendMu.Lock()
		if sub.sent < sub.acked {
			sub.sent = sub.acked
		}
		sub.sendMu.Unlock()
	}
}

// OutputSnapshot is the checkpointable state of an output queue.
type OutputSnapshot struct {
	StreamID string
	Floor    uint64
	NextSeq  uint64
	Buf      []element.Element
}

// OutputDelta is the incremental counterpart of OutputSnapshot: the queue's
// current floor and next-sequence positions plus only the elements
// published since the previous capture. FromSeq is the chain link — the
// NextSeq recorded by that previous capture — so a consumer folding deltas
// can verify contiguity.
type OutputDelta struct {
	StreamID string
	Floor    uint64
	NextSeq  uint64
	FromSeq  uint64
	New      []element.Element
}

// SnapshotSince captures the queue state as a delta against a previous
// capture whose NextSeq was fromSeq: only elements with seq >= fromSeq are
// copied. It returns ok=false when fromSeq is ahead of the queue (the
// queue was restored to an older state since the previous capture), in
// which case the caller must fall back to a full Snapshot.
func (o *Output) SnapshotSince(fromSeq uint64) (OutputDelta, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if fromSeq > o.nextSeq || fromSeq == 0 {
		return OutputDelta{}, false
	}
	d := OutputDelta{
		StreamID: o.StreamID,
		Floor:    o.floor,
		NextSeq:  o.nextSeq,
		FromSeq:  fromSeq,
	}
	start := fromSeq
	if start < o.floor+1 {
		start = o.floor + 1
	}
	if start < o.nextSeq {
		d.New = o.buf.slice(int(start - o.floor - 1))
	}
	return d, true
}

// ApplyDelta folds a delta into a full output-queue snapshot: the retained
// window is trimmed up to the delta's floor and extended with the newly
// published elements. It fails when the delta does not chain onto this
// snapshot (FromSeq mismatch) or would move the queue backwards.
func (s *OutputSnapshot) ApplyDelta(d OutputDelta) error {
	if d.StreamID != s.StreamID {
		return fmt.Errorf("queue: output delta for stream %q applied to %q", d.StreamID, s.StreamID)
	}
	if d.FromSeq != s.NextSeq {
		return fmt.Errorf("queue: output delta chains from seq %d, snapshot is at %d", d.FromSeq, s.NextSeq)
	}
	if d.Floor < s.Floor || d.NextSeq < s.NextSeq {
		return fmt.Errorf("queue: output delta moves stream %q backwards", d.StreamID)
	}
	if n := int(d.Floor - s.Floor); n > 0 {
		if n > len(s.Buf) {
			n = len(s.Buf)
		}
		s.Buf = s.Buf[n:]
	}
	s.Buf = append(s.Buf, d.New...)
	if want := int(d.NextSeq - 1 - d.Floor); len(s.Buf) != want {
		return fmt.Errorf("queue: output delta fold for %q yields %d retained elements, want %d",
			d.StreamID, len(s.Buf), want)
	}
	s.Floor = d.Floor
	s.NextSeq = d.NextSeq
	return nil
}

// ApplyDelta folds a delta into the live queue, the standby-refresh
// counterpart of Restore: the retained window advances to the delta's
// floor and the newly published elements are appended. The queue takes
// ownership of d.New. Fails when the delta does not chain onto the queue's
// current position.
func (o *Output) ApplyDelta(d OutputDelta) error {
	if d.StreamID != o.StreamID {
		return fmt.Errorf("queue: output delta for stream %q applied to %q", d.StreamID, o.StreamID)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if d.FromSeq != o.nextSeq {
		return fmt.Errorf("queue: output delta chains from seq %d, queue is at %d", d.FromSeq, o.nextSeq)
	}
	if d.Floor < o.floor || d.NextSeq < o.nextSeq {
		return fmt.Errorf("queue: output delta moves stream %q backwards", d.StreamID)
	}
	if n := int(d.Floor - o.floor); n > 0 {
		if n > o.buf.len() {
			n = o.buf.len()
		}
		o.buf.trim(n)
	}
	o.buf.append(d.New)
	o.floor = d.Floor
	o.nextSeq = d.NextSeq
	for _, sub := range o.subs {
		if sub.acked < o.floor {
			sub.acked = o.floor
		}
	}
	return nil
}

// Len returns the number of retained (unacknowledged) elements.
func (o *Output) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.buf.len()
}

// Floor returns the highest trimmed sequence number.
func (o *Output) Floor() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.floor
}

// NextSeq returns the sequence number the next published element will be
// assigned.
func (o *Output) NextSeq() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.nextSeq
}

// OutputStats is a JSON-marshalable view of an output queue's retention
// and subscription state, exported through the metrics registry.
type OutputStats struct {
	Stream            string `json:"stream"`
	Retained          int    `json:"retained"`
	Floor             uint64 `json:"floor"`
	NextSeq           uint64 `json:"next_seq"`
	Subscribers       int    `json:"subscribers"`
	ActiveSubscribers int    `json:"active_subscribers"`
	// AssumedLost and SkippedReplays account ActivateSkipReplay's admitted
	// loss (the approx policy's budgeted failovers).
	AssumedLost    uint64 `json:"assumed_lost"`
	SkippedReplays int    `json:"skipped_replays"`
}

// Stats captures the queue's current depth, trim floor and subscription
// counts in one locked read.
func (o *Output) Stats() OutputStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := OutputStats{
		Stream:         o.StreamID,
		Retained:       o.buf.len(),
		Floor:          o.floor,
		NextSeq:        o.nextSeq,
		Subscribers:    len(o.subs),
		AssumedLost:    o.assumedLost,
		SkippedReplays: o.skippedReplays,
	}
	for _, s := range o.subs {
		if s.Active {
			st.ActiveSubscribers++
		}
	}
	return st
}

// AckedBy returns the cumulative ack position of the subscriber on node.
func (o *Output) AckedBy(node transport.NodeID) (uint64, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s, ok := o.subs[node]
	if !ok {
		return 0, false
	}
	return s.acked, true
}

// RetransmitAll resends every retained element each active subscriber has
// not acknowledged, ignoring the per-subscriber send watermark. Recovery
// paths call it after restoring a copy's output queue, covering data that
// may have been lost in flight when its peer failed; downstream
// deduplication absorbs any excess.
func (o *Output) RetransmitAll() {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, s := range o.subs {
		if !s.Active {
			continue
		}
		o.replayLocked(s, true)
	}
}

// Resync force-replays everything node has not acknowledged, reactivating
// its subscription if needed. A consumer that restarted from a durable
// checkpoint requests this from each upstream: elements sent to the dead
// process are past the send watermark but were never delivered, so only a
// forced replay from the acknowledgment floor recovers them. The
// consumer's restored input dedup absorbs the overlap.
func (o *Output) Resync(node transport.NodeID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s, ok := o.subs[node]
	if !ok {
		return
	}
	if !s.Active {
		s.Active = true
		o.rebuildActiveLocked()
	}
	o.replayLocked(s, true)
}
