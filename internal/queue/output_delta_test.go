package queue

import (
	"testing"

	"streamha/internal/transport"
)

// TestSnapshotSinceFoldEquivalence: a snapshot plus the deltas captured
// between publish/ack rounds equals a fresh full snapshot.
func TestSnapshotSinceFoldEquivalence(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("down", "x", true)

	base := o.Snapshot()
	last := base.NextSeq

	rounds := []struct {
		publish int
		ack     uint64
	}{
		{3, 0}, {4, 2}, {0, 5}, {2, 7},
	}
	for i, r := range rounds {
		if r.publish > 0 {
			o.Publish(elems(r.publish))
		}
		if r.ack > 0 {
			o.Ack("down", r.ack)
		}
		d, ok := o.SnapshotSince(last)
		if !ok {
			t.Fatalf("round %d: SnapshotSince(%d) refused", i, last)
		}
		if err := base.ApplyDelta(d); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		last = d.NextSeq

		full := o.Snapshot()
		if base.Floor != full.Floor || base.NextSeq != full.NextSeq || len(base.Buf) != len(full.Buf) {
			t.Fatalf("round %d: folded (f=%d n=%d len=%d) != full (f=%d n=%d len=%d)",
				i, base.Floor, base.NextSeq, len(base.Buf), full.Floor, full.NextSeq, len(full.Buf))
		}
		for j := range full.Buf {
			if base.Buf[j].Seq != full.Buf[j].Seq {
				t.Fatalf("round %d: buf[%d] seq %d != %d", i, j, base.Buf[j].Seq, full.Buf[j].Seq)
			}
		}
	}
}

func TestSnapshotSinceRefusesAheadOrZero(t *testing.T) {
	o := NewOutput("st", func(transport.NodeID, transport.Message) {})
	if _, ok := o.SnapshotSince(0); ok {
		t.Fatal("fromSeq 0 must force a full snapshot")
	}
	if _, ok := o.SnapshotSince(5); ok {
		t.Fatal("fromSeq ahead of the queue must force a full snapshot")
	}
	if _, ok := o.SnapshotSince(1); !ok {
		t.Fatal("fromSeq at the queue head must succeed")
	}
}

func TestOutputSnapshotApplyDeltaRejectsBreaks(t *testing.T) {
	snap := OutputSnapshot{StreamID: "st", Floor: 0, NextSeq: 3, Buf: elems(2)}
	if err := snap.ApplyDelta(OutputDelta{StreamID: "other", FromSeq: 3, NextSeq: 3}); err == nil {
		t.Fatal("wrong stream accepted")
	}
	if err := snap.ApplyDelta(OutputDelta{StreamID: "st", FromSeq: 5, NextSeq: 6}); err == nil {
		t.Fatal("non-chaining FromSeq accepted")
	}
	if err := snap.ApplyDelta(OutputDelta{StreamID: "st", FromSeq: 3, NextSeq: 1}); err == nil {
		t.Fatal("backwards delta accepted")
	}
}

// TestLiveApplyDeltaMatchesRestore: folding a delta into a live queue
// leaves it in the same externally visible state as restoring the folded
// snapshot.
func TestLiveApplyDeltaMatchesRestore(t *testing.T) {
	s := newCaptureSender()
	src := NewOutput("st", s.send)
	src.Subscribe("down", "x", true)
	src.Publish(elems(4))
	baseSnap := src.Snapshot()

	src.Publish(elems(3))
	src.Ack("down", 2)
	d, ok := src.SnapshotSince(baseSnap.NextSeq)
	if !ok {
		t.Fatal("delta refused")
	}

	live := NewOutput("st", func(transport.NodeID, transport.Message) {})
	if err := live.Restore(baseSnap); err != nil {
		t.Fatal(err)
	}
	if err := live.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if live.Floor() != src.Floor() || live.Len() != src.Len() {
		t.Fatalf("folded live queue floor=%d len=%d, source floor=%d len=%d",
			live.Floor(), live.Len(), src.Floor(), src.Len())
	}

	// A stale delta no longer chains.
	if err := live.ApplyDelta(d); err == nil {
		t.Fatal("replayed delta accepted")
	}
}
