package queue

import (
	"sync"
	"testing"
	"time"

	"streamha/internal/element"
	"streamha/internal/transport"
)

// gatedRecorder records delivered sequence numbers and blocks the first
// data send it sees until released, pinning an in-flight publish at the
// point where it has left the queue lock but not yet reached the wire.
type gatedRecorder struct {
	mu    sync.Mutex
	seqs  []uint64
	armed bool
	gate  chan struct{}
}

func (g *gatedRecorder) send(_ transport.NodeID, msg transport.Message) {
	if msg.Kind != transport.KindData {
		return
	}
	g.mu.Lock()
	for _, e := range msg.Elements {
		g.seqs = append(g.seqs, e.Seq)
	}
	block := g.armed
	g.armed = false
	g.mu.Unlock()
	if block {
		<-g.gate
	}
}

func (g *gatedRecorder) recorded() []uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]uint64(nil), g.seqs...)
}

// TestActivateReplayDoesNotDuplicateInFlightPublish reproduces the replay
// race deterministically: a publish is suspended inside the sender (it
// has appended the batch and released the queue lock), while another
// goroutine deactivates and reactivates the subscriber. The activation
// replay sees the batch in the buffer and — without per-subscriber send
// sequencing — retransmits it even though the suspended publish will
// still deliver it, so the subscriber receives every element twice.
func TestActivateReplayDoesNotDuplicateInFlightPublish(t *testing.T) {
	g := &gatedRecorder{armed: true, gate: make(chan struct{})}
	o := NewOutput("st", g.send)
	o.Subscribe("down", "in", true)

	published := make(chan struct{})
	go func() {
		defer close(published)
		o.Publish(elems(4))
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(g.recorded()) < 4 {
		if time.Now().After(deadline) {
			t.Fatal("publish never reached the sender")
		}
		time.Sleep(time.Millisecond)
	}

	toggled := make(chan struct{})
	go func() {
		defer close(toggled)
		o.Activate("down", false)
		o.Activate("down", true)
	}()
	// Give the reactivation replay time to run (seed) or to queue up
	// behind the suspended publish (fixed).
	time.Sleep(50 * time.Millisecond)
	close(g.gate)
	<-published
	<-toggled

	counts := make(map[uint64]int)
	for _, s := range g.recorded() {
		counts[s]++
	}
	for seq := uint64(1); seq <= 4; seq++ {
		switch counts[seq] {
		case 1:
		case 0:
			t.Errorf("seq %d never delivered", seq)
		default:
			t.Errorf("seq %d delivered %d times; replay raced an in-flight publish", seq, counts[seq])
		}
	}
}

// TestPublishActivateAckInterleaving hammers one subscriber with
// concurrent publishes, activation toggles and acknowledgments. With send
// sequencing in place, the concatenation of everything put on the wire
// must be exactly 1..N in order: each element delivered exactly once, no
// duplicates from replay racing publish, no gaps from replay skipping
// data published while the subscription was inactive. Run under -race.
func TestPublishActivateAckInterleaving(t *testing.T) {
	var mu sync.Mutex
	var got []uint64
	var lastSeen uint64
	send := func(_ transport.NodeID, msg transport.Message) {
		if msg.Kind != transport.KindData {
			return
		}
		mu.Lock()
		for _, e := range msg.Elements {
			got = append(got, e.Seq)
			lastSeen = e.Seq
		}
		mu.Unlock()
	}
	o := NewOutput("st", send)
	o.Subscribe("down", "in", true)

	const total = 5000
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // activation toggler
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			o.Activate("down", false)
			o.Activate("down", true)
			time.Sleep(50 * time.Microsecond)
		}
	}()
	go func() { // acker: cumulative acks for data already on the wire
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			seq := lastSeen
			mu.Unlock()
			if seq > 0 {
				o.Ack("down", seq)
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()
	for published := 0; published < total; {
		n := 1 + published%5
		if published+n > total {
			n = total - published
		}
		batch := make([]element.Element, n)
		for i := range batch {
			batch[i] = element.Element{ID: uint64(published + i + 1)}
		}
		o.Publish(batch)
		published += n
	}
	close(stop)
	wg.Wait()
	// If the last toggle left the subscription inactive, data published
	// meanwhile has not flowed yet; a final activation replays it.
	o.Activate("down", false)
	o.Activate("down", true)

	mu.Lock()
	defer mu.Unlock()
	if len(got) != total {
		t.Fatalf("delivered %d elements, want exactly %d", len(got), total)
	}
	for i, s := range got {
		if s != uint64(i+1) {
			t.Fatalf("delivery %d has seq %d; stream must be 1..N exactly once in order", i, s)
		}
	}
}
