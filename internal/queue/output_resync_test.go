package queue

import (
	"testing"

	"streamha/internal/transport"
)

// TestResyncForceReplaysPastSendWatermark: elements published to a
// subscriber advance its send watermark even though the receiving
// process may have died before persisting them. Resync must ignore that
// watermark and replay everything above the acknowledgment floor —
// exactly the cold-restart recovery request — where a plain Activate
// correctly suppresses the already-sent suffix.
func TestResyncForceReplaysPastSendWatermark(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("a", "in", true)
	o.Publish(elems(6))
	o.Ack("a", 2) // the consumer persisted through seq 2, then crashed

	if got := len(s.elementsTo("a")); got != 6 {
		t.Fatalf("setup: %d elements sent", got)
	}

	// Activate is a no-op here: the subscription is already active and
	// the send watermark says everything went out.
	o.Activate("a", true)
	if got := len(s.elementsTo("a")); got != 6 {
		t.Fatalf("activate replayed past the send watermark: %d", got)
	}

	// Resync replays seqs 3..6 — retained, unacknowledged, and (per the
	// watermark) "already sent" to the dead process.
	o.Resync("a")
	got := s.elementsTo("a")
	if len(got) != 10 {
		t.Fatalf("resync sent %d elements total, want 10", len(got))
	}
	replay := got[6:]
	for i, e := range replay {
		if want := uint64(3 + i); e.Seq != want {
			t.Fatalf("replay[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

// TestResyncReactivatesInactiveSubscription: a restarted consumer may
// come back while its subscription is parked inactive; Resync flips it
// active and replays from the floor in one step.
func TestResyncReactivatesInactiveSubscription(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("a", "in", true)
	o.Subscribe("b", "in", true)
	o.Publish(elems(4))
	o.Ack("a", 4)
	o.Ack("b", 1) // floor trims to 1; 2..4 retained for b
	o.Activate("b", false)

	before := len(s.elementsTo("b"))
	o.Resync("b")
	replay := s.elementsTo("b")[before:]
	if len(replay) != 3 || replay[0].Seq != 2 || replay[2].Seq != 4 {
		t.Fatalf("resync after reactivation replayed %v", replay)
	}
	if o.Stats().ActiveSubscribers != 2 {
		t.Fatalf("subscription still inactive after resync")
	}

	// Unknown nodes are ignored without side effects.
	o.Resync(transport.NodeID("ghost"))
	if o.Stats().Subscribers != 2 {
		t.Fatal("resync of unknown node mutated subscriptions")
	}
}
