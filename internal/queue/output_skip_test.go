package queue

import (
	"testing"
)

// TestPendingReplayEstimate: an inactive subscriber pends everything
// retained beyond its ack; activity, acks and unknown nodes pend nothing.
func TestPendingReplayEstimate(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("pri", "st", true)
	o.Subscribe("sec", "st", false)

	o.Publish(elems(10))
	if got := o.PendingReplay("sec"); got != 10 {
		t.Fatalf("pending %d, want 10", got)
	}
	if got := o.PendingReplay("pri"); got != 0 {
		t.Fatalf("active subscriber pending %d, want 0", got)
	}
	if got := o.PendingReplay("ghost"); got != 0 {
		t.Fatalf("unknown subscriber pending %d, want 0", got)
	}

	// Acks by the standby shrink its own pending estimate.
	o.Ack("sec", 4)
	if got := o.PendingReplay("sec"); got != 6 {
		t.Fatalf("pending after ack(4) = %d, want 6", got)
	}
}

// TestActivateSkipReplay: the budgeted failover path activates without
// retransmitting — positions jump to the retention head, the skipped count
// is the admitted loss, and the only message sent is the covered watermark
// raising the consumer's dedup floor.
func TestActivateSkipReplay(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("pri", "st", true)
	o.Subscribe("sec", "st", false)

	o.Publish(elems(8))
	skipped := o.ActivateSkipReplay("sec")
	if skipped != 8 {
		t.Fatalf("skipped %d, want 8", skipped)
	}
	msgs := s.msgs["sec"]
	if len(msgs) != 1 || len(msgs[0].Elements) != 0 || msgs[0].Seq != 8 {
		t.Fatalf("standby got %d messages %+v, want one empty watermark at seq 8", len(msgs), msgs)
	}

	// Subsequent publishes flow normally and gap-free from seq 9.
	out := o.Publish(elems(2))
	if out[0].Seq != 9 || out[1].Seq != 10 {
		t.Fatalf("post-skip publish seqs %d,%d, want 9,10", out[0].Seq, out[1].Seq)
	}
	if got := s.elementsTo("sec"); len(got) != 2 || got[0].Seq != 9 {
		t.Fatalf("standby received %v after skip, want the two new elements", got)
	}

	st := o.Stats()
	if st.AssumedLost != 8 || st.SkippedReplays != 1 {
		t.Fatalf("stats assumedLost=%d skippedReplays=%d, want 8,1", st.AssumedLost, st.SkippedReplays)
	}

	// Skipping an already-active subscriber is a no-op.
	if again := o.ActivateSkipReplay("sec"); again != 0 {
		t.Fatalf("second skip returned %d, want 0", again)
	}
	if o.ActivateSkipReplay("ghost") != 0 {
		t.Fatal("unknown subscriber skip must return 0")
	}
}

// TestActivateSkipReplayClampsToFloor: loss accounting starts at the trim
// floor — elements already trimmed were acknowledged through the normal
// path and are not part of the admitted loss.
func TestActivateSkipReplayClampsToFloor(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("pri", "st", true)
	o.Subscribe("sec", "st", false)

	o.Publish(elems(6))
	o.Ack("pri", 4) // trims to floor 4; 2 elements stay retained
	if st := o.Stats(); st.Retained != 2 || st.Floor != 4 {
		t.Fatalf("retained=%d floor=%d, want 2,4", st.Retained, st.Floor)
	}
	if got := o.PendingReplay("sec"); got != 2 {
		t.Fatalf("pending %d, want 2 (clamped to floor)", got)
	}
	if skipped := o.ActivateSkipReplay("sec"); skipped != 2 {
		t.Fatalf("skipped %d, want 2", skipped)
	}
	msgs := s.msgs["sec"]
	if len(msgs) != 1 || msgs[0].Seq != 6 {
		t.Fatalf("watermark %+v, want seq 6", msgs)
	}
}

// TestFastForwardAlignsSeqSpace: fast-forwarding an output queue moves its
// next assigned sequence up (never back), so a standby promoted from a
// partial checkpoint lines up with what the primary already published.
func TestFastForwardAlignsSeqSpace(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)

	o.FastForward(100)
	if got := o.NextSeq(); got != 100 {
		t.Fatalf("NextSeq %d after FastForward(100), want 100", got)
	}
	out := o.Publish(elems(1))
	if out[0].Seq != 100 {
		t.Fatalf("first publish seq %d, want 100", out[0].Seq)
	}

	// Never backwards, and 0 is a no-op.
	o.FastForward(50)
	o.FastForward(0)
	out = o.Publish(elems(1))
	if out[0].Seq != 101 {
		t.Fatalf("publish after backward fast-forward seq %d, want 101", out[0].Seq)
	}
}
