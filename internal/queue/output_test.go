package queue

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"streamha/internal/element"
	"streamha/internal/transport"
)

// captureSender records sent messages per destination.
type captureSender struct {
	mu   sync.Mutex
	msgs map[transport.NodeID][]transport.Message
}

func newCaptureSender() *captureSender {
	return &captureSender{msgs: make(map[transport.NodeID][]transport.Message)}
}

func (c *captureSender) send(to transport.NodeID, msg transport.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs[to] = append(c.msgs[to], msg)
}

func (c *captureSender) elementsTo(to transport.NodeID) []element.Element {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []element.Element
	for _, m := range c.msgs[to] {
		out = append(out, m.Elements...)
	}
	return out
}

func elems(n int) []element.Element {
	out := make([]element.Element, n)
	for i := range out {
		out[i] = element.Element{ID: uint64(i + 1), Payload: int64(i)}
	}
	return out
}

func TestPublishAssignsIncreasingSeqs(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	out := o.Publish(elems(3))
	for i, e := range out {
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, e.Seq)
		}
	}
	out = o.Publish(elems(2))
	if out[0].Seq != 4 || out[1].Seq != 5 {
		t.Fatalf("second batch seqs %d,%d", out[0].Seq, out[1].Seq)
	}
}

func TestPublishSendsToActiveSubscribersOnly(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("a", "in-a", true)
	o.Subscribe("b", "in-b", false)
	o.Publish(elems(4))
	if got := len(s.elementsTo("a")); got != 4 {
		t.Fatalf("active subscriber got %d elements", got)
	}
	if got := len(s.elementsTo("b")); got != 0 {
		t.Fatalf("inactive subscriber got %d elements", got)
	}
}

func TestAckTrimsAtMinOverActiveSubscribers(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("a", "in", true)
	o.Subscribe("b", "in", true)
	o.Publish(elems(10))
	o.Ack("a", 7)
	if o.Len() != 10 {
		t.Fatalf("trimmed before all acked: len %d", o.Len())
	}
	o.Ack("b", 5)
	if o.Len() != 5 || o.Floor() != 5 {
		t.Fatalf("len %d floor %d, want 5/5", o.Len(), o.Floor())
	}
}

func TestInactiveSubscriberDoesNotGateTrimming(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("primary", "in", true)
	o.Subscribe("standby", "in", false) // early connection
	o.Publish(elems(6))
	o.Ack("primary", 6)
	if o.Len() != 0 {
		t.Fatalf("inactive subscriber blocked trim: len %d", o.Len())
	}
}

func TestActivateRetransmitsUnacknowledged(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("primary", "in", true)
	o.Subscribe("standby", "in", false)
	o.Publish(elems(8))
	o.Ack("primary", 5) // floor 5; 3 retained

	o.Activate("standby", true)
	got := s.elementsTo("standby")
	if len(got) != 3 {
		t.Fatalf("standby got %d elements, want 3 retained", len(got))
	}
	if got[0].Seq != 6 || got[2].Seq != 8 {
		t.Fatalf("retransmitted seqs %d..%d, want 6..8", got[0].Seq, got[2].Seq)
	}
}

func TestActivateIsIdempotent(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("standby", "in", false)
	o.Publish(elems(4))
	o.Activate("standby", true)
	first := len(s.elementsTo("standby"))
	o.Activate("standby", true) // already active: no double retransmit
	if got := len(s.elementsTo("standby")); got != first {
		t.Fatalf("second Activate retransmitted: %d -> %d", first, got)
	}
}

func TestDeactivateStopsFlow(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("a", "in", true)
	o.Publish(elems(2))
	o.Activate("a", false)
	o.Publish(elems(2))
	if got := len(s.elementsTo("a")); got != 2 {
		t.Fatalf("deactivated subscriber received %d elements, want 2", got)
	}
}

func TestResetSubscriberMovesAndRetransmits(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("old", "in", true)
	o.Publish(elems(5))
	o.Ack("old", 2)
	o.ResetSubscriber("old", "new", "in")
	got := s.elementsTo("new")
	if len(got) != 3 {
		t.Fatalf("new subscriber got %d elements, want 3 (floor 2)", len(got))
	}
	// Old subscriber is gone: its acks are ignored.
	o.Ack("old", 5)
	if o.Floor() != 2 {
		t.Fatalf("removed subscriber still trims: floor %d", o.Floor())
	}
	o.Ack("new", 5)
	if o.Floor() != 5 {
		t.Fatalf("floor %d after new ack", o.Floor())
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("a", "in", true)
	o.Publish(elems(6))
	o.Ack("a", 2)
	snap := o.Snapshot()
	if snap.Floor != 2 || snap.NextSeq != 7 || len(snap.Buf) != 4 {
		t.Fatalf("snapshot %+v", snap)
	}

	o2 := NewOutput("st", s.send)
	if err := o2.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if o2.Floor() != 2 || o2.Len() != 4 {
		t.Fatalf("restored floor %d len %d", o2.Floor(), o2.Len())
	}
	// Sequences continue where the snapshot left off.
	out := o2.Publish(elems(1))
	if out[0].Seq != 7 {
		t.Fatalf("post-restore seq %d, want 7", out[0].Seq)
	}
}

func TestRestoreRejectsWrongStream(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	if err := o.Restore(OutputSnapshot{StreamID: "other"}); err == nil {
		t.Fatal("want stream mismatch error")
	}
}

func TestRetransmitAllSkipsAcknowledged(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("a", "in", true)
	o.Subscribe("b", "in", true)
	o.Publish(elems(6))
	o.Ack("a", 6)
	o.Ack("b", 4) // floor 4, retained 5..6
	before := len(s.elementsTo("a"))
	o.RetransmitAll()
	if got := len(s.elementsTo("a")) - before; got != 0 {
		t.Fatalf("fully-acked subscriber got %d retransmits", got)
	}
	if got := s.elementsTo("b"); got[len(got)-1].Seq != 6 || len(got) != 8 {
		t.Fatalf("b got %d msgs, last seq %d", len(got), got[len(got)-1].Seq)
	}
}

func TestAckFromUnknownNodeIgnored(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("a", "in", true)
	o.Publish(elems(3))
	o.Ack("ghost", 3)
	if o.Len() != 3 {
		t.Fatal("ghost ack trimmed")
	}
}

func TestOnTrimFiresOncePerTrim(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	count := 0
	o.SetOnTrim(func() { count++ })
	o.Subscribe("a", "in", true)
	o.Publish(elems(4))
	o.Ack("a", 2)
	o.Ack("a", 2) // no progress: no trim
	o.Ack("a", 4)
	if count != 2 {
		t.Fatalf("onTrim fired %d times, want 2", count)
	}
}

// TestTrimNeverLosesUnackedProperty: for random publish/ack interleavings,
// every element with seq above the minimum acknowledged position remains
// retrievable.
func TestTrimNeverLosesUnackedProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := newCaptureSender()
		o := NewOutput("st", s.send)
		o.Subscribe("a", "in", true)
		o.Subscribe("b", "in", true)
		var published uint64
		ackA, ackB := uint64(0), uint64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				o.Publish(elems(int(op%5) + 1))
				published += uint64(op%5) + 1
			case 1:
				if published > 0 {
					ackA = min64(published, ackA+uint64(op%7))
					o.Ack("a", ackA)
				}
			case 2:
				if published > 0 {
					ackB = min64(published, ackB+uint64(op%7))
					o.Ack("b", ackB)
				}
			}
			floor := o.Floor()
			lowest := min64(ackA, ackB)
			if floor > lowest {
				return false // trimmed beyond the slowest consumer
			}
			if uint64(o.Len()) != published-floor {
				return false // retained range must be contiguous to head
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// TestReplayAfterManyTrimsWrapsRing drives the retained window around the
// ring's physical end many times, then checks that Activate and
// RetransmitAll both replay exactly the retained suffix from a floor far
// above zero.
func TestReplayAfterManyTrimsWrapsRing(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("primary", "in", true)
	o.Subscribe("standby", "in", false)

	// Publish/ack in a lagged pattern so the ring head chases the tail
	// around the buffer: 200 batches of 7, acking 7 with a lag of 3.
	var published uint64
	for i := 0; i < 200; i++ {
		o.Publish(elems(7))
		published += 7
		if published > 21 {
			o.Ack("primary", published-21)
		}
	}
	if o.Floor() != published-21 || o.Len() != 21 {
		t.Fatalf("floor %d len %d, want %d/21", o.Floor(), o.Len(), published-21)
	}

	o.Activate("standby", true)
	got := s.elementsTo("standby")
	if len(got) != 21 {
		t.Fatalf("standby got %d elements, want 21 retained", len(got))
	}
	for i, e := range got {
		if e.Seq != o.Floor()+uint64(i+1) {
			t.Fatalf("replayed seq[%d] = %d, want %d", i, e.Seq, o.Floor()+uint64(i+1))
		}
	}

	// RetransmitAll from a partially acknowledged position above the floor.
	o.Ack("standby", published-10)
	before := len(s.elementsTo("standby"))
	o.RetransmitAll()
	retr := s.elementsTo("standby")[before:]
	if len(retr) != 10 {
		t.Fatalf("retransmitted %d, want 10", len(retr))
	}
	if retr[0].Seq != published-9 || retr[9].Seq != published {
		t.Fatalf("retransmitted seqs %d..%d, want %d..%d", retr[0].Seq, retr[9].Seq, published-9, published)
	}
}

// TestConcurrentPublishAckSubscribe hammers one output queue from
// publisher, acker and subscription-churn goroutines at once. Run under
// -race it checks the lock discipline of the ring buffer and the immutable
// fan-out snapshot; the final invariant checks nothing retained was lost.
func TestConcurrentPublishAckSubscribe(t *testing.T) {
	s := newCaptureSender()
	o := NewOutput("st", s.send)
	o.Subscribe("a", "in", true)

	const (
		publishers = 4
		batches    = 200
		batchLen   = 5
	)
	var wg sync.WaitGroup
	var published atomic.Uint64

	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				o.Publish(elems(batchLen))
				published.Add(batchLen)
			}
		}()
	}
	// Acker: chases the published head so trims run concurrently with
	// publishes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < publishers*batches; i++ {
			head := published.Load()
			if head > batchLen {
				o.Ack("a", head-batchLen)
			}
		}
	}()
	// Subscription churn: a standby flaps active/inactive and a transient
	// subscriber comes and goes, rebuilding the fan-out snapshot while
	// publishes iterate it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			o.Subscribe("flap", "in", i%2 == 0)
			o.Activate("flap", i%2 == 1)
			if i%5 == 0 {
				o.Unsubscribe("flap")
			}
			o.RetransmitAll()
		}
	}()
	wg.Wait()

	total := published.Load()
	o.Ack("a", total)
	o.Unsubscribe("flap")
	o.Ack("a", total) // re-trim with only "a" active
	if o.Floor() != total || o.Len() != 0 {
		t.Fatalf("floor %d len %d after full ack of %d", o.Floor(), o.Len(), total)
	}
	// Every sequence number must have been delivered to "a" at least once
	// (dedup is downstream's job; loss is not acceptable).
	seen := make(map[uint64]bool, total)
	for _, e := range s.elementsTo("a") {
		seen[e.Seq] = true
	}
	for seq := uint64(1); seq <= total; seq++ {
		if !seen[seq] {
			t.Fatalf("seq %d never delivered to active subscriber", seq)
		}
	}
}
