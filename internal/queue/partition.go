package queue

import (
	"fmt"
	"sync"
	"sync/atomic"

	"streamha/internal/element"
)

// DefaultPartitions is the number of logical partitions a keyed-parallel
// stage is split into when the deployer does not choose one. It is the
// granularity of rescaling: a scale-out moves whole logical partitions
// between instances, so the table must be comfortably finer than the
// largest instance count ever expected.
const DefaultPartitions = 256

// Partitioner is the shared routing table of one keyed-parallel stage: P
// logical partitions (stable in P, see element.PartitionOf) mapped onto the
// stage's instances. Every producer copy feeding the stage consults the
// same Partitioner, so active-standby twins route identically, and the
// consumer-side input guards consult it too, so an element that raced a
// rescaling table flip is never processed by two instances.
//
// Reads are lock-free (an atomic pointer to an immutable table); Move
// installs a fresh table copy-on-write, which is what makes a live
// rescaling cutover a single pointer flip.
type Partitioner struct {
	table atomic.Pointer[[]int]

	mu        sync.Mutex
	instances int
}

// NewPartitioner builds a routing table of parts logical partitions spread
// contiguously over instances: partition p maps to instance p*instances/parts.
// parts <= 0 selects DefaultPartitions.
func NewPartitioner(parts, instances int) *Partitioner {
	if parts <= 0 {
		parts = DefaultPartitions
	}
	if instances <= 0 {
		instances = 1
	}
	if instances > parts {
		instances = parts
	}
	t := make([]int, parts)
	for p := range t {
		t[p] = p * instances / parts
	}
	pt := &Partitioner{instances: instances}
	pt.table.Store(&t)
	return pt
}

// Partitions returns the number of logical partitions.
func (pt *Partitioner) Partitions() int { return len(*pt.table.Load()) }

// Instances returns the number of instances the table currently maps onto.
func (pt *Partitioner) Instances() int {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.instances
}

// PartitionOf returns the logical partition of key.
func (pt *Partitioner) PartitionOf(key uint64) int {
	return element.PartitionOf(key, len(*pt.table.Load()))
}

// Instance returns the instance currently owning key's partition. It is the
// hot-path routing read: one atomic load plus one hash.
func (pt *Partitioner) Instance(key uint64) int {
	t := *pt.table.Load()
	return t[element.PartitionOf(key, len(t))]
}

// InstanceOfPartition returns the instance currently owning partition p.
func (pt *Partitioner) InstanceOfPartition(p int) int {
	t := *pt.table.Load()
	return t[p]
}

// OwnedBy returns the logical partitions currently mapped to instance.
func (pt *Partitioner) OwnedBy(instance int) []int {
	t := *pt.table.Load()
	var out []int
	for p, inst := range t {
		if inst == instance {
			out = append(out, p)
		}
	}
	return out
}

// Table returns a copy of the current partition→instance table.
func (pt *Partitioner) Table() []int {
	t := *pt.table.Load()
	return append([]int(nil), t...)
}

// Move remaps the given logical partitions to instance to, installing the
// new table atomically — concurrent routing reads see either the old or the
// new table, never a mix. It grows the instance count when to is a new
// instance index.
func (pt *Partitioner) Move(partitions []int, to int) error {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	old := *pt.table.Load()
	if to < 0 || to > pt.instances {
		return fmt.Errorf("queue: move to instance %d with %d instances", to, pt.instances)
	}
	next := append([]int(nil), old...)
	for _, p := range partitions {
		if p < 0 || p >= len(next) {
			return fmt.Errorf("queue: move of unknown partition %d (have %d)", p, len(next))
		}
		next[p] = to
	}
	if to == pt.instances {
		pt.instances++
	}
	pt.table.Store(&next)
	return nil
}

// PartitionerStats is a JSON-marshalable view of a routing table, exported
// through the metrics registry.
type PartitionerStats struct {
	Partitions int   `json:"partitions"`
	Instances  int   `json:"instances"`
	PerInst    []int `json:"partitions_per_instance"`
}

// Stats counts the partitions owned by each instance.
func (pt *Partitioner) Stats() PartitionerStats {
	t := *pt.table.Load()
	st := PartitionerStats{Partitions: len(t), Instances: pt.Instances()}
	st.PerInst = make([]int, st.Instances)
	for _, inst := range t {
		if inst < len(st.PerInst) {
			st.PerInst[inst]++
		}
	}
	return st
}
