package queue

import (
	"testing"

	"streamha/internal/element"
)

// keysRoutedTo returns count distinct keys whose partitions currently map
// to instance under pt.
func keysRoutedTo(pt *Partitioner, instance, count int) []uint64 {
	var out []uint64
	for k := uint64(1); len(out) < count; k++ {
		if pt.Instance(k) == instance {
			out = append(out, k)
		}
	}
	return out
}

// TestPartitionStability pins the property rescaling correctness rests on:
// a key's logical partition is a pure function of (key, P). It must not
// change across process restarts (fresh Partitioner), nor across instance
// count changes, and a Move must only re-route the moved partitions.
func TestPartitionStability(t *testing.T) {
	const parts = 256
	a := NewPartitioner(parts, 2)
	b := NewPartitioner(parts, 2) // a "restart": same config, fresh table

	for k := uint64(0); k < 10000; k++ {
		if ap, bp := a.PartitionOf(k), b.PartitionOf(k); ap != bp {
			t.Fatalf("key %d: partition %d after restart, %d before", k, bp, ap)
		}
		if ap, ep := a.PartitionOf(k), element.PartitionOf(k, parts); ap != ep {
			t.Fatalf("key %d: Partitioner says %d, element.PartitionOf says %d", k, ap, ep)
		}
		// The partition is stable in P even when the instance count differs.
		if cp := NewPartitioner(parts, 5).PartitionOf(k); cp != a.PartitionOf(k) {
			t.Fatalf("key %d: partition changed with instance count", k)
		}
	}

	// Rescale 2 -> 3: move half of instance 0's partitions. Keys in unmoved
	// partitions must keep their old instance; keys in moved partitions must
	// all land on the new instance.
	before := make(map[uint64]int)
	for k := uint64(0); k < 10000; k++ {
		before[k] = a.Instance(k)
	}
	owned := a.OwnedBy(0)
	moved := owned[:len(owned)/2]
	movedSet := make(map[int]bool, len(moved))
	for _, p := range moved {
		movedSet[p] = true
	}
	if err := a.Move(moved, 2); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if a.Instances() != 3 {
		t.Fatalf("instances %d after growing move, want 3", a.Instances())
	}
	for k := uint64(0); k < 10000; k++ {
		got := a.Instance(k)
		if movedSet[a.PartitionOf(k)] {
			if got != 2 {
				t.Fatalf("key %d in moved partition routed to %d, want 2", k, got)
			}
		} else if got != before[k] {
			t.Fatalf("key %d in unmoved partition re-routed %d -> %d", k, before[k], got)
		}
	}
}

// TestPartitionerMoveBounds pins Move's validation: no skipping instance
// indices, no unknown partitions.
func TestPartitionerMoveBounds(t *testing.T) {
	pt := NewPartitioner(16, 2)
	if err := pt.Move([]int{0}, 3); err == nil {
		t.Fatal("Move to instance 3 of 2 accepted (index skipped)")
	}
	if err := pt.Move([]int{16}, 1); err == nil {
		t.Fatal("Move of out-of-range partition accepted")
	}
	if err := pt.Move([]int{0, 1}, 2); err != nil {
		t.Fatalf("growing Move rejected: %v", err)
	}
}

// TestPushCoveredPerStreamWatermark is the regression test for the merge
// side of keyed parallelism: the dedup watermark must be tracked per
// (stream, seq) — each partitioned producer instance is its own stream —
// not as one global sequence floor. A naive global watermark would see
// stream A reach seq 40 and then drop stream B's low-numbered elements as
// duplicates; here both streams must deliver everything.
func TestPushCoveredPerStreamWatermark(t *testing.T) {
	q := NewInput("a", "b")

	elemsAt := func(seqs ...uint64) []element.Element {
		out := make([]element.Element, len(seqs))
		for i, s := range seqs {
			out[i] = element.Element{ID: s, Seq: s}
		}
		return out
	}

	// Stream A races ahead.
	q.PushCovered("a", elemsAt(1, 2, 3), 40)
	if got := q.Accepted("a"); got != 40 {
		t.Fatalf("accepted(a) = %d, want covered watermark 40", got)
	}
	// Stream B starts from 1. Under a global watermark these would all be
	// "duplicates" of A's floor; per-stream they must queue.
	q.PushCovered("b", elemsAt(1, 2), 2)
	if got := q.Accepted("b"); got != 2 {
		t.Fatalf("accepted(b) = %d, want 2", got)
	}
	if got := q.Len(); got != 5 {
		t.Fatalf("queued %d elements, want 5 (global watermark ate stream b?)", got)
	}
	if dups, gaps := q.Drops(); dups != 0 || gaps != 0 {
		t.Fatalf("drops dups=%d gaps=%d, want none", dups, gaps)
	}
}

// TestPushCoveredFilteredGaps pins the covered-sequence contract of
// partitioned sends: batch seqs rise but skip the elements routed to
// sibling instances, so in-batch gaps are not protocol gaps, and the
// covered watermark advances the floor past the skipped tail even when the
// filtered batch is empty.
func TestPushCoveredFilteredGaps(t *testing.T) {
	q := NewInput("s")

	// Seqs 2, 5, 6 went to a sibling instance; 1, 3, 4, 7 are ours,
	// covered says the producer's prefix reaches 8.
	batch := []element.Element{
		{ID: 1, Seq: 1}, {ID: 3, Seq: 3}, {ID: 4, Seq: 4}, {ID: 7, Seq: 7},
	}
	q.PushCovered("s", batch, 8)
	if got := q.Len(); got != 4 {
		t.Fatalf("queued %d, want 4", got)
	}
	if got := q.Accepted("s"); got != 8 {
		t.Fatalf("accepted = %d, want 8", got)
	}
	if _, gaps := q.Drops(); gaps != 0 {
		t.Fatalf("in-batch partition gaps counted as protocol gaps: %d", gaps)
	}

	// A replayed prefix is recognized as duplicate, not re-queued.
	q.PushCovered("s", batch, 8)
	if got := q.Len(); got != 4 {
		t.Fatalf("replay re-queued: len %d, want 4", got)
	}
	if dups, _ := q.Drops(); dups != 4 {
		t.Fatalf("replay counted %d dups, want 4", dups)
	}

	// An all-filtered send (every element went elsewhere) still advances
	// the floor, so a later replay starting below it is deduped.
	q.PushCovered("s", nil, 20)
	if got := q.Accepted("s"); got != 20 {
		t.Fatalf("accepted = %d after empty covered send, want 20", got)
	}

	// Fresh data beyond the floor flows normally.
	q.PushCovered("s", []element.Element{{ID: 21, Seq: 21}}, 21)
	if got := q.Accepted("s"); got != 21 {
		t.Fatalf("accepted = %d, want 21", got)
	}
	if got := q.Len(); got != 5 {
		t.Fatalf("queued %d, want 5", got)
	}
}

// TestInputPartitionGuard: the consumer-side guard drops foreign-partition
// elements while still covering them, and Repartition purges buffered
// elements of partitions that moved away mid-flight.
func TestInputPartitionGuard(t *testing.T) {
	pt := NewPartitioner(16, 2)
	q := NewInput("s")
	q.SetPartition(pt, 0)

	// Two owned keys in distinct partitions, so moving one partition later
	// purges exactly one of them.
	var mine []uint64
	for k := uint64(1); len(mine) < 2; k++ {
		if pt.Instance(k) == 0 && (len(mine) == 0 || pt.PartitionOf(k) != pt.PartitionOf(mine[0])) {
			mine = append(mine, k)
		}
	}
	theirs := keysRoutedTo(pt, 1, 1)
	batch := []element.Element{
		{ID: 1, Key: mine[0], Seq: 1},
		{ID: 2, Key: theirs[0], Seq: 2},
		{ID: 3, Key: mine[1], Seq: 3},
	}
	q.PushCovered("s", batch, 3)
	if got := q.Len(); got != 2 {
		t.Fatalf("guard queued %d, want 2 (foreign element kept?)", got)
	}
	if got := q.Accepted("s"); got != 3 {
		t.Fatalf("accepted = %d, want 3 (foreign element must still be covered)", got)
	}

	// The buffered element whose partition moves away must be purged by
	// Repartition — its new owner will process it instead.
	movedPart := pt.PartitionOf(mine[1])
	if err := pt.Move([]int{movedPart}, 1); err != nil {
		t.Fatalf("Move: %v", err)
	}
	q.Repartition()
	left := q.TryPop(10)
	if len(left) != 1 || left[0].Elem.Key != mine[0] {
		t.Fatalf("after Repartition kept %v, want only key %d", left, mine[0])
	}
}
