package queue

import "streamha/internal/element"

// ring is a growable circular buffer of elements. It backs the output
// queue's retained-element window, where the access pattern is append at
// the tail, trim at the head, and occasional range reads for
// retransmission. A ring makes trimming O(1) — the head index advances —
// where a slice-backed buffer pays a full copy of the surviving elements
// on every cumulative-ack trim.
//
// Elements contain no pointers, so trimmed slots do not need to be zeroed
// for the garbage collector; stale values are simply overwritten when the
// tail wraps around.
type ring struct {
	buf  []element.Element
	head int // index of the logically first element
	n    int // number of live elements
}

// ringMinCap is the initial capacity on first append.
const ringMinCap = 16

// len returns the number of live elements.
func (r *ring) len() int { return r.n }

// grow ensures capacity for m more elements, linearizing into a larger
// backing array when needed. Capacity doubles, so appends are amortized
// O(1).
func (r *ring) grow(m int) {
	need := r.n + m
	if need <= len(r.buf) {
		return
	}
	newCap := len(r.buf) * 2
	if newCap < ringMinCap {
		newCap = ringMinCap
	}
	for newCap < need {
		newCap *= 2
	}
	nb := make([]element.Element, newCap)
	r.copyRange(nb[:r.n], 0)
	r.buf = nb
	r.head = 0
}

// append adds elems at the tail, growing if needed.
func (r *ring) append(elems []element.Element) {
	if len(elems) == 0 {
		return
	}
	r.grow(len(elems))
	tail := r.head + r.n
	if tail >= len(r.buf) {
		tail -= len(r.buf)
	}
	first := copy(r.buf[tail:], elems)
	if first < len(elems) {
		copy(r.buf, elems[first:])
	}
	r.n += len(elems)
}

// trim discards k elements from the head. k beyond the live count clears
// the ring.
func (r *ring) trim(k int) {
	if k >= r.n {
		r.head = 0
		r.n = 0
		return
	}
	r.head += k
	if r.head >= len(r.buf) {
		r.head -= len(r.buf)
	}
	r.n -= k
}

// at returns the element at logical index i (0 is the head). Callers must
// keep i < r.n.
func (r *ring) at(i int) element.Element {
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return r.buf[j]
}

// copyRange copies the logical range [from, from+len(dst)) into dst, which
// must not extend past the live count.
func (r *ring) copyRange(dst []element.Element, from int) {
	if len(dst) == 0 {
		return
	}
	start := r.head + from
	if start >= len(r.buf) {
		start -= len(r.buf)
	}
	n := copy(dst, r.buf[start:])
	if n < len(dst) {
		copy(dst[n:], r.buf)
	}
}

// slice returns a fresh slice holding the logical range [from, r.n).
func (r *ring) slice(from int) []element.Element {
	if from >= r.n {
		return nil
	}
	out := make([]element.Element, r.n-from)
	r.copyRange(out, from)
	return out
}

// reset replaces the ring's content with a copy of elems.
func (r *ring) reset(elems []element.Element) {
	r.head = 0
	r.n = 0
	if len(elems) > len(r.buf) {
		r.buf = make([]element.Element, len(elems))
	}
	copy(r.buf, elems)
	r.n = len(elems)
}
