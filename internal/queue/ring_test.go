package queue

import (
	"math/rand"
	"testing"

	"streamha/internal/element"
)

func ringElems(base, n int) []element.Element {
	out := make([]element.Element, n)
	for i := range out {
		out[i] = element.Element{ID: uint64(base + i), Seq: uint64(base + i)}
	}
	return out
}

func checkRing(t *testing.T, r *ring, wantFirst, wantN int) {
	t.Helper()
	if r.len() != wantN {
		t.Fatalf("len = %d, want %d", r.len(), wantN)
	}
	for i := 0; i < wantN; i++ {
		if got := r.at(i); got.ID != uint64(wantFirst+i) {
			t.Fatalf("at(%d).ID = %d, want %d", i, got.ID, wantFirst+i)
		}
	}
}

func TestRingAppendTrimWraparound(t *testing.T) {
	var r ring
	// Fill past the initial capacity so the buffer grows, then trim and
	// append repeatedly so the live window wraps the physical end.
	r.append(ringElems(0, 24))
	checkRing(t, &r, 0, 24)
	next := 24
	first := 0
	for i := 0; i < 50; i++ {
		r.trim(7)
		first += 7
		r.append(ringElems(next, 7))
		next += 7
		checkRing(t, &r, first, 24)
	}
}

func TestRingGrowWhileWrapped(t *testing.T) {
	var r ring
	r.append(ringElems(0, 16)) // exactly ringMinCap
	r.trim(10)                 // head at 10
	r.append(ringElems(16, 8)) // tail wraps, then grow on next append
	checkRing(t, &r, 10, 14)
	r.append(ringElems(24, 40)) // forces linearizing growth mid-wrap
	checkRing(t, &r, 10, 54)
}

func TestRingTrimAllResets(t *testing.T) {
	var r ring
	r.append(ringElems(0, 20))
	r.trim(100)
	if r.len() != 0 || r.head != 0 {
		t.Fatalf("after over-trim: len=%d head=%d", r.len(), r.head)
	}
	r.append(ringElems(5, 3))
	checkRing(t, &r, 5, 3)
}

func TestRingCopyRangeAndSlice(t *testing.T) {
	var r ring
	r.append(ringElems(0, 30))
	r.trim(12)
	r.append(ringElems(30, 10)) // wrapped window [12, 40)
	got := r.slice(5)           // logical 5 → IDs 17..39
	if len(got) != 23 {
		t.Fatalf("slice len %d, want 23", len(got))
	}
	for i, e := range got {
		if e.ID != uint64(17+i) {
			t.Fatalf("slice[%d].ID = %d, want %d", i, e.ID, 17+i)
		}
	}
	if r.slice(r.len()) != nil {
		t.Fatal("slice past end should be nil")
	}
}

func TestRingReset(t *testing.T) {
	var r ring
	r.append(ringElems(0, 40))
	r.trim(33) // non-zero head
	r.reset(ringElems(100, 5))
	checkRing(t, &r, 100, 5)
	r.reset(nil)
	if r.len() != 0 {
		t.Fatalf("reset(nil) left %d elements", r.len())
	}
	// Reset larger than current capacity.
	var r2 ring
	r2.reset(ringElems(0, 100))
	checkRing(t, &r2, 0, 100)
}

// TestRingMatchesSliceModel drives the ring against a plain-slice reference
// with random batched appends and trims.
func TestRingMatchesSliceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var r ring
	var model []element.Element
	next := 0
	for op := 0; op < 2000; op++ {
		if rng.Intn(2) == 0 {
			n := rng.Intn(9) + 1
			batch := ringElems(next, n)
			next += n
			r.append(batch)
			model = append(model, batch...)
		} else if len(model) > 0 {
			k := rng.Intn(len(model) + 1)
			r.trim(k)
			model = model[k:]
		}
		if r.len() != len(model) {
			t.Fatalf("op %d: len %d, model %d", op, r.len(), len(model))
		}
		for _, i := range []int{0, len(model) / 2, len(model) - 1} {
			if i < 0 || i >= len(model) {
				continue
			}
			if r.at(i) != model[i] {
				t.Fatalf("op %d: at(%d) = %v, model %v", op, i, r.at(i), model[i])
			}
		}
	}
}
