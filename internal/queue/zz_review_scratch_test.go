package queue

import (
	"sync"
	"testing"

	"streamha/internal/transport"
)

// Scratch test (review only): concurrent publishers, single always-active
// subscriber, no toggles/retransmits. Every published seq should reach the
// wire at least once.
func TestZZReviewConcurrentPublishersDeliverAll(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		var mu sync.Mutex
		seen := make(map[uint64]bool)
		send := func(_ transport.NodeID, msg transport.Message) {
			if msg.Kind != transport.KindData {
				return
			}
			mu.Lock()
			for _, e := range msg.Elements {
				seen[e.Seq] = true
			}
			mu.Unlock()
		}
		o := NewOutput("st", send)
		o.Subscribe("down", "in", true)

		const publishers = 4
		const batches = 50
		var wg sync.WaitGroup
		for p := 0; p < publishers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < batches; i++ {
					o.Publish(elems(3))
				}
			}()
		}
		wg.Wait()
		total := uint64(publishers * batches * 3)
		var missing []uint64
		for s := uint64(1); s <= total; s++ {
			if !seen[s] {
				missing = append(missing, s)
			}
		}
		if len(missing) > 0 {
			t.Fatalf("iter %d: %d seqs never put on the wire (e.g. %v); sent-watermark suppressed batches whose fan-out lost the race", iter, len(missing), missing[:min(5, len(missing))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
