package sched_test

import (
	"testing"
	"time"

	"streamha/internal/sched"
)

func TestLeaderElected(t *testing.T) {
	s, _, _ := testbed(t, 3)
	waitFor(t, 2*time.Second, "a leader", func() bool { return s.Leader() != "" })
}

// TestLeaderKillReelection crashes the elected leader mid-stream and
// checks that a new leader takes over, committed placements survive, new
// placements keep working, and the recovered old leader catches up.
func TestLeaderKillReelection(t *testing.T) {
	s, net, _ := testbed(t, 3)
	_ = net
	if err := s.MemberUp("w1", "rack-a", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.MemberUp("w2", "rack-b", 2); err != nil {
		t.Fatal(err)
	}
	placed, err := s.Place(sched.Request{Subjob: "sj0", Role: sched.RolePrimary})
	if err != nil {
		t.Fatal(err)
	}

	waitFor(t, 2*time.Second, "a leader", func() bool { return s.Leader() != "" })
	old := s.Leader()
	var oldNode *sched.Node
	for _, n := range s.Nodes() {
		if n.Status().ID == old {
			oldNode = n
		}
	}
	for _, m := range s.Replicas() {
		if string(m.ID()) == old {
			m.Crash()
		}
	}

	waitFor(t, 3*time.Second, "re-election", func() bool {
		l := s.Leader()
		return l != "" && l != old
	})
	if got, ok := s.Assignment("sj0", sched.RolePrimary); !ok || got != placed {
		t.Fatalf("assignment after leader kill = %q,%v want %q,true", got, ok, placed)
	}
	again, err := s.Place(sched.Request{Subjob: "sj1", Role: sched.RolePrimary})
	if err != nil {
		t.Fatalf("place under new leader: %v", err)
	}
	if again == "" {
		t.Fatalf("empty placement under new leader")
	}

	// Recover the old leader; its log must converge with the new leader's.
	for _, m := range s.Replicas() {
		if string(m.ID()) == old {
			m.Restart()
		}
	}
	waitFor(t, 3*time.Second, "old leader catch-up", func() bool {
		st := oldNode.Status()
		v := oldNode.CommittedView()
		return st.Role != "leader" || st.ID == s.Leader() ||
			v.Assignments["sj1/primary"] == again
	})
	waitFor(t, 3*time.Second, "old leader log convergence", func() bool {
		v := oldNode.CommittedView()
		return v.Assignments["sj0/primary"] == placed && v.Assignments["sj1/primary"] == again
	})
}

// TestPlacementLogReplayConverges checks every replica's committed view
// replays to the same assignments after a batch of operations.
func TestPlacementLogReplayConverges(t *testing.T) {
	s, _, _ := testbed(t, 3)
	for id, dom := range map[string]string{"w1": "rack-a", "w2": "rack-b", "w3": "rack-c"} {
		if err := s.MemberUp(id, dom, 2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Place(sched.Request{Subjob: "sj0", Role: sched.RolePrimary}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(sched.Request{Subjob: "sj0", Role: sched.RoleStandby, AvoidDomains: []string{"rack-a"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Release("sj0", sched.RoleStandby); err != nil {
		t.Fatal(err)
	}

	want := s.View().Assignments
	waitFor(t, 3*time.Second, "replica convergence", func() bool {
		for _, n := range s.Nodes() {
			v := n.CommittedView()
			if len(v.Assignments) != len(want) {
				return false
			}
			for k, m := range want {
				if v.Assignments[k] != m {
					return false
				}
			}
		}
		return true
	})
}
